# Result-cache smoke driver: exercise smt_sweep's content-addressed
# store end to end. Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DSWEEP=... -DCHECKER=... -DHISTORY=... -DOUT_DIR=...
#         -P cache_smoke.cmake
#
# Phases:
#   1. cold: sweep a small manifest (one deterministically-failing
#      self-test included — failures are results too) against an empty
#      --cache. Every job misses; every completed outcome is stored.
#   2. warm: the same manifest against the same cache into a fresh out
#      dir. Every job must hit ("cached":false must not appear), every
#      report/dump must be byte-identical to the cold run's, and the
#      index must be byte-identical modulo the wall_ms and cached
#      fields. The metrics snapshot must cross-check (check_reports
#      enforces lookups == hits + misses + verify_failed, hits == index
#      cached-count, ...).
#   3. audit: the same manifest with --cache-verify — every hit is
#      re-simulated and byte-compared before being trusted; the metrics
#      must record every hit as verified and the sweep must still
#      succeed (modulo the injected failure).
#   4. idempotent history: ingesting the cold and warm sweeps into one
#      fresh history store must record runs exactly once — the two
#      indexes differ only in wall-clock fields, so they share a stable
#      run id and the second ingest is a complete no-op.
#   5. guard rails: --pipeview with --cache must be refused up front.
set(manifest mm.serial.n64 lu.serial.n64 bt.serial selftest.deadlock)

file(REMOVE_RECURSE "${OUT_DIR}")

# Phase 1: cold sweep. selftest.deadlock makes the exit code nonzero;
# everything else about the sweep must be intact.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/cold"
  --cache "${OUT_DIR}/cache" --metrics "${OUT_DIR}/cold/metrics.json"
  ${manifest} RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "cold sweep with a failing self-test exited 0")
endif()
file(READ "${OUT_DIR}/cold/sweep_index.json" cold_index)
string(FIND "${cold_index}" "\"cached\":true" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR "cold sweep against an empty cache reported a hit")
endif()
# All four outcomes (ok x3 + deadlock) are deterministic completions:
# four objects must have been stored.
file(GLOB objects "${OUT_DIR}/cache/objects/*")
list(LENGTH objects n)
if(NOT n EQUAL 4)
  message(FATAL_ERROR "cache holds ${n} objects after the cold sweep, "
    "expected 4")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/cold/reports"
  --metrics "${OUT_DIR}/cold/metrics.json"
  --index "${OUT_DIR}/cold/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold sweep artifacts failed validation: ${rc}")
endif()

# Phase 2: warm sweep — 100% hits, byte-identical artifacts.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/warm"
  --cache "${OUT_DIR}/cache" --metrics "${OUT_DIR}/warm/metrics.json"
  ${manifest} RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "warm sweep with a failing self-test exited 0")
endif()
file(READ "${OUT_DIR}/warm/sweep_index.json" warm_index)
string(FIND "${warm_index}" "\"cached\":false" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR "warm sweep missed the cache for at least one job")
endif()

file(GLOB cold_reports "${OUT_DIR}/cold/reports/*.json")
list(LENGTH cold_reports n)
if(NOT n EQUAL 4)
  message(FATAL_ERROR "cold sweep wrote ${n} reports, expected 4")
endif()
foreach(report IN LISTS cold_reports)
  get_filename_component(fname "${report}" NAME)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${report}" "${OUT_DIR}/warm/reports/${fname}" RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR "cached report ${fname} differs from cold run")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${OUT_DIR}/cold/dumps/selftest.deadlock.dump.json"
  "${OUT_DIR}/warm/dumps/selftest.deadlock.dump.json" RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR "cached core dump differs from cold run")
endif()

# Index byte-identity modulo wall-clock data: strip wall_ms and cached
# from both and demand equality.
foreach(which cold warm)
  string(REGEX REPLACE "\"wall_ms\":[0-9.e+-]+" "\"wall_ms\":0"
    ${which}_norm "${${which}_index}")
  string(REGEX REPLACE "\"cached\":(true|false)" "\"cached\":x"
    ${which}_norm "${${which}_norm}")
endforeach()
if(NOT cold_norm STREQUAL warm_norm)
  message(FATAL_ERROR
    "warm index differs from cold beyond wall_ms/cached")
endif()

execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/warm/reports"
  --metrics "${OUT_DIR}/warm/metrics.json"
  --index "${OUT_DIR}/warm/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm sweep artifacts failed validation: ${rc}")
endif()

# Phase 3: determinism audit — every hit re-simulated and byte-compared.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/audit"
  --cache "${OUT_DIR}/cache" --cache-verify
  --metrics "${OUT_DIR}/audit/metrics.json" ${manifest} RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "audit sweep with a failing self-test exited 0")
endif()
file(READ "${OUT_DIR}/audit/metrics.json" audit_metrics)
foreach(needle "\"cache.hits\":4" "\"cache.verified\":4"
    "\"cache.verify_failed\":0")
  string(FIND "${audit_metrics}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "audit metrics lack ${needle}")
  endif()
endforeach()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/audit/reports"
  --metrics "${OUT_DIR}/audit/metrics.json"
  --index "${OUT_DIR}/audit/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "audit sweep artifacts failed validation: ${rc}")
endif()

# Phase 4: the cold and warm sweeps are the same work — the history
# store must assign them the same stable run id and ingest exactly once.
execute_process(COMMAND "${HISTORY}" ingest --sweep "${OUT_DIR}/cold"
  --history "${OUT_DIR}/history" RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "history ingest of the cold sweep failed: ${rc}")
endif()
if(NOT out MATCHES "ingested 3 run")
  message(FATAL_ERROR "cold ingest did not record 3 runs: ${out}")
endif()
execute_process(COMMAND "${HISTORY}" ingest --sweep "${OUT_DIR}/warm"
  --history "${OUT_DIR}/history" RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "history ingest of the warm sweep failed: ${rc}")
endif()
if(NOT out MATCHES "ingested 0 run.*3 already present")
  message(FATAL_ERROR
    "warm ingest was not idempotent with the cold sweep: ${out}")
endif()

# Phase 5: incompatible-flag guard.
execute_process(COMMAND "${SWEEP}" --pipeview --cache "${OUT_DIR}/cache"
  --out "${OUT_DIR}/never" bt.serial RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--pipeview with --cache was not refused")
endif()
if(EXISTS "${OUT_DIR}/never/sweep_index.json")
  message(FATAL_ERROR "refused sweep still wrote an index")
endif()
