# Smoke test driver: run a bench binary with report emission enabled —
# and, when TRACE_DIR is given, with telemetry enabled too; when PROFILE
# is set, with the per-PC profiler on — then validate the artifacts with
# check_reports. Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DBENCH=... -DCHECKER=... -DREPORT_DIR=... [-DTRACE_DIR=...]
#     [-DPROFILE=1] -P report_smoke.cmake
file(REMOVE_RECURSE "${REPORT_DIR}")
file(MAKE_DIRECTORY "${REPORT_DIR}")

set(ENV{SMT_BENCH_REPORT_DIR} "${REPORT_DIR}")
if(TRACE_DIR)
  file(REMOVE_RECURSE "${TRACE_DIR}")
  file(MAKE_DIRECTORY "${TRACE_DIR}")
  set(ENV{SMT_BENCH_TRACE_DIR} "${TRACE_DIR}")
endif()
if(PROFILE)
  set(ENV{SMT_BENCH_PROFILE} "1")
endif()
execute_process(COMMAND "${BENCH}" RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench binary failed: ${bench_rc}")
endif()

if(TRACE_DIR)
  execute_process(COMMAND "${CHECKER}" "${REPORT_DIR}" "${TRACE_DIR}"
    RESULT_VARIABLE rc)
else()
  execute_process(COMMAND "${CHECKER}" "${REPORT_DIR}" RESULT_VARIABLE rc)
endif()
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "artifacts failed validation: ${rc}")
endif()
