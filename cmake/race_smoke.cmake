# Race-detection smoke driver: the guest-program verifier's dynamic gate.
# Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DSWEEP=... -DCHECKER=... -DOUT_DIR=... -P race_smoke.cmake
#
# Runs the sweep with the deliberately racy self-test job injected next to
# a healthy one: the sweep must exit nonzero, the index must record the
# structured race_detected outcome (not a crash, not a verify failure),
# and every report — the racy job's included — must stay schema-valid.

file(REMOVE_RECURSE "${OUT_DIR}")

execute_process(COMMAND "${SWEEP}" --jobs 2 --out "${OUT_DIR}"
  mm.serial.n64 selftest.race RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "sweep with injected race unexpectedly exited 0")
endif()

if(NOT EXISTS "${OUT_DIR}/sweep_index.json")
  message(FATAL_ERROR "race sweep did not write sweep_index.json")
endif()
file(READ "${OUT_DIR}/sweep_index.json" index)
foreach(needle
    "\"failed\":1"
    "\"outcome\":\"race_detected\""
    "\"outcome\":\"ok\"")
  string(FIND "${index}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "sweep_index.json lacks ${needle}")
  endif()
endforeach()

file(GLOB reports "${OUT_DIR}/reports/*.json")
list(LENGTH reports n)
if(NOT n EQUAL 2)
  message(FATAL_ERROR "race sweep wrote ${n} reports, expected 2")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/reports" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "race sweep reports failed validation: ${rc}")
endif()
