# smt_explain smoke driver: inject a deadlock through the sweep, then
# require that the diagnoser renders its core dump into an explanation
# naming the actual failure. Invoked by ctest (see tools/CMakeLists.txt):
#   cmake -DSWEEP=... -DEXPLAIN=... -DOUT_DIR=... -P explain_smoke.cmake
file(REMOVE_RECURSE "${OUT_DIR}")

# A deliberately deadlocking job: cpu0 halts awaiting an IPI that is
# never sent. The sweep exits nonzero but leaves the dump behind.
execute_process(COMMAND "${SWEEP}" --quiet --out "${OUT_DIR}"
  selftest.deadlock RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "deadlock sweep unexpectedly exited 0")
endif()

set(dump "${OUT_DIR}/dumps/selftest.deadlock.dump.json")
if(NOT EXISTS "${dump}")
  message(FATAL_ERROR "sweep left no core dump at ${dump}")
endif()

# The dump records the death cycle; the diagnosis must name it.
file(READ "${dump}" dump_json)
string(REGEX MATCH "\"cycle\":([0-9]+)" _ "${dump_json}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "dump carries no death cycle")
endif()
set(death_cycle "${CMAKE_MATCH_1}")

execute_process(COMMAND "${EXPLAIN}" "${dump}"
  OUTPUT_VARIABLE diagnosis RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_explain failed on a valid dump: ${rc}")
endif()

foreach(needle
    "outcome: deadlock at cycle ${death_cycle}"
    "awaiting IPI"
    "diagnosis:"
    "wake-up")
  string(FIND "${diagnosis}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "diagnosis lacks \"${needle}\":\n${diagnosis}")
  endif()
endforeach()

# Exit-code contract: no arguments is a usage error (2); a run report is
# not a core dump (1).
execute_process(COMMAND "${EXPLAIN}" RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "smt_explain without arguments exited ${rc}, not 2")
endif()
execute_process(COMMAND "${EXPLAIN}"
  "${OUT_DIR}/reports/selftest.deadlock.json"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "smt_explain on a non-dump exited ${rc}, not 1")
endif()
