# Sweep smoke driver: exercise the smt_sweep orchestrator end to end.
# Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DSWEEP=... -DCHECKER=... -DOUT_DIR=... -P sweep_smoke.cmake
#
# Three runs:
#   1. serial (--jobs 1) reference sweep over a small healthy manifest;
#   2. the same manifest on 4 workers with the observability artifacts
#      (--metrics/--trace) enabled — every per-job report must be
#      byte-identical to the serial run's (determinism gate: host-side
#      metrics/tracing must not leak into simulation artifacts), and the
#      metrics snapshot must cross-check against the sweep index;
#   3. the manifest with deliberately failing self-test jobs injected —
#      the sweep must exit nonzero and name the failures, yet still write
#      a complete sweep_index.json, a valid (check_reports-clean) report
#      for every job including the failed ones, and an smt-core-dump/1
#      under dumps/ for every job that died diagnosably;
#   4. the manifest again with --pipeview — Kanata artifacts must appear
#      per job while every report stays byte-identical to the serial
#      reference (pipeline tracing must not leak into measurements).
set(manifest mm.serial.n64 mm.tlp-fine.n64 lu.serial.n64 bt.serial)

file(REMOVE_RECURSE "${OUT_DIR}")

execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/serial"
  ${manifest} RESULT_VARIABLE rc ERROR_VARIABLE serial_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial sweep failed: ${rc}")
endif()

# Regression gate for the progress line: when stderr is a pipe (as here),
# the interactive \r-redrawn progress display must stay silent.
string(ASCII 13 CR)
string(FIND "${serial_err}" "${CR}" cr_pos)
if(NOT cr_pos EQUAL -1)
  message(FATAL_ERROR "sweep emitted a \\r progress line on piped stderr")
endif()

execute_process(COMMAND "${SWEEP}" --jobs 4 --out "${OUT_DIR}/parallel"
  --metrics "${OUT_DIR}/parallel/metrics.json"
  --trace "${OUT_DIR}/parallel/trace/sweep.trace.json"
  ${manifest} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel sweep failed: ${rc}")
endif()

list(LENGTH manifest expected)
file(GLOB serial_reports "${OUT_DIR}/serial/reports/*.json")
list(LENGTH serial_reports n)
if(NOT n EQUAL expected)
  message(FATAL_ERROR "serial sweep wrote ${n} reports, expected ${expected}")
endif()
foreach(report IN LISTS serial_reports)
  get_filename_component(fname "${report}" NAME)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${report}" "${OUT_DIR}/parallel/reports/${fname}" RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR "parallel report ${fname} differs from serial run")
  endif()
endforeach()

execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/serial/reports"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial sweep reports failed validation: ${rc}")
endif()

# Parallel pass also validates the Chrome trace and cross-checks the
# metrics snapshot against the sweep index.
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/parallel/reports"
  "${OUT_DIR}/parallel/trace"
  --metrics "${OUT_DIR}/parallel/metrics.json"
  --index "${OUT_DIR}/parallel/sweep_index.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel sweep artifacts failed validation: ${rc}")
endif()

# Failure injection: a deadlock, a blown cycle budget and a verification
# failure ride along with one healthy job.
execute_process(COMMAND "${SWEEP}" --jobs 2 --out "${OUT_DIR}/injected"
  mm.serial.n64 selftest.deadlock selftest.budget selftest.verify-fail
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "sweep with injected failures unexpectedly exited 0")
endif()

if(NOT EXISTS "${OUT_DIR}/injected/sweep_index.json")
  message(FATAL_ERROR "failed sweep did not write sweep_index.json")
endif()
file(READ "${OUT_DIR}/injected/sweep_index.json" index)
foreach(needle
    "\"schema\":\"smt-sweep-index/1\""
    "\"failed\":3"
    "\"outcome\":\"deadlock\""
    "\"outcome\":\"cycle_budget_exceeded\""
    "\"outcome\":\"verify_failed\""
    "\"outcome\":\"ok\"")
  string(FIND "${index}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "sweep_index.json lacks ${needle}")
  endif()
endforeach()

# Every job — failed ones included — must have left a schema-valid report.
file(GLOB injected_reports "${OUT_DIR}/injected/reports/*.json")
list(LENGTH injected_reports n)
if(NOT n EQUAL 4)
  message(FATAL_ERROR "injected sweep wrote ${n} reports, expected 4")
endif()

# The diagnosably-dead jobs (deadlock, blown budget) must have left core
# dumps that the index references; the healthy and verify-failed jobs
# must not (there is no post-mortem state worth dumping for a wrong
# answer). check_reports --dumps validates the dump schema.
foreach(needle
    "\"dump\":\"dumps/selftest.deadlock.dump.json\""
    "\"dump\":\"dumps/selftest.budget.dump.json\"")
  string(FIND "${index}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "sweep_index.json lacks ${needle}")
  endif()
endforeach()
file(GLOB injected_dumps "${OUT_DIR}/injected/dumps/*.json")
list(LENGTH injected_dumps n)
if(NOT n EQUAL 2)
  message(FATAL_ERROR "injected sweep wrote ${n} dumps, expected 2")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/injected/reports"
  --dumps "${OUT_DIR}/injected/dumps" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "injected sweep artifacts failed validation: ${rc}")
endif()

# --pipeview: Kanata traces appear per job, reports stay byte-identical.
execute_process(COMMAND "${SWEEP}" --jobs 2 --pipeview
  --out "${OUT_DIR}/pipeview" ${manifest} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pipeview sweep failed: ${rc}")
endif()
foreach(report IN LISTS serial_reports)
  get_filename_component(fname "${report}" NAME)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${report}" "${OUT_DIR}/pipeview/reports/${fname}" RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR "pipeview report ${fname} differs from serial run")
  endif()
endforeach()
file(GLOB kanata_files "${OUT_DIR}/pipeview/pipeview/*.kanata")
list(LENGTH kanata_files n)
if(NOT n EQUAL expected)
  message(FATAL_ERROR "pipeview sweep wrote ${n} Kanata files, "
    "expected ${expected}")
endif()
foreach(kf IN LISTS kanata_files)
  file(READ "${kf}" head LIMIT 16)
  if(NOT head MATCHES "^Kanata")
    message(FATAL_ERROR "${kf} does not start with a Kanata header")
  endif()
endforeach()
