# Resume/cancellation smoke driver: exercise smt_sweep's mid-sweep
# cancellation and --resume re-execution. Invoked by ctest (see
# tools/CMakeLists.txt) as:
#   cmake -DSWEEP=... -DCHECKER=... -DOUT_DIR=... -P resume_smoke.cmake
#
# Phases:
#   1. cancelled: a serial sweep over four jobs with --cancel-after 2.
#      The pool must finish the in-flight jobs, skip the rest, and still
#      write a schema-valid index: two "ok" entries and two structured
#      "cancelled" entries with attempts=0 and no artifacts. The metrics
#      snapshot must cross-check (check_reports holds jobs_started to
#      total - cancelled and the queue-depth gauge to the skipped
#      count).
#   2. resumed: the same sweep with --resume. Exactly the unfinished two
#      jobs execute; the completed jobs' reports are carried over
#      byte-untouched ("cached":true), manifest order is preserved, and
#      the sweep exits 0 with every job ok.
#   3. scrub: a job that dies by injected watchdog timeout on its first
#      attempt strands garbage artifacts; the pool must delete them
#      before the retry, leaving only the surviving attempt's bytes —
#      the self-test shares mm.serial.n64's workload, so its report must
#      be byte-identical to that job's report from the same sweep.
#   4. fresh --resume: resuming into an out dir with no prior index just
#      runs everything.
set(manifest mm.serial.n64 lu.serial.n64 bt.serial mm.tlp-fine.n64)

file(REMOVE_RECURSE "${OUT_DIR}")

# Phase 1: cancel after the second completion.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/run"
  --cancel-after 2 --metrics "${OUT_DIR}/cancelled-metrics.json"
  ${manifest} RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "cancelled sweep unexpectedly exited 0")
endif()
file(READ "${OUT_DIR}/run/sweep_index.json" index)
foreach(needle
    "\"schema\":\"smt-sweep-index/1\""
    "\"name\":\"mm.serial.n64\",\"outcome\":\"ok\""
    "\"name\":\"lu.serial.n64\",\"outcome\":\"ok\""
    "\"name\":\"bt.serial\",\"outcome\":\"cancelled\""
    "\"name\":\"mm.tlp-fine.n64\",\"outcome\":\"cancelled\"")
  string(FIND "${index}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "cancelled index lacks ${needle}")
  endif()
endforeach()
# Skipped jobs never ran: no attempts, no reports.
string(REGEX MATCHALL "\"outcome\":\"cancelled\",\"message\":[^}]*\"attempts\":0"
  skipped "${index}")
list(LENGTH skipped n)
if(NOT n EQUAL 2)
  message(FATAL_ERROR "expected 2 cancelled jobs with attempts=0, got ${n}")
endif()
file(GLOB cancelled_reports "${OUT_DIR}/run/reports/*.json")
list(LENGTH cancelled_reports n)
if(NOT n EQUAL 2)
  message(FATAL_ERROR "cancelled sweep wrote ${n} reports, expected 2")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/run/reports"
  --metrics "${OUT_DIR}/cancelled-metrics.json"
  --index "${OUT_DIR}/run/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cancelled sweep artifacts failed validation: ${rc}")
endif()

# Keep copies of the completed reports: --resume must not rewrite them.
file(COPY "${OUT_DIR}/run/reports/mm.serial.n64.json"
  "${OUT_DIR}/run/reports/lu.serial.n64.json"
  DESTINATION "${OUT_DIR}/saved")

# Phase 2: resume completes exactly the unfinished set.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/run"
  --resume --metrics "${OUT_DIR}/resumed-metrics.json"
  ${manifest} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed sweep failed: ${rc}")
endif()
file(READ "${OUT_DIR}/run/sweep_index.json" index)
string(FIND "${index}" "\"outcome\":\"cancelled\"" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR "resumed index still holds a cancelled job")
endif()
# Carried-over jobs are marked cached; re-executed ones are not. The
# index preserves manifest order, so the pattern is fully determined.
string(REGEX MATCHALL "\"cached\":true" hits "${index}")
list(LENGTH hits n)
if(NOT n EQUAL 2)
  message(FATAL_ERROR "resumed index carries ${n} cached jobs, expected 2")
endif()
foreach(fname mm.serial.n64.json lu.serial.n64.json)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${OUT_DIR}/saved/${fname}" "${OUT_DIR}/run/reports/${fname}"
    RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR "resume rewrote the completed report ${fname}")
  endif()
endforeach()
file(GLOB resumed_reports "${OUT_DIR}/run/reports/*.json")
list(LENGTH resumed_reports n)
if(NOT n EQUAL 4)
  message(FATAL_ERROR "resumed sweep holds ${n} reports, expected 4")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/run/reports"
  --metrics "${OUT_DIR}/resumed-metrics.json"
  --index "${OUT_DIR}/run/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed sweep artifacts failed validation: ${rc}")
endif()

# Phase 3: injected first-attempt timeout — stale artifacts must be
# scrubbed before the retry. selftest.timeout-once strands garbage
# report/dump bytes, then (attempt 2) runs mm.serial.n64's workload; the
# surviving report must be byte-identical to the healthy job's.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/scrub"
  --timeout-ms 60000 --metrics "${OUT_DIR}/scrub/metrics.json"
  mm.serial.n64 selftest.timeout-once RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scrub sweep failed: ${rc}")
endif()
file(READ "${OUT_DIR}/scrub/sweep_index.json" index)
string(FIND "${index}" "\"name\":\"selftest.timeout-once\",\"outcome\":\"ok\""
  pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "timeout-once job did not recover to ok")
endif()
string(REGEX MATCH "\"attempts\":2" retried "${index}")
if(NOT retried)
  message(FATAL_ERROR "timeout-once job was not retried")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${OUT_DIR}/scrub/reports/mm.serial.n64.json"
  "${OUT_DIR}/scrub/reports/selftest.timeout-once.json" RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
    "surviving report differs from the reference workload's — stale "
    "first-attempt bytes leaked through the retry")
endif()
# The stranded dump garbage must be gone: nothing in this sweep dies
# with a core dump.
file(GLOB scrub_dumps "${OUT_DIR}/scrub/dumps/*")
list(LENGTH scrub_dumps n)
if(NOT n EQUAL 0)
  message(FATAL_ERROR "scrub sweep left ${n} stale dump artifact(s)")
endif()
execute_process(COMMAND "${CHECKER}" "${OUT_DIR}/scrub/reports"
  --metrics "${OUT_DIR}/scrub/metrics.json"
  --index "${OUT_DIR}/scrub/sweep_index.json" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scrub sweep artifacts failed validation: ${rc}")
endif()

# Phase 4: --resume with no prior index runs everything normally.
execute_process(COMMAND "${SWEEP}" --jobs 1 --out "${OUT_DIR}/fresh"
  --resume bt.serial RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fresh --resume sweep failed: ${rc}")
endif()
file(READ "${OUT_DIR}/fresh/sweep_index.json" index)
string(FIND "${index}" "\"cached\":true" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR "fresh --resume sweep fabricated a cache hit")
endif()
