# Lint smoke driver: the guest-program verifier's static gate.
# Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DLINT=... -P lint_smoke.cmake
#
# Two runs:
#   1. smt_lint over the full experiment registry — every emitted program
#      of every kernel mode must come back finding-free;
#   2. smt_lint --selftest — one deliberately broken program per lint
#      rule, each of which the lint must catch (exit 0 = all caught).

execute_process(COMMAND "${LINT}" RESULT_VARIABLE rc OUTPUT_VARIABLE out
  ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_lint found problems in registry programs:\n${out}")
endif()
string(FIND "${out}" "0 finding(s)" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "smt_lint summary missing/unexpected:\n${out}")
endif()

execute_process(COMMAND "${LINT}" --selftest RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_lint --selftest missed a seeded violation:\n${out}")
endif()
foreach(rule uninit-read missing-pause lock-pairing sync-region-write
    out-of-extent unreachable fall-off-end)
  string(FIND "${out}" "caught ${rule}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "selftest output lacks 'caught ${rule}':\n${out}")
  endif()
endforeach()
