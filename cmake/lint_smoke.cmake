# Lint smoke driver: the guest-program verifier's static gate.
# Invoked by ctest (see tools/CMakeLists.txt) as:
#   cmake -DLINT=... -P lint_smoke.cmake
#
# Three runs:
#   1. smt_lint over the full experiment registry — every emitted program
#      of every kernel mode must come back with zero errors and zero
#      warnings (the summary line is matched exactly);
#   2. smt_lint --format=json — the structured report must carry the
#      versioned schema tag and clean totals;
#   3. smt_lint --selftest — one deliberately broken program per lint
#      rule, each of which the lint must catch (exit 0 = all caught).

execute_process(COMMAND "${LINT}" RESULT_VARIABLE rc OUTPUT_VARIABLE out
  ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_lint found problems in registry programs:\n${out}")
endif()
string(FIND "${out}" "0 error(s), 0 warning(s)" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "smt_lint summary missing/unexpected:\n${out}")
endif()

execute_process(COMMAND "${LINT}" --format=json RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_lint --format=json failed:\n${out}${err}")
endif()
foreach(needle "\"schema\":\"smt-lint-report/1\"" "\"errors\":0"
    "\"warnings\":0")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "smt_lint JSON report lacks '${needle}':\n${out}")
  endif()
endforeach()

execute_process(COMMAND "${LINT}" --selftest RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "smt_lint --selftest missed a seeded violation:\n${out}")
endif()
foreach(rule uninit-read missing-pause lock-pairing sync-region-write
    out-of-extent range-out-of-extent unreachable fall-off-end
    barrier-mismatch lock-order)
  string(FIND "${out}" "caught ${rule}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "selftest output lacks 'caught ${rule}':\n${out}")
  endif()
endforeach()
