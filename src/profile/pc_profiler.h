// Per-PC attribution profiler (the counter-driven-characterization lens).
//
// The paper's methodology attributes totals to causes: Table 1 maps the
// dynamic mix to execution subunits, and §5.2 ties slowdowns to store-buffer
// stalls and L2 read misses. This profiler goes one step finer and attributes
// those quantities to *program counters*: per logical CPU and per PC it
// accumulates retired instructions/uops, issue-port occupancy (which uops
// went down ALU0 vs ALU1 vs the shared FP port...), stall cycles by blocking
// reason, and demand L1/L2 misses. Joined with `isa::disasm` it yields
// annotated disassembly — e.g. the ALU0-only mask instructions of the
// blocked-layout MM light up with alu0-port traffic and port-conflict stalls.
//
// Attribution semantics (DESIGN.md §9): a "stalled PC" is the PC of the
// *oldest blocked uop* for that reason — the front-of-queue uop for
// allocation stalls (ROB/load-queue/store-buffer), the next fetch PC for
// uop-queue-full, and the oldest dep-ready unissued uop for issue-side
// blocks (port conflict / divider busy). Reasons are not mutually exclusive
// within a cycle: one context can be allocation-stalled and issue-blocked in
// the same cycle, so stall-cycle sums across reasons may exceed run cycles.
//
// Guarantees mirror the sampler/tracer contracts: attaching the profiler
// never changes any perf counter (hooks are read-only observers), and all
// attributions are exact under event-skip fast-forward (regression-tested
// bit-identical against single-cycle stepping in tests/pc_profiler_test.cc).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "cpu/core.h"
#include "isa/program.h"

namespace smt::profile {

/// Everything attributed to one (cpu, pc) pair.
struct PcStats {
  uint64_t retired_instrs = 0;  // kInstrRetired share (1 per instruction)
  uint64_t retired_uops = 0;    // kUopsRetired share (xchg counts 2)
  uint64_t l1_misses = 0;       // demand accesses not served by L1
  uint64_t l2_misses = 0;       // demand accesses missing L2 too
  std::array<uint64_t, cpu::kNumBlockReasons> stalls{};   // cycles, by reason
  std::array<uint64_t, cpu::kNumIssuePorts> port_uops{};  // issued, by port
};

class PcProfiler : public cpu::PipelineObserver {
 public:
  void on_issue(CpuId cpu, cpu::IssuePort port, uint32_t pc) override;
  void on_block(CpuId cpu, cpu::BlockReason reason, uint32_t pc,
                Cycle cycles) override;
  void on_demand_miss(CpuId cpu, uint32_t pc, bool l2_miss) override;
  void on_retire_uop(CpuId cpu, const cpu::DynUop& uop, int uops) override;

  /// Remember the program loaded on `cpu` so reports can carry per-PC
  /// disassembly and stay self-contained.
  void set_program(CpuId cpu, const isa::Program& prog);

  /// Per-PC attribution map, in PC order (std::map keeps it deterministic).
  const std::map<uint32_t, PcStats>& pcs(CpuId cpu) const {
    return pcs_[idx(cpu)];
  }
  /// Whole-run uop count per issue port for this context.
  const std::array<uint64_t, cpu::kNumIssuePorts>& port_totals(
      CpuId cpu) const {
    return port_totals_[idx(cpu)];
  }
  /// Disassembly for `pc` as loaded via set_program ("" if unknown).
  std::string disasm(CpuId cpu, uint32_t pc) const;

  void reset();

 private:
  std::array<std::map<uint32_t, PcStats>, kNumLogicalCpus> pcs_{};
  std::array<std::array<uint64_t, cpu::kNumIssuePorts>, kNumLogicalCpus>
      port_totals_{};
  std::array<std::map<uint32_t, std::string>, kNumLogicalCpus> disasm_{};
};

}  // namespace smt::profile
