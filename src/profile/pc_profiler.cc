#include "profile/pc_profiler.h"

#include "isa/disasm.h"

namespace smt::profile {

void PcProfiler::on_issue(CpuId cpu, cpu::IssuePort port, uint32_t pc) {
  const int p = static_cast<int>(port);
  pcs_[idx(cpu)][pc].port_uops[p] += 1;
  port_totals_[idx(cpu)][p] += 1;
}

void PcProfiler::on_block(CpuId cpu, cpu::BlockReason reason, uint32_t pc,
                          Cycle cycles) {
  pcs_[idx(cpu)][pc].stalls[static_cast<int>(reason)] += cycles;
}

void PcProfiler::on_demand_miss(CpuId cpu, uint32_t pc, bool l2_miss) {
  PcStats& s = pcs_[idx(cpu)][pc];
  s.l1_misses += 1;
  if (l2_miss) s.l2_misses += 1;
}

void PcProfiler::on_retire_uop(CpuId cpu, const cpu::DynUop& uop, int uops) {
  PcStats& s = pcs_[idx(cpu)][uop.pc];
  s.retired_instrs += 1;
  s.retired_uops += static_cast<uint64_t>(uops);
}

void PcProfiler::set_program(CpuId cpu, const isa::Program& prog) {
  std::map<uint32_t, std::string>& d = disasm_[idx(cpu)];
  d.clear();
  for (size_t pc = 0; pc < prog.size(); ++pc) {
    d[static_cast<uint32_t>(pc)] = isa::disasm(prog.at(pc));
  }
}

std::string PcProfiler::disasm(CpuId cpu, uint32_t pc) const {
  const auto& d = disasm_[idx(cpu)];
  const auto it = d.find(pc);
  return it == d.end() ? std::string() : it->second;
}

void PcProfiler::reset() {
  for (auto& m : pcs_) m.clear();
  for (auto& a : port_totals_) a.fill(0);
}

}  // namespace smt::profile
