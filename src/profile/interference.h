// SMT interference attribution: who made each stall cycle happen.
//
// The existing counters say *that* a context stalled (rob/load-queue/
// store-buffer/uop-queue cycles) and the PC profiler says *where*; this
// profiler says *who* — for every stall cycle it records whether the
// stall was self-inflicted or manufactured by the sibling context, and
// which shared resource carried the blame:
//
//   - allocation/frontend stalls (rob, load_queue, store_buffer,
//     uop_queue_full): sibling-blamed when the uop would have fit into
//     the full structure and only the static SMT half-partition made it
//     stall (the Tuck&Tullsen-style partitioning cost);
//   - port conflicts: the contended IssuePort, sibling-blamed when the
//     sibling issued onto the exhausted port that cycle; conflicts with
//     no exhausted port are raw issue-bandwidth losses ("issue_width");
//   - divider busy: sibling-blamed when the unpipelined divider is
//     mid-operation on a sibling divide;
//   - L2 capacity: demand L2 misses on lines the sibling's fills evicted
//     (tracked by mem::CacheHierarchy, copied in by the Machine).
//
// Hard invariant (checked by tools/check_reports and
// tests/interference_test.cc): per reason, self + sibling cycles equal
// the corresponding stall counter bit-exactly, under both event_skip
// modes — the hooks are raised by cpu::Core::record_cycle_counters at the
// exact points the counters are bumped. Like the PC profiler, attaching
// never perturbs any counter and costs nothing when detached.
#pragma once

#include <array>
#include <cstdint>

#include "cpu/core.h"

namespace smt::profile {

/// Per-CPU interference ledger. `port_self`/`port_sibling` decompose the
/// kPortConflict cycles by contended port; index kNumIssuePorts is the
/// "no specific port — raw issue bandwidth" bucket.
struct CpuInterference {
  static constexpr int kIssueBandwidth = cpu::kNumIssuePorts;

  std::array<uint64_t, cpu::kNumBlockReasons> self{};
  std::array<uint64_t, cpu::kNumBlockReasons> sibling{};
  std::array<uint64_t, cpu::kNumIssuePorts + 1> port_self{};
  std::array<uint64_t, cpu::kNumIssuePorts + 1> port_sibling{};
  uint64_t l2_sibling_evictions = 0;

  uint64_t total(cpu::BlockReason r) const {
    return self[static_cast<int>(r)] + sibling[static_cast<int>(r)];
  }
  uint64_t sibling_total() const {
    uint64_t sum = 0;
    for (const uint64_t v : sibling) sum += v;
    return sum;
  }
};

class InterferenceProfiler : public cpu::PipelineObserver {
 public:
  // Only on_interference is consumed; the mandatory hooks are no-ops.
  void on_issue(CpuId, cpu::IssuePort, uint32_t) override {}
  void on_block(CpuId, cpu::BlockReason, uint32_t, Cycle) override {}
  void on_demand_miss(CpuId, uint32_t, bool) override {}
  void on_retire_uop(CpuId, const cpu::DynUop&, int) override {}

  void on_interference(CpuId cpu, cpu::BlockReason reason, bool sibling,
                       int port, Cycle cycles) override;

  const CpuInterference& stats(CpuId cpu) const { return stats_[idx(cpu)]; }

  /// Fills the L2 capacity-interference dimension from the hierarchy's
  /// eviction bookkeeping (assignment, so repeated finalization at the
  /// several stats-collection points stays idempotent).
  void set_l2_sibling_evictions(CpuId cpu, uint64_t misses) {
    stats_[idx(cpu)].l2_sibling_evictions = misses;
  }

  void reset() { stats_ = {}; }

 private:
  std::array<CpuInterference, kNumLogicalCpus> stats_{};
};

}  // namespace smt::profile
