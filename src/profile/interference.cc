#include "profile/interference.h"

#include "common/check.h"

namespace smt::profile {

void InterferenceProfiler::on_interference(CpuId cpu, cpu::BlockReason reason,
                                           bool sibling, int port,
                                           Cycle cycles) {
  CpuInterference& s = stats_[idx(cpu)];
  const int r = static_cast<int>(reason);
  (sibling ? s.sibling : s.self)[r] += cycles;
  if (reason == cpu::BlockReason::kPortConflict) {
    SMT_DCHECK(port >= -1 && port < cpu::kNumIssuePorts);
    const int slot = port < 0 ? CpuInterference::kIssueBandwidth : port;
    (sibling ? s.port_sibling : s.port_self)[slot] += cycles;
  }
}

}  // namespace smt::profile
