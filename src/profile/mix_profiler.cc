#include "profile/mix_profiler.h"

#include <cstdio>

#include "common/check.h"

namespace smt::profile {

namespace {
constexpr const char* kSubunitNames[] = {
    "ALUs",   "INT_MUL", "INT_DIV", "FP_ADD", "FP_MUL",
    "FP_DIV", "FP_MOVE", "LOAD",    "STORE",  "OTHER",
};
}

const char* name(Subunit s) {
  return kSubunitNames[static_cast<int>(s)];
}

Subunit subunit_of(isa::UnitClass u) {
  using isa::UnitClass;
  switch (u) {
    case UnitClass::kAlu:
    case UnitClass::kAlu0:
    case UnitClass::kBranch:
      return Subunit::kAlus;
    case UnitClass::kIntMul: return Subunit::kIntMul;
    case UnitClass::kIntDiv: return Subunit::kIntDiv;
    case UnitClass::kFpAdd: return Subunit::kFpAdd;
    case UnitClass::kFpMul: return Subunit::kFpMul;
    case UnitClass::kFpDiv: return Subunit::kFpDiv;
    case UnitClass::kFpMove: return Subunit::kFpMove;
    case UnitClass::kLoad: return Subunit::kLoad;
    case UnitClass::kStore: return Subunit::kStore;
    case UnitClass::kNone: return Subunit::kOther;
  }
  return Subunit::kOther;
}

void MixProfiler::on_retire(CpuId cpu, const cpu::DynUop& uop) {
  ++counts_[idx(cpu)][static_cast<int>(subunit_of(uop.unit))];
  ++total_[idx(cpu)];
}

double MixProfiler::pct(CpuId cpu, Subunit s) const {
  const uint64_t t = total_[idx(cpu)];
  if (t == 0) return 0.0;
  return 100.0 * static_cast<double>(count(cpu, s)) / static_cast<double>(t);
}

void MixProfiler::reset() {
  counts_ = {};
  total_ = {};
}

std::string MixProfiler::column(CpuId cpu) const {
  std::string out;
  char buf[64];
  for (int s = 0; s < static_cast<int>(Subunit::kNumSubunits); ++s) {
    const auto su = static_cast<Subunit>(s);
    if (count(cpu, su) == 0) continue;
    std::snprintf(buf, sizeof buf, "%-8s %6.2f%%\n", name(su), pct(cpu, su));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "Total instr: %llu\n",
                static_cast<unsigned long long>(total(cpu)));
  out += buf;
  return out;
}

}  // namespace smt::profile
