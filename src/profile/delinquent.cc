#include "profile/delinquent.h"

#include <algorithm>
#include <cstdio>

#include "isa/disasm.h"

namespace smt::profile {

std::vector<DelinquentLoad> find_delinquent_loads(
    const mem::CacheHierarchy& hier, CpuId cpu, const isa::Program& prog,
    double coverage) {
  const auto& pc_misses = hier.pc_l2_misses(cpu);
  uint64_t total = 0;
  std::vector<DelinquentLoad> all;
  all.reserve(pc_misses.size());
  for (const auto& [pc, misses] : pc_misses) {
    total += misses;
    DelinquentLoad d;
    d.pc = pc;
    d.l2_misses = misses;
    if (pc < prog.size()) d.disasm = isa::disasm(prog.at(pc));
    all.push_back(std::move(d));
  }
  if (total == 0) return {};

  std::sort(all.begin(), all.end(),
            [](const DelinquentLoad& a, const DelinquentLoad& b) {
              return a.l2_misses > b.l2_misses;
            });

  std::vector<DelinquentLoad> picked;
  uint64_t covered = 0;
  for (DelinquentLoad& d : all) {
    d.share = static_cast<double>(d.l2_misses) / static_cast<double>(total);
    if (static_cast<double>(covered) >=
        coverage * static_cast<double>(total)) {
      break;
    }
    covered += d.l2_misses;
    picked.push_back(d);
  }
  return picked;
}

std::string report(const std::vector<DelinquentLoad>& loads) {
  std::string out = "delinquent loads (pc, L2 misses, share):\n";
  char buf[160];
  for (const auto& d : loads) {
    std::snprintf(buf, sizeof buf, "  pc=%-5u %-10llu %5.1f%%  %s\n", d.pc,
                  static_cast<unsigned long long>(d.l2_misses),
                  100.0 * d.share, d.disasm.c_str());
    out += buf;
  }
  return out;
}

}  // namespace smt::profile
