// Pin-analog dynamic instruction-mix profiler (paper §5.3, Table 1).
//
// The paper instruments application binaries with Pin and breaks the
// dynamic instruction mix down by the execution subunit each instruction
// uses, explaining e.g. the ALU0 serialization of the mask-heavy MM code.
// Here the profiler attaches to the simulator's retire stage and performs
// the same classification on the uop stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cpu/core.h"
#include "isa/opcode.h"

namespace smt::profile {

/// Table-1 row categories.
enum class Subunit : uint8_t {
  kAlus,     // simple int ALU + logical/shift + branches
  kIntMul,
  kIntDiv,
  kFpAdd,
  kFpMul,
  kFpDiv,
  kFpMove,
  kLoad,     // demand loads + software prefetches
  kStore,
  kOther,    // pause/halt/ipi/nop
  kNumSubunits,
};

const char* name(Subunit s);

/// Maps an execution-unit class to its Table-1 category.
Subunit subunit_of(isa::UnitClass u);

class MixProfiler : public cpu::RetireObserver {
 public:
  void on_retire(CpuId cpu, const cpu::DynUop& uop) override;

  uint64_t total(CpuId cpu) const { return total_[idx(cpu)]; }
  uint64_t count(CpuId cpu, Subunit s) const {
    return counts_[idx(cpu)][static_cast<int>(s)];
  }
  /// Percentage of this context's retired instructions in category `s`.
  double pct(CpuId cpu, Subunit s) const;

  void reset();

  /// One Table-1-style column for a context: utilization percentages of the
  /// busiest subunits plus the total instruction count.
  std::string column(CpuId cpu) const;

 private:
  std::array<std::array<uint64_t, static_cast<int>(Subunit::kNumSubunits)>,
             kNumLogicalCpus>
      counts_{};
  std::array<uint64_t, kNumLogicalCpus> total_{};
};

}  // namespace smt::profile
