// Delinquent-load identification (the paper's Valgrind memory-profiling
// step): ranks static load instructions by the demand L2 misses they cause,
// so precomputation threads can be constructed from "the memory loads that
// triggered the majority (92%-96%) of L2 misses".
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"
#include "mem/hierarchy.h"

namespace smt::profile {

struct DelinquentLoad {
  uint32_t pc = 0;
  uint64_t l2_misses = 0;
  double share = 0.0;       ///< fraction of the context's total L2 misses
  std::string disasm;
};

/// Extracts the ranked delinquent loads of `cpu` from a hierarchy that ran
/// with set_track_pc_misses(true). `coverage` trims the list to the static
/// instructions covering that fraction of all misses (paper: 0.92-0.96).
std::vector<DelinquentLoad> find_delinquent_loads(
    const mem::CacheHierarchy& hier, CpuId cpu, const isa::Program& prog,
    double coverage = 0.95);

/// Human-readable report of the ranking.
std::string report(const std::vector<DelinquentLoad>& loads);

}  // namespace smt::profile
