#include "core/run_report.h"

#include <cstdio>

#include "common/io.h"
#include "common/json.h"

namespace smt::core {

namespace {

void write_cache_config(JsonWriter& w, const mem::CacheConfig& c) {
  w.begin_object();
  w.kv("name", c.name);
  w.kv("size_bytes", static_cast<uint64_t>(c.size_bytes));
  w.kv("assoc", c.assoc);
  w.kv("line_bytes", c.line_bytes);
  w.end_object();
}

void write_core_config(JsonWriter& w, const cpu::CoreConfig& c) {
  w.begin_object();
  w.kv("fetch_width", c.fetch_width);
  w.kv("dispatch_width", c.dispatch_width);
  w.kv("retire_width", c.retire_width);
  w.kv("issue_width", c.issue_width);
  w.kv("uop_queue_size", c.uop_queue_size);
  w.kv("rob_size", c.rob_size);
  w.kv("load_queue_size", c.load_queue_size);
  w.kv("store_buffer_size", c.store_buffer_size);
  w.kv("static_partitioning", c.static_partitioning);
  w.kv("sched_window", c.sched_window);
  w.kv("alu0_per_cycle", c.alu0_per_cycle);
  w.kv("alu1_per_cycle", c.alu1_per_cycle);
  w.kv("lat_simple_alu", c.lat_simple_alu);
  w.kv("lat_shift", c.lat_shift);
  w.kv("lat_imul", c.lat_imul);
  w.kv("lat_idiv", c.lat_idiv);
  w.kv("lat_fadd", c.lat_fadd);
  w.kv("lat_fmul", c.lat_fmul);
  w.kv("lat_fdiv", c.lat_fdiv);
  w.kv("lat_fmov", c.lat_fmov);
  w.kv("lat_branch", c.lat_branch);
  w.kv("fdiv_unpipelined", c.fdiv_unpipelined);
  w.kv("idiv_unpipelined", c.idiv_unpipelined);
  w.kv("pause_fetch_stall", c.pause_fetch_stall);
  w.kv("halt_enter_cost", c.halt_enter_cost);
  w.kv("halt_wake_cost", c.halt_wake_cost);
  w.kv("machine_clear_penalty", c.machine_clear_penalty);
  w.kv("machine_clear_window", c.machine_clear_window);
  w.kv("event_skip", c.event_skip);
  w.end_object();
}

void write_mem_config(JsonWriter& w, const mem::HierConfig& c) {
  w.begin_object();
  w.key("l1");
  write_cache_config(w, c.l1);
  w.key("l2");
  write_cache_config(w, c.l2);
  w.kv("l1_hit_lat", c.l1_hit_lat);
  w.kv("l2_hit_lat", c.l2_hit_lat);
  w.kv("mem_lat", c.mem_lat);
  w.kv("num_mshrs", c.num_mshrs);
  w.kv("bus_cycles_per_line", c.bus_cycles_per_line);
  w.kv("l2_cycles_per_access", c.l2_cycles_per_access);
  w.kv("hw_stream_prefetch", c.hw_stream_prefetch);
  w.kv("hw_prefetch_streams", c.hw_prefetch_streams);
  w.kv("hw_prefetch_degree", c.hw_prefetch_degree);
  w.end_object();
}

void write_breakdown(JsonWriter& w, const perfmon::CpuCycleBreakdown& b) {
  w.begin_object();
  w.kv("total", b.total);
  w.kv("active", b.active);
  w.kv("halted", b.halted);
  w.kv("idle", b.idle);
  w.kv("fetch_stalled", b.fetch_stalled);
  w.kv("resource_stalled", b.resource_stalled);
  w.kv("stall_rob", b.stall_rob);
  w.kv("stall_load_queue", b.stall_load_queue);
  w.kv("stall_store_buffer", b.stall_store_buffer);
  w.kv("uop_queue_full", b.uop_queue_full);
  w.kv("memory_bound", b.memory_bound);
  w.kv("issue_bound", b.issue_bound);
  w.kv("flowing", b.flowing);
  w.kv("instr_retired", b.instr_retired);
  w.kv("uops_retired", b.uops_retired);
  w.kv("cpi", b.cpi);
  w.kv("ipc", b.ipc);
  w.kv("uops_per_cycle", b.uops_per_cycle);
  w.end_object();
}

void write_timeseries(JsonWriter& w, const trace::CounterSampler& s) {
  w.begin_object();
  w.kv("window_cycles", s.window_cycles());
  w.key("windows");
  w.begin_array();
  for (const trace::CounterWindow& win : s.windows()) {
    w.begin_object();
    w.kv("begin", win.begin);
    w.kv("end", win.end);
    w.key("cpus");
    w.begin_array();
    for (int i = 0; i < kNumLogicalCpus; ++i) {
      const CpuId cpu = static_cast<CpuId>(i);
      w.begin_object();
      w.kv("cpu", i);
      w.key("events");
      w.begin_object();
      // Nonzero deltas only: most events are silent in most windows, and
      // readers treat an absent key as zero.
      for (int e = 0; e < perfmon::kNumEventValues; ++e) {
        const perfmon::Event ev = static_cast<perfmon::Event>(e);
        const uint64_t d = win.delta.get(cpu, ev);
        if (d != 0) w.kv(perfmon::name(ev), d);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_block_reason_map(JsonWriter& w,
                            const std::array<uint64_t, cpu::kNumBlockReasons>&
                                stalls) {
  w.begin_object();
  for (int r = 0; r < cpu::kNumBlockReasons; ++r) {
    w.kv(cpu::name(static_cast<cpu::BlockReason>(r)), stalls[r]);
  }
  w.end_object();
}

void write_port_map(JsonWriter& w,
                    const std::array<uint64_t, cpu::kNumIssuePorts>& ports) {
  w.begin_object();
  for (int p = 0; p < cpu::kNumIssuePorts; ++p) {
    w.kv(cpu::name(static_cast<cpu::IssuePort>(p)), ports[p]);
  }
  w.end_object();
}

void write_profile(JsonWriter& w, const profile::PcProfiler& prof,
                   const cpu::CoreConfig& core_cfg) {
  w.begin_object();
  w.key("hotspots");
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId cpu = static_cast<CpuId>(i);
    w.begin_object();
    w.kv("cpu", i);
    w.key("pcs");
    w.begin_array();
    for (const auto& [pc, s] : prof.pcs(cpu)) {
      w.begin_object();
      w.kv("pc", static_cast<uint64_t>(pc));
      w.kv("disasm", prof.disasm(cpu, pc));
      w.kv("retired_instrs", s.retired_instrs);
      w.kv("retired_uops", s.retired_uops);
      w.kv("l1_misses", s.l1_misses);
      w.kv("l2_misses", s.l2_misses);
      w.key("stalls");
      write_block_reason_map(w, s.stalls);
      w.key("ports");
      write_port_map(w, s.port_uops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("port_occupancy");
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    w.begin_object();
    w.kv("cpu", i);
    w.key("ports");
    write_port_map(w, prof.port_totals(static_cast<CpuId>(i)));
    w.end_object();
  }
  w.end_array();

  // Per-cycle issue caps for each port (the double-speed ALUs fire twice a
  // cycle; the FP/move/load/store ports once). Validators bound occupancy
  // by cap * cycles, and smt_annotate computes utilization against them.
  w.key("port_caps_per_cycle");
  std::array<uint64_t, cpu::kNumIssuePorts> caps{};
  caps[static_cast<int>(cpu::IssuePort::kAlu0)] =
      static_cast<uint64_t>(core_cfg.alu0_per_cycle);
  caps[static_cast<int>(cpu::IssuePort::kAlu1)] =
      static_cast<uint64_t>(core_cfg.alu1_per_cycle);
  caps[static_cast<int>(cpu::IssuePort::kFp)] = 1;
  caps[static_cast<int>(cpu::IssuePort::kFpMove)] = 1;
  caps[static_cast<int>(cpu::IssuePort::kLoad)] = 1;
  caps[static_cast<int>(cpu::IssuePort::kStore)] = 1;
  write_port_map(w, caps);

  w.end_object();
}

void write_interference_ports(
    JsonWriter& w,
    const std::array<uint64_t, cpu::kNumIssuePorts + 1>& ports) {
  w.begin_object();
  for (int p = 0; p < cpu::kNumIssuePorts; ++p) {
    w.kv(cpu::name(static_cast<cpu::IssuePort>(p)), ports[p]);
  }
  // Lost to raw issue-slot exhaustion rather than a specific port.
  w.kv("issue_bandwidth", ports[profile::CpuInterference::kIssueBandwidth]);
  w.end_object();
}

void write_interference(JsonWriter& w,
                        const profile::InterferenceProfiler& prof) {
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const profile::CpuInterference& s =
        prof.stats(static_cast<CpuId>(i));
    w.begin_object();
    w.kv("cpu", i);
    // Invariant checked by check_reports: self + sibling per reason
    // equals the corresponding stall counter of this CPU bit-exactly.
    w.key("self");
    write_block_reason_map(w, s.self);
    w.key("sibling");
    write_block_reason_map(w, s.sibling);
    w.key("port_conflict");
    w.begin_object();
    w.key("self");
    write_interference_ports(w, s.port_self);
    w.key("sibling");
    write_interference_ports(w, s.port_sibling);
    w.end_object();
    w.kv("l2_sibling_evictions", s.l2_sibling_evictions);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

RunReport RunReport::from(const RunStats& stats) {
  RunReport r;
  r.stats = stats;
  r.accounting = perfmon::account_cycles(stats.events, stats.cycles);
  return r;
}

std::string RunReport::to_json() const {
  // Reports from telemetry-enabled runs carry the windowed counter
  // time-series and advertise schema /2; plain runs stay on /1 so
  // existing artifact consumers are unaffected. Profiled runs carry a
  // `profile` section and advertise /3 (timeseries optional there);
  // interference-attributed runs carry an `interference` section and
  // advertise /4 (profile and timeseries both optional there).
  const bool timeseries = stats.telemetry != nullptr &&
                          !stats.telemetry->sampler().windows().empty();
  const bool profiled = stats.pc_profile != nullptr;
  const bool interference = stats.interference != nullptr;
  JsonWriter w;
  w.begin_object();
  w.kv("schema", interference  ? "smt-run-report/4"
                 : profiled    ? "smt-run-report/3"
                 : timeseries  ? "smt-run-report/2"
                               : "smt-run-report/1");
  w.kv("workload", stats.workload);
  w.kv("cycles", static_cast<uint64_t>(stats.cycles));
  w.kv("verified", stats.verified);

  w.key("config");
  w.begin_object();
  w.key("core");
  write_core_config(w, stats.config.core);
  w.key("mem");
  write_mem_config(w, stats.config.mem);
  w.end_object();

  w.key("cpus");
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId cpu = static_cast<CpuId>(i);
    w.begin_object();
    w.kv("cpu", i);
    w.key("events");
    w.begin_object();
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const perfmon::Event ev = static_cast<perfmon::Event>(e);
      w.kv(perfmon::name(ev), stats.events.get(cpu, ev));
    }
    w.end_object();
    w.key("breakdown");
    write_breakdown(w, accounting.cpu[i]);
    w.end_object();
  }
  w.end_array();

  w.key("totals");
  w.begin_object();
  const uint64_t instr = stats.total(perfmon::Event::kInstrRetired);
  w.kv("instr_retired", instr);
  w.kv("uops_retired", stats.total(perfmon::Event::kUopsRetired));
  w.kv("ipc", stats.cycles > 0
                  ? static_cast<double>(instr) / static_cast<double>(stats.cycles)
                  : 0.0);
  w.end_object();

  if (timeseries) {
    w.key("timeseries");
    write_timeseries(w, stats.telemetry->sampler());
  }

  if (profiled) {
    w.key("profile");
    write_profile(w, *stats.pc_profile, stats.config.core);
  }

  if (interference) {
    w.key("interference");
    write_interference(w, *stats.interference);
  }

  w.end_object();
  return w.str();
}

std::string RunReport::to_table() const {
  char head[256];
  std::snprintf(head, sizeof head, "run report: %s  (%llu cycles, %s)\n",
                stats.workload.c_str(),
                static_cast<unsigned long long>(stats.cycles),
                stats.verified ? "verified" : "NOT VERIFIED");
  return head + perfmon::to_table(accounting);
}

RunReport report_from_machine(const Machine& m, std::string workload,
                              bool verified) {
  RunStats s;
  s.workload = std::move(workload);
  s.cycles = m.cycles();
  s.events = m.counters().snapshot();
  s.verified = verified;
  s.config = m.config();
  s.telemetry = m.telemetry();
  if (s.telemetry != nullptr) s.telemetry->finalize(m.cycles());
  s.pc_profile = m.pc_profiler();
  m.finalize_interference();
  s.interference = m.interference();
  s.pipeview = m.pipeview();
  return RunReport::from(s);
}

std::string machine_config_json(const MachineConfig& cfg) {
  JsonWriter w;
  w.begin_object();
  w.key("core");
  write_core_config(w, cfg.core);
  w.key("mem");
  write_mem_config(w, cfg.mem);
  w.end_object();
  return w.str();
}

bool RunReport::write_json_file(const std::string& path) const {
  // write_text_file creates missing parent directories (a report dir
  // pointing at a not-yet-existing path is the common first-run case) and
  // logs the precise reason for any failure.
  return write_text_file(path, to_json());
}

}  // namespace smt::core
