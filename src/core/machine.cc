#include "core/machine.h"

#include "common/check.h"

namespace smt::core {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(cfg.mem),
      core_(cfg.core, hierarchy_, memory_, counters_) {
  if (trace::global_telemetry().enabled) {
    enable_telemetry(trace::global_telemetry());
  }
}

void Machine::enable_telemetry(const trace::TelemetryConfig& cfg) {
  SMT_CHECK_MSG(telemetry_ == nullptr, "telemetry already enabled");
  telemetry_ =
      std::make_shared<trace::Telemetry>(cfg, counters_, core_.now());
  core_.set_telemetry(&telemetry_->recorder(), &telemetry_->sampler());
}

void Machine::load_program(CpuId cpu, isa::Program prog,
                           const cpu::ArchState& init) {
  auto& slot = programs_[idx(cpu)];
  SMT_CHECK_MSG(!slot.has_value(), "logical CPU already has a program");
  slot.emplace(std::move(prog));
  core_.load_program(cpu, *slot, init);
}

}  // namespace smt::core
