#include "core/machine.h"

#include "common/check.h"

namespace smt::core {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(cfg.mem),
      core_(cfg.core, hierarchy_, memory_, counters_) {
  if (trace::global_telemetry().enabled) {
    enable_telemetry(trace::global_telemetry());
  } else if (trace::global_telemetry().pc_profile) {
    enable_pc_profiler();
  }
  if (trace::global_telemetry().interference) enable_interference();
  if (trace::global_telemetry().pipeview) {
    enable_pipeview({.begin = trace::global_telemetry().pipeview_begin,
                     .end = trace::global_telemetry().pipeview_end});
  }
}

void Machine::enable_telemetry(const trace::TelemetryConfig& cfg) {
  SMT_CHECK_MSG(telemetry_ == nullptr, "telemetry already enabled");
  telemetry_ =
      std::make_shared<trace::Telemetry>(cfg, counters_, core_.now());
  core_.set_telemetry(&telemetry_->recorder(), &telemetry_->sampler());
  if (cfg.pc_profile && pc_profiler_ == nullptr) enable_pc_profiler();
}

void Machine::enable_pc_profiler() {
  SMT_CHECK_MSG(pc_profiler_ == nullptr, "pc profiler already enabled");
  pc_profiler_ = std::make_shared<profile::PcProfiler>();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      pc_profiler_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  attach_pipeline_observers();
}

void Machine::enable_race_detector() {
  SMT_CHECK_MSG(race_detector_ == nullptr, "race detector already enabled");
  race_detector_ = std::make_shared<analysis::RaceDetector>();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      race_detector_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  attach_pipeline_observers();
}

void Machine::enable_interference() {
  SMT_CHECK_MSG(interference_ == nullptr,
                "interference profiler already enabled");
  interference_ = std::make_shared<profile::InterferenceProfiler>();
  hierarchy_.set_track_interference(true);
  attach_pipeline_observers();
}

void Machine::finalize_interference() const {
  if (interference_ == nullptr) return;
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId cpu = static_cast<CpuId>(i);
    interference_->set_l2_sibling_evictions(
        cpu, hierarchy_.sibling_eviction_misses(cpu));
  }
}

void Machine::enable_pipeview(const trace::PipeViewConfig& cfg) {
  SMT_CHECK_MSG(pipeview_ == nullptr, "pipeview recorder already enabled");
  pipeview_ = std::make_shared<trace::PipeViewRecorder>(cfg);
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      pipeview_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  core_.set_pipeview(pipeview_.get());
}

void Machine::enable_flight_recorder() {
  SMT_CHECK_MSG(flight_recorder_ == nullptr,
                "flight recorder already enabled");
  flight_recorder_ = std::make_shared<FlightRecorder>(core_);
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      flight_recorder_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  attach_pipeline_observers();
}

void Machine::attach_pipeline_observers() {
  tee_.children.clear();
  if (pc_profiler_ != nullptr) tee_.children.push_back(pc_profiler_.get());
  if (race_detector_ != nullptr) tee_.children.push_back(race_detector_.get());
  if (interference_ != nullptr) tee_.children.push_back(interference_.get());
  if (flight_recorder_ != nullptr) {
    tee_.children.push_back(flight_recorder_.get());
  }
  if (tee_.children.empty()) {
    core_.set_pipeline_observer(nullptr);
  } else if (tee_.children.size() == 1) {
    core_.set_pipeline_observer(tee_.children.front());
  } else {
    core_.set_pipeline_observer(&tee_);
  }
}

void Machine::ObserverTee::on_issue(CpuId cpu, cpu::IssuePort port,
                                    uint32_t pc) {
  for (cpu::PipelineObserver* c : children) c->on_issue(cpu, port, pc);
}

void Machine::ObserverTee::on_block(CpuId cpu, cpu::BlockReason reason,
                                    uint32_t pc, Cycle cycles) {
  for (cpu::PipelineObserver* c : children) {
    c->on_block(cpu, reason, pc, cycles);
  }
}

void Machine::ObserverTee::on_interference(CpuId cpu, cpu::BlockReason reason,
                                           bool sibling, int port,
                                           Cycle cycles) {
  for (cpu::PipelineObserver* c : children) {
    c->on_interference(cpu, reason, sibling, port, cycles);
  }
}

bool Machine::ObserverTee::wants_issue_blocks() const {
  for (const cpu::PipelineObserver* c : children) {
    if (c->wants_issue_blocks()) return true;
  }
  return false;
}

void Machine::ObserverTee::on_demand_miss(CpuId cpu, uint32_t pc,
                                          bool l2_miss) {
  for (cpu::PipelineObserver* c : children) {
    c->on_demand_miss(cpu, pc, l2_miss);
  }
}

void Machine::ObserverTee::on_retire_uop(CpuId cpu, const cpu::DynUop& uop,
                                         int uops) {
  for (cpu::PipelineObserver* c : children) c->on_retire_uop(cpu, uop, uops);
}

void Machine::ObserverTee::on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                                           cpu::GuestAccess kind,
                                           uint64_t value) {
  for (cpu::PipelineObserver* c : children) {
    c->on_guest_access(cpu, pc, addr, kind, value);
  }
}

void Machine::ObserverTee::on_ipi_send(CpuId cpu) {
  for (cpu::PipelineObserver* c : children) c->on_ipi_send(cpu);
}

void Machine::ObserverTee::on_ipi_wake(CpuId cpu) {
  for (cpu::PipelineObserver* c : children) c->on_ipi_wake(cpu);
}

void Machine::load_program(CpuId cpu, isa::Program prog,
                           const cpu::ArchState& init) {
  auto& slot = programs_[idx(cpu)];
  SMT_CHECK_MSG(!slot.has_value(), "logical CPU already has a program");
  slot.emplace(std::move(prog));
  core_.load_program(cpu, *slot, init);
  if (pc_profiler_ != nullptr) pc_profiler_->set_program(cpu, *slot);
  if (race_detector_ != nullptr) race_detector_->set_program(cpu, *slot);
  if (pipeview_ != nullptr) pipeview_->set_program(cpu, *slot);
  if (flight_recorder_ != nullptr) flight_recorder_->set_program(cpu, *slot);
}

}  // namespace smt::core
