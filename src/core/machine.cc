#include "core/machine.h"

#include "common/check.h"

namespace smt::core {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(cfg.mem),
      core_(cfg.core, hierarchy_, memory_, counters_) {}

void Machine::load_program(CpuId cpu, isa::Program prog,
                           const cpu::ArchState& init) {
  auto& slot = programs_[idx(cpu)];
  SMT_CHECK_MSG(!slot.has_value(), "logical CPU already has a program");
  slot.emplace(std::move(prog));
  core_.load_program(cpu, *slot, init);
}

}  // namespace smt::core
