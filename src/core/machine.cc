#include "core/machine.h"

#include "common/check.h"

namespace smt::core {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(cfg.mem),
      core_(cfg.core, hierarchy_, memory_, counters_) {
  if (trace::global_telemetry().enabled) {
    enable_telemetry(trace::global_telemetry());
  } else if (trace::global_telemetry().pc_profile) {
    enable_pc_profiler();
  }
}

void Machine::enable_telemetry(const trace::TelemetryConfig& cfg) {
  SMT_CHECK_MSG(telemetry_ == nullptr, "telemetry already enabled");
  telemetry_ =
      std::make_shared<trace::Telemetry>(cfg, counters_, core_.now());
  core_.set_telemetry(&telemetry_->recorder(), &telemetry_->sampler());
  if (cfg.pc_profile && pc_profiler_ == nullptr) enable_pc_profiler();
}

void Machine::enable_pc_profiler() {
  SMT_CHECK_MSG(pc_profiler_ == nullptr, "pc profiler already enabled");
  pc_profiler_ = std::make_shared<profile::PcProfiler>();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      pc_profiler_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  attach_pipeline_observers();
}

void Machine::enable_race_detector() {
  SMT_CHECK_MSG(race_detector_ == nullptr, "race detector already enabled");
  race_detector_ = std::make_shared<analysis::RaceDetector>();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      race_detector_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
  attach_pipeline_observers();
}

void Machine::attach_pipeline_observers() {
  if (pc_profiler_ != nullptr && race_detector_ != nullptr) {
    tee_.profiler = pc_profiler_.get();
    tee_.detector = race_detector_.get();
    core_.set_pipeline_observer(&tee_);
  } else if (pc_profiler_ != nullptr) {
    core_.set_pipeline_observer(pc_profiler_.get());
  } else if (race_detector_ != nullptr) {
    core_.set_pipeline_observer(race_detector_.get());
  }
}

void Machine::ObserverTee::on_issue(CpuId cpu, cpu::IssuePort port,
                                    uint32_t pc) {
  if (profiler != nullptr) profiler->on_issue(cpu, port, pc);
  if (detector != nullptr) detector->on_issue(cpu, port, pc);
}

void Machine::ObserverTee::on_block(CpuId cpu, cpu::BlockReason reason,
                                    uint32_t pc, Cycle cycles) {
  if (profiler != nullptr) profiler->on_block(cpu, reason, pc, cycles);
  if (detector != nullptr) detector->on_block(cpu, reason, pc, cycles);
}

void Machine::ObserverTee::on_demand_miss(CpuId cpu, uint32_t pc,
                                          bool l2_miss) {
  if (profiler != nullptr) profiler->on_demand_miss(cpu, pc, l2_miss);
  if (detector != nullptr) detector->on_demand_miss(cpu, pc, l2_miss);
}

void Machine::ObserverTee::on_retire_uop(CpuId cpu, const cpu::DynUop& uop,
                                         int uops) {
  if (profiler != nullptr) profiler->on_retire_uop(cpu, uop, uops);
  if (detector != nullptr) detector->on_retire_uop(cpu, uop, uops);
}

void Machine::ObserverTee::on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                                           cpu::GuestAccess kind,
                                           uint64_t value) {
  if (profiler != nullptr) {
    profiler->on_guest_access(cpu, pc, addr, kind, value);
  }
  if (detector != nullptr) {
    detector->on_guest_access(cpu, pc, addr, kind, value);
  }
}

void Machine::ObserverTee::on_ipi_send(CpuId cpu) {
  if (profiler != nullptr) profiler->on_ipi_send(cpu);
  if (detector != nullptr) detector->on_ipi_send(cpu);
}

void Machine::ObserverTee::on_ipi_wake(CpuId cpu) {
  if (profiler != nullptr) profiler->on_ipi_wake(cpu);
  if (detector != nullptr) detector->on_ipi_wake(cpu);
}

void Machine::load_program(CpuId cpu, isa::Program prog,
                           const cpu::ArchState& init) {
  auto& slot = programs_[idx(cpu)];
  SMT_CHECK_MSG(!slot.has_value(), "logical CPU already has a program");
  slot.emplace(std::move(prog));
  core_.load_program(cpu, *slot, init);
  if (pc_profiler_ != nullptr) pc_profiler_->set_program(cpu, *slot);
  if (race_detector_ != nullptr) race_detector_->set_program(cpu, *slot);
}

}  // namespace smt::core
