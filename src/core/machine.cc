#include "core/machine.h"

#include "common/check.h"

namespace smt::core {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      hierarchy_(cfg.mem),
      core_(cfg.core, hierarchy_, memory_, counters_) {
  if (trace::global_telemetry().enabled) {
    enable_telemetry(trace::global_telemetry());
  } else if (trace::global_telemetry().pc_profile) {
    enable_pc_profiler();
  }
}

void Machine::enable_telemetry(const trace::TelemetryConfig& cfg) {
  SMT_CHECK_MSG(telemetry_ == nullptr, "telemetry already enabled");
  telemetry_ =
      std::make_shared<trace::Telemetry>(cfg, counters_, core_.now());
  core_.set_telemetry(&telemetry_->recorder(), &telemetry_->sampler());
  if (cfg.pc_profile && pc_profiler_ == nullptr) enable_pc_profiler();
}

void Machine::enable_pc_profiler() {
  SMT_CHECK_MSG(pc_profiler_ == nullptr, "pc profiler already enabled");
  pc_profiler_ = std::make_shared<profile::PcProfiler>();
  core_.set_pipeline_observer(pc_profiler_.get());
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (programs_[i].has_value()) {
      pc_profiler_->set_program(static_cast<CpuId>(i), *programs_[i]);
    }
  }
}

void Machine::load_program(CpuId cpu, isa::Program prog,
                           const cpu::ArchState& init) {
  auto& slot = programs_[idx(cpu)];
  SMT_CHECK_MSG(!slot.has_value(), "logical CPU already has a program");
  slot.emplace(std::move(prog));
  core_.load_program(cpu, *slot, init);
  if (pc_profiler_ != nullptr) pc_profiler_->set_program(cpu, *slot);
}

}  // namespace smt::core
