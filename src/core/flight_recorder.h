// Flight recorder: the always-cheap post-mortem instrument.
//
// While attached it keeps, per logical CPU, a ring of the last K retired
// instructions (cycle + PC) and a ring of periodic queue-occupancy
// snapshots (ROB / uop-queue / load-queue / store-buffer fill, run mode).
// When a run ends in deadlock, an exhausted cycle budget, or a detected
// race, core::try_run_workload serializes the rings together with the
// architectural registers, context run-states, sync-word values and
// wait-for edges into an `smt-core-dump/1` JSON document attached to the
// RunOutcome — the input of the `smt_explain` diagnosis CLI.
//
// Like every observer in this codebase it is pure: it only reads
// simulation state from retire-time hooks, never touches a counter, and
// skips the per-cycle issue-block scan entirely (wants_issue_blocks() is
// false), so a flight-recorded run is counter-bit-identical to a bare one
// and the dump for a given (workload, config) is byte-deterministic.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "isa/program.h"

namespace smt::core {

class Machine;
struct MemInfo;

class FlightRecorder : public cpu::PipelineObserver {
 public:
  /// Retired-instruction ring depth per CPU.
  static constexpr int kRingSize = 64;
  /// Occupancy-snapshot ring depth per CPU, sampled every kSnapshotPeriod
  /// cycles of retirement activity (cycle-driven, so deterministic).
  static constexpr int kSnapshotRing = 16;
  static constexpr Cycle kSnapshotPeriod = 4096;

  explicit FlightRecorder(const cpu::Core& core) : core_(core) {}

  /// Registers the program bound to `cpu` for disassembly and
  /// spin-region (wait-for edge) lookups.
  void set_program(CpuId cpu, const isa::Program& prog) {
    progs_[idx(cpu)] = &prog;
  }
  const isa::Program* program(CpuId cpu) const { return progs_[idx(cpu)]; }

  // Only retirement is consumed; everything else is a no-op, and the
  // issue-block scan is skipped entirely for flight-recorder-only runs.
  void on_issue(CpuId, cpu::IssuePort, uint32_t) override {}
  void on_block(CpuId, cpu::BlockReason, uint32_t, Cycle) override {}
  void on_demand_miss(CpuId, uint32_t, bool) override {}
  void on_retire_uop(CpuId cpu, const cpu::DynUop& uop, int uops) override;
  bool wants_issue_blocks() const override { return false; }

  struct RetiredEntry {
    Cycle cycle = 0;
    uint32_t pc = 0;
  };
  struct OccupancySnapshot {
    Cycle cycle = 0;
    cpu::Core::ThreadSnapshot state;
  };

  /// Ring contents in age order (oldest first).
  std::vector<RetiredEntry> recent(CpuId cpu) const;
  std::vector<OccupancySnapshot> snapshots(CpuId cpu) const;

 private:
  template <typename T, size_t N>
  struct Ring {
    std::array<T, N> slots{};
    size_t pos = 0;
    size_t count = 0;
    void push(const T& v) {
      slots[pos] = v;
      pos = (pos + 1) % N;
      if (count < N) ++count;
    }
    std::vector<T> in_order() const {
      std::vector<T> out;
      out.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        out.push_back(slots[(pos + N - count + i) % N]);
      }
      return out;
    }
  };

  const cpu::Core& core_;
  std::array<const isa::Program*, kNumLogicalCpus> progs_{};
  std::array<Ring<RetiredEntry, kRingSize>, kNumLogicalCpus> recent_;
  std::array<Ring<OccupancySnapshot, kSnapshotRing>, kNumLogicalCpus> snaps_;
  Cycle next_snapshot_at_ = 0;
};

/// Serializes the post-mortem state of `m` as an `smt-core-dump/1` JSON
/// document: outcome + failure message, final cycle, per-CPU architectural
/// registers / run mode / queue occupancies / recent retirement ring /
/// occupancy snapshots / wait state, the values of every sync word in
/// `mem`, and the wait-for edges derived from halt states and spin-region
/// annotations (a halted context awaits an IPI from its sibling; a context
/// whose next PC sits in an is_spin sync region spins on a word only the
/// sibling can flip). Deterministic: everything serialized is simulation
/// state.
std::string core_dump_json(const Machine& m, const FlightRecorder& fr,
                           const MemInfo& mem, const std::string& workload,
                           const std::string& outcome,
                           const std::string& message);

}  // namespace smt::core
