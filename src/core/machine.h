// Machine: one simulated Hyper-Threading processor package with its memory
// system — the top-level object users interact with.
//
//   smt::core::Machine m;                      // Netburst-class defaults
//   m.memory().write_f64(addr, 1.0);           // set up data
//   m.load_program(CpuId::kCpu0, program);     // bind to a logical CPU
//   m.run();
//   uint64_t misses = m.counters().get(CpuId::kCpu0, Event::kL2Misses);
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "perfmon/counters.h"
#include "profile/pc_profiler.h"
#include "trace/telemetry.h"

namespace smt::core {

struct MachineConfig {
  cpu::CoreConfig core;
  mem::HierConfig mem;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  mem::SimMemory& memory() { return memory_; }
  const mem::SimMemory& memory() const { return memory_; }
  mem::CacheHierarchy& hierarchy() { return hierarchy_; }
  perfmon::PerfCounters& counters() { return counters_; }
  const perfmon::PerfCounters& counters() const { return counters_; }
  cpu::Core& core() { return core_; }
  const cpu::Core& core() const { return core_; }
  const MachineConfig& config() const { return cfg_; }

  /// Attaches time-resolved telemetry (counter time-series + event
  /// timeline; see src/trace/telemetry.h). The constructor calls this
  /// automatically when the process-global default is enabled (bench
  /// binaries with SMT_BENCH_TRACE_DIR set). Call before running;
  /// enabling never perturbs any counter.
  void enable_telemetry(const trace::TelemetryConfig& cfg);

  /// The attached telemetry (null when disabled). Shared so RunStats can
  /// carry it past this machine's lifetime.
  const std::shared_ptr<trace::Telemetry>& telemetry() const {
    return telemetry_;
  }

  /// Attaches the per-PC attribution profiler (read-only pipeline
  /// observer; see src/profile/pc_profiler.h). The constructor calls this
  /// automatically when the process-global telemetry default has
  /// pc_profile set (bench binaries with SMT_BENCH_PROFILE=1). Call
  /// before running; enabling never perturbs any counter.
  void enable_pc_profiler();

  /// The attached profiler (null when disabled). Shared so RunStats can
  /// carry it past this machine's lifetime.
  const std::shared_ptr<profile::PcProfiler>& pc_profiler() const {
    return pc_profiler_;
  }

  /// Binds `prog` to `cpu` (the program is copied and kept alive by the
  /// machine). The sched_setaffinity analog: one software thread per
  /// logical processor.
  void load_program(CpuId cpu, isa::Program prog,
                    const cpu::ArchState& init = {});

  void run(Cycle max_cycles = 4'000'000'000ull) { core_.run(max_cycles); }
  /// Non-aborting run: deadlock / exhausted cycle budget / host
  /// cancellation come back as a structured cpu::RunResult instead of an
  /// SMT_CHECK abort; the machine stays inspectable (counters, cycles,
  /// memory reflect the partial run). run() above keeps the legacy
  /// crash-on-deadlock contract.
  cpu::RunResult try_run(Cycle max_cycles = 4'000'000'000ull) {
    return core_.try_run(max_cycles);
  }
  /// Installs the cancellation predicate try_run polls (the sweep job
  /// pool's wall-clock watchdog); see cpu::Core::set_cancel_check.
  void set_cancel_check(std::function<bool()> cancel) {
    core_.set_cancel_check(std::move(cancel));
  }
  CpuId run_until_any_done(Cycle max_cycles = 4'000'000'000ull) {
    return core_.run_until_any_done(max_cycles);
  }

  Cycle cycles() const { return core_.now(); }

 private:
  MachineConfig cfg_;
  mem::SimMemory memory_;
  mem::CacheHierarchy hierarchy_;
  perfmon::PerfCounters counters_;
  std::shared_ptr<trace::Telemetry> telemetry_;
  std::shared_ptr<profile::PcProfiler> pc_profiler_;
  cpu::Core core_;
  std::array<std::optional<isa::Program>, kNumLogicalCpus> programs_;
};

}  // namespace smt::core
