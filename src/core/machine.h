// Machine: one simulated Hyper-Threading processor package with its memory
// system — the top-level object users interact with.
//
//   smt::core::Machine m;                      // Netburst-class defaults
//   m.memory().write_f64(addr, 1.0);           // set up data
//   m.load_program(CpuId::kCpu0, program);     // bind to a logical CPU
//   m.run();
//   uint64_t misses = m.counters().get(CpuId::kCpu0, Event::kL2Misses);
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/race_detector.h"
#include "common/types.h"
#include "core/flight_recorder.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "perfmon/counters.h"
#include "profile/interference.h"
#include "profile/pc_profiler.h"
#include "trace/pipeview.h"
#include "trace/telemetry.h"

namespace smt::core {

struct MachineConfig {
  cpu::CoreConfig core;
  mem::HierConfig mem;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  mem::SimMemory& memory() { return memory_; }
  const mem::SimMemory& memory() const { return memory_; }
  mem::CacheHierarchy& hierarchy() { return hierarchy_; }
  perfmon::PerfCounters& counters() { return counters_; }
  const perfmon::PerfCounters& counters() const { return counters_; }
  cpu::Core& core() { return core_; }
  const cpu::Core& core() const { return core_; }
  const MachineConfig& config() const { return cfg_; }

  /// Attaches time-resolved telemetry (counter time-series + event
  /// timeline; see src/trace/telemetry.h). The constructor calls this
  /// automatically when the process-global default is enabled (bench
  /// binaries with SMT_BENCH_TRACE_DIR set). Call before running;
  /// enabling never perturbs any counter.
  void enable_telemetry(const trace::TelemetryConfig& cfg);

  /// The attached telemetry (null when disabled). Shared so RunStats can
  /// carry it past this machine's lifetime.
  const std::shared_ptr<trace::Telemetry>& telemetry() const {
    return telemetry_;
  }

  /// Attaches the per-PC attribution profiler (read-only pipeline
  /// observer; see src/profile/pc_profiler.h). The constructor calls this
  /// automatically when the process-global telemetry default has
  /// pc_profile set (bench binaries with SMT_BENCH_PROFILE=1). Call
  /// before running; enabling never perturbs any counter.
  void enable_pc_profiler();

  /// The attached profiler (null when disabled). Shared so RunStats can
  /// carry it past this machine's lifetime.
  const std::shared_ptr<profile::PcProfiler>& pc_profiler() const {
    return pc_profiler_;
  }

  /// Attaches the happens-before race detector (read-only pipeline
  /// observer; see src/analysis/race_detector.h). Call before running;
  /// enabling never perturbs any counter. Coexists with the per-PC
  /// profiler (both observers are fanned out). Sync words and extents are
  /// configured by the caller (core::try_run_workload feeds it the
  /// workload's MemInfo); lock words are picked up automatically from
  /// each loaded program's annotations.
  void enable_race_detector();

  /// The attached race detector (null when disabled). Shared so RunStats
  /// can carry it past this machine's lifetime.
  const std::shared_ptr<analysis::RaceDetector>& race_detector() const {
    return race_detector_;
  }

  /// Attaches the SMT interference profiler (read-only pipeline observer;
  /// see src/profile/interference.h) and turns on the hierarchy's L2
  /// eviction bookkeeping. The constructor calls this automatically when
  /// the process-global telemetry default has `interference` set (bench
  /// binaries with SMT_BENCH_INTERFERENCE=1). Call before running;
  /// enabling never perturbs any counter. Coexists with every other
  /// observer (fanned out through the tee).
  void enable_interference();

  /// Copies the hierarchy's L2 sibling-eviction counts into the
  /// interference profiler (idempotent assignment; call at any
  /// stats-collection point). No-op when interference is disabled.
  /// Const: it only updates the shared profiler object, never the
  /// machine itself (report_from_machine works on a const Machine&).
  void finalize_interference() const;

  /// The attached interference profiler (null when disabled). Shared so
  /// RunStats can carry it past this machine's lifetime.
  const std::shared_ptr<profile::InterferenceProfiler>& interference() const {
    return interference_;
  }

  /// Attaches the pipeline-lifetime (Kanata) recorder; see
  /// src/trace/pipeview.h. The constructor calls this automatically when
  /// the process-global telemetry default has `pipeview` set (bench
  /// binaries with SMT_BENCH_PIPEVIEW=1). Call before running; recording
  /// never perturbs any counter.
  void enable_pipeview(const trace::PipeViewConfig& cfg);

  /// The attached pipeline-lifetime recorder (null when disabled).
  const std::shared_ptr<trace::PipeViewRecorder>& pipeview() const {
    return pipeview_;
  }

  /// Attaches the post-mortem flight recorder (read-only pipeline
  /// observer; see src/core/flight_recorder.h). Call before running;
  /// enabling never perturbs any counter — it skips the issue-block scan
  /// entirely unless another attached observer wants it.
  void enable_flight_recorder();

  /// The attached flight recorder (null when disabled).
  const std::shared_ptr<FlightRecorder>& flight_recorder() const {
    return flight_recorder_;
  }

  /// Binds `prog` to `cpu` (the program is copied and kept alive by the
  /// machine). The sched_setaffinity analog: one software thread per
  /// logical processor.
  void load_program(CpuId cpu, isa::Program prog,
                    const cpu::ArchState& init = {});

  void run(Cycle max_cycles = 4'000'000'000ull) { core_.run(max_cycles); }
  /// Non-aborting run: deadlock / exhausted cycle budget / host
  /// cancellation come back as a structured cpu::RunResult instead of an
  /// SMT_CHECK abort; the machine stays inspectable (counters, cycles,
  /// memory reflect the partial run). run() above keeps the legacy
  /// crash-on-deadlock contract.
  cpu::RunResult try_run(Cycle max_cycles = 4'000'000'000ull) {
    return core_.try_run(max_cycles);
  }
  /// Installs the cancellation predicate try_run polls (the sweep job
  /// pool's wall-clock watchdog); see cpu::Core::set_cancel_check.
  void set_cancel_check(std::function<bool()> cancel) {
    core_.set_cancel_check(std::move(cancel));
  }
  CpuId run_until_any_done(Cycle max_cycles = 4'000'000'000ull) {
    return core_.run_until_any_done(max_cycles);
  }

  Cycle cycles() const { return core_.now(); }

 private:
  /// Fans the single cpu::Core observer slot out to every enabled
  /// observer (per-PC profiler, race detector, interference profiler,
  /// flight recorder). Raw pointers back into the owning Machine's
  /// shared_ptrs.
  struct ObserverTee final : cpu::PipelineObserver {
    std::vector<cpu::PipelineObserver*> children;

    void on_issue(CpuId cpu, cpu::IssuePort port, uint32_t pc) override;
    void on_block(CpuId cpu, cpu::BlockReason reason, uint32_t pc,
                  Cycle cycles) override;
    void on_interference(CpuId cpu, cpu::BlockReason reason, bool sibling,
                         int port, Cycle cycles) override;
    bool wants_issue_blocks() const override;
    void on_demand_miss(CpuId cpu, uint32_t pc, bool l2_miss) override;
    void on_retire_uop(CpuId cpu, const cpu::DynUop& uop,
                       int uops) override;
    void on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                         cpu::GuestAccess kind, uint64_t value) override;
    void on_ipi_send(CpuId cpu) override;
    void on_ipi_wake(CpuId cpu) override;
  };

  /// Points core_ at the single enabled observer, or at the tee over all
  /// of them (null when none is enabled).
  void attach_pipeline_observers();

  MachineConfig cfg_;
  mem::SimMemory memory_;
  mem::CacheHierarchy hierarchy_;
  perfmon::PerfCounters counters_;
  std::shared_ptr<trace::Telemetry> telemetry_;
  std::shared_ptr<profile::PcProfiler> pc_profiler_;
  std::shared_ptr<analysis::RaceDetector> race_detector_;
  std::shared_ptr<profile::InterferenceProfiler> interference_;
  std::shared_ptr<trace::PipeViewRecorder> pipeview_;
  std::shared_ptr<FlightRecorder> flight_recorder_;
  ObserverTee tee_;
  cpu::Core core_;
  std::array<std::optional<isa::Program>, kNumLogicalCpus> programs_;
};

}  // namespace smt::core
