// Workload: the interface every benchmark kernel variant implements so the
// experiment runner can set it up, execute it and verify its output.
#pragma once

#include <string>
#include <vector>

#include "core/machine.h"
#include "isa/program.h"
#include "mem/sim_memory.h"

namespace smt::core {

/// A workload's registered guest-memory map, for the guest-program
/// verifier (analysis::lint_program extents; RaceDetector sync words and
/// dynamic extent checking). Regions are mem::MemoryLayout regions so
/// kernels can hand over their layouts verbatim.
struct MemInfo {
  /// Data arrays (matrices, vectors, shared result slots).
  std::vector<mem::MemoryLayout::Region> data;
  /// Synchronization words (barrier arrival flags, sleeper words, lock
  /// words): every 8-byte word inside these regions is treated as a sync
  /// variable by the race detector.
  std::vector<mem::MemoryLayout::Region> sync;
  /// True when data+sync cover every address the programs may touch —
  /// enables the static and dynamic out-of-extent checks.
  bool complete = false;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;

  /// Initializes simulated memory and builds the per-context programs.
  /// Called exactly once, before run.
  virtual void setup(Machine& m) = 0;

  /// Programs to bind, in logical-CPU order. Size 1 (serial / pure
  /// single-thread) or 2 (TLP / SPR pairs). Valid after setup().
  virtual std::vector<isa::Program> programs() const = 0;

  /// Checks the computation's result against a host-side reference.
  virtual bool verify(const Machine& m) const = 0;

  /// The registered memory map, valid after setup(). Default: empty and
  /// incomplete — extent checks are skipped, sync words come only from
  /// the programs' own lock annotations.
  virtual MemInfo mem_info() const { return {}; }
};

}  // namespace smt::core
