// Workload: the interface every benchmark kernel variant implements so the
// experiment runner can set it up, execute it and verify its output.
#pragma once

#include <string>
#include <vector>

#include "core/machine.h"
#include "isa/program.h"

namespace smt::core {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;

  /// Initializes simulated memory and builds the per-context programs.
  /// Called exactly once, before run.
  virtual void setup(Machine& m) = 0;

  /// Programs to bind, in logical-CPU order. Size 1 (serial / pure
  /// single-thread) or 2 (TLP / SPR pairs). Valid after setup().
  virtual std::vector<isa::Program> programs() const = 0;

  /// Checks the computation's result against a host-side reference.
  virtual bool verify(const Machine& m) const = 0;
};

}  // namespace smt::core
