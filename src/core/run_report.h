// RunReport: a structured, machine-readable artifact describing one
// simulated run — the RunStats, a top-down per-CPU cycle-accounting
// breakdown derived from them, and the machine configuration the run
// executed on. Every figure-reproduction bench emits one of these as JSON
// (see bench/bench_util.h) so results are comparable across configs and
// revisions without scraping stdout tables.
//
// JSON schema (versioned by the "schema" member):
//   {
//     "schema": "smt-run-report/1",   // "/2" when "timeseries" is present
//     "workload": "...", "cycles": N, "verified": true,
//     "config": { "core": {...}, "mem": {...} },
//     "cpus": [ { "cpu": 0,
//                 "events": { "<event name>": N, ... },   // all counters
//                 "breakdown": { "total": N, "active": N, ... } }, ... ],
//     "totals": { "instr_retired": N, "uops_retired": N, "ipc": X },
//     "timeseries": {                 // schema /2 only: windowed counter
//       "window_cycles": W,           // time-series from trace::Telemetry
//       "windows": [ { "begin": B, "end": E,
//                      "cpus": [ { "cpu": 0,
//                                  "events": {  // nonzero deltas only
//                                    "<event name>": N, ... } }, ... ] },
//                    ... ] }          // windows tile [0, cycles) exactly;
//   }                                 // per-event sums equal the totals
#pragma once

#include <string>

#include "core/runner.h"
#include "perfmon/cycle_accounting.h"

namespace smt::core {

struct RunReport {
  RunStats stats;
  perfmon::CycleAccounting accounting;

  /// Builds the report (derives the cycle accounting) from finished stats.
  static RunReport from(const RunStats& stats);

  /// Serializes the full report as a single JSON object.
  std::string to_json() const;

  /// Human-readable summary: header line plus the cycle-accounting table.
  std::string to_table() const;

  /// Writes to_json() to `path`, creating missing parent directories;
  /// logs to stderr and returns false on I/O failure.
  bool write_json_file(const std::string& path) const;
};

/// Convenience for callers that drove a Machine by hand (examples, ad-hoc
/// experiments): snapshots its counters and config into a report.
RunReport report_from_machine(const Machine& m, std::string workload,
                              bool verified);

/// Canonical JSON of a MachineConfig — {"core":{...},"mem":{...}}, the
/// byte-identical twin of the report's "config" section (both render
/// through the same writers). This is the config half of a
/// content-addressed result key (host::ResultKey) and the byte string
/// smt_history's config hashes digest, so its field set and order are
/// part of the on-disk cache/history schema.
std::string machine_config_json(const MachineConfig& cfg);

}  // namespace smt::core
