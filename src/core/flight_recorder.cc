#include "core/flight_recorder.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/machine.h"
#include "core/workload.h"
#include "isa/disasm.h"
#include "mem/sim_memory.h"

namespace smt::core {

void FlightRecorder::on_retire_uop(CpuId cpu, const cpu::DynUop& uop,
                                   int uops) {
  (void)uops;
  const Cycle now = core_.now();
  recent_[idx(cpu)].push({now, uop.pc});
  // Snapshot both contexts on a global cycle grid (not per-CPU retirement
  // counts), so the sampling points are deterministic and shared.
  if (now >= next_snapshot_at_) {
    for (int i = 0; i < kNumLogicalCpus; ++i) {
      const CpuId c = static_cast<CpuId>(i);
      snaps_[i].push({now, core_.snapshot_thread(c)});
    }
    next_snapshot_at_ = now + kSnapshotPeriod;
  }
}

std::vector<FlightRecorder::RetiredEntry> FlightRecorder::recent(
    CpuId cpu) const {
  return recent_[idx(cpu)].in_order();
}

std::vector<FlightRecorder::OccupancySnapshot> FlightRecorder::snapshots(
    CpuId cpu) const {
  return snaps_[idx(cpu)].in_order();
}

namespace {

/// Disassembly of static instruction `pc` of `prog`, or a placeholder when
/// the program is unknown / the pc is out of range (an exited context's
/// next_pc is one past the end).
std::string disasm_at(const isa::Program* prog, uint32_t pc) {
  if (prog == nullptr || pc >= prog->size()) return "<none>";
  return isa::disasm(prog->at(pc));
}

/// The innermost spin-annotated sync region containing `pc`, if any.
const isa::SyncRegion* spin_region_at(const isa::Program* prog, uint32_t pc) {
  if (prog == nullptr) return nullptr;
  const isa::SyncRegion* best = nullptr;
  for (const isa::SyncRegion& r : prog->sync_regions()) {
    if (!r.is_spin || pc < r.begin || pc >= r.end) continue;
    if (best == nullptr || r.end - r.begin < best->end - best->begin) best = &r;
  }
  return best;
}

bool is_halt_wait(const std::string& mode) {
  return mode == "halted" || mode == "halting" || mode == "enter_halt";
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string core_dump_json(const Machine& m, const FlightRecorder& fr,
                           const MemInfo& mem, const std::string& workload,
                           const std::string& outcome,
                           const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "smt-core-dump/1");
  w.kv("workload", workload);
  w.kv("outcome", outcome);
  w.kv("message", message);
  w.kv("cycle", static_cast<uint64_t>(m.cycles()));

  struct WaitState {
    std::string kind = "none";  // "halt" | "spin" | "none"
    std::string what;           // spin-region emitter name
  };
  std::array<WaitState, kNumLogicalCpus> waits;

  w.key("cpus");
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId cpu = static_cast<CpuId>(i);
    const cpu::Core::ThreadSnapshot snap = m.core().snapshot_thread(cpu);
    const cpu::ArchState& arch = m.core().arch(cpu);
    const isa::Program* prog = fr.program(cpu);

    const std::string mode = snap.mode;
    WaitState& wait = waits[i];
    if (is_halt_wait(mode)) {
      wait.kind = "halt";
    } else if (const isa::SyncRegion* r = spin_region_at(prog, snap.next_pc);
               mode == "running" && r != nullptr) {
      wait.kind = "spin";
      wait.what = r->what;
    }

    w.begin_object();
    w.kv("cpu", i);
    w.kv("mode", mode);
    w.kv("pc", static_cast<uint64_t>(snap.next_pc));
    w.kv("disasm", disasm_at(prog, snap.next_pc));
    w.kv("rob", static_cast<uint64_t>(snap.rob_occupancy));
    w.kv("uop_queue", static_cast<uint64_t>(snap.uq_occupancy));
    w.kv("load_queue", snap.lq_used);
    w.kv("store_buffer", snap.sb_used);
    w.kv("ipi_pending", snap.ipi_pending);
    w.key("wait");
    w.begin_object();
    w.kv("kind", wait.kind);
    if (!wait.what.empty()) w.kv("what", wait.what);
    w.end_object();
    w.key("iregs");
    w.begin_array();
    for (const int64_t v : arch.iregs) w.value(v);
    w.end_array();
    w.key("fregs");
    w.begin_array();
    for (const double v : arch.fregs) w.value(finite_or_zero(v));
    w.end_array();
    w.key("recent_retired");
    w.begin_array();
    for (const FlightRecorder::RetiredEntry& e : fr.recent(cpu)) {
      w.begin_object();
      w.kv("cycle", static_cast<uint64_t>(e.cycle));
      w.kv("pc", static_cast<uint64_t>(e.pc));
      w.kv("disasm", disasm_at(prog, e.pc));
      w.end_object();
    }
    w.end_array();
    w.key("snapshots");
    w.begin_array();
    for (const FlightRecorder::OccupancySnapshot& s : fr.snapshots(cpu)) {
      w.begin_object();
      w.kv("cycle", static_cast<uint64_t>(s.cycle));
      w.kv("mode", s.state.mode);
      w.kv("rob", static_cast<uint64_t>(s.state.rob_occupancy));
      w.kv("uop_queue", static_cast<uint64_t>(s.state.uq_occupancy));
      w.kv("load_queue", s.state.lq_used);
      w.kv("store_buffer", s.state.sb_used);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Values of every declared sync word at the moment of death — the
  // ground truth of "who was supposed to flip what".
  w.key("sync_words");
  w.begin_array();
  for (const mem::MemoryLayout::Region& r : mem.sync) {
    for (Addr a = r.base; a + 8 <= r.base + r.bytes; a += 8) {
      w.begin_object();
      w.kv("region", r.name);
      w.kv("addr", static_cast<uint64_t>(a));
      w.kv("value", m.memory().read_u64(a));
      w.end_object();
    }
  }
  w.end_array();

  // Wait-for edges: a waiting context can only be released by its sibling
  // (the package has two logical CPUs; IPIs and sync-word stores are the
  // only wake mechanisms). Both contexts waiting = the classic lost
  // wake-up cycle.
  w.key("wait_for");
  w.begin_array();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    if (waits[i].kind == "none") continue;
    const int sib = 1 - i;
    w.begin_object();
    w.kv("from", i);
    w.kv("to", sib);
    const std::string why =
        waits[i].kind == "halt"
            ? std::string("awaiting IPI")
            : "spinning on sync word (" + waits[i].what + ")";
    w.kv("why", why);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace smt::core
