// ExperimentRunner: executes a Workload on a fresh Machine and returns the
// measurements the paper's figures are built from.
//
// Two entry points: run_workload keeps the legacy crash-on-deadlock
// contract (an SMT_CHECK abort on deadlock or exhausted cycle budget),
// try_run_workload converts every failure path into data — a RunOutcome
// whose RunStats always describe the (possibly partial) run, so a sweep
// over many configurations can lose one job without losing the rest.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/machine.h"
#include "core/workload.h"
#include "perfmon/counters.h"
#include "trace/telemetry.h"

namespace smt::core {

struct RunStats {
  std::string workload;
  Cycle cycles = 0;            ///< wall-clock execution time in core cycles
  perfmon::Snapshot events;    ///< all per-logical-CPU counters
  bool verified = false;
  MachineConfig config;        ///< the machine the run executed on
  /// Time-resolved telemetry of the run (finalized), when the machine had
  /// it enabled; null otherwise. Shared: outlives the machine.
  std::shared_ptr<trace::Telemetry> telemetry;
  /// Per-PC attribution profile of the run, when the machine had the
  /// profiler enabled; null otherwise. Shared: outlives the machine.
  std::shared_ptr<profile::PcProfiler> pc_profile;
  /// Happens-before race detector state of the run, when race detection
  /// was requested (RunOptions::race_detect); null otherwise. Shared:
  /// outlives the machine.
  std::shared_ptr<analysis::RaceDetector> race_detector;
  /// SMT interference attribution of the run (L2 dimension already
  /// finalized), when the machine had the profiler enabled; null
  /// otherwise. Shared: outlives the machine.
  std::shared_ptr<profile::InterferenceProfiler> interference;
  /// Pipeline-lifetime (Kanata) recorder of the run, when the machine had
  /// it enabled; null otherwise. Shared: outlives the machine.
  std::shared_ptr<trace::PipeViewRecorder> pipeview;

  uint64_t total(perfmon::Event e) const { return events.total(e); }
  uint64_t cpu(CpuId c, perfmon::Event e) const { return events.get(c, e); }
};

/// How a try_run_workload invocation ended.
enum class RunStatus : uint8_t {
  kOk,                   // ran to completion and verified
  kDeadlock,             // no forward progress (watchdog / lost wake-up)
  kCycleBudgetExceeded,  // max_cycles elapsed before completion
  kVerifyFailed,         // completed, but the result check failed
  kCancelled,            // the host cancel predicate fired mid-run
  kRaceDetected,         // the happens-before detector found a data race
                         // or an out-of-extent guest access
};
const char* name(RunStatus s);

/// Optional run-time verification knobs for try_run_workload.
struct RunOptions {
  /// Attach analysis::RaceDetector to the machine before running and
  /// report any data race / out-of-extent access as kRaceDetected. The
  /// detector is configured from the workload's mem_info() (sync words,
  /// extents) plus the programs' own lock annotations. Detection is a
  /// pure observer: every perf counter stays bit-identical.
  bool race_detect = false;
  /// Attach core::FlightRecorder to the machine before running; when the
  /// run dies (deadlock, exhausted cycle budget, detected race) the
  /// post-mortem state is serialized into RunOutcome::core_dump as an
  /// `smt-core-dump/1` document (the smt_explain input). Pure observer:
  /// every perf counter stays bit-identical.
  bool flight_recorder = false;
};

/// Structured result of a non-aborting workload run. `stats` is always
/// filled in — on failure it describes the partial run (cycles, counters,
/// finalized telemetry), so a report can still be written; only kOk runs
/// have stats.verified == true.
struct RunOutcome {
  RunStatus status = RunStatus::kOk;
  RunStats stats;
  std::string message;  // empty on kOk, human-readable failure otherwise
  /// `smt-core-dump/1` JSON of the post-mortem machine state, when the
  /// flight recorder was attached (RunOptions::flight_recorder) and the
  /// run ended in kDeadlock / kCycleBudgetExceeded / kRaceDetected;
  /// empty otherwise.
  std::string core_dump;

  bool ok() const { return status == RunStatus::kOk; }
};

/// Runs `w` to completion on a machine built from `cfg` and verifies the
/// result. Aborts (SMT_CHECK) on simulation deadlock.
RunStats run_workload(const MachineConfig& cfg, Workload& w,
                      Cycle max_cycles = 4'000'000'000ull);

/// Non-aborting variant: deadlock, an exhausted cycle budget, a failed
/// verification, or a fired `cancel` predicate (polled periodically by the
/// core's run loop — the sweep job pool's wall-clock watchdog) come back
/// as a structured RunOutcome instead of crashing the process. Verification
/// only runs after a completed simulation; failed runs report
/// stats.verified == false without consulting the workload.
RunOutcome try_run_workload(const MachineConfig& cfg, Workload& w,
                            Cycle max_cycles = 4'000'000'000ull,
                            std::function<bool()> cancel = nullptr,
                            const RunOptions& opt = {});

}  // namespace smt::core
