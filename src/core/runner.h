// ExperimentRunner: executes a Workload on a fresh Machine and returns the
// measurements the paper's figures are built from.
#pragma once

#include <memory>
#include <string>

#include "core/machine.h"
#include "core/workload.h"
#include "perfmon/counters.h"
#include "trace/telemetry.h"

namespace smt::core {

struct RunStats {
  std::string workload;
  Cycle cycles = 0;            ///< wall-clock execution time in core cycles
  perfmon::Snapshot events;    ///< all per-logical-CPU counters
  bool verified = false;
  MachineConfig config;        ///< the machine the run executed on
  /// Time-resolved telemetry of the run (finalized), when the machine had
  /// it enabled; null otherwise. Shared: outlives the machine.
  std::shared_ptr<trace::Telemetry> telemetry;
  /// Per-PC attribution profile of the run, when the machine had the
  /// profiler enabled; null otherwise. Shared: outlives the machine.
  std::shared_ptr<profile::PcProfiler> pc_profile;

  uint64_t total(perfmon::Event e) const { return events.total(e); }
  uint64_t cpu(CpuId c, perfmon::Event e) const { return events.get(c, e); }
};

/// Runs `w` to completion on a machine built from `cfg` and verifies the
/// result. Aborts (SMT_CHECK) on simulation deadlock.
RunStats run_workload(const MachineConfig& cfg, Workload& w,
                      Cycle max_cycles = 4'000'000'000ull);

}  // namespace smt::core
