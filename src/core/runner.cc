#include "core/runner.h"

#include <utility>

#include "common/check.h"

namespace smt::core {

const char* name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk:                  return "ok";
    case RunStatus::kDeadlock:            return "deadlock";
    case RunStatus::kCycleBudgetExceeded: return "cycle_budget_exceeded";
    case RunStatus::kVerifyFailed:        return "verify_failed";
    case RunStatus::kCancelled:           return "cancelled";
    case RunStatus::kRaceDetected:        return "race_detected";
  }
  return "?";
}

RunOutcome try_run_workload(const MachineConfig& cfg, Workload& w,
                            Cycle max_cycles, std::function<bool()> cancel,
                            const RunOptions& opt) {
  RunOutcome out;

  Machine m(cfg);
  if (cancel) m.set_cancel_check(std::move(cancel));
  w.setup(m);
  if (opt.race_detect) {
    m.enable_race_detector();
    const MemInfo mi = w.mem_info();
    analysis::RaceDetector& det = *m.race_detector();
    for (const auto& r : mi.data) det.add_extent(r.base, r.bytes);
    for (const auto& r : mi.sync) {
      det.add_extent(r.base, r.bytes);
      for (uint64_t off = 0; off + 8 <= r.bytes; off += 8) {
        det.add_sync_word(r.base + off);
      }
    }
    det.set_extents_complete(mi.complete);
  }
  if (opt.flight_recorder) m.enable_flight_recorder();
  std::vector<isa::Program> progs = w.programs();
  SMT_CHECK_MSG(!progs.empty() && progs.size() <= kNumLogicalCpus,
                "workload must provide 1 or 2 programs");
  for (size_t i = 0; i < progs.size(); ++i) {
    m.load_program(static_cast<CpuId>(i), std::move(progs[i]));
  }
  const cpu::RunResult run = m.try_run(max_cycles);

  // The stats always describe the run, even a failed one: a partial report
  // (cycles so far, all counters, finalized telemetry) is still valid data.
  out.stats.workload = w.name();
  out.stats.cycles = m.cycles();
  out.stats.events = m.counters().snapshot();
  out.stats.config = cfg;
  out.stats.telemetry = m.telemetry();
  if (out.stats.telemetry != nullptr) out.stats.telemetry->finalize(m.cycles());
  out.stats.pc_profile = m.pc_profiler();
  out.stats.race_detector = m.race_detector();
  m.finalize_interference();
  out.stats.interference = m.interference();
  out.stats.pipeview = m.pipeview();

  // Post-mortem core dump for the failure outcomes, built once the final
  // status (and message) is known.
  const auto build_dump = [&m, &w, &out]() {
    if (m.flight_recorder() == nullptr) return;
    out.core_dump =
        core_dump_json(m, *m.flight_recorder(), w.mem_info(),
                       out.stats.workload, name(out.status), out.message);
  };

  switch (run.termination) {
    case cpu::RunTermination::kDeadlock:
      out.status = RunStatus::kDeadlock;
      break;
    case cpu::RunTermination::kCycleBudgetExceeded:
      out.status = RunStatus::kCycleBudgetExceeded;
      break;
    case cpu::RunTermination::kCancelled:
      out.status = RunStatus::kCancelled;
      break;
    case cpu::RunTermination::kDone:
      out.status = RunStatus::kOk;
      break;
  }
  if (!run.ok()) {
    // Incomplete computation: don't consult the workload's verifier. A
    // race seen before the failure rides along in the message (it often
    // explains the deadlock) without masking the termination cause.
    out.stats.verified = false;
    out.message = run.message;
    if (out.stats.race_detector != nullptr &&
        !out.stats.race_detector->clean()) {
      out.message += "; also: " + out.stats.race_detector->summary();
    }
    if (out.status == RunStatus::kDeadlock ||
        out.status == RunStatus::kCycleBudgetExceeded) {
      build_dump();
    }
    return out;
  }

  out.stats.verified = w.verify(m);
  if (!out.stats.verified) {
    out.status = RunStatus::kVerifyFailed;
    out.message = "result verification failed";
  }
  // A detected race outranks a verification verdict: the result may have
  // come out right by luck of the interleaving.
  if (out.stats.race_detector != nullptr &&
      !out.stats.race_detector->clean()) {
    out.status = RunStatus::kRaceDetected;
    out.message = out.stats.race_detector->summary();
    build_dump();
  }
  return out;
}

RunStats run_workload(const MachineConfig& cfg, Workload& w,
                      Cycle max_cycles) {
  RunOutcome o = try_run_workload(cfg, w, max_cycles);
  // Legacy contract: simulation failures abort (with the historical
  // watchdog / max_cycles message); a failed verification only shows up
  // as stats.verified == false.
  SMT_CHECK_MSG(o.ok() || o.status == RunStatus::kVerifyFailed,
                o.message.c_str());
  return std::move(o.stats);
}

}  // namespace smt::core
