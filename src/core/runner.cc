#include "core/runner.h"

#include "common/check.h"

namespace smt::core {

RunStats run_workload(const MachineConfig& cfg, Workload& w,
                      Cycle max_cycles) {
  Machine m(cfg);
  w.setup(m);
  std::vector<isa::Program> progs = w.programs();
  SMT_CHECK_MSG(!progs.empty() && progs.size() <= kNumLogicalCpus,
                "workload must provide 1 or 2 programs");
  for (size_t i = 0; i < progs.size(); ++i) {
    m.load_program(static_cast<CpuId>(i), std::move(progs[i]));
  }
  m.run(max_cycles);

  RunStats stats;
  stats.workload = w.name();
  stats.cycles = m.cycles();
  stats.events = m.counters().snapshot();
  stats.verified = w.verify(m);
  stats.config = cfg;
  stats.telemetry = m.telemetry();
  if (stats.telemetry != nullptr) stats.telemetry->finalize(m.cycles());
  stats.pc_profile = m.pc_profiler();
  return stats;
}

}  // namespace smt::core
