#include "mem/hierarchy.h"

#include <algorithm>

#include "common/check.h"

namespace smt::mem {

CacheHierarchy::CacheHierarchy(const HierConfig& cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2) {
  SMT_CHECK(cfg.num_mshrs >= 1);
  mshrs_.resize(cfg.num_mshrs);
  for (auto& s : streams_) s.resize(cfg.hw_prefetch_streams);
}

void CacheHierarchy::hw_stream_observe(CpuId cpu, Addr line, Cycle now) {
  auto& table = streams_[idx(cpu)];
  const Addr line_bytes = static_cast<Addr>(cfg_.l2.line_bytes);
  // Repeated misses to a line the stream already advanced past must not
  // reallocate (they are merges/secondary misses on the same line).
  for (const StreamEntry& s : table) {
    if (s.valid && s.next_line == line + line_bytes) return;
  }
  for (StreamEntry& s : table) {
    if (!s.valid || s.next_line != line) continue;
    // Ascending stream hit: slide the window and fetch ahead.
    s.next_line = line + line_bytes;
    const int degree = s.confirmed ? 1 : cfg_.hw_prefetch_degree;
    s.confirmed = true;
    for (int d = 1; d <= degree; ++d) {
      const Addr ahead = line + static_cast<Addr>(d) * line_bytes;
      bool in_flight = false;
      for (const Mshr& m : mshrs_) {
        if (m.valid && m.line == ahead && m.ready > now) {
          in_flight = true;
          break;
        }
      }
      if (in_flight || l2_.probe(ahead)) continue;
      ++stats_[idx(cpu)].hw_prefetch_fills;
      const Cycle l2_start = std::max(now, l2_free_);
      l2_free_ = l2_start + cfg_.l2_cycles_per_access;
      const Cache::AccessResult r2 = l2_.access(ahead, /*is_write=*/false);
      note_l2_eviction(r2, cpu);
      if (r2.writeback) writeback(l2_start);
      fetch_from_memory(ahead, l2_start);
    }
    return;
  }
  // No stream matched: allocate one (round-robin) anticipating line+1.
  StreamEntry& s = table[stream_rr_[idx(cpu)]];
  stream_rr_[idx(cpu)] = (stream_rr_[idx(cpu)] + 1) % table.size();
  s.valid = true;
  s.confirmed = false;
  s.next_line = line + line_bytes;
}

void CacheHierarchy::reset_stats() {
  stats_ = {};
  for (auto& m : pc_misses_) m.clear();
  l2_evictor_.clear();
  sibling_eviction_misses_ = {};
}

void CacheHierarchy::note_l2_eviction(const Cache::AccessResult& r,
                                      CpuId cpu) {
  if (!track_interference_ || !r.evicted) return;
  l2_evictor_[r.evicted_line] = idx(cpu);
}

void CacheHierarchy::writeback(Cycle now) {
  // A dirty line leaving L2 occupies the bus for one line transfer but the
  // requester does not wait for it.
  bus_free_ = std::max(bus_free_, now) + cfg_.bus_cycles_per_line;
}

Cycle CacheHierarchy::fetch_from_memory(Addr line, Cycle now) {
  // Merge with an in-flight fill of the same line.
  for (const Mshr& m : mshrs_) {
    if (m.valid && m.line == line && m.ready > now) return m.ready;
  }
  // Allocate an MSHR: a free one if available, otherwise wait for the
  // earliest to retire (this is the memory-level-parallelism bound).
  Mshr* slot = nullptr;
  for (Mshr& m : mshrs_) {
    if (!m.valid || m.ready <= now) {
      slot = &m;
      break;
    }
  }
  Cycle start = now;
  if (slot == nullptr) {
    slot = &mshrs_[0];
    for (Mshr& m : mshrs_) {
      if (m.ready < slot->ready) slot = &m;
    }
    start = slot->ready;
  }
  // Serialize line transfers on the front-side bus.
  const Cycle bus_start = std::max(start, bus_free_);
  bus_free_ = bus_start + cfg_.bus_cycles_per_line;
  const Cycle ready = bus_start + cfg_.mem_lat;
  slot->line = line;
  slot->ready = ready;
  slot->valid = true;
  return ready;
}

AccessOutcome CacheHierarchy::access(Addr a, bool is_write, CpuId cpu,
                                     Cycle now, uint32_t pc) {
  CpuStats& st = stats_[idx(cpu)];
  ++st.accesses;

  const Addr line = l1_.line_of(a);

  // A line whose fill is still in flight is present in the cache state
  // already (fills update state eagerly); route such accesses through the
  // MSHR table first so they observe the true arrival time.
  for (const Mshr& m : mshrs_) {
    if (m.valid && m.line == line && m.ready > now) {
      ++st.l1_misses;  // the data was not usable from L1 yet
      // Keep the stream engine advancing even when the demand merges with
      // an in-flight fill (it usually does once the stream is ahead).
      if (cfg_.hw_stream_prefetch) hw_stream_observe(cpu, line, now);
      return {.ready = m.ready, .served_by = ServedBy::kInFlight,
              .l2_miss = false};
    }
  }

  const Cache::AccessResult r1 = l1_.access(a, is_write);
  if (r1.hit) {
    return {.ready = now + cfg_.l1_hit_lat, .served_by = ServedBy::kL1,
            .l2_miss = false};
  }
  ++st.l1_misses;
  if (r1.writeback) {
    // L1 victim written back into L2 (state only; no requester delay).
    note_l2_eviction(l2_.access(r1.evicted_line, /*is_write=*/true), cpu);
  }

  ++st.l2_accesses;
  // The L2 port is a shared bandwidth resource: accesses from both logical
  // processors (and prefetches) serialize on it.
  const Cycle l2_start = std::max(now, l2_free_);
  l2_free_ = l2_start + cfg_.l2_cycles_per_access;
  const Cache::AccessResult r2 = l2_.access(a, is_write);
  if (r2.hit) {
    // Demand first, then let the stream engine fetch ahead.
    if (cfg_.hw_stream_prefetch) hw_stream_observe(cpu, line, now);
    return {.ready = l2_start + cfg_.l2_hit_lat, .served_by = ServedBy::kL2,
            .l2_miss = false};
  }
  ++st.l2_misses;
  if (!is_write) ++st.l2_read_misses;
  if (track_pc_misses_) ++pc_misses_[idx(cpu)][pc];
  if (track_interference_) {
    // Was this miss manufactured by the sibling evicting the line?
    const Addr l2_line = l2_.line_of(a);
    const auto it = l2_evictor_.find(l2_line);
    if (it != l2_evictor_.end()) {
      if (it->second != idx(cpu)) ++sibling_eviction_misses_[idx(cpu)];
      l2_evictor_.erase(it);
    }
    note_l2_eviction(r2, cpu);
  }
  if (r2.writeback) writeback(l2_start);

  const Cycle ready = fetch_from_memory(line, l2_start);
  if (cfg_.hw_stream_prefetch) hw_stream_observe(cpu, line, now);
  return {.ready = ready, .served_by = ServedBy::kMemory, .l2_miss = true};
}

Cycle CacheHierarchy::prefetch(Addr a, bool to_l1, CpuId cpu, Cycle now) {
  CpuStats& st = stats_[idx(cpu)];
  ++st.prefetches;

  const Addr line = l2_.line_of(a);

  // Already in flight? Nothing more to do.
  for (const Mshr& m : mshrs_) {
    if (m.valid && m.line == line && m.ready > now) return m.ready;
  }

  Cycle ready = now + cfg_.l2_hit_lat;
  if (!l2_.probe(a)) {
    ++st.prefetch_fills;
    const Cycle l2_start = std::max(now, l2_free_);
    l2_free_ = l2_start + cfg_.l2_cycles_per_access;
    const Cache::AccessResult r2 = l2_.access(a, /*is_write=*/false);
    note_l2_eviction(r2, cpu);
    if (r2.writeback) writeback(l2_start);
    ready = fetch_from_memory(line, l2_start);
  } else {
    l2_.access(a, /*is_write=*/false);  // refresh LRU
  }
  if (to_l1) {
    const Cache::AccessResult r1 = l1_.access(a, /*is_write=*/false);
    if (r1.writeback) {
      note_l2_eviction(l2_.access(r1.evicted_line, /*is_write=*/true), cpu);
    }
  }
  return ready;
}

}  // namespace smt::mem
