// Timed two-level cache hierarchy shared by both logical processors.
//
// On a Hyper-Threading package, both logical CPUs share L1D and L2 of the
// single physical core, so there is no coherence traffic to model — only
// capacity/conflict interference and bus bandwidth, which are exactly the
// effects the paper measures. Timing model:
//
//   L1 hit            : l1_hit_lat
//   L1 miss / L2 hit  : l2_hit_lat
//   L2 miss           : MSHR allocation + serialized bus transfer + mem_lat
//
// A finite MSHR file bounds memory-level parallelism; misses to a line that
// is already in flight merge with the pending fill (and are not recounted
// as bus-level misses, matching the paper's "L2 misses as seen by the bus
// unit"). A dirty victim charges bus occupancy for its writeback.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/cache.h"

namespace smt::mem {

struct HierConfig {
  CacheConfig l1{"L1D", 8 * 1024, 4, 64};
  CacheConfig l2{"L2", 512 * 1024, 8, 64};
  Cycle l1_hit_lat = 3;
  Cycle l2_hit_lat = 18;
  Cycle mem_lat = 230;
  int num_mshrs = 8;
  /// Front-side-bus occupancy per 64-byte line. A 533 MT/s x 8 B FSB under
  /// a 2.8 GHz core moves ~1.5 B per core cycle, i.e. ~40 cycles per line;
  /// this is the bandwidth wall that keeps SMT from helping the paper's
  /// memory-bound kernels (both contexts share one bus).
  Cycle bus_cycles_per_line = 40;
  /// L2 port occupancy per access (hit or fill): the 256-bit L2 bus moves a
  /// 64-byte line in 4 core cycles. Shared by both logical processors, it
  /// caps the combined L1-miss rate SMT can sustain.
  Cycle l2_cycles_per_access = 4;

  /// Hardware stream prefetcher (Netburst fetched ahead on ascending
  /// line streams). It covers the regular access patterns, which is why
  /// software SPR only pays off for irregular, data-dependent loads — the
  /// ones "traditionally difficult for hardware prefetchers" (paper §2).
  bool hw_stream_prefetch = true;
  int hw_prefetch_streams = 8;   // tracked streams per logical CPU
  int hw_prefetch_degree = 2;    // lines fetched ahead on a stream hit
};

/// Which level served an access (for stats and tests).
enum class ServedBy : uint8_t { kL1, kL2, kMemory, kInFlight };

struct AccessOutcome {
  Cycle ready = 0;            ///< cycle at which the data is usable
  ServedBy served_by = ServedBy::kL1;
  bool l2_miss = false;       ///< counted as a bus-level read miss
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierConfig& cfg);

  /// A demand load/store issued by `cpu` at cycle `now`. `pc` is the static
  /// instruction index used for delinquent-load attribution (pass 0 if
  /// unknown). Stores are write-allocate: a store miss performs the same
  /// fill as a load miss (the RFO read the paper's bus unit counts).
  AccessOutcome access(Addr a, bool is_write, CpuId cpu, Cycle now,
                       uint32_t pc = 0);

  /// Non-binding software prefetch into L2 (and L1 if `to_l1`). Returns the
  /// cycle the line lands; the prefetch instruction itself retires without
  /// waiting for it.
  Cycle prefetch(Addr a, bool to_l1, CpuId cpu, Cycle now);

  struct CpuStats {
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_accesses = 0;
    uint64_t l2_misses = 0;        // demand misses (loads + store RFOs)
    uint64_t l2_read_misses = 0;   // demand load misses only
    uint64_t prefetches = 0;
    uint64_t prefetch_fills = 0;   // prefetches that actually missed L2
    uint64_t hw_prefetch_fills = 0;  // lines fetched by the stream engine
  };

  const CpuStats& stats(CpuId cpu) const { return stats_[idx(cpu)]; }
  void reset_stats();

  /// Per-static-PC demand L2 miss counts (Valgrind-analog); enable before
  /// running to pay the hashing cost only when profiling.
  void set_track_pc_misses(bool on) { track_pc_misses_ = on; }
  const std::unordered_map<uint32_t, uint64_t>& pc_l2_misses(CpuId cpu) const {
    return pc_misses_[idx(cpu)];
  }

  /// L2 capacity-interference tracking (the interference profiler's cache
  /// dimension): when on, every L2 fill records which logical CPU's fill
  /// displaced the victim line, and a later demand L2 miss on a line the
  /// *sibling* evicted counts toward sibling_eviction_misses. Pure
  /// bookkeeping on the side — no timing, placement, or CpuStats field is
  /// affected, so enabling it never perturbs a counter.
  void set_track_interference(bool on) { track_interference_ = on; }
  uint64_t sibling_eviction_misses(CpuId cpu) const {
    return sibling_eviction_misses_[idx(cpu)];
  }

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  const HierConfig& config() const { return cfg_; }

 private:
  struct Mshr {
    Addr line = 0;
    Cycle ready = 0;  // also serves as "free when <= now"
    bool valid = false;
  };

  /// Starts (or merges into) a memory fetch of `line`; returns data-ready
  /// cycle. Updates bus and MSHR state.
  Cycle fetch_from_memory(Addr line, Cycle now);

  void writeback(Cycle now);

  /// Feeds the stream-prefetch engine with a demand L1 miss.
  void hw_stream_observe(CpuId cpu, Addr line, Cycle now);

  /// Records the victim of an L2 fill performed on behalf of `cpu`
  /// (demand fill, software/hardware prefetch, or L1 writeback allocate).
  void note_l2_eviction(const Cache::AccessResult& r, CpuId cpu);

  HierConfig cfg_;
  Cache l1_;
  Cache l2_;
  std::vector<Mshr> mshrs_;
  Cycle bus_free_ = 0;
  Cycle l2_free_ = 0;  // L2 port occupancy (shared bandwidth)

  struct StreamEntry {
    Addr next_line = 0;
    bool confirmed = false;  // needs one hit before fetching ahead
    bool valid = false;
  };
  std::array<std::vector<StreamEntry>, kNumLogicalCpus> streams_;
  std::array<size_t, kNumLogicalCpus> stream_rr_{};  // allocation cursor
  bool track_pc_misses_ = false;
  std::array<CpuStats, kNumLogicalCpus> stats_{};
  std::array<std::unordered_map<uint32_t, uint64_t>, kNumLogicalCpus> pc_misses_;
  bool track_interference_ = false;
  // evicted L2 line -> idx of the CPU whose fill displaced it (entries
  // consumed by the next demand miss on that line).
  std::unordered_map<Addr, int> l2_evictor_;
  std::array<uint64_t, kNumLogicalCpus> sibling_eviction_misses_{};
};

}  // namespace smt::mem
