// Set-associative, write-back, write-allocate cache with true-LRU
// replacement. This class models placement/replacement state only; timing
// (latencies, MSHRs, bus occupancy) lives in CacheHierarchy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace smt::mem {

struct CacheConfig {
  std::string name = "cache";
  size_t size_bytes = 0;
  int assoc = 1;
  int line_bytes = 64;

  int num_sets() const {
    return static_cast<int>(size_bytes / (static_cast<size_t>(assoc) * line_bytes));
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  struct AccessResult {
    bool hit = false;
    bool evicted = false;        // a valid line was displaced on fill
    bool writeback = false;      // ... and it was dirty
    Addr evicted_line = 0;       // line-aligned address of the victim
  };

  /// Looks up the line containing `addr`; on a hit updates LRU and the
  /// dirty bit (if `is_write`). On a miss, allocates the line (fetching is
  /// the hierarchy's job) and reports the victim.
  AccessResult access(Addr addr, bool is_write);

  /// Lookup without allocation or LRU update (used by prefetch filtering
  /// and by tests).
  bool probe(Addr addr) const;

  /// Invalidate the line if present (returns true if it was dirty).
  bool invalidate(Addr addr);

  void flush_all();

  Addr line_of(Addr addr) const { return addr & ~static_cast<Addr>(cfg_.line_bytes - 1); }
  const CacheConfig& config() const { return cfg_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t lru = 0;  // last-touch stamp; smallest = LRU victim
  };

  int set_of(Addr line) const {
    return static_cast<int>((line / cfg_.line_bytes) % num_sets_);
  }

  CacheConfig cfg_;
  int num_sets_;
  std::vector<Way> ways_;  // num_sets_ * assoc, row-major by set
  uint64_t stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace smt::mem
