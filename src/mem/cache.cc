#include "mem/cache.h"

namespace smt::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), num_sets_(cfg.num_sets()) {
  SMT_CHECK_MSG(cfg_.line_bytes > 0 && (cfg_.line_bytes & (cfg_.line_bytes - 1)) == 0,
                "line size must be a power of two");
  SMT_CHECK_MSG(cfg_.assoc >= 1, "associativity must be >= 1");
  SMT_CHECK_MSG(num_sets_ >= 1 && (num_sets_ & (num_sets_ - 1)) == 0,
                "set count must be a power of two >= 1");
  ways_.resize(static_cast<size_t>(num_sets_) * cfg_.assoc);
}

Cache::AccessResult Cache::access(Addr addr, bool is_write) {
  const Addr line = line_of(addr);
  const int set = set_of(line);
  Way* base = &ways_[static_cast<size_t>(set) * cfg_.assoc];
  ++stamp_;

  Way* victim = nullptr;
  for (int w = 0; w < cfg_.assoc; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = stamp_;
      way.dirty = way.dirty || is_write;
      ++hits_;
      return {.hit = true};
    }
    if (victim == nullptr || !way.valid ||
        (victim->valid && way.lru < victim->lru)) {
      if (victim == nullptr || victim->valid) victim = &way;
    }
  }

  ++misses_;
  AccessResult r;
  if (victim->valid) {
    r.evicted = true;
    r.writeback = victim->dirty;
    r.evicted_line = victim->tag;
  }
  victim->tag = line;
  victim->valid = true;
  victim->dirty = is_write;
  victim->lru = stamp_;
  return r;
}

bool Cache::probe(Addr addr) const {
  const Addr line = line_of(addr);
  const int set = set_of(line);
  const Way* base = &ways_[static_cast<size_t>(set) * cfg_.assoc];
  for (int w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) {
  const Addr line = line_of(addr);
  const int set = set_of(line);
  Way* base = &ways_[static_cast<size_t>(set) * cfg_.assoc];
  for (int w = 0; w < cfg_.assoc; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].valid = false;
      return base[w].dirty;
    }
  }
  return false;
}

void Cache::flush_all() {
  for (auto& w : ways_) w = Way{};
}

}  // namespace smt::mem
