#include "mem/sim_memory.h"

#include <bit>

namespace smt::mem {

namespace {
uint64_t page_index(Addr a) { return a / SimMemory::kPageBytes; }
size_t page_offset(Addr a) { return a % SimMemory::kPageBytes; }
}  // namespace

uint8_t* SimMemory::page_for(Addr a) {
  auto& slot = pages_[page_index(a)];
  if (!slot) {
    slot = std::make_unique<uint8_t[]>(kPageBytes);
    std::memset(slot.get(), 0, kPageBytes);
  }
  return slot.get();
}

const uint8_t* SimMemory::page_for(Addr a) const {
  auto it = pages_.find(page_index(a));
  return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t SimMemory::read_u64(Addr a) const {
  SMT_DCHECK(a % 8 == 0);
  const uint8_t* p = page_for(a);
  if (p == nullptr) return 0;  // untouched memory reads as zero
  uint64_t v;
  std::memcpy(&v, p + page_offset(a), 8);
  return v;
}

void SimMemory::write_u64(Addr a, uint64_t v) {
  SMT_DCHECK(a % 8 == 0);
  std::memcpy(page_for(a) + page_offset(a), &v, 8);
}

double SimMemory::read_f64(Addr a) const {
  return std::bit_cast<double>(read_u64(a));
}

void SimMemory::write_f64(Addr a, double v) {
  write_u64(a, std::bit_cast<uint64_t>(v));
}

uint64_t SimMemory::exchange_u64(Addr a, uint64_t v) {
  const uint64_t old = read_u64(a);
  write_u64(a, v);
  return old;
}

void SimMemory::store_f64_array(Addr base, std::span<const double> values) {
  for (size_t i = 0; i < values.size(); ++i) write_f64(base + 8 * i, values[i]);
}

void SimMemory::load_f64_array(Addr base, std::span<double> out) const {
  for (size_t i = 0; i < out.size(); ++i) out[i] = read_f64(base + 8 * i);
}

void SimMemory::store_i64_array(Addr base, std::span<const int64_t> values) {
  for (size_t i = 0; i < values.size(); ++i) write_i64(base + 8 * i, values[i]);
}

void SimMemory::fill_f64(Addr base, size_t count, double v) {
  for (size_t i = 0; i < count; ++i) write_f64(base + 8 * i, v);
}

Addr MemoryLayout::alloc(std::string name, size_t bytes, size_t align) {
  SMT_CHECK_MSG(align >= 8 && (align & (align - 1)) == 0,
                "alignment must be a power of two >= 8");
  next_ = (next_ + align - 1) & ~static_cast<Addr>(align - 1);
  const Addr base = next_;
  // Pad to the next line boundary so distinct regions never share a line.
  next_ += (bytes + line_ - 1) / line_ * line_;
  total_ += bytes;
  regions_.push_back({std::move(name), base, bytes});
  return base;
}

}  // namespace smt::mem
