// Functional backing store for the simulated 64-bit address space.
//
// Pages are allocated lazily so kernels can lay out multi-megabyte arrays
// without committing host memory for untouched gaps. All simulated loads
// and stores move aligned 64-bit words: the kernels use double for fp data
// and int64 for indices/flags, which keeps the functional model trivial
// while preserving the cache-footprint ratios that matter to the paper
// (one matrix element == one 8-byte word == 8 elements per 64-byte line).
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace smt::mem {

class SimMemory {
 public:
  static constexpr size_t kPageBytes = 1 << 16;  // 64 KiB

  SimMemory() = default;
  SimMemory(const SimMemory&) = delete;
  SimMemory& operator=(const SimMemory&) = delete;

  uint64_t read_u64(Addr a) const;
  void write_u64(Addr a, uint64_t v);

  double read_f64(Addr a) const;
  void write_f64(Addr a, double v);

  int64_t read_i64(Addr a) const {
    return static_cast<int64_t>(read_u64(a));
  }
  void write_i64(Addr a, int64_t v) {
    write_u64(a, static_cast<uint64_t>(v));
  }

  /// Atomic (simulation-level) exchange, for the xchg instruction.
  uint64_t exchange_u64(Addr a, uint64_t v);

  // Bulk helpers for host-side workload setup / verification.
  void store_f64_array(Addr base, std::span<const double> values);
  void load_f64_array(Addr base, std::span<double> out) const;
  void store_i64_array(Addr base, std::span<const int64_t> values);
  void fill_f64(Addr base, size_t count, double v);

  size_t num_pages() const { return pages_.size(); }

 private:
  uint8_t* page_for(Addr a);
  const uint8_t* page_for(Addr a) const;  // nullptr if never written

  mutable std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
};

/// Bump allocator carving named regions out of the simulated address space.
/// Regions are cache-line aligned by default; an extra pad of one line
/// between regions prevents accidental false line sharing between logically
/// distinct arrays (which would perturb miss counts).
class MemoryLayout {
 public:
  explicit MemoryLayout(Addr base = 0x10000, size_t line_bytes = 64)
      : next_(base), line_(line_bytes) {}

  /// Reserve `bytes` with alignment `align` (>= 8, power of two).
  Addr alloc(std::string name, size_t bytes, size_t align = 64);

  /// Reserve an array of `count` 8-byte words.
  Addr alloc_words(std::string name, size_t count, size_t align = 64) {
    return alloc(std::move(name), count * 8, align);
  }

  struct Region {
    std::string name;
    Addr base;
    size_t bytes;
  };
  const std::vector<Region>& regions() const { return regions_; }

  /// Total bytes reserved so far (for working-set documentation).
  size_t total_bytes() const { return total_; }

 private:
  Addr next_;
  size_t line_;
  size_t total_ = 0;
  std::vector<Region> regions_;
};

}  // namespace smt::mem
