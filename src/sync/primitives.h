// User-space synchronization primitives of paper §3.1, as DSL emitters.
//
// The paper implements lightweight spin-wait loops over shared variables,
// embeds `pause` to de-pipeline them (Intel's recommendation), and adds
// kernel extensions that let a spinning logical processor execute `halt` —
// releasing its statically partitioned queue halves to the sibling — and be
// woken later by an IPI. Sense-reversing barriers are built on top. All of
// those exist here as code emitters targeting the micro-ISA: each function
// appends the instruction sequence of one primitive to a thread's program.
//
// Register discipline: emitters only touch the registers the caller passes
// in (plus the shared memory words they own), so kernels can reserve their
// own registers around synchronization points.
#pragma once

#include <string>

#include "isa/asm_builder.h"
#include "mem/sim_memory.h"
#include "trace/recorder.h"

namespace smt::sync {

/// How a wait loop burns time until its condition flips.
enum class SpinKind {
  kTight,  ///< naive spin: maximum resource consumption + machine clears
  kPause,  ///< spin with pause (the paper's default)
};

/// Spin until the 64-bit word at `addr` equals `value`.
void emit_spin_until_eq(isa::AsmBuilder& a, Addr addr, isa::IReg scratch,
                        int64_t value, SpinKind kind);

/// Spin until the word at `addr` equals the value in `value_reg`.
void emit_spin_until_eq_reg(isa::AsmBuilder& a, Addr addr, isa::IReg scratch,
                            isa::IReg value_reg, SpinKind kind);

/// Spin until the word at `addr` is >= the value in `value_reg` (the
/// monotonic-epoch wait used by the barrier).
void emit_spin_until_ge_reg(isa::AsmBuilder& a, Addr addr, isa::IReg scratch,
                            isa::IReg value_reg, SpinKind kind);

/// Store an immediate flag value (release-style signal).
void emit_flag_set(isa::AsmBuilder& a, Addr addr, isa::IReg scratch,
                   int64_t value);

/// Test-and-set spin lock via atomic xchg.
void emit_lock_acquire(isa::AsmBuilder& a, Addr lock_addr, isa::IReg scratch,
                       SpinKind kind);
void emit_lock_release(isa::AsmBuilder& a, Addr lock_addr, isa::IReg scratch);

/// Registers a test-and-set lock word with a trace recorder: the timeline
/// then shows a `lock_held` span from each successful xchg-acquire to the
/// releasing store. Returns the recorder's annotation id.
int annotate_lock(trace::TraceRecorder& rec, Addr lock_addr,
                  const std::string& name);

/// Sense-reversing barrier for the two hardware contexts ([12] in the
/// paper, specialized to two participants): each thread publishes its
/// arrival by writing its episode counter to its own flag word and waits
/// for the sibling's flag to catch up. The counter's low bit is the
/// episode's sense; carrying the whole counter makes back-to-back episodes
/// race-free. The `sense_reg` passed to the waits holds this counter and
/// must be initialized once via emit_init and preserved between waits.
///
/// Three wait flavours:
///  * emit_wait          — symmetric spin (tight or pause) wait;
///  * emit_wait_sleeper  — the "long duration" variant of §3.2: the early
///    arriver (the precomputation thread) publishes arrival, marks itself
///    sleeping and halts its logical processor until the sibling's IPI;
///  * emit_wait_waker    — the counterpart: publish arrival, wait for the
///    sibling to be asleep, wake it with an IPI.
/// A sleeper barrier must pair sleeper and waker sides at the same episode.
class TwoThreadBarrier {
 public:
  TwoThreadBarrier(mem::MemoryLayout& layout, const std::string& name);

  /// Initializes the thread-local sense register (call once per program,
  /// before any wait).
  void emit_init(isa::AsmBuilder& a, isa::IReg sense_reg) const;

  void emit_wait(isa::AsmBuilder& a, int tid, isa::IReg sense_reg,
                 isa::IReg scratch, SpinKind kind) const;

  void emit_wait_sleeper(isa::AsmBuilder& a, int tid, isa::IReg sense_reg,
                         isa::IReg scratch) const;

  void emit_wait_waker(isa::AsmBuilder& a, int tid, isa::IReg sense_reg,
                       isa::IReg scratch, SpinKind kind) const;

  Addr flag_addr(int tid) const;
  Addr sleeping_addr() const { return sleeping_; }

  /// Registers this barrier's arrival flags with a trace recorder so every
  /// episode appears as a span in the event timeline (`spr` marks barriers
  /// that throttle an SPR prefetcher — their completions additionally emit
  /// handoff markers). Returns the recorder's annotation id.
  int annotate(trace::TraceRecorder& rec, const std::string& name,
               bool spr = false) const;

 private:
  Addr flags_;     // arrival flag of thread 0 (own cache line)
  Addr flag1_;     // arrival flag of thread 1 (own cache line)
  Addr sleeping_;  // sleeper publishes "I am about to halt"
};

}  // namespace smt::sync
