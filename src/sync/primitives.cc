#include "sync/primitives.h"

#include "common/check.h"

namespace smt::sync {

using isa::AsmBuilder;
using isa::BrCond;
using isa::IReg;
using isa::Label;
using isa::Mem;
using isa::reg_bit;

namespace {

void emit_spin_body(AsmBuilder& a, SpinKind kind, Label spin) {
  if (kind == SpinKind::kPause) a.pause();
  a.jmp(spin);
}

}  // namespace

void emit_spin_until_eq(AsmBuilder& a, Addr addr, IReg scratch, int64_t value,
                        SpinKind kind) {
  a.begin_sync_region("spin_until_eq", reg_bit(scratch), /*is_spin=*/true,
                      kind == SpinKind::kPause);
  Label spin = a.here();
  Label done = a.label();
  a.load(scratch, Mem::abs(addr));
  a.bri(BrCond::kEq, scratch, value, done);
  emit_spin_body(a, kind, spin);
  a.bind(done);
  a.end_sync_region();
}

void emit_spin_until_eq_reg(AsmBuilder& a, Addr addr, IReg scratch,
                            IReg value_reg, SpinKind kind) {
  // scratch receives every sampled flag value: aliasing it with the
  // comparand would silently overwrite the value being waited for.
  SMT_CHECK_MSG(scratch != value_reg,
                "spin scratch register aliases value_reg");
  a.begin_sync_region("spin_until_eq_reg", reg_bit(scratch), /*is_spin=*/true,
                      kind == SpinKind::kPause);
  Label spin = a.here();
  Label done = a.label();
  a.load(scratch, Mem::abs(addr));
  a.br(BrCond::kEq, scratch, value_reg, done);
  emit_spin_body(a, kind, spin);
  a.bind(done);
  a.end_sync_region();
}

void emit_spin_until_ge_reg(AsmBuilder& a, Addr addr, IReg scratch,
                            IReg value_reg, SpinKind kind) {
  SMT_CHECK_MSG(scratch != value_reg,
                "spin scratch register aliases value_reg");
  a.begin_sync_region("spin_until_ge_reg", reg_bit(scratch), /*is_spin=*/true,
                      kind == SpinKind::kPause);
  Label spin = a.here();
  Label done = a.label();
  a.load(scratch, Mem::abs(addr));
  a.br(BrCond::kGe, scratch, value_reg, done);
  emit_spin_body(a, kind, spin);
  a.bind(done);
  a.end_sync_region();
}

void emit_flag_set(AsmBuilder& a, Addr addr, IReg scratch, int64_t value) {
  a.begin_sync_region("flag_set", reg_bit(scratch));
  a.imovi(scratch, value);
  a.store(scratch, Mem::abs(addr));
  a.end_sync_region();
}

void emit_lock_acquire(AsmBuilder& a, Addr lock_addr, IReg scratch,
                       SpinKind kind) {
  const size_t begin = a.pos();
  a.begin_sync_region("lock_acquire", reg_bit(scratch), /*is_spin=*/true,
                      kind == SpinKind::kPause);
  a.imovi(scratch, 1);
  Label spin = a.here();
  Label got = a.label();
  a.xchg(scratch, Mem::abs(lock_addr));
  a.bri(BrCond::kEq, scratch, 0, got);
  // A failed attempt leaves scratch == 1, ready for the next exchange.
  emit_spin_body(a, kind, spin);
  a.bind(got);
  a.end_sync_region();
  a.note_lock_op(begin, lock_addr, /*acquire=*/true);
}

void emit_lock_release(AsmBuilder& a, Addr lock_addr, IReg scratch) {
  const size_t begin = a.pos();
  a.begin_sync_region("lock_release", reg_bit(scratch));
  a.imovi(scratch, 0);
  a.store(scratch, Mem::abs(lock_addr));
  a.end_sync_region();
  a.note_lock_op(begin, lock_addr, /*acquire=*/false);
}

int annotate_lock(trace::TraceRecorder& rec, Addr lock_addr,
                  const std::string& name) {
  return rec.annotate_lock(lock_addr, name);
}

TwoThreadBarrier::TwoThreadBarrier(mem::MemoryLayout& layout,
                                   const std::string& name) {
  // One cache line per word: the arrival flags and the sleeping word must
  // not share lines, or the spin traffic of one thread would thrash the
  // other's flag (MemoryLayout pads regions to line boundaries).
  flags_ = layout.alloc(name + ".flag0", 8);
  layout.alloc(name + ".flag1", 8);  // contiguous region ids; address below
  sleeping_ = layout.alloc(name + ".sleeping", 8);
  // flag_addr() recomputes from the recorded regions:
  flag1_ = layout.regions()[layout.regions().size() - 2].base;
}

Addr TwoThreadBarrier::flag_addr(int tid) const {
  SMT_CHECK(tid == 0 || tid == 1);
  return tid == 0 ? flags_ : flag1_;
}

int TwoThreadBarrier::annotate(trace::TraceRecorder& rec,
                               const std::string& name, bool spr) const {
  return rec.annotate_barrier(flag_addr(0), flag_addr(1), name, spr);
}

void TwoThreadBarrier::emit_init(AsmBuilder& a, IReg sense_reg) const {
  a.begin_sync_region("barrier_init", reg_bit(sense_reg));
  a.imovi(sense_reg, 0);
  a.end_sync_region();
}

// The arrival flags carry a monotonically increasing episode counter (the
// episode's sense is its low bit — this generalizes sense reversal). A
// binary flag would race on back-to-back barriers: the sibling can arrive
// at episode e and overwrite its flag for e+1 before this thread samples
// it; with monotonic epochs the exit condition flag >= epoch stays
// satisfied forever once reached.
void TwoThreadBarrier::emit_wait(AsmBuilder& a, int tid, IReg sense_reg,
                                 IReg scratch, SpinKind kind) const {
  a.begin_sync_region("barrier_wait", reg_bit(sense_reg) | reg_bit(scratch));
  a.iaddi(sense_reg, sense_reg, 1);
  a.store(sense_reg, Mem::abs(flag_addr(tid)));
  emit_spin_until_ge_reg(a, flag_addr(1 - tid), scratch, sense_reg, kind);
  a.end_sync_region();
}

void TwoThreadBarrier::emit_wait_sleeper(AsmBuilder& a, int tid,
                                         IReg sense_reg,
                                         IReg scratch) const {
  a.begin_sync_region("barrier_wait_sleeper",
                      reg_bit(sense_reg) | reg_bit(scratch));
  a.iaddi(sense_reg, sense_reg, 1);
  a.store(sense_reg, Mem::abs(flag_addr(tid)));
  // Publish "about to halt", release all partitioned resources, sleep.
  // The sibling's IPI is sticky in the core (x86 HLT-with-pending-interrupt
  // semantics), so the store->halt window cannot lose the wake-up.
  emit_flag_set(a, sleeping_, scratch, 1);
  a.halt();
  emit_flag_set(a, sleeping_, scratch, 0);
  // The IPI is only ever sent after the sibling published its own arrival,
  // so no further wait is needed here.
  a.end_sync_region();
}

void TwoThreadBarrier::emit_wait_waker(AsmBuilder& a, int tid, IReg sense_reg,
                                       IReg scratch, SpinKind kind) const {
  a.begin_sync_region("barrier_wait_waker",
                      reg_bit(sense_reg) | reg_bit(scratch));
  a.iaddi(sense_reg, sense_reg, 1);
  a.store(sense_reg, Mem::abs(flag_addr(tid)));
  // Wait for the sibling's arrival, then for it to be (about to be) asleep,
  // then wake it. The sleeper always halts at a sleeper barrier, so waiting
  // for sleeping==1 cannot hang; monotonic epochs plus the sleeper's
  // "reset sleeping before next arrival" ordering make the stale-sleeping
  // observation benign (the IPI is then the sticky pre-halt delivery).
  emit_spin_until_ge_reg(a, flag_addr(1 - tid), scratch, sense_reg, kind);
  emit_spin_until_eq(a, sleeping_, scratch, 1, kind);
  a.ipi();
  a.end_sync_region();
}

}  // namespace smt::sync
