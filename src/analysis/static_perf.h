// Static CPI lower-bound advisor: per-block port pressure and dependence
// critical paths, composed over the loop structure recovered by
// analysis/absint.h, into a whole-program lower bound on a logical CPU's
// active-cycles-per-instruction — from the program text alone, before a
// single cycle is simulated.
//
// Soundness contract (cross-validated against the cycle-accurate core on
// the full bench registry in tests/static_perf_test.cc): for any run of
// the program that COMPLETES, the reported cpi_lb never exceeds the
// measured per-CPU CPI (perfmon::CpuCycleBreakdown::cpi, active cycles
// per retired instruction). The bound is NOT valid against a truncated
// (budget-exceeded) run: a prefix of the execution can have a different
// block mix than any whole execution.
//
// Two regimes:
//   * exact — control flow is a straight nest of resolved counted loops
//     (LoopInfo::exact): every block's execution count is known, so the
//     bound is max over hard resource constraints of the whole program
//     (port-capacity sums, dispatch/retire bandwidth, unpipelined-divider
//     occupancy, single-instruction loop-carried dependence chains),
//     divided by the static instruction count.
//   * fallback — any path is a concatenation of whole blocks (plus one
//     exit-terminated prefix), so CPI over any path is at least the
//     minimum per-instruction cost density over all reachable blocks and
//     exit prefixes; the retire-width family makes this at least 1/3.
#pragma once

#include <array>
#include <string>

#include "cpu/config.h"
#include "cpu/core.h"
#include "isa/program.h"

namespace smt::analysis {

struct StaticPerf {
  /// Loop structure fully resolved: cycles_lb / instrs / uops / port_uops
  /// describe the whole execution exactly.
  bool exact = false;
  /// Lower bound on active cycles (exact mode only; 0 otherwise).
  double cycles_lb = 0.0;
  /// Static retired-instruction count of one complete execution (exact
  /// mode only). Counts every instruction on the path, so it is >= the
  /// core's instr_retired — which keeps cpi_lb conservative.
  uint64_t instrs = 0;
  /// Static uop count (xchg is two uops; exact mode excludes xchg).
  uint64_t uops = 0;
  /// Lower bound on active CPI of any complete run. Always valid; > 0
  /// for any non-empty program (retire width caps instructions/cycle).
  double cpi_lb = 0.0;
  /// The constraint family that set the bound (e.g. "fp port",
  /// "retire width", "fdiv unit", "loop-carried fadd chain").
  std::string binding;
  /// Freq-weighted uop count per issue port (exact mode only). Simple-ALU
  /// uops that may issue on either ALU are attributed to ALU1, the
  /// scheduler's preferred port for them.
  std::array<double, cpu::kNumIssuePorts> port_uops{};
};

/// Computes the static bound for one logical CPU's program under `cfg`.
/// Never aborts: malformed programs degrade to the fallback regime (an
/// empty program reports cpi_lb == 0).
StaticPerf static_cpi_bound(const isa::Program& p,
                            const cpu::CoreConfig& cfg);

}  // namespace smt::analysis
