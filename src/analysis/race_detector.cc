#include "analysis/race_detector.h"

#include <sstream>

#include "isa/disasm.h"

namespace smt::analysis {

using cpu::GuestAccess;

void RaceDetector::set_program(CpuId cpu, const isa::Program& p) {
  progs_[idx(cpu)] = p;
  for (const isa::LockOp& op : p.lock_ops()) add_sync_word(op.addr);
}

bool RaceDetector::in_extents(Addr a) const {
  for (const ExtentRange& e : extents_) {
    if (a >= e.base && a + 8 <= e.base + e.bytes) return true;
  }
  return false;
}

std::string RaceDetector::access_str(CpuId cpu, uint32_t pc,
                                     GuestAccess kind) const {
  std::ostringstream os;
  os << "cpu" << idx(cpu) << " pc " << pc << " (" << cpu::name(kind);
  const auto& prog = progs_[idx(cpu)];
  if (prog.has_value() && pc < prog->size()) {
    os << " `" << isa::disasm(prog->at(pc)) << "`";
  }
  os << ")";
  return os.str();
}

std::string RaceDetector::describe(const RaceReport& r) const {
  std::ostringstream os;
  os << "data race on word 0x" << std::hex << r.addr << std::dec << ": "
     << access_str(r.first_cpu, r.first_pc, r.first_kind)
     << " is concurrent with "
     << access_str(r.second_cpu, r.second_pc, r.second_kind);
  return os.str();
}

std::string RaceDetector::describe(const ExtentViolation& v) const {
  std::ostringstream os;
  os << "access outside registered extents at 0x" << std::hex << v.addr
     << std::dec << ": " << access_str(v.cpu, v.pc, v.kind);
  return os.str();
}

std::string RaceDetector::summary() const {
  if (clean()) return "";
  std::ostringstream os;
  if (!races_.empty()) {
    os << describe(races_.front());
    if (total_races_ > 1) {
      os << " (+" << total_races_ - 1 << " further conflicting pair(s))";
    }
  }
  if (!extent_violations_.empty()) {
    if (!races_.empty()) os << "; ";
    os << describe(extent_violations_.front());
    if (extent_violations_.size() > 1) {
      os << " (+" << extent_violations_.size() - 1 << " more)";
    }
  }
  return os.str();
}

void RaceDetector::report_race(int first_tid, uint32_t first_pc,
                               GuestAccess first_kind, CpuId second_cpu,
                               uint32_t second_pc, GuestAccess second_kind,
                               Addr addr) {
  ++total_races_;
  if (races_.size() >= kMaxReports) return;
  const uint64_t key = (static_cast<uint64_t>(first_pc) << 32) ^
                       (static_cast<uint64_t>(second_pc) << 8) ^
                       (static_cast<uint64_t>(first_kind) << 4) ^
                       (static_cast<uint64_t>(second_kind) << 2) ^
                       static_cast<uint64_t>(first_tid);
  if (!race_keys_.insert(key).second) return;
  RaceReport r;
  r.first_cpu = static_cast<CpuId>(first_tid);
  r.first_pc = first_pc;
  r.first_kind = first_kind;
  r.second_cpu = second_cpu;
  r.second_pc = second_pc;
  r.second_kind = second_kind;
  r.addr = addr;
  races_.push_back(std::move(r));
}

void RaceDetector::on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                                   GuestAccess kind, uint64_t value) {
  (void)value;  // carried for observers that want it; HB needs only order
  const int t = idx(cpu);
  const int u = 1 - t;

  if (extents_complete_ && !in_extents(addr)) {
    const uint64_t key =
        (static_cast<uint64_t>(pc) << 2) | static_cast<uint64_t>(t);
    if (extent_violations_.size() < kMaxReports &&
        violation_keys_.insert(key).second) {
      extent_violations_.push_back({cpu, pc, kind, addr});
    }
  }

  if (sync_words_.count(addr) != 0) {
    VectorClock& word = sync_clock_[addr];
    if (kind != GuestAccess::kStore) clock_[t].join(word);  // acquire
    if (kind != GuestAccess::kLoad) {                       // release
      word.join(clock_[t]);
      ++clock_[t].c[t];
    }
    return;
  }

  Shadow& s = shadow_[addr];
  const bool is_write = kind != GuestAccess::kLoad;  // xchg writes too
  // A prior write by the sibling races with this access unless it
  // happened-before it (its epoch is covered by our clock).
  if (s.write_tid == u && s.write_epoch > clock_[t].c[u]) {
    report_race(u, s.write_pc, s.write_kind, cpu, pc, kind, addr);
  }
  // A write additionally races with the sibling's prior un-ordered read.
  if (is_write && s.read_epoch[u] > clock_[t].c[u]) {
    report_race(u, s.read_pc[u], GuestAccess::kLoad, cpu, pc, kind, addr);
  }
  if (is_write) {
    s.write_tid = static_cast<int8_t>(t);
    s.write_epoch = clock_[t].c[t];
    s.write_pc = pc;
    s.write_kind = kind;
  }
  if (kind != GuestAccess::kStore) {  // loads and the read half of xchg
    s.read_epoch[t] = clock_[t].c[t];
    s.read_pc[t] = pc;
  }
}

void RaceDetector::on_ipi_send(CpuId cpu) {
  const int t = idx(cpu);
  // Release into the sibling's wake channel: the IPI carries everything
  // the sender did before it.
  ipi_channel_[1 - t].join(clock_[t]);
  ++clock_[t].c[t];
}

void RaceDetector::on_ipi_wake(CpuId cpu) {
  const int t = idx(cpu);
  clock_[t].join(ipi_channel_[t]);  // acquire the wake-up edge
}

}  // namespace smt::analysis
