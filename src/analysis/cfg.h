// Control-flow graph over an isa::Program, the substrate of the static
// micro-ISA lint (src/analysis/lint.h).
//
// Basic blocks are maximal straight-line instruction ranges: a leader is
// the program entry, any branch target, or the instruction after a
// branch. Edges follow the resolved instruction-index targets the
// assembler wrote into kBr/kJmp (kBr additionally falls through; kExit
// terminates; everything else — including kHalt, which resumes after the
// wake-up IPI — falls through). Construction never aborts on malformed
// programs: an out-of-range or unresolved branch target and a block that
// can run past the program end are recorded as flags for the lint to
// report, so hand-built (deliberately broken) programs can be analyzed.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace smt::analysis {

struct BasicBlock {
  uint32_t begin = 0;  // first instruction index
  uint32_t end = 0;    // one past the last instruction
  std::vector<uint32_t> succs;  // successor block indices
  std::vector<uint32_t> preds;  // predecessor block indices
  bool reachable = false;       // from the entry block
  /// The block's last instruction can transfer control past the end of
  /// the program (fall-through at the boundary, or a branch whose target
  /// is unresolved / out of range).
  bool falls_off_end = false;
  /// The block ends in a branch whose target index is invalid.
  bool bad_target = false;
};

struct Cfg {
  std::vector<BasicBlock> blocks;   // in program order; block 0 is entry
  std::vector<uint32_t> block_of;   // instruction index -> block index

  /// Builds the CFG and computes reachability from instruction 0.
  /// An empty program yields an empty CFG (no blocks) rather than
  /// aborting, so analyses over arbitrary inputs degrade gracefully; a
  /// single-instruction self-loop (`pc 0: br ... -> 0`) yields one block
  /// that is its own successor and predecessor.
  static Cfg build(const isa::Program& p);
};

}  // namespace smt::analysis
