#include "analysis/absint.h"

#include <algorithm>
#include <limits>

#include "isa/opcode.h"

namespace smt::analysis {

using isa::BrCond;
using isa::Instr;
using isa::kNoReg;
using isa::Opcode;
using isa::RegId;

namespace {

constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min();
constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max();
using I128 = __int128;

bool fits(I128 v) { return v >= I128(kNegInf) && v <= I128(kPosInf); }

int64_t clamp_hi(I128 v) { return v > I128(kPosInf) ? kPosInf : int64_t(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Interval lattice.
// ---------------------------------------------------------------------------

Interval Interval::top() { return {kNegInf, kPosInf}; }

bool Interval::is_top() const { return lo == kNegInf && hi == kPosInf; }

Interval join(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval widen(const Interval& prev, const Interval& next) {
  if (prev.is_bottom()) return next;
  if (next.is_bottom()) return prev;
  return {next.lo < prev.lo ? kNegInf : prev.lo,
          next.hi > prev.hi ? kPosInf : prev.hi};
}

// Transfer helpers. The guest ALU wraps on int64 overflow (interp.cc uses
// plain int64 arithmetic), so any bound computation that leaves the int64
// range must give up and return top — a saturated bound would exclude the
// wrapped value and make a "proved" fact false on a real execution.

Interval itv_add(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  Interval r;
  if (a.lo == kNegInf || b.lo == kNegInf) {
    r.lo = kNegInf;
  } else {
    const I128 v = I128(a.lo) + b.lo;
    if (!fits(v)) return Interval::top();
    r.lo = int64_t(v);
  }
  if (a.hi == kPosInf || b.hi == kPosInf) {
    r.hi = kPosInf;
  } else {
    const I128 v = I128(a.hi) + b.hi;
    if (!fits(v)) return Interval::top();
    r.hi = int64_t(v);
  }
  return r;
}

Interval itv_sub(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  Interval r;
  if (a.lo == kNegInf || b.hi == kPosInf) {
    r.lo = kNegInf;
  } else {
    const I128 v = I128(a.lo) - b.hi;
    if (!fits(v)) return Interval::top();
    r.lo = int64_t(v);
  }
  if (a.hi == kPosInf || b.lo == kNegInf) {
    r.hi = kPosInf;
  } else {
    const I128 v = I128(a.hi) - b.lo;
    if (!fits(v)) return Interval::top();
    r.hi = int64_t(v);
  }
  return r;
}

Interval itv_mul(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  const bool a_finite = a.lo != kNegInf && a.hi != kPosInf;
  const bool b_finite = b.lo != kNegInf && b.hi != kPosInf;
  if (a_finite && b_finite) {
    const I128 c[4] = {I128(a.lo) * b.lo, I128(a.lo) * b.hi,
                       I128(a.hi) * b.lo, I128(a.hi) * b.hi};
    const I128 lo = *std::min_element(c, c + 4);
    const I128 hi = *std::max_element(c, c + 4);
    if (!fits(lo) || !fits(hi)) return Interval::top();
    return {int64_t(lo), int64_t(hi)};
  }
  if (a.lo >= 0 && b.lo >= 0) {
    const I128 lo = I128(a.lo) * b.lo;  // both finite: lo bounds are >= 0
    return {fits(lo) ? int64_t(lo) : kPosInf, kPosInf};
  }
  return Interval::top();
}

Interval itv_div(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (b.is_constant() && b.lo == 0) return Interval::constant(0);  // x/0 == 0
  if (b.lo <= 0 && b.hi >= 0) return Interval::top();  // may divide by zero
  if (a.lo == kNegInf || a.hi == kPosInf) return Interval::top();
  // Truncating division is monotone in each operand when the divisor
  // interval excludes zero, so the extrema are at the corners.
  const I128 c[4] = {I128(a.lo) / b.lo, I128(a.lo) / b.hi, I128(a.hi) / b.lo,
                     I128(a.hi) / b.hi};
  const I128 lo = *std::min_element(c, c + 4);
  const I128 hi = *std::max_element(c, c + 4);
  if (!fits(lo) || !fits(hi)) return Interval::top();  // INT64_MIN / -1
  return {int64_t(lo), int64_t(hi)};
}

Interval itv_and(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
  return Interval::top();
}

Interval itv_or(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.lo >= 0 && b.lo >= 0) {
    // For nonnegative x, y: max(x, y) <= x|y <= x + y, and x|y stays a
    // nonnegative int64, so a clamped sum is a true bound. This keeps the
    // kernels' or-as-add addressing (disjoint bit ranges) precise.
    const int64_t hi = (a.hi == kPosInf || b.hi == kPosInf)
                           ? kPosInf
                           : clamp_hi(I128(a.hi) + b.hi);
    return {std::max(a.lo, b.lo), hi};
  }
  return Interval::top();
}

Interval itv_xor(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.lo >= 0 && b.lo >= 0) {
    const int64_t hi = (a.hi == kPosInf || b.hi == kPosInf)
                           ? kPosInf
                           : clamp_hi(I128(a.hi) + b.hi);
    return {0, hi};
  }
  return Interval::top();
}

Interval itv_shl(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.lo == kNegInf || a.hi == kPosInf) return Interval::top();
  if (b.is_constant()) {
    const int64_t c = b.lo & 63;  // the interpreter masks the amount
    const I128 lo = I128(a.lo) << c;
    const I128 hi = I128(a.hi) << c;
    if (!fits(lo) || !fits(hi)) return Interval::top();
    return {int64_t(lo), int64_t(hi)};
  }
  if (a.lo >= 0 && b.lo >= 0 && b.hi <= 63) {
    const I128 lo = I128(a.lo) << b.lo;
    const I128 hi = I128(a.hi) << b.hi;
    if (!fits(lo) || !fits(hi)) return Interval::top();
    return {int64_t(lo), int64_t(hi)};
  }
  return Interval::top();
}

Interval itv_shr(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  // Logical shift: negative values become huge once viewed as uint64.
  if (a.lo < 0) return Interval::top();
  int64_t c_lo = 0;
  int64_t c_hi = 0;
  if (b.is_constant()) {
    c_lo = c_hi = b.lo & 63;
  } else if (b.lo >= 0 && b.hi <= 63) {
    c_lo = b.lo;
    c_hi = b.hi;
  } else {
    return Interval::top();
  }
  const int64_t hi = a.hi == kPosInf ? kPosInf >> c_lo : a.hi >> c_lo;
  return {a.lo >> c_hi, hi};
}

Interval refine(const Interval& a, BrCond cond, const Interval& rhs) {
  if (a.is_bottom() || rhs.is_bottom()) return Interval::bottom();
  switch (cond) {
    case BrCond::kEq:
      return meet(a, rhs);
    case BrCond::kNe: {
      if (!rhs.is_constant()) return a;
      const int64_t c = rhs.lo;
      if (a.is_constant() && a.lo == c) return Interval::bottom();
      Interval r = a;
      if (r.lo == c) ++r.lo;
      if (r.hi == c) --r.hi;
      return r;
    }
    case BrCond::kLt:
      if (rhs.hi == kNegInf) return Interval::bottom();
      return meet(a, {kNegInf, rhs.hi == kPosInf ? kPosInf : rhs.hi - 1});
    case BrCond::kLe:
      return meet(a, {kNegInf, rhs.hi});
    case BrCond::kGt:
      if (rhs.lo == kPosInf) return Interval::bottom();
      return meet(a, {rhs.lo == kNegInf ? kNegInf : rhs.lo + 1, kPosInf});
    case BrCond::kGe:
      return meet(a, {rhs.lo, kPosInf});
  }
  return a;
}

BrCond negate(BrCond cond) {
  switch (cond) {
    case BrCond::kEq: return BrCond::kNe;
    case BrCond::kNe: return BrCond::kEq;
    case BrCond::kLt: return BrCond::kGe;
    case BrCond::kLe: return BrCond::kGt;
    case BrCond::kGt: return BrCond::kLe;
    case BrCond::kGe: return BrCond::kLt;
  }
  return cond;
}

BrCond swap_operands(BrCond cond) {
  switch (cond) {
    case BrCond::kEq: return BrCond::kEq;
    case BrCond::kNe: return BrCond::kNe;
    case BrCond::kLt: return BrCond::kGt;
    case BrCond::kLe: return BrCond::kGe;
    case BrCond::kGt: return BrCond::kLt;
    case BrCond::kGe: return BrCond::kLe;
  }
  return cond;
}

// ---------------------------------------------------------------------------
// Register state.
// ---------------------------------------------------------------------------

RegState RegState::entry_top() {
  RegState s;
  s.feasible = true;
  s.r.fill(Interval::top());
  return s;
}

bool operator==(const RegState& a, const RegState& b) {
  if (a.feasible != b.feasible) return false;
  if (!a.feasible) return true;
  return a.r == b.r;
}

bool join(RegState* into, const RegState& from) {
  if (!from.feasible) return false;
  if (!into->feasible) {
    *into = from;
    return true;
  }
  bool changed = false;
  for (int i = 0; i < isa::kNumIRegs; ++i) {
    const Interval j = join(into->r[i], from.r[i]);
    if (j != into->r[i]) {
      into->r[i] = j;
      changed = true;
    }
  }
  return changed;
}

namespace {

Interval reg_itv(const RegState& s, RegId r) {
  return isa::is_int_reg(r) ? s.r[r] : Interval::top();
}

}  // namespace

void interval_transfer(const Instr& in, RegState* s) {
  if (!s->feasible) return;
  const auto set = [&](const Interval& v) {
    if (isa::is_int_reg(in.rd)) s->r[in.rd] = v;
  };
  const Interval a = reg_itv(*s, in.rs1);
  const Interval b =
      in.use_imm ? Interval::constant(in.imm) : reg_itv(*s, in.rs2);
  switch (in.op) {
    case Opcode::kIAdd:   set(itv_add(a, b)); return;
    case Opcode::kISub:   set(itv_sub(a, b)); return;
    case Opcode::kIMov:   set(a); return;
    case Opcode::kIMovImm: set(Interval::constant(in.imm)); return;
    case Opcode::kIAnd:   set(itv_and(a, b)); return;
    case Opcode::kIOr:    set(itv_or(a, b)); return;
    case Opcode::kIXor:   set(itv_xor(a, b)); return;
    case Opcode::kIShl:   set(itv_shl(a, b)); return;
    case Opcode::kIShr:   set(itv_shr(a, b)); return;
    case Opcode::kIMul:   set(itv_mul(a, b)); return;
    case Opcode::kIDiv:   set(itv_div(a, b)); return;
    default:
      // Loads, xchg, and anything this domain does not model: the
      // destination becomes unknown. Opcodes that architecturally write
      // nothing (stores, branches, fences) leave the state untouched even
      // when a malformed encoding carries a stale rd field, so the
      // transfer's footprint matches reg_writes exactly.
      if (isa::traits(in.op).writes_reg) set(Interval::top());
      return;
  }
}

Interval eval_addr(const isa::MemRef& m, const RegState& s) {
  if (!s.feasible) return Interval::bottom();
  const Interval base =
      m.base == kNoReg ? Interval::constant(0) : reg_itv(s, m.base);
  Interval index = Interval::constant(0);
  if (m.index != kNoReg) {
    index = itv_shl(reg_itv(s, m.index), Interval::constant(m.scale_log2));
  }
  return itv_add(itv_add(base, index), Interval::constant(m.disp));
}

// ---------------------------------------------------------------------------
// Interval analysis instance.
// ---------------------------------------------------------------------------

namespace {

class IntervalDomain {
 public:
  using State = RegState;

  IntervalDomain(const isa::Program& p, const Cfg& g) : p_(p), g_(g) {}

  State entry() const { return RegState::entry_top(); }
  State unreachable() const { return {}; }
  bool join(State* into, const State& from) const {
    return analysis::join(into, from);
  }
  void widen(State* into, const State& prev) const {
    if (!into->feasible || !prev.feasible) return;
    for (int i = 0; i < isa::kNumIRegs; ++i) {
      into->r[i] = analysis::widen(prev.r[i], into->r[i]);
    }
  }
  bool equal(const State& a, const State& b) const { return a == b; }

  State transfer(uint32_t block, State in) const {
    if (!in.feasible) return in;
    for (uint32_t pc = g_.blocks[block].begin; pc < g_.blocks[block].end;
         ++pc) {
      interval_transfer(p_.at(pc), &in);
    }
    return in;
  }

  State edge(uint32_t from, uint32_t to, State out) const {
    if (!out.feasible) return out;
    const BasicBlock& fb = g_.blocks[from];
    const Instr& last = p_.at(fb.end - 1);
    if (last.op != Opcode::kBr) return out;
    if (last.target < 0 ||
        static_cast<size_t>(last.target) >= p_.size()) {
      return out;
    }
    const uint32_t taken = g_.block_of[last.target];
    const uint32_t fall =
        fb.end < p_.size() ? g_.block_of[fb.end] : UINT32_MAX;
    if (taken == fall) return out;  // both edges coincide: nothing to learn
    BrCond cond;
    if (to == taken) {
      cond = last.cond;
    } else if (to == fall) {
      cond = negate(last.cond);
    } else {
      return out;
    }
    const Interval r1 = reg_itv(out, last.rs1);
    const Interval r2 =
        last.use_imm ? Interval::constant(last.imm) : reg_itv(out, last.rs2);
    const Interval n1 = refine(r1, cond, r2);
    if (n1.is_bottom()) return {};  // edge is infeasible
    if (isa::is_int_reg(last.rs1)) out.r[last.rs1] = n1;
    if (!last.use_imm && isa::is_int_reg(last.rs2)) {
      const Interval n2 = refine(r2, swap_operands(cond), r1);
      if (n2.is_bottom()) return {};
      out.r[last.rs2] = n2;
    }
    return out;
  }

 private:
  const isa::Program& p_;
  const Cfg& g_;
};

}  // namespace

IntervalAnalysis analyze_intervals(const isa::Program& p, const Cfg& g) {
  Fixpoint<IntervalDomain> fp(g, IntervalDomain(p, g));
  fp.solve();
  IntervalAnalysis ia;
  ia.in.reserve(g.blocks.size());
  ia.out.reserve(g.blocks.size());
  for (uint32_t b = 0; b < g.blocks.size(); ++b) {
    ia.in.push_back(fp.in(b));
    ia.out.push_back(fp.out(b));
  }
  return ia;
}

// ---------------------------------------------------------------------------
// Loop structure + trip counts.
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kNoBlock = UINT32_MAX;
constexpr uint64_t kMaxTrips = 1ull << 40;  // freq-overflow guard

/// The destination register of `in`, or kNoReg (abort-free, unlike the
/// lint's reg_writes, which SMT_CHECKs on unclassifiable opcodes).
RegId written_reg(const Instr& in) {
  if (static_cast<size_t>(in.op) >=
      static_cast<size_t>(Opcode::kNumOpcodes)) {
    return kNoReg;
  }
  return isa::traits(in.op).writes_reg ? in.rd : kNoReg;
}

/// Reverse postorder over reachable blocks.
std::vector<uint32_t> reverse_postorder(const Cfg& g) {
  const size_t nb = g.blocks.size();
  std::vector<uint32_t> order;
  std::vector<uint8_t> state(nb, 0);  // 0 = new, 1 = open, 2 = done
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < g.blocks[b].succs.size()) {
      const uint32_t s = g.blocks[b].succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

bool NaturalLoop::contains(uint32_t b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

bool LoopInfo::dominates(uint32_t a, uint32_t b) const {
  if (a >= idom.size() || b >= idom.size()) return false;
  if (idom[a] == kNoBlock || idom[b] == kNoBlock) return false;
  while (b != a && b != 0) b = idom[b];
  return b == a;
}

LoopInfo analyze_loops(const isa::Program& p, const Cfg& g,
                       const IntervalAnalysis& ia) {
  LoopInfo li;
  const size_t nb = g.blocks.size();
  li.idom.assign(nb, kNoBlock);
  li.freq.assign(nb, 0);
  if (nb == 0) {
    li.reducible = true;
    return li;
  }

  // Iterative dominators (Cooper-Harvey-Kennedy) over reverse postorder.
  const std::vector<uint32_t> rpo = reverse_postorder(g);
  std::vector<uint32_t> rpo_index(nb, kNoBlock);
  for (size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = uint32_t(i);
  li.idom[0] = 0;
  const auto intersect = [&](uint32_t b1, uint32_t b2) {
    while (b1 != b2) {
      while (rpo_index[b1] > rpo_index[b2]) b1 = li.idom[b1];
      while (rpo_index[b2] > rpo_index[b1]) b2 = li.idom[b2];
    }
    return b1;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const uint32_t b : rpo) {
      if (b == 0) continue;
      uint32_t new_idom = kNoBlock;
      for (const uint32_t pr : g.blocks[b].preds) {
        if (!g.blocks[pr].reachable || li.idom[pr] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? pr : intersect(pr, new_idom);
      }
      if (new_idom != kNoBlock && li.idom[b] != new_idom) {
        li.idom[b] = new_idom;
        changed = true;
      }
    }
  }

  // Back edges and natural loops. A backward edge whose target does not
  // dominate its source makes the CFG irreducible.
  li.reducible = true;
  std::vector<std::pair<uint32_t, uint32_t>> back_edges;  // (latch, header)
  for (uint32_t b = 0; b < nb; ++b) {
    if (!g.blocks[b].reachable) continue;
    for (const uint32_t s : g.blocks[b].succs) {
      if (li.dominates(s, b)) {
        back_edges.emplace_back(b, s);
      } else if (s <= b) {
        li.reducible = false;
      }
    }
  }
  std::sort(back_edges.begin(), back_edges.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  for (const auto& [latch, header] : back_edges) {
    if (!li.loops.empty() && li.loops.back().header == header) {
      li.loops.back().latch = kNoBlock;  // multiple latches: unresolvable
    } else {
      li.loops.push_back({});
      li.loops.back().header = header;
      li.loops.back().latch = latch;
    }
    // Natural loop body: blocks reaching the latch without passing the
    // header, plus the header.
    NaturalLoop& loop = li.loops.back();
    std::vector<uint32_t> add = loop.blocks;
    add.push_back(header);
    std::vector<uint32_t> stack{latch};
    while (!stack.empty()) {
      const uint32_t b = stack.back();
      stack.pop_back();
      if (std::find(add.begin(), add.end(), b) != add.end()) continue;
      add.push_back(b);
      for (const uint32_t pr : g.blocks[b].preds) {
        if (g.blocks[pr].reachable) stack.push_back(pr);
      }
    }
    std::sort(add.begin(), add.end());
    add.erase(std::unique(add.begin(), add.end()), add.end());
    loop.blocks = std::move(add);
  }

  // Trip resolution: the CountedLoop do-while shape. The latch ends in
  //   iaddi idx, idx, step; ...; bri <cond> idx, <bound>, header
  // with exactly one write of idx inside the loop, a constant init from
  // the preheader edges, and a constant bound.
  const auto innermost_is = [&](const NaturalLoop& l, uint32_t b) {
    for (const NaturalLoop& other : li.loops) {
      if (&other == &l) continue;
      if (other.contains(b) && other.blocks.size() < l.blocks.size()) {
        return false;
      }
    }
    return true;
  };
  for (NaturalLoop& loop : li.loops) {
    if (loop.latch == kNoBlock) continue;
    const BasicBlock& lb = g.blocks[loop.latch];
    const Instr& br = p.at(lb.end - 1);
    if (br.op != Opcode::kBr || br.target < 0 ||
        static_cast<size_t>(br.target) >= p.size() ||
        g.block_of[br.target] != loop.header || !isa::is_int_reg(br.rs1)) {
      continue;
    }
    const RegId idx = br.rs1;
    // Exactly one writer of idx inside the loop: iaddi idx, idx, step —
    // in a block executed once per iteration (not inside an inner loop).
    const Instr* inc = nullptr;
    bool bad = false;
    for (const uint32_t b : loop.blocks) {
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end && !bad;
           ++pc) {
        const Instr& in = p.at(pc);
        if (written_reg(in) != idx) continue;
        if (inc != nullptr || in.op != Opcode::kIAdd || !in.use_imm ||
            in.rs1 != idx || in.imm == 0 || !innermost_is(loop, b)) {
          bad = true;
          break;
        }
        inc = &in;
      }
    }
    if (bad || inc == nullptr) continue;
    const int64_t step = inc->imm;
    // Constant bound: an immediate, or a register never written in the
    // loop whose interval at the latch branch is a single value.
    Interval bound_itv = Interval::bottom();
    if (br.use_imm) {
      bound_itv = Interval::constant(br.imm);
    } else if (isa::is_int_reg(br.rs2)) {
      bool written = false;
      for (const uint32_t b : loop.blocks) {
        for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
          if (written_reg(p.at(pc)) == br.rs2) written = true;
        }
      }
      if (!written) {
        RegState s = ia.in[loop.latch];
        for (uint32_t pc = lb.begin; pc + 1 < lb.end; ++pc) {
          interval_transfer(p.at(pc), &s);
        }
        if (s.feasible) bound_itv = s.r[br.rs2];
      }
    }
    if (!bound_itv.is_constant()) continue;
    const int64_t bound = bound_itv.lo;
    // Constant init: join of the out-states of the preds outside the loop.
    Interval init_itv = Interval::bottom();
    for (const uint32_t pr : g.blocks[loop.header].preds) {
      if (!g.blocks[pr].reachable || loop.contains(pr)) continue;
      init_itv = join(init_itv, ia.out[pr].feasible ? ia.out[pr].r[idx]
                                                    : Interval::bottom());
    }
    if (!init_itv.is_constant()) continue;
    const int64_t init = init_itv.lo;
    // After the k-th body execution idx == init + k*step; the loop exits
    // at the smallest k where the latch condition fails. Do-while: >= 1.
    I128 trips = 0;
    if (step > 0 && (br.cond == BrCond::kLt || br.cond == BrCond::kLe)) {
      const I128 diff =
          I128(bound) - init + (br.cond == BrCond::kLe ? 1 : 0);
      trips = (diff + step - 1) / step;
    } else if (step < 0 &&
               (br.cond == BrCond::kGt || br.cond == BrCond::kGe)) {
      const I128 diff =
          I128(init) - bound + (br.cond == BrCond::kGe ? 1 : 0);
      trips = (diff + (-step) - 1) / (-step);
    } else {
      continue;
    }
    if (trips < 1) trips = 1;
    if (trips > I128(kMaxTrips)) continue;
    loop.trips = uint64_t(trips);
    loop.trips_exact = true;
  }

  // Exactness: control flow must be a straight nest of resolved counted
  // loops, with none of the opcodes whose timing escapes pure dataflow
  // (spin/sleep synchronization).
  li.exact = li.reducible;
  for (uint32_t b = 0; b < nb && li.exact; ++b) {
    if (!g.blocks[b].reachable) continue;
    if (g.blocks[b].falls_off_end || g.blocks[b].bad_target) {
      li.exact = false;
      break;
    }
    for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      const Opcode op = p.at(pc).op;
      if (op == Opcode::kXchg || op == Opcode::kPause ||
          op == Opcode::kHalt || op == Opcode::kIpi) {
        li.exact = false;
        break;
      }
    }
    if (p.at(g.blocks[b].end - 1).op == Opcode::kBr) {
      bool is_resolved_latch = false;
      for (const NaturalLoop& loop : li.loops) {
        if (loop.latch == b && loop.trips_exact) is_resolved_latch = true;
      }
      if (!is_resolved_latch) li.exact = false;
    }
  }
  for (const NaturalLoop& loop : li.loops) {
    if (!loop.trips_exact) li.exact = false;
  }

  if (li.exact) {
    for (uint32_t b = 0; b < nb; ++b) {
      if (!g.blocks[b].reachable) continue;
      I128 f = 1;
      for (const NaturalLoop& loop : li.loops) {
        if (loop.contains(b)) f *= I128(loop.trips);
        if (f > I128(kMaxTrips)) {
          li.exact = false;
          break;
        }
      }
      if (!li.exact) break;
      li.freq[b] = uint64_t(f);
    }
  }
  return li;
}

}  // namespace smt::analysis
