#include "analysis/static_perf.h"

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "isa/opcode.h"

namespace smt::analysis {

using cpu::IssuePort;
using isa::Instr;
using isa::kNoReg;
using isa::Opcode;
using isa::RegId;
using isa::UnitClass;

namespace {

/// Resource usage of an instruction range, in the units each hard
/// constraint is expressed in.
struct Usage {
  double fp = 0;       // uops on the single shared FP port
  double fpmov = 0;    // uops on the FP-move port
  double load = 0;     // uops on the load port
  double store = 0;    // uops on the store port
  double alu0 = 0;     // uops restricted to ALU0 (logical/shift/branch)
  double alu_any = 0;  // simple-ALU uops that may use either ALU
  double fdiv = 0;     // unpipelined FP divides
  double idiv = 0;     // unpipelined integer divides
  double uops = 0;
  double instrs = 0;

  void add(const Instr& in, double w) {
    instrs += w;
    if (in.op == Opcode::kXchg) {  // one load uop + one store uop
      load += w;
      store += w;
      uops += 2 * w;
      return;
    }
    uops += w;
    if (static_cast<size_t>(in.op) >=
        static_cast<size_t>(Opcode::kNumOpcodes)) {
      return;  // unclassifiable: no port claim (conservative)
    }
    switch (isa::unit_class(in.op)) {
      case UnitClass::kAlu:    alu_any += w; break;
      case UnitClass::kAlu0:
      case UnitClass::kBranch: alu0 += w; break;
      case UnitClass::kIntMul: fp += w; break;
      case UnitClass::kIntDiv: fp += w; idiv += w; break;
      case UnitClass::kFpAdd:
      case UnitClass::kFpMul:  fp += w; break;
      case UnitClass::kFpDiv:  fp += w; fdiv += w; break;
      case UnitClass::kFpMove: fpmov += w; break;
      case UnitClass::kLoad:   load += w; break;
      case UnitClass::kStore:  store += w; break;
      case UnitClass::kNone:   break;
    }
  }
};

/// One hard constraint family: `cycles(u)` is a lower bound on the active
/// cycles needed to execute an instruction mix with usage `u`.
struct Family {
  const char* name;
  double (*cycles)(const Usage& u, const cpu::CoreConfig& cfg);
};

constexpr Family kFamilies[] = {
    {"fp port", [](const Usage& u, const cpu::CoreConfig&) { return u.fp; }},
    {"fp-move port",
     [](const Usage& u, const cpu::CoreConfig&) { return u.fpmov; }},
    {"load port",
     [](const Usage& u, const cpu::CoreConfig&) { return u.load; }},
    {"store port",
     [](const Usage& u, const cpu::CoreConfig&) { return u.store; }},
    {"alu0 port",
     [](const Usage& u, const cpu::CoreConfig& cfg) {
       return u.alu0 / cfg.alu0_per_cycle;
     }},
    {"alu bandwidth",
     [](const Usage& u, const cpu::CoreConfig& cfg) {
       return (u.alu0 + u.alu_any) /
              (cfg.alu0_per_cycle + cfg.alu1_per_cycle);
     }},
    {"retire width",
     [](const Usage& u, const cpu::CoreConfig& cfg) {
       return u.instrs / cfg.retire_width;
     }},
    {"fdiv unit",
     [](const Usage& u, const cpu::CoreConfig& cfg) {
       return cfg.fdiv_unpipelined
                  ? u.fdiv * static_cast<double>(cfg.lat_fdiv)
                  : u.fdiv;
     }},
    {"idiv unit",
     [](const Usage& u, const cpu::CoreConfig& cfg) {
       return cfg.idiv_unpipelined
                  ? u.idiv * static_cast<double>(cfg.lat_idiv)
                  : u.idiv;
     }},
};

/// Abort-free register-read mask of the operands a result chain can run
/// through (mirrors the lint's reg_reads, minus memory operands).
bool reads_reg(const Instr& in, RegId r) {
  if (r == kNoReg) return false;
  switch (in.op) {
    case Opcode::kIAdd: case Opcode::kISub: case Opcode::kIAnd:
    case Opcode::kIOr:  case Opcode::kIXor: case Opcode::kIShl:
    case Opcode::kIShr: case Opcode::kIMul: case Opcode::kIDiv:
      return in.rs1 == r || (!in.use_imm && in.rs2 == r);
    case Opcode::kIMov: case Opcode::kFMov: case Opcode::kFNeg:
      return in.rs1 == r;
    case Opcode::kFAdd: case Opcode::kFSub: case Opcode::kFMul:
    case Opcode::kFDiv:
      return in.rs1 == r || in.rs2 == r;
    default:
      return false;
  }
}

RegId written_reg(const Instr& in) {
  if (static_cast<size_t>(in.op) >=
      static_cast<size_t>(Opcode::kNumOpcodes)) {
    return kNoReg;
  }
  return isa::traits(in.op).writes_reg ? in.rd : kNoReg;
}

/// Walk [begin, end) truncated after the first kExit (nothing past an
/// exit executes, and counting it would inflate the bound).
template <typename Fn>
void for_executed(const isa::Program& p, uint32_t begin, uint32_t end,
                  Fn&& fn) {
  for (uint32_t pc = begin; pc < end; ++pc) {
    fn(p.at(pc));
    if (p.at(pc).op == Opcode::kExit) break;
  }
}

}  // namespace

StaticPerf static_cpi_bound(const isa::Program& p,
                            const cpu::CoreConfig& cfg) {
  StaticPerf r;
  if (p.empty()) return r;
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  const LoopInfo li = analyze_loops(p, g, ia);

  if (li.exact) {
    r.exact = true;
    Usage total;
    for (uint32_t b = 0; b < g.blocks.size(); ++b) {
      if (!g.blocks[b].reachable || li.freq[b] == 0) continue;
      const double w = static_cast<double>(li.freq[b]);
      for_executed(p, g.blocks[b].begin, g.blocks[b].end,
                   [&](const Instr& in) { total.add(in, w); });
    }
    r.instrs = static_cast<uint64_t>(total.instrs);
    r.uops = static_cast<uint64_t>(total.uops);
    r.port_uops[static_cast<int>(IssuePort::kAlu0)] = total.alu0;
    r.port_uops[static_cast<int>(IssuePort::kAlu1)] = total.alu_any;
    r.port_uops[static_cast<int>(IssuePort::kFp)] = total.fp;
    r.port_uops[static_cast<int>(IssuePort::kFpMove)] = total.fpmov;
    r.port_uops[static_cast<int>(IssuePort::kLoad)] = total.load;
    r.port_uops[static_cast<int>(IssuePort::kStore)] = total.store;

    for (const Family& f : kFamilies) {
      const double c = f.cycles(total, cfg);
      if (c > r.cycles_lb) {
        r.cycles_lb = c;
        r.binding = f.name;
      }
    }

    // Single-instruction loop-carried dependence chains: an instruction
    // whose destination feeds its own source, with no other writer of
    // that register anywhere in the loop, serializes its executions at
    // its result latency. Within one loop entry the chain spans
    // (executions_per_entry - 1) latencies; summed over all entries that
    // is (total executions - entries) * latency.
    for (const NaturalLoop& loop : li.loops) {
      for (const uint32_t b : loop.blocks) {
        for_executed(p, g.blocks[b].begin, g.blocks[b].end,
                     [&](const Instr& in) {
          const RegId rd = written_reg(in);
          if (rd == kNoReg || !reads_reg(in, rd) || in.is_mem()) return;
          const Cycle lat = cfg.latency(in.op);
          if (lat == 0) return;
          for (const uint32_t ob : loop.blocks) {
            for (uint32_t opc = g.blocks[ob].begin; opc < g.blocks[ob].end;
                 ++opc) {
              const Instr& other = p.at(opc);
              if (&other != &in && written_reg(other) == rd) return;
            }
          }
          const double execs = static_cast<double>(li.freq[b]);
          const double entries =
              static_cast<double>(li.freq[loop.header]) /
              static_cast<double>(loop.trips);
          if (execs <= entries) return;
          const double c = (execs - entries) * static_cast<double>(lat);
          if (c > r.cycles_lb) {
            r.cycles_lb = c;
            r.binding =
                std::string("loop-carried ") + isa::name(in.op) + " chain";
          }
        });
      }
    }

    if (r.instrs > 0) {
      r.cpi_lb = r.cycles_lb / static_cast<double>(r.instrs);
    }
    return r;
  }

  // Fallback: any complete execution path is a concatenation of whole
  // blocks plus one exit-terminated prefix, so for each constraint
  // family, per-instruction cost over the path is at least the minimum
  // density over those candidates; CPI is at least the best family's
  // minimum. The retire-width family guarantees >= 1/(retire_width).
  std::vector<Usage> candidates;
  for (uint32_t b = 0; b < g.blocks.size(); ++b) {
    if (!g.blocks[b].reachable) continue;
    Usage whole;
    for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      whole.add(p.at(pc), 1.0);
      if (p.at(pc).op == Opcode::kExit) {
        candidates.push_back(whole);  // the exit-terminated prefix
      }
    }
    candidates.push_back(whole);
  }
  for (const Family& f : kFamilies) {
    double min_density = -1.0;
    for (const Usage& u : candidates) {
      if (u.instrs <= 0) continue;
      const double d = f.cycles(u, cfg) / u.instrs;
      if (min_density < 0 || d < min_density) min_density = d;
    }
    if (min_density > r.cpi_lb) {
      r.cpi_lb = min_density;
      r.binding = f.name;
    }
  }
  return r;
}

}  // namespace smt::analysis
