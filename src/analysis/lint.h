// Static micro-ISA lint: CFG-based dataflow checks over an isa::Program.
//
// The paper's TLP/SPR variants depend on hand-emitted synchronization; a
// single mis-emitted register silently corrupts the counter data the
// figures are built from. lint_program catches the emitter-level mistakes
// before a single cycle is simulated:
//
//   uninit-read        a path reaches a register read with no prior write
//                      (must-dataflow over the CFG; registers listed in
//                      LintOptions::assumed_written are exempt)
//   sync-region-write  an instruction inside an emitter-annotated
//                      SyncRegion writes a register outside the region's
//                      declared may_write set (register discipline)
//   missing-pause      a spin region emitted with SpinKind::kPause
//                      contains no pause instruction
//   lock-pairing       double acquire, release without acquire, lock held
//                      at exit, or inconsistent lock state where paths
//                      join (per annotated lock word, 4-value dataflow)
//   out-of-extent      a store/xchg with a compile-time-constant address
//                      outside the workload's registered array extents
//                      (only when LintOptions::extents_complete)
//   unreachable        code no path from the entry reaches
//   fall-off-end       a reachable path can run past the program end, or
//                      a branch target is unresolved / out of range
//
// The lint never aborts on malformed programs — every defect is returned
// as a finding — but it does abort (SMT_CHECK) on an opcode it cannot
// classify, so ISA additions must extend reg_reads/reg_writes before
// they can slip past the checker (guarded by a test over all opcodes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instr.h"
#include "isa/program.h"

namespace smt::analysis {

enum class LintRule : uint8_t {
  kUninitRead,
  kSyncRegionWrite,
  kMissingPause,
  kLockPairing,
  kOutOfExtentStore,
  kUnreachable,
  kFallOffEnd,
};
const char* name(LintRule r);

struct LintFinding {
  LintRule rule;
  uint32_t pc = 0;  // anchor instruction index
  std::string message;
};

/// One registered guest-memory extent (a mem::MemoryLayout region).
struct Extent {
  Addr base = 0;
  size_t bytes = 0;
  std::string name;
};

struct LintOptions {
  /// RegId bitmask of registers assumed written at program entry (an
  /// ArchState init handed to load_program). Default: none — reads rely
  /// on architectural zero-initialization, which is almost always an
  /// emitter bug.
  uint32_t assumed_written = 0;
  /// Registered data + sync extents of the workload owning the program.
  std::vector<Extent> extents;
  /// The extents cover every legal guest access; enables the
  /// out-of-extent check.
  bool extents_complete = false;
};

/// Register-source bitmask (flat RegIds) of one instruction, per the
/// functional interpreter's semantics (cpu/interp.cc). Aborts on an
/// unclassifiable opcode.
uint32_t reg_reads(const isa::Instr& in);
/// Register-destination bitmask of one instruction.
uint32_t reg_writes(const isa::Instr& in);

/// Runs every check; findings come back in rule-then-pc order.
std::vector<LintFinding> lint_program(const isa::Program& p,
                                      const LintOptions& opt = {});

/// Formats findings as "<program>:<pc>: <rule>: <message>" lines.
std::string format_findings(const isa::Program& p,
                            const std::vector<LintFinding>& findings);

}  // namespace smt::analysis
