// Static micro-ISA verifier: CFG/dataflow and abstract-interpretation
// checks over isa::Programs.
//
// The paper's TLP/SPR variants depend on hand-emitted synchronization; a
// single mis-emitted register silently corrupts the counter data the
// figures are built from. lint_program catches the emitter-level mistakes
// before a single cycle is simulated:
//
//   uninit-read        a path reaches a register read with no prior write
//                      (must-dataflow over the CFG; registers listed in
//                      LintOptions::assumed_written are exempt)   [error]
//   sync-region-write  an instruction inside an emitter-annotated
//                      SyncRegion writes a register outside the region's
//                      declared may_write set (register discipline) [error]
//   missing-pause      a spin region emitted with SpinKind::kPause
//                      contains no pause instruction             [warning]
//   lock-pairing       double acquire, release without acquire, lock held
//                      at exit, or inconsistent lock state where paths
//                      join (per annotated lock word, 4-value dataflow)
//                                                                  [error]
//   out-of-extent      a store/xchg whose address range — from the
//                      interval analysis (analysis/absint.h) — falls
//                      outside the workload's registered extents: error
//                      when provably always outside, warning when the
//                      range only partially escapes (off-by-one loop
//                      bounds); only when LintOptions::extents_complete
//   unreachable        code no path from the entry reaches        [warning]
//   fall-off-end       a reachable path can run past the program end, or
//                      a branch target is unresolved / out of range [error]
//
// lint_concurrency adds the cross-program (per logical CPU) checks:
//
//   barrier-mismatch   a barrier-wait episode is not reached on every
//                      path to exit, or the participating programs reach
//                      different numbers of barrier episodes       [error]
//   lock-order         two programs acquire the same pair of lock words
//                      in opposite orders while holding the other — a
//                      potential deadlock the FastTrack detector can only
//                      see if the interleaving actually deadlocks [error]
//
// The lint never aborts on malformed programs — every defect is returned
// as a diagnostic — but it does abort (SMT_CHECK) on an opcode it cannot
// classify, so ISA additions must extend reg_reads/reg_writes before
// they can slip past the checker (guarded by a test over all opcodes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instr.h"
#include "isa/program.h"

namespace smt::analysis {

enum class Check : uint8_t {
  kUninitRead,
  kSyncRegionWrite,
  kMissingPause,
  kLockPairing,
  kOutOfExtentStore,
  kUnreachable,
  kFallOffEnd,
  kBarrierMismatch,
  kLockOrder,
  kNumChecks,
};
const char* name(Check c);

enum class Severity : uint8_t { kWarning, kError };
const char* name(Severity s);

/// One verifier finding. Diagnostics are deterministic: lint_program and
/// lint_concurrency return them deduplicated and stably sorted by
/// (pc, check, severity, message).
struct Diagnostic {
  Check check = Check::kNumChecks;
  Severity severity = Severity::kError;
  uint32_t pc = 0;     // anchor instruction index
  uint32_t block = 0;  // CFG basic block containing pc
  std::string message;
};

/// One registered guest-memory extent (a mem::MemoryLayout region).
struct Extent {
  Addr base = 0;
  size_t bytes = 0;
  std::string name;
};

struct LintOptions {
  /// RegId bitmask of registers assumed written at program entry (an
  /// ArchState init handed to load_program). Default: none — reads rely
  /// on architectural zero-initialization, which is almost always an
  /// emitter bug.
  uint32_t assumed_written = 0;
  /// Registered data + sync extents of the workload owning the program.
  std::vector<Extent> extents;
  /// The extents cover every legal guest access; enables the
  /// out-of-extent check.
  bool extents_complete = false;
};

/// Register-source bitmask (flat RegIds) of one instruction, per the
/// functional interpreter's semantics (cpu/interp.cc). Aborts on an
/// unclassifiable opcode.
uint32_t reg_reads(const isa::Instr& in);
/// Register-destination bitmask of one instruction.
uint32_t reg_writes(const isa::Instr& in);

/// Runs every single-program check.
std::vector<Diagnostic> lint_program(const isa::Program& p,
                                     const LintOptions& opt = {});

/// Runs the cross-program concurrency checks (barrier matching, lock
/// acquisition order) over one workload's per-logical-CPU programs.
/// Result [i] holds the diagnostics attributed to programs[i].
std::vector<std::vector<Diagnostic>> lint_concurrency(
    const std::vector<isa::Program>& programs);

/// Counts diagnostics of the given severity.
size_t count_severity(const std::vector<Diagnostic>& diags, Severity s);

/// Formats diagnostics as "<program>:<pc>: <severity>: <check>: <message>"
/// lines.
std::string format_diagnostics(const isa::Program& p,
                               const std::vector<Diagnostic>& diags);

}  // namespace smt::analysis
