// Abstract interpretation over the micro-ISA CFG: a generic worklist
// fixpoint engine with pluggable lattice domains, plus the two concrete
// analyses the verifier is built on —
//
//   * an interval domain over the 16 integer registers (value-range
//     propagation with widening at loop heads and bounded narrowing),
//     the substrate of the range-based out-of-extent check and of the
//     loop trip-count analysis, and
//   * a loop-structure analysis (iterative dominators, natural loops,
//     CountedLoop trip resolution from the interval results) that the
//     static CPI lower-bound advisor (analysis/static_perf.h) composes
//     per-block costs over.
//
// Everything here is deliberately sound-but-incomplete: transfer
// functions return Interval::top() whenever the exact machine semantics
// (64-bit wraparound, logical shift of negative values, ...) cannot be
// captured by a single interval, so a proved fact ("this address is
// always inside extent A") holds on every execution. Analyses never
// abort on malformed programs — unresolved branches, self-loops and
// empty programs all degrade to conservative answers (regression-tested
// over the smt_lint --selftest seeds).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "analysis/cfg.h"
#include "isa/instr.h"
#include "isa/program.h"

namespace smt::analysis {

// ---------------------------------------------------------------------------
// Interval lattice.
// ---------------------------------------------------------------------------

/// A signed-64-bit interval [lo, hi]. INT64_MIN / INT64_MAX act as -inf /
/// +inf; lo > hi encodes bottom (no value). Transfer helpers return top()
/// on any potential int64 overflow, because the guest ALU wraps — a
/// saturated bound would silently exclude the wrapped value.
struct Interval {
  int64_t lo = 1;
  int64_t hi = 0;  // default-constructed: bottom

  static Interval top();
  static Interval bottom() { return {}; }
  static Interval constant(int64_t v) { return {v, v}; }
  static Interval range(int64_t lo, int64_t hi) { return {lo, hi}; }

  bool is_bottom() const { return lo > hi; }
  bool is_top() const;
  bool is_constant() const { return lo == hi; }
  bool contains(int64_t v) const { return !is_bottom() && lo <= v && v <= hi; }

  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.is_bottom() && b.is_bottom()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
};

Interval join(const Interval& a, const Interval& b);   // least upper bound
Interval meet(const Interval& a, const Interval& b);   // greatest lower bound
/// Standard interval widening: a bound that moved between `prev` and
/// `next` jumps to the corresponding infinity.
Interval widen(const Interval& prev, const Interval& next);

// Sound transfer functions for the integer ALU (interp.cc semantics).
Interval itv_add(const Interval& a, const Interval& b);
Interval itv_sub(const Interval& a, const Interval& b);
Interval itv_mul(const Interval& a, const Interval& b);
Interval itv_div(const Interval& a, const Interval& b);  // x/0 == 0
Interval itv_and(const Interval& a, const Interval& b);
Interval itv_or(const Interval& a, const Interval& b);
Interval itv_xor(const Interval& a, const Interval& b);
Interval itv_shl(const Interval& a, const Interval& b);  // amount masked & 63
Interval itv_shr(const Interval& a, const Interval& b);  // logical

/// The subset of `a` for which `a <cond> rhs` can hold (branch-edge
/// refinement; signed comparison like kBr).
Interval refine(const Interval& a, isa::BrCond cond, const Interval& rhs);
/// The branch condition that holds on the not-taken edge.
isa::BrCond negate(isa::BrCond cond);
/// `a cond b` == `b swap_operands(cond) a`.
isa::BrCond swap_operands(isa::BrCond cond);

// ---------------------------------------------------------------------------
// Generic worklist fixpoint engine.
// ---------------------------------------------------------------------------

/// Solves a forward dataflow problem over a Cfg for any Domain providing:
///
///   using State;                                  // block-boundary state
///   State entry() const;                          // state at instruction 0
///   State unreachable() const;                    // bottom
///   bool  join(State* into, const State& from);   // true iff *into grew
///   void  widen(State* into, const State& prev);  // *into = prev nabla *into
///   bool  equal(const State& a, const State& b);
///   State transfer(uint32_t block, State in);     // through the block body
///   State edge(uint32_t from, uint32_t to, State out);  // along a CFG edge
///
/// Widening is applied at back-edge targets (a successor with index <= its
/// predecessor — blocks are in program order, so loops branch backward)
/// after `widen_delay` visits, and the post-fixpoint is tightened by
/// `narrow_passes` plain decreasing sweeps — sound because every transfer
/// is monotone and a decreasing iteration from a post-fixpoint stays one.
template <typename Domain>
class Fixpoint {
 public:
  using State = typename Domain::State;

  Fixpoint(const Cfg& g, Domain d) : g_(g), d_(std::move(d)) {}

  void solve(int widen_delay = 3, int narrow_passes = 2) {
    const size_t nb = g_.blocks.size();
    in_.assign(nb, d_.unreachable());
    out_.assign(nb, d_.unreachable());
    if (nb == 0) return;
    std::vector<bool> widen_point(nb, false);
    for (size_t b = 0; b < nb; ++b) {
      for (uint32_t s : g_.blocks[b].succs) {
        if (s <= b) widen_point[s] = true;
      }
    }
    std::vector<int> visits(nb, 0);
    std::vector<bool> queued(nb, false);
    std::deque<uint32_t> wl;
    for (uint32_t b = 0; b < nb; ++b) {
      if (g_.blocks[b].reachable) {
        wl.push_back(b);
        queued[b] = true;
      }
    }
    while (!wl.empty()) {
      const uint32_t b = wl.front();
      wl.pop_front();
      queued[b] = false;
      State s = flow_in(b);
      if (widen_point[b] && ++visits[b] > widen_delay) {
        State grown = in_[b];
        d_.join(&grown, s);
        d_.widen(&grown, in_[b]);
        s = std::move(grown);
      }
      in_[b] = std::move(s);
      State o = d_.transfer(b, in_[b]);
      if (!d_.equal(o, out_[b])) {
        out_[b] = std::move(o);
        for (uint32_t succ : g_.blocks[b].succs) {
          if (!queued[succ]) {
            wl.push_back(succ);
            queued[succ] = true;
          }
        }
      }
    }
    for (int k = 0; k < narrow_passes; ++k) {
      for (uint32_t b = 0; b < nb; ++b) {
        if (!g_.blocks[b].reachable) continue;
        in_[b] = flow_in(b);
        out_[b] = d_.transfer(b, in_[b]);
      }
    }
  }

  const State& in(uint32_t b) const { return in_[b]; }
  const State& out(uint32_t b) const { return out_[b]; }
  std::vector<State> take_in() { return std::move(in_); }
  const Domain& domain() const { return d_; }

 private:
  /// Join of the entry contract (block 0 only) and every reachable
  /// incoming edge.
  State flow_in(uint32_t b) {
    State s = b == 0 ? d_.entry() : d_.unreachable();
    for (uint32_t pr : g_.blocks[b].preds) {
      if (!g_.blocks[pr].reachable) continue;
      d_.join(&s, d_.edge(pr, b, out_[pr]));
    }
    return s;
  }

  const Cfg& g_;
  Domain d_;
  std::vector<State> in_;
  std::vector<State> out_;
};

// ---------------------------------------------------------------------------
// Interval analysis instance.
// ---------------------------------------------------------------------------

/// Abstract machine state: one interval per integer register, plus a
/// feasibility flag (false == bottom, the state of unreachable code and
/// of infeasible branch edges). FP registers are not tracked.
struct RegState {
  bool feasible = false;
  std::array<Interval, isa::kNumIRegs> r{};

  static RegState entry_top();

  friend bool operator==(const RegState& a, const RegState& b);
};

/// Joins `from` into `*into`; returns true iff *into changed.
bool join(RegState* into, const RegState& from);

/// One instruction's effect on the interval state (registers only; memory
/// is unknown, so loads produce top). Never aborts: opcodes with
/// unmodeled semantics simply clobber their destination with top.
void interval_transfer(const isa::Instr& in, RegState* s);

/// Interval of a memory operand's effective address
/// ([base] + ([index] << scale) + disp) under `s`.
Interval eval_addr(const isa::MemRef& m, const RegState& s);

/// Converged per-block interval states. `in[b]` holds at the first
/// instruction of block b; walk forward with interval_transfer for
/// per-instruction states.
struct IntervalAnalysis {
  std::vector<RegState> in;
  std::vector<RegState> out;
};

IntervalAnalysis analyze_intervals(const isa::Program& p, const Cfg& g);

// ---------------------------------------------------------------------------
// Loop structure + trip counts (feeds analysis/static_perf.h).
// ---------------------------------------------------------------------------

struct NaturalLoop {
  uint32_t header = 0;
  uint32_t latch = 0;                // source block of the back edge
  std::vector<uint32_t> blocks;      // sorted, includes header
  uint64_t trips = 0;                // body executions per loop entry
  bool trips_exact = false;          // trips resolved from a counted latch

  bool contains(uint32_t b) const;
};

struct LoopInfo {
  /// Immediate dominator per block (idom[0] == 0; UINT32_MAX when the
  /// block is unreachable).
  std::vector<uint32_t> idom;
  /// Every back-edge target dominates its source (natural-loop CFG).
  bool reducible = false;
  std::vector<NaturalLoop> loops;  // sorted by header block
  /// Per-block execution count (product of enclosing trip counts; 1
  /// outside loops, 0 for unreachable blocks). Only meaningful when
  /// `exact`.
  std::vector<uint64_t> freq;
  /// True when the CFG is reducible, every reachable conditional branch
  /// is the resolved latch of a counted loop, no reachable block can run
  /// off the end, and the program contains none of xchg/pause/halt/ipi —
  /// i.e. control flow is a straight nest of counted loops and `freq` is
  /// the exact execution count of every block.
  bool exact = false;

  /// True iff a dominates b (both reachable).
  bool dominates(uint32_t a, uint32_t b) const;
};

LoopInfo analyze_loops(const isa::Program& p, const Cfg& g,
                       const IntervalAnalysis& ia);

}  // namespace smt::analysis
