#include "analysis/lint.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "common/check.h"
#include "isa/disasm.h"

namespace smt::analysis {

using isa::Instr;
using isa::kNoReg;
using isa::LockOp;
using isa::Opcode;
using isa::RegId;
using isa::SyncRegion;

const char* name(Check c) {
  switch (c) {
    case Check::kUninitRead:       return "uninit-read";
    case Check::kSyncRegionWrite:  return "sync-region-write";
    case Check::kMissingPause:     return "missing-pause";
    case Check::kLockPairing:      return "lock-pairing";
    case Check::kOutOfExtentStore: return "out-of-extent";
    case Check::kUnreachable:      return "unreachable";
    case Check::kFallOffEnd:       return "fall-off-end";
    case Check::kBarrierMismatch:  return "barrier-mismatch";
    case Check::kLockOrder:        return "lock-order";
    case Check::kNumChecks:        break;
  }
  return "?";
}

const char* name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

namespace {

uint32_t bit(RegId r) { return r == kNoReg ? 0u : (1u << r); }

uint32_t mem_reads(const Instr& in) {
  return bit(in.mem.base) | bit(in.mem.index);
}

constexpr uint32_t kAllRegs = 0xffffffffu;

std::string reg_name(RegId r) {
  std::ostringstream os;
  if (isa::is_fp_reg(r)) {
    os << "f" << static_cast<int>(r) - isa::kNumIRegs;
  } else {
    os << "r" << static_cast<int>(r);
  }
  return os.str();
}

Diagnostic make_diag(Check c, Severity s, uint32_t pc, std::string msg) {
  Diagnostic d;
  d.check = c;
  d.severity = s;
  d.pc = pc;
  d.message = std::move(msg);
  return d;
}

Diagnostic error(Check c, uint32_t pc, std::string msg) {
  return make_diag(c, Severity::kError, pc, std::move(msg));
}

Diagnostic warning(Check c, uint32_t pc, std::string msg) {
  return make_diag(c, Severity::kWarning, pc, std::move(msg));
}

/// Fills Diagnostic::block, deduplicates, and orders deterministically
/// (stable sort by pc, then check, then severity, then message).
void finalize(const Cfg& g, std::vector<Diagnostic>* diags) {
  for (Diagnostic& d : *diags) {
    d.block =
        d.pc < g.block_of.size() ? g.block_of[d.pc] : 0;
  }
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     if (a.check != b.check) return a.check < b.check;
                     if (a.severity != b.severity) {
                       return a.severity < b.severity;
                     }
                     return a.message < b.message;
                   });
  diags->erase(std::unique(diags->begin(), diags->end(),
                           [](const Diagnostic& a, const Diagnostic& b) {
                             return a.pc == b.pc && a.check == b.check &&
                                    a.severity == b.severity &&
                                    a.message == b.message;
                           }),
               diags->end());
}

}  // namespace

uint32_t reg_reads(const Instr& in) {
  switch (in.op) {
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIAnd:
    case Opcode::kIOr:
    case Opcode::kIXor:
    case Opcode::kIShl:
    case Opcode::kIShr:
    case Opcode::kIMul:
    case Opcode::kIDiv:
      return bit(in.rs1) | (in.use_imm ? 0u : bit(in.rs2));
    case Opcode::kIMov:
      return bit(in.rs1);
    case Opcode::kIMovImm:
      return 0;
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
      return bit(in.rs1) | bit(in.rs2);
    case Opcode::kFMov:
    case Opcode::kFNeg:
      return bit(in.rs1);
    case Opcode::kFMovImm:
      return 0;
    case Opcode::kLoad:
    case Opcode::kFLoad:
    case Opcode::kPrefetch:
      return mem_reads(in);
    case Opcode::kStore:
    case Opcode::kFStore:
      return bit(in.rs1) | mem_reads(in);
    case Opcode::kXchg:
      // xchg reads the outgoing value from rd (encoded as rs1 == rd).
      return bit(in.rs1) | mem_reads(in);
    case Opcode::kBr:
      return bit(in.rs1) | (in.use_imm ? 0u : bit(in.rs2));
    case Opcode::kJmp:
    case Opcode::kPause:
    case Opcode::kHalt:
    case Opcode::kIpi:
    case Opcode::kNop:
    case Opcode::kExit:
      return 0;
    case Opcode::kNumOpcodes:
      break;
  }
  SMT_CHECK_MSG(false, "lint cannot classify opcode; extend reg_reads");
  return 0;
}

uint32_t reg_writes(const Instr& in) {
  // kNumOpcodes (and anything past it) must abort like reg_reads.
  SMT_CHECK_MSG(static_cast<size_t>(in.op) <
                    static_cast<size_t>(Opcode::kNumOpcodes),
                "lint cannot classify opcode; extend reg_writes");
  return isa::traits(in.op).writes_reg ? bit(in.rd) : 0u;
}

namespace {

void check_uninit_reads(const isa::Program& p, const Cfg& g,
                        uint32_t assumed_written,
                        std::vector<Diagnostic>* out) {
  const size_t nb = g.blocks.size();
  // Must-be-written analysis: in[b] = ∩ out[pred]; top = all registers.
  std::vector<uint32_t> in(nb, kAllRegs), outset(nb, kAllRegs);
  in[0] = assumed_written;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < nb; ++b) {
      if (!g.blocks[b].reachable) continue;
      // The entry block always keeps the entry contract: execution
      // reaches it at least once with only assumed_written defined, even
      // when a loop branches back to instruction 0.
      uint32_t s = kAllRegs;
      for (uint32_t pr : g.blocks[b].preds) {
        if (g.blocks[pr].reachable) s &= outset[pr];
      }
      if (b == 0) s = assumed_written;
      in[b] = s;
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        s |= reg_writes(p.at(pc));
      }
      if (s != outset[b]) {
        outset[b] = s;
        changed = true;
      }
    }
  }
  // Report each offending pc once, with the offending registers.
  std::set<uint32_t> seen;
  for (size_t b = 0; b < nb; ++b) {
    if (!g.blocks[b].reachable) continue;
    uint32_t s = in[b];
    for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      const Instr& instr = p.at(pc);
      const uint32_t missing = reg_reads(instr) & ~s;
      if (missing != 0 && seen.insert(pc).second) {
        std::ostringstream os;
        os << "read of never-written register";
        for (int r = 0; r < isa::kNumRegs; ++r) {
          if (missing & (1u << r)) os << " " << reg_name(static_cast<RegId>(r));
        }
        os << " in `" << isa::disasm(instr) << "`";
        out->push_back(error(Check::kUninitRead, pc, os.str()));
      }
      s |= reg_writes(instr);
    }
  }
}

void check_sync_regions(const isa::Program& p,
                        std::vector<Diagnostic>* out) {
  for (const SyncRegion& r : p.sync_regions()) {
    if (r.end > p.size() || r.begin > r.end) {
      out->push_back(error(Check::kSyncRegionWrite, r.begin,
                           "malformed sync region `" + r.what + "`"));
      continue;
    }
    bool has_pause = false;
    for (uint32_t pc = r.begin; pc < r.end; ++pc) {
      const Instr& instr = p.at(pc);
      if (instr.op == Opcode::kPause) has_pause = true;
      const uint32_t stray = reg_writes(instr) & ~r.may_write;
      if (stray != 0) {
        std::ostringstream os;
        os << "`" << r.what << "` region writes register";
        for (int reg = 0; reg < isa::kNumRegs; ++reg) {
          if (stray & (1u << reg)) {
            os << " " << reg_name(static_cast<RegId>(reg));
          }
        }
        os << " outside its declared set (`" << isa::disasm(instr) << "`)";
        out->push_back(error(Check::kSyncRegionWrite, pc, os.str()));
      }
    }
    if (r.is_spin && r.wants_pause && !has_pause) {
      out->push_back(warning(Check::kMissingPause, r.begin,
                             "spin region `" + r.what +
                                 "` requested SpinKind::kPause but contains "
                                 "no pause instruction"));
    }
  }
}

/// Lock-pairing dataflow per annotated lock word. Lattice:
///   kBottom < {kFree, kHeld} < kConflict
enum class LockState : uint8_t { kBottom, kFree, kHeld, kConflict };

LockState meet(LockState a, LockState b) {
  if (a == LockState::kBottom) return b;
  if (b == LockState::kBottom) return a;
  if (a == b) return a;
  return LockState::kConflict;
}

void check_lock_pairing(const isa::Program& p, const Cfg& g,
                        std::vector<Diagnostic>* out) {
  // Group ops by lock word.
  std::map<Addr, std::vector<const LockOp*>> by_addr;
  for (const LockOp& op : p.lock_ops()) {
    if (op.end > p.size() || op.begin >= op.end) {
      out->push_back(error(Check::kLockPairing, op.begin,
                           "malformed lock-op annotation"));
      continue;
    }
    by_addr[op.addr].push_back(&op);
  }

  for (const auto& [addr, ops] : by_addr) {
    // An op's effect applies when control leaves its range through its
    // end: on any edge from a pc inside [begin, end) to exactly `end`.
    // Inside an acquire's spin loop the lock is still free — the retry
    // back edge and the not-yet-taken success branch both stay at the
    // pre-state; only reaching the instruction after the range completes
    // the acquire. (Both emitters are structured this way: success lands
    // on the label bound at the end of the region.)
    std::map<uint32_t, const LockOp*> ends_at;  // op.end -> op
    for (const LockOp* op : ops) ends_at[op->end] = op;

    const size_t nb = g.blocks.size();
    std::vector<LockState> in(nb, LockState::kBottom);
    std::vector<LockState> outset(nb, LockState::kBottom);

    // Diagnose the pre-state `s` right before `op` completes, then return
    // the completed state.
    auto apply = [&, addr = addr](const LockOp* op, LockState s,
                                  std::vector<Diagnostic>* diags) {
      if (diags != nullptr) {
        if (s == LockState::kConflict) {
          std::ostringstream os;
          os << (op->acquire ? "acquire" : "release") << " of lock word 0x"
             << std::hex << addr
             << " with inconsistent lock state on joining paths";
          diags->push_back(error(Check::kLockPairing, op->begin, os.str()));
        } else if (op->acquire && s == LockState::kHeld) {
          std::ostringstream os;
          os << "double acquire of lock word 0x" << std::hex << addr;
          diags->push_back(error(Check::kLockPairing, op->begin, os.str()));
        } else if (!op->acquire && s == LockState::kFree) {
          std::ostringstream os;
          os << "release of lock word 0x" << std::hex << addr
             << " that is not held";
          diags->push_back(error(Check::kLockPairing, op->begin, os.str()));
        }
      }
      return op->acquire ? LockState::kHeld : LockState::kFree;
    };

    // Walks block `b` from state `s`, applying completions that fall
    // mid-block (sequential flow from pc-1 inside the range).
    auto transfer = [&, addr = addr](size_t b, LockState s,
                                     std::vector<Diagnostic>* diags) {
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        if (pc != g.blocks[b].begin) {
          auto it = ends_at.find(pc);
          if (it != ends_at.end() && pc > it->second->begin) {
            s = apply(it->second, s, diags);
          }
        }
        if (diags != nullptr && p.at(pc).op == Opcode::kExit &&
            (s == LockState::kHeld || s == LockState::kConflict)) {
          std::ostringstream os;
          os << "lock word 0x" << std::hex << addr
             << " may still be held at exit";
          diags->push_back(error(Check::kLockPairing, pc, os.str()));
        }
      }
      return s;
    };

    // In-state of `b`: meet over reachable predecessors, applying the
    // completion effect on edges that leave an op range into its end.
    auto in_state = [&](size_t b, std::vector<Diagnostic>* diags) {
      LockState s = b == 0 ? LockState::kFree : LockState::kBottom;
      const auto it = ends_at.find(g.blocks[b].begin);
      for (uint32_t pr : g.blocks[b].preds) {
        const BasicBlock& pb = g.blocks[pr];
        if (!pb.reachable) continue;
        LockState e = outset[pr];
        if (it != ends_at.end()) {
          const uint32_t last_pc = pb.end - 1;
          if (last_pc >= it->second->begin && last_pc < it->second->end) {
            e = apply(it->second, e, diags);
          }
        }
        s = meet(s, e);
      }
      return s;
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t b = 0; b < nb; ++b) {
        if (!g.blocks[b].reachable) continue;
        in[b] = in_state(b, nullptr);
        const LockState s = transfer(b, in[b], nullptr);
        if (s != outset[b]) {
          outset[b] = s;
          changed = true;
        }
      }
    }
    // Reporting pass over the converged solution (finalize() dedupes).
    for (size_t b = 0; b < nb; ++b) {
      if (!g.blocks[b].reachable) continue;
      in_state(b, out);
      transfer(b, in[b], out);
    }
  }
}

void check_extents(const isa::Program& p, const Cfg& g,
                   const IntervalAnalysis& ia, const LintOptions& opt,
                   std::vector<Diagnostic>* out) {
  if (!opt.extents_complete) return;
  // Valid start addresses of an 8-byte access, as merged inclusive
  // windows (extents can be adjacent, so coverage must merge them).
  std::vector<std::pair<int64_t, int64_t>> windows;
  for (const Extent& e : opt.extents) {
    if (e.bytes < 8) continue;
    windows.emplace_back(static_cast<int64_t>(e.base),
                         static_cast<int64_t>(e.base + e.bytes - 8));
  }
  std::sort(windows.begin(), windows.end());
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.first <= merged.back().second + 1) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  const auto covered = [&](const Interval& a) {
    for (const auto& w : merged) {
      if (w.first <= a.lo && a.hi <= w.second) return true;
    }
    return false;
  };
  const auto disjoint = [&](const Interval& a) {
    for (const auto& w : merged) {
      if (a.lo <= w.second && w.first <= a.hi) return false;
    }
    return true;
  };

  for (uint32_t b = 0; b < g.blocks.size(); ++b) {
    if (!g.blocks[b].reachable) continue;
    RegState s = ia.in[b];
    for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      const Instr& in = p.at(pc);
      if (in.is_store()) {
        const Interval a = eval_addr(in.mem, s);
        if (!a.is_bottom() && !covered(a)) {
          if (disjoint(a)) {
            std::ostringstream os;
            os << "store to ";
            if (a.is_constant()) {
              os << "0x" << std::hex << static_cast<uint64_t>(a.lo);
            } else {
              os << "[0x" << std::hex << static_cast<uint64_t>(a.lo)
                 << ", 0x" << static_cast<uint64_t>(a.hi) << "]";
            }
            os << " outside every registered extent (`" << isa::disasm(in)
               << "`)";
            out->push_back(error(Check::kOutOfExtentStore, pc, os.str()));
          } else if (a.lo != std::numeric_limits<int64_t>::min() &&
                     a.hi != std::numeric_limits<int64_t>::max()) {
            // A bounded range that straddles an extent boundary: the
            // classic off-by-one loop bound. An unbounded range (an
            // index loaded from memory) is left to the dynamic detector.
            std::ostringstream os;
            os << "store address range [0x" << std::hex
               << static_cast<uint64_t>(a.lo) << ", 0x"
               << static_cast<uint64_t>(a.hi)
               << "] may fall outside the registered extents (`"
               << isa::disasm(in) << "`)";
            out->push_back(
                warning(Check::kOutOfExtentStore, pc, os.str()));
          }
        }
      }
      interval_transfer(in, &s);
    }
  }
}

void check_reachability(const isa::Program& p, const Cfg& g,
                        std::vector<Diagnostic>* out) {
  for (const BasicBlock& b : g.blocks) {
    if (!b.reachable) {
      std::ostringstream os;
      os << "unreachable code (instructions " << b.begin << ".."
         << b.end - 1 << ", starts `" << isa::disasm(p.at(b.begin)) << "`)";
      out->push_back(warning(Check::kUnreachable, b.begin, os.str()));
      continue;
    }
    if (b.falls_off_end) {
      out->push_back(error(Check::kFallOffEnd, b.end - 1,
                           b.bad_target
                               ? "branch target is unresolved or out of range"
                               : "control can run past the end of the "
                                 "program"));
    }
  }
}

}  // namespace

std::vector<Diagnostic> lint_program(const isa::Program& p,
                                     const LintOptions& opt) {
  std::vector<Diagnostic> diags;
  if (p.empty()) {
    diags.push_back(error(Check::kFallOffEnd, 0, "empty program"));
    return diags;
  }
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  check_uninit_reads(p, g, opt.assumed_written, &diags);
  check_sync_regions(p, &diags);
  check_lock_pairing(p, g, &diags);
  check_extents(p, g, ia, opt, &diags);
  check_reachability(p, g, &diags);
  finalize(g, &diags);
  return diags;
}

// ---------------------------------------------------------------------------
// Cross-program concurrency checks.
// ---------------------------------------------------------------------------

namespace {

bool is_barrier_region(const SyncRegion& r) {
  return r.what.rfind("barrier_wait", 0) == 0;
}

/// May-held lockset domain for the fixpoint engine: the set of lock
/// words possibly held at a block boundary, with the same
/// completion-on-range-exit convention as the lock-pairing dataflow.
class LocksetDomain {
 public:
  struct State {
    bool feasible = false;
    std::vector<Addr> held;  // sorted
  };

  LocksetDomain(const isa::Program& p, const Cfg& g) : p_(p), g_(g) {
    for (const LockOp& op : p.lock_ops()) {
      if (op.end > p.size() || op.begin >= op.end) continue;
      ends_at_[op.end].push_back(&op);
    }
  }

  State entry() const { return {true, {}}; }
  State unreachable() const { return {}; }

  bool join(State* into, const State& from) const {
    if (!from.feasible) return false;
    if (!into->feasible) {
      *into = from;
      return true;
    }
    std::vector<Addr> u;
    std::set_union(into->held.begin(), into->held.end(), from.held.begin(),
                   from.held.end(), std::back_inserter(u));
    if (u == into->held) return false;
    into->held = std::move(u);
    return true;
  }

  void widen(State* into, const State& prev) const {
    State copy = prev;  // finite lattice: widening is just join
    join(&copy, *into);
    *into = std::move(copy);
  }

  bool equal(const State& a, const State& b) const {
    if (a.feasible != b.feasible) return false;
    return !a.feasible || a.held == b.held;
  }

  State transfer(uint32_t block, State in) const {
    if (!in.feasible) return in;
    for (uint32_t pc = g_.blocks[block].begin + 1; pc < g_.blocks[block].end;
         ++pc) {
      const auto it = ends_at_.find(pc);
      if (it == ends_at_.end()) continue;
      for (const LockOp* op : it->second) {
        if (pc > op->begin) apply(op, &in);
      }
    }
    return in;
  }

  State edge(uint32_t from, uint32_t to, State out) const {
    if (!out.feasible) return out;
    const auto it = ends_at_.find(g_.blocks[to].begin);
    if (it != ends_at_.end()) {
      const uint32_t last_pc = g_.blocks[from].end - 1;
      for (const LockOp* op : it->second) {
        if (last_pc >= op->begin && last_pc < op->end) apply(op, &out);
      }
    }
    return out;
  }

  static void apply(const LockOp* op, State* s) {
    const auto it =
        std::lower_bound(s->held.begin(), s->held.end(), op->addr);
    if (op->acquire) {
      if (it == s->held.end() || *it != op->addr) s->held.insert(it, op->addr);
    } else if (it != s->held.end() && *it == op->addr) {
      s->held.erase(it);
    }
  }

 private:
  const isa::Program& p_;
  const Cfg& g_;
  std::map<uint32_t, std::vector<const LockOp*>> ends_at_;
};

/// (held, acquired) lock-word pair observed at an acquire site.
struct OrderedPair {
  Addr held = 0;
  Addr acquired = 0;
  uint32_t pc = 0;  // the acquire's begin
};

/// Every (already-held, newly-acquired) pair of one program, from the
/// converged may-held lockset.
std::vector<OrderedPair> lock_order_pairs(const isa::Program& p,
                                          const Cfg& g) {
  std::vector<OrderedPair> pairs;
  if (p.lock_ops().empty()) return pairs;
  LocksetDomain dom(p, g);
  Fixpoint<LocksetDomain> fp(g, LocksetDomain(p, g));
  fp.solve();
  std::map<uint32_t, std::vector<const LockOp*>> ends_at;
  for (const LockOp& op : p.lock_ops()) {
    if (op.end > p.size() || op.begin >= op.end) continue;
    ends_at[op.end].push_back(&op);
  }
  const auto record = [&](const LocksetDomain::State& before,
                          const LockOp* op) {
    if (!op->acquire || !before.feasible) return;
    for (const Addr h : before.held) {
      if (h != op->addr) pairs.push_back({h, op->addr, op->begin});
    }
  };
  for (uint32_t b = 0; b < g.blocks.size(); ++b) {
    if (!g.blocks[b].reachable) continue;
    // Completions on incoming edges: the pre-state is the pred's out.
    const auto eit = ends_at.find(g.blocks[b].begin);
    if (eit != ends_at.end()) {
      for (const uint32_t pr : g.blocks[b].preds) {
        if (!g.blocks[pr].reachable) continue;
        const uint32_t last_pc = g.blocks[pr].end - 1;
        for (const LockOp* op : eit->second) {
          if (last_pc >= op->begin && last_pc < op->end) {
            record(fp.out(pr), op);
          }
        }
      }
    }
    // Mid-block completions.
    LocksetDomain::State s = fp.in(b);
    if (!s.feasible) continue;
    for (uint32_t pc = g.blocks[b].begin + 1; pc < g.blocks[b].end; ++pc) {
      const auto it = ends_at.find(pc);
      if (it == ends_at.end()) continue;
      for (const LockOp* op : it->second) {
        if (pc > op->begin) {
          record(s, op);
          LocksetDomain::apply(op, &s);
        }
      }
    }
  }
  return pairs;
}

}  // namespace

std::vector<std::vector<Diagnostic>> lint_concurrency(
    const std::vector<isa::Program>& programs) {
  const size_t np = programs.size();
  std::vector<std::vector<Diagnostic>> diags(np);
  std::vector<Cfg> cfgs(np);
  std::vector<size_t> barrier_count(np, 0);
  std::vector<uint32_t> barrier_anchor(np, 0);
  std::vector<std::vector<OrderedPair>> pairs(np);

  for (size_t i = 0; i < np; ++i) {
    const isa::Program& p = programs[i];
    if (p.empty()) continue;
    cfgs[i] = Cfg::build(p);
    const Cfg& g = cfgs[i];
    const IntervalAnalysis ia = analyze_intervals(p, g);
    const LoopInfo li = analyze_loops(p, g, ia);

    // Reachable blocks that exit the program.
    std::vector<uint32_t> exit_blocks;
    for (uint32_t b = 0; b < g.blocks.size(); ++b) {
      if (!g.blocks[b].reachable) continue;
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        if (p.at(pc).op == Opcode::kExit) {
          exit_blocks.push_back(b);
          break;
        }
      }
    }

    bool first = true;
    for (const SyncRegion& r : p.sync_regions()) {
      if (!is_barrier_region(r) || r.end > p.size() || r.begin >= r.end) {
        continue;
      }
      const uint32_t rb = g.block_of[r.begin];
      if (!g.blocks[rb].reachable) continue;
      if (first) {
        barrier_anchor[i] = r.begin;
        first = false;
      }
      bool on_every_path = true;
      for (const uint32_t eb : exit_blocks) {
        if (!li.dominates(rb, eb)) on_every_path = false;
      }
      if (!exit_blocks.empty() && !on_every_path) {
        diags[i].push_back(
            error(Check::kBarrierMismatch, r.begin,
                  "barrier episode `" + r.what +
                      "` is not reached on every path to exit — the "
                      "sibling would wait forever"));
      } else {
        ++barrier_count[i];
      }
    }

    pairs[i] = lock_order_pairs(p, g);
  }

  // Barrier episodes must agree across every participating program.
  if (np >= 2) {
    for (size_t i = 0; i < np; ++i) {
      for (size_t j = 0; j < np; ++j) {
        if (i == j || barrier_count[i] == barrier_count[j]) continue;
        std::ostringstream os;
        os << "program reaches " << barrier_count[i]
           << " barrier episode(s) on every path but sibling `"
           << programs[j].name() << "` reaches " << barrier_count[j];
        diags[i].push_back(
            error(Check::kBarrierMismatch, barrier_anchor[i], os.str()));
      }
    }
  }

  // Lock-order inversions across programs: (a then b) here, (b then a)
  // in a sibling is a potential deadlock.
  for (size_t i = 0; i < np; ++i) {
    for (const OrderedPair& mine : pairs[i]) {
      for (size_t j = 0; j < np; ++j) {
        if (i == j) continue;
        for (const OrderedPair& theirs : pairs[j]) {
          if (mine.held == theirs.acquired && mine.acquired == theirs.held) {
            std::ostringstream os;
            os << "acquires lock word 0x" << std::hex << mine.acquired
               << " while holding 0x" << mine.held << ", but sibling `"
               << programs[j].name()
               << "` acquires them in the opposite order (potential "
                  "deadlock)";
            diags[i].push_back(
                error(Check::kLockOrder, mine.pc, os.str()));
          }
        }
      }
    }
  }

  for (size_t i = 0; i < np; ++i) {
    if (!programs[i].empty()) finalize(cfgs[i], &diags[i]);
  }
  return diags;
}

size_t count_severity(const std::vector<Diagnostic>& diags, Severity s) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::string format_diagnostics(const isa::Program& p,
                               const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (const Diagnostic& d : diags) {
    os << p.name() << ":" << d.pc << ": " << name(d.severity) << ": "
       << name(d.check) << ": " << d.message << "\n";
  }
  return os.str();
}

}  // namespace smt::analysis
