#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/cfg.h"
#include "common/check.h"
#include "isa/disasm.h"

namespace smt::analysis {

using isa::Instr;
using isa::kNoReg;
using isa::LockOp;
using isa::Opcode;
using isa::RegId;
using isa::SyncRegion;

const char* name(LintRule r) {
  switch (r) {
    case LintRule::kUninitRead:       return "uninit-read";
    case LintRule::kSyncRegionWrite:  return "sync-region-write";
    case LintRule::kMissingPause:     return "missing-pause";
    case LintRule::kLockPairing:      return "lock-pairing";
    case LintRule::kOutOfExtentStore: return "out-of-extent";
    case LintRule::kUnreachable:      return "unreachable";
    case LintRule::kFallOffEnd:       return "fall-off-end";
  }
  return "?";
}

namespace {

uint32_t bit(RegId r) { return r == kNoReg ? 0u : (1u << r); }

uint32_t mem_reads(const Instr& in) {
  return bit(in.mem.base) | bit(in.mem.index);
}

constexpr uint32_t kAllRegs = 0xffffffffu;

std::string reg_name(RegId r) {
  std::ostringstream os;
  if (isa::is_fp_reg(r)) {
    os << "f" << static_cast<int>(r) - isa::kNumIRegs;
  } else {
    os << "r" << static_cast<int>(r);
  }
  return os.str();
}

}  // namespace

uint32_t reg_reads(const Instr& in) {
  switch (in.op) {
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIAnd:
    case Opcode::kIOr:
    case Opcode::kIXor:
    case Opcode::kIShl:
    case Opcode::kIShr:
    case Opcode::kIMul:
    case Opcode::kIDiv:
      return bit(in.rs1) | (in.use_imm ? 0u : bit(in.rs2));
    case Opcode::kIMov:
      return bit(in.rs1);
    case Opcode::kIMovImm:
      return 0;
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
      return bit(in.rs1) | bit(in.rs2);
    case Opcode::kFMov:
    case Opcode::kFNeg:
      return bit(in.rs1);
    case Opcode::kFMovImm:
      return 0;
    case Opcode::kLoad:
    case Opcode::kFLoad:
    case Opcode::kPrefetch:
      return mem_reads(in);
    case Opcode::kStore:
    case Opcode::kFStore:
      return bit(in.rs1) | mem_reads(in);
    case Opcode::kXchg:
      // xchg reads the outgoing value from rd (encoded as rs1 == rd).
      return bit(in.rs1) | mem_reads(in);
    case Opcode::kBr:
      return bit(in.rs1) | (in.use_imm ? 0u : bit(in.rs2));
    case Opcode::kJmp:
    case Opcode::kPause:
    case Opcode::kHalt:
    case Opcode::kIpi:
    case Opcode::kNop:
    case Opcode::kExit:
      return 0;
    case Opcode::kNumOpcodes:
      break;
  }
  SMT_CHECK_MSG(false, "lint cannot classify opcode; extend reg_reads");
  return 0;
}

uint32_t reg_writes(const Instr& in) {
  // kNumOpcodes (and anything past it) must abort like reg_reads.
  SMT_CHECK_MSG(static_cast<size_t>(in.op) <
                    static_cast<size_t>(Opcode::kNumOpcodes),
                "lint cannot classify opcode; extend reg_writes");
  return isa::traits(in.op).writes_reg ? bit(in.rd) : 0u;
}

namespace {

void check_uninit_reads(const isa::Program& p, const Cfg& g,
                        uint32_t assumed_written,
                        std::vector<LintFinding>* out) {
  const size_t nb = g.blocks.size();
  // Must-be-written analysis: in[b] = ∩ out[pred]; top = all registers.
  std::vector<uint32_t> in(nb, kAllRegs), outset(nb, kAllRegs);
  in[0] = assumed_written;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < nb; ++b) {
      if (!g.blocks[b].reachable) continue;
      // The entry block always keeps the entry contract: execution
      // reaches it at least once with only assumed_written defined, even
      // when a loop branches back to instruction 0.
      uint32_t s = kAllRegs;
      for (uint32_t pr : g.blocks[b].preds) {
        if (g.blocks[pr].reachable) s &= outset[pr];
      }
      if (b == 0) s = assumed_written;
      in[b] = s;
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        s |= reg_writes(p.at(pc));
      }
      if (s != outset[b]) {
        outset[b] = s;
        changed = true;
      }
    }
  }
  // Report each offending pc once, with the offending registers.
  std::set<uint32_t> seen;
  for (size_t b = 0; b < nb; ++b) {
    if (!g.blocks[b].reachable) continue;
    uint32_t s = in[b];
    for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
      const Instr& instr = p.at(pc);
      const uint32_t missing = reg_reads(instr) & ~s;
      if (missing != 0 && seen.insert(pc).second) {
        std::ostringstream os;
        os << "read of never-written register";
        for (int r = 0; r < isa::kNumRegs; ++r) {
          if (missing & (1u << r)) os << " " << reg_name(static_cast<RegId>(r));
        }
        os << " in `" << isa::disasm(instr) << "`";
        out->push_back({LintRule::kUninitRead, pc, os.str()});
      }
      s |= reg_writes(instr);
    }
  }
}

void check_sync_regions(const isa::Program& p,
                        std::vector<LintFinding>* out) {
  for (const SyncRegion& r : p.sync_regions()) {
    if (r.end > p.size() || r.begin > r.end) {
      out->push_back({LintRule::kSyncRegionWrite, r.begin,
                      "malformed sync region `" + r.what + "`"});
      continue;
    }
    bool has_pause = false;
    for (uint32_t pc = r.begin; pc < r.end; ++pc) {
      const Instr& instr = p.at(pc);
      if (instr.op == Opcode::kPause) has_pause = true;
      const uint32_t stray = reg_writes(instr) & ~r.may_write;
      if (stray != 0) {
        std::ostringstream os;
        os << "`" << r.what << "` region writes register";
        for (int reg = 0; reg < isa::kNumRegs; ++reg) {
          if (stray & (1u << reg)) {
            os << " " << reg_name(static_cast<RegId>(reg));
          }
        }
        os << " outside its declared set (`" << isa::disasm(instr) << "`)";
        out->push_back({LintRule::kSyncRegionWrite, pc, os.str()});
      }
    }
    if (r.is_spin && r.wants_pause && !has_pause) {
      out->push_back({LintRule::kMissingPause, r.begin,
                      "spin region `" + r.what +
                          "` requested SpinKind::kPause but contains no "
                          "pause instruction"});
    }
  }
}

/// Lock-pairing dataflow per annotated lock word. Lattice:
///   kBottom < {kFree, kHeld} < kConflict
enum class LockState : uint8_t { kBottom, kFree, kHeld, kConflict };

LockState meet(LockState a, LockState b) {
  if (a == LockState::kBottom) return b;
  if (b == LockState::kBottom) return a;
  if (a == b) return a;
  return LockState::kConflict;
}

void check_lock_pairing(const isa::Program& p, const Cfg& g,
                        std::vector<LintFinding>* out) {
  // Group ops by lock word.
  std::map<Addr, std::vector<const LockOp*>> by_addr;
  for (const LockOp& op : p.lock_ops()) {
    if (op.end > p.size() || op.begin >= op.end) {
      out->push_back({LintRule::kLockPairing, op.begin,
                      "malformed lock-op annotation"});
      continue;
    }
    by_addr[op.addr].push_back(&op);
  }

  for (const auto& [addr, ops] : by_addr) {
    // An op's effect applies when control leaves its range through its
    // end: on any edge from a pc inside [begin, end) to exactly `end`.
    // Inside an acquire's spin loop the lock is still free — the retry
    // back edge and the not-yet-taken success branch both stay at the
    // pre-state; only reaching the instruction after the range completes
    // the acquire. (Both emitters are structured this way: success lands
    // on the label bound at the end of the region.)
    std::map<uint32_t, const LockOp*> ends_at;  // op.end -> op
    for (const LockOp* op : ops) ends_at[op->end] = op;

    const size_t nb = g.blocks.size();
    std::vector<LockState> in(nb, LockState::kBottom);
    std::vector<LockState> outset(nb, LockState::kBottom);

    // Diagnose the pre-state `s` right before `op` completes, then return
    // the completed state.
    auto apply = [&](const LockOp* op, LockState s,
                     std::vector<LintFinding>* findings) {
      if (findings != nullptr) {
        if (s == LockState::kConflict) {
          std::ostringstream os;
          os << (op->acquire ? "acquire" : "release") << " of lock word 0x"
             << std::hex << addr
             << " with inconsistent lock state on joining paths";
          findings->push_back({LintRule::kLockPairing, op->begin, os.str()});
        } else if (op->acquire && s == LockState::kHeld) {
          std::ostringstream os;
          os << "double acquire of lock word 0x" << std::hex << addr;
          findings->push_back({LintRule::kLockPairing, op->begin, os.str()});
        } else if (!op->acquire && s == LockState::kFree) {
          std::ostringstream os;
          os << "release of lock word 0x" << std::hex << addr
             << " that is not held";
          findings->push_back({LintRule::kLockPairing, op->begin, os.str()});
        }
      }
      return op->acquire ? LockState::kHeld : LockState::kFree;
    };

    // Walks block `b` from state `s`, applying completions that fall
    // mid-block (sequential flow from pc-1 inside the range).
    auto transfer = [&](size_t b, LockState s,
                        std::vector<LintFinding>* findings) {
      for (uint32_t pc = g.blocks[b].begin; pc < g.blocks[b].end; ++pc) {
        if (pc != g.blocks[b].begin) {
          auto it = ends_at.find(pc);
          if (it != ends_at.end() && pc > it->second->begin) {
            s = apply(it->second, s, findings);
          }
        }
        if (findings != nullptr && p.at(pc).op == Opcode::kExit &&
            (s == LockState::kHeld || s == LockState::kConflict)) {
          std::ostringstream os;
          os << "lock word 0x" << std::hex << addr
             << " may still be held at exit";
          findings->push_back({LintRule::kLockPairing, pc, os.str()});
        }
      }
      return s;
    };

    // In-state of `b`: meet over reachable predecessors, applying the
    // completion effect on edges that leave an op range into its end.
    auto in_state = [&](size_t b, std::vector<LintFinding>* findings) {
      LockState s = b == 0 ? LockState::kFree : LockState::kBottom;
      const auto it = ends_at.find(g.blocks[b].begin);
      for (uint32_t pr : g.blocks[b].preds) {
        const BasicBlock& pb = g.blocks[pr];
        if (!pb.reachable) continue;
        LockState e = outset[pr];
        if (it != ends_at.end()) {
          const uint32_t last_pc = pb.end - 1;
          if (last_pc >= it->second->begin && last_pc < it->second->end) {
            e = apply(it->second, e, findings);
          }
        }
        s = meet(s, e);
      }
      return s;
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t b = 0; b < nb; ++b) {
        if (!g.blocks[b].reachable) continue;
        in[b] = in_state(b, nullptr);
        const LockState s = transfer(b, in[b], nullptr);
        if (s != outset[b]) {
          outset[b] = s;
          changed = true;
        }
      }
    }
    // Reporting pass over the converged solution, with de-duplication.
    std::vector<LintFinding> raw;
    for (size_t b = 0; b < nb; ++b) {
      if (!g.blocks[b].reachable) continue;
      in_state(b, &raw);
      transfer(b, in[b], &raw);
    }
    std::set<std::pair<uint32_t, std::string>> seen;
    for (LintFinding& f : raw) {
      if (seen.insert({f.pc, f.message}).second) out->push_back(std::move(f));
    }
  }
}

void check_extents(const isa::Program& p, const LintOptions& opt,
                   std::vector<LintFinding>* out) {
  if (!opt.extents_complete) return;
  auto inside = [&](Addr a) {
    for (const Extent& e : opt.extents) {
      if (a >= e.base && a + 8 <= e.base + e.bytes) return true;
    }
    return false;
  };
  for (uint32_t pc = 0; pc < p.size(); ++pc) {
    const Instr& in = p.at(pc);
    if (!in.is_store()) continue;
    // Only compile-time-constant addresses are statically checkable; the
    // rest is covered dynamically by analysis::RaceDetector.
    if (in.mem.base != kNoReg || in.mem.index != kNoReg) continue;
    const Addr a = static_cast<Addr>(in.mem.disp);
    if (!inside(a)) {
      std::ostringstream os;
      os << "store to 0x" << std::hex << a
         << " outside every registered extent (`" << isa::disasm(in) << "`)";
      out->push_back({LintRule::kOutOfExtentStore, pc, os.str()});
    }
  }
}

void check_reachability(const isa::Program& p, const Cfg& g,
                        std::vector<LintFinding>* out) {
  for (const BasicBlock& b : g.blocks) {
    if (!b.reachable) {
      std::ostringstream os;
      os << "unreachable code (instructions " << b.begin << ".."
         << b.end - 1 << ", starts `" << isa::disasm(p.at(b.begin)) << "`)";
      out->push_back({LintRule::kUnreachable, b.begin, os.str()});
      continue;
    }
    if (b.falls_off_end) {
      out->push_back({LintRule::kFallOffEnd, b.end - 1,
                      b.bad_target
                          ? "branch target is unresolved or out of range"
                          : "control can run past the end of the program"});
    }
  }
}

}  // namespace

std::vector<LintFinding> lint_program(const isa::Program& p,
                                      const LintOptions& opt) {
  std::vector<LintFinding> findings;
  if (p.empty()) {
    findings.push_back({LintRule::kFallOffEnd, 0, "empty program"});
    return findings;
  }
  const Cfg g = Cfg::build(p);
  check_uninit_reads(p, g, opt.assumed_written, &findings);
  check_sync_regions(p, &findings);
  check_lock_pairing(p, g, &findings);
  check_extents(p, opt, &findings);
  check_reachability(p, g, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.pc < b.pc;
                   });
  return findings;
}

std::string format_findings(const isa::Program& p,
                            const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << p.name() << ":" << f.pc << ": " << name(f.rule) << ": "
       << f.message << "\n";
  }
  return os.str();
}

}  // namespace smt::analysis
