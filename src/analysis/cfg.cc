#include "analysis/cfg.h"

#include <algorithm>

namespace smt::analysis {

using isa::Instr;
using isa::Opcode;

Cfg Cfg::build(const isa::Program& p) {
  if (p.empty()) return {};  // no blocks, no reachability — nothing to do
  const uint32_t n = static_cast<uint32_t>(p.size());

  auto valid_target = [n](int32_t t) {
    return t >= 0 && static_cast<uint32_t>(t) < n;
  };

  // Leaders: entry, every valid branch target, every post-branch pc.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (uint32_t pc = 0; pc < n; ++pc) {
    const Instr& in = p.at(pc);
    if (!in.is_branch()) continue;
    if (valid_target(in.target)) leader[in.target] = true;
    if (pc + 1 < n) leader[pc + 1] = true;
  }

  Cfg g;
  g.block_of.resize(n);
  for (uint32_t pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      BasicBlock b;
      b.begin = pc;
      g.blocks.push_back(b);
    }
    g.block_of[pc] = static_cast<uint32_t>(g.blocks.size() - 1);
  }
  for (size_t i = 0; i < g.blocks.size(); ++i) {
    g.blocks[i].end =
        i + 1 < g.blocks.size() ? g.blocks[i + 1].begin : n;
  }

  // Edges.
  for (size_t i = 0; i < g.blocks.size(); ++i) {
    BasicBlock& b = g.blocks[i];
    const Instr& last = p.at(b.end - 1);
    auto link = [&](int32_t target_pc) {
      if (!valid_target(target_pc)) {
        b.bad_target = true;
        b.falls_off_end = true;
        return;
      }
      const uint32_t s = g.block_of[target_pc];
      if (std::find(b.succs.begin(), b.succs.end(), s) == b.succs.end()) {
        b.succs.push_back(s);
      }
    };
    auto fall_through = [&] {
      if (b.end >= n) {
        b.falls_off_end = true;
      } else {
        link(static_cast<int32_t>(b.end));
      }
    };
    switch (last.op) {
      case Opcode::kExit:
        break;  // no successors
      case Opcode::kJmp:
        link(last.target);
        break;
      case Opcode::kBr:  // both the taken and the not-taken path
        link(last.target);
        fall_through();
        break;
      default:
        fall_through();
        break;
    }
  }

  // Predecessors.
  for (size_t i = 0; i < g.blocks.size(); ++i) {
    for (uint32_t s : g.blocks[i].succs) {
      g.blocks[s].preds.push_back(static_cast<uint32_t>(i));
    }
  }

  // Reachability: DFS from the entry block.
  std::vector<uint32_t> stack{0};
  g.blocks[0].reachable = true;
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    for (uint32_t s : g.blocks[i].succs) {
      if (!g.blocks[s].reachable) {
        g.blocks[s].reachable = true;
        stack.push_back(s);
      }
    }
  }
  return g;
}

}  // namespace smt::analysis
