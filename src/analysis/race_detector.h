// Dynamic happens-before race detector for guest programs, attached to
// the core as a cpu::PipelineObserver.
//
// The simulator executes guest instructions functionally at fetch time on
// one host thread, so the on_guest_access callback sequence is an exact
// sequentially consistent interleaving of both contexts' memory accesses,
// with values consistent with that order. Over that sequence the detector
// maintains FastTrack-style vector clocks, specialized to the two
// hardware contexts:
//
//   * every store to a registered sync word (barrier arrival flags, the
//     sleeper word, lock words) is a release: the word's clock joins the
//     writer's clock, and the writer's epoch advances;
//   * every load/xchg of a sync word is an acquire: the reader's clock
//     joins the word's clock (xchg is both, modelling test-and-set);
//   * an ipi instruction is a release into the target's wake channel, and
//     the halted context's wake-up joins that channel (the §3.2
//     halt/IPI barrier edge).
//
// Any two accesses to the same non-sync word, from different contexts, at
// least one a write, with no happens-before path between them, is a race.
// Additionally, when the owning workload declares its extents complete,
// every access outside the registered data/sync extents is reported as an
// extent violation (the dynamic counterpart of the lint's static check —
// computed-address stores the lint cannot see).
//
// Contract (same as profile::PcProfiler): a pure observer — zero cost
// when detached, and attaching it never changes a perf counter bit
// (regression-tested in race_detector_test).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"

namespace smt::analysis {

/// One detected conflicting access pair with no happens-before edge.
/// `first` is the earlier access in the observed interleaving.
struct RaceReport {
  CpuId first_cpu = CpuId::kCpu0;
  uint32_t first_pc = 0;
  cpu::GuestAccess first_kind = cpu::GuestAccess::kLoad;
  CpuId second_cpu = CpuId::kCpu1;
  uint32_t second_pc = 0;
  cpu::GuestAccess second_kind = cpu::GuestAccess::kLoad;
  Addr addr = 0;
};

/// A guest access outside every registered extent (only reported when the
/// workload declared its extent list complete).
struct ExtentViolation {
  CpuId cpu = CpuId::kCpu0;
  uint32_t pc = 0;
  cpu::GuestAccess kind = cpu::GuestAccess::kLoad;
  Addr addr = 0;
};

class RaceDetector final : public cpu::PipelineObserver {
 public:
  /// Distinct race reports kept verbatim (further races only count).
  static constexpr size_t kMaxReports = 32;

  /// Registers the program bound to `cpu` (for disassembly in reports);
  /// the program's annotated lock words become sync words.
  void set_program(CpuId cpu, const isa::Program& p);

  /// Declares the 8-byte word at `a` a synchronization word.
  void add_sync_word(Addr a) { sync_words_.insert(a); }
  /// Registers a legal guest-memory extent.
  void add_extent(Addr base, size_t bytes) {
    if (bytes > 0) extents_.push_back({base, bytes});
  }
  /// Marks the extent list as covering every legal access, enabling the
  /// dynamic out-of-extent check.
  void set_extents_complete(bool complete) { extents_complete_ = complete; }

  // --- cpu::PipelineObserver ---------------------------------------------
  void on_issue(CpuId, cpu::IssuePort, uint32_t) override {}
  void on_block(CpuId, cpu::BlockReason, uint32_t, Cycle) override {}
  void on_demand_miss(CpuId, uint32_t, bool) override {}
  void on_retire_uop(CpuId, const cpu::DynUop&, int) override {}
  void on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                       cpu::GuestAccess kind, uint64_t value) override;
  void on_ipi_send(CpuId cpu) override;
  void on_ipi_wake(CpuId cpu) override;

  // --- results -----------------------------------------------------------
  const std::vector<RaceReport>& races() const { return races_; }
  const std::vector<ExtentViolation>& extent_violations() const {
    return extent_violations_;
  }
  /// Total conflicting pairs observed, including those beyond kMaxReports.
  uint64_t total_races() const { return total_races_; }
  bool clean() const {
    return races_.empty() && extent_violations_.empty();
  }

  std::string describe(const RaceReport& r) const;
  std::string describe(const ExtentViolation& v) const;
  /// One-line failure summary (first race / violation + totals); empty
  /// when clean.
  std::string summary() const;

 private:
  struct VectorClock {
    std::array<uint64_t, kNumLogicalCpus> c{};
    void join(const VectorClock& o) {
      for (int i = 0; i < kNumLogicalCpus; ++i) {
        if (o.c[i] > c[i]) c[i] = o.c[i];
      }
    }
  };

  /// Last-access shadow state of one guest word. Epoch 0 = never.
  struct Shadow {
    uint64_t write_epoch = 0;
    int8_t write_tid = -1;
    uint32_t write_pc = 0;
    cpu::GuestAccess write_kind = cpu::GuestAccess::kStore;
    std::array<uint64_t, kNumLogicalCpus> read_epoch{};
    std::array<uint32_t, kNumLogicalCpus> read_pc{};
  };

  struct ExtentRange {
    Addr base;
    size_t bytes;
  };

  bool in_extents(Addr a) const;
  void report_race(int first_tid, uint32_t first_pc,
                   cpu::GuestAccess first_kind, CpuId second_cpu,
                   uint32_t second_pc, cpu::GuestAccess second_kind,
                   Addr addr);
  std::string access_str(CpuId cpu, uint32_t pc,
                         cpu::GuestAccess kind) const;

  std::array<std::optional<isa::Program>, kNumLogicalCpus> progs_;
  std::unordered_set<Addr> sync_words_;
  std::vector<ExtentRange> extents_;
  bool extents_complete_ = false;

  // Vector-clock state. Epochs start at 1 so 0 can mean "never".
  std::array<VectorClock, kNumLogicalCpus> clock_ = [] {
    std::array<VectorClock, kNumLogicalCpus> c{};
    for (int i = 0; i < kNumLogicalCpus; ++i) c[i].c[i] = 1;
    return c;
  }();
  std::unordered_map<Addr, VectorClock> sync_clock_;
  std::array<VectorClock, kNumLogicalCpus> ipi_channel_{};
  std::unordered_map<Addr, Shadow> shadow_;

  std::vector<RaceReport> races_;
  std::unordered_set<uint64_t> race_keys_;  // (pc, pc, kinds) de-dup
  uint64_t total_races_ = 0;
  std::vector<ExtentViolation> extent_violations_;
  std::unordered_set<uint64_t> violation_keys_;
};

}  // namespace smt::analysis
