#include "cpu/arch_state.h"

#include "common/check.h"
#include "cpu/config.h"

namespace smt::cpu {

using isa::BrCond;
using isa::Instr;
using isa::kNoReg;
using isa::Opcode;

namespace {

Addr effective_addr(const isa::MemRef& m, const ArchState& st) {
  int64_t a = m.disp;
  if (m.base != kNoReg) a += st.iregs[m.base];
  if (m.index != kNoReg) a += st.iregs[m.index] << m.scale_log2;
  return static_cast<Addr>(a);
}

bool eval_cond(BrCond c, int64_t a, int64_t b) {
  switch (c) {
    case BrCond::kEq: return a == b;
    case BrCond::kNe: return a != b;
    case BrCond::kLt: return a < b;
    case BrCond::kLe: return a <= b;
    case BrCond::kGt: return a > b;
    case BrCond::kGe: return a >= b;
  }
  return false;
}

}  // namespace

ExecResult exec_instr(const Instr& in, ArchState& st, mem::SimMemory& memory) {
  ExecResult r;
  r.next_pc = st.pc + 1;

  auto ival = [&](isa::RegId reg) { return st.iregs[reg]; };
  auto src2 = [&]() { return in.use_imm ? in.imm : ival(in.rs2); };
  auto set_i = [&](int64_t v) { st.iregs[in.rd] = v; };
  auto fval = [&](isa::RegId reg) {
    SMT_DCHECK(isa::is_fp_reg(reg));
    return st.fregs[reg - isa::kNumIRegs];
  };
  auto set_f = [&](double v) {
    SMT_DCHECK(isa::is_fp_reg(in.rd));
    st.fregs[in.rd - isa::kNumIRegs] = v;
  };

  switch (in.op) {
    case Opcode::kIAdd: set_i(ival(in.rs1) + src2()); break;
    case Opcode::kISub: set_i(ival(in.rs1) - src2()); break;
    case Opcode::kIMov: set_i(ival(in.rs1)); break;
    case Opcode::kIMovImm: set_i(in.imm); break;
    case Opcode::kIAnd: set_i(ival(in.rs1) & src2()); break;
    case Opcode::kIOr: set_i(ival(in.rs1) | src2()); break;
    case Opcode::kIXor: set_i(ival(in.rs1) ^ src2()); break;
    case Opcode::kIShl:
      set_i(ival(in.rs1) << (src2() & 63));
      break;
    case Opcode::kIShr:
      set_i(static_cast<int64_t>(
          static_cast<uint64_t>(ival(in.rs1)) >> (src2() & 63)));
      break;
    case Opcode::kIMul: set_i(ival(in.rs1) * src2()); break;
    case Opcode::kIDiv: {
      const int64_t d = src2();
      set_i(d == 0 ? 0 : ival(in.rs1) / d);  // defined result on /0
      break;
    }
    case Opcode::kFAdd: set_f(fval(in.rs1) + fval(in.rs2)); break;
    case Opcode::kFSub: set_f(fval(in.rs1) - fval(in.rs2)); break;
    case Opcode::kFMul: set_f(fval(in.rs1) * fval(in.rs2)); break;
    case Opcode::kFDiv: set_f(fval(in.rs1) / fval(in.rs2)); break;
    case Opcode::kFMov: set_f(fval(in.rs1)); break;
    case Opcode::kFMovImm: set_f(in.fimm); break;
    case Opcode::kFNeg: set_f(-fval(in.rs1)); break;

    case Opcode::kLoad: {
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      const uint64_t v = memory.read_u64(r.addr);
      r.loaded = v;
      set_i(static_cast<int64_t>(v));
      break;
    }
    case Opcode::kStore: {
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      memory.write_u64(r.addr, static_cast<uint64_t>(ival(in.rs1)));
      break;
    }
    case Opcode::kFLoad: {
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      const uint64_t v = memory.read_u64(r.addr);
      r.loaded = v;
      st.fregs[in.rd - isa::kNumIRegs] = memory.read_f64(r.addr);
      break;
    }
    case Opcode::kFStore: {
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      memory.write_f64(r.addr, fval(in.rs1));
      break;
    }
    case Opcode::kPrefetch:
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      break;
    case Opcode::kXchg: {
      r.has_mem = true;
      r.addr = effective_addr(in.mem, st);
      const uint64_t old =
          memory.exchange_u64(r.addr, static_cast<uint64_t>(ival(in.rs1)));
      r.loaded = old;
      set_i(static_cast<int64_t>(old));
      break;
    }

    case Opcode::kBr: {
      const int64_t a = ival(in.rs1);
      const int64_t b = in.use_imm ? in.imm : ival(in.rs2);
      if (eval_cond(in.cond, a, b)) {
        r.taken = true;
        r.next_pc = static_cast<uint32_t>(in.target);
      }
      break;
    }
    case Opcode::kJmp:
      r.taken = true;
      r.next_pc = static_cast<uint32_t>(in.target);
      break;

    case Opcode::kPause: r.special = ExecResult::Special::kPause; break;
    case Opcode::kHalt: r.special = ExecResult::Special::kHalt; break;
    case Opcode::kIpi: r.special = ExecResult::Special::kIpi; break;
    case Opcode::kExit: r.special = ExecResult::Special::kExit; break;
    case Opcode::kNop: break;
    case Opcode::kNumOpcodes: SMT_CHECK_MSG(false, "invalid opcode"); break;
  }
  return r;
}

Cycle CoreConfig::latency(isa::Opcode op) const {
  switch (op) {
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMov:
    case Opcode::kIMovImm:
    case Opcode::kIAnd:
    case Opcode::kIOr:
    case Opcode::kIXor:
      return lat_simple_alu;
    case Opcode::kIShl:
    case Opcode::kIShr:
      return lat_shift;
    case Opcode::kIMul: return lat_imul;
    case Opcode::kIDiv: return lat_idiv;
    case Opcode::kFAdd:
    case Opcode::kFSub:
      return lat_fadd;
    case Opcode::kFMul: return lat_fmul;
    case Opcode::kFDiv: return lat_fdiv;
    case Opcode::kFMov:
    case Opcode::kFMovImm:
    case Opcode::kFNeg:
      return lat_fmov;
    case Opcode::kBr:
    case Opcode::kJmp:
      return lat_branch;
    default:
      return 1;  // memory latencies come from the hierarchy; rest trivial
  }
}

}  // namespace smt::cpu
