// Cycle-level model of one physical Netburst-class processor with two
// Hyper-Threading contexts.
//
// Structure per simulated cycle (step_cycle):
//   1. mode updates   — halt entry/exit, IPI wake, exit draining
//   2. retire         — in-order, up to retire_width uops from one context
//                       (contexts alternate cycle by cycle); retired stores
//                       begin draining from the store buffer into the cache
//   3. issue/execute  — dependence-checked out-of-order issue onto shared
//                       ports; double-speed ALUs, ALU0-only logical ops,
//                       unpipelined dividers; loads/stores access the
//                       shared cache hierarchy
//   4. dispatch       — up to dispatch_width uops from the uop queue into
//                       the ROB; statically partitioned ROB / load queue /
//                       store buffer limits; stall reasons recorded here
//                       (the paper's "resource stall cycles")
//   5. fetch          — one context per cycle (alternating; a stalled
//                       sibling donates its slot) runs the functional
//                       interpreter and enqueues uops
//
// Dependences are RAW-only on architectural registers (Netburst's 128
// physical registers rename WAW/WAR away). The paper's |T| register-set ILP
// construction still works because its streams accumulate into their
// targets (t = t op s): one target register means one RAW chain serialized
// at unit latency, six targets mean six independent chains.
//
// When a whole cycle passes with no activity, run() fast-forwards to the
// next event (outstanding miss completion, pause/halt timer, store drain),
// bulk-accumulating the per-cycle counters, so halt-synchronized workloads
// simulate quickly.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"
#include "cpu/arch_state.h"
#include "cpu/config.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "perfmon/counters.h"

namespace smt::trace {
class CounterSampler;
class PipeViewRecorder;
class TraceRecorder;
}  // namespace smt::trace

namespace smt::cpu {

/// One dynamic uop flowing through the backend.
struct DynUop {
  // Monotonic per-core id, assigned at fetch in program order across both
  // contexts (deterministic: the counter advances whether or not any
  // observer is attached). Keys the pipeline-lifetime trace.
  uint64_t uid = 0;
  uint32_t pc = 0;
  isa::Opcode op = isa::Opcode::kNop;
  isa::UnitClass unit = isa::UnitClass::kNone;
  isa::RegId dst = isa::kNoReg;
  isa::RegId dep_regs[4];  // register sources (incl. address regs)
  int ndep_regs = 0;
  Addr addr = 0;
  bool is_load = false;     // holds a load-queue entry
  bool is_store = false;    // holds a store-buffer entry
  bool is_prefetch = false;
  bool prefetch_to_l1 = false;
  bool is_branch = false;
};

/// Observer invoked for every retired uop; the Pin-analog profiler in
/// src/profile attaches through this.
class RetireObserver {
 public:
  virtual ~RetireObserver() = default;
  virtual void on_retire(CpuId cpu, const DynUop& uop) = 0;
};

/// Issue ports of the modeled backend, at the granularity the paper's
/// Table 1 / Figure 6 reason about: the two double-speed ALUs (logical,
/// shift and branch uops are restricted to ALU0), the single shared FP
/// issue port (FP add/mul/div plus the complex integer unit), the FP-move
/// path, and the load / store-address ports.
enum class IssuePort : uint8_t {
  kAlu0,
  kAlu1,
  kFp,      // shared FP complex port (fadd/fmul/fdiv/imul/idiv)
  kFpMove,
  kLoad,
  kStore,   // store-address generation
};
inline constexpr int kNumIssuePorts = 6;

/// Why the backend could not make forward progress on a uop this cycle.
/// The first four mirror the allocator/frontend stall counters; the last
/// two are issue-stage conditions that have no per-CPU counter but are
/// attributable per PC (the ALU0 serialization the paper's §5.3 reasons
/// about shows up as kPortConflict on the mask instructions).
enum class BlockReason : uint8_t {
  kStoreBuffer,
  kRob,
  kLoadQueue,
  kUopQueueFull,
  kPortConflict,  // ready to issue, but the port (or issue slots) were taken
  kDividerBusy,   // ready to issue, but the unpipelined divider is occupied
};
inline constexpr int kNumBlockReasons = 6;

const char* name(IssuePort p);
const char* name(BlockReason r);

/// Sentinel of next_event_cycle(): no context has any scheduled future
/// event — every bound context is asleep with no wake-up pending, i.e.
/// the simulated synchronization has deadlocked.
inline constexpr Cycle kNoFutureEvent = std::numeric_limits<Cycle>::max();

/// Why a (non-aborting) run loop returned.
enum class RunTermination : uint8_t {
  kDone,                 // every bound context exited
  kDeadlock,             // watchdog or lost wake-up: no forward progress
  kCycleBudgetExceeded,  // max_cycles elapsed before completion
  kCancelled,            // the host cancel check fired (sweep watchdog)
};
const char* name(RunTermination t);

/// Structured result of Core::try_run — the failure paths the legacy
/// run() turns into SMT_CHECK aborts, as data.
struct RunResult {
  RunTermination termination = RunTermination::kDone;
  std::string message;  // empty on kDone; the would-be abort text otherwise

  bool ok() const { return termination == RunTermination::kDone; }
};

/// Kind of a guest memory access as seen by PipelineObserver::
/// on_guest_access (prefetches are not reported — they have no
/// architectural effect).
enum class GuestAccess : uint8_t {
  kLoad,   // load / fload
  kStore,  // store / fstore
  kXchg,   // atomic exchange (reads and writes the word)
};
const char* name(GuestAccess k);

/// Pure observer of the backend's issue, stall and miss activity — the
/// attachment point of the per-PC attribution profiler
/// (profile::PcProfiler) and the happens-before race detector
/// (analysis::RaceDetector). Like the telemetry instruments, it is
/// read-only: attaching one never perturbs a counter, and every callback
/// replays bit-identically under event-skip fast-forward (on_block is
/// raised from record_cycle_counters with the frozen per-thread blocking
/// state, so a skipped window attributes exactly like single-cycle
/// stepping; guest accesses and IPIs only ever happen in stepped cycles).
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  /// A uop from `pc` won an issue slot on `port` this cycle. Uops with no
  /// execution unit (nop/pause/halt/ipi/exit) consume issue bandwidth but
  /// no port and are not reported.
  virtual void on_issue(CpuId cpu, IssuePort port, uint32_t pc) = 0;
  /// The oldest blocked uop of `cpu`, from `pc`, spent `cycles` cycles
  /// blocked for `reason` (bulk-reported across event-skip windows).
  virtual void on_block(CpuId cpu, BlockReason reason, uint32_t pc,
                        Cycle cycles) = 0;
  /// Interference attribution twin of on_block: raised at the exact same
  /// points with the same `cycles`, plus the self-vs-sibling classification
  /// — `sibling` is true when the stall would not have happened without the
  /// other context (a partitioned structure the uop would fit into at full
  /// size, a port the sibling reserved this cycle, a divider mid-operation
  /// on a sibling divide). For kPortConflict `port` names the contended
  /// IssuePort (as an int), or -1 when the uop lost to issue-bandwidth
  /// exhaustion rather than a specific port; -1 for every other reason.
  /// Summing self+sibling per reason therefore reproduces the stall
  /// counters bit-exactly, under both event_skip modes. Default no-op.
  virtual void on_interference(CpuId cpu, BlockReason reason, bool sibling,
                               int port, Cycle cycles) {
    (void)cpu, (void)reason, (void)sibling, (void)port, (void)cycles;
  }
  /// Observers that never consume on_block/on_interference for the
  /// issue-stage reasons may return false to skip the per-cycle
  /// scan_issue_blocks pass (the flight recorder does; attribution
  /// observers keep the default).
  virtual bool wants_issue_blocks() const { return true; }
  /// A demand access by `pc` missed L1 (`l2_miss` = it also missed L2).
  /// Raised at the same points as the kL1Misses/kL2Misses counters.
  virtual void on_demand_miss(CpuId cpu, uint32_t pc, bool l2_miss) = 0;
  /// A uop from `pc` retired; `uops` is its retired-uop count (2 for the
  /// load+store halves of xchg), matching kUopsRetired exactly.
  virtual void on_retire_uop(CpuId cpu, const DynUop& uop, int uops) = 0;
  /// A guest load/store/xchg executed functionally at `addr` (raised at
  /// fetch time, where the functional interpreter runs, in exact
  /// sequentially-consistent interleaving order). `value` is the value
  /// read (loads, and the old word for xchg) or the value stored.
  /// Default no-op so observers that don't track memory stay unchanged.
  virtual void on_guest_access(CpuId cpu, uint32_t pc, Addr addr,
                               GuestAccess kind, uint64_t value) {
    (void)cpu, (void)pc, (void)addr, (void)kind, (void)value;
  }
  /// `cpu` executed an ipi instruction (wake-up sent to the sibling).
  virtual void on_ipi_send(CpuId cpu) { (void)cpu; }
  /// A halted `cpu` consumed a pending IPI and began waking.
  virtual void on_ipi_wake(CpuId cpu) { (void)cpu; }
};

class Core {
 public:
  Core(const CoreConfig& cfg, mem::CacheHierarchy& hierarchy,
       mem::SimMemory& memory, perfmon::PerfCounters& counters);

  /// Binds a program to a logical CPU (the sched_setaffinity analog) with
  /// initial architectural register state.
  void load_program(CpuId cpu, const isa::Program& prog,
                    const ArchState& init = {});

  /// Runs until every bound context has exited. Aborts via SMT_CHECK if the
  /// watchdog sees no retirement progress (deadlock in simulated sync) or
  /// `max_cycles` elapses.
  void run(Cycle max_cycles = 4'000'000'000ull);

  /// Non-aborting run: like run(), but a deadlock (retirement watchdog or
  /// lost wake-up), an exhausted cycle budget, or a fired cancel check is
  /// returned as a structured RunResult instead of crashing the process.
  /// The simulation state stays valid and inspectable after any outcome —
  /// counters, cycles and memory reflect the partial run.
  RunResult try_run(Cycle max_cycles = 4'000'000'000ull);

  /// Installs a host-side cancellation predicate polled periodically (every
  /// few thousand run-loop iterations) by try_run; when it returns true,
  /// try_run stops with kCancelled. Pass an empty function to detach. Used
  /// by the sweep job pool's wall-clock watchdog; polling never perturbs
  /// the simulation, and an uncancelled run is bit-identical with or
  /// without a check installed.
  void set_cancel_check(std::function<bool()> cancel) {
    cancel_ = std::move(cancel);
  }

  /// Runs until the first bound context exits (used by the co-execution
  /// stream experiments, which measure CPI over the fully-overlapped
  /// window). Returns the id of the finished context.
  CpuId run_until_any_done(Cycle max_cycles = 4'000'000'000ull);

  bool done(CpuId cpu) const { return threads_[idx(cpu)].mode == TMode::kDone; }
  bool all_done() const;

  Cycle now() const { return now_; }

  void set_retire_observer(RetireObserver* obs) { observer_ = obs; }

  /// Attaches the per-PC attribution observer (may be null to detach).
  /// A pure observer with the same guarantees as the telemetry
  /// instruments: zero cost when detached (every hook is a null check),
  /// and no counter or simulation state is ever perturbed when attached.
  void set_pipeline_observer(PipelineObserver* obs) { pipe_ = obs; }

  /// Attaches the pipeline-lifetime trace recorder (may be null to
  /// detach). Pure observer: uop ids advance deterministically whether or
  /// not a recorder is attached, so recording never perturbs a counter.
  void set_pipeview(trace::PipeViewRecorder* pv) { pview_ = pv; }

  /// Attaches the optional telemetry instruments (either may be null).
  /// Both are pure observers: with them attached, every perf counter stays
  /// bit-identical to an un-instrumented run — the sampler only makes the
  /// core split its bulk event-skip accumulation at window boundaries
  /// (an exact transformation), and the recorder only reads state.
  void set_telemetry(trace::TraceRecorder* recorder,
                     trace::CounterSampler* sampler) {
    trace_ = recorder;
    sampler_ = sampler;
  }

  /// Architectural state inspection (tests).
  const ArchState& arch(CpuId cpu) const { return threads_[idx(cpu)].arch; }

  const CoreConfig& config() const { return cfg_; }

  /// Read-only occupancy/run-state snapshot of one context, for the
  /// flight recorder's periodic samples and the post-mortem core dump.
  struct ThreadSnapshot {
    const char* mode = "idle";  // TMode name ("running", "halted", ...)
    uint32_t next_pc = 0;       // next instruction the frontend would fetch
    size_t rob_occupancy = 0;
    size_t uq_occupancy = 0;
    int lq_used = 0;
    int sb_used = 0;
    bool ipi_pending = false;
  };
  ThreadSnapshot snapshot_thread(CpuId cpu) const;

 private:
  enum class TMode : uint8_t {
    kIdle,       // no program bound
    kRunning,
    kHalting,    // halt fetched; draining in-flight uops
    kEnterHalt,  // paying the halt transition cost
    kHalted,     // asleep; resources released to the sibling
    kWaking,     // IPI received; paying the wake cost
    kExiting,    // exit fetched; draining
    kDone,
  };

  enum class StallReason : uint8_t { kNone, kRob, kLoadQueue, kStoreBuffer };

  struct RobEntry {
    DynUop uop;
    uint64_t dep[4];  // producer sequence numbers within this thread
    int ndeps = 0;
    bool issued = false;
    Cycle done_at = 0;
  };

  struct Thread {
    const isa::Program* prog = nullptr;
    ArchState arch;
    TMode mode = TMode::kIdle;
    Cycle fetch_stall_until = 0;
    Cycle mode_until = 0;
    std::deque<DynUop> uq;
    std::vector<RobEntry> rob;   // ring indexed by seq % rob_size
    uint64_t head = 0;           // oldest in-flight seq
    uint64_t next = 0;           // next seq to allocate
    // last_writer[reg] = seq + 1 of the most recent dispatched writer
    // (0 = none in recorded history).
    std::array<uint64_t, isa::kNumRegs> last_writer{};
    int lq_used = 0;
    int sb_used = 0;
    std::vector<Cycle> sb_drain_free_at;
    bool ipi_pending = false;
    StallReason stall = StallReason::kNone;
    // PC of the uop the allocator could not move when stall != kNone
    // (the oldest blocked uop, always uq.front()); consumed by
    // record_cycle_counters for per-PC stall attribution.
    uint32_t stall_pc = 0;
    // Sibling-blame bit for the allocation stall: the uop would have fit
    // into the full (unpartitioned) structure, so only the sibling's
    // half-share made it stall. Constant within an event-skip window
    // (occupancies and partitioning are frozen), so it replays exactly.
    bool stall_sibling = false;
    // Set by the fetch stage when this context donated its slot because
    // the uop queue was full; consumed by record_cycle_counters so the
    // attribution replays exactly across event-skip windows.
    bool uq_full = false;
    // PC of the next instruction to fetch when uq_full was set (the
    // oldest instruction blocked at the frontend).
    uint32_t uq_full_pc = 0;
    // Sibling-blame bit for the frontend stall (queue would accept the
    // fetch group at full size).
    bool uq_full_sibling = false;
    // Issue-stage blocking state, recomputed after the issue stage of
    // every stepped cycle (only while a PipelineObserver is attached):
    // the oldest dependence-ready but unissued uop in the scheduler
    // window, and why it could not issue. Within an event-skip window the
    // predicate is constant (ports are untouched in no-activity cycles
    // and divider-busy expiry is a next-event candidate), so
    // record_cycle_counters replays it bit-identically.
    bool issue_blocked = false;
    BlockReason issue_block_reason = BlockReason::kPortConflict;
    uint32_t issue_block_pc = 0;
    // Interference classification of the issue block: did the sibling
    // cause it (port it reserved this cycle, divider running its divide),
    // and which port was contended (-1 = divider or raw issue bandwidth).
    bool issue_block_sibling = false;
    int issue_block_port = -1;
    // Recent-load/-store rings for memory-order-violation detection.
    static constexpr int kRlSize = 8;
    static constexpr int kRsSize = 16;
    std::array<Addr, kRlSize> rl_addr{};
    std::array<uint64_t, kRlSize> rl_val{};
    std::array<Cycle, kRlSize> rl_cyc{};
    std::array<bool, kRlSize> rl_valid{};
    int rl_pos = 0;
    std::array<Addr, kRsSize> rs_addr{};
    std::array<Cycle, kRsSize> rs_cyc{};
    std::array<bool, kRsSize> rs_valid{};
    int rs_pos = 0;

    size_t rob_occupancy() const { return static_cast<size_t>(next - head); }
    bool pipeline_empty() const { return uq.empty() && next == head; }
  };

  // --- per-cycle stages ----------------------------------------------------
  /// Returns true if any architectural progress happened this cycle.
  bool step_cycle();
  void update_modes(Thread& t, CpuId cpu);
  int retire_thread(Thread& t, CpuId cpu);
  bool try_issue_one(Thread& t, CpuId cpu, int& budget);
  int dispatch_thread(Thread& t, CpuId cpu);
  int fetch_thread(Thread& t, CpuId cpu);

  // --- helpers ---------------------------------------------------------
  bool other_active(CpuId cpu) const;
  bool partitioned(CpuId cpu) const;
  int rob_limit(CpuId cpu) const;
  int sched_window_limit(CpuId cpu) const;
  int lq_limit(CpuId cpu) const;
  int sb_limit(CpuId cpu) const;
  int uq_limit(CpuId cpu) const;
  bool dep_ready(const Thread& t, uint64_t seq) const;
  void reclaim_store_buffer(Thread& t);
  void deliver_ipi(CpuId target);
  /// Accumulates the per-cycle counters for the `n` cycles [first, first+n).
  /// Called with (now_, 1) at the end of every stepped cycle and with the
  /// skipped window during event-skip fast-forward; the attribution is
  /// bit-identical either way (regression-tested), because within a
  /// no-activity window every per-cycle predicate is provably constant.
  void record_cycle_counters(Cycle first, Cycle n);
  /// record_cycle_counters for a skipped window, split at counter-sampler
  /// boundaries so each sampling window receives exactly the cycles it
  /// covers (bit-identical to single-cycle stepping).
  void record_skipped_window(Cycle first, Cycle n);
  /// Closes every sampler window ending at or before cycle `t` (requires
  /// all cycles < t to be accounted). No-op without a sampler.
  void sample_up_to(Cycle t);
  Cycle next_event_cycle() const;
  /// Recomputes Thread::issue_blocked/issue_block_* for both contexts
  /// (called after the issue stage; only while a PipelineObserver is
  /// attached — the scan is read-only).
  void scan_issue_blocks();
  void mirror_access_stats(CpuId cpu, const mem::AccessOutcome& out,
                           bool is_load, uint32_t pc);
  void check_memory_order(Thread& t, CpuId cpu, Addr addr, uint64_t value);

  CoreConfig cfg_;
  mem::CacheHierarchy& hier_;
  mem::SimMemory& mem_;
  perfmon::PerfCounters& ctr_;
  std::function<bool()> cancel_;  // host cancellation predicate (may be empty)
  RetireObserver* observer_ = nullptr;
  PipelineObserver* pipe_ = nullptr;
  trace::PipeViewRecorder* pview_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  trace::CounterSampler* sampler_ = nullptr;

  std::array<Thread, kNumLogicalCpus> threads_;
  Cycle now_ = 0;
  Cycle last_retire_cycle_ = 0;

  // Shared execution-unit state.
  Cycle fdiv_busy_until_ = 0;
  Cycle idiv_busy_until_ = 0;
  // Which context reserved the (unpipelined) divider currently busy —
  // the interference attribution for kDividerBusy blocks. Constant while
  // the divide is in flight, so it replays exactly across event-skip
  // windows.
  int fdiv_owner_ = -1;
  int idiv_owner_ = -1;
  Cycle store_commit_port_free_ = 0;

  // Issue-priority rotation (round-robin between contexts).
  int issue_pref_ = 0;

  // Per-cycle port budgets, reset in step_cycle. The single FP issue port
  // (Netburst port 1) feeds FP_ADD, FP_MUL, FP_DIV and the integer
  // multiplier; FP_MOVE has its own path (port 0).
  int cap_alu0_ = 0, cap_alu1_ = 0, cap_fp_port_ = 0, cap_fpmov_ = 0,
      cap_load_ = 0, cap_store_ = 0;

  // Per-cycle issue bookkeeping for interference attribution: which
  // context issued onto which port this cycle (reset with the caps;
  // all-zero in event-skip frozen cycles, where nothing issues). Written
  // unconditionally — two array stores per issued uop — and consumed only
  // by scan_issue_blocks, so detached runs stay unperturbed.
  std::array<std::array<uint16_t, kNumIssuePorts>, kNumLogicalCpus>
      port_issued_{};
  std::array<uint16_t, kNumLogicalCpus> uops_issued_{};

  // Monotonic fetch-order uop id source (see DynUop::uid).
  uint64_t uop_uid_next_ = 1;

  static const char* mode_name(TMode m);
};

}  // namespace smt::cpu
