// Core configuration: widths, queue sizes and latencies of the simulated
// 2-way SMT Netburst-class processor.
//
// Defaults approximate the 2.8 GHz Hyper-Threading Xeon of the paper:
// 3 uops/cycle from the trace cache, up to 6 issued, 3 retired; statically
// partitioned uop queue / ROB / load queue / store buffer (each logical
// processor may use at most half while both are active, the full structure
// once the sibling halts); double-speed ALUs with logical/shift ops
// restricted to ALU0; unpipelined dividers; pause/halt/IPI costs as
// described in paper §3.1.
#pragma once

#include "common/types.h"
#include "isa/opcode.h"

namespace smt::cpu {

struct CoreConfig {
  // Pipeline widths.
  int fetch_width = 3;
  int dispatch_width = 3;
  int retire_width = 3;
  int issue_width = 6;

  // Statically partitioned structures (totals; halved per thread in SMT).
  int uop_queue_size = 24;
  int rob_size = 126;
  int load_queue_size = 48;
  int store_buffer_size = 24;

  // Netburst splits the buffering structures statically between active
  // contexts. Setting this to false models an idealized dynamically-shared
  // design (each context may fill any structure completely) — the
  // counterfactual the paper's §2 discussion of [Tuck & Tullsen]
  // contrasts against; see bench/ablation_partitioning.
  bool static_partitioning = true;

  // Scheduler lookahead: how many unissued uops past the ROB head are
  // considered for issue each cycle (~the 46 scheduler entries of
  // Netburst). Halved per context when both are active, like the other
  // buffering structures — the partitioning that caps per-thread ILP
  // extraction in SMT mode.
  int sched_window = 48;

  // Per-cycle execution-unit capacities. The double-speed ALUs accept two
  // simple uops per cycle each; only ALU0 executes logical/shift uops and
  // branches (paper §5.3 / Figure 6).
  int alu0_per_cycle = 2;
  int alu1_per_cycle = 2;

  // Result latencies (cycles). Latency 0 = double-pumped: a dependent
  // simple-ALU uop can issue in the same cycle (staggered add).
  Cycle lat_simple_alu = 0;
  Cycle lat_shift = 4;
  Cycle lat_imul = 14;
  Cycle lat_idiv = 56;
  Cycle lat_fadd = 5;
  Cycle lat_fmul = 7;
  Cycle lat_fdiv = 38;
  Cycle lat_fmov = 6;
  Cycle lat_branch = 1;

  // The divide units are not pipelined: a second divide of the same kind
  // cannot start until the previous one finishes.
  bool fdiv_unpipelined = true;
  bool idiv_unpipelined = true;

  // Store commit: rate at which retired stores drain from the store buffer
  // into L1 (one per cycle through the single store port, shared between
  // the logical processors).
  // (implicit: 1/cycle via a global commit-port timestamp)

  // pause: de-pipelines the spin loop by stalling fetch of its context.
  Cycle pause_fetch_stall = 10;

  // halt/IPI transition costs (paper: "transitions are expensive in terms
  // of processor cycles").
  Cycle halt_enter_cost = 1500;
  Cycle halt_wake_cost = 2000;

  // Memory-order violation (machine clear) on spin-wait exit: penalty and
  // the detection window for "this thread recently loaded a different
  // value of a word the sibling just stored".
  Cycle machine_clear_penalty = 60;
  Cycle machine_clear_window = 60;

  // Event-skip fast-forward: when a whole cycle passes with no activity,
  // jump straight to the next scheduled event, bulk-accumulating the
  // per-cycle counters. Turning this off forces single-cycle stepping;
  // all performance counters must be bit-identical either way (the
  // equivalence is regression-tested), so this exists for those tests and
  // for debugging, not as a tuning knob.
  bool event_skip = true;

  // Abort the simulation if no context retires anything for this long
  // (deadlocked simulated synchronization).
  Cycle watchdog_cycles = 20'000'000;

  /// Result latency for a non-memory opcode under this config.
  Cycle latency(isa::Opcode op) const;
};

}  // namespace smt::cpu
