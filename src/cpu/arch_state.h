// Architectural (functional) state of one hardware context, and the
// functional interpreter that executes instructions at fetch time.
//
// The simulator is functional-first: instruction semantics (register
// values, memory contents, branch directions, effective addresses) are
// resolved when an instruction is fetched, and the out-of-order backend
// then replays the resulting uop stream purely for timing. This keeps the
// timing model simple while producing numerically correct kernel results
// that tests verify against host-side references.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"
#include "isa/instr.h"
#include "mem/sim_memory.h"

namespace smt::cpu {

struct ArchState {
  std::array<int64_t, isa::kNumIRegs> iregs{};
  std::array<double, isa::kNumFRegs> fregs{};
  uint32_t pc = 0;

  int64_t ireg(isa::IReg r) const { return iregs[static_cast<int>(r)]; }
  double freg(isa::FReg r) const { return fregs[static_cast<int>(r)]; }
  void set_ireg(isa::IReg r, int64_t v) { iregs[static_cast<int>(r)] = v; }
  void set_freg(isa::FReg r, double v) { fregs[static_cast<int>(r)] = v; }
};

/// Outcome of functionally executing one instruction.
struct ExecResult {
  uint32_t next_pc = 0;
  bool has_mem = false;   ///< load/store/prefetch/xchg touched memory
  Addr addr = 0;          ///< effective address if has_mem
  uint64_t loaded = 0;    ///< raw value read (loads/xchg), for spin detection
  bool taken = false;     ///< branch taken

  enum class Special : uint8_t { kNone, kPause, kHalt, kIpi, kExit };
  Special special = Special::kNone;
};

/// Executes `in` against `st`/`memory`, updating both. The caller advances
/// st.pc to the returned next_pc (kept separate so the fetch stage can
/// inspect control flow).
ExecResult exec_instr(const isa::Instr& in, ArchState& st,
                      mem::SimMemory& memory);

}  // namespace smt::cpu
