#include "cpu/core.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "trace/pipeview.h"
#include "trace/recorder.h"
#include "trace/sampler.h"

namespace smt::cpu {

using isa::Opcode;
using isa::UnitClass;
using perfmon::Event;

const char* name(IssuePort p) {
  switch (p) {
    case IssuePort::kAlu0:   return "alu0";
    case IssuePort::kAlu1:   return "alu1";
    case IssuePort::kFp:     return "fp";
    case IssuePort::kFpMove: return "fp_move";
    case IssuePort::kLoad:   return "load";
    case IssuePort::kStore:  return "store";
  }
  return "?";
}

const char* name(BlockReason r) {
  switch (r) {
    case BlockReason::kStoreBuffer:  return "store_buffer";
    case BlockReason::kRob:          return "rob";
    case BlockReason::kLoadQueue:    return "load_queue";
    case BlockReason::kUopQueueFull: return "uop_queue_full";
    case BlockReason::kPortConflict: return "port_conflict";
    case BlockReason::kDividerBusy:  return "divider_busy";
  }
  return "?";
}

const char* name(GuestAccess k) {
  switch (k) {
    case GuestAccess::kLoad:  return "load";
    case GuestAccess::kStore: return "store";
    case GuestAccess::kXchg:  return "xchg";
  }
  return "?";
}

const char* name(RunTermination t) {
  switch (t) {
    case RunTermination::kDone:                return "done";
    case RunTermination::kDeadlock:            return "deadlock";
    case RunTermination::kCycleBudgetExceeded: return "cycle_budget_exceeded";
    case RunTermination::kCancelled:           return "cancelled";
  }
  return "?";
}

const char* Core::mode_name(TMode m) {
  switch (m) {
    case TMode::kIdle:      return "idle";
    case TMode::kRunning:   return "running";
    case TMode::kHalting:   return "halting";
    case TMode::kEnterHalt: return "enter_halt";
    case TMode::kHalted:    return "halted";
    case TMode::kWaking:    return "waking";
    case TMode::kExiting:   return "exiting";
    case TMode::kDone:      return "done";
  }
  return "?";
}

Core::ThreadSnapshot Core::snapshot_thread(CpuId cpu) const {
  const Thread& t = threads_[idx(cpu)];
  ThreadSnapshot s;
  s.mode = mode_name(t.mode);
  s.next_pc = t.arch.pc;
  s.rob_occupancy = t.rob_occupancy();
  s.uq_occupancy = t.uq.size();
  s.lq_used = t.lq_used;
  s.sb_used = t.sb_used;
  s.ipi_pending = t.ipi_pending;
  return s;
}

Core::Core(const CoreConfig& cfg, mem::CacheHierarchy& hierarchy,
           mem::SimMemory& memory, perfmon::PerfCounters& counters)
    : cfg_(cfg), hier_(hierarchy), mem_(memory), ctr_(counters) {
  SMT_CHECK(cfg_.rob_size >= 2 && cfg_.uop_queue_size >= 2);
  SMT_CHECK(cfg_.load_queue_size >= 2 && cfg_.store_buffer_size >= 2);
  for (Thread& t : threads_) {
    t.rob.resize(cfg_.rob_size);
  }
}

void Core::load_program(CpuId cpu, const isa::Program& prog,
                        const ArchState& init) {
  Thread& t = threads_[idx(cpu)];
  SMT_CHECK_MSG(t.mode == TMode::kIdle, "context already has a program");
  SMT_CHECK_MSG(!prog.empty(), "empty program");
  t.prog = &prog;
  t.arch = init;
  t.arch.pc = 0;
  t.mode = TMode::kRunning;
}

bool Core::all_done() const {
  for (const Thread& t : threads_) {
    if (t.mode != TMode::kIdle && t.mode != TMode::kDone) return false;
  }
  return true;
}

bool Core::partitioned(CpuId cpu) const {
  return cfg_.static_partitioning && other_active(cpu);
}

bool Core::other_active(CpuId cpu) const {
  const Thread& o = threads_[idx(other(cpu))];
  switch (o.mode) {
    case TMode::kIdle:
    case TMode::kDone:
    case TMode::kHalted:
      return false;
    default:
      return true;
  }
}

int Core::rob_limit(CpuId cpu) const {
  return partitioned(cpu) ? cfg_.rob_size / 2 : cfg_.rob_size;
}
int Core::lq_limit(CpuId cpu) const {
  return partitioned(cpu) ? cfg_.load_queue_size / 2 : cfg_.load_queue_size;
}
int Core::sb_limit(CpuId cpu) const {
  return partitioned(cpu) ? cfg_.store_buffer_size / 2
                          : cfg_.store_buffer_size;
}
int Core::uq_limit(CpuId cpu) const {
  return partitioned(cpu) ? cfg_.uop_queue_size / 2 : cfg_.uop_queue_size;
}

int Core::sched_window_limit(CpuId cpu) const {
  // The scheduler queues are split between active contexts like the other
  // buffering structures; this is the partitioning that caps per-thread
  // lookahead (and thus per-thread IPC) in SMT mode.
  return partitioned(cpu) ? cfg_.sched_window / 2 : cfg_.sched_window;
}

bool Core::dep_ready(const Thread& t, uint64_t seq) const {
  if (seq < t.head) return true;  // already retired => result long available
  const RobEntry& e = t.rob[seq % cfg_.rob_size];
  return e.issued && e.done_at <= now_;
}

void Core::reclaim_store_buffer(Thread& t) {
  auto& v = t.sb_drain_free_at;
  for (size_t i = 0; i < v.size();) {
    if (v[i] <= now_) {
      v[i] = v.back();
      v.pop_back();
      --t.sb_used;
      SMT_DCHECK(t.sb_used >= 0);
    } else {
      ++i;
    }
  }
}

void Core::deliver_ipi(CpuId target) {
  Thread& t = threads_[idx(target)];
  ctr_.add(target, Event::kIpisReceived);
  // Sticky semantics: an IPI that arrives while the target is still on its
  // way into halt arms an immediate wake-up, so the sleep/wake protocol has
  // no lost-wakeup race.
  t.ipi_pending = true;
}

void Core::mirror_access_stats(CpuId cpu, const mem::AccessOutcome& out,
                               bool is_load, uint32_t pc) {
  if (out.served_by != mem::ServedBy::kL1) {
    ctr_.add(cpu, Event::kL1Misses);
    if (pipe_ != nullptr) pipe_->on_demand_miss(cpu, pc, out.l2_miss);
  }
  if (out.served_by == mem::ServedBy::kL2 ||
      out.served_by == mem::ServedBy::kMemory) {
    ctr_.add(cpu, Event::kL2Accesses);
  }
  if (out.l2_miss) {
    ctr_.add(cpu, Event::kL2Misses);
    if (is_load) ctr_.add(cpu, Event::kL2ReadMisses);
    if (trace_ != nullptr) trace_->on_l2_miss(cpu, now_);
  }
}

void Core::check_memory_order(Thread& t, CpuId cpu, Addr addr,
                              uint64_t value) {
  // Did this thread recently load a *different* value from this word?
  bool reloaded_changed = false;
  for (int i = 0; i < Thread::kRlSize; ++i) {
    const int p = (t.rl_pos - 1 - i + 2 * Thread::kRlSize) % Thread::kRlSize;
    if (!t.rl_valid[p]) break;
    if (t.rl_addr[p] == addr) {
      reloaded_changed = t.rl_val[p] != value;
      break;  // most recent observation decides
    }
  }
  if (reloaded_changed) {
    // ...and did the sibling store to it within the detection window?
    const Thread& o = threads_[idx(other(cpu))];
    const Cycle horizon =
        now_ > cfg_.machine_clear_window ? now_ - cfg_.machine_clear_window : 0;
    for (int i = 0; i < Thread::kRsSize; ++i) {
      if (o.rs_valid[i] && o.rs_addr[i] == addr && o.rs_cyc[i] >= horizon) {
        ctr_.add(cpu, Event::kMachineClears);
        t.fetch_stall_until =
            std::max(t.fetch_stall_until, now_ + cfg_.machine_clear_penalty);
        break;
      }
    }
  }
  t.rl_addr[t.rl_pos] = addr;
  t.rl_val[t.rl_pos] = value;
  t.rl_cyc[t.rl_pos] = now_;
  t.rl_valid[t.rl_pos] = true;
  t.rl_pos = (t.rl_pos + 1) % Thread::kRlSize;
}

// ---------------------------------------------------------------------------
// Stage 1: mode updates
// ---------------------------------------------------------------------------

void Core::update_modes(Thread& t, CpuId cpu) {
  switch (t.mode) {
    case TMode::kHalting:
      if (t.pipeline_empty()) {
        t.mode = TMode::kEnterHalt;
        t.mode_until = now_ + cfg_.halt_enter_cost;
        ctr_.add(cpu, Event::kHaltTransitions);
      }
      break;
    case TMode::kEnterHalt:
      if (now_ >= t.mode_until) {
        t.mode = TMode::kHalted;
      }
      break;
    case TMode::kHalted:
      if (t.ipi_pending) {
        t.ipi_pending = false;
        t.mode = TMode::kWaking;
        t.mode_until = now_ + cfg_.halt_wake_cost;
        if (trace_ != nullptr) trace_->on_ipi_wake(cpu, now_);
        if (pipe_ != nullptr) pipe_->on_ipi_wake(cpu);
      }
      break;
    case TMode::kWaking:
      if (now_ >= t.mode_until) {
        t.mode = TMode::kRunning;
        if (trace_ != nullptr) trace_->on_halt_exit(cpu, now_);
      }
      break;
    case TMode::kExiting:
      if (t.pipeline_empty()) t.mode = TMode::kDone;
      break;
    case TMode::kRunning:
      // An IPI to a running context stays pending (x86 semantics: a HLT
      // executed with an interrupt pending falls straight through). This
      // makes the sleep/wake barrier protocol free of lost-wakeup races.
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Stage 2: retire
// ---------------------------------------------------------------------------

int Core::retire_thread(Thread& t, CpuId cpu) {
  int retired = 0;
  while (retired < cfg_.retire_width && t.head != t.next) {
    RobEntry& e = t.rob[t.head % cfg_.rob_size];
    if (!e.issued || e.done_at > now_) break;
    const DynUop& u = e.uop;

    ctr_.add(cpu, Event::kInstrRetired);
    ctr_.add(cpu, Event::kUopsRetired, u.op == Opcode::kXchg ? 2 : 1);
    if (u.is_branch) ctr_.add(cpu, Event::kBranchesRetired);
    if (u.is_load && !u.is_prefetch) ctr_.add(cpu, Event::kLoadsRetired);
    if (u.is_store) ctr_.add(cpu, Event::kStoresRetired);
    if (u.is_prefetch) ctr_.add(cpu, Event::kPrefetchesRetired);
    switch (u.unit) {
      case UnitClass::kFpAdd:
      case UnitClass::kFpMul:
      case UnitClass::kFpDiv:
      case UnitClass::kFpMove:
        ctr_.add(cpu, Event::kFpUopsRetired);
        break;
      default:
        break;
    }

    if (u.is_load && !u.is_prefetch) {
      --t.lq_used;
      SMT_DCHECK(t.lq_used >= 0);
    }
    if (u.is_store) {
      // Begin draining through the shared L1 store-commit port.
      const Cycle start = std::max(now_, store_commit_port_free_);
      store_commit_port_free_ = start + 1;
      const mem::AccessOutcome out =
          hier_.access(u.addr, /*is_write=*/true, cpu, start, u.pc);
      mirror_access_stats(cpu, out, /*is_load=*/false, u.pc);
      t.sb_drain_free_at.push_back(std::max(out.ready, start + 1));
      // The store-buffer entry stays occupied until the drain completes.
    }

    if (observer_ != nullptr) observer_->on_retire(cpu, u);
    if (pipe_ != nullptr) {
      pipe_->on_retire_uop(cpu, u, u.op == Opcode::kXchg ? 2 : 1);
    }
    if (pview_ != nullptr) pview_->on_retire(cpu, u.uid, now_);

    ++t.head;
    ++retired;
  }
  return retired;
}

// ---------------------------------------------------------------------------
// Stage 3: issue / execute
// ---------------------------------------------------------------------------

bool Core::try_issue_one(Thread& t, CpuId cpu, int& budget) {
  if (budget <= 0) return false;
  const int window = sched_window_limit(cpu);
  int examined = 0;
  for (uint64_t seq = t.head; seq != t.next && examined < window;
       ++seq) {
    RobEntry& e = t.rob[seq % cfg_.rob_size];
    if (e.issued) continue;
    ++examined;

    bool ready = true;
    for (int d = 0; d < e.ndeps; ++d) {
      if (!dep_ready(t, e.dep[d])) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;

    // Structural check + reservation.
    const DynUop& u = e.uop;
    Cycle done = now_ + 1;
    IssuePort port = IssuePort::kAlu0;
    bool has_port = true;  // kNone uops take an issue slot but no port
    switch (u.unit) {
      case UnitClass::kAlu:
        if (cap_alu1_ > 0) {
          --cap_alu1_;
          port = IssuePort::kAlu1;
        } else if (cap_alu0_ > 0) {
          --cap_alu0_;
        } else {
          continue;
        }
        done = now_ + cfg_.latency(u.op);
        break;
      case UnitClass::kAlu0:
      case UnitClass::kBranch:
        if (cap_alu0_ <= 0) continue;
        --cap_alu0_;
        done = now_ + cfg_.latency(u.op);
        break;
      case UnitClass::kIntMul:
        // Integer multiplies execute in the FP complex unit on Netburst,
        // through the same single FP issue port.
        if (cap_fp_port_ <= 0) continue;
        --cap_fp_port_;
        port = IssuePort::kFp;
        done = now_ + cfg_.latency(u.op);
        break;
      case UnitClass::kIntDiv:
        // Integer divides execute in the FP complex unit (paper Table 1's
        // subunit mapping), through the same single FP issue port as
        // INT_MUL and the FP arithmetic units.
        if (cap_fp_port_ <= 0) continue;
        if (cfg_.idiv_unpipelined && idiv_busy_until_ > now_) continue;
        --cap_fp_port_;
        port = IssuePort::kFp;
        done = now_ + cfg_.latency(u.op);
        if (cfg_.idiv_unpipelined) {
          idiv_busy_until_ = done;
          idiv_owner_ = static_cast<int>(idx(cpu));
        }
        break;
      case UnitClass::kFpAdd:
      case UnitClass::kFpMul:
        if (cap_fp_port_ <= 0) continue;
        --cap_fp_port_;
        port = IssuePort::kFp;
        done = now_ + cfg_.latency(u.op);
        break;
      case UnitClass::kFpDiv:
        if (cap_fp_port_ <= 0) continue;
        if (cfg_.fdiv_unpipelined && fdiv_busy_until_ > now_) continue;
        --cap_fp_port_;
        port = IssuePort::kFp;
        done = now_ + cfg_.latency(u.op);
        if (cfg_.fdiv_unpipelined) {
          fdiv_busy_until_ = done;
          fdiv_owner_ = static_cast<int>(idx(cpu));
        }
        break;
      case UnitClass::kFpMove:
        if (cap_fpmov_ <= 0) continue;
        --cap_fpmov_;
        port = IssuePort::kFpMove;
        done = now_ + cfg_.latency(u.op);
        break;
      case UnitClass::kLoad: {
        if (cap_load_ <= 0) continue;
        --cap_load_;
        port = IssuePort::kLoad;
        if (u.is_prefetch) {
          hier_.prefetch(u.addr, u.prefetch_to_l1, cpu, now_);
          done = now_ + 1;  // fire-and-forget
        } else {
          const mem::AccessOutcome out =
              hier_.access(u.addr, /*is_write=*/false, cpu, now_, u.pc);
          mirror_access_stats(cpu, out, /*is_load=*/true, u.pc);
          done = out.ready;
        }
        break;
      }
      case UnitClass::kStore:
        // Store-address generation; the data commits at drain time.
        if (cap_store_ <= 0) continue;
        --cap_store_;
        port = IssuePort::kStore;
        done = now_ + 1;
        break;
      case UnitClass::kNone:
        has_port = false;
        done = now_ + 1;
        break;
    }

    e.issued = true;
    e.done_at = done;
    ctr_.add(cpu, Event::kIssuedUops);
    // Interference bookkeeping: who took which port this cycle (consumed
    // by scan_issue_blocks; simulation state is never read from these).
    ++uops_issued_[idx(cpu)];
    if (has_port) {
      ++port_issued_[idx(cpu)][static_cast<int>(port)];
    }
    if (pipe_ != nullptr && has_port) pipe_->on_issue(cpu, port, u.pc);
    if (pview_ != nullptr) {
      pview_->on_issue(cpu, u.uid, has_port ? static_cast<int>(port) : -1,
                       now_, done);
    }
    --budget;
    return true;
  }
  return false;
}

void Core::scan_issue_blocks() {
  // Attribution-only pass, run after the issue stage settles: for each
  // context, find the oldest dep-ready unissued uop still in the scheduler
  // window. It failed to issue this cycle, so it is blocked on structure —
  // either an unpipelined divider that is mid-operation, or a port taken by
  // other uops this cycle. Reads the same state try_issue_one reads and
  // writes only the Thread attribution fields, so the simulation itself is
  // unperturbed. In an event-skip window nothing issues and no divider or
  // dependency deadline expires mid-window, so the fields stay constant and
  // record_cycle_counters can replay them exactly over n cycles (a frozen
  // cycle leaves every cap full and port_issued_ all-zero, so the only
  // reachable block there is kDividerBusy — whose owner is also frozen).
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    Thread& t = threads_[i];
    const CpuId cpu = static_cast<CpuId>(i);
    const int sib = 1 - i;
    t.issue_blocked = false;
    const int window = sched_window_limit(cpu);
    int examined = 0;
    for (uint64_t seq = t.head; seq != t.next && examined < window; ++seq) {
      const RobEntry& e = t.rob[seq % cfg_.rob_size];
      if (e.issued) continue;
      ++examined;
      bool ready = true;
      for (int d = 0; d < e.ndeps; ++d) {
        if (!dep_ready(t, e.dep[d])) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      BlockReason reason = BlockReason::kPortConflict;
      bool sibling = false;
      int port = -1;
      if (e.uop.unit == UnitClass::kIntDiv && cap_fp_port_ > 0 &&
          cfg_.idiv_unpipelined && idiv_busy_until_ > now_) {
        reason = BlockReason::kDividerBusy;
        sibling = idiv_owner_ == sib;
      } else if (e.uop.unit == UnitClass::kFpDiv && cap_fp_port_ > 0 &&
                 cfg_.fdiv_unpipelined && fdiv_busy_until_ > now_) {
        reason = BlockReason::kDividerBusy;
        sibling = fdiv_owner_ == sib;
      } else {
        // Port conflict: name the exhausted candidate port, preferring
        // one the sibling actually issued onto this cycle; with no
        // candidate exhausted the uop lost to raw issue-width, blamed on
        // the sibling when it consumed any of the shared slots.
        int candidates[2];
        int ncand = 0;
        switch (e.uop.unit) {
          case UnitClass::kAlu:
            candidates[ncand++] = static_cast<int>(IssuePort::kAlu1);
            candidates[ncand++] = static_cast<int>(IssuePort::kAlu0);
            break;
          case UnitClass::kAlu0:
          case UnitClass::kBranch:
            candidates[ncand++] = static_cast<int>(IssuePort::kAlu0);
            break;
          case UnitClass::kIntMul:
          case UnitClass::kIntDiv:
          case UnitClass::kFpAdd:
          case UnitClass::kFpMul:
          case UnitClass::kFpDiv:
            candidates[ncand++] = static_cast<int>(IssuePort::kFp);
            break;
          case UnitClass::kFpMove:
            candidates[ncand++] = static_cast<int>(IssuePort::kFpMove);
            break;
          case UnitClass::kLoad:
            candidates[ncand++] = static_cast<int>(IssuePort::kLoad);
            break;
          case UnitClass::kStore:
            candidates[ncand++] = static_cast<int>(IssuePort::kStore);
            break;
          case UnitClass::kNone:
            break;  // consumed issue bandwidth only
        }
        const int caps[kNumIssuePorts] = {cap_alu0_, cap_alu1_, cap_fp_port_,
                                          cap_fpmov_, cap_load_, cap_store_};
        for (int c = 0; c < ncand && port < 0; ++c) {
          const int p = candidates[c];
          if (caps[p] <= 0 && port_issued_[sib][p] > 0) {
            port = p;
            sibling = true;
          }
        }
        for (int c = 0; c < ncand && port < 0; ++c) {
          const int p = candidates[c];
          if (caps[p] <= 0) port = p;  // exhausted by this context alone
        }
        if (port < 0) sibling = uops_issued_[sib] > 0;
      }
      t.issue_blocked = true;
      t.issue_block_reason = reason;
      t.issue_block_pc = e.uop.pc;
      t.issue_block_sibling = sibling;
      t.issue_block_port = port;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Stage 4: dispatch (allocation)
// ---------------------------------------------------------------------------

int Core::dispatch_thread(Thread& t, CpuId cpu) {
  reclaim_store_buffer(t);
  int dispatched = 0;
  t.stall = StallReason::kNone;
  while (dispatched < cfg_.dispatch_width && !t.uq.empty()) {
    const DynUop& u = t.uq.front();
    if (t.rob_occupancy() >= static_cast<size_t>(rob_limit(cpu))) {
      t.stall = StallReason::kRob;
      t.stall_pc = u.pc;
      t.stall_sibling = partitioned(cpu) &&
                        t.rob_occupancy() < static_cast<size_t>(cfg_.rob_size);
      break;
    }
    if (u.is_load && !u.is_prefetch && t.lq_used >= lq_limit(cpu)) {
      t.stall = StallReason::kLoadQueue;
      t.stall_pc = u.pc;
      t.stall_sibling = partitioned(cpu) && t.lq_used < cfg_.load_queue_size;
      break;
    }
    if (u.is_store && t.sb_used >= sb_limit(cpu)) {
      t.stall = StallReason::kStoreBuffer;
      t.stall_pc = u.pc;
      t.stall_sibling = partitioned(cpu) && t.sb_used < cfg_.store_buffer_size;
      break;
    }

    RobEntry& e = t.rob[t.next % cfg_.rob_size];
    e.uop = u;
    e.issued = false;
    e.done_at = 0;
    e.ndeps = 0;
    auto add_dep = [&](isa::RegId r) {
      if (r == isa::kNoReg) return;
      const uint64_t w = t.last_writer[r];
      if (w == 0 || w - 1 < t.head) return;  // no in-flight producer
      const uint64_t seq = w - 1;
      for (int d = 0; d < e.ndeps; ++d) {
        if (e.dep[d] == seq) return;
      }
      SMT_DCHECK(e.ndeps < 4);
      e.dep[e.ndeps++] = seq;
    };
    // RAW dependences only: the physical register file is large enough to
    // rename away WAW/WAR (128 entries on Netburst), so a destination
    // conflict never delays issue. The paper's |T|-register ILP
    // construction still serializes because its accumulations read their
    // target (t = t op s).
    for (int i = 0; i < u.ndep_regs; ++i) add_dep(u.dep_regs[i]);

    if (u.dst != isa::kNoReg) t.last_writer[u.dst] = t.next + 1;
    if (u.is_load && !u.is_prefetch) ++t.lq_used;
    if (u.is_store) ++t.sb_used;

    ++t.next;
    t.uq.pop_front();
    ++dispatched;
    ctr_.add(cpu, Event::kDispatchedUops);
    if (pview_ != nullptr) pview_->on_dispatch(cpu, e.uop.uid, now_);
  }
  return dispatched;
}

// ---------------------------------------------------------------------------
// Stage 5: fetch (functional execution)
// ---------------------------------------------------------------------------

int Core::fetch_thread(Thread& t, CpuId cpu) {
  int fetched = 0;
  while (fetched < cfg_.fetch_width &&
         t.uq.size() < static_cast<size_t>(uq_limit(cpu))) {
    SMT_DCHECK(t.arch.pc < t.prog->size());
    const isa::Instr& in = t.prog->at(t.arch.pc);
    const ExecResult r = exec_instr(in, t.arch, mem_);
    t.arch.pc = r.next_pc;

    if (r.special == ExecResult::Special::kExit) {
      t.mode = TMode::kExiting;
      break;
    }

    DynUop u;
    u.uid = uop_uid_next_++;
    u.pc = static_cast<uint32_t>(&in - t.prog->code().data());
    u.op = in.op;
    u.unit = isa::unit_class(in.op);
    u.is_branch = in.is_branch();
    u.is_load = in.is_load() && in.op != Opcode::kPrefetch;
    u.is_store = in.is_store();
    u.is_prefetch = in.op == Opcode::kPrefetch;
    u.prefetch_to_l1 = u.is_prefetch && in.imm != 0;
    u.addr = r.addr;
    if (isa::traits(in.op).writes_reg) u.dst = in.rd;

    auto add_dep_reg = [&u](isa::RegId reg) {
      if (reg == isa::kNoReg) return;
      SMT_DCHECK(u.ndep_regs < 4);
      u.dep_regs[u.ndep_regs++] = reg;
    };
    if (in.op != Opcode::kIMovImm && in.op != Opcode::kFMovImm) {
      add_dep_reg(in.rs1);
    }
    if (!in.use_imm && in.rs2 != isa::kNoReg) add_dep_reg(in.rs2);
    if (in.is_mem()) {
      add_dep_reg(in.mem.base);
      add_dep_reg(in.mem.index);
    }

    // Telemetry watchpoints on annotated sync words (barrier flags, lock
    // words): observed at functional-execution time, when the stored /
    // exchanged value is known. Pure observation — no simulation state or
    // counter is touched.
    if (trace_ != nullptr && u.is_store && trace_->watches(r.addr)) {
      if (in.op == Opcode::kXchg) {
        trace_->on_xchg(cpu, r.addr, r.loaded, now_);
      } else {
        trace_->on_store(cpu, r.addr, mem_.read_u64(r.addr), now_);
      }
    }

    // Guest-access observer hook (happens-before race detection): raised
    // here because functional execution at fetch time makes the call
    // sequence an exact sequentially consistent interleaving of both
    // contexts' accesses. Read-only, like the telemetry watchpoints.
    if (pipe_ != nullptr && (u.is_load || u.is_store) && !u.is_prefetch) {
      const GuestAccess kind = in.op == Opcode::kXchg ? GuestAccess::kXchg
                               : u.is_store           ? GuestAccess::kStore
                                                      : GuestAccess::kLoad;
      const uint64_t value =
          kind == GuestAccess::kStore ? mem_.read_u64(r.addr) : r.loaded;
      pipe_->on_guest_access(cpu, u.pc, r.addr, kind, value);
    }

    // Memory-order-violation (spin-exit) modelling.
    if (u.is_load) check_memory_order(t, cpu, r.addr, r.loaded);
    if (u.is_store) {
      t.rs_addr[t.rs_pos] = r.addr;
      t.rs_cyc[t.rs_pos] = now_;
      t.rs_valid[t.rs_pos] = true;
      t.rs_pos = (t.rs_pos + 1) % Thread::kRsSize;
    }

    t.uq.push_back(u);
    ++fetched;
    if (pview_ != nullptr) pview_->on_fetch(cpu, u.uid, u.pc, now_);

    switch (r.special) {
      case ExecResult::Special::kPause:
        ctr_.add(cpu, Event::kPausesExecuted);
        t.fetch_stall_until =
            std::max(t.fetch_stall_until, now_ + cfg_.pause_fetch_stall);
        return fetched;
      case ExecResult::Special::kHalt:
        t.mode = TMode::kHalting;
        if (trace_ != nullptr) trace_->on_halt_enter(cpu, now_);
        return fetched;
      case ExecResult::Special::kIpi:
        ctr_.add(cpu, Event::kIpisSent);
        if (trace_ != nullptr) trace_->on_ipi_send(cpu, now_);
        if (pipe_ != nullptr) pipe_->on_ipi_send(cpu);
        deliver_ipi(other(cpu));
        break;
      default:
        break;
    }
  }
  return fetched;
}

// ---------------------------------------------------------------------------
// One cycle
// ---------------------------------------------------------------------------

bool Core::step_cycle() {
  bool any = false;

  for (int i = 0; i < kNumLogicalCpus; ++i) {
    Thread& t = threads_[i];
    const TMode before = t.mode;
    update_modes(t, static_cast<CpuId>(i));
    if (t.mode != before) any = true;
  }

  // Retire: one context per cycle, alternating; a context with nothing
  // retirable donates the slot.
  {
    const int pref = static_cast<int>(now_ % 2);
    for (int k = 0; k < 2; ++k) {
      const int ti = (pref + k) % 2;
      Thread& t = threads_[ti];
      if (t.head == t.next) continue;
      const RobEntry& h = t.rob[t.head % cfg_.rob_size];
      if (!h.issued || h.done_at > now_) continue;
      const int n = retire_thread(t, static_cast<CpuId>(ti));
      if (n > 0) {
        any = true;
        last_retire_cycle_ = now_;
      }
      break;  // retirement bandwidth belongs to one context per cycle
    }
  }

  // Issue: shared ports, round-robin starting with the preferred context.
  cap_alu0_ = cfg_.alu0_per_cycle;
  cap_alu1_ = cfg_.alu1_per_cycle;
  cap_fp_port_ = 1;
  cap_fpmov_ = 1;
  cap_load_ = 1;
  cap_store_ = 1;
  port_issued_ = {};
  uops_issued_ = {};
  {
    int budget = cfg_.issue_width;
    bool progress = true;
    while (progress && budget > 0) {
      progress = false;
      for (int k = 0; k < 2 && budget > 0; ++k) {
        // Round-robin arbitration: after a thread issues, the sibling gets
        // the next chance. (Cycle-parity priority would starve one thread
        // whenever an unpipelined unit's latency is even: the unit would
        // free on same-parity cycles forever.)
        const int ti = (issue_pref_ + k) % 2;
        if (try_issue_one(threads_[ti], static_cast<CpuId>(ti), budget)) {
          progress = true;
          any = true;
          issue_pref_ = 1 - ti;
        }
      }
    }
  }
  // Attribution-only: find which PC (if any) is issue-blocked this cycle.
  // Must run after the issue stage so the result reflects final port state.
  if (pipe_ != nullptr && pipe_->wants_issue_blocks()) scan_issue_blocks();

  // Dispatch: the allocator serves one context per cycle (alternating); a
  // context that has nothing queued — or whose next uop cannot allocate
  // (resources full) — donates the slot to its sibling.
  {
    auto can_dispatch_one = [this](int i) {
      Thread& t = threads_[i];
      if (t.uq.empty()) return false;
      reclaim_store_buffer(t);
      const DynUop& u = t.uq.front();
      const CpuId cpu = static_cast<CpuId>(i);
      if (t.rob_occupancy() >= static_cast<size_t>(rob_limit(cpu))) {
        return false;
      }
      if (u.is_load && !u.is_prefetch && t.lq_used >= lq_limit(cpu)) {
        return false;
      }
      if (u.is_store && t.sb_used >= sb_limit(cpu)) return false;
      return true;
    };
    const int pref = static_cast<int>(now_ % 2);
    const int ti = can_dispatch_one(pref)        ? pref
                   : can_dispatch_one(1 - pref)  ? 1 - pref
                                                 : -1;
    if (ti >= 0) {
      if (dispatch_thread(threads_[ti], static_cast<CpuId>(ti)) > 0) {
        any = true;
      }
    }
    // Record resource blockage for both contexts (for stall accounting),
    // including the one not served this cycle.
    for (int i = 0; i < kNumLogicalCpus; ++i) {
      if (i == ti) continue;
      Thread& t = threads_[i];
      t.stall = StallReason::kNone;
      if (t.uq.empty()) continue;
      reclaim_store_buffer(t);
      const DynUop& u = t.uq.front();
      const CpuId cpu = static_cast<CpuId>(i);
      if (t.rob_occupancy() >= static_cast<size_t>(rob_limit(cpu))) {
        t.stall = StallReason::kRob;
        t.stall_pc = u.pc;
        t.stall_sibling =
            partitioned(cpu) &&
            t.rob_occupancy() < static_cast<size_t>(cfg_.rob_size);
      } else if (u.is_load && !u.is_prefetch && t.lq_used >= lq_limit(cpu)) {
        t.stall = StallReason::kLoadQueue;
        t.stall_pc = u.pc;
        t.stall_sibling = partitioned(cpu) && t.lq_used < cfg_.load_queue_size;
      } else if (u.is_store && t.sb_used >= sb_limit(cpu)) {
        t.stall = StallReason::kStoreBuffer;
        t.stall_pc = u.pc;
        t.stall_sibling =
            partitioned(cpu) && t.sb_used < cfg_.store_buffer_size;
      }
    }
  }

  // Fetch: one context per cycle (alternating), donated when blocked.
  {
    const int pref = static_cast<int>(now_ % 2);
    for (int i = 0; i < kNumLogicalCpus; ++i) threads_[i].uq_full = false;
    for (int k = 0; k < 2; ++k) {
      const int ti = (pref + k) % 2;
      Thread& t = threads_[ti];
      if (t.mode != TMode::kRunning) continue;
      if (t.fetch_stall_until > now_) continue;
      if (t.uq.size() >= static_cast<size_t>(uq_limit(static_cast<CpuId>(ti)))) {
        // The slot is donated; the cycle is attributed to
        // kUopQueueFullCycles in record_cycle_counters so the count
        // replays exactly across event-skip windows.
        t.uq_full = true;
        t.uq_full_pc = t.arch.pc;
        t.uq_full_sibling =
            partitioned(static_cast<CpuId>(ti)) &&
            t.uq.size() < static_cast<size_t>(cfg_.uop_queue_size);
        continue;
      }
      const TMode mode_before = t.mode;
      if (fetch_thread(t, static_cast<CpuId>(ti)) > 0 ||
          t.mode != mode_before) {
        any = true;  // a fetched uop, or an exit/halt mode transition
      }
      break;  // fetch bandwidth belongs to one context per cycle
    }
  }

  record_cycle_counters(now_, 1);
  return any;
}

void Core::record_cycle_counters(Cycle first, Cycle n) {
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const Thread& t = threads_[i];
    const CpuId cpu = static_cast<CpuId>(i);
    switch (t.mode) {
      case TMode::kRunning:
      case TMode::kHalting:
      case TMode::kEnterHalt:
      case TMode::kExiting:
        ctr_.add(cpu, Event::kCyclesActive, n);
        break;
      case TMode::kHalted:
      case TMode::kWaking:
        ctr_.add(cpu, Event::kCyclesHalted, n);
        break;
      default:
        break;
    }
    if (t.mode == TMode::kRunning && t.fetch_stall_until > first) {
      // Count only the cycles of [first, first+n) the stall covers. (For a
      // skipped window the stall in fact covers all of it — fetch_stall_until
      // is a next-event candidate — but clamping keeps the math exact by
      // construction rather than by that invariant.)
      ctr_.add(cpu, Event::kFetchStallCycles,
               std::min(t.fetch_stall_until, first + n) - first);
    }
    if (t.mode == TMode::kRunning && t.uq_full) {
      ctr_.add(cpu, Event::kUopQueueFullCycles, n);
      if (pipe_ != nullptr) {
        pipe_->on_block(cpu, BlockReason::kUopQueueFull, t.uq_full_pc, n);
        pipe_->on_interference(cpu, BlockReason::kUopQueueFull,
                               t.uq_full_sibling, -1, n);
      }
    }
    switch (t.stall) {
      case StallReason::kRob:
        ctr_.add(cpu, Event::kResourceStallCycles, n);
        ctr_.add(cpu, Event::kRobStallCycles, n);
        if (pipe_ != nullptr) {
          pipe_->on_block(cpu, BlockReason::kRob, t.stall_pc, n);
          pipe_->on_interference(cpu, BlockReason::kRob, t.stall_sibling, -1,
                                 n);
        }
        break;
      case StallReason::kLoadQueue:
        ctr_.add(cpu, Event::kResourceStallCycles, n);
        ctr_.add(cpu, Event::kLoadQueueStallCycles, n);
        if (pipe_ != nullptr) {
          pipe_->on_block(cpu, BlockReason::kLoadQueue, t.stall_pc, n);
          pipe_->on_interference(cpu, BlockReason::kLoadQueue,
                                 t.stall_sibling, -1, n);
        }
        break;
      case StallReason::kStoreBuffer:
        ctr_.add(cpu, Event::kResourceStallCycles, n);
        ctr_.add(cpu, Event::kStoreBufferStallCycles, n);
        if (pipe_ != nullptr) {
          pipe_->on_block(cpu, BlockReason::kStoreBuffer, t.stall_pc, n);
          pipe_->on_interference(cpu, BlockReason::kStoreBuffer,
                                 t.stall_sibling, -1, n);
        }
        break;
      default:
        break;
    }
    if (pipe_ != nullptr && t.issue_blocked) {
      pipe_->on_block(cpu, t.issue_block_reason, t.issue_block_pc, n);
      pipe_->on_interference(cpu, t.issue_block_reason, t.issue_block_sibling,
                             t.issue_block_port, n);
    }
  }
}

void Core::sample_up_to(Cycle t) {
  while (sampler_ != nullptr && sampler_->next_boundary() <= t) {
    sampler_->on_boundary(sampler_->next_boundary());
  }
}

void Core::record_skipped_window(Cycle first, Cycle n) {
  if (sampler_ == nullptr) {
    record_cycle_counters(first, n);
    return;
  }
  // Chunk the bulk accumulation at sampling boundaries. Within a skipped
  // window every per-cycle predicate is constant and record_cycle_counters
  // is linear in n, so the split is exact: each sampling window sees
  // precisely the cycles it covers, bit-identical to single-stepping.
  const Cycle end = first + n;
  Cycle cur = first;
  while (cur < end) {
    sample_up_to(cur);  // a boundary may fall exactly on the chunk start
    Cycle stop = end;
    const Cycle b = sampler_->next_boundary();
    if (b < stop) stop = b;
    record_cycle_counters(cur, stop - cur);
    cur = stop;
  }
  sample_up_to(end);  // ... or on the very end of the skipped range
}

Cycle Core::next_event_cycle() const {
  Cycle cand = std::numeric_limits<Cycle>::max();
  auto consider = [&cand, this](Cycle c) {
    if (c > now_ && c < cand) cand = c;
  };
  for (const Thread& t : threads_) {
    switch (t.mode) {
      case TMode::kEnterHalt:
      case TMode::kWaking:
        consider(t.mode_until);
        break;
      case TMode::kRunning:
        consider(t.fetch_stall_until);
        break;
      default:
        break;
    }
    for (uint64_t seq = t.head; seq != t.next; ++seq) {
      const RobEntry& e = t.rob[seq % cfg_.rob_size];
      if (e.issued && e.done_at > now_) consider(e.done_at);
    }
    for (const Cycle c : t.sb_drain_free_at) consider(c);
  }
  consider(fdiv_busy_until_);
  consider(idiv_busy_until_);
  return cand;
}

namespace {

// The abort/report texts shared by run() and try_run(); run()'s SMT_CHECK
// messages are the historical strings death tests match against.
constexpr const char* kDeadlockAsleepMsg =
    "no future event: all contexts asleep (lost wake-up?)";
constexpr const char* kDeadlockWatchdogMsg =
    "watchdog: no retirement progress (deadlocked sync?)";
constexpr const char* kMaxCyclesMsg = "max_cycles exceeded";

// try_run polls the host cancel predicate once per this many run-loop
// iterations — rare enough to stay off the hot path, frequent enough
// (each iteration advances at least one cycle) for a sweep watchdog.
constexpr uint64_t kCancelPollPeriod = 4096;

}  // namespace

RunResult Core::try_run(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  last_retire_cycle_ = now_;
  uint64_t iter = 0;
  while (!all_done()) {
    if (cancel_ && (++iter % kCancelPollPeriod) == 0 && cancel_()) {
      return {RunTermination::kCancelled, "cancelled by host watchdog"};
    }
    const bool any = step_cycle();
    if (!any && cfg_.event_skip) {
      const Cycle next = next_event_cycle();
      if (next == kNoFutureEvent) {
        return {RunTermination::kDeadlock, kDeadlockAsleepMsg};
      }
      if (next > now_ + 1) {
        record_skipped_window(now_ + 1, next - now_ - 1);
        now_ = next;
        continue;
      }
    }
    ++now_;
    sample_up_to(now_);
    if (now_ - last_retire_cycle_ >= cfg_.watchdog_cycles) {
      return {RunTermination::kDeadlock, kDeadlockWatchdogMsg};
    }
    if (now_ >= deadline) {
      return {RunTermination::kCycleBudgetExceeded, kMaxCyclesMsg};
    }
  }
  return {};
}

void Core::run(Cycle max_cycles) {
  const RunResult r = try_run(max_cycles);
  SMT_CHECK_MSG(r.ok(), r.message.c_str());
}

CpuId Core::run_until_any_done(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  last_retire_cycle_ = now_;
  while (true) {
    for (int i = 0; i < kNumLogicalCpus; ++i) {
      if (threads_[i].prog != nullptr && threads_[i].mode == TMode::kDone) {
        return static_cast<CpuId>(i);
      }
    }
    const bool any = step_cycle();
    if (!any && cfg_.event_skip) {
      const Cycle next = next_event_cycle();
      SMT_CHECK_MSG(next != kNoFutureEvent, kDeadlockAsleepMsg);
      if (next > now_ + 1) {
        record_skipped_window(now_ + 1, next - now_ - 1);
        now_ = next;
        continue;
      }
    }
    ++now_;
    sample_up_to(now_);
    SMT_CHECK_MSG(now_ - last_retire_cycle_ < cfg_.watchdog_cycles,
                  kDeadlockWatchdogMsg);
    SMT_CHECK_MSG(now_ < deadline, kMaxCyclesMsg);
  }
}

}  // namespace smt::cpu
