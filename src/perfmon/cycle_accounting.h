// Top-down cycle accounting per logical CPU, in the style of analytic
// ECM-like models: every wall cycle of a run is attributed to a state
// (halted / idle / active) and active cycles are further split by what
// limited progress (frontend fetch stalls vs. allocator resource stalls by
// blocking structure), with a memory-bound vs. issue-bound classification
// of the resource stalls.
//
// The breakdown is purely derived from a perfmon::Snapshot plus the run's
// wall-cycle count, so it can be computed over any counter interval
// (snapshot deltas bracket a kernel phase exactly like the paper's
// counter methodology). The producing core guarantees these counters are
// exact under event-skip fast-forward (see cpu::Core::record_cycle_counters),
// which is what makes this attribution trustworthy.
//
// Taxonomy (documented in DESIGN.md §7):
//   total            wall cycles of the interval
//   halted           cycles asleep in the halt state (incl. waking)
//   active           cycles the context was not halted and had a program
//   idle             total - active - halted (before binding / after exit)
//   fetch_stalled    frontend stalled: pause de-pipelining / machine clear
//   resource_stalled allocator blocked on a full buffering structure,
//                    split into rob / load_queue / store_buffer
//   uop_queue_full   frontend had uops but the uop queue was full
//   memory_bound     load_queue + store_buffer stalls (waiting on the
//                    memory system to drain/complete)
//   issue_bound      rob stalls (retirement/issue could not keep up)
//   flowing          active - fetch_stalled - resource_stalled, clamped at
//                    zero; the categories are counted independently per
//                    cycle and can overlap, so `flowing` is a lower bound
//                    on unobstructed cycles.
#pragma once

#include <array>
#include <string>

#include "common/types.h"
#include "perfmon/counters.h"

namespace smt::perfmon {

struct CpuCycleBreakdown {
  uint64_t total = 0;
  uint64_t active = 0;
  uint64_t halted = 0;
  uint64_t idle = 0;
  uint64_t fetch_stalled = 0;
  uint64_t resource_stalled = 0;
  uint64_t stall_rob = 0;
  uint64_t stall_load_queue = 0;
  uint64_t stall_store_buffer = 0;
  uint64_t uop_queue_full = 0;
  uint64_t memory_bound = 0;
  uint64_t issue_bound = 0;
  uint64_t flowing = 0;

  // Derived rates over the same interval.
  uint64_t instr_retired = 0;
  uint64_t uops_retired = 0;
  double cpi = 0.0;             ///< active cycles per retired instruction
  double ipc = 0.0;             ///< retired instructions per active cycle
  double uops_per_cycle = 0.0;  ///< retired uops per active cycle
};

struct CycleAccounting {
  std::array<CpuCycleBreakdown, kNumLogicalCpus> cpu;
};

/// Derives the per-CPU breakdown from `events` over an interval of
/// `total_cycles` wall cycles.
CycleAccounting account_cycles(const Snapshot& events, Cycle total_cycles);

/// Aligned two-column (cpu0/cpu1) text rendering with percentages of the
/// wall interval.
std::string to_table(const CycleAccounting& acc);

}  // namespace smt::perfmon
