#include "perfmon/counters.h"

#include <cstdio>

#include "common/check.h"

namespace smt::perfmon {

namespace {
constexpr const char* kEventNames[kNumEventValues] = {
    "cycles_active",
    "cycles_halted",
    "instr_retired",
    "uops_retired",
    "branches_retired",
    "loads_retired",
    "stores_retired",
    "fp_uops_retired",
    "prefetches_retired",
    "l1_misses",
    "l2_accesses",
    "l2_misses",
    "l2_read_misses",
    "resource_stall_cycles",
    "store_buffer_stall_cycles",
    "rob_stall_cycles",
    "load_queue_stall_cycles",
    "fetch_stall_cycles",
    "uop_queue_full_cycles",
    "dispatched_uops",
    "issued_uops",
    "machine_clears",
    "pauses_executed",
    "halt_transitions",
    "ipis_sent",
    "ipis_received",
};
}  // namespace

const char* name(Event e) {
  const auto i = static_cast<size_t>(e);
  SMT_DCHECK(i < static_cast<size_t>(kNumEventValues));
  return kEventNames[i];
}

Snapshot Snapshot::operator-(const Snapshot& rhs) const {
  Snapshot out;
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    for (int e = 0; e < kNumEventValues; ++e) {
      // Counters are monotone, so later - earlier can never go negative.
      // A violation means the operands are swapped (interval math with
      // begin/end reversed) and would silently wrap to a huge uint64;
      // fail loudly instead, in release builds too.
      SMT_CHECK_MSG(v[c][e] >= rhs.v[c][e],
                    "Snapshot subtraction underflow (operands swapped?)");
      out.v[c][e] = v[c][e] - rhs.v[c][e];
    }
  }
  return out;
}

double PerfCounters::cpi(CpuId cpu) const {
  const uint64_t instr = get(cpu, Event::kInstrRetired);
  const uint64_t active = get(cpu, Event::kCyclesActive);
  // A context that retired nothing (or never ran) has no meaningful CPI;
  // report an explicit 0.0 rather than dividing by zero.
  if (instr == 0 || active == 0) return 0.0;
  return static_cast<double>(active) / static_cast<double>(instr);
}

std::string PerfCounters::to_string() const {
  std::string out;
  char buf[128];
  for (int e = 0; e < kNumEventValues; ++e) {
    const uint64_t a = v_[0][e];
    const uint64_t b = v_[1][e];
    if (a == 0 && b == 0) continue;
    std::snprintf(buf, sizeof buf, "%-28s cpu0=%-14llu cpu1=%llu\n",
                  kEventNames[e], static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    out += buf;
  }
  return out;
}

}  // namespace smt::perfmon
