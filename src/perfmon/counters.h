// Per-logical-CPU event accumulation, snapshots and derived metrics.
#pragma once

#include <array>
#include <string>

#include "common/types.h"
#include "perfmon/events.h"

namespace smt::perfmon {

/// Immutable copy of all counters at one instant; subtraction yields the
/// events in an interval, the way the paper brackets each kernel phase.
struct Snapshot {
  std::array<std::array<uint64_t, kNumEventValues>, kNumLogicalCpus> v{};

  uint64_t get(CpuId cpu, Event e) const {
    return v[idx(cpu)][static_cast<int>(e)];
  }
  uint64_t total(Event e) const {
    uint64_t t = 0;
    for (const auto& cpu : v) t += cpu[static_cast<int>(e)];
    return t;
  }
  Snapshot operator-(const Snapshot& rhs) const;
};

class PerfCounters {
 public:
  void add(CpuId cpu, Event e, uint64_t n = 1) {
    v_[idx(cpu)][static_cast<int>(e)] += n;
  }

  uint64_t get(CpuId cpu, Event e) const {
    return v_[idx(cpu)][static_cast<int>(e)];
  }

  uint64_t total(Event e) const {
    uint64_t t = 0;
    for (const auto& cpu : v_) t += cpu[static_cast<int>(e)];
    return t;
  }

  void reset() { v_ = {}; }

  Snapshot snapshot() const {
    Snapshot s;
    s.v = v_;
    return s;
  }

  /// Cycles-per-instruction of one context over its active cycles.
  /// Explicitly 0.0 when the context retired no instructions or logged
  /// no active cycles (never a division by zero).
  double cpi(CpuId cpu) const;

  /// Multi-line human-readable dump of all nonzero events.
  std::string to_string() const;

 private:
  std::array<std::array<uint64_t, kNumEventValues>, kNumLogicalCpus> v_{};
};

}  // namespace smt::perfmon
