#include "perfmon/cycle_accounting.h"

#include <cstdio>

#include "common/table.h"

namespace smt::perfmon {

namespace {

CpuCycleBreakdown account_cpu(const Snapshot& s, CpuId cpu,
                              Cycle total_cycles) {
  CpuCycleBreakdown b;
  b.total = total_cycles;
  b.active = s.get(cpu, Event::kCyclesActive);
  b.halted = s.get(cpu, Event::kCyclesHalted);
  const uint64_t accounted = b.active + b.halted;
  b.idle = total_cycles > accounted ? total_cycles - accounted : 0;

  b.fetch_stalled = s.get(cpu, Event::kFetchStallCycles);
  b.resource_stalled = s.get(cpu, Event::kResourceStallCycles);
  b.stall_rob = s.get(cpu, Event::kRobStallCycles);
  b.stall_load_queue = s.get(cpu, Event::kLoadQueueStallCycles);
  b.stall_store_buffer = s.get(cpu, Event::kStoreBufferStallCycles);
  b.uop_queue_full = s.get(cpu, Event::kUopQueueFullCycles);

  b.memory_bound = b.stall_load_queue + b.stall_store_buffer;
  b.issue_bound = b.stall_rob;
  const uint64_t stalled = b.fetch_stalled + b.resource_stalled;
  b.flowing = b.active > stalled ? b.active - stalled : 0;

  b.instr_retired = s.get(cpu, Event::kInstrRetired);
  b.uops_retired = s.get(cpu, Event::kUopsRetired);
  if (b.active > 0) {
    b.ipc = static_cast<double>(b.instr_retired) / static_cast<double>(b.active);
    b.uops_per_cycle =
        static_cast<double>(b.uops_retired) / static_cast<double>(b.active);
  }
  if (b.instr_retired > 0) {
    b.cpi = static_cast<double>(b.active) / static_cast<double>(b.instr_retired);
  }
  return b;
}

}  // namespace

CycleAccounting account_cycles(const Snapshot& events, Cycle total_cycles) {
  CycleAccounting acc;
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    acc.cpu[i] = account_cpu(events, static_cast<CpuId>(i), total_cycles);
  }
  return acc;
}

std::string to_table(const CycleAccounting& acc) {
  TextTable t({"cycle accounting", "cpu0", "%", "cpu1", "%"});
  const double wall =
      acc.cpu[0].total > 0 ? static_cast<double>(acc.cpu[0].total) : 1.0;
  auto row = [&](const char* label, uint64_t a, uint64_t b) {
    t.add_row({label, fmt_count(a), fmt(100.0 * a / wall, 1),
               fmt_count(b), fmt(100.0 * b / wall, 1)});
  };
  const CpuCycleBreakdown& c0 = acc.cpu[0];
  const CpuCycleBreakdown& c1 = acc.cpu[1];
  row("total (wall)", c0.total, c1.total);
  row("active", c0.active, c1.active);
  row("halted", c0.halted, c1.halted);
  row("idle", c0.idle, c1.idle);
  row("fetch stalled", c0.fetch_stalled, c1.fetch_stalled);
  row("resource stalled", c0.resource_stalled, c1.resource_stalled);
  row(".. rob", c0.stall_rob, c1.stall_rob);
  row(".. load queue", c0.stall_load_queue, c1.stall_load_queue);
  row(".. store buffer", c0.stall_store_buffer, c1.stall_store_buffer);
  row("uop queue full", c0.uop_queue_full, c1.uop_queue_full);
  row("memory bound", c0.memory_bound, c1.memory_bound);
  row("issue bound", c0.issue_bound, c1.issue_bound);
  row("flowing", c0.flowing, c1.flowing);
  std::string out = t.to_string();
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "cpi %.3f / %.3f   ipc %.3f / %.3f   uops/cyc %.3f / %.3f\n",
                c0.cpi, c1.cpi, c0.ipc, c1.ipc, c0.uops_per_cycle,
                c1.uops_per_cycle);
  out += buf;
  return out;
}

}  // namespace smt::perfmon
