// Performance-monitoring event set.
//
// The paper extends Intel's HT-aware performance counters with a small
// custom user-space library and reports three headline events per logical
// processor: L2 read misses as seen by the bus unit, resource stall cycles
// in the allocator waiting for store-buffer entries, and retired uops.
// This module is the analogue: the simulator core raises these events with
// logical-CPU qualification and PerfCounters accumulates them.
#pragma once

#include <cstdint>

namespace smt::perfmon {

enum class Event : uint8_t {
  // Time
  kCyclesActive,          ///< cycles this context was not halted
  kCyclesHalted,          ///< cycles spent in the halt sleep state
  // Retirement
  kInstrRetired,
  kUopsRetired,
  kBranchesRetired,
  kLoadsRetired,
  kStoresRetired,
  kFpUopsRetired,
  kPrefetchesRetired,
  // Memory system (demand accesses by this logical CPU)
  kL1Misses,
  kL2Accesses,
  kL2Misses,              ///< loads + store RFOs missing L2
  kL2ReadMisses,          ///< the paper's "L2 misses seen by the bus unit"
  // Allocator stalls (counted once per stalled cycle, by blocking reason
  // of the oldest blocked uop)
  kResourceStallCycles,   ///< any allocator stall
  kStoreBufferStallCycles,///< the paper's "resource stall cycles" metric
  kRobStallCycles,
  kLoadQueueStallCycles,
  // Frontend
  kFetchStallCycles,      ///< pause / machine-clear / uop-queue-full
  kUopQueueFullCycles,
  kDispatchedUops,
  kIssuedUops,
  // SMT-specific
  kMachineClears,         ///< memory-order violations (spin-loop exits)
  kPausesExecuted,
  kHaltTransitions,
  kIpisSent,
  kIpisReceived,
  kNumEvents,
};

inline constexpr int kNumEventValues = static_cast<int>(Event::kNumEvents);

const char* name(Event e);

}  // namespace smt::perfmon
