// A finalized program: a flat vector of instructions plus metadata.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "isa/instr.h"

namespace smt::isa {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  const Instr& at(size_t pc) const {
    SMT_DCHECK(pc < code_.size());
    return code_[pc];
  }

  const std::vector<Instr>& code() const { return code_; }

 private:
  std::string name_;
  std::vector<Instr> code_;
};

}  // namespace smt::isa
