// A finalized program: a flat vector of instructions plus metadata.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "isa/instr.h"

namespace smt::isa {

/// Emitter-declared register discipline over an instruction range
/// [begin, end): the emitter promises to write only the registers in
/// `may_write` (a RegId bitmask), and — when it is a spin loop emitted
/// with SpinKind::kPause — to contain at least one `pause`. Recorded by
/// AsmBuilder::begin_sync_region/end_sync_region (the sync primitives
/// annotate themselves); checked by analysis::lint_program.
struct SyncRegion {
  uint32_t begin = 0;
  uint32_t end = 0;        // exclusive
  std::string what;        // emitter name, e.g. "spin_until_eq"
  uint32_t may_write = 0;  // bitmask over flat RegIds (bit r = RegId r)
  bool is_spin = false;    // the region loops until a memory word flips
  bool wants_pause = false;  // emitted with SpinKind::kPause
};

/// One lock acquire/release sequence over [begin, end) on the lock word
/// at `addr`, recorded by the xchg test-and-set emitters. The lint's
/// lock-pairing dataflow treats the range as one atomic effect.
struct LockOp {
  uint32_t begin = 0;
  uint32_t end = 0;  // exclusive
  Addr addr = 0;
  bool acquire = true;  // false: release
};

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}
  Program(std::string name, std::vector<Instr> code,
          std::vector<SyncRegion> sync_regions, std::vector<LockOp> lock_ops)
      : name_(std::move(name)),
        code_(std::move(code)),
        sync_regions_(std::move(sync_regions)),
        lock_ops_(std::move(lock_ops)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  const Instr& at(size_t pc) const {
    SMT_DCHECK(pc < code_.size());
    return code_[pc];
  }

  const std::vector<Instr>& code() const { return code_; }
  const std::vector<SyncRegion>& sync_regions() const { return sync_regions_; }
  const std::vector<LockOp>& lock_ops() const { return lock_ops_; }

 private:
  std::string name_;
  std::vector<Instr> code_;
  std::vector<SyncRegion> sync_regions_;
  std::vector<LockOp> lock_ops_;
};

}  // namespace smt::isa
