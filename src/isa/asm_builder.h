// AsmBuilder: the assembler DSL in which every workload of this repo is
// written (synthetic streams, MM/LU/CG/BT kernels, and the synchronization
// primitives of paper §3.1).
//
// Usage:
//   AsmBuilder a("axpy");
//   a.imovi(R0, 0);                      // i = 0
//   Label loop = a.here();
//   a.fload(F0, Mem::bi(Rx, R0, 3));     // f0 = x[i]
//   a.fmul (F0, F0, Falpha);
//   a.fload(F1, Mem::bi(Ry, R0, 3));
//   a.fadd (F1, F1, F0);
//   a.fstore(F1, Mem::bi(Ry, R0, 3));
//   a.iaddi(R0, R0, 1);
//   a.bri(BrCond::kLt, R0, n, loop);
//   a.exit();
//   Program p = a.take();
#pragma once

#include <string>
#include <vector>

#include "isa/instr.h"
#include "isa/program.h"

namespace smt::isa {

/// Bit of a flat RegId in a register-set mask (SyncRegion::may_write).
constexpr uint32_t reg_bit(RegId r) { return 1u << r; }
constexpr uint32_t reg_bit(IReg r) { return reg_bit(id(r)); }
constexpr uint32_t reg_bit(FReg r) { return reg_bit(id(r)); }

/// Opaque label handle; created unbound, bound once, referenced anywhere.
struct Label {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// Memory-operand helper with short factory names (the DSL's addressing
/// vocabulary): Mem::bd(base, disp), Mem::bi(base, index, scale_log2,
/// disp), Mem::abs(address).
struct Mem {
  MemRef ref;

  static Mem bd(IReg base, int64_t disp = 0) {
    Mem m;
    m.ref.base = id(base);
    m.ref.disp = disp;
    return m;
  }

  static Mem bi(IReg base, IReg index, uint8_t scale_log2, int64_t disp = 0) {
    Mem m;
    m.ref.base = id(base);
    m.ref.index = id(index);
    m.ref.scale_log2 = scale_log2;
    m.ref.disp = disp;
    return m;
  }

  static Mem abs(uint64_t addr) {
    Mem m;
    m.ref.disp = static_cast<int64_t>(addr);
    return m;
  }

  /// Index-only addressing: [index*scale + disp]. The natural form for
  /// array accesses whose base address is a compile-time constant, e.g.
  /// x[col] as [col*8 + &x].
  static Mem idx(IReg index, uint8_t scale_log2, int64_t disp) {
    Mem m;
    m.ref.index = id(index);
    m.ref.scale_log2 = scale_log2;
    m.ref.disp = disp;
    return m;
  }
};

class AsmBuilder {
 public:
  explicit AsmBuilder(std::string name) : name_(std::move(name)) {}

  // ---- labels -----------------------------------------------------------
  Label label();          ///< Create an unbound label.
  void bind(Label l);     ///< Bind `l` to the current position.
  Label here();           ///< label() + bind() in one step.
  size_t pos() const { return code_.size(); }

  // ---- integer ALU ------------------------------------------------------
  void iadd(IReg d, IReg a, IReg b);
  void iaddi(IReg d, IReg a, int64_t imm);
  void isub(IReg d, IReg a, IReg b);
  void isubi(IReg d, IReg a, int64_t imm);
  void imov(IReg d, IReg a);
  void imovi(IReg d, int64_t imm);
  void iand(IReg d, IReg a, IReg b);
  void iandi(IReg d, IReg a, int64_t imm);
  void ior(IReg d, IReg a, IReg b);
  void iori(IReg d, IReg a, int64_t imm);
  void ixor(IReg d, IReg a, IReg b);
  void ixori(IReg d, IReg a, int64_t imm);
  void ishli(IReg d, IReg a, int64_t sh);
  void ishri(IReg d, IReg a, int64_t sh);
  void imul(IReg d, IReg a, IReg b);
  void imuli(IReg d, IReg a, int64_t imm);
  void idiv(IReg d, IReg a, IReg b);

  // ---- floating point ---------------------------------------------------
  void fadd(FReg d, FReg a, FReg b);
  void fsub(FReg d, FReg a, FReg b);
  void fmul(FReg d, FReg a, FReg b);
  void fdiv(FReg d, FReg a, FReg b);
  void fmov(FReg d, FReg a);
  void fmovi(FReg d, double v);
  void fneg(FReg d, FReg a);

  // ---- memory -----------------------------------------------------------
  void load(IReg d, Mem m);
  void store(IReg s, Mem m);
  void fload(FReg d, Mem m);
  void fstore(FReg s, Mem m);
  void prefetch(Mem m, bool to_l1 = false);
  void xchg(IReg d, Mem m);  ///< atomically swap d with [m]

  // ---- control flow -----------------------------------------------------
  void br(BrCond c, IReg a, IReg b, Label l);
  void bri(BrCond c, IReg a, int64_t imm, Label l);
  void jmp(Label l);

  // ---- sync / system ----------------------------------------------------
  void pause();
  void halt();
  void ipi();
  void nop();
  void exit();

  // ---- analysis metadata ------------------------------------------------
  /// Opens a sync-emitter region at the current position: until the
  /// matching end_sync_region(), the emitter promises to write only the
  /// registers in `may_write` (a reg_bit() mask). Regions may nest (a
  /// barrier wait contains a spin wait); each is recorded independently.
  /// `is_spin` marks a wait loop; `wants_pause` asserts it was emitted
  /// with SpinKind::kPause and must contain a `pause`.
  void begin_sync_region(std::string what, uint32_t may_write,
                         bool is_spin = false, bool wants_pause = false);
  void end_sync_region();

  /// Records that [begin, pos()) is one lock acquire/release sequence on
  /// the lock word at `addr` (called by the xchg test-and-set emitters
  /// after emitting; consumed by the lint's lock-pairing dataflow).
  void note_lock_op(size_t begin, uint64_t addr, bool acquire);

  /// Finalize: resolve all branch targets. Checks every referenced label
  /// was bound, every sync region was closed, and the program ends in a
  /// way that cannot fall off the end.
  Program take();

 private:
  Instr& emit(Opcode op);
  void emit_alu(Opcode op, IReg d, IReg a, IReg b);
  void emit_alui(Opcode op, IReg d, IReg a, int64_t imm);
  void emit_fp(Opcode op, FReg d, FReg a, FReg b);
  void emit_branch(Opcode op, BrCond c, RegId a, RegId b, bool use_imm,
                   int64_t imm, Label l);

  std::string name_;
  std::vector<Instr> code_;
  std::vector<int32_t> label_pos_;                    // -1 while unbound
  std::vector<std::pair<size_t, int32_t>> fixups_;    // instr idx -> label
  std::vector<SyncRegion> sync_regions_;
  std::vector<size_t> region_stack_;                  // open-region indices
  std::vector<LockOp> lock_ops_;
  bool taken_ = false;
};

}  // namespace smt::isa
