// Canonical byte serialization of isa::Program — the guest half of a
// content-addressed result key.
//
// canonical_serialization() renders a program as a versioned, line-based
// text form in which every field that can influence a simulation appears
// exactly once: opcodes and branch conditions by their stable trait
// names, register ids and immediates as decimal, fp immediates as
// bit-exact hex of their IEEE-754 encoding (0.0 and -0.0 serialize
// differently; NaN payloads are preserved), plus the SyncRegion and
// LockOp metadata (they feed the race detector, so two programs that
// differ only there can produce different run outcomes). Two programs
// serialize identically iff the simulator cannot tell them apart.
//
// program_digest() is the FNV-1a 64 hex digest of that serialization.
// Both the text format (header "smt-isa-program/1") and the digest are
// part of the on-disk result-cache schema — changing either invalidates
// every stored object, so the format version must be bumped instead.
#pragma once

#include <string>

#include "isa/program.h"

namespace smt::isa {

std::string canonical_serialization(const Program& p);

/// 16-hex-digit FNV-1a digest of canonical_serialization(p).
std::string program_digest(const Program& p);

}  // namespace smt::isa
