#include "isa/asm_builder.h"

#include "common/check.h"

namespace smt::isa {

Label AsmBuilder::label() {
  Label l{static_cast<int32_t>(label_pos_.size())};
  label_pos_.push_back(-1);
  return l;
}

void AsmBuilder::bind(Label l) {
  SMT_CHECK_MSG(l.valid() && static_cast<size_t>(l.id) < label_pos_.size(),
                "binding an unknown label");
  SMT_CHECK_MSG(label_pos_[l.id] < 0, "label bound twice");
  label_pos_[l.id] = static_cast<int32_t>(code_.size());
}

Label AsmBuilder::here() {
  Label l = label();
  bind(l);
  return l;
}

Instr& AsmBuilder::emit(Opcode op) {
  SMT_CHECK_MSG(!taken_, "emitting into a finalized builder");
  Instr in;
  in.op = op;
  code_.push_back(in);
  return code_.back();
}

void AsmBuilder::emit_alu(Opcode op, IReg d, IReg a, IReg b) {
  Instr& in = emit(op);
  in.rd = id(d);
  in.rs1 = id(a);
  in.rs2 = id(b);
}

void AsmBuilder::emit_alui(Opcode op, IReg d, IReg a, int64_t imm) {
  Instr& in = emit(op);
  in.rd = id(d);
  in.rs1 = id(a);
  in.use_imm = true;
  in.imm = imm;
}

void AsmBuilder::emit_fp(Opcode op, FReg d, FReg a, FReg b) {
  Instr& in = emit(op);
  in.rd = id(d);
  in.rs1 = id(a);
  in.rs2 = id(b);
}

void AsmBuilder::iadd(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIAdd, d, a, b); }
void AsmBuilder::iaddi(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kIAdd, d, a, v); }
void AsmBuilder::isub(IReg d, IReg a, IReg b) { emit_alu(Opcode::kISub, d, a, b); }
void AsmBuilder::isubi(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kISub, d, a, v); }

void AsmBuilder::imov(IReg d, IReg a) {
  Instr& in = emit(Opcode::kIMov);
  in.rd = id(d);
  in.rs1 = id(a);
}

void AsmBuilder::imovi(IReg d, int64_t v) {
  Instr& in = emit(Opcode::kIMovImm);
  in.rd = id(d);
  in.use_imm = true;
  in.imm = v;
}

void AsmBuilder::iand(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIAnd, d, a, b); }
void AsmBuilder::iandi(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kIAnd, d, a, v); }
void AsmBuilder::ior(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIOr, d, a, b); }
void AsmBuilder::iori(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kIOr, d, a, v); }
void AsmBuilder::ixor(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIXor, d, a, b); }
void AsmBuilder::ixori(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kIXor, d, a, v); }
void AsmBuilder::ishli(IReg d, IReg a, int64_t sh) { emit_alui(Opcode::kIShl, d, a, sh); }
void AsmBuilder::ishri(IReg d, IReg a, int64_t sh) { emit_alui(Opcode::kIShr, d, a, sh); }
void AsmBuilder::imul(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIMul, d, a, b); }
void AsmBuilder::imuli(IReg d, IReg a, int64_t v) { emit_alui(Opcode::kIMul, d, a, v); }
void AsmBuilder::idiv(IReg d, IReg a, IReg b) { emit_alu(Opcode::kIDiv, d, a, b); }

void AsmBuilder::fadd(FReg d, FReg a, FReg b) { emit_fp(Opcode::kFAdd, d, a, b); }
void AsmBuilder::fsub(FReg d, FReg a, FReg b) { emit_fp(Opcode::kFSub, d, a, b); }
void AsmBuilder::fmul(FReg d, FReg a, FReg b) { emit_fp(Opcode::kFMul, d, a, b); }
void AsmBuilder::fdiv(FReg d, FReg a, FReg b) { emit_fp(Opcode::kFDiv, d, a, b); }

void AsmBuilder::fmov(FReg d, FReg a) {
  Instr& in = emit(Opcode::kFMov);
  in.rd = id(d);
  in.rs1 = id(a);
}

void AsmBuilder::fmovi(FReg d, double v) {
  Instr& in = emit(Opcode::kFMovImm);
  in.rd = id(d);
  in.fimm = v;
}

void AsmBuilder::fneg(FReg d, FReg a) {
  Instr& in = emit(Opcode::kFNeg);
  in.rd = id(d);
  in.rs1 = id(a);
}

void AsmBuilder::load(IReg d, Mem m) {
  Instr& in = emit(Opcode::kLoad);
  in.rd = id(d);
  in.mem = m.ref;
}

void AsmBuilder::store(IReg s, Mem m) {
  Instr& in = emit(Opcode::kStore);
  in.rs1 = id(s);
  in.mem = m.ref;
}

void AsmBuilder::fload(FReg d, Mem m) {
  Instr& in = emit(Opcode::kFLoad);
  in.rd = id(d);
  in.mem = m.ref;
}

void AsmBuilder::fstore(FReg s, Mem m) {
  Instr& in = emit(Opcode::kFStore);
  in.rs1 = id(s);
  in.mem = m.ref;
}

void AsmBuilder::prefetch(Mem m, bool to_l1) {
  Instr& in = emit(Opcode::kPrefetch);
  in.mem = m.ref;
  in.imm = to_l1 ? 1 : 0;  // decoded as DynUop::prefetch_to_l1
}

void AsmBuilder::xchg(IReg d, Mem m) {
  Instr& in = emit(Opcode::kXchg);
  in.rd = id(d);
  in.rs1 = id(d);  // the outgoing value is read from d
  in.mem = m.ref;
}

void AsmBuilder::emit_branch(Opcode op, BrCond c, RegId a, RegId b,
                             bool use_imm, int64_t imm, Label l) {
  SMT_CHECK_MSG(l.valid() && static_cast<size_t>(l.id) < label_pos_.size(),
                "branch to unknown label");
  Instr& in = emit(op);
  in.cond = c;
  in.rs1 = a;
  in.rs2 = b;
  in.use_imm = use_imm;
  in.imm = imm;
  fixups_.emplace_back(code_.size() - 1, l.id);
}

void AsmBuilder::br(BrCond c, IReg a, IReg b, Label l) {
  emit_branch(Opcode::kBr, c, id(a), id(b), false, 0, l);
}

void AsmBuilder::bri(BrCond c, IReg a, int64_t imm, Label l) {
  emit_branch(Opcode::kBr, c, id(a), kNoReg, true, imm, l);
}

void AsmBuilder::jmp(Label l) {
  emit_branch(Opcode::kJmp, BrCond::kEq, kNoReg, kNoReg, false, 0, l);
}

void AsmBuilder::pause() { emit(Opcode::kPause); }
void AsmBuilder::halt() { emit(Opcode::kHalt); }
void AsmBuilder::ipi() { emit(Opcode::kIpi); }
void AsmBuilder::nop() { emit(Opcode::kNop); }
void AsmBuilder::exit() { emit(Opcode::kExit); }

void AsmBuilder::begin_sync_region(std::string what, uint32_t may_write,
                                   bool is_spin, bool wants_pause) {
  SMT_CHECK_MSG(!taken_, "annotating a finalized builder");
  SyncRegion r;
  r.begin = static_cast<uint32_t>(code_.size());
  r.what = std::move(what);
  r.may_write = may_write;
  r.is_spin = is_spin;
  r.wants_pause = wants_pause;
  region_stack_.push_back(sync_regions_.size());
  sync_regions_.push_back(std::move(r));
}

void AsmBuilder::end_sync_region() {
  SMT_CHECK_MSG(!region_stack_.empty(),
                "end_sync_region without a matching begin");
  sync_regions_[region_stack_.back()].end =
      static_cast<uint32_t>(code_.size());
  region_stack_.pop_back();
}

void AsmBuilder::note_lock_op(size_t begin, uint64_t addr, bool acquire) {
  SMT_CHECK_MSG(!taken_, "annotating a finalized builder");
  SMT_CHECK_MSG(begin <= code_.size(), "lock op begins past the end");
  LockOp op;
  op.begin = static_cast<uint32_t>(begin);
  op.end = static_cast<uint32_t>(code_.size());
  op.addr = addr;
  op.acquire = acquire;
  lock_ops_.push_back(op);
}

Program AsmBuilder::take() {
  SMT_CHECK_MSG(!taken_, "take() called twice");
  SMT_CHECK_MSG(region_stack_.empty(), "sync region left open at take()");
  taken_ = true;
  for (const auto& [instr_idx, label_id] : fixups_) {
    SMT_CHECK_MSG(label_pos_[label_id] >= 0,
                  "branch references a label that was never bound");
    code_[instr_idx].target = label_pos_[label_id];
  }
  SMT_CHECK_MSG(!code_.empty(), "empty program");
  // A program must not run off its end: the last instruction has to be an
  // exit or an unconditional jump backwards.
  const Instr& last = code_.back();
  SMT_CHECK_MSG(last.op == Opcode::kExit || last.op == Opcode::kJmp,
                "program can fall off the end; terminate with exit()");
  return Program(std::move(name_), std::move(code_), std::move(sync_regions_),
                 std::move(lock_ops_));
}

}  // namespace smt::isa
