// Textual disassembly of programs, for debugging and tests.
#pragma once

#include <string>

#include "isa/instr.h"
#include "isa/program.h"

namespace smt::isa {

/// One instruction, e.g. "fadd f2, f2, f5" or "br lt r1, r2 -> 12".
std::string disasm(const Instr& in);

/// Whole program, one numbered line per instruction.
std::string disasm(const Program& p);

}  // namespace smt::isa
