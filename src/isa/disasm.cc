#include "isa/disasm.h"

#include <cinttypes>
#include <cstdio>

namespace smt::isa {

namespace {

std::string reg_name(RegId r) {
  if (r == kNoReg) return "-";
  char buf[8];
  if (is_fp_reg(r)) {
    std::snprintf(buf, sizeof buf, "f%d", r - kNumIRegs);
  } else {
    std::snprintf(buf, sizeof buf, "r%d", r);
  }
  return buf;
}

std::string mem_str(const MemRef& m) {
  std::string out = "[";
  bool first = true;
  if (m.base != kNoReg) {
    out += reg_name(m.base);
    first = false;
  }
  if (m.index != kNoReg) {
    if (!first) out += "+";
    out += reg_name(m.index);
    if (m.scale_log2) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "*%d", 1 << m.scale_log2);
      out += buf;
    }
    first = false;
  }
  if (m.disp != 0 || first) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%" PRId64, first ? "" : "+", m.disp);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace

std::string disasm(const Instr& in) {
  const OpTraits& t = traits(in.op);
  std::string out = t.name;
  auto append = [&out](const std::string& s) {
    out += out.back() == ' ' ? "" : " ";
    out += s;
  };
  char buf[64];

  switch (in.op) {
    case Opcode::kBr:
      std::snprintf(buf, sizeof buf, "%s", name(in.cond));
      append(buf);
      append(reg_name(in.rs1) + ",");
      if (in.use_imm) {
        std::snprintf(buf, sizeof buf, "%" PRId64, in.imm);
        append(buf);
      } else {
        append(reg_name(in.rs2));
      }
      std::snprintf(buf, sizeof buf, "-> %d", in.target);
      append(buf);
      return out;
    case Opcode::kJmp:
      std::snprintf(buf, sizeof buf, "-> %d", in.target);
      append(buf);
      return out;
    case Opcode::kFMovImm:
      append(reg_name(in.rd) + ",");
      std::snprintf(buf, sizeof buf, "%g", in.fimm);
      append(buf);
      return out;
    default:
      break;
  }

  if (t.writes_reg) append(reg_name(in.rd) + (t.is_mem || in.rs1 != kNoReg || in.use_imm ? "," : ""));
  if (in.op == Opcode::kStore || in.op == Opcode::kFStore) {
    append(reg_name(in.rs1) + ",");
    append(mem_str(in.mem));
    return out;
  }
  if (t.is_mem) {
    append(mem_str(in.mem));
    return out;
  }
  if (in.rs1 != kNoReg && !t.is_mem && in.op != Opcode::kIMovImm) {
    append(reg_name(in.rs1) + (in.rs2 != kNoReg || in.use_imm ? "," : ""));
  }
  if (in.use_imm) {
    std::snprintf(buf, sizeof buf, "%" PRId64, in.imm);
    append(buf);
  } else if (in.rs2 != kNoReg) {
    append(reg_name(in.rs2));
  }
  return out;
}

std::string disasm(const Program& p) {
  std::string out;
  char buf[32];
  for (size_t i = 0; i < p.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%4zu: ", i);
    out += buf;
    out += disasm(p.at(i));
    out += '\n';
  }
  return out;
}

}  // namespace smt::isa
