// Architectural register file description of the micro-ISA.
//
// The ISA exposes 16 64-bit integer registers and 16 double-precision fp
// registers per hardware context. Internally both files share one flat
// RegId space (0..15 integer, 16..31 fp) so the scoreboard can track
// readiness in a single array.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace smt::isa {

enum class IReg : uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7,
  R8, R9, R10, R11, R12, R13, R14, R15,
};

enum class FReg : uint8_t {
  F0 = 0, F1, F2, F3, F4, F5, F6, F7,
  F8, F9, F10, F11, F12, F13, F14, F15,
};

inline constexpr int kNumIRegs = 16;
inline constexpr int kNumFRegs = 16;
inline constexpr int kNumRegs = kNumIRegs + kNumFRegs;

/// Flat register id: 0..15 integer, 16..31 floating point.
using RegId = uint8_t;

/// Sentinel meaning "operand slot unused".
inline constexpr RegId kNoReg = 0xff;

constexpr RegId id(IReg r) { return static_cast<RegId>(r); }
constexpr RegId id(FReg r) {
  return static_cast<RegId>(static_cast<uint8_t>(r) + kNumIRegs);
}

constexpr bool is_fp_reg(RegId r) { return r != kNoReg && r >= kNumIRegs; }
constexpr bool is_int_reg(RegId r) { return r < kNumIRegs; }

inline IReg ireg(RegId r) {
  SMT_DCHECK(is_int_reg(r));
  return static_cast<IReg>(r);
}

inline FReg freg(RegId r) {
  SMT_DCHECK(is_fp_reg(r));
  return static_cast<FReg>(r - kNumIRegs);
}

/// IReg from an index, for loops over register sets in stream generators.
inline IReg ireg_n(int n) {
  SMT_DCHECK(n >= 0 && n < kNumIRegs);
  return static_cast<IReg>(n);
}

inline FReg freg_n(int n) {
  SMT_DCHECK(n >= 0 && n < kNumFRegs);
  return static_cast<FReg>(n);
}

}  // namespace smt::isa
