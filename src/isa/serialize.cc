#include "isa/serialize.h"

#include <cstdint>
#include <cstring>

#include "common/hash.h"
#include "isa/opcode.h"

namespace smt::isa {

namespace {

void append_u64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void append_i64(std::string* out, int64_t v) { *out += std::to_string(v); }

/// Bit-exact fp rendering: the IEEE-754 encoding as 16 hex digits.
/// Decimal round-trips are a correctness risk here (two distinct NaNs,
/// or -0.0 vs 0.0, must not collide), so the bits go in directly.
void append_f64_bits(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  static const char* kHex = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[bits & 0xf];
    bits >>= 4;
  }
  out->append(buf, sizeof(buf));
}

}  // namespace

std::string canonical_serialization(const Program& p) {
  std::string out = "smt-isa-program/1\n";
  out += "name ";
  out += p.name();
  out += '\n';
  out += "instrs ";
  append_u64(&out, p.size());
  out += '\n';
  for (const Instr& in : p.code()) {
    out += name(in.op);
    out += ' ';
    append_i64(&out, in.rd);
    out += ' ';
    append_i64(&out, in.rs1);
    out += ' ';
    append_i64(&out, in.rs2);
    out += ' ';
    out += in.use_imm ? '1' : '0';
    out += ' ';
    out += name(in.cond);
    out += ' ';
    append_i64(&out, in.imm);
    out += ' ';
    append_f64_bits(&out, in.fimm);
    out += " [";
    append_i64(&out, in.mem.base);
    out += '+';
    append_i64(&out, in.mem.index);
    out += "<<";
    append_u64(&out, in.mem.scale_log2);
    out += '+';
    append_i64(&out, in.mem.disp);
    out += "] ";
    append_i64(&out, in.target);
    out += '\n';
  }
  out += "sync_regions ";
  append_u64(&out, p.sync_regions().size());
  out += '\n';
  for (const SyncRegion& s : p.sync_regions()) {
    append_u64(&out, s.begin);
    out += ' ';
    append_u64(&out, s.end);
    out += ' ';
    out += s.what;
    out += ' ';
    append_u64(&out, s.may_write);
    out += ' ';
    out += s.is_spin ? '1' : '0';
    out += ' ';
    out += s.wants_pause ? '1' : '0';
    out += '\n';
  }
  out += "lock_ops ";
  append_u64(&out, p.lock_ops().size());
  out += '\n';
  for (const LockOp& l : p.lock_ops()) {
    append_u64(&out, l.begin);
    out += ' ';
    append_u64(&out, l.end);
    out += ' ';
    append_u64(&out, l.addr);
    out += ' ';
    out += l.acquire ? "acquire" : "release";
    out += '\n';
  }
  return out;
}

std::string program_digest(const Program& p) {
  return fnv1a64_hex(canonical_serialization(p));
}

}  // namespace smt::isa
