// Instruction encoding of the micro-ISA.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "isa/opcode.h"
#include "isa/registers.h"

namespace smt::isa {

/// Memory operand: effective address = [base] + ([index] << scale) + disp.
struct MemRef {
  RegId base = kNoReg;
  RegId index = kNoReg;
  uint8_t scale_log2 = 0;
  int64_t disp = 0;
};

/// One decoded instruction (== one uop in the timing model, except xchg,
/// which occupies both a load-queue and a store-buffer entry).
///
/// Register fields hold flat RegIds; whether a field names an int or fp
/// register follows from the opcode. `use_imm` selects the immediate as the
/// second source of ALU ops / branches.
struct Instr {
  Opcode op = Opcode::kNop;
  RegId rd = kNoReg;   // destination
  RegId rs1 = kNoReg;  // first source
  RegId rs2 = kNoReg;  // second source
  bool use_imm = false;
  BrCond cond = BrCond::kEq;
  int64_t imm = 0;     // int immediate / branch comparand
  double fimm = 0.0;   // fp immediate (kFMovImm)
  MemRef mem;          // memory operand (loads/stores/prefetch/xchg)
  int32_t target = -1; // branch target (instruction index)

  bool is_branch() const { return traits(op).is_branch; }
  bool is_mem() const { return traits(op).is_mem; }
  bool is_load() const { return traits(op).is_load; }
  bool is_store() const { return traits(op).is_store; }
};

}  // namespace smt::isa
