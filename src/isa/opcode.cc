#include "isa/opcode.h"

#include "common/check.h"

namespace smt::isa {

namespace {

// Order must match the Opcode enum exactly; checked in traits().
constexpr OpTraits kTraits[kNumOpcodeValues] = {
    //  name        unit               br     mem    load   store  wreg   fpdst
    {"iadd",    UnitClass::kAlu,    false, false, false, false, true,  false},
    {"isub",    UnitClass::kAlu,    false, false, false, false, true,  false},
    {"imov",    UnitClass::kAlu,    false, false, false, false, true,  false},
    {"imovi",   UnitClass::kAlu,    false, false, false, false, true,  false},
    {"iand",    UnitClass::kAlu0,   false, false, false, false, true,  false},
    {"ior",     UnitClass::kAlu0,   false, false, false, false, true,  false},
    {"ixor",    UnitClass::kAlu0,   false, false, false, false, true,  false},
    {"ishl",    UnitClass::kAlu0,   false, false, false, false, true,  false},
    {"ishr",    UnitClass::kAlu0,   false, false, false, false, true,  false},
    {"imul",    UnitClass::kIntMul, false, false, false, false, true,  false},
    {"idiv",    UnitClass::kIntDiv, false, false, false, false, true,  false},
    {"fadd",    UnitClass::kFpAdd,  false, false, false, false, true,  true},
    {"fsub",    UnitClass::kFpAdd,  false, false, false, false, true,  true},
    {"fmul",    UnitClass::kFpMul,  false, false, false, false, true,  true},
    {"fdiv",    UnitClass::kFpDiv,  false, false, false, false, true,  true},
    {"fmov",    UnitClass::kFpMove, false, false, false, false, true,  true},
    {"fmovi",   UnitClass::kFpMove, false, false, false, false, true,  true},
    {"fneg",    UnitClass::kFpMove, false, false, false, false, true,  true},
    {"load",    UnitClass::kLoad,   false, true,  true,  false, true,  false},
    {"store",   UnitClass::kStore,  false, true,  false, true,  false, false},
    {"fload",   UnitClass::kLoad,   false, true,  true,  false, true,  true},
    {"fstore",  UnitClass::kStore,  false, true,  false, true,  false, false},
    {"prefetch",UnitClass::kLoad,   false, true,  true,  false, false, false},
    {"br",      UnitClass::kBranch, true,  false, false, false, false, false},
    {"jmp",     UnitClass::kBranch, true,  false, false, false, false, false},
    {"xchg",    UnitClass::kLoad,   false, true,  true,  true,  true,  false},
    {"pause",   UnitClass::kNone,   false, false, false, false, false, false},
    {"halt",    UnitClass::kNone,   false, false, false, false, false, false},
    {"ipi",     UnitClass::kNone,   false, false, false, false, false, false},
    {"nop",     UnitClass::kNone,   false, false, false, false, false, false},
    {"exit",    UnitClass::kNone,   false, false, false, false, false, false},
};

constexpr const char* kUnitNames[] = {
    "ALU",    "ALU0",   "BRANCH", "INT_MUL", "INT_DIV", "FP_ADD",
    "FP_MUL", "FP_DIV", "FP_MOVE", "LOAD",   "STORE",   "NONE",
};

constexpr const char* kCondNames[] = {"eq", "ne", "lt", "le", "gt", "ge"};

}  // namespace

const OpTraits& traits(Opcode op) {
  const auto i = static_cast<size_t>(op);
  SMT_DCHECK(i < static_cast<size_t>(kNumOpcodeValues));
  return kTraits[i];
}

const char* name(UnitClass u) { return kUnitNames[static_cast<size_t>(u)]; }
const char* name(BrCond c) { return kCondNames[static_cast<size_t>(c)]; }

}  // namespace smt::isa
