// Opcode set of the micro-ISA and its static properties.
//
// The ISA is RISC-like: one instruction = one uop, register-register
// arithmetic, explicit loads/stores with base+index*scale+disp addressing,
// compare-and-branch. It adds the Netburst-specific control instructions
// the paper's synchronization layer depends on: pause (spin-loop
// de-pipelining), halt (logical CPU sleeps, releasing its statically
// partitioned queue halves), ipi (wake the sibling), and xchg (atomic
// exchange used by lock/flag primitives).
#pragma once

#include <cstdint>

namespace smt::isa {

enum class Opcode : uint8_t {
  // Integer ALU, executable on either double-speed ALU.
  kIAdd, kISub, kIMov, kIMovImm,
  // Logical / shift group: on Netburst only ALU0 can execute these
  // (paper §5.3); the port model enforces that restriction.
  kIAnd, kIOr, kIXor, kIShl, kIShr,
  // Complex integer ops (long-latency unit, unpipelined divide).
  kIMul, kIDiv,
  // Floating point (double precision).
  kFAdd, kFSub, kFMul, kFDiv, kFMov, kFMovImm, kFNeg,
  // Memory. Loads/stores move 64-bit words (int or fp view).
  kLoad, kStore, kFLoad, kFStore,
  // Software prefetch of one cache line into L2 (and optionally L1).
  kPrefetch,
  // Control flow. Branch compares two int registers (or reg vs imm).
  kBr, kJmp,
  // Synchronization / system.
  kXchg,   // rd <-> [mem], atomic
  kPause,  // spin-wait hint: de-pipelines fetch for this context
  kHalt,   // sleep this logical CPU until an IPI arrives
  kIpi,    // send a wake-up IPI to the sibling logical CPU
  kNop,
  kExit,   // terminate this context's program
  kNumOpcodes,
};

inline constexpr int kNumOpcodeValues =
    static_cast<int>(Opcode::kNumOpcodes);

/// Branch conditions; comparison is signed 64-bit.
enum class BrCond : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Execution subunit classes, mirroring the Xeon port diagram the paper
/// reproduces as Figure 6. The scheduler maps classes to issue ports; the
/// profiler maps them to Table 1 rows.
enum class UnitClass : uint8_t {
  kAlu,      // simple int ops, either ALU
  kAlu0,     // logical/shift: ALU0 only
  kBranch,   // branch unit (shares port 0 on Netburst)
  kIntMul,
  kIntDiv,
  kFpAdd,
  kFpMul,
  kFpDiv,
  kFpMove,
  kLoad,
  kStore,
  kNone,     // nop / exit / pause / halt / ipi
};

/// Static per-opcode properties, defined once in opcode.cc.
struct OpTraits {
  const char* name;
  UnitClass unit;
  bool is_branch;     // kBr / kJmp
  bool is_mem;        // load/store/prefetch/xchg
  bool is_load;       // reads memory (load/fload/xchg)
  bool is_store;      // writes memory (store/fstore/xchg)
  bool writes_reg;    // has a destination register
  bool fp_dst;        // destination is an fp register
};

const OpTraits& traits(Opcode op);

inline const char* name(Opcode op) { return traits(op).name; }
inline UnitClass unit_class(Opcode op) { return traits(op).unit; }

const char* name(UnitClass u);
const char* name(BrCond c);

}  // namespace smt::isa
