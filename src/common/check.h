// Lightweight invariant-checking macros used across the simulator.
//
// SMT_CHECK is always on (simulation correctness depends on it: a silently
// corrupted pipeline state would invalidate every measurement downstream).
// SMT_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace smt {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace smt

#define SMT_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::smt::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define SMT_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::smt::check_failed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

#ifdef NDEBUG
#define SMT_DCHECK(expr) ((void)0)
#else
#define SMT_DCHECK(expr) SMT_CHECK(expr)
#endif
