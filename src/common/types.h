// Fundamental scalar types shared by every simulator module.
#pragma once

#include <cstdint>

namespace smt {

/// Simulated byte address. The simulated address space is flat and 64-bit;
/// backing pages are allocated lazily by mem::SimMemory.
using Addr = uint64_t;

/// Simulation time in core clock cycles.
using Cycle = uint64_t;

/// Logical-processor id within one physical package. Hyper-Threading
/// exposes exactly two contexts; the simulator follows suit.
enum class CpuId : uint8_t { kCpu0 = 0, kCpu1 = 1 };

inline constexpr int kNumLogicalCpus = 2;

constexpr int idx(CpuId c) { return static_cast<int>(c); }
constexpr CpuId other(CpuId c) {
  return c == CpuId::kCpu0 ? CpuId::kCpu1 : CpuId::kCpu0;
}

}  // namespace smt
