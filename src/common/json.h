// Minimal JSON support for the structured run reports.
//
// JsonWriter is a small streaming emitter (objects, arrays, scalars) used
// by core::RunReport to serialize run artifacts; parse_json is a strict
// recursive-descent reader used by tests and the bench-report smoke
// checker to validate those artifacts round-trip. Both cover exactly the
// JSON subset the reports need (no \uXXXX escapes beyond pass-through, no
// NaN/Inf — callers must emit finite numbers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smt {

class JsonWriter {
 public:
  /// Serialized document accumulated so far.
  const std::string& str() const { return out_; }

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void pre_value();

  std::string out_;
  // Per-nesting-level "needs a comma before the next element" flags.
  std::vector<bool> comma_;
  bool after_key_ = false;
};

/// Escapes `s` as a JSON string literal (with quotes).
std::string json_quote(std::string_view s);

/// Parsed JSON value (tree form).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parses a complete JSON document; std::nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> parse_json(std::string_view text);

/// Serializes a parsed tree back to a canonical string: no whitespace,
/// object members in sorted-key order (JsonValue::object is a std::map),
/// numbers via JsonWriter's shortest-round-trip formatting. Two
/// documents that parse to the same tree canonicalize identically — the
/// basis of content-addressed keys (smt_history's config hash).
std::string to_canonical_string(const JsonValue& v);

}  // namespace smt
