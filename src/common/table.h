// Plain-text table formatting for the benchmark harnesses.
//
// Every bench binary reproduces one figure/table of the paper and prints it
// as an aligned ASCII table (and optionally CSV); this keeps the output
// diffable and lets EXPERIMENTS.md quote rows verbatim.
#pragma once

#include <string>
#include <vector>

namespace smt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment (first column left, rest right).
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; commas in cells are replaced by ';').
  std::string to_csv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` decimals.
std::string fmt(double v, int prec = 2);

/// Formats a count with thousands separators (1234567 -> "1,234,567").
std::string fmt_count(uint64_t v);

/// Formats a large count in engineering style (e.g. "4.60e9" like Table 1's
/// "x10^9" column, or "12.3M").
std::string fmt_eng(double v, int prec = 2);

}  // namespace smt
