#include "common/json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace smt {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!comma_.empty()) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SMT_CHECK(!comma_.empty());
  comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SMT_CHECK(!comma_.empty());
  comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SMT_CHECK(!comma_.empty() && !after_key_);
  if (comma_.back()) out_ += ',';
  comma_.back() = true;
  out_ += json_quote(k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  char buf[40];
  // Shortest form that round-trips exactly: most doubles re-parse equal at
  // %.15g; the rest need 16 or (worst case, by IEEE-754) 17 significant
  // digits. Emitting fewer digits than round-trip (the old %.12g) made
  // re-parsed reports drift from the originals, which could mis-fire
  // report_diff's relative-threshold gates near their boundaries.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view t) : t_(t) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != t_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < t_.size() && std::isspace(static_cast<unsigned char>(t_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < t_.size()) {
      const char c = t_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= t_.size()) return false;
        const char e = t_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > t_.size()) return false;
            // Reports only emit control-character escapes; decode to the
            // raw byte (sufficient for < U+0100, which is all we write).
            const std::string hex(t_.substr(pos_, 4));
            pos_ += 4;
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& v) {
    skip_ws();
    if (pos_ >= t_.size()) return false;
    const char c = t_[pos_];
    if (c == '{') return parse_object(v);
    if (c == '[') return parse_array(v);
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      return parse_string(v.string);
    }
    if (c == 't') {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      v.type = JsonValue::Type::kNull;
      return literal("null");
    }
    return parse_number(v);
  }

  bool parse_number(JsonValue& v) {
    const size_t start = pos_;
    if (pos_ < t_.size() && (t_[pos_] == '-' || t_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < t_.size() &&
           (std::isdigit(static_cast<unsigned char>(t_[pos_])) ||
            t_[pos_] == '.' || t_[pos_] == 'e' || t_[pos_] == 'E' ||
            t_[pos_] == '-' || t_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return false;
    const std::string text(t_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    v.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_object(JsonValue& v) {
    if (!eat('{')) return false;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string k;
      if (!parse_string(k)) return false;
      if (!eat(':')) return false;
      JsonValue member;
      if (!parse_value(member)) return false;
      v.object.emplace(std::move(k), std::move(member));
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& v) {
    if (!eat('[')) return false;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      v.array.push_back(std::move(elem));
      if (eat(',')) continue;
      return eat(']');
    }
  }

  std::string_view t_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

namespace {

void write_canonical(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      // The writer has no null (reports never emit one); an explicit
      // token keeps canonicalization total over anything parse_json
      // accepts.
      w.value("null");
      break;
    case JsonValue::Type::kBool:   w.value(v.boolean); break;
    case JsonValue::Type::kNumber: w.value(v.number); break;
    case JsonValue::Type::kString: w.value(std::string_view(v.string)); break;
    case JsonValue::Type::kArray:
      w.begin_array();
      for (const JsonValue& e : v.array) write_canonical(w, e);
      w.end_array();
      break;
    case JsonValue::Type::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.object) {  // std::map: sorted keys
        w.key(k);
        write_canonical(w, e);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string to_canonical_string(const JsonValue& v) {
  JsonWriter w;
  write_canonical(w, v);
  return w.str();
}

}  // namespace smt
