#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/json.h"

namespace smt::log {

namespace {

// -1 in the atomics means "not explicitly set — fall back to the env".
std::atomic<int> g_level{-1};
std::atomic<int> g_format{-1};
std::mutex g_emit_mu;

Level env_level() {
  static const Level lvl = [] {
    const char* v = std::getenv("SMT_LOG_LEVEL");
    Level parsed = Level::kInfo;
    if (v != nullptr && !parse_level(v, &parsed)) {
      std::fprintf(stderr, "smt E unknown SMT_LOG_LEVEL %s (want "
                   "debug|info|warn|error|off), using info\n", v);
    }
    return parsed;
  }();
  return lvl;
}

Format env_format() {
  static const Format fmt = [] {
    const char* v = std::getenv("SMT_LOG_FORMAT");
    Format parsed = Format::kHuman;
    if (v != nullptr && !parse_format(v, &parsed)) {
      std::fprintf(stderr, "smt E unknown SMT_LOG_FORMAT %s (want "
                   "human|json), using human\n", v);
    }
    return parsed;
  }();
  return fmt;
}

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_number(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

// Human form of one field value; strings with spaces/quotes get quoted.
void append_human_value(std::string* out, const Field& f) {
  switch (f.kind) {
    case Field::Kind::kString:
      if (f.str.find_first_of(" \t\"=") != std::string::npos) {
        *out += json_quote(f.str);
      } else {
        *out += f.str;
      }
      break;
    case Field::Kind::kInt:    *out += std::to_string(f.i64); break;
    case Field::Kind::kUint:   *out += std::to_string(f.u64); break;
    case Field::Kind::kDouble: append_number(out, f.f64); break;
    case Field::Kind::kBool:   *out += f.b ? "true" : "false"; break;
  }
}

void append_json_value(JsonWriter* w, const Field& f) {
  switch (f.kind) {
    case Field::Kind::kString: w->value(f.str); break;
    case Field::Kind::kInt:    w->value(f.i64); break;
    case Field::Kind::kUint:   w->value(f.u64); break;
    case Field::Kind::kDouble: w->value(f.f64); break;
    case Field::Kind::kBool:   w->value(f.b); break;
  }
}

}  // namespace

const char* name(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "debug";
    case Level::kInfo:  return "info";
    case Level::kWarn:  return "warn";
    case Level::kError: return "error";
    case Level::kOff:   return "off";
  }
  return "?";
}

namespace {

// Case-insensitive fold so SMT_LOG_LEVEL=WARN works as well as =warn.
std::string lowered(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

bool parse_level(std::string_view text, Level* out) {
  const std::string t = lowered(text);
  for (Level lvl : {Level::kDebug, Level::kInfo, Level::kWarn, Level::kError,
                    Level::kOff}) {
    if (t == name(lvl)) {
      *out = lvl;
      return true;
    }
  }
  return false;
}

bool parse_format(std::string_view text, Format* out) {
  const std::string t = lowered(text);
  if (t == "human") {
    *out = Format::kHuman;
    return true;
  }
  if (t == "json") {
    *out = Format::kJson;
    return true;
  }
  return false;
}

Level level() {
  const int v = g_level.load(std::memory_order_relaxed);
  return v < 0 ? env_level() : static_cast<Level>(v);
}

Format format() {
  const int v = g_format.load(std::memory_order_relaxed);
  return v < 0 ? env_format() : static_cast<Format>(v);
}

void set_level(Level lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void set_format(Format f) {
  g_format.store(static_cast<int>(f), std::memory_order_relaxed);
}

std::string render(Format f, Level lvl, std::string_view msg,
                   const std::vector<Field>& fields, int64_t ts_ms) {
  if (f == Format::kJson) {
    JsonWriter w;
    w.begin_object();
    w.kv("ts_ms", ts_ms);
    w.kv("level", name(lvl));
    w.kv("msg", msg);
    for (const Field& fld : fields) {
      w.key(fld.key);
      append_json_value(&w, fld);
    }
    w.end_object();
    return w.str();
  }
  // Human: "smt <L> <msg>  k=v k=v" — single-letter level tag, aligned at
  // a glance, timestamp omitted (terminals and CI logs stamp lines).
  std::string out = "smt ";
  out += static_cast<char>(std::toupper(name(lvl)[0]));
  out += ' ';
  out += msg;
  if (!fields.empty()) out += ' ';
  for (const Field& fld : fields) {
    out += ' ';
    out += fld.key;
    out += '=';
    append_human_value(&out, fld);
  }
  return out;
}

void emit(Level lvl, std::string_view msg,
          std::initializer_list<Field> fields) {
  if (!enabled(lvl)) return;
  std::string line = render(format(), lvl, msg,
                            std::vector<Field>(fields.begin(), fields.end()),
                            now_ms());
  line += '\n';
  const std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace smt::log
