#include "common/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace smt {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SMT_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  SMT_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      const size_t pad = width[c] - row[c].size();
      if (c == 0) {
        out += row[c];
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += row[c];
      }
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };

  std::string out;
  emit_row(header_, out);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string TextTable::to_csv() const {
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += sanitize(row[c]);
      out += (c + 1 == row.size()) ? "\n" : ",";
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_count(uint64_t v) {
  char digits[32];
  std::snprintf(digits, sizeof digits, "%" PRIu64, v);
  std::string raw = digits;
  std::string out;
  const size_t n = raw.size();
  for (size_t i = 0; i < n; ++i) {
    out += raw[i];
    const size_t remaining = n - 1 - i;
    if (remaining > 0 && remaining % 3 == 0) out += ',';
  }
  return out;
}

std::string fmt_eng(double v, int prec) {
  static const char* suffix[] = {"", "K", "M", "G", "T"};
  int tier = 0;
  double x = v;
  while (x >= 1000.0 && tier < 4) {
    x /= 1000.0;
    ++tier;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", prec, x, suffix[tier]);
  return buf;
}

}  // namespace smt
