// Deterministic pseudo-random number generation for workload construction.
//
// Simulation results must be bit-reproducible across runs and platforms, so
// workload generators never use std::random_device or distribution objects
// whose output is implementation-defined. SplitMix64 seeds Xoshiro256**;
// both are public-domain algorithms with well-defined output sequences.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace smt {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the main generator for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    SMT_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias; bias would perturb sparse
    // matrix patterns between platforms with different uint64 semantics.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace smt
