// Small non-cryptographic hashing for content-addressed artifact keys
// (smt_history's config hashes). FNV-1a is stable across platforms and
// builds — the hex digest of a byte string is part of the on-disk
// history schema, so it must never change.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace smt {

inline uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// 16-hex-digit digest, zero padded ("00f3ab...").
inline std::string fnv1a64_hex(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  uint64_t h = fnv1a64(bytes);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace smt
