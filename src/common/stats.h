// Small numeric accumulators used by benchmarks and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace smt {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Unlike mean/variance, 0.0 is a misleading extremum for an empty
  // accumulator (it pretends a sample at 0 was seen); report NaN so the
  // absence of data propagates instead of masquerading as a value.
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio helper that tolerates zero denominators (reported as 0).
inline double safe_ratio(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

/// Relative error |a-b| / max(|a|,|b|,eps); used by kernel verifiers.
inline double rel_err(double a, double b) {
  const double scale =
      std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

}  // namespace smt
