#include "common/io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace smt {

bool write_text_file(const std::string& path, std::string_view content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create directory %s: %s\n",
                   parent.c_str(), ec.message().c_str());
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string sanitize_artifact_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  bool replaced = false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) replaced = true;
    out += ok ? c : '_';
  }
  if (replaced) {
    // FNV-1a over the *raw* key: two distinct keys that sanitize to the
    // same string differ in at least one replaced character, so their
    // hashes (and thus their fragments) differ.
    uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    char suffix[12];
    std::snprintf(suffix, sizeof suffix, "-%08x",
                  static_cast<unsigned>(h ^ (h >> 32)));
    out += suffix;
  }
  return out;
}

}  // namespace smt
