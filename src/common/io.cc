#include "common/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace smt {

bool write_text_file(const std::string& path, std::string_view content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create directory %s: %s\n",
                   parent.c_str(), ec.message().c_str());
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace smt
