// Structured, leveled logging for the host layer (the sweep orchestrator
// and the tools/ CLIs). The *guest* simulator stays logger-free: its
// observability contract is counters/reports/traces, and its hot loops
// must not pay even a disabled-log branch.
//
// Every message is a short static-ish sentence plus typed key=value
// fields, so the same call site serves both humans and machines:
//
//   log::warn("watchdog expired", {{"job", name}, {"attempt", attempt}});
//
//   human  smt W watchdog expired  job=mm.serial.n64 attempt=1
//   json   {"ts_ms":171234,"level":"warn","msg":"watchdog expired",
//           "job":"mm.serial.n64","attempt":1}
//
// Configuration, in precedence order:
//   * set_level()/set_format() — explicit program control (e.g. --quiet);
//   * SMT_LOG_LEVEL = debug|info|warn|error|off (default info) and
//     SMT_LOG_FORMAT = human|json (default human), read once lazily.
//
// Emission is a single buffered write to stderr under a mutex, so lines
// from the sweep's worker threads never interleave. Logging is wall-clock
// I/O and therefore kept strictly out of simulation artifacts: reports,
// indices, metrics and traces never embed log output, which is what keeps
// the sweep's parallel-equals-serial byte-identity guarantee intact.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace smt::log {

enum class Level : uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };
enum class Format : uint8_t { kHuman, kJson };

const char* name(Level lvl);

/// Parses "debug"/"info"/"warn"/"error"/"off"; false on anything else.
bool parse_level(std::string_view text, Level* out);
bool parse_format(std::string_view text, Format* out);

/// One typed key=value pair attached to a message.
struct Field {
  enum class Kind : uint8_t { kString, kInt, kUint, kDouble, kBool };

  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, int64_t v) : key(k), kind(Kind::kInt), i64(v) {}
  Field(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i64(v) {}
  Field(std::string_view k, uint64_t v)
      : key(k), kind(Kind::kUint), u64(v) {}
  Field(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), f64(v) {}
  Field(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  std::string key;
  Kind kind;
  std::string str;
  int64_t i64 = 0;
  uint64_t u64 = 0;
  double f64 = 0.0;
  bool b = false;
};

/// Effective threshold / format (explicit override, else env, else default).
Level level();
Format format();
void set_level(Level lvl);
void set_format(Format f);

inline bool enabled(Level lvl) { return lvl >= level(); }

/// Renders one complete log line (no trailing newline) — the pure core of
/// emit(), exposed so tests can pin both formats with a fixed timestamp.
std::string render(Format f, Level lvl, std::string_view msg,
                   const std::vector<Field>& fields, int64_t ts_ms);

/// Formats and writes one line to stderr if `lvl` passes the threshold.
void emit(Level lvl, std::string_view msg,
          std::initializer_list<Field> fields = {});

inline void debug(std::string_view msg,
                  std::initializer_list<Field> fields = {}) {
  emit(Level::kDebug, msg, fields);
}
inline void info(std::string_view msg,
                 std::initializer_list<Field> fields = {}) {
  emit(Level::kInfo, msg, fields);
}
inline void warn(std::string_view msg,
                 std::initializer_list<Field> fields = {}) {
  emit(Level::kWarn, msg, fields);
}
inline void error(std::string_view msg,
                  std::initializer_list<Field> fields = {}) {
  emit(Level::kError, msg, fields);
}

}  // namespace smt::log
