// Small file-output helpers shared by the artifact writers (run reports,
// Chrome traces, sweep indexes): text output with directory creation, and
// collision-free mapping of registry keys to filename fragments.
#pragma once

#include <string>
#include <string_view>

namespace smt {

/// Writes `content` to `path`, creating missing parent directories first.
/// Returns false — after logging the reason to stderr — if the directory
/// cannot be created or the file cannot be written.
bool write_text_file(const std::string& path, std::string_view content);

/// Turns an artifact registry key into a safe filename fragment:
/// characters outside [A-Za-z0-9._-] are replaced with '_'. Distinct keys
/// always map to distinct fragments — whenever any character had to be
/// replaced, a short hash of the raw key is appended, so keys that would
/// otherwise collapse onto the same name (e.g. "a/b" and "a_b") stay
/// distinguishable. Keys that are already clean are returned verbatim
/// (existing artifact filenames are unchanged).
std::string sanitize_artifact_key(const std::string& key);

}  // namespace smt
