// Small file-output helper shared by the artifact writers (run reports,
// Chrome traces).
#pragma once

#include <string>
#include <string_view>

namespace smt {

/// Writes `content` to `path`, creating missing parent directories first.
/// Returns false — after logging the reason to stderr — if the directory
/// cannot be created or the file cannot be written.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace smt
