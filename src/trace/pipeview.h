// PipeViewRecorder: per-uop pipeline lifetime traces in Kanata format.
//
// The core stamps every dynamic uop at each stage boundary — fetch,
// dispatch (allocation into the ROB), issue (port reservation) and retire
// — and the recorder serializes the lifetimes as a Kanata 0004 log, the
// format the Konata pipeline viewer renders: one lane per uop, stages
// F → Ds → X → Cm → retire, lanes colored by logical CPU (Kanata's thread
// id), with the issue port in the mouse-over label. SMT port stealing is
// directly visible as sibling-colored uops occupying X on the cycle a
// stalled uop sits in Ds.
//
// Recording is bounded two ways: only uops fetched inside the configured
// cycle window [begin, end] are captured (and only those that also retire
// by `end` are emitted, so every cycle in the file is <= end), and a
// max_uops cap backstops memory on dense windows. Like the other trace
// instruments the recorder is a pure observer — uop ids advance in the
// core whether or not one is attached, so attaching never perturbs a
// counter or a simulation artifact (asserted byte-for-byte by the sweep
// smoke test's --pipeview run).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace smt::trace {

/// Capture bounds for the pipeline trace.
struct PipeViewConfig {
  Cycle begin = 0;          ///< first cycle at which fetches are captured
  Cycle end = 100'000;      ///< last cycle; uops retiring later are dropped
  size_t max_uops = 1u << 20;  ///< memory backstop on dense windows
};

class PipeViewRecorder {
 public:
  explicit PipeViewRecorder(const PipeViewConfig& cfg = {}) : cfg_(cfg) {}

  /// Registers the program bound to `cpu` so emitted labels carry its
  /// disassembly. Stored by value: the recorder is shared out through
  /// RunStats and routinely outlives the Machine (and its programs) —
  /// the sweep serializes Kanata only after try_run_workload returns.
  void set_program(CpuId cpu, const isa::Program& prog) {
    progs_[idx(cpu)] = prog;
  }

  // --- core hooks (called by cpu::Core when attached) --------------------
  void on_fetch(CpuId cpu, uint64_t uid, uint32_t pc, Cycle now);
  void on_dispatch(CpuId cpu, uint64_t uid, Cycle now);
  /// `port` is the reserved IssuePort as an int, or -1 for portless uops
  /// (nop/pause/halt/ipi); `done` is the execution-complete cycle.
  void on_issue(CpuId cpu, uint64_t uid, int port, Cycle now, Cycle done);
  void on_retire(CpuId cpu, uint64_t uid, Cycle now);

  /// Serializes the captured lifetimes as a Kanata 0004 log. Only uops
  /// with a complete fetch→retire lifetime inside the window are emitted.
  std::string to_kanata() const;

  const PipeViewConfig& config() const { return cfg_; }
  size_t captured() const { return recs_.size(); }
  /// Uops seen inside the window but not captured (max_uops backstop).
  uint64_t dropped() const { return dropped_; }

 private:
  struct UopRecord {
    uint64_t uid = 0;
    uint32_t pc = 0;
    uint8_t cpu = 0;
    int8_t port = -1;
    bool has_dispatch = false;
    bool has_issue = false;
    bool has_retire = false;
    Cycle fetch = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle done = 0;
    Cycle retire = 0;
  };

  UopRecord* find(uint64_t uid);

  PipeViewConfig cfg_;
  std::array<std::optional<isa::Program>, kNumLogicalCpus> progs_{};
  std::vector<UopRecord> recs_;
  std::unordered_map<uint64_t, size_t> index_;
  uint64_t dropped_ = 0;
};

/// to_kanata() to `path` via write_text_file (parent dirs created).
bool write_kanata_file(const PipeViewRecorder& pv, const std::string& path);

}  // namespace smt::trace
