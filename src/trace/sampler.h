// CounterSampler: windowed time-series of the hardware counters.
//
// The sampler snapshots a PerfCounters instance at fixed cycle boundaries
// (every `window` simulated cycles from the cycle it was attached at) and
// stores the per-window *delta* per logical CPU — the time-resolved form
// of the paper's end-of-run counter readings, so phase-local effects
// (barrier episodes, prefetch bursts, halt/wake latencies) become visible.
//
// The core drives it: cpu::Core calls on_boundary(b) the moment simulated
// time reaches boundary b with every cycle < b fully accounted. During
// event-skip fast-forward the core splits its bulk counter accumulation at
// sampler boundaries, so each window's delta is bit-identical to what
// single-cycle stepping produces (regression-tested in trace_test).
//
// The sampler only ever *reads* the counters; attaching one can never
// perturb a measurement.
#pragma once

#include <vector>

#include "common/types.h"
#include "perfmon/counters.h"

namespace smt::trace {

/// One sampling window [begin, end) and the counter deltas inside it.
struct CounterWindow {
  Cycle begin = 0;
  Cycle end = 0;
  perfmon::Snapshot delta;
};

class CounterSampler {
 public:
  /// Attaches to `ctr` at cycle `start` (the current counter values become
  /// the baseline of the first window).
  CounterSampler(const perfmon::PerfCounters& ctr, Cycle window,
                 Cycle start = 0);

  Cycle window_cycles() const { return window_; }

  /// The next cycle boundary at which the core must call on_boundary()
  /// (strictly greater than the last sampled/flushed cycle).
  Cycle next_boundary() const { return next_; }

  /// Closes the window ending at `cycle` (== next_boundary()); every cycle
  /// < `cycle` must already be accounted in the counters.
  void on_boundary(Cycle cycle);

  /// Flushes the final partial window [last, end); safe to call repeatedly
  /// with the same `end` (subsequent calls are no-ops). Sampling may
  /// continue afterwards — the next window then begins at `end`.
  void finalize(Cycle end);

  const std::vector<CounterWindow>& windows() const { return windows_; }

 private:
  void push_window(Cycle end);

  const perfmon::PerfCounters& ctr_;
  Cycle window_;
  Cycle next_;              // end of the currently open window
  Cycle last_;              // begin of the currently open window
  perfmon::Snapshot prev_;  // counter values at `last_`
  std::vector<CounterWindow> windows_;
};

}  // namespace smt::trace
