#include "trace/telemetry.h"

#include <string>

#include "common/io.h"
#include "common/json.h"

namespace smt::trace {

namespace {

TelemetryConfig g_default;  // disabled until a driver opts in

/// Synthetic-track tid for annotation `ann` (cpu tracks are 0/1).
int ann_tid(int ann) { return 100 + ann; }

void write_meta(JsonWriter& w, const char* meta, int tid,
                const std::string& value) {
  w.begin_object();
  w.kv("name", meta);
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", tid);
  w.kv("ts", static_cast<uint64_t>(0));
  w.key("args");
  w.begin_object();
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

void write_counter_samples(JsonWriter& w, const CounterSampler& s) {
  // The paper's three headline counters (Figures 3-5), one Perfetto
  // counter track per logical CPU, one sample per window.
  static constexpr perfmon::Event kHeadline[] = {
      perfmon::Event::kL2ReadMisses,
      perfmon::Event::kResourceStallCycles,
      perfmon::Event::kUopsRetired,
  };
  for (const perfmon::Event e : kHeadline) {
    for (int c = 0; c < kNumLogicalCpus; ++c) {
      const std::string track =
          std::string("cpu") + std::to_string(c) + " " + perfmon::name(e);
      for (const CounterWindow& win : s.windows()) {
        w.begin_object();
        w.kv("name", track);
        w.kv("ph", "C");
        w.kv("pid", 0);
        w.kv("tid", 0);
        w.kv("ts", win.begin);
        w.key("args");
        w.begin_object();
        w.kv("value", win.delta.get(static_cast<CpuId>(c), e));
        w.end_object();
        w.end_object();
      }
    }
  }
}

void write_event(JsonWriter& w, const TraceEvent& e,
                 const std::vector<Annotation>& anns) {
  const bool span = e.ts2 > e.ts;
  std::string label = name(e.kind);
  if (e.ann >= 0) label += " " + anns[e.ann].name;

  w.begin_object();
  w.kv("name", label);
  w.kv("ph", span ? "X" : "i");
  w.kv("pid", 0);
  // Core events land on their CPU's track; annotation-scoped events with
  // no CPU (episode spans, handoffs) on the annotation's own track.
  w.kv("tid", e.cpu >= 0 ? e.cpu : ann_tid(e.ann));
  w.kv("ts", e.ts);
  if (span) {
    w.kv("dur", e.ts2 - e.ts);
  } else {
    w.kv("s", "t");
  }
  w.key("args");
  w.begin_object();
  switch (e.kind) {
    case TraceKind::kBarrierEpisode:
    case TraceKind::kBarrierWait:
    case TraceKind::kSprHandoff:
      w.kv("episode", e.arg);
      break;
    case TraceKind::kL2MissBurst:
      w.kv("misses", e.arg);
      break;
    default:
      break;
  }
  w.end_object();
  w.end_object();
}

}  // namespace

const TelemetryConfig& global_telemetry() { return g_default; }
void set_global_telemetry(const TelemetryConfig& cfg) { g_default = cfg; }

Telemetry::Telemetry(const TelemetryConfig& cfg,
                     const perfmon::PerfCounters& ctr, Cycle start_cycle)
    : cfg_(cfg),
      sampler_(ctr, cfg.sample_window, start_cycle),
      recorder_(cfg.ring_capacity, cfg.l2_burst_gap) {}

void Telemetry::finalize(Cycle end) {
  // Guarded, not accidentally idempotent: the underlying instruments
  // tolerate a repeat call with the same `end`, but a later call with a
  // different `end` would append spurious windows/spans.
  if (finalized_) return;
  finalized_ = true;
  sampler_.finalize(end);
  recorder_.finalize(end);
}

std::string chrome_trace_json(const Telemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("clock", "simulated cycles (1 cycle = 1us trace time)");
  w.kv("dropped_events", t.recorder().dropped());
  w.kv("sample_window_cycles", t.sampler().window_cycles());
  w.end_object();

  w.key("traceEvents");
  w.begin_array();
  write_meta(w, "process_name", 0, "smt-sim");
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    write_meta(w, "thread_name", c, "cpu" + std::to_string(c));
  }
  const std::vector<Annotation>& anns = t.recorder().annotations();
  for (size_t i = 0; i < anns.size(); ++i) {
    const char* kind =
        anns[i].kind == Annotation::Kind::kBarrier ? "barrier " : "lock ";
    write_meta(w, "thread_name", ann_tid(static_cast<int>(i)),
               kind + anns[i].name);
  }
  for (const TraceEvent& e : t.recorder().events()) {
    write_event(w, e, anns);
  }
  write_counter_samples(w, t.sampler());
  w.end_array();

  w.end_object();
  return w.str();
}

bool write_chrome_trace_file(const Telemetry& t, const std::string& path) {
  return write_text_file(path, chrome_trace_json(t));
}

}  // namespace smt::trace
