// TraceRecorder: cycle-stamped event timeline of one simulated run.
//
// The core (and, through address annotations, the sync primitives and the
// SPR prefetch runner) feed it events as they happen: halt entry/exit,
// IPI send/wake, barrier arrivals paired into episode spans, lock
// acquire/release paired into held spans, and L2-miss bursts. Events live
// in a bounded ring buffer (oldest dropped first, with a drop count), and
// are serialized as Chrome trace-event JSON — loadable in Perfetto or
// chrome://tracing — by trace/telemetry.h.
//
// The recorder is an observer: it only reads simulation state and never
// touches the perf counters, so enabling it is guaranteed not to perturb
// any measurement (asserted bit-for-bit in trace_test).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace smt::trace {

enum class TraceKind : uint8_t {
  kHaltSpan,        ///< span: halt fetched -> running again (cpu track)
  kIpiSend,         ///< instant: sender executed `ipi` (cpu track)
  kIpiWake,         ///< instant: pending IPI consumed by a halted context
  kBarrierWait,     ///< span: first arriver's arrival -> episode completion
  kBarrierEpisode,  ///< span on the barrier's own track; arg = episode
  kSprHandoff,      ///< instant at an SPR barrier's episode completion
  kLockHeld,        ///< span: successful xchg-acquire -> release store
  kL2MissBurst,     ///< span covering >=1 L2 misses; arg = miss count
};

const char* name(TraceKind k);

/// One recorded event. Spans carry [ts, ts2); instants have ts2 == ts.
/// `cpu` is the logical-CPU track (-1 for per-annotation tracks), `ann`
/// the annotation id (-1 for core events), `arg` a kind-specific payload
/// (episode counter / miss count).
struct TraceEvent {
  Cycle ts = 0;
  Cycle ts2 = 0;
  uint64_t arg = 0;
  int16_t cpu = -1;
  int16_t ann = -1;
  TraceKind kind = TraceKind::kHaltSpan;
};

/// A shared-memory word (or pair) the recorder watches: barrier arrival
/// flags or a lock word, registered via the annotate_* calls.
struct Annotation {
  enum class Kind : uint8_t { kBarrier, kLock };
  Kind kind = Kind::kLock;
  std::string name;
  bool spr = false;  ///< barrier throttles an SPR prefetcher (handoffs)
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity, Cycle l2_burst_gap);

  // --- annotations (called by sync/kernels at workload setup) ------------
  int annotate_barrier(Addr flag0, Addr flag1, std::string name,
                       bool spr = false);
  int annotate_lock(Addr lock_addr, std::string name);
  const std::vector<Annotation>& annotations() const { return anns_; }

  /// True if `addr` is an annotated word — lets the core skip the value
  /// read-back for the (vast majority of) unwatched stores.
  bool watches(Addr addr) const { return watch_.count(addr) > 0; }

  // --- event feeds (called by cpu::Core while simulating) ----------------
  void on_halt_enter(CpuId cpu, Cycle now);
  void on_halt_exit(CpuId cpu, Cycle now);
  void on_ipi_send(CpuId cpu, Cycle now);
  void on_ipi_wake(CpuId cpu, Cycle now);
  void on_l2_miss(CpuId cpu, Cycle now);
  /// A store of `value` to an annotated address retired functionally.
  void on_store(CpuId cpu, Addr addr, uint64_t value, Cycle now);
  /// An xchg on an annotated address; `loaded` is the value it read.
  void on_xchg(CpuId cpu, Addr addr, uint64_t loaded, Cycle now);

  /// Closes still-open spans (bursts, halts, held locks) at `end`.
  void finalize(Cycle end);

  /// Events in timeline order of recording (oldest first).
  std::vector<TraceEvent> events() const;
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return cap_; }

 private:
  struct WatchSlot {
    int ann = -1;
    int side = 0;  // barrier flag index (0/1); unused for locks
  };
  struct BarrierState {
    uint64_t ep[2] = {0, 0};     // last stored episode per flag
    Cycle arrive[2] = {0, 0};    // cycle of that store
    int16_t arrive_cpu[2] = {-1, -1};
    uint64_t completed = 0;      // highest fully-arrived episode
  };
  struct LockState {
    bool held = false;
    Cycle since = 0;
    int16_t owner = -1;
  };
  struct BurstState {
    bool open = false;
    Cycle begin = 0;
    Cycle last = 0;
    uint64_t count = 0;
  };
  struct HaltState {
    bool open = false;
    Cycle begin = 0;
  };

  void push(const TraceEvent& e);
  void close_burst(int cpu);

  size_t cap_;
  Cycle l2_burst_gap_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // index of oldest event once the ring wrapped
  uint64_t dropped_ = 0;

  std::vector<Annotation> anns_;
  std::unordered_map<Addr, WatchSlot> watch_;
  std::vector<BarrierState> barriers_;  // indexed like anns_
  std::vector<LockState> locks_;        // indexed like anns_
  BurstState burst_[kNumLogicalCpus];
  HaltState halt_[kNumLogicalCpus];
};

}  // namespace smt::trace
