// Telemetry: the run-scoped bundle of the two time-resolved instruments —
// a CounterSampler (windowed counter time-series, serialized into the run
// report's `timeseries` section) and a TraceRecorder (cycle-stamped event
// timeline, serialized as Chrome trace-event JSON for Perfetto /
// chrome://tracing).
//
// A Machine owns at most one Telemetry, created either explicitly via
// Machine::enable_telemetry() or implicitly when the process-global
// default (set_global_telemetry, wired to SMT_BENCH_TRACE_DIR by
// bench/bench_util.h) is enabled. Disabled telemetry costs nothing: the
// core holds null pointers and every hook is a branch on them. Enabled
// telemetry never perturbs a measurement: both instruments are read-only
// observers of the counters and the simulation state (asserted
// bit-for-bit in trace_test).
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "perfmon/counters.h"
#include "trace/recorder.h"
#include "trace/sampler.h"

namespace smt::trace {

struct TelemetryConfig {
  bool enabled = false;
  /// Counter-sampling window in simulated cycles.
  Cycle sample_window = 8192;
  /// Trace ring-buffer capacity in events (oldest dropped beyond this).
  size_t ring_capacity = 1 << 16;
  /// Two L2 misses at most this many cycles apart belong to one burst.
  Cycle l2_burst_gap = 64;
  /// Attach the per-PC attribution profiler (src/profile/pc_profiler.h;
  /// run reports gain a `profile` section and move to schema /3).
  /// Independent of `enabled`: profiling without time-series is valid.
  bool pc_profile = false;
  /// Attach the SMT interference profiler (src/profile/interference.h;
  /// run reports gain an `interference` section and move to schema /4).
  /// Independent of `enabled`, like pc_profile. Wired to
  /// SMT_BENCH_INTERFERENCE by bench/bench_util.h.
  bool interference = false;
  /// Attach the pipeline-lifetime recorder (src/trace/pipeview.h; bench
  /// drivers write a Kanata .kanata file beside each report). Wired to
  /// SMT_BENCH_PIPEVIEW / SMT_BENCH_PIPEVIEW_WINDOW by bench/bench_util.h.
  bool pipeview = false;
  Cycle pipeview_begin = 0;
  Cycle pipeview_end = 100'000;
};

/// Process-global default consulted by Machine's constructor; disabled
/// unless a driver (bench_main) turns it on.
const TelemetryConfig& global_telemetry();
void set_global_telemetry(const TelemetryConfig& cfg);

class Telemetry {
 public:
  Telemetry(const TelemetryConfig& cfg, const perfmon::PerfCounters& ctr,
            Cycle start_cycle = 0);

  CounterSampler& sampler() { return sampler_; }
  const CounterSampler& sampler() const { return sampler_; }
  TraceRecorder& recorder() { return recorder_; }
  const TraceRecorder& recorder() const { return recorder_; }
  const TelemetryConfig& config() const { return cfg_; }

  /// Flushes partial sampler windows and open recorder spans at `end`
  /// (the run's final cycle). Explicitly idempotent: the first call wins
  /// and every later call — finalize is reached from run_workload,
  /// bench stats_from and report_from_machine, which may all touch the
  /// same Telemetry — is a guarded no-op, so windows and trace events are
  /// never flushed (and thus duplicated) twice.
  void finalize(Cycle end);

  bool finalized() const { return finalized_; }

 private:
  TelemetryConfig cfg_;
  CounterSampler sampler_;
  TraceRecorder recorder_;
  bool finalized_ = false;
};

/// Serializes the telemetry as a Chrome trace-event JSON document: one
/// track (tid) per logical CPU plus one per barrier/lock annotation,
/// counter ("C") tracks for the headline per-window counters, and
/// metadata naming every track. 1 simulated cycle is mapped to 1 us.
std::string chrome_trace_json(const Telemetry& t);

/// Writes chrome_trace_json() to `path`, creating missing parent
/// directories; logs to stderr and returns false on failure.
bool write_chrome_trace_file(const Telemetry& t, const std::string& path);

}  // namespace smt::trace
