#include "trace/recorder.h"

#include <algorithm>

#include "common/check.h"

namespace smt::trace {

const char* name(TraceKind k) {
  switch (k) {
    case TraceKind::kHaltSpan: return "halt";
    case TraceKind::kIpiSend: return "ipi_send";
    case TraceKind::kIpiWake: return "ipi_wake";
    case TraceKind::kBarrierWait: return "barrier_wait";
    case TraceKind::kBarrierEpisode: return "barrier_episode";
    case TraceKind::kSprHandoff: return "spr_handoff";
    case TraceKind::kLockHeld: return "lock_held";
    case TraceKind::kL2MissBurst: return "l2_miss_burst";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity, Cycle l2_burst_gap)
    : cap_(capacity), l2_burst_gap_(l2_burst_gap) {
  SMT_CHECK_MSG(capacity > 0, "trace ring capacity must be positive");
  ring_.reserve(std::min<size_t>(capacity, 4096));
}

void TraceRecorder::push(const TraceEvent& e) {
  if (ring_.size() < cap_) {
    ring_.push_back(e);
    return;
  }
  // Bounded ring: overwrite the oldest event.
  ring_[head_] = e;
  head_ = (head_ + 1) % cap_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

int TraceRecorder::annotate_barrier(Addr flag0, Addr flag1, std::string name,
                                    bool spr) {
  const int id = static_cast<int>(anns_.size());
  Annotation a;
  a.kind = Annotation::Kind::kBarrier;
  a.name = std::move(name);
  a.spr = spr;
  anns_.push_back(std::move(a));
  barriers_.resize(anns_.size());
  locks_.resize(anns_.size());
  watch_[flag0] = WatchSlot{id, 0};
  watch_[flag1] = WatchSlot{id, 1};
  return id;
}

int TraceRecorder::annotate_lock(Addr lock_addr, std::string name) {
  const int id = static_cast<int>(anns_.size());
  Annotation a;
  a.kind = Annotation::Kind::kLock;
  a.name = std::move(name);
  anns_.push_back(std::move(a));
  barriers_.resize(anns_.size());
  locks_.resize(anns_.size());
  watch_[lock_addr] = WatchSlot{id, 0};
  return id;
}

void TraceRecorder::on_halt_enter(CpuId cpu, Cycle now) {
  HaltState& h = halt_[idx(cpu)];
  h.open = true;
  h.begin = now;
}

void TraceRecorder::on_halt_exit(CpuId cpu, Cycle now) {
  HaltState& h = halt_[idx(cpu)];
  if (!h.open) return;
  h.open = false;
  push({h.begin, now, 0, static_cast<int16_t>(idx(cpu)), -1,
        TraceKind::kHaltSpan});
}

void TraceRecorder::on_ipi_send(CpuId cpu, Cycle now) {
  push({now, now, 0, static_cast<int16_t>(idx(cpu)), -1, TraceKind::kIpiSend});
}

void TraceRecorder::on_ipi_wake(CpuId cpu, Cycle now) {
  push({now, now, 0, static_cast<int16_t>(idx(cpu)), -1, TraceKind::kIpiWake});
}

void TraceRecorder::close_burst(int cpu) {
  BurstState& b = burst_[cpu];
  if (!b.open) return;
  b.open = false;
  push({b.begin, b.last + 1, b.count, static_cast<int16_t>(cpu), -1,
        TraceKind::kL2MissBurst});
}

void TraceRecorder::on_l2_miss(CpuId cpu, Cycle now) {
  BurstState& b = burst_[idx(cpu)];
  if (b.open && now >= b.last && now - b.last <= l2_burst_gap_) {
    b.last = now;
    ++b.count;
    return;
  }
  close_burst(idx(cpu));
  b.open = true;
  b.begin = now;
  b.last = now;
  b.count = 1;
}

void TraceRecorder::on_store(CpuId cpu, Addr addr, uint64_t value, Cycle now) {
  const auto it = watch_.find(addr);
  if (it == watch_.end()) return;
  const WatchSlot& slot = it->second;
  const Annotation& ann = anns_[slot.ann];
  if (ann.kind == Annotation::Kind::kLock) {
    // Only the release path stores to a lock word directly (acquisition
    // goes through xchg); a zero store while held closes the span.
    LockState& l = locks_[slot.ann];
    if (value == 0 && l.held) {
      l.held = false;
      push({l.since, now, 0, l.owner, static_cast<int16_t>(slot.ann),
            TraceKind::kLockHeld});
    }
    return;
  }

  // Barrier arrival: the store publishes this thread's episode counter.
  BarrierState& b = barriers_[slot.ann];
  const int s = slot.side;
  b.ep[s] = value;
  b.arrive[s] = now;
  b.arrive_cpu[s] = static_cast<int16_t>(idx(cpu));
  const uint64_t e = value;
  if (b.ep[1 - s] >= e && e > b.completed) {
    // Both flags reached episode e: the episode completes now. The other
    // side arrived first and is the one that actually waited.
    b.completed = e;
    push({b.arrive[1 - s], now, e, -1, static_cast<int16_t>(slot.ann),
          TraceKind::kBarrierEpisode});
    if (now > b.arrive[1 - s]) {
      push({b.arrive[1 - s], now, e, b.arrive_cpu[1 - s],
            static_cast<int16_t>(slot.ann), TraceKind::kBarrierWait});
    }
    if (ann.spr) {
      push({now, now, e, -1, static_cast<int16_t>(slot.ann),
            TraceKind::kSprHandoff});
    }
  }
}

void TraceRecorder::on_xchg(CpuId cpu, Addr addr, uint64_t loaded, Cycle now) {
  const auto it = watch_.find(addr);
  if (it == watch_.end()) return;
  const WatchSlot& slot = it->second;
  if (anns_[slot.ann].kind != Annotation::Kind::kLock) return;
  // Test-and-set acquire: the exchange that reads 0 owns the lock.
  LockState& l = locks_[slot.ann];
  if (loaded == 0 && !l.held) {
    l.held = true;
    l.since = now;
    l.owner = static_cast<int16_t>(idx(cpu));
  }
}

void TraceRecorder::finalize(Cycle end) {
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    close_burst(c);
    HaltState& h = halt_[c];
    if (h.open) {
      h.open = false;
      push({h.begin, end, 0, static_cast<int16_t>(c), -1,
            TraceKind::kHaltSpan});
    }
  }
  for (size_t i = 0; i < locks_.size(); ++i) {
    LockState& l = locks_[i];
    if (l.held) {
      l.held = false;
      push({l.since, end, 0, l.owner, static_cast<int16_t>(i),
            TraceKind::kLockHeld});
    }
  }
}

}  // namespace smt::trace
