#include "trace/pipeview.h"

#include <algorithm>
#include <cstdio>

#include "common/io.h"
#include "isa/disasm.h"
#include "isa/program.h"

namespace smt::trace {

void PipeViewRecorder::on_fetch(CpuId cpu, uint64_t uid, uint32_t pc,
                                Cycle now) {
  if (now < cfg_.begin || now > cfg_.end) return;
  if (recs_.size() >= cfg_.max_uops) {
    ++dropped_;
    return;
  }
  UopRecord r;
  r.uid = uid;
  r.pc = pc;
  r.cpu = static_cast<uint8_t>(idx(cpu));
  r.fetch = now;
  index_.emplace(uid, recs_.size());
  recs_.push_back(r);
}

PipeViewRecorder::UopRecord* PipeViewRecorder::find(uint64_t uid) {
  const auto it = index_.find(uid);
  return it == index_.end() ? nullptr : &recs_[it->second];
}

void PipeViewRecorder::on_dispatch(CpuId cpu, uint64_t uid, Cycle now) {
  (void)cpu;
  UopRecord* r = find(uid);
  if (r == nullptr) return;
  r->has_dispatch = true;
  r->dispatch = now;
}

void PipeViewRecorder::on_issue(CpuId cpu, uint64_t uid, int port, Cycle now,
                                Cycle done) {
  (void)cpu;
  UopRecord* r = find(uid);
  if (r == nullptr) return;
  r->has_issue = true;
  r->port = static_cast<int8_t>(port);
  r->issue = now;
  r->done = done;
}

void PipeViewRecorder::on_retire(CpuId cpu, uint64_t uid, Cycle now) {
  (void)cpu;
  UopRecord* r = find(uid);
  if (r == nullptr) return;
  r->has_retire = true;
  r->retire = now;
}

namespace {

// Issue-port names, indexed like cpu::IssuePort (kept local to avoid a
// trace -> cpu dependency; the mapping is asserted by pipeview tests).
constexpr const char* kPortNames[] = {"alu0",    "alu1", "fp",
                                      "fp_move", "load", "store"};

struct KEvent {
  Cycle cycle = 0;
  uint64_t order = 0;  // stable tiebreak: emission sequence
  std::string text;    // one or more newline-terminated Kanata commands
};

void emit(std::vector<KEvent>& out, Cycle cycle, std::string text) {
  out.push_back({cycle, out.size(), std::move(text)});
}

}  // namespace

std::string PipeViewRecorder::to_kanata() const {
  std::vector<KEvent> events;
  char buf[256];
  uint64_t retire_id = 0;
  for (const UopRecord& r : recs_) {
    // Emit only complete lifetimes inside the window: every stage stamp of
    // a uop that retired by cfg_.end is itself <= cfg_.end, which is what
    // makes the log window-bounded.
    if (!r.has_retire || r.retire > cfg_.end) continue;
    std::string intro;
    std::snprintf(buf, sizeof buf, "I\t%llu\t%llu\t%u\n",
                  static_cast<unsigned long long>(r.uid),
                  static_cast<unsigned long long>(r.uid),
                  static_cast<unsigned>(r.cpu));
    intro += buf;
    const std::optional<isa::Program>& prog = progs_[r.cpu];
    std::string text;
    if (prog.has_value() && r.pc < prog->size()) {
      text = isa::disasm(prog->at(r.pc));
    }
    std::snprintf(buf, sizeof buf, "L\t%llu\t0\t[cpu%u] %04u: %s\n",
                  static_cast<unsigned long long>(r.uid),
                  static_cast<unsigned>(r.cpu), r.pc, text.c_str());
    intro += buf;
    std::snprintf(buf, sizeof buf, "S\t%llu\t0\tF\n",
                  static_cast<unsigned long long>(r.uid));
    intro += buf;
    emit(events, r.fetch, std::move(intro));

    if (r.has_dispatch) {
      std::snprintf(buf, sizeof buf, "S\t%llu\t0\tDs\n",
                    static_cast<unsigned long long>(r.uid));
      emit(events, r.dispatch, buf);
    }
    if (r.has_issue) {
      std::string x;
      std::snprintf(buf, sizeof buf, "S\t%llu\t0\tX\n",
                    static_cast<unsigned long long>(r.uid));
      x += buf;
      const char* port =
          r.port >= 0 && r.port < 6 ? kPortNames[r.port] : "none";
      std::snprintf(buf, sizeof buf, "L\t%llu\t1\tport=%s issue=%llu done=%llu\n",
                    static_cast<unsigned long long>(r.uid), port,
                    static_cast<unsigned long long>(r.issue),
                    static_cast<unsigned long long>(r.done));
      x += buf;
      emit(events, r.issue, std::move(x));
      if (r.done > r.issue && r.done < r.retire) {
        std::snprintf(buf, sizeof buf, "S\t%llu\t0\tCm\n",
                      static_cast<unsigned long long>(r.uid));
        emit(events, r.done, buf);
      }
    }
    std::snprintf(buf, sizeof buf, "R\t%llu\t%llu\t0\n",
                  static_cast<unsigned long long>(r.uid),
                  static_cast<unsigned long long>(retire_id++));
    emit(events, r.retire, buf);
  }

  std::string out = "Kanata\t0004\n";
  if (events.empty()) return out;
  std::sort(events.begin(), events.end(), [](const KEvent& a, const KEvent& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.order < b.order;
  });
  Cycle cur = events.front().cycle;
  std::snprintf(buf, sizeof buf, "C=\t%llu\n",
                static_cast<unsigned long long>(cur));
  out += buf;
  for (const KEvent& e : events) {
    if (e.cycle > cur) {
      std::snprintf(buf, sizeof buf, "C\t%llu\n",
                    static_cast<unsigned long long>(e.cycle - cur));
      out += buf;
      cur = e.cycle;
    }
    out += e.text;
  }
  return out;
}

bool write_kanata_file(const PipeViewRecorder& pv, const std::string& path) {
  return write_text_file(path, pv.to_kanata());
}

}  // namespace smt::trace
