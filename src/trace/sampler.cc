#include "trace/sampler.h"

#include "common/check.h"

namespace smt::trace {

CounterSampler::CounterSampler(const perfmon::PerfCounters& ctr, Cycle window,
                               Cycle start)
    : ctr_(ctr), window_(window), next_(start + window), last_(start) {
  SMT_CHECK_MSG(window > 0, "sampler window must be positive");
  prev_ = ctr_.snapshot();
}

void CounterSampler::push_window(Cycle end) {
  const perfmon::Snapshot cur = ctr_.snapshot();
  CounterWindow w;
  w.begin = last_;
  w.end = end;
  w.delta = cur - prev_;
  windows_.push_back(w);
  prev_ = cur;
  last_ = end;
}

void CounterSampler::on_boundary(Cycle cycle) {
  SMT_DCHECK(cycle == next_);
  push_window(cycle);
  next_ = cycle + window_;
}

void CounterSampler::finalize(Cycle end) {
  // Catch up on full windows first (a machine driven by hand, without the
  // core's run loop, never calls on_boundary), then flush the partial tail.
  while (next_ <= end) {
    push_window(next_);
    next_ += window_;
  }
  if (end > last_) push_window(end);
  // next_ stays on the regular grid: if the machine keeps running, the
  // following window is the (shorter) remainder [end, next_).
}

}  // namespace smt::trace
