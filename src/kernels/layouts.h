// Blocked array layouts with binary-mask (shift/or) indexing.
//
// The paper's MM kernel uses Blocked Array Layouts [Athanasaki & Koziris,
// INTERACT'04] where a matrix is stored tile-by-tile and element addresses
// are computed with binary masks. For power-of-two matrix order N and tile
// order T, the word offset of element (i, j) is a bit-field concatenation
//
//   offset(i,j) = (i_hi << (log2N + log2T)) | (j_hi << (2*log2T))
//               | (i_lo << log2T) | j_lo
//
// where i = (i_hi << log2T) | i_lo and j likewise. The four fields occupy
// disjoint bit ranges, so the offset is computable with only shifts, ANDs
// and ORs — which is exactly why ~25% of MM's dynamic instructions are
// logical ops executable only on ALU0 (paper §5.3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace smt::kernels {

/// Integer log2 of a power of two; checks exactness.
int log2_exact(size_t v);

/// Host-side mirror of the blocked layout used by the DSL kernels; tests
/// and verifiers use it to read simulated matrices back.
class BlockedLayout {
 public:
  BlockedLayout(size_t n, size_t tile);

  size_t n() const { return n_; }
  size_t tile() const { return tile_; }
  int log2n() const { return log2n_; }
  int log2t() const { return log2t_; }
  size_t words() const { return n_ * n_; }
  size_t tiles_per_dim() const { return n_ >> log2t_; }
  size_t tile_words() const { return tile_ * tile_; }

  /// Word offset of element (i, j).
  size_t offset(size_t i, size_t j) const {
    SMT_DCHECK(i < n_ && j < n_);
    const size_t m = tile_ - 1;
    return ((i & ~m) << log2n_) | ((j & ~m) << log2t_) | ((i & m) << log2t_) |
           (j & m);
  }

  /// Word offset of the first element of tile (ti, tj).
  size_t tile_offset(size_t ti, size_t tj) const {
    SMT_DCHECK(ti < tiles_per_dim() && tj < tiles_per_dim());
    return ((ti << (log2n_ - log2t_)) | tj) << (2 * log2t_);
  }

 private:
  size_t n_;
  size_t tile_;
  int log2n_;
  int log2t_;
};

}  // namespace smt::kernels
