// NAS-BT-like block-tridiagonal solver (paper §5.2.ii).
//
// Solves independent block-tridiagonal line systems of 5x5 blocks (the
// computational core of NPB BT's ADI sweeps) by block Thomas elimination:
// forward elimination with pivot-free 5x5 block Gaussian solves, then
// back substitution. All 5x5 block operations are fully unrolled in the
// emitted code, giving the fp-dense, load-heavy, low-ALU dynamic mix of
// Table 1's BT column.
//
// Variants:
//   kSerial     one thread solves every line
//   kTlpCoarse  lines are assigned to threads by parity — the "perfect
//               workload partitioning" that makes BT the paper's one TLP
//               success story (disjoint data, no synchronization)
//   kTlpPfetch  worker solves serially; the sibling prefetches the next
//               line's blocks, one barrier per line
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "kernels/reference.h"
#include "mem/sim_memory.h"
#include "sync/primitives.h"

namespace smt::kernels {

enum class BtMode { kSerial, kTlpCoarse, kTlpPfetch };

const char* name(BtMode m);

struct BtParams {
  size_t lines = 64;   // number of independent line systems
  size_t cells = 32;   // cells per line
  BtMode mode = BtMode::kSerial;
  uint64_t seed = 23;
  sync::SpinKind spin = sync::SpinKind::kPause;
  bool halt_barriers = false;
  Addr mem_base = 0x10000;   ///< data window base (see MatMulParams)
  Addr sync_base = 0x8000;
};

class BtWorkload : public core::Workload {
 public:
  explicit BtWorkload(const BtParams& p);

  const std::string& name() const override { return name_; }
  void setup(core::Machine& m) override;
  std::vector<isa::Program> programs() const override;
  bool verify(const core::Machine& m) const override;
  core::MemInfo mem_info() const override;

  const BtParams& params() const { return p_; }

 private:
  BtParams p_;
  std::string name_;
  Addr base_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<BtLine> host_solved_;  // reference solutions per line
  std::vector<isa::Program> programs_;
  std::unique_ptr<mem::MemoryLayout> sync_layout_;
  std::unique_ptr<sync::TwoThreadBarrier> barrier_;
};

}  // namespace smt::kernels
