// Small emission helpers shared by the kernel builders.
#pragma once

#include "isa/asm_builder.h"

namespace smt::kernels {

/// Counted loop emitter:
///
///   CountedLoop l(a, IReg::R3, 0, 16);   // emits "r3 = 0" + binds top
///   ... body ...
///   l.close();                           // emits "r3 += step; if < end ^"
///
/// The index register must not be clobbered by the body.
class CountedLoop {
 public:
  CountedLoop(isa::AsmBuilder& a, isa::IReg idx, int64_t begin, int64_t end,
              int64_t step = 1)
      : a_(a), idx_(idx), end_(end), step_(step) {
    a_.imovi(idx_, begin);
    top_ = a_.here();
  }

  CountedLoop(const CountedLoop&) = delete;
  CountedLoop& operator=(const CountedLoop&) = delete;

  void close() {
    a_.iaddi(idx_, idx_, step_);
    a_.bri(isa::BrCond::kLt, idx_, end_, top_);
  }

 private:
  isa::AsmBuilder& a_;
  isa::IReg idx_;
  int64_t end_;
  int64_t step_;
  isa::Label top_;
};

}  // namespace smt::kernels
