#include "kernels/lu.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kernels/emit_util.h"
#include "kernels/layouts.h"
#include "kernels/reference.h"

namespace smt::kernels {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;

namespace {

// Register conventions for all LU variants.
//
//   r0 = kk (tile step)   r1 = it/jt (tile loop)   r2 = jt (trailing)
//   r3 = k   r4 = i   r5 = j                       (intra-tile)
//   r6, r7, r8  = tile base pointers
//   r9, r10, r11 = row pointers
//   r12, r13 = scratch      r14 = sync scratch     r15 = barrier epoch
constexpr IReg kKk = IReg::R0, kT1 = IReg::R1, kT2 = IReg::R2;
constexpr IReg kK = IReg::R3, kI = IReg::R4, kJ = IReg::R5;
constexpr IReg kB0 = IReg::R6, kB1 = IReg::R7, kB2 = IReg::R8;
constexpr IReg kR0 = IReg::R9, kR1 = IReg::R10, kR2 = IReg::R11;
constexpr IReg kS0 = IReg::R12, kS1 = IReg::R13;
constexpr IReg kSync = IReg::R14, kEpoch = IReg::R15;

struct LuCtx {
  Addr base;
  int64_t n, t, nt;
  int log2n, log2t;
  int64_t row_bytes() const { return n * 8; }
};

/// dst = &A[ti*T][tj*T]: base + ti*T*n*8 + tj*T*8 via shifts and adds.
void emit_lu_tile_base(AsmBuilder& a, const LuCtx& c, IReg dst, IReg ti,
                       IReg tj) {
  a.ishli(kS0, ti, c.log2t + c.log2n + 3);
  a.ishli(dst, tj, c.log2t + 3);
  a.iadd(dst, dst, kS0);
  a.iaddi(dst, dst, static_cast<int64_t>(c.base));
}

/// A hand-rolled loop whose index starts at reg `start_plus_one_of` + 1 and
/// runs to `end` (used by the triangular intra-tile loops).
struct TriLoop {
  TriLoop(AsmBuilder& a, IReg idx, IReg start_after, int64_t end)
      : a_(a), idx_(idx), end_(end) {
    a_.iaddi(idx_, start_after, 1);
    top_ = a_.here();
    done_ = a_.label();
    a_.bri(BrCond::kGe, idx_, end_, done_);
  }
  void close() {
    a_.iaddi(idx_, idx_, 1);
    a_.jmp(top_);
    a_.bind(done_);
  }
  AsmBuilder& a_;
  IReg idx_;
  int64_t end_;
  Label top_, done_;
};

/// In-place LU factorization of the T x T tile at kB0 (row stride n*8).
void emit_diag_factor(AsmBuilder& a, const LuCtx& c) {
  a.imov(kR0, kB0);                       // row k
  CountedLoop lk(a, kK, 0, c.t);
  {
    a.fload(FReg::F1, Mem::bi(kR0, kK, 3));  // pivot A[k,k]
    a.fmovi(FReg::F0, 1.0);
    a.fdiv(FReg::F0, FReg::F0, FReg::F1);    // reciprocal
    a.iaddi(kR1, kR0, c.row_bytes());        // row i = k+1
    TriLoop li(a, kI, kK, c.t);
    {
      a.fload(FReg::F2, Mem::bi(kR1, kK, 3));  // A[i,k]
      a.fmul(FReg::F2, FReg::F2, FReg::F0);    // l_ik
      a.fstore(FReg::F2, Mem::bi(kR1, kK, 3));
      TriLoop lj(a, kJ, kK, c.t);
      {
        a.fload(FReg::F3, Mem::bi(kR0, kJ, 3));  // A[k,j]
        a.fmul(FReg::F3, FReg::F3, FReg::F2);
        a.fload(FReg::F4, Mem::bi(kR1, kJ, 3));  // A[i,j]
        a.fsub(FReg::F4, FReg::F4, FReg::F3);
        a.fstore(FReg::F4, Mem::bi(kR1, kJ, 3));
      }
      lj.close();
      a.iaddi(kR1, kR1, c.row_bytes());
    }
    li.close();
    a.iaddi(kR0, kR0, c.row_bytes());
  }
  lk.close();
}

/// Target tile at kB1 <- L(kB0)^-1 * target (unit lower-triangular solve).
void emit_row_solve(AsmBuilder& a, const LuCtx& c) {
  a.imov(kR2, kB1);                       // target row k
  CountedLoop lk(a, kK, 0, c.t);
  {
    TriLoop li(a, kI, kK, c.t);
    {
      // kR0 = L row i, kR1 = target row i.
      a.ishli(kS0, kI, c.log2n + 3);
      a.iadd(kR0, kB0, kS0);
      a.iadd(kR1, kB1, kS0);
      a.fload(FReg::F0, Mem::bi(kR0, kK, 3));  // L[i,k]
      CountedLoop lj(a, kJ, 0, c.t);
      {
        a.fload(FReg::F1, Mem::bi(kR2, kJ, 3));  // target[k,j]
        a.fmul(FReg::F1, FReg::F1, FReg::F0);
        a.fload(FReg::F2, Mem::bi(kR1, kJ, 3));  // target[i,j]
        a.fsub(FReg::F2, FReg::F2, FReg::F1);
        a.fstore(FReg::F2, Mem::bi(kR1, kJ, 3));
      }
      lj.close();
    }
    li.close();
    a.iaddi(kR2, kR2, c.row_bytes());
  }
  lk.close();
}

/// Target tile at kB1 <- target * U(kB0)^-1 (upper-triangular solve from
/// the right, right-looking: scale column k, then update columns j > k).
void emit_col_solve(AsmBuilder& a, const LuCtx& c) {
  a.imov(kR0, kB0);                       // U row k
  CountedLoop lk(a, kK, 0, c.t);
  {
    a.fload(FReg::F1, Mem::bi(kR0, kK, 3));  // U[k,k]
    a.fmovi(FReg::F0, 1.0);
    a.fdiv(FReg::F0, FReg::F0, FReg::F1);
    // Scale column k of the target (strided walk down the rows).
    a.imov(kR1, kB1);
    CountedLoop li(a, kI, 0, c.t);
    {
      a.fload(FReg::F2, Mem::bi(kR1, kK, 3));
      a.fmul(FReg::F2, FReg::F2, FReg::F0);
      a.fstore(FReg::F2, Mem::bi(kR1, kK, 3));
      a.iaddi(kR1, kR1, c.row_bytes());
    }
    li.close();
    // Update columns j > k: target[:,j] -= target[:,k] * U[k,j].
    TriLoop lj(a, kJ, kK, c.t);
    {
      a.fload(FReg::F3, Mem::bi(kR0, kJ, 3));  // U[k,j]
      a.imov(kR1, kB1);
      CountedLoop li2(a, kI, 0, c.t);
      {
        a.fload(FReg::F4, Mem::bi(kR1, kK, 3));  // target[i,k]
        a.fmul(FReg::F4, FReg::F4, FReg::F3);
        a.fload(FReg::F5, Mem::bi(kR1, kJ, 3));  // target[i,j]
        a.fsub(FReg::F5, FReg::F5, FReg::F4);
        a.fstore(FReg::F5, Mem::bi(kR1, kJ, 3));
        a.iaddi(kR1, kR1, c.row_bytes());
      }
      li2.close();
    }
    lj.close();
    a.iaddi(kR0, kR0, c.row_bytes());
  }
  lk.close();
}

/// Trailing update: tile(kB2) -= tile(kB0 = left) * tile(kB1 = top).
void emit_trailing_update(AsmBuilder& a, const LuCtx& c) {
  a.imov(kR0, kB0);  // left row i
  a.imov(kR1, kB2);  // target row i
  CountedLoop li(a, kI, 0, c.t);
  {
    a.imov(kR2, kB1);  // top row k
    CountedLoop lk(a, kK, 0, c.t);
    {
      a.fload(FReg::F0, Mem::bi(kR0, kK, 3));  // left[i,k]
      CountedLoop lj(a, kJ, 0, c.t, 2);
      {
        a.fload(FReg::F1, Mem::bi(kR2, kJ, 3));
        a.fmul(FReg::F1, FReg::F1, FReg::F0);
        a.fload(FReg::F2, Mem::bi(kR1, kJ, 3));
        a.fsub(FReg::F2, FReg::F2, FReg::F1);
        a.fstore(FReg::F2, Mem::bi(kR1, kJ, 3));
        a.fload(FReg::F1, Mem::bi(kR2, kJ, 3 /*scale*/, 8));
        a.fmul(FReg::F1, FReg::F1, FReg::F0);
        a.fload(FReg::F2, Mem::bi(kR1, kJ, 3, 8));
        a.fsub(FReg::F2, FReg::F2, FReg::F1);
        a.fstore(FReg::F2, Mem::bi(kR1, kJ, 3, 8));
      }
      lj.close();
      a.iaddi(kR2, kR2, c.row_bytes());
    }
    lk.close();
    a.iaddi(kR0, kR0, c.row_bytes());
    a.iaddi(kR1, kR1, c.row_bytes());
  }
  li.close();
}

/// Prefetches the tile at (ti, tj) element by element with full address
/// computation per element (the paper's LU prefetcher profile: as many
/// retired instructions as the worker, dominated by address arithmetic).
void emit_prefetch_tile(AsmBuilder& a, const LuCtx& c, IReg ti, IReg tj) {
  emit_lu_tile_base(a, c, kB0, ti, tj);
  CountedLoop li(a, kI, 0, c.t);
  {
    CountedLoop lj(a, kJ, 0, c.t);
    {
      a.ishli(kS0, kI, c.log2n + 3);
      a.iadd(kS0, kS0, kB0);
      a.ishli(kS1, kJ, 3);
      a.iadd(kS0, kS0, kS1);
      a.prefetch(Mem::bd(kS0, 0), /*to_l1=*/true);
    }
    lj.close();
  }
  li.close();
}

/// Tile loop from kk+1 to NT over register `idx`.
struct TileTriLoop {
  TileTriLoop(AsmBuilder& a, const LuCtx& c, IReg idx) : a_(a), nt_(c.nt) {
    a_.iaddi(idx, kKk, 1);
    idx_ = idx;
    top_ = a_.here();
    done_ = a_.label();
    a_.bri(BrCond::kGe, idx, nt_, done_);
  }
  void close() {
    a_.iaddi(idx_, idx_, 1);
    a_.jmp(top_);
    a_.bind(done_);
  }
  AsmBuilder& a_;
  int64_t nt_;
  IReg idx_;
  Label top_, done_;
};

/// Emits "skip unless (value of reg) has parity `tid`": used by the coarse
/// variant to split panel/trailing tiles between the threads.
struct ParityGuard {
  ParityGuard(AsmBuilder& a, IReg reg, int tid) : a_(a) {
    skip_ = a_.label();
    a_.iandi(kS1, reg, 1);
    a_.bri(BrCond::kNe, kS1, tid, skip_);
  }
  void close() { a_.bind(skip_); }
  AsmBuilder& a_;
  Label skip_;
};

}  // namespace

const char* name(LuMode m) {
  switch (m) {
    case LuMode::kSerial: return "serial";
    case LuMode::kTlpCoarse: return "tlp-coarse";
    case LuMode::kTlpPfetch: return "tlp-pfetch";
  }
  return "?";
}

LuWorkload::LuWorkload(const LuParams& p)
    : p_(p),
      name_(std::string("lu.") + kernels::name(p.mode) + ".n" +
            std::to_string(p.n)) {
  SMT_CHECK_MSG(p.tile >= 4 && p.tile <= p.n, "bad tile size");
}

void LuWorkload::setup(core::Machine& m) {
  const size_t n = p_.n;
  mem::MemoryLayout mem_layout(p_.mem_base);
  base_ = mem_layout.alloc("A", n * n * 8, 64);
  data_regions_ = mem_layout.regions();

  Rng rng(p_.seed);
  std::vector<double> host = random_diag_dominant_matrix(n, rng);
  m.memory().store_f64_array(base_, host);

  // The reference result: the same tiled algorithm, host-side, so the
  // comparison is bit-for-bit in exact arithmetic order... floating-point
  // order differs from plain ref_lu only inside tiles, so run the identical
  // tiled schedule here.
  host_ref_ = host;
  {
    const size_t T = p_.tile, NT = n / T;
    auto at = [&](size_t i, size_t j) -> double& {
      return host_ref_[i * n + j];
    };
    for (size_t kk = 0; kk < NT; ++kk) {
      const size_t k0 = kk * T;
      // Diagonal factorization.
      for (size_t k = k0; k < k0 + T; ++k) {
        const double recip = 1.0 / at(k, k);
        for (size_t i = k + 1; i < k0 + T; ++i) {
          at(i, k) *= recip;
          for (size_t j = k + 1; j < k0 + T; ++j) {
            at(i, j) -= at(i, k) * at(k, j);
          }
        }
      }
      // Row panel: L^-1 * tile.
      for (size_t jt = kk + 1; jt < NT; ++jt) {
        const size_t j0 = jt * T;
        for (size_t k = k0; k < k0 + T; ++k) {
          for (size_t i = k + 1; i < k0 + T; ++i) {
            const double l = at(i, k);
            for (size_t j = j0; j < j0 + T; ++j) at(i, j) -= l * at(k, j);
          }
        }
      }
      // Column panel: tile * U^-1 (right-looking).
      for (size_t it = kk + 1; it < NT; ++it) {
        const size_t i0 = it * T;
        for (size_t k = k0; k < k0 + T; ++k) {
          const double recip = 1.0 / at(k, k);
          for (size_t i = i0; i < i0 + T; ++i) at(i, k) *= recip;
          for (size_t j = k + 1; j < k0 + T; ++j) {
            const double u = at(k, j);
            for (size_t i = i0; i < i0 + T; ++i) at(i, j) -= at(i, k) * u;
          }
        }
      }
      // Trailing update.
      for (size_t it = kk + 1; it < NT; ++it) {
        for (size_t jt = kk + 1; jt < NT; ++jt) {
          const size_t i0 = it * T, j0 = jt * T;
          for (size_t i = i0; i < i0 + T; ++i) {
            for (size_t k = k0; k < k0 + T; ++k) {
              const double l = at(i, k);
              for (size_t j = j0; j < j0 + T; ++j) at(i, j) -= l * at(k, j);
            }
          }
        }
      }
    }
  }

  LuCtx ctx;
  ctx.base = base_;
  ctx.n = static_cast<int64_t>(n);
  ctx.t = static_cast<int64_t>(p_.tile);
  ctx.nt = static_cast<int64_t>(n / p_.tile);
  ctx.log2n = log2_exact(n);
  ctx.log2t = log2_exact(p_.tile);

  const bool coarse = p_.mode == LuMode::kTlpCoarse;
  const bool pfetch = p_.mode == LuMode::kTlpPfetch;

  if (coarse || pfetch) {
    sync_layout_ = std::make_unique<mem::MemoryLayout>(p_.sync_base);
    barrier_ = std::make_unique<sync::TwoThreadBarrier>(*sync_layout_,
                                                        name_ + ".bar");
    if (m.telemetry() != nullptr) {
      barrier_->annotate(m.telemetry()->recorder(), name_ + ".bar",
                         /*spr=*/pfetch);
    }
  }

  auto emit_barrier = [&](AsmBuilder& a, int tid, bool sleeper) {
    if (p_.halt_barriers && pfetch) {
      if (sleeper) {
        barrier_->emit_wait_sleeper(a, tid, kEpoch, kSync);
      } else {
        barrier_->emit_wait_waker(a, tid, kEpoch, kSync, p_.spin);
      }
    } else {
      barrier_->emit_wait(a, tid, kEpoch, kSync, p_.spin);
    }
  };

  programs_.clear();

  // --- Computation program (serial; coarse threads; pfetch worker) -------
  // `tid` < 0 means "run everything, no barriers" (serial). For coarse,
  // each thread runs the kk loop with parity-guarded panel/trailing tiles
  // and a barrier after each phase. For pfetch, the worker (tid 0) runs
  // everything, with a barrier before each phase.
  auto build_compute = [&](int tid, bool with_barriers,
                           bool partitioned) -> isa::Program {
    AsmBuilder a(name_ + (tid >= 0 ? ".t" + std::to_string(tid) : ""));
    if (with_barriers) barrier_->emit_init(a, kEpoch);
    CountedLoop lkk(a, kKk, 0, ctx.nt);
    {
      // Phase 0: diagonal tile (thread 0 / serial).
      if (with_barriers) emit_barrier(a, tid, /*sleeper=*/false);
      if (!partitioned || tid == 0) {
        emit_lu_tile_base(a, ctx, kB0, kKk, kKk);
        emit_diag_factor(a, ctx);
      }
      if (with_barriers && partitioned) {
        emit_barrier(a, tid, /*sleeper=*/false);
      }

      // Phase 1: panels.
      if (with_barriers && !partitioned) {
        emit_barrier(a, tid, /*sleeper=*/false);
      }
      {
        TileTriLoop ljt(a, ctx, kT1);
        if (partitioned) {
          ParityGuard g(a, kT1, tid);
          emit_lu_tile_base(a, ctx, kB0, kKk, kKk);
          emit_lu_tile_base(a, ctx, kB1, kKk, kT1);
          emit_row_solve(a, ctx);
          g.close();
        } else {
          emit_lu_tile_base(a, ctx, kB0, kKk, kKk);
          emit_lu_tile_base(a, ctx, kB1, kKk, kT1);
          emit_row_solve(a, ctx);
        }
        ljt.close();
        TileTriLoop lit(a, ctx, kT1);
        if (partitioned) {
          ParityGuard g(a, kT1, tid);
          emit_lu_tile_base(a, ctx, kB0, kKk, kKk);
          emit_lu_tile_base(a, ctx, kB1, kT1, kKk);
          emit_col_solve(a, ctx);
          g.close();
        } else {
          emit_lu_tile_base(a, ctx, kB0, kKk, kKk);
          emit_lu_tile_base(a, ctx, kB1, kT1, kKk);
          emit_col_solve(a, ctx);
        }
        lit.close();
      }
      if (with_barriers) emit_barrier(a, tid, /*sleeper=*/false);

      // Phase 2: trailing update.
      {
        TileTriLoop lit(a, ctx, kT1);
        TileTriLoop ljt(a, ctx, kT2);
        if (partitioned) {
          a.iadd(kS1, kT1, kT2);  // parity of it+jt splits the tiles
          ParityGuard g(a, kS1, tid);
          emit_lu_tile_base(a, ctx, kB0, kT1, kKk);
          emit_lu_tile_base(a, ctx, kB1, kKk, kT2);
          emit_lu_tile_base(a, ctx, kB2, kT1, kT2);
          emit_trailing_update(a, ctx);
          g.close();
        } else {
          emit_lu_tile_base(a, ctx, kB0, kT1, kKk);
          emit_lu_tile_base(a, ctx, kB1, kKk, kT2);
          emit_lu_tile_base(a, ctx, kB2, kT1, kT2);
          emit_trailing_update(a, ctx);
        }
        ljt.close();
        lit.close();
      }
      // No barrier after the trailing phase: the next step's phase-0
      // barrier provides the ordering, and after the last step the
      // threads simply exit.
    }
    lkk.close();
    a.exit();
    return a.take();
  };

  switch (p_.mode) {
    case LuMode::kSerial:
      programs_.push_back(
          build_compute(-1, /*with_barriers=*/false, /*partitioned=*/false));
      break;

    case LuMode::kTlpCoarse:
      programs_.push_back(
          build_compute(0, /*with_barriers=*/true, /*partitioned=*/true));
      programs_.push_back(
          build_compute(1, /*with_barriers=*/true, /*partitioned=*/true));
      break;

    case LuMode::kTlpPfetch: {
      // Worker: serial schedule with a barrier before each phase.
      programs_.push_back(
          build_compute(0, /*with_barriers=*/true, /*partitioned=*/false));
      // Prefetcher: stays one phase ahead. While the worker runs phase p of
      // step kk, the prefetcher fetches the tiles of the next phase.
      AsmBuilder a(name_ + ".pfetch");
      barrier_->emit_init(a, kEpoch);
      // Ahead of the loop: the first diagonal tile.
      a.imovi(kT1, 0);
      emit_prefetch_tile(a, ctx, kT1, kT1);
      CountedLoop lkk(a, kKk, 0, ctx.nt);
      {
        // Worker starts phase 0 (diag) -> prefetch the panels.
        emit_barrier(a, 1, /*sleeper=*/true);
        {
          TileTriLoop ljt(a, ctx, kT1);
          emit_prefetch_tile(a, ctx, kKk, kT1);
          ljt.close();
          TileTriLoop lit(a, ctx, kT1);
          emit_prefetch_tile(a, ctx, kT1, kKk);
          lit.close();
        }
        // Worker starts phase 1 (panels) -> prefetch the trailing tiles.
        emit_barrier(a, 1, /*sleeper=*/true);
        {
          TileTriLoop lit(a, ctx, kT1);
          TileTriLoop ljt(a, ctx, kT2);
          emit_prefetch_tile(a, ctx, kT1, kT2);
          ljt.close();
          lit.close();
        }
        // Worker starts phase 2 (trailing) -> prefetch the next diag tile.
        emit_barrier(a, 1, /*sleeper=*/true);
        {
          Label skip = a.label();
          a.iaddi(kT1, kKk, 1);
          a.bri(BrCond::kGe, kT1, ctx.nt, skip);
          emit_prefetch_tile(a, ctx, kT1, kT1);
          a.bind(skip);
        }
      }
      lkk.close();
      a.exit();
      programs_.push_back(a.take());
      break;
    }
  }
}

std::vector<isa::Program> LuWorkload::programs() const { return programs_; }

bool LuWorkload::verify(const core::Machine& m) const {
  const size_t n = p_.n;
  for (size_t i = 0; i < n * n; ++i) {
    const double got = m.memory().read_f64(base_ + 8 * i);
    if (rel_err(got, host_ref_[i]) > 1e-9) return false;
  }
  return true;
}


core::MemInfo LuWorkload::mem_info() const {
  return {data_regions_,
          sync_layout_ != nullptr ? sync_layout_->regions()
                                  : std::vector<mem::MemoryLayout::Region>{},
          /*complete=*/true};
}

}  // namespace smt::kernels
