#include "kernels/bt.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kernels/emit_util.h"

namespace smt::kernels {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;

namespace {

constexpr int64_t B = static_cast<int64_t>(kBtBlock);   // 5
constexpr int64_t kAOff = 0;                            // sub-diagonal block
constexpr int64_t kBOff = B * B * 8;                    // diagonal block
constexpr int64_t kCOff = 2 * B * B * 8;                // super-diagonal
constexpr int64_t kRhsOff = 3 * B * B * 8;              // right-hand side
constexpr int64_t kCellBytes =
    static_cast<int64_t>(BtLine::kWordsPerCell) * 8;    // 640

// Register conventions.
//   r0 = line index   r1 = cell index   r2 = line base pointer
//   r6 = current cell pointer   r7 = neighbour cell pointer
//   r8 = prefetch cursor        r14 = sync scratch   r15 = barrier epoch
constexpr IReg kLine = IReg::R0, kCell = IReg::R1, kLineBase = IReg::R2;
constexpr IReg kCur = IReg::R6, kNbr = IReg::R7, kPf = IReg::R8;
constexpr IReg kSync = IReg::R14, kEpoch = IReg::R15;

int64_t elem(int64_t off, int64_t i, int64_t j) { return off + (i * B + j) * 8; }

/// dst(5x5 at dst_reg+dst_off) -= M(at m_reg+m_off) * V(at v_reg+v_off).
/// Fully unrolled: 5 fmovi, 125 fmul/fadd pairs, 25 fsub, heavy on loads —
/// the BT mix.
void emit_block_mul_sub(AsmBuilder& a, IReg dst_reg, int64_t dst_off,
                        IReg m_reg, int64_t m_off, IReg v_reg,
                        int64_t v_off) {
  for (int64_t i = 0; i < B; ++i) {
    for (int64_t j = 0; j < B; ++j) {
      a.fmovi(FReg::F0, 0.0);
      for (int64_t k = 0; k < B; ++k) {
        a.fload(FReg::F1, Mem::bd(m_reg, elem(m_off, i, k)));
        a.fload(FReg::F2, Mem::bd(v_reg, elem(v_off, k, j)));
        a.fmul(FReg::F1, FReg::F1, FReg::F2);
        a.fadd(FReg::F0, FReg::F0, FReg::F1);
      }
      a.fload(FReg::F3, Mem::bd(dst_reg, elem(dst_off, i, j)));
      a.fsub(FReg::F3, FReg::F3, FReg::F0);
      a.fstore(FReg::F3, Mem::bd(dst_reg, elem(dst_off, i, j)));
    }
  }
}

/// rhs(5 at dst_reg+dst_off) -= M(at m_reg+m_off) * v(5 at v_reg+v_off).
void emit_block_vec_sub(AsmBuilder& a, IReg dst_reg, int64_t dst_off,
                        IReg m_reg, int64_t m_off, IReg v_reg,
                        int64_t v_off) {
  for (int64_t i = 0; i < B; ++i) {
    a.fmovi(FReg::F0, 0.0);
    for (int64_t k = 0; k < B; ++k) {
      a.fload(FReg::F1, Mem::bd(m_reg, elem(m_off, i, k)));
      a.fload(FReg::F2, Mem::bd(v_reg, v_off + k * 8));
      a.fmul(FReg::F1, FReg::F1, FReg::F2);
      a.fadd(FReg::F0, FReg::F0, FReg::F1);
    }
    a.fload(FReg::F3, Mem::bd(dst_reg, dst_off + i * 8));
    a.fsub(FReg::F3, FReg::F3, FReg::F0);
    a.fstore(FReg::F3, Mem::bd(dst_reg, dst_off + i * 8));
  }
}

/// In-place pivot-free LU of the diagonal block, storing the *reciprocal*
/// of each pivot on the diagonal (so the solves multiply instead of
/// dividing: one fdiv per pivot, five per cell).
void emit_block_factor(AsmBuilder& a, IReg reg, int64_t off) {
  for (int64_t k = 0; k < B; ++k) {
    a.fload(FReg::F1, Mem::bd(reg, elem(off, k, k)));
    a.fmovi(FReg::F0, 1.0);
    a.fdiv(FReg::F0, FReg::F0, FReg::F1);
    a.fstore(FReg::F0, Mem::bd(reg, elem(off, k, k)));
    for (int64_t i = k + 1; i < B; ++i) {
      a.fload(FReg::F2, Mem::bd(reg, elem(off, i, k)));
      a.fmul(FReg::F2, FReg::F2, FReg::F0);
      a.fstore(FReg::F2, Mem::bd(reg, elem(off, i, k)));
      for (int64_t j = k + 1; j < B; ++j) {
        a.fload(FReg::F3, Mem::bd(reg, elem(off, k, j)));
        a.fmul(FReg::F3, FReg::F3, FReg::F2);
        a.fload(FReg::F4, Mem::bd(reg, elem(off, i, j)));
        a.fsub(FReg::F4, FReg::F4, FReg::F3);
        a.fstore(FReg::F4, Mem::bd(reg, elem(off, i, j)));
      }
    }
  }
}

/// Solves LU * X = X in place for X with `ncols` columns of row stride
/// `stride_words`, using the factored block at b_reg+b_off (reciprocal
/// diagonal).
void emit_block_solve(AsmBuilder& a, IReg b_reg, int64_t b_off, IReg x_reg,
                      int64_t x_off, int64_t ncols, int64_t stride_words) {
  auto x_at = [&](int64_t i, int64_t c) {
    return x_off + (i * stride_words + c) * 8;
  };
  // Forward substitution (unit lower triangle).
  for (int64_t i = 1; i < B; ++i) {
    for (int64_t k = 0; k < i; ++k) {
      a.fload(FReg::F0, Mem::bd(b_reg, elem(b_off, i, k)));
      for (int64_t c = 0; c < ncols; ++c) {
        a.fload(FReg::F1, Mem::bd(x_reg, x_at(k, c)));
        a.fmul(FReg::F1, FReg::F1, FReg::F0);
        a.fload(FReg::F2, Mem::bd(x_reg, x_at(i, c)));
        a.fsub(FReg::F2, FReg::F2, FReg::F1);
        a.fstore(FReg::F2, Mem::bd(x_reg, x_at(i, c)));
      }
    }
  }
  // Back substitution with reciprocal pivots.
  for (int64_t i = B - 1; i >= 0; --i) {
    for (int64_t k = i + 1; k < B; ++k) {
      a.fload(FReg::F0, Mem::bd(b_reg, elem(b_off, i, k)));
      for (int64_t c = 0; c < ncols; ++c) {
        a.fload(FReg::F1, Mem::bd(x_reg, x_at(k, c)));
        a.fmul(FReg::F1, FReg::F1, FReg::F0);
        a.fload(FReg::F2, Mem::bd(x_reg, x_at(i, c)));
        a.fsub(FReg::F2, FReg::F2, FReg::F1);
        a.fstore(FReg::F2, Mem::bd(x_reg, x_at(i, c)));
      }
    }
    a.fload(FReg::F0, Mem::bd(b_reg, elem(b_off, i, i)));  // reciprocal
    for (int64_t c = 0; c < ncols; ++c) {
      a.fload(FReg::F1, Mem::bd(x_reg, x_at(i, c)));
      a.fmul(FReg::F1, FReg::F1, FReg::F0);
      a.fstore(FReg::F1, Mem::bd(x_reg, x_at(i, c)));
    }
  }
}

/// Reduce the cell at kCur: factor B and compute C' = B^-1 C, rhs' =
/// B^-1 rhs.
void emit_cell_reduce(AsmBuilder& a) {
  emit_block_factor(a, kCur, kBOff);
  emit_block_solve(a, kCur, kBOff, kCur, kCOff, B, B);
  emit_block_solve(a, kCur, kBOff, kCur, kRhsOff, 1, 1);
}

/// Full line solve: kLineBase points at the line's first cell.
void emit_solve_line(AsmBuilder& a, int64_t cells) {
  // Cell 0: reduce only.
  a.imov(kCur, kLineBase);
  emit_cell_reduce(a);
  // Forward elimination, cells 1..n-1.
  a.imovi(kCell, 1);
  a.iaddi(kCur, kLineBase, kCellBytes);
  Label ftop = a.here();
  Label fdone = a.label();
  a.bri(BrCond::kGe, kCell, cells, fdone);
  {
    a.isubi(kNbr, kCur, kCellBytes);
    emit_block_mul_sub(a, kCur, kBOff, kCur, kAOff, kNbr, kCOff);
    emit_block_vec_sub(a, kCur, kRhsOff, kCur, kAOff, kNbr, kRhsOff);
    emit_cell_reduce(a);
  }
  a.iaddi(kCur, kCur, kCellBytes);
  a.iaddi(kCell, kCell, 1);
  a.jmp(ftop);
  a.bind(fdone);
  // Back substitution, cells n-2..0.
  a.imovi(kCell, cells - 2);
  a.iaddi(kCur, kLineBase, (cells - 2) * kCellBytes);
  Label btop = a.here();
  Label bdone = a.label();
  a.bri(BrCond::kLt, kCell, 0, bdone);
  {
    a.iaddi(kNbr, kCur, kCellBytes);
    emit_block_vec_sub(a, kCur, kRhsOff, kCur, kCOff, kNbr, kRhsOff);
  }
  a.isubi(kCur, kCur, kCellBytes);
  a.isubi(kCell, kCell, 1);
  a.jmp(btop);
  a.bind(bdone);
}

/// Prefetches one whole line starting at the address in `base_reg`.
void emit_prefetch_line(AsmBuilder& a, IReg base_reg, int64_t line_bytes) {
  CountedLoop l(a, kPf, 0, line_bytes, 64);
  a.prefetch(Mem::bi(base_reg, kPf, 0), /*to_l1=*/false);
  l.close();
}

}  // namespace

const char* name(BtMode m) {
  switch (m) {
    case BtMode::kSerial: return "serial";
    case BtMode::kTlpCoarse: return "tlp-coarse";
    case BtMode::kTlpPfetch: return "tlp-pfetch";
  }
  return "?";
}

BtWorkload::BtWorkload(const BtParams& p)
    : p_(p),
      name_(std::string("bt.") + kernels::name(p.mode) + ".l" +
            std::to_string(p.lines) + "x" + std::to_string(p.cells)) {
  SMT_CHECK_MSG(p.cells >= 2, "need at least two cells per line");
  SMT_CHECK_MSG(p.lines >= 2, "need at least two lines");
}

void BtWorkload::setup(core::Machine& m) {
  const int64_t line_words =
      static_cast<int64_t>(p_.cells) * BtLine::kWordsPerCell;
  const int64_t line_bytes = line_words * 8;

  mem::MemoryLayout lay(p_.mem_base);
  base_ = lay.alloc_words("lines", static_cast<size_t>(line_words) * p_.lines);
  data_regions_ = lay.regions();

  Rng rng(p_.seed);
  host_solved_.clear();
  for (size_t l = 0; l < p_.lines; ++l) {
    BtLine line = make_bt_line(p_.cells, rng);
    m.memory().store_f64_array(base_ + l * line_bytes, line.data);
    ref_bt_solve_line(line);
    host_solved_.push_back(std::move(line));
  }

  const int64_t cells = static_cast<int64_t>(p_.cells);
  const int64_t nlines = static_cast<int64_t>(p_.lines);
  const bool pfetch = p_.mode == BtMode::kTlpPfetch;

  if (pfetch) {
    sync_layout_ = std::make_unique<mem::MemoryLayout>(p_.sync_base);
    barrier_ = std::make_unique<sync::TwoThreadBarrier>(*sync_layout_,
                                                        name_ + ".bar");
    if (m.telemetry() != nullptr) {
      barrier_->annotate(m.telemetry()->recorder(), name_ + ".bar",
                         /*spr=*/true);
    }
  }

  programs_.clear();
  switch (p_.mode) {
    case BtMode::kSerial: {
      AsmBuilder a(name_);
      a.imovi(kLineBase, static_cast<int64_t>(base_));
      CountedLoop ll(a, kLine, 0, nlines);
      emit_solve_line(a, cells);
      a.iaddi(kLineBase, kLineBase, line_bytes);
      ll.close();
      a.exit();
      programs_.push_back(a.take());
      break;
    }

    case BtMode::kTlpCoarse: {
      // Lines by parity: disjoint data, no synchronization at all — the
      // paper's perfectly partitioned case.
      for (int tid = 0; tid < 2; ++tid) {
        AsmBuilder a(name_ + ".t" + std::to_string(tid));
        a.imovi(kLineBase, static_cast<int64_t>(base_) + tid * line_bytes);
        CountedLoop ll(a, kLine, tid, nlines, 2);
        emit_solve_line(a, cells);
        a.iaddi(kLineBase, kLineBase, 2 * line_bytes);
        ll.close();
        a.exit();
        programs_.push_back(a.take());
      }
      break;
    }

    case BtMode::kTlpPfetch: {
      // Worker: serial schedule with one barrier per line.
      {
        AsmBuilder a(name_ + ".worker");
        barrier_->emit_init(a, kEpoch);
        a.imovi(kLineBase, static_cast<int64_t>(base_));
        CountedLoop ll(a, kLine, 0, nlines);
        barrier_->emit_wait(a, 0, kEpoch, kSync, p_.spin);
        emit_solve_line(a, cells);
        a.iaddi(kLineBase, kLineBase, line_bytes);
        ll.close();
        a.exit();
        programs_.push_back(a.take());
      }
      // Prefetcher: line l+1 while the worker solves line l.
      {
        AsmBuilder a(name_ + ".pfetch");
        barrier_->emit_init(a, kEpoch);
        a.imovi(kLineBase, static_cast<int64_t>(base_));
        emit_prefetch_line(a, kLineBase, line_bytes);
        CountedLoop ll(a, kLine, 0, nlines);
        {
          if (p_.halt_barriers) {
            barrier_->emit_wait_sleeper(a, 1, kEpoch, kSync);
          } else {
            barrier_->emit_wait(a, 1, kEpoch, kSync, p_.spin);
          }
          Label skip = a.label();
          a.iaddi(kNbr, kLine, 1);
          a.bri(BrCond::kGe, kNbr, nlines, skip);
          a.iaddi(kLineBase, kLineBase, line_bytes);
          emit_prefetch_line(a, kLineBase, line_bytes);
          a.bind(skip);
        }
        ll.close();
        a.exit();
        programs_.push_back(a.take());
      }
      // The worker's barrier side must match the sleeper when halting.
      if (p_.halt_barriers) {
        // Rebuild the worker with waker-side barriers.
        AsmBuilder a(name_ + ".worker");
        barrier_->emit_init(a, kEpoch);
        a.imovi(kLineBase, static_cast<int64_t>(base_));
        CountedLoop ll(a, kLine, 0, nlines);
        barrier_->emit_wait_waker(a, 0, kEpoch, kSync, p_.spin);
        emit_solve_line(a, cells);
        a.iaddi(kLineBase, kLineBase, line_bytes);
        ll.close();
        a.exit();
        programs_.front() = a.take();
      }
      break;
    }
  }
}

std::vector<isa::Program> BtWorkload::programs() const { return programs_; }

bool BtWorkload::verify(const core::Machine& m) const {
  const int64_t line_bytes =
      static_cast<int64_t>(p_.cells) * BtLine::kWordsPerCell * 8;
  for (size_t l = 0; l < p_.lines; ++l) {
    for (size_t cell = 0; cell < p_.cells; ++cell) {
      const Addr rhs = base_ + l * line_bytes +
                       cell * static_cast<Addr>(kCellBytes) + kRhsOff;
      const double* ref = host_solved_[l].cell(cell) + 3 * kBtBlock * kBtBlock;
      for (size_t i = 0; i < kBtBlock; ++i) {
        const double got = m.memory().read_f64(rhs + 8 * i);
        if (rel_err(got, ref[i]) > 1e-6) return false;
      }
    }
  }
  return true;
}


core::MemInfo BtWorkload::mem_info() const {
  return {data_regions_,
          sync_layout_ != nullptr ? sync_layout_->regions()
                                  : std::vector<mem::MemoryLayout::Region>{},
          /*complete=*/true};
}

}  // namespace smt::kernels
