#include "kernels/cg.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kernels/emit_util.h"
#include "kernels/layouts.h"

namespace smt::kernels {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;

namespace {

// Register conventions.
//
//   r0 = i (row / vector index)   r1 = k (nonzero index)   r2 = row end
//   r3 = gathered column / scratch span index
//   r9 = span index               r10 = iteration counter
//   r12 = span lo bound           r13 = span hi bound
//   r14 = sync scratch            r15 = barrier epoch
//   f0, f1 = dot accumulators     f2, f3 = operands
//   f6 = rho (live across the iteration)   f7 = alpha / beta
constexpr IReg kIdx = IReg::R0, kNz = IReg::R1, kEnd = IReg::R2,
               kCol = IReg::R3, kSpan = IReg::R9, kIter = IReg::R10,
               kLo = IReg::R12, kHi = IReg::R13, kSync = IReg::R14,
               kEpoch = IReg::R15;

struct CgCtx {
  Addr rowptr, colidx, vals, x, z, p, q, r;
  Addr slot0, slot1;
  int64_t n;
  int iters;
  int64_t span_rows;
  int log2span;
};

/// One SpMV row: f0 = sum_k vals[k] * p[colidx[k]], then q[i] = f0.
/// Expects kIdx = row index.
void emit_spmv_row(AsmBuilder& a, const CgCtx& c) {
  a.fmovi(FReg::F0, 0.0);
  a.load(kNz, Mem::idx(kIdx, 3, static_cast<int64_t>(c.rowptr)));
  a.load(kEnd, Mem::idx(kIdx, 3, static_cast<int64_t>(c.rowptr) + 8));
  Label top = a.here();
  Label done = a.label();
  a.br(BrCond::kGe, kNz, kEnd, done);
  a.load(kCol, Mem::idx(kNz, 3, static_cast<int64_t>(c.colidx)));
  a.fload(FReg::F2, Mem::idx(kNz, 3, static_cast<int64_t>(c.vals)));
  // The delinquent load: a data-dependent gather over the whole p vector.
  a.fload(FReg::F3, Mem::idx(kCol, 3, static_cast<int64_t>(c.p)));
  a.fmul(FReg::F2, FReg::F2, FReg::F3);
  a.fadd(FReg::F0, FReg::F0, FReg::F2);
  a.iaddi(kNz, kNz, 1);
  a.jmp(top);
  a.bind(done);
  a.fstore(FReg::F0, Mem::idx(kIdx, 3, static_cast<int64_t>(c.q)));
}

/// q[lo..hi) = A * p, compile-time bounds.
void emit_spmv(AsmBuilder& a, const CgCtx& c, int64_t lo, int64_t hi) {
  CountedLoop li(a, kIdx, lo, hi);
  emit_spmv_row(a, c);
  li.close();
}

/// Sets kLo/kHi to the row range of span `span_reg` within [lo0, hi_limit):
/// kLo = lo0 + span * span_rows, kHi = min(kLo + span_rows, hi_limit).
void emit_span_bounds(AsmBuilder& a, const CgCtx& c, IReg span_reg,
                      int64_t lo0, int64_t hi_limit) {
  a.ishli(kLo, span_reg, c.log2span);
  a.iaddi(kLo, kLo, lo0);
  a.iaddi(kHi, kLo, c.span_rows);
  Label noclamp = a.label();
  a.bri(BrCond::kLe, kHi, hi_limit, noclamp);
  a.imovi(kHi, hi_limit);
  a.bind(noclamp);
}

/// q[kLo..kHi) = A * p, register bounds.
void emit_spmv_range_reg(AsmBuilder& a, const CgCtx& c) {
  a.imov(kIdx, kLo);
  Label top = a.here();
  Label done = a.label();
  a.br(BrCond::kGe, kIdx, kHi, done);
  emit_spmv_row(a, c);
  a.iaddi(kIdx, kIdx, 1);
  a.jmp(top);
  a.bind(done);
}

/// Prefetches the SpMV inputs of rows [kLo, kHi): walks colidx and issues
/// software prefetches for the gathered p elements (the delinquent load)
/// and the value stream.
void emit_prefetch_range_reg(AsmBuilder& a, const CgCtx& c) {
  a.imov(kIdx, kLo);
  Label rtop = a.here();
  Label rdone = a.label();
  a.br(BrCond::kGe, kIdx, kHi, rdone);
  {
    a.load(kNz, Mem::idx(kIdx, 3, static_cast<int64_t>(c.rowptr)));
    a.load(kEnd, Mem::idx(kIdx, 3, static_cast<int64_t>(c.rowptr) + 8));
    Label top = a.here();
    Label done = a.label();
    a.br(BrCond::kGe, kNz, kEnd, done);
    a.load(kCol, Mem::idx(kNz, 3, static_cast<int64_t>(c.colidx)));
    a.prefetch(Mem::idx(kCol, 3, static_cast<int64_t>(c.p)));
    a.prefetch(Mem::idx(kNz, 3, static_cast<int64_t>(c.vals)));
    a.iaddi(kNz, kNz, 1);
    a.jmp(top);
    a.bind(done);
  }
  a.iaddi(kIdx, kIdx, 1);
  a.jmp(rtop);
  a.bind(rdone);
}

/// f2 = dot(xa[lo..hi), ya[lo..hi)) with two accumulator chains (hi-lo
/// must be even).
void emit_dot(AsmBuilder& a, Addr xa, Addr ya, int64_t lo, int64_t hi) {
  SMT_CHECK((hi - lo) % 2 == 0);
  a.fmovi(FReg::F0, 0.0);
  a.fmovi(FReg::F1, 0.0);
  CountedLoop li(a, kIdx, lo, hi, 2);
  {
    a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(xa)));
    a.fload(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(ya)));
    a.fmul(FReg::F2, FReg::F2, FReg::F3);
    a.fadd(FReg::F0, FReg::F0, FReg::F2);
    a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(xa) + 8));
    a.fload(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(ya) + 8));
    a.fmul(FReg::F2, FReg::F2, FReg::F3);
    a.fadd(FReg::F1, FReg::F1, FReg::F2);
  }
  li.close();
  a.fadd(FReg::F2, FReg::F0, FReg::F1);
}

enum class AxpyKind { kZPlusAlphaP, kRMinusAlphaQ, kPEqualsRPlusBetaP };

/// The three CG vector updates; the scalar lives in f7.
void emit_axpy(AsmBuilder& a, const CgCtx& c, AxpyKind kind, int64_t lo,
               int64_t hi) {
  CountedLoop li(a, kIdx, lo, hi);
  switch (kind) {
    case AxpyKind::kZPlusAlphaP:
      a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.p)));
      a.fmul(FReg::F2, FReg::F2, FReg::F7);
      a.fload(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.z)));
      a.fadd(FReg::F3, FReg::F3, FReg::F2);
      a.fstore(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.z)));
      break;
    case AxpyKind::kRMinusAlphaQ:
      a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.q)));
      a.fmul(FReg::F2, FReg::F2, FReg::F7);
      a.fload(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.r)));
      a.fsub(FReg::F3, FReg::F3, FReg::F2);
      a.fstore(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.r)));
      break;
    case AxpyKind::kPEqualsRPlusBetaP:
      a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.p)));
      a.fmul(FReg::F2, FReg::F2, FReg::F7);
      a.fload(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.r)));
      a.fadd(FReg::F3, FReg::F3, FReg::F2);
      a.fstore(FReg::F3, Mem::idx(kIdx, 3, static_cast<int64_t>(c.p)));
      break;
  }
  li.close();
}

/// r = p = x over [lo, hi).
void emit_init_vectors(AsmBuilder& a, const CgCtx& c, int64_t lo,
                       int64_t hi) {
  CountedLoop li(a, kIdx, lo, hi);
  a.fload(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.x)));
  a.fstore(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.r)));
  a.fstore(FReg::F2, Mem::idx(kIdx, 3, static_cast<int64_t>(c.p)));
  li.close();
}

/// Loads the two partial-reduction slots and leaves their sum in f2.
void emit_sum_slots(AsmBuilder& a, const CgCtx& c) {
  a.fload(FReg::F2, Mem::abs(c.slot0));
  a.fload(FReg::F3, Mem::abs(c.slot1));
  a.fadd(FReg::F2, FReg::F2, FReg::F3);
}

}  // namespace

const char* name(CgMode m) {
  switch (m) {
    case CgMode::kSerial: return "serial";
    case CgMode::kTlpCoarse: return "tlp-coarse";
    case CgMode::kTlpPfetch: return "tlp-pfetch";
    case CgMode::kTlpPfetchWork: return "tlp-pfetch+work";
  }
  return "?";
}

CgWorkload::CgWorkload(const CgParams& p)
    : p_(p),
      name_(std::string("cg.") + kernels::name(p.mode) + ".n" +
            std::to_string(p.n)) {
  SMT_CHECK_MSG(p.n % 4 == 0, "n must be divisible by 4");
  SMT_CHECK_MSG((p.span_rows & (p.span_rows - 1)) == 0,
                "span_rows must be a power of two");
}

void CgWorkload::setup(core::Machine& m) {
  Rng rng(p_.seed);
  matrix_ = make_sparse_spd(p_.n, p_.nz_per_row, rng);

  std::vector<double> x(p_.n);
  for (double& v : x) v = rng.next_double(-1.0, 1.0);
  host_rho_ = ref_cg(matrix_, x, host_z_, p_.iters);

  mem::MemoryLayout lay(p_.mem_base);
  rowptr_ = lay.alloc_words("rowptr", matrix_.rowptr.size());
  colidx_ = lay.alloc_words("colidx", matrix_.nnz());
  vals_ = lay.alloc_words("vals", matrix_.nnz());
  x_ = lay.alloc_words("x", p_.n);
  z_ = lay.alloc_words("z", p_.n);
  p_vec_ = lay.alloc_words("p", p_.n);
  q_ = lay.alloc_words("q", p_.n);
  r_ = lay.alloc_words("r", p_.n);
  dot_slots_ = lay.alloc_words("dot0", 1);
  const Addr slot1 = lay.alloc_words("dot1", 1);  // separate cache line
  data_regions_ = lay.regions();
  m.memory().store_i64_array(rowptr_, matrix_.rowptr);
  m.memory().store_i64_array(colidx_, matrix_.colidx);
  m.memory().store_f64_array(vals_, matrix_.values);
  m.memory().store_f64_array(x_, x);

  CgCtx c;
  c.rowptr = rowptr_;
  c.colidx = colidx_;
  c.vals = vals_;
  c.x = x_;
  c.z = z_;
  c.p = p_vec_;
  c.q = q_;
  c.r = r_;
  c.slot0 = dot_slots_;
  c.slot1 = slot1;
  c.n = static_cast<int64_t>(p_.n);
  c.iters = p_.iters;
  c.span_rows = static_cast<int64_t>(p_.span_rows);
  c.log2span = log2_exact(p_.span_rows);

  const bool coarse =
      p_.mode == CgMode::kTlpCoarse || p_.mode == CgMode::kTlpPfetchWork;
  const bool pfetch = p_.mode == CgMode::kTlpPfetch;
  const bool hybrid = p_.mode == CgMode::kTlpPfetchWork;

  if (coarse || pfetch) {
    sync_layout_ = std::make_unique<mem::MemoryLayout>(p_.sync_base);
    barrier_ = std::make_unique<sync::TwoThreadBarrier>(*sync_layout_,
                                                        name_ + ".bar");
    if (m.telemetry() != nullptr) {
      barrier_->annotate(m.telemetry()->recorder(), name_ + ".bar",
                         /*spr=*/pfetch || hybrid);
    }
  }
  auto wait = [&](AsmBuilder& a, int tid, bool sleeper) {
    if (p_.halt_barriers && pfetch) {
      if (sleeper) {
        barrier_->emit_wait_sleeper(a, tid, kEpoch, kSync);
      } else {
        barrier_->emit_wait_waker(a, tid, kEpoch, kSync, p_.spin);
      }
    } else {
      barrier_->emit_wait(a, tid, kEpoch, kSync, p_.spin);
    }
  };

  programs_.clear();

  if (p_.mode == CgMode::kSerial) {
    AsmBuilder a(name_);
    emit_init_vectors(a, c, 0, c.n);
    emit_dot(a, r_, r_, 0, c.n);
    a.fmov(FReg::F6, FReg::F2);  // rho
    CountedLoop liter(a, kIter, 0, c.iters);
    {
      emit_spmv(a, c, 0, c.n);
      emit_dot(a, p_vec_, q_, 0, c.n);       // f2 = p.q
      a.fdiv(FReg::F7, FReg::F6, FReg::F2);  // alpha
      emit_axpy(a, c, AxpyKind::kZPlusAlphaP, 0, c.n);
      emit_axpy(a, c, AxpyKind::kRMinusAlphaQ, 0, c.n);
      emit_dot(a, r_, r_, 0, c.n);           // f2 = rho'
      a.fdiv(FReg::F7, FReg::F2, FReg::F6);  // beta
      a.fmov(FReg::F6, FReg::F2);            // rho = rho'
      emit_axpy(a, c, AxpyKind::kPEqualsRPlusBetaP, 0, c.n);
    }
    liter.close();
    a.exit();
    programs_.push_back(a.take());

  } else if (coarse) {
    // ---- Coarse TLP (and its hybrid extension) -------------------------
    // Each thread owns rows [tid*n/2, (tid+1)*n/2). Reductions go through
    // the two partial slots with a barrier; both threads then duplicate
    // the scalar updates (the paper's "parallelization overhead").
    const int64_t half = c.n / 2;
    const int64_t ns_half = (half + c.span_rows - 1) / c.span_rows;
    for (int tid = 0; tid < 2; ++tid) {
      const int64_t lo = tid * half, hi = lo + half;
      const Addr my_slot = tid == 0 ? c.slot0 : c.slot1;
      AsmBuilder a(name_ + ".t" + std::to_string(tid));
      barrier_->emit_init(a, kEpoch);
      emit_init_vectors(a, c, lo, hi);
      emit_dot(a, r_, r_, lo, hi);
      a.fstore(FReg::F2, Mem::abs(my_slot));
      wait(a, tid, false);
      emit_sum_slots(a, c);
      a.fmov(FReg::F6, FReg::F2);  // rho
      CountedLoop liter(a, kIter, 0, c.iters);
      {
        if (hybrid && tid == 1) {
          // SpMV in spans over our half; prefetch the next span's gathers
          // before computing the current span (intra-thread SPR).
          CountedLoop lspan(a, kSpan, 0, ns_half);
          {
            Label skip = a.label();
            a.iaddi(kCol, kSpan, 1);
            a.bri(BrCond::kGe, kCol, ns_half, skip);
            emit_span_bounds(a, c, kCol, lo, hi);
            emit_prefetch_range_reg(a, c);
            a.bind(skip);
            emit_span_bounds(a, c, kSpan, lo, hi);
            emit_spmv_range_reg(a, c);
          }
          lspan.close();
        } else {
          emit_spmv(a, c, lo, hi);
        }
        emit_dot(a, p_vec_, q_, lo, hi);
        a.fstore(FReg::F2, Mem::abs(my_slot));
        wait(a, tid, false);
        emit_sum_slots(a, c);
        a.fdiv(FReg::F7, FReg::F6, FReg::F2);  // alpha
        emit_axpy(a, c, AxpyKind::kZPlusAlphaP, lo, hi);
        emit_axpy(a, c, AxpyKind::kRMinusAlphaQ, lo, hi);
        emit_dot(a, r_, r_, lo, hi);
        a.fstore(FReg::F2, Mem::abs(my_slot));
        wait(a, tid, false);
        emit_sum_slots(a, c);
        a.fdiv(FReg::F7, FReg::F2, FReg::F6);  // beta
        a.fmov(FReg::F6, FReg::F2);            // rho = rho'
        emit_axpy(a, c, AxpyKind::kPEqualsRPlusBetaP, lo, hi);
        // p must be complete before the next SpMV gathers from it.
        wait(a, tid, false);
      }
      liter.close();
      a.exit();
      programs_.push_back(a.take());
    }

  } else {
    // ---- Pure SPR ------------------------------------------------------
    SMT_CHECK(pfetch);
    const int64_t ns = (c.n + c.span_rows - 1) / c.span_rows;
    // Worker: the serial schedule, with one barrier per SpMV span — the
    // "frequent invocations of synchronization primitives" the paper
    // blames for CG's SPR slowdown.
    {
      AsmBuilder a(name_ + ".worker");
      barrier_->emit_init(a, kEpoch);
      emit_init_vectors(a, c, 0, c.n);
      emit_dot(a, r_, r_, 0, c.n);
      a.fmov(FReg::F6, FReg::F2);
      CountedLoop liter(a, kIter, 0, c.iters);
      {
        CountedLoop lspan(a, kSpan, 0, ns);
        {
          wait(a, 0, /*sleeper=*/false);
          emit_span_bounds(a, c, kSpan, 0, c.n);
          emit_spmv_range_reg(a, c);
        }
        lspan.close();
        emit_dot(a, p_vec_, q_, 0, c.n);
        a.fdiv(FReg::F7, FReg::F6, FReg::F2);
        emit_axpy(a, c, AxpyKind::kZPlusAlphaP, 0, c.n);
        emit_axpy(a, c, AxpyKind::kRMinusAlphaQ, 0, c.n);
        emit_dot(a, r_, r_, 0, c.n);
        a.fdiv(FReg::F7, FReg::F2, FReg::F6);
        a.fmov(FReg::F6, FReg::F2);
        emit_axpy(a, c, AxpyKind::kPEqualsRPlusBetaP, 0, c.n);
      }
      liter.close();
      a.exit();
      programs_.push_back(a.take());
    }
    // Prefetcher: one span ahead of the worker; at the last span of an
    // iteration it wraps around to span 0 (the next iteration's first).
    {
      AsmBuilder a(name_ + ".pfetch");
      barrier_->emit_init(a, kEpoch);
      a.imovi(kCol, 0);
      emit_span_bounds(a, c, kCol, 0, c.n);
      emit_prefetch_range_reg(a, c);
      CountedLoop liter(a, kIter, 0, c.iters);
      {
        CountedLoop lspan(a, kSpan, 0, ns);
        {
          wait(a, 1, /*sleeper=*/true);
          Label wrapped = a.label();
          a.iaddi(kCol, kSpan, 1);
          a.bri(BrCond::kLt, kCol, ns, wrapped);
          a.imovi(kCol, 0);
          a.bind(wrapped);
          emit_span_bounds(a, c, kCol, 0, c.n);
          emit_prefetch_range_reg(a, c);
        }
        lspan.close();
      }
      liter.close();
      a.exit();
      programs_.push_back(a.take());
    }
  }
}

std::vector<isa::Program> CgWorkload::programs() const { return programs_; }

bool CgWorkload::verify(const core::Machine& m) const {
  // Residual check: x - A z must be tiny relative to x. This is robust to
  // the benign floating-point reordering the threaded variants introduce
  // (split reductions associate differently).
  std::vector<double> z(p_.n);
  for (size_t i = 0; i < p_.n; ++i) z[i] = m.memory().read_f64(z_ + 8 * i);
  std::vector<double> az;
  ref_spmv(matrix_, z, az);
  double res2 = 0.0, max_dz = 0.0;
  for (size_t i = 0; i < p_.n; ++i) {
    const double xv = m.memory().read_f64(x_ + 8 * i);
    const double d = az[i] - xv;
    res2 += d * d;
    max_dz = std::max(max_dz, std::fabs(z[i] - host_z_[i]));
  }
  // The solution must agree with the host reference up to reordering noise,
  // and the residual must be at the level the reference reached after the
  // same number of iterations.
  return max_dz < 1e-5 && res2 <= 4.0 * host_rho_ + 1e-12;
}


core::MemInfo CgWorkload::mem_info() const {
  return {data_regions_,
          sync_layout_ != nullptr ? sync_layout_->regions()
                                  : std::vector<mem::MemoryLayout::Region>{},
          /*complete=*/true};
}

}  // namespace smt::kernels
