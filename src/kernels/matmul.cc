#include "kernels/matmul.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kernels/emit_util.h"
#include "kernels/reference.h"

namespace smt::kernels {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;

namespace {

// Register conventions for all MM variants.
//
//   r0 = it   r1 = jt   r2 = kt        (tile indices)
//   r3 = i    r4 = k    r5 = j         (intra-tile indices)
//   r6 = A tile base    r7 = B tile base    r8 = C tile base
//   r9 = A row base     r10 = C row base    r11 = B row base
//   r12, r13 = scratch offsets
//   r14 = sync scratch  r15 = barrier sense
//   f0 = a, f1 = b, f2 = c
constexpr IReg kIt = IReg::R0, kJt = IReg::R1, kKt = IReg::R2;
constexpr IReg kI = IReg::R3, kK = IReg::R4, kJ = IReg::R5;
constexpr IReg kAT = IReg::R6, kBT = IReg::R7, kCT = IReg::R8;
constexpr IReg kARow = IReg::R9, kCRow = IReg::R10, kBRow = IReg::R11;
constexpr IReg kS0 = IReg::R12, kS1 = IReg::R13;
constexpr IReg kSync = IReg::R14, kSense = IReg::R15;

struct MmCtx {
  const BlockedLayout* layout;
  Addr a_base, b_base, c_base;
  int log2nt;    // log2(tiles per dimension)
  int log2t;     // log2(tile order)
  int64_t nt;    // tiles per dimension
  int64_t t;     // tile order
};

/// dst = array_base | (((ti << log2nt) | tj) << (2*log2t + 3)).
/// Array bases are aligned to the matrix size, so OR == ADD — this is the
/// binary-mask "fast indexing" of Blocked Array Layouts.
void emit_tile_base(AsmBuilder& a, const MmCtx& c, IReg dst, IReg ti, IReg tj,
                    Addr array_base) {
  a.ishli(dst, ti, c.log2nt);
  a.ior(dst, dst, tj);
  a.ishli(dst, dst, 2 * c.log2t + 3);
  a.iori(dst, dst, static_cast<int64_t>(array_base));
}

/// One C[i,j] += A[i,k] * B[k,j] element update. Expects kS1 = j*8 and the
/// three row-base registers valid. The A element is re-loaded per element,
/// as in the paper's layout-optimized code (whose dynamic mix is ~39%
/// loads).
void emit_mm_element(AsmBuilder& a) {
  a.fload(FReg::F0, Mem::bi(kARow, kK, 3));  // a[i,k]
  a.ior(kS0, kBRow, kS1);                    // &b[k,j]
  a.fload(FReg::F1, Mem::bd(kS0, 0));
  a.fmul(FReg::F1, FReg::F1, FReg::F0);
  a.ior(kS0, kCRow, kS1);                    // &c[i,j]
  a.fload(FReg::F2, Mem::bd(kS0, 0));
  a.fadd(FReg::F2, FReg::F2, FReg::F1);
  a.fstore(FReg::F2, Mem::bd(kS0, 0));
}

/// Multiplies the tiles at kAT/kBT into kCT. `jstart`/`jstep` implement the
/// fine-grained circular element assignment (serial: 0/1, thread t of the
/// fine variants: t/2). The serial path unrolls j by two.
void emit_tile_multiply(AsmBuilder& a, const MmCtx& c, int jstart, int jstep) {
  const int64_t row_shift = c.log2t + 3;
  CountedLoop li(a, kI, 0, c.t);
  {
    a.ishli(kS0, kI, row_shift);
    a.ior(kARow, kAT, kS0);
    a.ior(kCRow, kCT, kS0);
    CountedLoop lk(a, kK, 0, c.t);
    {
      a.ishli(kS0, kK, row_shift);
      a.ior(kBRow, kBT, kS0);
      if (jstep == 1) {
        CountedLoop lj(a, kJ, jstart, c.t, 2);
        a.ishli(kS1, kJ, 3);
        emit_mm_element(a);
        a.iaddi(kS1, kS1, 8);
        emit_mm_element(a);
        lj.close();
      } else {
        CountedLoop lj(a, kJ, jstart, c.t, jstep);
        a.ishli(kS1, kJ, 3);
        emit_mm_element(a);
        lj.close();
      }
    }
    lk.close();
  }
  li.close();
}

/// The kt loop: C tile (it,jt) += sum over kt of A(it,kt)*B(kt,jt).
void emit_c_tile(AsmBuilder& a, const MmCtx& c, int jstart, int jstep) {
  emit_tile_base(a, c, kCT, kIt, kJt, c.c_base);
  CountedLoop lkt(a, kKt, 0, c.nt);
  {
    emit_tile_base(a, c, kAT, kIt, kKt, c.a_base);
    emit_tile_base(a, c, kBT, kKt, kJt, c.b_base);
    emit_tile_multiply(a, c, jstart, jstep);
  }
  lkt.close();
}

/// Prefetches all A/B tiles of the precomputation span at tile indices
/// (ti, tj): the A tile row A(ti,*) and B tile column B(*,tj) — the data
/// the worker's kt loop will stream through. Uses kKt and kJ as loop
/// registers, kAT/kBT as scratch. `ti`/`tj` are parameters so the caller
/// can aim at the *next* span while its own loop indices name the current
/// one.
void emit_prefetch_span(AsmBuilder& a, const MmCtx& c, IReg ti, IReg tj) {
  const int64_t tile_bytes = c.t * c.t * 8;
  CountedLoop lkt(a, kKt, 0, c.nt);
  {
    emit_tile_base(a, c, kAT, ti, kKt, c.a_base);
    CountedLoop ll(a, kJ, 0, tile_bytes, 64);
    a.prefetch(Mem::bi(kAT, kJ, 0));
    ll.close();
    emit_tile_base(a, c, kBT, kKt, tj, c.b_base);
    CountedLoop l2(a, kJ, 0, tile_bytes, 64);
    a.prefetch(Mem::bi(kBT, kJ, 0));
    l2.close();
  }
  lkt.close();
}

void emit_barrier(AsmBuilder& a, const MatMulParams& p,
                  const sync::TwoThreadBarrier& bar, int tid, bool sleeper) {
  if (p.halt_barriers) {
    if (sleeper) {
      bar.emit_wait_sleeper(a, tid, kSense, kSync);
    } else {
      bar.emit_wait_waker(a, tid, kSense, kSync, p.spin);
    }
  } else {
    bar.emit_wait(a, tid, kSense, kSync, p.spin);
  }
}

}  // namespace

const char* name(MmMode m) {
  switch (m) {
    case MmMode::kSerial: return "serial";
    case MmMode::kTlpFine: return "tlp-fine";
    case MmMode::kTlpCoarse: return "tlp-coarse";
    case MmMode::kTlpPfetch: return "tlp-pfetch";
    case MmMode::kTlpPfetchWork: return "tlp-pfetch+work";
  }
  return "?";
}

MatMulWorkload::MatMulWorkload(const MatMulParams& p)
    : p_(p),
      name_(std::string("mm.") + kernels::name(p.mode) + ".n" +
            std::to_string(p.n)),
      layout_(p.n, p.tile) {
  SMT_CHECK_MSG(p.tile >= 4 && p.tile <= p.n, "bad tile size");
}

uint64_t MatMulWorkload::flops() const {
  return 2ull * p_.n * p_.n * p_.n;
}

core::MemInfo MatMulWorkload::mem_info() const {
  return {data_regions_,
          sync_layout_ != nullptr ? sync_layout_->regions()
                                  : std::vector<mem::MemoryLayout::Region>{},
          /*complete=*/true};
}

void MatMulWorkload::setup(core::Machine& m) {
  const size_t n = p_.n;
  const size_t words = n * n;
  // Power-of-two array alignment makes base|offset == base+offset, the
  // precondition of the mask-indexing scheme.
  mem::MemoryLayout mem_layout(p_.mem_base);
  a_base_ = mem_layout.alloc("A", words * 8, words * 8);
  b_base_ = mem_layout.alloc("B", words * 8, words * 8);
  c_base_ = mem_layout.alloc("C", words * 8, words * 8);
  data_regions_ = mem_layout.regions();

  Rng rng(p_.seed);
  host_a_ = random_matrix(n, rng);
  host_b_ = random_matrix(n, rng);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      m.memory().write_f64(a_base_ + 8 * layout_.offset(i, j),
                           host_a_[i * n + j]);
      m.memory().write_f64(b_base_ + 8 * layout_.offset(i, j),
                           host_b_[i * n + j]);
    }
  }
  ref_matmul(host_a_, host_b_, host_c_, n);

  MmCtx ctx;
  ctx.layout = &layout_;
  ctx.a_base = a_base_;
  ctx.b_base = b_base_;
  ctx.c_base = c_base_;
  ctx.log2t = layout_.log2t();
  ctx.log2nt = layout_.log2n() - layout_.log2t();
  ctx.nt = static_cast<int64_t>(layout_.tiles_per_dim());
  ctx.t = static_cast<int64_t>(p_.tile);
  const int64_t num_spans = ctx.nt * ctx.nt;

  programs_.clear();
  switch (p_.mode) {
    case MmMode::kSerial: {
      AsmBuilder a(name_);
      CountedLoop lit(a, kIt, 0, ctx.nt);
      CountedLoop ljt(a, kJt, 0, ctx.nt);
      emit_c_tile(a, ctx, 0, 1);
      ljt.close();
      lit.close();
      a.exit();
      programs_.push_back(a.take());
      break;
    }

    case MmMode::kTlpFine: {
      for (int tid = 0; tid < 2; ++tid) {
        AsmBuilder a(name_ + ".t" + std::to_string(tid));
        CountedLoop lit(a, kIt, 0, ctx.nt);
        CountedLoop ljt(a, kJt, 0, ctx.nt);
        emit_c_tile(a, ctx, tid, 2);
        ljt.close();
        lit.close();
        a.exit();
        programs_.push_back(a.take());
      }
      break;
    }

    case MmMode::kTlpCoarse: {
      for (int tid = 0; tid < 2; ++tid) {
        AsmBuilder a(name_ + ".t" + std::to_string(tid));
        CountedLoop lit(a, kIt, 0, ctx.nt);
        CountedLoop ljt(a, kJt, 0, ctx.nt);
        // Skip tiles whose linear index parity is not ours.
        Label skip = a.label();
        a.ishli(kS0, kIt, ctx.log2nt);
        a.ior(kS0, kS0, kJt);
        a.iandi(kS0, kS0, 1);
        a.bri(BrCond::kNe, kS0, tid, skip);
        emit_c_tile(a, ctx, 0, 1);
        a.bind(skip);
        ljt.close();
        lit.close();
        a.exit();
        programs_.push_back(a.take());
      }
      break;
    }

    case MmMode::kTlpPfetch:
    case MmMode::kTlpPfetchWork: {
      const bool hybrid = p_.mode == MmMode::kTlpPfetchWork;
      sync_layout_ = std::make_unique<mem::MemoryLayout>(p_.sync_base);
      barrier_ = std::make_unique<sync::TwoThreadBarrier>(*sync_layout_,
                                                          name_ + ".bar");
      if (m.telemetry() != nullptr) {
        barrier_->annotate(m.telemetry()->recorder(), name_ + ".bar",
                           /*spr=*/true);
      }
      // Thread 0: computation. Pure SPR: the whole workload; hybrid: the
      // even fine-grained share. One barrier per span (= one C tile).
      {
        AsmBuilder a(name_ + ".worker");
        barrier_->emit_init(a, kSense);
        CountedLoop lit(a, kIt, 0, ctx.nt);
        CountedLoop ljt(a, kJt, 0, ctx.nt);
        emit_barrier(a, p_, *barrier_, 0, /*sleeper=*/false);
        emit_c_tile(a, ctx, 0, hybrid ? 2 : 1);
        ljt.close();
        lit.close();
        a.exit();
        programs_.push_back(a.take());
      }
      // Thread 1: precomputation (plus the odd work share when hybrid).
      // kARow/kCRow double as "next span" tile indices here — they are
      // free between tile multiplies.
      {
        AsmBuilder a(name_ + (hybrid ? ".pfetch+work" : ".pfetch"));
        barrier_->emit_init(a, kSense);
        // Prefetch span 0 before the loop, unthrottled.
        a.imovi(kARow, 0);
        a.imovi(kCRow, 0);
        emit_prefetch_span(a, ctx, kARow, kCRow);
        CountedLoop lit(a, kIt, 0, ctx.nt);
        CountedLoop ljt(a, kJt, 0, ctx.nt);
        {
          emit_barrier(a, p_, *barrier_, 1, /*sleeper=*/true);
          // Derive the linear index of span e+1 and prefetch it.
          Label skip = a.label();
          a.ishli(kS0, kIt, ctx.log2nt);
          a.ior(kS0, kS0, kJt);
          a.iaddi(kS0, kS0, 1);
          a.bri(BrCond::kGe, kS0, num_spans, skip);
          a.ishri(kARow, kS0, ctx.log2nt);
          a.iandi(kCRow, kS0, ctx.nt - 1);
          emit_prefetch_span(a, ctx, kARow, kCRow);
          a.bind(skip);
          if (hybrid) emit_c_tile(a, ctx, 1, 2);
        }
        ljt.close();
        lit.close();
        a.exit();
        programs_.push_back(a.take());
      }
      break;
    }
  }
}

std::vector<isa::Program> MatMulWorkload::programs() const {
  return programs_;
}

bool MatMulWorkload::verify(const core::Machine& m) const {
  const size_t n = p_.n;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double got =
          m.memory().read_f64(c_base_ + 8 * layout_.offset(i, j));
      if (rel_err(got, host_c_[i * n + j]) > 1e-9) return false;
    }
  }
  return true;
}

}  // namespace smt::kernels
