// Tiled LU decomposition (paper §5.1.ii).
//
// In-place, pivot-free, right-looking tiled LU on a row-major n x n matrix
// (diagonally dominant inputs keep it stable). Each tile step kk has the
// paper's three computation phases, determined by inter-tile dependences:
//
//   phase 0  factor the diagonal tile (kk,kk)
//   phase 1  panel solves: row tiles (kk, jt>kk) through L(kk,kk)^-1 and
//            column tiles (it>kk, kk) through U(kk,kk)^-1
//   phase 2  trailing update: A(it,jt) -= A(it,kk) * A(kk,jt)
//
// Variants:
//   kSerial      one thread
//   kTlpCoarse   panel and trailing tiles split between the threads by
//                parity, with a barrier after each phase (the diagonal
//                factorization runs on thread 0)
//   kTlpPfetch   worker runs the serial code; the sibling prefetches the
//                next phase's tiles into L1 ("the prefetcher thread fills
//                part of the L1 cache with the next tile to be factorized"),
//                with per-element address computation — which is why, as in
//                the paper, the LU prefetcher retires about as many
//                instructions as the worker
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "mem/sim_memory.h"
#include "sync/primitives.h"

namespace smt::kernels {

enum class LuMode { kSerial, kTlpCoarse, kTlpPfetch };

const char* name(LuMode m);

struct LuParams {
  size_t n = 64;     // matrix order (power of two)
  size_t tile = 16;  // tile order (power of two)
  LuMode mode = LuMode::kSerial;
  uint64_t seed = 7;
  sync::SpinKind spin = sync::SpinKind::kPause;
  bool halt_barriers = false;
  Addr mem_base = 0x10000;   ///< data window base (see MatMulParams)
  Addr sync_base = 0x8000;
};

class LuWorkload : public core::Workload {
 public:
  explicit LuWorkload(const LuParams& p);

  const std::string& name() const override { return name_; }
  void setup(core::Machine& m) override;
  std::vector<isa::Program> programs() const override;
  bool verify(const core::Machine& m) const override;
  core::MemInfo mem_info() const override;

  const LuParams& params() const { return p_; }

 private:
  LuParams p_;
  std::string name_;
  Addr base_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<double> host_ref_;  // expected factorization
  std::vector<isa::Program> programs_;
  std::unique_ptr<mem::MemoryLayout> sync_layout_;
  std::unique_ptr<sync::TwoThreadBarrier> barrier_;
};

}  // namespace smt::kernels
