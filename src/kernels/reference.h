// Host-side reference implementations of every kernel, used to verify the
// numerical results the simulated programs produce, and to generate input
// data sets (matrices, sparse systems, grids).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace smt::kernels {

/// Dense row-major n*n matrix filled with uniform values in [lo, hi).
std::vector<double> random_matrix(size_t n, Rng& rng, double lo = -1.0,
                                  double hi = 1.0);

/// Row-major diagonally dominant matrix (stable for pivot-free LU).
std::vector<double> random_diag_dominant_matrix(size_t n, Rng& rng);

/// C = A * B (row-major, n*n).
void ref_matmul(const std::vector<double>& a, const std::vector<double>& b,
                std::vector<double>& c, size_t n);

/// In-place LU factorization without pivoting (L unit-diagonal, stored
/// below the diagonal; U on and above).
void ref_lu(std::vector<double>& a, size_t n);

// ---------------------------------------------------------------------------
// Sparse system for CG (NAS-CG-like random pattern, symmetric positive
// definite via diagonal shift).
// ---------------------------------------------------------------------------

struct SparseMatrix {
  size_t n = 0;
  std::vector<int64_t> rowptr;  // size n+1
  std::vector<int64_t> colidx;  // size nnz
  std::vector<double> values;   // size nnz
  size_t nnz() const { return colidx.size(); }
};

/// Random sparse SPD matrix: `nz_per_row` off-diagonal entries per row at
/// random columns (symmetrized), plus a dominant diagonal.
SparseMatrix make_sparse_spd(size_t n, size_t nz_per_row, Rng& rng);

/// y = A * x.
void ref_spmv(const SparseMatrix& a, const std::vector<double>& x,
              std::vector<double>& y);

/// Conjugate gradient: solves A z = x from z = 0, `iters` iterations.
/// Returns the final residual norm squared; `z` receives the solution.
double ref_cg(const SparseMatrix& a, const std::vector<double>& x,
              std::vector<double>& z, int iters);

// ---------------------------------------------------------------------------
// Block-tridiagonal (BT-like) 5x5 line systems.
// ---------------------------------------------------------------------------

inline constexpr size_t kBtBlock = 5;  // 5x5 blocks as in NAS BT

/// One line system of `cells` cells: block tridiagonal matrix with 5x5
/// blocks (A = sub-diagonal, B = diagonal, C = super-diagonal) and a
/// 5-vector right-hand side per cell. Blocks are stored row-major,
/// contiguous per cell: [A | B | C | rhs] = 25+25+25+5 doubles per cell.
struct BtLine {
  size_t cells = 0;
  std::vector<double> data;  // cells * 80 doubles
  static constexpr size_t kWordsPerCell = 3 * kBtBlock * kBtBlock + kBtBlock;

  double* cell(size_t i) { return data.data() + i * kWordsPerCell; }
  const double* cell(size_t i) const {
    return data.data() + i * kWordsPerCell;
  }
};

/// Generates a line with diagonally dominant blocks (stable pivot-free
/// block elimination).
BtLine make_bt_line(size_t cells, Rng& rng);

/// Solves the line in place by block Thomas elimination: forward
/// elimination with 5x5 block Gaussian solves, then back substitution.
/// On return, each cell's rhs holds the solution vector.
void ref_bt_solve_line(BtLine& line);

// 5x5 dense helpers (shared by the reference solver and tests).
void ref_mat5_mul(const double* a, const double* b, double* c);       // c = a*b
void ref_mat5_vec(const double* a, const double* x, double* y);       // y = a*x
void ref_mat5_solve(const double* a, double* x, size_t ncols);        // X <- A^-1 X (Gauss, no pivot)

}  // namespace smt::kernels
