// NAS-CG-like conjugate gradient kernel (paper §5.2.i).
//
// Solves A z = x on a randomly generated sparse SPD matrix (CSR), running a
// fixed number of CG iterations exactly like the NPB CG inner loop. The
// benchmark's character is its random memory access pattern: the SpMV
// gather p[colidx[k]] is the delinquent load that causes nearly all L2
// misses (the paper identified it with Valgrind profiling).
//
// Variants:
//   kSerial         one thread
//   kTlpCoarse      row-range partitioning with barrier-synchronized
//                   reductions (each thread computes partial dot products;
//                   scalar updates are duplicated on both threads)
//   kTlpPfetch      pure SPR: the sibling walks colidx ahead of the worker
//                   and prefetches the gathered p entries plus the CSR
//                   streams, throttled by one barrier per row span — the
//                   frequent synchronization the paper blames for CG's SPR
//                   slowdown
//   kTlpPfetchWork  hybrid: coarse partitioning + thread 1 also prefetches
//                   its own next row span
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "kernels/reference.h"
#include "mem/sim_memory.h"
#include "sync/primitives.h"

namespace smt::kernels {

enum class CgMode { kSerial, kTlpCoarse, kTlpPfetch, kTlpPfetchWork };

const char* name(CgMode m);

struct CgParams {
  size_t n = 2048;        // unknowns
  size_t nz_per_row = 8;  // off-diagonal entries placed per row (doubled by
                          // symmetrization)
  int iters = 15;         // CG iterations
  size_t span_rows = 64;  // SPR precomputation span, in matrix rows
  CgMode mode = CgMode::kSerial;
  uint64_t seed = 11;
  sync::SpinKind spin = sync::SpinKind::kPause;
  bool halt_barriers = false;
  Addr mem_base = 0x10000;   ///< data window base (see MatMulParams)
  Addr sync_base = 0x8000;
};

class CgWorkload : public core::Workload {
 public:
  explicit CgWorkload(const CgParams& p);

  const std::string& name() const override { return name_; }
  void setup(core::Machine& m) override;
  std::vector<isa::Program> programs() const override;
  bool verify(const core::Machine& m) const override;
  core::MemInfo mem_info() const override;

  const CgParams& params() const { return p_; }
  size_t nnz() const { return matrix_.nnz(); }

 private:
  CgParams p_;
  std::string name_;
  SparseMatrix matrix_;
  std::vector<double> host_z_;  // reference solution
  double host_rho_ = 0.0;       // reference final residual
  // Simulated-memory layout.
  Addr rowptr_ = 0, colidx_ = 0, vals_ = 0;
  Addr x_ = 0, z_ = 0, p_vec_ = 0, q_ = 0, r_ = 0;
  Addr dot_slots_ = 0;  // two partial-reduction words
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<isa::Program> programs_;
  std::unique_ptr<mem::MemoryLayout> sync_layout_;
  std::unique_ptr<sync::TwoThreadBarrier> barrier_;
};

}  // namespace smt::kernels
