#include "kernels/reference.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace smt::kernels {

std::vector<double> random_matrix(size_t n, Rng& rng, double lo, double hi) {
  std::vector<double> m(n * n);
  for (double& v : m) v = rng.next_double(lo, hi);
  return m;
}

std::vector<double> random_diag_dominant_matrix(size_t n, Rng& rng) {
  std::vector<double> m = random_matrix(n, rng, -1.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    m[i * n + i] = static_cast<double>(n) + rng.next_double(1.0, 2.0);
  }
  return m;
}

void ref_matmul(const std::vector<double>& a, const std::vector<double>& b,
                std::vector<double>& c, size_t n) {
  SMT_CHECK(a.size() == n * n && b.size() == n * n);
  c.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
}

void ref_lu(std::vector<double>& a, size_t n) {
  SMT_CHECK(a.size() == n * n);
  for (size_t k = 0; k < n; ++k) {
    const double pivot = a[k * n + k];
    SMT_CHECK_MSG(std::fabs(pivot) > 1e-12, "zero pivot in pivot-free LU");
    for (size_t i = k + 1; i < n; ++i) {
      a[i * n + k] /= pivot;
      const double lik = a[i * n + k];
      for (size_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= lik * a[k * n + j];
      }
    }
  }
}

SparseMatrix make_sparse_spd(size_t n, size_t nz_per_row, Rng& rng) {
  // Collect a random symmetric off-diagonal pattern, then add a dominant
  // diagonal. Duplicates within a row are merged by summing values.
  std::vector<std::vector<std::pair<int64_t, double>>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < nz_per_row; ++k) {
      const auto j = static_cast<int64_t>(rng.next_below(n));
      if (static_cast<size_t>(j) == i) continue;
      const double v = rng.next_double(-1.0, 1.0);
      rows[i].emplace_back(j, v);
      rows[j].emplace_back(static_cast<int64_t>(i), v);  // symmetry
    }
  }

  SparseMatrix m;
  m.n = n;
  m.rowptr.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    auto& row = rows[i];
    std::sort(row.begin(), row.end());
    // Merge duplicate columns.
    std::vector<std::pair<int64_t, double>> merged;
    for (const auto& [j, v] : row) {
      if (!merged.empty() && merged.back().first == j) {
        merged.back().second += v;
      } else {
        merged.emplace_back(j, v);
      }
    }
    double offdiag_sum = 0.0;
    for (const auto& [j, v] : merged) offdiag_sum += std::fabs(v);
    // Dominant diagonal makes the symmetric matrix positive definite.
    merged.emplace_back(static_cast<int64_t>(i), offdiag_sum + 1.0);
    std::sort(merged.begin(), merged.end());
    for (const auto& [j, v] : merged) {
      m.colidx.push_back(j);
      m.values.push_back(v);
    }
    m.rowptr[i + 1] = static_cast<int64_t>(m.colidx.size());
  }
  return m;
}

void ref_spmv(const SparseMatrix& a, const std::vector<double>& x,
              std::vector<double>& y) {
  SMT_CHECK(x.size() == a.n);
  y.assign(a.n, 0.0);
  for (size_t i = 0; i < a.n; ++i) {
    double s = 0.0;
    for (int64_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      s += a.values[k] * x[a.colidx[k]];
    }
    y[i] = s;
  }
}

double ref_cg(const SparseMatrix& a, const std::vector<double>& x,
              std::vector<double>& z, int iters) {
  const size_t n = a.n;
  z.assign(n, 0.0);
  std::vector<double> r = x;
  std::vector<double> p = r;
  std::vector<double> q(n);

  double rho = 0.0;
  for (size_t i = 0; i < n; ++i) rho += r[i] * r[i];

  for (int it = 0; it < iters; ++it) {
    ref_spmv(a, p, q);
    double pq = 0.0;
    for (size_t i = 0; i < n; ++i) pq += p[i] * q[i];
    const double alpha = rho / pq;
    for (size_t i = 0; i < n; ++i) z[i] += alpha * p[i];
    for (size_t i = 0; i < n; ++i) r[i] -= alpha * q[i];
    double rho_new = 0.0;
    for (size_t i = 0; i < n; ++i) rho_new += r[i] * r[i];
    const double beta = rho_new / rho;
    rho = rho_new;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return rho;
}

BtLine make_bt_line(size_t cells, Rng& rng) {
  BtLine line;
  line.cells = cells;
  line.data.resize(cells * BtLine::kWordsPerCell);
  constexpr size_t B = kBtBlock;
  for (size_t c = 0; c < cells; ++c) {
    double* cell = line.cell(c);
    double* a = cell;
    double* b = cell + B * B;
    double* cc = cell + 2 * B * B;
    double* rhs = cell + 3 * B * B;
    for (size_t i = 0; i < B * B; ++i) {
      a[i] = rng.next_double(-0.1, 0.1);
      b[i] = rng.next_double(-0.5, 0.5);
      cc[i] = rng.next_double(-0.1, 0.1);
    }
    // Diagonal dominance of the diagonal block keeps pivot-free block
    // elimination stable.
    for (size_t i = 0; i < B; ++i) b[i * B + i] += 4.0;
    for (size_t i = 0; i < B; ++i) rhs[i] = rng.next_double(-1.0, 1.0);
  }
  return line;
}

void ref_mat5_mul(const double* a, const double* b, double* c) {
  constexpr size_t B = kBtBlock;
  for (size_t i = 0; i < B; ++i) {
    for (size_t j = 0; j < B; ++j) {
      double s = 0.0;
      for (size_t k = 0; k < B; ++k) s += a[i * B + k] * b[k * B + j];
      c[i * B + j] = s;
    }
  }
}

void ref_mat5_vec(const double* a, const double* x, double* y) {
  constexpr size_t B = kBtBlock;
  for (size_t i = 0; i < B; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < B; ++k) s += a[i * B + k] * x[k];
    y[i] = s;
  }
}

void ref_mat5_solve(const double* a, double* x, size_t ncols) {
  // Solves A * X = X in place for X (ncols right-hand sides, row-major
  // with stride ncols), by Gaussian elimination without pivoting.
  constexpr size_t B = kBtBlock;
  double lu[B * B];
  std::memcpy(lu, a, sizeof lu);
  // Factor.
  for (size_t k = 0; k < B; ++k) {
    const double pivot = lu[k * B + k];
    SMT_CHECK_MSG(std::fabs(pivot) > 1e-12, "zero pivot in 5x5 solve");
    for (size_t i = k + 1; i < B; ++i) {
      lu[i * B + k] /= pivot;
      for (size_t j = k + 1; j < B; ++j) {
        lu[i * B + j] -= lu[i * B + k] * lu[k * B + j];
      }
    }
  }
  // Forward substitution (unit L).
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t i = 0; i < B; ++i) {
      double s = x[i * ncols + c];
      for (size_t k = 0; k < i; ++k) s -= lu[i * B + k] * x[k * ncols + c];
      x[i * ncols + c] = s;
    }
    // Back substitution.
    for (size_t ii = B; ii-- > 0;) {
      double s = x[ii * ncols + c];
      for (size_t k = ii + 1; k < B; ++k) s -= lu[ii * B + k] * x[k * ncols + c];
      x[ii * ncols + c] = s / lu[ii * B + ii];
    }
  }
}

void ref_bt_solve_line(BtLine& line) {
  constexpr size_t B = kBtBlock;
  const size_t n = line.cells;
  SMT_CHECK(n >= 1);

  // Forward elimination: for each cell i, eliminate the sub-diagonal block
  // using the previous cell's (already reduced) diagonal:
  //   B_i   <- B_i - A_i * Cprev'   (Cprev' = B_{i-1}^{-1} C_{i-1})
  //   rhs_i <- rhs_i - A_i * rhsprev' (rhsprev' = B_{i-1}^{-1} rhs_{i-1})
  // storing C_i' and rhs_i' back in place.
  for (size_t i = 0; i < n; ++i) {
    double* cell = line.cell(i);
    double* a = cell;
    double* b = cell + B * B;
    double* c = cell + 2 * B * B;
    double* rhs = cell + 3 * B * B;
    if (i > 0) {
      const double* prev = line.cell(i - 1);
      const double* cp = prev + 2 * B * B;   // C' of previous cell
      const double* rp = prev + 3 * B * B;   // rhs' of previous cell
      double tmp[B * B];
      ref_mat5_mul(a, cp, tmp);
      for (size_t k = 0; k < B * B; ++k) b[k] -= tmp[k];
      double tv[B];
      ref_mat5_vec(a, rp, tv);
      for (size_t k = 0; k < B; ++k) rhs[k] -= tv[k];
    }
    // Reduce: C' = B^{-1} C, rhs' = B^{-1} rhs.
    ref_mat5_solve(b, c, B);
    ref_mat5_solve(b, rhs, 1);
  }

  // Back substitution: x_i = rhs_i' - C_i' x_{i+1}.
  for (size_t i = n - 1; i-- > 0;) {
    double* cell = line.cell(i);
    const double* c = cell + 2 * B * B;
    double* rhs = cell + 3 * B * B;
    const double* xnext = line.cell(i + 1) + 3 * B * B;
    double tv[B];
    ref_mat5_vec(c, xnext, tv);
    for (size_t k = 0; k < B; ++k) rhs[k] -= tv[k];
  }
}

}  // namespace smt::kernels
