#include "kernels/layouts.h"

namespace smt::kernels {

int log2_exact(size_t v) {
  SMT_CHECK_MSG(v != 0 && (v & (v - 1)) == 0, "value must be a power of two");
  int l = 0;
  while ((size_t{1} << l) != v) ++l;
  return l;
}

BlockedLayout::BlockedLayout(size_t n, size_t tile)
    : n_(n), tile_(tile), log2n_(log2_exact(n)), log2t_(log2_exact(tile)) {
  SMT_CHECK_MSG(tile <= n, "tile larger than matrix");
}

}  // namespace smt::kernels
