// Tiled Matrix Multiplication with Blocked Array Layouts (paper §5.1.i).
//
// C = A * B on n x n doubles stored in blocked layout (tile order `tile`,
// chosen so one tile triple fits L1), with element addresses computed by
// binary masks (shift/OR), reproducing the ~25% logical-op dynamic mix of
// Table 1. Five execution variants, exactly the paper's:
//
//   kSerial        one thread, fully tiled, the optimized baseline
//   kTlpFine       both threads sweep the same tiles; consecutive elements
//                  of a C-tile row are assigned to threads circularly
//   kTlpCoarse     consecutive C tiles are assigned to threads circularly
//   kTlpPfetch     pure SPR: worker runs the serial code, the sibling
//                  prefetches the next precomputation span's A/B tiles,
//                  throttled by barriers (§3.2)
//   kTlpPfetchWork hybrid: fine-grained partitioning + one thread also
//                  prefetches the next span
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "kernels/layouts.h"
#include "mem/sim_memory.h"
#include "sync/primitives.h"

namespace smt::kernels {

enum class MmMode {
  kSerial,
  kTlpFine,
  kTlpCoarse,
  kTlpPfetch,
  kTlpPfetchWork,
};

const char* name(MmMode m);

struct MatMulParams {
  size_t n = 64;        // matrix order (power of two)
  size_t tile = 16;     // tile order (power of two; 3 tiles fit L1)
  MmMode mode = MmMode::kSerial;
  uint64_t seed = 42;
  sync::SpinKind spin = sync::SpinKind::kPause;
  /// Base of this workload's simulated-memory window (data) and of its
  /// synchronization variables; override to co-locate two workloads on
  /// one machine without aliasing (see bench/multiprog_pairs).
  Addr mem_base = 0x10000;
  Addr sync_base = 0x8000;
  /// Use halt/IPI sleeper barriers for the prefetcher's long-duration
  /// barrier waits instead of pause spinning (§3.1's selective halting).
  bool halt_barriers = false;
};

class MatMulWorkload : public core::Workload {
 public:
  explicit MatMulWorkload(const MatMulParams& p);

  const std::string& name() const override { return name_; }
  void setup(core::Machine& m) override;
  std::vector<isa::Program> programs() const override;
  bool verify(const core::Machine& m) const override;
  core::MemInfo mem_info() const override;

  /// Useful-arithmetic count, for MFLOP-style normalization: 2*n^3.
  uint64_t flops() const;
  const MatMulParams& params() const { return p_; }

 private:
  MatMulParams p_;
  std::string name_;
  BlockedLayout layout_;
  Addr a_base_ = 0, b_base_ = 0, c_base_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<double> host_a_, host_b_, host_c_;  // reference data
  std::vector<isa::Program> programs_;
  std::unique_ptr<mem::MemoryLayout> sync_layout_;
  std::unique_ptr<sync::TwoThreadBarrier> barrier_;
};

}  // namespace smt::kernels
