// Synthetic homogeneous instruction streams (paper §4).
//
// Each stream repeats one operation kind (or the circular fadd/fmul mix)
// with a controlled degree of instruction-level parallelism: the target
// register set T and source set S are kept disjoint, operations are
// read-modify-write accumulations (t = t op s), and |T| selects how many
// independent dependence chains exist:
//
//   |T| = 1  minimum ILP — one chain, serialized at unit latency
//   |T| = 3  medium ILP
//   |T| = 6  maximum ILP — enough chains to saturate the unit
//
// Memory streams traverse a private per-thread vector sequentially, exactly
// as in the paper ("each thread operates on a private vector, whose
// elements are traversed sequentially").
#pragma once

#include <string>

#include "isa/program.h"
#include "mem/sim_memory.h"

namespace smt::streams {

enum class StreamKind {
  kFAdd, kFSub, kFMul, kFDiv, kFAddMul,
  kFLoad, kFStore,
  kIAdd, kISub, kIMul, kIDiv,
  kILoad, kIStore,
};

const char* name(StreamKind k);
bool is_memory_stream(StreamKind k);
bool is_fp_stream(StreamKind k);

enum class IlpLevel : int { kMin = 1, kMed = 3, kMax = 6 };

const char* name(IlpLevel l);

struct StreamSpec {
  StreamKind kind = StreamKind::kFAdd;
  IlpLevel ilp = IlpLevel::kMax;
  /// Approximate number of stream operations to execute (loop overhead is
  /// a few percent on top).
  uint64_t ops = 400'000;
  /// Memory streams: private vector length in 8-byte words. The default
  /// (16 Ki words = 128 KiB) misses L1 on every line but stays L2-resident,
  /// reproducing the paper's low-miss-rate load/store streams.
  size_t vector_words = 16 * 1024;

  std::string label() const;
};

/// Builds the stream program for thread `tid`. Memory streams allocate the
/// thread's private vector from `layout` (tid keeps the two threads'
/// vectors distinct).
isa::Program build_stream(const StreamSpec& spec, mem::MemoryLayout& layout,
                          int tid);

}  // namespace smt::streams
