#include "streams/stream_gen.h"

#include "common/check.h"
#include "isa/asm_builder.h"

namespace smt::streams {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;

namespace {

// Register conventions (S and T disjoint, per the paper's construction):
//   int targets  T = r0..r5      int sources  S = r8, r9
//   fp  targets  T = f0..f5      fp  sources  S = f8, f9
//   r12 = vector cursor, r13 = vector end, r14 = loop counter
constexpr int kNumSources = 2;
constexpr IReg kCursor = IReg::R12;
constexpr IReg kEnd = IReg::R13;
constexpr IReg kCounter = IReg::R14;
constexpr IReg kIStoreSrc = IReg::R8;
constexpr FReg kFStoreSrc = FReg::F8;

constexpr int kUnroll = 24;       // arithmetic streams
constexpr int kMemUnroll = 16;    // memory streams (per inner iteration)

struct ArithOp {
  enum Kind { kInt, kFp } domain;
  void (AsmBuilder::*int_op)(IReg, IReg, IReg) = nullptr;
  void (AsmBuilder::*fp_op)(FReg, FReg, FReg) = nullptr;
};

/// Emits one accumulation t = t op s for slot `i` of the unrolled body.
void emit_arith(AsmBuilder& a, StreamKind kind, int ilp, int i) {
  const int t = i % ilp;
  const int s = i % kNumSources;
  const IReg it = isa::ireg_n(t);
  const IReg is = isa::ireg_n(8 + s);
  const FReg ft = isa::freg_n(t);
  const FReg fs = isa::freg_n(8 + s);
  switch (kind) {
    case StreamKind::kIAdd: a.iadd(it, it, is); break;
    case StreamKind::kISub: a.isub(it, it, is); break;
    case StreamKind::kIMul: a.imul(it, it, is); break;
    case StreamKind::kIDiv: a.idiv(it, it, is); break;
    case StreamKind::kFAdd: a.fadd(ft, ft, fs); break;
    case StreamKind::kFSub: a.fsub(ft, ft, fs); break;
    case StreamKind::kFMul: a.fmul(ft, ft, fs); break;
    case StreamKind::kFDiv: a.fdiv(ft, ft, fs); break;
    case StreamKind::kFAddMul:
      // Circular mix: alternating fp-add and fp-mul over the same chains.
      if (i % 2 == 0) {
        a.fadd(ft, ft, fs);
      } else {
        a.fmul(ft, ft, fs);
      }
      break;
    default:
      SMT_CHECK_MSG(false, "not an arithmetic stream");
  }
}

isa::Program build_arith(const StreamSpec& spec, int tid) {
  AsmBuilder a(spec.label() + (tid ? ".t1" : ".t0"));
  const int ilp = static_cast<int>(spec.ilp);

  // Source values keep accumulators finite for the whole run: add/sub
  // streams accumulate 0, mul/div streams scale by 1.
  const bool multiplicative = spec.kind == StreamKind::kFMul ||
                              spec.kind == StreamKind::kFDiv ||
                              spec.kind == StreamKind::kFAddMul;
  for (int s = 0; s < kNumSources; ++s) {
    if (is_fp_stream(spec.kind)) {
      a.fmovi(isa::freg_n(8 + s), multiplicative ? 1.0 : 0.0);
    } else {
      const bool imuldiv =
          spec.kind == StreamKind::kIMul || spec.kind == StreamKind::kIDiv;
      a.imovi(isa::ireg_n(8 + s), imuldiv ? 1 : 0);
    }
  }
  for (int t = 0; t < ilp; ++t) {
    if (is_fp_stream(spec.kind)) {
      a.fmovi(isa::freg_n(t), 1.0);
    } else {
      a.imovi(isa::ireg_n(t), 1);
    }
  }

  a.imovi(kCounter, 0);
  const int64_t iters =
      static_cast<int64_t>((spec.ops + kUnroll - 1) / kUnroll);
  Label loop = a.here();
  for (int i = 0; i < kUnroll; ++i) emit_arith(a, spec.kind, ilp, i);
  a.iaddi(kCounter, kCounter, 1);
  a.bri(BrCond::kLt, kCounter, iters, loop);
  a.exit();
  return a.take();
}

isa::Program build_memory(const StreamSpec& spec, mem::MemoryLayout& layout,
                          int tid) {
  AsmBuilder a(spec.label() + (tid ? ".t1" : ".t0"));
  const int ilp = static_cast<int>(spec.ilp);
  const Addr vec = layout.alloc_words(
      spec.label() + ".vec" + std::to_string(tid), spec.vector_words);
  const int64_t vec_bytes = static_cast<int64_t>(spec.vector_words) * 8;

  const bool is_store =
      spec.kind == StreamKind::kIStore || spec.kind == StreamKind::kFStore;
  const bool is_fp = is_fp_stream(spec.kind);

  if (is_store) {
    if (is_fp) {
      a.fmovi(kFStoreSrc, 1.0);
    } else {
      a.imovi(kIStoreSrc, 1);
    }
  }

  const uint64_t words_per_pass = spec.vector_words;
  const int64_t passes = static_cast<int64_t>(
      (spec.ops + words_per_pass - 1) / words_per_pass);

  a.imovi(kCounter, 0);
  Label outer = a.here();
  a.imovi(kCursor, static_cast<int64_t>(vec));
  a.imovi(kEnd, static_cast<int64_t>(vec) + vec_bytes);
  Label inner = a.here();
  for (int i = 0; i < kMemUnroll; ++i) {
    const Mem m = Mem::bd(kCursor, 8 * i);
    if (is_store) {
      if (is_fp) {
        a.fstore(kFStoreSrc, m);
      } else {
        a.store(kIStoreSrc, m);
      }
    } else {
      // Loads rotate over the target set; |T| governs the WAW chain count
      // exactly as for the arithmetic streams.
      if (is_fp) {
        a.fload(isa::freg_n(i % ilp), m);
      } else {
        a.load(isa::ireg_n(i % ilp), m);
      }
    }
  }
  a.iaddi(kCursor, kCursor, 8 * kMemUnroll);
  a.br(BrCond::kLt, kCursor, kEnd, inner);
  a.iaddi(kCounter, kCounter, 1);
  a.bri(BrCond::kLt, kCounter, passes, outer);
  a.exit();
  return a.take();
}

}  // namespace

const char* name(StreamKind k) {
  switch (k) {
    case StreamKind::kFAdd: return "fadd";
    case StreamKind::kFSub: return "fsub";
    case StreamKind::kFMul: return "fmul";
    case StreamKind::kFDiv: return "fdiv";
    case StreamKind::kFAddMul: return "fadd-mul";
    case StreamKind::kFLoad: return "fload";
    case StreamKind::kFStore: return "fstore";
    case StreamKind::kIAdd: return "iadd";
    case StreamKind::kISub: return "isub";
    case StreamKind::kIMul: return "imul";
    case StreamKind::kIDiv: return "idiv";
    case StreamKind::kILoad: return "iload";
    case StreamKind::kIStore: return "istore";
  }
  return "?";
}

bool is_memory_stream(StreamKind k) {
  switch (k) {
    case StreamKind::kFLoad:
    case StreamKind::kFStore:
    case StreamKind::kILoad:
    case StreamKind::kIStore:
      return true;
    default:
      return false;
  }
}

bool is_fp_stream(StreamKind k) {
  switch (k) {
    case StreamKind::kFAdd:
    case StreamKind::kFSub:
    case StreamKind::kFMul:
    case StreamKind::kFDiv:
    case StreamKind::kFAddMul:
    case StreamKind::kFLoad:
    case StreamKind::kFStore:
      return true;
    default:
      return false;
  }
}

const char* name(IlpLevel l) {
  switch (l) {
    case IlpLevel::kMin: return "minILP";
    case IlpLevel::kMed: return "medILP";
    case IlpLevel::kMax: return "maxILP";
  }
  return "?";
}

std::string StreamSpec::label() const {
  return std::string(streams::name(kind)) + "." + streams::name(ilp);
}

isa::Program build_stream(const StreamSpec& spec, mem::MemoryLayout& layout,
                          int tid) {
  SMT_CHECK(spec.ops > 0);
  if (is_memory_stream(spec.kind)) return build_memory(spec, layout, tid);
  return build_arith(spec, tid);
}

}  // namespace smt::streams
