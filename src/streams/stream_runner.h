// Execution drivers for the stream experiments: single-stream CPI and
// co-executed pair CPI / slowdown factors (paper Figures 1 and 2).
#pragma once

#include "core/machine.h"
#include "core/runner.h"
#include "streams/stream_gen.h"

namespace smt::streams {

struct StreamMeasurement {
  double cpi[kNumLogicalCpus] = {0.0, 0.0};
  uint64_t instrs[kNumLogicalCpus] = {0, 0};
  Cycle cycles = 0;
  /// Full counter snapshot + config of the measuring run, report-ready
  /// (workload is the stream label, or "label+label" for pairs).
  core::RunStats stats;
};

/// Runs one stream alone on logical CPU 0 (the sibling sits idle, so the
/// context owns all resources) and reports its CPI.
StreamMeasurement run_single(const StreamSpec& spec,
                             const core::MachineConfig& cfg = {});

/// Co-executes two streams, one per logical CPU, and measures both CPIs
/// over the fully-overlapped window (up to the first stream's completion,
/// mirroring the paper's fixed-duration co-execution methodology).
StreamMeasurement run_pair(const StreamSpec& a, const StreamSpec& b,
                           const core::MachineConfig& cfg = {});

/// Fig. 2's slowdown factor: CPI of `victim` while co-running with
/// `aggressor`, relative to its single-threaded CPI, minus 1 — i.e. 0.0
/// means unaffected, 1.0 means "100% slowdown" (doubled CPI).
double slowdown_factor(const StreamSpec& victim, const StreamSpec& aggressor,
                       const core::MachineConfig& cfg = {});

}  // namespace smt::streams
