#include "streams/stream_runner.h"

#include "common/check.h"
#include "perfmon/events.h"

namespace smt::streams {

using perfmon::Event;

StreamMeasurement run_single(const StreamSpec& spec,
                             const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  mem::MemoryLayout layout;
  m.load_program(CpuId::kCpu0, build_stream(spec, layout, 0));
  m.run();

  StreamMeasurement r;
  r.cycles = m.cycles();
  r.instrs[0] = m.counters().get(CpuId::kCpu0, Event::kInstrRetired);
  r.cpi[0] = m.counters().cpi(CpuId::kCpu0);
  r.stats.workload = spec.label();
  r.stats.cycles = m.cycles();
  r.stats.events = m.counters().snapshot();
  r.stats.verified = true;
  r.stats.config = m.config();
  return r;
}

StreamMeasurement run_pair(const StreamSpec& a, const StreamSpec& b,
                           const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  mem::MemoryLayout layout;
  m.load_program(CpuId::kCpu0, build_stream(a, layout, 0));
  m.load_program(CpuId::kCpu1, build_stream(b, layout, 1));
  m.run_until_any_done();

  StreamMeasurement r;
  r.cycles = m.cycles();
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId cpu = static_cast<CpuId>(i);
    r.instrs[i] = m.counters().get(cpu, Event::kInstrRetired);
    r.cpi[i] = m.counters().cpi(cpu);
  }
  r.stats.workload = a.label() + "+" + b.label();
  r.stats.cycles = m.cycles();
  r.stats.events = m.counters().snapshot();
  r.stats.verified = true;
  r.stats.config = m.config();
  return r;
}

double slowdown_factor(const StreamSpec& victim, const StreamSpec& aggressor,
                       const core::MachineConfig& cfg) {
  const StreamMeasurement alone = run_single(victim, cfg);
  const StreamMeasurement pair = run_pair(victim, aggressor, cfg);
  SMT_CHECK(alone.cpi[0] > 0.0);
  return pair.cpi[0] / alone.cpi[0] - 1.0;
}

}  // namespace smt::streams
