#include "host/experiments.h"

#include <cstdlib>
#include <map>
#include <set>

#include "common/check.h"
#include "common/io.h"
#include "isa/asm_builder.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "kernels/lu.h"
#include "kernels/matmul.h"

namespace smt::host {

namespace {

using kernels::BtMode;
using kernels::CgMode;
using kernels::LuMode;
using kernels::MmMode;

// ---------------------------------------------------------------------------
// Self-test workloads: deterministic failures for exercising the sweep's
// structured-outcome paths (never part of the default manifest).
// ---------------------------------------------------------------------------

/// Halts its only context with no sibling to ever send the wake-up IPI —
/// the canonical lost-wake-up deadlock the watchdog used to abort on.
class DeadlockWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }
  void setup(core::Machine&) override {}
  std::vector<isa::Program> programs() const override {
    isa::AsmBuilder a("sleeper");
    a.halt();
    a.exit();
    return {a.take()};
  }
  bool verify(const core::Machine&) const override { return true; }

 private:
  std::string name_ = "selftest.deadlock";
};

/// Counts far beyond what its job's cycle budget allows.
class BudgetWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }
  void setup(core::Machine&) override {}
  std::vector<isa::Program> programs() const override {
    isa::AsmBuilder a("counter");
    a.imovi(isa::IReg::R0, 0);
    const isa::Label loop = a.here();
    a.iaddi(isa::IReg::R0, isa::IReg::R0, 1);
    a.bri(isa::BrCond::kLt, isa::IReg::R0, 1'000'000'000, loop);
    a.exit();
    return {a.take()};
  }
  bool verify(const core::Machine&) const override { return true; }

 private:
  std::string name_ = "selftest.budget";
};

/// Two contexts hammering one shared word with no synchronization at all:
/// the canonical data race the happens-before detector must flag. Runs
/// with race_detect set, so the sweep reports it as kRaceDetected.
class RaceWorkload : public core::Workload {
 public:
  static constexpr int kIters = 64;

  const std::string& name() const override { return name_; }

  void setup(core::Machine& m) override {
    mem::MemoryLayout lay;
    word_ = lay.alloc_words("shared", 1);
    regions_ = lay.regions();
    m.memory().write_i64(word_, 0);
  }

  std::vector<isa::Program> programs() const override {
    using isa::IReg;
    isa::AsmBuilder w("racer.writer");
    w.imovi(IReg::R0, 0);
    const isa::Label wloop = w.here();
    w.store(IReg::R0, isa::Mem::abs(word_));  // plain store, no release
    w.iaddi(IReg::R0, IReg::R0, 1);
    w.bri(isa::BrCond::kLt, IReg::R0, kIters, wloop);
    w.exit();

    isa::AsmBuilder r("racer.reader");
    r.imovi(IReg::R0, 0);
    const isa::Label rloop = r.here();
    r.load(IReg::R1, isa::Mem::abs(word_));  // plain load, no acquire
    r.iaddi(IReg::R0, IReg::R0, 1);
    r.bri(isa::BrCond::kLt, IReg::R0, kIters, rloop);
    r.exit();
    return {w.take(), r.take()};
  }

  bool verify(const core::Machine& m) const override {
    const int64_t v = m.memory().read_i64(word_);
    return v >= 0 && v <= kIters;  // any interleaving lands here
  }

  core::MemInfo mem_info() const override {
    // The word is deliberately registered as *data*, not sync: the whole
    // point is that these accesses carry no happens-before edges.
    return {regions_, {}, true};
  }

 private:
  std::string name_ = "selftest.race";
  Addr word_ = 0;
  std::vector<mem::MemoryLayout::Region> regions_;
};

/// Emits a seeded verifier violation (an uninitialized-register read)
/// when SMT_SELFTEST_LINT_BREAK is set in the environment — the sweep's
/// --lint gate smoke flips it on to exercise the structured
/// "lint_failed" outcome end to end. Clean otherwise, so the
/// registry-wide zero-error lint gates hold.
class LintTrapWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }
  void setup(core::Machine&) override {}
  std::vector<isa::Program> programs() const override {
    isa::AsmBuilder a("lint-trap");
    if (std::getenv("SMT_SELFTEST_LINT_BREAK") != nullptr) {
      a.iaddi(isa::IReg::R0, isa::IReg::R1, 1);  // R1 never written
    } else {
      a.imovi(isa::IReg::R0, 1);
    }
    a.exit();
    return {a.take()};
  }
  bool verify(const core::Machine&) const override { return true; }

 private:
  std::string name_ = "selftest.lint";
};

/// Completes fine but fails its result check.
class VerifyFailWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }
  void setup(core::Machine& m) override { m.memory().write_i64(0xa000, 1); }
  std::vector<isa::Program> programs() const override {
    isa::AsmBuilder a("noop");
    a.exit();
    return {a.take()};
  }
  bool verify(const core::Machine& m) const override {
    return m.memory().read_i64(0xa000) == 2;  // never: the program wrote 1
  }

 private:
  std::string name_ = "selftest.verify-fail";
};

// ---------------------------------------------------------------------------
// Registry construction: the bench binaries' non-full-mode suites.
// ---------------------------------------------------------------------------

std::vector<ExperimentDef> build_registry() {
  std::vector<ExperimentDef> defs;

  // Figure 3: MM, five variants at n = 64 and 128 (bench/fig3_matmul.cc).
  for (size_t n : {size_t{64}, size_t{128}}) {
    for (MmMode mode :
         {MmMode::kSerial, MmMode::kTlpFine, MmMode::kTlpCoarse,
          MmMode::kTlpPfetch, MmMode::kTlpPfetchWork}) {
      ExperimentDef d;
      d.name = std::string("mm.") + kernels::name(mode) + ".n" +
               std::to_string(n);
      d.make = [mode, n] {
        kernels::MatMulParams p;
        p.n = n;
        p.tile = 16;
        p.mode = mode;
        p.halt_barriers = mode == MmMode::kTlpPfetch ||
                          mode == MmMode::kTlpPfetchWork;
        return std::make_unique<kernels::MatMulWorkload>(p);
      };
      defs.push_back(std::move(d));
    }
  }

  // Figure 4: LU, three variants at n = 64 and 128 (bench/fig4_lu.cc).
  for (size_t n : {size_t{64}, size_t{128}}) {
    for (LuMode mode :
         {LuMode::kSerial, LuMode::kTlpCoarse, LuMode::kTlpPfetch}) {
      ExperimentDef d;
      d.name = std::string("lu.") + kernels::name(mode) + ".n" +
               std::to_string(n);
      d.make = [mode, n] {
        kernels::LuParams p;
        p.n = n;
        p.tile = 16;
        p.mode = mode;
        return std::make_unique<kernels::LuWorkload>(p);
      };
      defs.push_back(std::move(d));
    }
  }

  // Figure 5: NAS CG and BT (bench/fig5_nas.cc).
  for (CgMode mode : {CgMode::kSerial, CgMode::kTlpCoarse, CgMode::kTlpPfetch,
                      CgMode::kTlpPfetchWork}) {
    ExperimentDef d;
    d.name = std::string("cg.") + kernels::name(mode);
    d.make = [mode] {
      kernels::CgParams p;
      p.n = 8192;
      p.nz_per_row = 8;
      p.iters = 6;
      p.mode = mode;
      return std::make_unique<kernels::CgWorkload>(p);
    };
    defs.push_back(std::move(d));
  }
  for (BtMode mode :
       {BtMode::kSerial, BtMode::kTlpCoarse, BtMode::kTlpPfetch}) {
    ExperimentDef d;
    d.name = std::string("bt.") + kernels::name(mode);
    d.make = [mode] {
      kernels::BtParams p;
      p.lines = 64;
      p.cells = 32;
      p.mode = mode;
      return std::make_unique<kernels::BtWorkload>(p);
    };
    defs.push_back(std::move(d));
  }

  // Self tests: structured-failure probes, excluded from the default
  // manifest (CI injects them by name).
  {
    ExperimentDef d;
    d.name = "selftest.deadlock";
    d.make = [] { return std::make_unique<DeadlockWorkload>(); };
    d.in_default_manifest = false;
    defs.push_back(std::move(d));
  }
  {
    ExperimentDef d;
    d.name = "selftest.budget";
    d.make = [] { return std::make_unique<BudgetWorkload>(); };
    d.cycle_budget = 100'000;  // the count loop needs orders of magnitude more
    d.in_default_manifest = false;
    defs.push_back(std::move(d));
  }
  {
    ExperimentDef d;
    d.name = "selftest.verify-fail";
    d.make = [] { return std::make_unique<VerifyFailWorkload>(); };
    d.in_default_manifest = false;
    defs.push_back(std::move(d));
  }
  {
    ExperimentDef d;
    d.name = "selftest.lint";
    d.make = [] { return std::make_unique<LintTrapWorkload>(); };
    d.in_default_manifest = false;
    defs.push_back(std::move(d));
  }
  {
    ExperimentDef d;
    d.name = "selftest.race";
    d.make = [] { return std::make_unique<RaceWorkload>(); };
    d.in_default_manifest = false;
    d.race_detect = true;
    defs.push_back(std::move(d));
  }
  {
    // Rides the mm.serial.n64 workload so the surviving retry's report is
    // byte-comparable against that job's reference artifact; the injected
    // first-attempt timeout (and the garbage files it strands) happens in
    // the sweep's job fn, before any simulation.
    ExperimentDef d;
    d.name = "selftest.timeout-once";
    d.make = [] {
      kernels::MatMulParams p;
      p.n = 64;
      p.tile = 16;
      p.mode = MmMode::kSerial;
      return std::make_unique<kernels::MatMulWorkload>(p);
    };
    d.in_default_manifest = false;
    d.timeout_first_attempt = true;
    defs.push_back(std::move(d));
  }

  return defs;
}

}  // namespace

namespace detail {

void check_registry_invariants(const std::vector<ExperimentDef>& defs) {
  std::set<std::string> names;
  std::map<std::string, std::string> files;  // sanitized key -> first owner
  for (const ExperimentDef& d : defs) {
    SMT_CHECK_MSG(!d.name.empty(), "experiment with empty name");
    SMT_CHECK_MSG(names.insert(d.name).second,
                  ("duplicate experiment name: " + d.name).c_str());
    const auto [it, fresh] =
        files.emplace(sanitize_artifact_key(d.name), d.name);
    SMT_CHECK_MSG(
        fresh,
        ("artifact filename collision: " + d.name + " vs " + it->second)
            .c_str());
  }
}

}  // namespace detail

const std::vector<ExperimentDef>& experiments() {
  static const std::vector<ExperimentDef> defs = [] {
    std::vector<ExperimentDef> d = build_registry();
    detail::check_registry_invariants(d);
    return d;
  }();
  return defs;
}

const ExperimentDef* find_experiment(const std::string& name) {
  for (const ExperimentDef& d : experiments()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::vector<std::string> default_manifest() {
  std::vector<std::string> names;
  for (const ExperimentDef& d : experiments()) {
    if (d.in_default_manifest) names.push_back(d.name);
  }
  return names;
}

}  // namespace smt::host
