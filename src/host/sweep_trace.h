// Host-side sweep tracing: serializes the JobPool's AttemptEvent stream
// as a Chrome trace-event JSON document (the same format the guest-side
// writer in src/trace/telemetry.h emits, loadable in Perfetto or
// chrome://tracing) so a sweep's wall-clock schedule becomes visible:
//
//   * one track (tid) per pool worker, named "worker N";
//   * one complete ("X") span per job attempt, named after the job and
//     colored by its JobStatus (ok = green, failed = red, watchdog
//     timeout = yellow), with status/attempt in args;
//   * instant events marking watchdog fires and the retry decision.
//
// Times are host wall-clock: 1 trace microsecond = 1 real microsecond,
// relative to pool start. Being wall-clock data, the trace lives in its
// own artifact (`smt_sweep --trace`), never inside reports or the index —
// the byte-identity guarantee on those is untouched.
#pragma once

#include <string>
#include <vector>

#include "host/job_pool.h"

namespace smt::host {

/// Builds the trace document. `events` is the collected on_attempt
/// stream in any order (it is sorted internally — completion order is
/// scheduling-dependent); `job_names[e.job]` names each span.
std::string sweep_trace_json(std::vector<AttemptEvent> events,
                             const std::vector<std::string>& job_names,
                             int workers);

/// Writes sweep_trace_json() to `path`, creating missing parent
/// directories; logs and returns false on failure.
bool write_sweep_trace_file(std::vector<AttemptEvent> events,
                            const std::vector<std::string>& job_names,
                            int workers, const std::string& path);

}  // namespace smt::host
