// Content-addressed result store: the sweep farm's cache of finished
// simulation results, keyed so a hit is *provably* the same simulation.
//
// A ResultKey captures everything a deterministic run's artifacts can
// depend on:
//   * the experiment name (reports embed the workload name, so two
//     experiments emitting identical programs still key apart);
//   * the canonical serialization digest of every guest isa::Program the
//     workload binds (isa::program_digest — code, fp-immediate bits,
//     sync-region and lock metadata);
//   * the canonical machine-config JSON digest
//     (core::machine_config_json — byte-identical to the report's
//     "config" section by construction);
//   * the run options that steer the simulation: cycle budget,
//     race_detect, flight_recorder;
//   * the report-schema epoch (kReportEpoch) — bumped whenever report
//     serialization changes, so stale objects age out instead of
//     resurfacing old bytes.
//
// Objects live under <root>/objects/<key-hash>/ as three files:
//   meta.json    smt-result-cache/1: the full key (for collision
//                verification on load) + the structured outcome
//   report.json  the job's RunReport bytes, verbatim
//   dump.json    the post-mortem core dump, when the run died with one
// Stores are atomic (write to a temp dir, then rename), loads verify
// every key field — a hash collision, partial write, or corrupt object
// degrades to a miss, never to wrong bytes.
//
// Only *completed deterministic* outcomes are cacheable (ok, deadlock,
// cycle_budget_exceeded, verify_failed, race_detected). Timeouts and
// cancellations are wall-clock facts about one particular host run and
// must never be replayed from a cache.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/machine.h"
#include "core/runner.h"
#include "host/experiments.h"

namespace smt::host {

/// The newest run-report schema the writer can emit. Part of every
/// result key: bump it (in lockstep with core::RunReport::to_json) and
/// every previously stored object becomes unreachable.
inline constexpr char kReportEpoch[] = "smt-run-report/4";

struct ResultKey {
  std::string experiment;
  std::vector<std::string> program_digests;  // per logical CPU, in order
  std::string config_hash;
  Cycle cycle_budget = 0;
  bool race_detect = false;
  bool flight_recorder = false;
  std::string report_epoch = kReportEpoch;

  /// The full key as one canonical byte string (what hash() digests and
  /// what load() compares field-for-field via meta.json).
  std::string canonical() const;

  /// 16-hex FNV-1a digest of canonical() — the object directory name.
  std::string hash() const;
};

/// Builds the key for one registry experiment under the given machine
/// config and run options. Instantiates a throwaway workload and runs
/// its setup() on a scratch Machine (programs are only defined after
/// setup); the cost is host-side array initialization, orders of
/// magnitude below simulating the job.
ResultKey result_key(const ExperimentDef& def, const core::MachineConfig& cfg,
                     Cycle cycle_budget, const core::RunOptions& opt);

/// A finished job's cacheable face: the structured outcome plus the
/// exact artifact bytes.
struct CachedResult {
  std::string outcome;  // core::RunStatus name ("ok", "deadlock", ...)
  std::string message;
  Cycle cycles = 0;
  bool verified = false;
  std::string report_json;  // verbatim report bytes (never empty)
  std::string dump_json;    // verbatim core-dump bytes ("" when none)
};

/// True for outcomes the store accepts: deterministic completions only.
bool cacheable_outcome(const std::string& outcome);

class ResultStore {
 public:
  /// Opens (and lazily creates) a store rooted at `root`.
  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// Looks up `key`; nullopt on miss, corruption, or any key-field
  /// mismatch (all three are the same answer: simulate).
  std::optional<CachedResult> load(const ResultKey& key) const;

  /// Stores `result` under `key` atomically. Returns false on I/O
  /// failure or when `result.outcome` is not cacheable; an object that
  /// already exists is left untouched (first writer wins — under the
  /// determinism contract both writers hold identical bytes).
  bool store(const ResultKey& key, const CachedResult& result) const;

 private:
  std::string object_dir(const ResultKey& key) const;

  std::string root_;
};

}  // namespace smt::host
