#include "host/sweep_trace.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/io.h"
#include "common/json.h"

namespace smt::host {

namespace {

/// Chrome trace reserved color names; Perfetto maps them to its palette.
const char* status_cname(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:      return "good";
    case JobStatus::kFailed:  return "terrible";
    case JobStatus::kTimeout: return "bad";
    case JobStatus::kSkipped: return "grey";  // never attempted: no spans
  }
  return "grey";
}

void write_meta(JsonWriter& w, int tid, const std::string& name) {
  w.begin_object();
  w.kv("name", "thread_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", tid);
  w.kv("ts", static_cast<uint64_t>(0));
  w.key("args");
  w.begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

uint64_t to_us(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1000.0);
}

}  // namespace

std::string sweep_trace_json(std::vector<AttemptEvent> events,
                             const std::vector<std::string>& job_names,
                             int workers) {
  // Completion order depends on scheduling; sort into a stable timeline
  // so a given event set always serializes the same way.
  std::sort(events.begin(), events.end(),
            [](const AttemptEvent& a, const AttemptEvent& b) {
              if (a.begin_ms != b.begin_ms) return a.begin_ms < b.begin_ms;
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.attempt < b.attempt;
            });

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("clock", "host wall-clock since pool start (us)");
  w.kv("workers", workers);
  w.end_object();

  w.key("traceEvents");
  w.begin_array();
  // Process + one named track per worker.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", 0);
  w.kv("ts", static_cast<uint64_t>(0));
  w.key("args");
  w.begin_object();
  w.kv("name", "smt_sweep");
  w.end_object();
  w.end_object();
  for (int i = 0; i < workers; ++i) {
    write_meta(w, i, "worker " + std::to_string(i));
  }

  for (const AttemptEvent& e : events) {
    SMT_CHECK(e.job < job_names.size());
    // The attempt span.
    w.begin_object();
    w.kv("name", job_names[e.job]);
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", e.worker);
    w.kv("ts", to_us(e.begin_ms));
    w.kv("dur", to_us(e.end_ms) - to_us(e.begin_ms));
    w.kv("cname", status_cname(e.status));
    w.key("args");
    w.begin_object();
    w.kv("status", name(e.status));
    w.kv("attempt", e.attempt);
    w.kv("will_retry", e.will_retry);
    w.end_object();
    w.end_object();
    // Watchdog fire / retry decision as instants at the kill point.
    if (e.status == JobStatus::kTimeout) {
      w.begin_object();
      w.kv("name", e.will_retry ? "watchdog: retry" : "watchdog: give up");
      w.kv("ph", "i");
      w.kv("pid", 0);
      w.kv("tid", e.worker);
      w.kv("ts", to_us(e.end_ms));
      w.kv("s", "t");
      w.key("args");
      w.begin_object();
      w.kv("job", job_names[e.job]);
      w.kv("attempt", e.attempt);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();

  w.end_object();
  return w.str();
}

bool write_sweep_trace_file(std::vector<AttemptEvent> events,
                            const std::vector<std::string>& job_names,
                            int workers, const std::string& path) {
  return write_text_file(
      path, sweep_trace_json(std::move(events), job_names, workers));
}

}  // namespace smt::host
