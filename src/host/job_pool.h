// Host-parallel job pool: shards independent simulation jobs across a
// fixed set of host worker threads — the sweep orchestrator's engine.
//
// Design constraints, in order:
//   * Crash isolation by construction: jobs must not abort the process.
//     Pool jobs therefore run simulations through the non-aborting
//     core::try_run_workload path and report failures as data.
//   * Determinism: a job's *result artifacts* depend only on the job
//     definition (every experiment fixes its seeds), never on worker
//     count, scheduling order, or whether a retry happened — which is
//     what makes parallel sweep reports byte-identical to serial ones.
//   * Cooperative wall-clock watchdog: each attempt gets a CancelToken
//     armed with a deadline; the simulator's cancel hook
//     (cpu::Core::set_cancel_check) polls it and winds the run down
//     cleanly. A job killed by the watchdog is retried once (fresh
//     machine, same definition and seeds) before being reported as
//     kTimeout. A job that ignores its token simply runs to its cycle
//     budget — the watchdog cannot preempt, only request.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace smt::host {

/// Cooperative cancellation handle handed to each job attempt: expires
/// when cancel() was called or the armed wall-clock deadline passed.
/// expired() is safe to poll from the job's thread while any other thread
/// calls cancel().
class CancelToken {
 public:
  CancelToken() = default;

  void arm_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// How a job ended, after retries.
enum class JobStatus : uint8_t {
  kOk,
  kFailed,   // structured failure (deadlock, budget, verify, ...)
  kTimeout,  // the watchdog expired the token on every allowed attempt
  kSkipped,  // never started: the pool-level cancel fired first
};
const char* name(JobStatus s);

struct JobResult {
  JobStatus status = JobStatus::kOk;
  std::string message;   // failure detail; empty when ok
  int attempts = 0;      // executions consumed (2 after a watchdog retry)
  double wall_ms = 0.0;  // host wall-clock across all attempts
};

struct Job {
  std::string name;
  /// One attempt of the job. Must poll `token` (wire it into the
  /// simulator's cancel check) and return kTimeout when it wound down
  /// because the token expired; `attempt` is 0 first, 1 on the retry.
  /// On kFailed/kTimeout, describe the failure in *message.
  std::function<JobStatus(const CancelToken& token, int attempt,
                          std::string* message)>
      fn;
  /// Artifact paths this job writes (report, dump, ...). Deleted by the
  /// pool before every retry attempt, so a watchdog-killed attempt's
  /// partially written files can never survive beside — or be mistaken
  /// for — the surviving attempt's output.
  std::vector<std::string> artifacts;
};

/// One finished job attempt, as seen by the pool's observability hooks.
/// Timestamps are host wall-clock milliseconds relative to run_jobs()
/// entry, so a sweep trace's spans all share one epoch.
struct AttemptEvent {
  size_t job = 0;    ///< index into the run_jobs() jobs vector
  int worker = 0;    ///< worker thread that ran the attempt [0, workers)
  int attempt = 0;   ///< 0 first, 1 on the watchdog retry
  JobStatus status = JobStatus::kOk;
  /// The watchdog killed this attempt and another one follows (the
  /// job's final status is not yet known).
  bool will_retry = false;
  double begin_ms = 0.0;
  double end_ms = 0.0;
};

class MetricsRegistry;

struct JobPoolConfig {
  /// Fixed number of worker threads (clamped to [1, #jobs]).
  int workers = 1;
  /// Per-attempt wall-clock watchdog; zero disables it.
  std::chrono::milliseconds job_timeout{0};
  /// Extra attempts granted when the watchdog killed the previous one.
  int timeout_retries = 1;
  /// Optional instrumentation, updated live while the pool runs (see
  /// host/metrics.h for the metric names the pool registers). Purely
  /// observational: the pool's scheduling and the jobs' artifacts are
  /// identical with or without it.
  MetricsRegistry* metrics = nullptr;
  /// Optional per-attempt hook (sweep trace, progress line). Invoked
  /// from worker threads, possibly concurrently — the callee
  /// synchronizes. Never invoked after run_jobs() returns.
  std::function<void(const AttemptEvent&)> on_attempt;
  /// Optional pool-level cancellation: once expired, workers stop
  /// claiming jobs (in-flight attempts run to completion — cancellation
  /// between jobs, not preemption). Unclaimed jobs come back kSkipped
  /// with zero attempts. The token outlives run_jobs(); the caller owns
  /// it.
  const CancelToken* cancel = nullptr;
};

/// Runs every job to completion on the worker pool and returns the
/// results in job order (independent of scheduling). Blocks until all
/// jobs finished; never throws away completed work because another job
/// failed.
std::vector<JobResult> run_jobs(const JobPoolConfig& cfg,
                                const std::vector<Job>& jobs);

}  // namespace smt::host
