#include "host/result_store.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "core/run_report.h"
#include "isa/serialize.h"

namespace fs = std::filesystem;

namespace smt::host {

namespace {

constexpr char kMetaSchema[] = "smt-result-cache/1";

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string meta_json(const ResultKey& key, const CachedResult& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kMetaSchema);
  w.kv("key", key.hash());
  w.kv("experiment", key.experiment);
  w.key("program_digests");
  w.begin_array();
  for (const std::string& d : key.program_digests) w.value(d);
  w.end_array();
  w.kv("config_hash", key.config_hash);
  w.kv("cycle_budget", static_cast<uint64_t>(key.cycle_budget));
  w.kv("race_detect", key.race_detect);
  w.kv("flight_recorder", key.flight_recorder);
  w.kv("report_epoch", key.report_epoch);
  w.kv("outcome", r.outcome);
  w.kv("message", r.message);
  w.kv("cycles", static_cast<uint64_t>(r.cycles));
  w.kv("verified", r.verified);
  w.kv("has_dump", !r.dump_json.empty());
  w.end_object();
  return w.str();
}

}  // namespace

std::string ResultKey::canonical() const {
  std::string out = "smt-result-key/1\n";
  out += "experiment " + experiment + "\n";
  out += "programs " + std::to_string(program_digests.size()) + "\n";
  for (const std::string& d : program_digests) out += d + "\n";
  out += "config " + config_hash + "\n";
  out += "cycle_budget " + std::to_string(cycle_budget) + "\n";
  out += std::string("race_detect ") + (race_detect ? "1" : "0") + "\n";
  out += std::string("flight_recorder ") + (flight_recorder ? "1" : "0") +
         "\n";
  out += "report_epoch " + report_epoch + "\n";
  return out;
}

std::string ResultKey::hash() const { return fnv1a64_hex(canonical()); }

ResultKey result_key(const ExperimentDef& def, const core::MachineConfig& cfg,
                     Cycle cycle_budget, const core::RunOptions& opt) {
  ResultKey key;
  key.experiment = def.name;
  const std::unique_ptr<core::Workload> w = def.make();
  core::Machine scratch(cfg);
  w->setup(scratch);
  for (const isa::Program& p : w->programs()) {
    key.program_digests.push_back(isa::program_digest(p));
  }
  key.config_hash = fnv1a64_hex(core::machine_config_json(cfg));
  key.cycle_budget = cycle_budget;
  key.race_detect = opt.race_detect;
  key.flight_recorder = opt.flight_recorder;
  return key;
}

bool cacheable_outcome(const std::string& outcome) {
  return outcome == "ok" || outcome == "deadlock" ||
         outcome == "cycle_budget_exceeded" || outcome == "verify_failed" ||
         outcome == "race_detected";
}

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {}

std::string ResultStore::object_dir(const ResultKey& key) const {
  return (fs::path(root_) / "objects" / key.hash()).string();
}

std::optional<CachedResult> ResultStore::load(const ResultKey& key) const {
  const fs::path dir = object_dir(key);
  const auto meta_bytes = read_file(dir / "meta.json");
  if (!meta_bytes.has_value()) return std::nullopt;
  const auto meta = parse_json(*meta_bytes);
  if (!meta.has_value() || !meta->is_object()) return std::nullopt;

  // Field-for-field key verification: the directory name is only a hash;
  // the meta document carries the full key so a collision (or a store
  // written under a different format understanding) reads as a miss.
  const auto str = [&](const char* k) -> const std::string* {
    const JsonValue* v = meta->find(k);
    return (v != nullptr && v->is_string()) ? &v->string : nullptr;
  };
  const auto boolean = [&](const char* k, bool* out) {
    const JsonValue* v = meta->find(k);
    if (v == nullptr || v->type != JsonValue::Type::kBool) return false;
    *out = v->boolean;
    return true;
  };
  const std::string* schema = str("schema");
  const std::string* experiment = str("experiment");
  const std::string* config_hash = str("config_hash");
  const std::string* report_epoch = str("report_epoch");
  const std::string* outcome = str("outcome");
  const std::string* message = str("message");
  const JsonValue* digests = meta->find("program_digests");
  const JsonValue* budget = meta->find("cycle_budget");
  const JsonValue* cycles = meta->find("cycles");
  bool race_detect = false;
  bool flight_recorder = false;
  bool verified = false;
  bool has_dump = false;
  if (schema == nullptr || *schema != kMetaSchema || experiment == nullptr ||
      *experiment != key.experiment || config_hash == nullptr ||
      *config_hash != key.config_hash || report_epoch == nullptr ||
      *report_epoch != key.report_epoch || outcome == nullptr ||
      message == nullptr || digests == nullptr || !digests->is_array() ||
      budget == nullptr || !budget->is_number() || cycles == nullptr ||
      !cycles->is_number() ||
      !boolean("race_detect", &race_detect) ||
      race_detect != key.race_detect ||
      !boolean("flight_recorder", &flight_recorder) ||
      flight_recorder != key.flight_recorder ||
      !boolean("verified", &verified) || !boolean("has_dump", &has_dump)) {
    return std::nullopt;
  }
  if (static_cast<Cycle>(budget->number) != key.cycle_budget) {
    return std::nullopt;
  }
  if (digests->array.size() != key.program_digests.size()) return std::nullopt;
  for (size_t i = 0; i < digests->array.size(); ++i) {
    if (!digests->array[i].is_string() ||
        digests->array[i].string != key.program_digests[i]) {
      return std::nullopt;
    }
  }
  if (!cacheable_outcome(*outcome)) return std::nullopt;

  CachedResult r;
  r.outcome = *outcome;
  r.message = *message;
  r.cycles = static_cast<Cycle>(cycles->number);
  r.verified = verified;
  auto report = read_file(dir / "report.json");
  if (!report.has_value() || report->empty()) return std::nullopt;
  r.report_json = std::move(*report);
  if (has_dump) {
    auto dump = read_file(dir / "dump.json");
    if (!dump.has_value() || dump->empty()) return std::nullopt;
    r.dump_json = std::move(*dump);
  }
  return r;
}

bool ResultStore::store(const ResultKey& key, const CachedResult& result)
    const {
  if (!cacheable_outcome(result.outcome)) return false;
  if (result.report_json.empty()) return false;
  const fs::path dir = object_dir(key);
  std::error_code ec;
  if (fs::exists(dir / "meta.json", ec)) return true;  // first writer won

  // Build the object in a uniquely named temp dir, then rename into
  // place: readers only ever observe absent or complete objects.
  static std::atomic<uint64_t> tmp_seq{0};
  const fs::path tmp =
      dir.string() + ".tmp" +
      std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  if (!write_text_file((tmp / "meta.json").string(),
                       meta_json(key, result)) ||
      !write_text_file((tmp / "report.json").string(), result.report_json) ||
      (!result.dump_json.empty() &&
       !write_text_file((tmp / "dump.json").string(), result.dump_json))) {
    fs::remove_all(tmp, ec);
    return false;
  }
  fs::rename(tmp, dir, ec);
  if (ec) {
    // Lost the race to a concurrent writer of the same key (identical
    // bytes under the determinism contract) — or a real I/O failure.
    fs::remove_all(tmp, ec);
    std::error_code ec2;
    if (fs::exists(dir / "meta.json", ec2)) return true;
    log::error("result store write failed", {{"dir", dir.string()}});
    return false;
  }
  return true;
}

}  // namespace smt::host
