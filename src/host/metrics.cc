#include "host/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/json.h"

namespace smt::host {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  SMT_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  SMT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly increasing");
}

void Histogram::observe(double x) {
  // First bucket whose upper edge admits x; everything beyond the last
  // bound lands in the implicit overflow bucket.
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[b];
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  ++count_;
  sum_ += x;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  SMT_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                name.c_str());
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  SMT_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                name.c_str());
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  SMT_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                name.c_str());
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    SMT_CHECK_MSG(slot->bounds() == bounds, name.c_str());
  }
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = {g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    // One lock acquisition for the whole histogram, so the copied counts,
    // count and sum are mutually consistent even under concurrent
    // observe() calls.
    const std::lock_guard<std::mutex> hlock(h->mu_);
    hs.counts = h->counts_;
    hs.count = h->count_;
    hs.sum = h->sum_;
    hs.min = h->count_ ? h->min_ : std::numeric_limits<double>::quiet_NaN();
    hs.max = h->count_ ? h->max_ : std::numeric_limits<double>::quiet_NaN();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void append_metrics_json(JsonWriter& w, const MetricsRegistry::Snapshot& s) {
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : s.counters) w.kv(name, v);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : s.gauges) {
    w.key(name);
    w.begin_object();
    w.kv("value", g.value);
    w.kv("max", g.max);
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : s.histograms) {
    w.key(name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    if (h.count > 0) {
      w.kv("min", h.min);
      w.kv("max", h.max);
    }
    w.key("buckets");
    w.begin_array();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      w.begin_object();
      if (i < h.bounds.size()) {
        w.kv("le", h.bounds[i]);
      } else {
        w.kv("le", "inf");
      }
      w.kv("count", h.counts[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

}  // namespace smt::host
