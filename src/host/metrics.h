// Host-side metrics registry: counters, gauges and fixed-bucket
// histograms instrumenting the sweep orchestrator (JobPool claims,
// watchdog fires, queue depth, per-attempt wall times, per-worker busy
// time). This is *host* observability — everything in here measures
// wall-clock behaviour of the orchestration layer and is therefore kept
// strictly out of the simulation artifacts: `smt_sweep --metrics` writes
// a separate `smt-sweep-metrics/1` document, never a report field, which
// preserves the sweep's parallel-equals-serial byte-identity guarantee.
//
// Concurrency contract: value updates (Counter::inc, Gauge::set/add,
// Histogram::observe) are safe from any number of threads, as are reads
// and snapshot(). Metric *registration* (counter()/gauge()/histogram())
// is also thread-safe and returns references that stay valid for the
// registry's lifetime — workers may look up lazily, though the pool
// registers everything up front.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smt {
class JsonWriter;
}

namespace smt::host {

/// Monotonic event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (e.g. queue depth) with a high-watermark.
class Gauge {
 public:
  void set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(int64_t delta) {
    raise_max(v_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_max(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket histogram over doubles: `bounds` are the inclusive upper
/// edges of the finite buckets (strictly increasing); one implicit
/// overflow bucket catches everything beyond the last bound. Tracks
/// count/sum/min/max alongside the per-bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;
  double min() const;  // NaN when empty (mirrors RunningStats)
  double max() const;

 private:
  friend class MetricsRegistry;

  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, one instance per sweep invocation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; a name is bound to one metric kind for the
  /// registry's lifetime (SMT_CHECK on a kind or bucket-layout clash).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  struct GaugeSnapshot {
    int64_t value = 0;
    int64_t max = 0;
  };
  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // NaN when empty
    double max = 0.0;
  };
  /// Point-in-time copy of every registered metric. Values written
  /// before the snapshot call (happens-before) are always included;
  /// each individual histogram is internally consistent (its counts sum
  /// to its count).
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, GaugeSnapshot> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the maps; values synchronize themselves
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Appends the three metric sections ("counters", "gauges",
/// "histograms") to an open JSON object. Histogram min/max are omitted
/// when empty (the JSON subset has no NaN).
void append_metrics_json(JsonWriter& w, const MetricsRegistry::Snapshot& s);

}  // namespace smt::host
