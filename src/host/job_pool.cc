#include "host/job_pool.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/check.h"
#include "host/metrics.h"

namespace smt::host {

const char* name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:      return "ok";
    case JobStatus::kFailed:  return "failed";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kSkipped: return "skipped";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The pool's metric set, registered once up front so worker threads only
/// ever touch the (thread-safe) metric values. All names live under
/// "pool." — see DESIGN.md §12 for the full table.
struct PoolInstruments {
  explicit PoolInstruments(MetricsRegistry& reg, int workers)
      : jobs_started(reg.counter("pool.jobs_started")),
        jobs_completed(reg.counter("pool.jobs_completed")),
        jobs_ok(reg.counter("pool.jobs_ok")),
        jobs_failed(reg.counter("pool.jobs_failed")),
        jobs_timeout(reg.counter("pool.jobs_timeout")),
        jobs_retried(reg.counter("pool.jobs_retried")),
        jobs_skipped(reg.counter("pool.jobs_skipped")),
        attempts(reg.counter("pool.attempts")),
        watchdog_fires(reg.counter("pool.watchdog_fires")),
        queue_depth(reg.gauge("pool.queue_depth")),
        workers_busy(reg.gauge("pool.workers_busy")),
        // Wall-time buckets from sub-ms probes up to multi-minute jobs.
        attempt_wall_ms(reg.histogram(
            "pool.attempt_wall_ms",
            {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000, 300000})) {
    for (int i = 0; i < workers; ++i) {
      worker_busy_us.push_back(
          &reg.counter("pool.worker" + std::to_string(i) + ".busy_us"));
    }
  }

  Counter& jobs_started;
  Counter& jobs_completed;
  Counter& jobs_ok;
  Counter& jobs_failed;
  Counter& jobs_timeout;
  Counter& jobs_retried;
  Counter& jobs_skipped;
  Counter& attempts;
  Counter& watchdog_fires;
  Gauge& queue_depth;
  Gauge& workers_busy;
  Histogram& attempt_wall_ms;
  std::vector<Counter*> worker_busy_us;
};

JobResult run_one(const JobPoolConfig& cfg, const Job& job, size_t job_index,
                  int worker, Clock::time_point pool_start,
                  PoolInstruments* ins) {
  SMT_CHECK_MSG(static_cast<bool>(job.fn), job.name.c_str());
  JobResult r;
  if (ins != nullptr) ins->jobs_started.inc();
  for (int attempt = 0;; ++attempt) {
    // A watchdog-killed attempt can die mid-write and leave partial
    // artifacts behind; delete every declared artifact path before the
    // retry so the files on disk after the job can only be the surviving
    // attempt's bytes (a stale dump from attempt 0 must not shadow a
    // clean retry that produced none).
    if (attempt > 0) {
      for (const std::string& path : job.artifacts) {
        std::remove(path.c_str());
      }
    }
    CancelToken token;
    if (cfg.job_timeout.count() > 0) {
      token.arm_deadline(Clock::now() + cfg.job_timeout);
    }
    const double begin_ms = ms_since(pool_start);
    std::string message;
    r.status = job.fn(token, attempt, &message);
    r.message = std::move(message);
    const double end_ms = ms_since(pool_start);
    r.wall_ms += end_ms - begin_ms;
    ++r.attempts;
    // One fresh attempt after a watchdog kill; every job definition fixes
    // its seeds, so the retry recomputes the identical simulation.
    const bool will_retry =
        r.status == JobStatus::kTimeout && attempt < cfg.timeout_retries;
    if (ins != nullptr) {
      ins->attempts.inc();
      ins->attempt_wall_ms.observe(end_ms - begin_ms);
      if (r.status == JobStatus::kTimeout) ins->watchdog_fires.inc();
      if (will_retry) ins->jobs_retried.inc();
    }
    if (cfg.on_attempt) {
      AttemptEvent e;
      e.job = job_index;
      e.worker = worker;
      e.attempt = attempt;
      e.status = r.status;
      e.will_retry = will_retry;
      e.begin_ms = begin_ms;
      e.end_ms = end_ms;
      cfg.on_attempt(e);
    }
    if (will_retry) continue;
    if (ins != nullptr) {
      ins->jobs_completed.inc();
      switch (r.status) {
        case JobStatus::kOk:      ins->jobs_ok.inc(); break;
        case JobStatus::kFailed:  ins->jobs_failed.inc(); break;
        case JobStatus::kTimeout: ins->jobs_timeout.inc(); break;
        case JobStatus::kSkipped: break;  // job fns never return kSkipped
      }
    }
    return r;
  }
}

}  // namespace

std::vector<JobResult> run_jobs(const JobPoolConfig& cfg,
                                const std::vector<Job>& jobs) {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  int workers = cfg.workers < 1 ? 1 : cfg.workers;
  if (static_cast<size_t>(workers) > jobs.size()) {
    workers = static_cast<int>(jobs.size());
  }

  std::unique_ptr<PoolInstruments> ins;
  if (cfg.metrics != nullptr) {
    ins = std::make_unique<PoolInstruments>(*cfg.metrics, workers);
    ins->queue_depth.set(static_cast<int64_t>(jobs.size()));
  }
  const Clock::time_point pool_start = Clock::now();

  // Every slot starts out skipped; workers overwrite exactly the slots
  // they claim, so after the join the skipped set is precisely the jobs
  // the pool-level cancel kept from ever starting.
  for (JobResult& r : results) r.status = JobStatus::kSkipped;

  // Work stealing off a shared atomic cursor; each worker writes only the
  // result slots of the jobs it claimed, so no further synchronization is
  // needed on `results`.
  std::atomic<size_t> next{0};
  auto worker = [&](int worker_id) {
    const Clock::time_point worker_start = Clock::now();
    double busy_ms = 0.0;
    while (true) {
      // Pool-level cancellation point: checked between jobs only —
      // claimed attempts always run to completion (their own per-attempt
      // token handles wall-clock limits).
      if (cfg.cancel != nullptr && cfg.cancel->expired()) break;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) break;
      if (ins != nullptr) {
        ins->queue_depth.add(-1);
        ins->workers_busy.add(1);
      }
      const double t0 = ms_since(worker_start);
      results[i] = run_one(cfg, jobs[i], i, worker_id, pool_start, ins.get());
      busy_ms += ms_since(worker_start) - t0;
      if (ins != nullptr) ins->workers_busy.add(-1);
    }
    if (ins != nullptr) {
      // Round to the nearest µs: truncation undercounts every worker's
      // sub-µs remainder, letting summed busy time drift below the
      // attempt wall-time sums check_reports cross-checks against.
      ins->worker_busy_us[worker_id]->inc(
          static_cast<uint64_t>(std::llround(busy_ms * 1000.0)));
    }
  };

  if (workers == 1) {
    worker(0);  // serial mode stays on the caller's thread (no pool at all)
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int i = 0; i < workers; ++i) threads.emplace_back(worker, i);
    for (std::thread& t : threads) t.join();
  }
  if (ins != nullptr) {
    uint64_t skipped = 0;
    for (const JobResult& r : results) {
      if (r.status == JobStatus::kSkipped) ++skipped;
    }
    ins->jobs_skipped.inc(skipped);
    cfg.metrics->counter("pool.wall_us")
        .inc(static_cast<uint64_t>(std::llround(ms_since(pool_start) * 1000.0)));
    cfg.metrics->counter("pool.workers").inc(static_cast<uint64_t>(workers));
  }
  return results;
}

}  // namespace smt::host
