#include "host/job_pool.h"

#include <thread>

#include "common/check.h"

namespace smt::host {

const char* name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:      return "ok";
    case JobStatus::kFailed:  return "failed";
    case JobStatus::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

JobResult run_one(const JobPoolConfig& cfg, const Job& job) {
  SMT_CHECK_MSG(static_cast<bool>(job.fn), job.name.c_str());
  JobResult r;
  for (int attempt = 0;; ++attempt) {
    CancelToken token;
    if (cfg.job_timeout.count() > 0) {
      token.arm_deadline(std::chrono::steady_clock::now() + cfg.job_timeout);
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::string message;
    r.status = job.fn(token, attempt, &message);
    r.message = std::move(message);
    r.wall_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    ++r.attempts;
    // One fresh attempt after a watchdog kill; every job definition fixes
    // its seeds, so the retry recomputes the identical simulation.
    if (r.status == JobStatus::kTimeout && attempt < cfg.timeout_retries) {
      continue;
    }
    return r;
  }
}

}  // namespace

std::vector<JobResult> run_jobs(const JobPoolConfig& cfg,
                                const std::vector<Job>& jobs) {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  int workers = cfg.workers < 1 ? 1 : cfg.workers;
  if (static_cast<size_t>(workers) > jobs.size()) {
    workers = static_cast<int>(jobs.size());
  }

  // Work stealing off a shared atomic cursor; each worker writes only the
  // result slots of the jobs it claimed, so no further synchronization is
  // needed on `results`.
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < jobs.size(); i = next.fetch_add(1, std::memory_order_relaxed)) {
      results[i] = run_one(cfg, jobs[i]);
    }
  };

  if (workers == 1) {
    worker();  // serial mode stays on the caller's thread (no pool at all)
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int i = 0; i < workers; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace smt::host
