// Named experiment definitions for the sweep orchestrator: the paper's
// figure/table workload suite (the same kernel parameterizations the
// bench binaries run — see bench/fig3_matmul.cc, fig4_lu.cc, fig5_nas.cc)
// plus a few deliberately failing self-test jobs used to exercise the
// structured failure paths in CI.
//
// Every definition is fully deterministic: the factory builds a fresh
// Workload with fixed sizes and seeds, so a job's report depends only on
// its name — never on which worker ran it, in what order, or whether the
// watchdog forced a retry. The stream/co-execution experiments (Figures
// 1-2, Table 1) drive machines by hand inside their bench binaries and
// are not part of this registry.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/workload.h"

namespace smt::host {

struct ExperimentDef {
  /// Registry key, matching the bench result keys (e.g. "mm.serial.n64").
  std::string name;
  /// Builds a fresh, deterministic instance of the workload.
  std::function<std::unique_ptr<core::Workload>()> make;
  /// Per-job simulated-cycle budget (try_run_workload's max_cycles).
  Cycle cycle_budget = 4'000'000'000ull;
  /// Whether the job belongs to smt_sweep's default manifest (the
  /// selftest.* jobs do not — they exist to be injected explicitly).
  bool in_default_manifest = true;
  /// Run with the happens-before race detector attached
  /// (core::RunOptions::race_detect); a detected race comes back as a
  /// structured kRaceDetected outcome.
  bool race_detect = false;
  /// Self-test fault injection: the sweep's job fn reports a watchdog
  /// timeout on attempt 0 — after deliberately leaving partial artifact
  /// files behind — and simulates normally on the retry. Exercises the
  /// JobPool's pre-retry artifact scrub end to end.
  bool timeout_first_attempt = false;
};

/// The full registry, in canonical (figure/table) order.
const std::vector<ExperimentDef>& experiments();

/// Looks up a definition by name; nullptr when unknown.
const ExperimentDef* find_experiment(const std::string& name);

/// The names of every default-manifest experiment, in registry order.
std::vector<std::string> default_manifest();

namespace detail {
/// SMT_CHECKs that no two definitions share a name and that every name
/// survives filename sanitization distinctly. History trajectories and
/// sweep artifact paths are keyed by experiment name, so a collision
/// would silently merge two experiments' results; the registry refuses
/// to exist in that state (enforced on first experiments() call, unit-
/// tested directly in host_test).
void check_registry_invariants(const std::vector<ExperimentDef>& defs);
}  // namespace detail

}  // namespace smt::host
