// Figure 3: the Matrix Multiplication kernel — execution time, L2 misses,
// resource (store-buffer) stall cycles and retired uops for the serial,
// tlp-fine, tlp-coarse, tlp-pfetch and tlp-pfetch+work versions across
// three matrix sizes.
//
// As in the paper, L2 misses of the pure/hybrid prefetch methods are
// reported for the working thread only; all other events sum both logical
// processors. The SPR variants use the halt/IPI sleeper barriers for their
// long-duration span waits (paper §3.1/§3.2's selective halting).
#include "bench/bench_util.h"
#include "kernels/matmul.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

using core::RunStats;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;
using perfmon::Event;

constexpr MmMode kModes[] = {MmMode::kSerial, MmMode::kTlpFine,
                             MmMode::kTlpCoarse, MmMode::kTlpPfetch,
                             MmMode::kTlpPfetchWork};

std::vector<size_t> sizes() {
  std::vector<size_t> s{64, 128};
  if (full_mode()) s.push_back(256);
  return s;
}

std::string key(MmMode m, size_t n) {
  return std::string("mm.") + kernels::name(m) + ".n" + std::to_string(n);
}

void register_all() {
  for (size_t n : sizes()) {
    for (MmMode mode : kModes) {
      register_run(key(mode, n), [mode, n] {
        MatMulParams p;
        p.n = n;
        p.tile = 16;
        p.mode = mode;
        // Long span waits: the prefetcher sleeps via halt/IPI.
        p.halt_barriers = mode == MmMode::kTlpPfetch ||
                          mode == MmMode::kTlpPfetchWork;
        MatMulWorkload w(p);
        Results::instance().put(key(mode, n),
                                core::run_workload(core::MachineConfig{}, w));
      });
    }
  }
}

bool worker_only_misses(MmMode m) {
  return m == MmMode::kTlpPfetch || m == MmMode::kTlpPfetchWork;
}

void print_all() {
  auto& res = Results::instance();
  TextTable t({"version", "n", "cycles", "norm.time", "L2 misses",
               "SB stall cyc", "uops retired", "verified"});
  for (size_t n : sizes()) {
    const uint64_t serial = res.get(key(MmMode::kSerial, n)).cycles;
    for (MmMode mode : kModes) {
      const RunStats& st = res.get(key(mode, n));
      const uint64_t l2 =
          worker_only_misses(mode)
              ? st.cpu(CpuId::kCpu0, Event::kL2ReadMisses)
              : st.total(Event::kL2ReadMisses);
      t.add_row({kernels::name(mode), std::to_string(n),
                 fmt_count(st.cycles),
                 fmt(static_cast<double>(st.cycles) / serial, 3),
                 fmt_count(l2), fmt_count(st.total(Event::kStoreBufferStallCycles)),
                 fmt_count(st.total(Event::kUopsRetired)),
                 st.verified ? "yes" : "NO"});
    }
  }
  print_table("Figure 3: Matrix Multiplication kernel", t);
  std::printf(
      "\nPaper shape check (1024-4096 on real HT hardware): no dual-threaded\n"
      "method beats serial; tlp-pfetch is the fastest dual method, nearly\n"
      "identical to serial, with ~82%% fewer worker L2 misses; tlp-coarse,\n"
      "tlp-fine and tlp-pfetch+work are 1.12x / 1.34x / 1.58x slower.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
