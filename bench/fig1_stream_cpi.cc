// Figure 1: average CPI for different TLP and ILP execution modes of the
// common instruction streams (fadd, fmul, fadd-mul, iadd, iload).
//
// For each stream the paper reports six bars: {1 thread, 2 threads} x
// {min, med, max ILP}. Dual-threaded CPI is measured per logical CPU over
// the fully-overlapped window and the two contexts run identical streams,
// so one value per configuration suffices (they are symmetric).
#include "bench/bench_util.h"
#include "streams/stream_gen.h"
#include "streams/stream_runner.h"

namespace smt::bench {
namespace {

using streams::IlpLevel;
using streams::StreamKind;
using streams::StreamSpec;

constexpr StreamKind kStreams[] = {
    StreamKind::kFAdd, StreamKind::kFMul, StreamKind::kFAddMul,
    StreamKind::kIAdd, StreamKind::kILoad,
};
constexpr IlpLevel kIlp[] = {IlpLevel::kMin, IlpLevel::kMed, IlpLevel::kMax};

StreamSpec spec_for(StreamKind k, IlpLevel l) {
  StreamSpec s;
  s.kind = k;
  s.ilp = l;
  // Divide-free streams are fast; keep every run around a million cycles.
  s.ops = 300'000;
  return s;
}

std::string key(StreamKind k, IlpLevel l, int threads) {
  return std::string(streams::name(k)) + "." + streams::name(l) + "." +
         std::to_string(threads) + "thr";
}

void register_all() {
  for (StreamKind k : kStreams) {
    for (IlpLevel l : kIlp) {
      register_run(key(k, l, 1), [k, l] {
        const auto m = streams::run_single(spec_for(k, l));
        Results::instance().put_value(key(k, l, 1), m.cpi[0]);
        Results::instance().put(key(k, l, 1), m.stats);
      });
      register_run(key(k, l, 2), [k, l] {
        const auto m = streams::run_pair(spec_for(k, l), spec_for(k, l));
        Results::instance().put_value(key(k, l, 2), m.cpi[0]);
        Results::instance().put(key(k, l, 2), m.stats);
      });
    }
  }
}

void print_all() {
  TextTable t({"stream", "1thr-minILP", "1thr-medILP", "1thr-maxILP",
               "2thr-minILP", "2thr-medILP", "2thr-maxILP"});
  for (StreamKind k : kStreams) {
    std::vector<std::string> row{streams::name(k)};
    for (int threads : {1, 2}) {
      for (IlpLevel l : kIlp) {
        row.push_back(fmt(Results::instance().value(key(k, l, threads)), 2));
      }
    }
    t.add_row(std::move(row));
  }
  print_table("Figure 1: average CPI per TLP/ILP execution mode", t);
  std::printf(
      "\nPaper shape check: fadd/fmul min-ILP CPI is flat from 1thr to 2thr\n"
      "(pure TLP win); best throughput at 1thr-maxILP; 2thr-maxILP gains\n"
      "nothing over 1thr-maxILP; iadd is ~flat everywhere.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
