// Ablation for paper §3.2: the precomputation-span size tradeoff.
//
// The paper throttles its prefetcher with barriers around spans whose
// memory footprint is between L2/(2A) and L2/2: too small a span means
// frequent synchronization; too large a span lets the prefetcher run far
// ahead and evict data the worker has not consumed yet. This bench sweeps
// the CG SPR span (in matrix rows) and reports time, sync frequency and
// worker misses.
#include "bench/bench_util.h"
#include "kernels/cg.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

using kernels::CgMode;
using kernels::CgParams;
using kernels::CgWorkload;
using perfmon::Event;

CgParams base_params() {
  CgParams p;
  p.n = 8192;
  p.nz_per_row = 8;
  p.iters = 4;
  return p;
}

const size_t kSpans[] = {8, 16, 32, 64, 128, 256};

std::string key(size_t span) { return "cg.span" + std::to_string(span); }

void register_all() {
  register_run("cg.serial", [] {
    CgParams p = base_params();
    CgWorkload w(p);
    Results::instance().put("cg.serial",
                            core::run_workload(core::MachineConfig{}, w));
  });
  for (size_t span : kSpans) {
    register_run(key(span), [span] {
      CgParams p = base_params();
      p.mode = CgMode::kTlpPfetch;
      p.span_rows = span;
      CgWorkload w(p);
      Results::instance().put(key(span),
                              core::run_workload(core::MachineConfig{}, w));
    });
  }
}

void print_all() {
  auto& res = Results::instance();
  const auto& serial = res.get("cg.serial");
  const size_t row_bytes = (2 * base_params().nz_per_row + 1) * 16;

  TextTable t({"span (rows)", "~footprint", "norm.time", "worker L2 misses",
               "pauses (sync spin)", "uops total", "verified"});
  t.add_row({"serial", "-", "1.000",
             fmt_count(serial.cpu(CpuId::kCpu0, Event::kL2ReadMisses)), "0",
             fmt_count(serial.total(Event::kUopsRetired)), "yes"});
  for (size_t span : kSpans) {
    const auto& st = res.get(key(span));
    t.add_row({std::to_string(span), fmt_eng(span * row_bytes, 1) + "B",
               fmt(static_cast<double>(st.cycles) / serial.cycles, 3),
               fmt_count(st.cpu(CpuId::kCpu0, Event::kL2ReadMisses)),
               fmt_count(st.total(Event::kPausesExecuted)),
               fmt_count(st.total(Event::kUopsRetired)),
               st.verified ? "yes" : "NO"});
  }
  print_table("Ablation (paper 3.2): CG precomputation-span sweep", t);
  std::printf(
      "\nPaper shape check: shrinking the span raises synchronization\n"
      "frequency and with it the SPR overhead (the mechanism the paper\n"
      "blames for CG's SPR slowdown); growing it reduces sync cost until\n"
      "prefetch run-ahead stops helping.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
