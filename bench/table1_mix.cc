// Table 1: processor subunit utilization from the viewpoint of a specific
// thread — the dynamic instruction mix (percent of retired instructions
// using each execution subunit) and total instruction count for the
// serial version, one thread of the TLP version, and the prefetcher
// thread of the SPR version of each application.
//
// The paper generated these numbers by instrumenting the binaries with
// Pin; here the MixProfiler observes the simulator's retire stage.
#include <array>

#include "bench/bench_util.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "kernels/lu.h"
#include "kernels/matmul.h"
#include "profile/mix_profiler.h"

namespace smt::bench {
namespace {

using profile::MixProfiler;
using profile::Subunit;

struct Column {
  std::array<double, static_cast<int>(Subunit::kNumSubunits)> pct{};
  uint64_t total = 0;
};

/// Runs a workload with the profiler attached and extracts the column for
/// `view` (the instrumented thread). `key` names the run in the results
/// registry (and its report artifact).
template <typename W>
Column profile_workload(W& w, CpuId view, const std::string& key) {
  core::Machine m{core::MachineConfig{}};
  MixProfiler prof;
  m.core().set_retire_observer(&prof);
  w.setup(m);
  auto progs = w.programs();
  for (size_t i = 0; i < progs.size(); ++i) {
    m.load_program(static_cast<CpuId>(i), std::move(progs[i]));
  }
  m.run();
  const bool ok = w.verify(m);
  SMT_CHECK_MSG(ok, "workload verification failed");
  Results::instance().put(key, stats_from(m, key, ok));
  Column c;
  for (int s = 0; s < static_cast<int>(Subunit::kNumSubunits); ++s) {
    c.pct[s] = prof.pct(view, static_cast<Subunit>(s));
  }
  c.total = prof.total(view);
  return c;
}

struct AppColumns {
  Column serial, tlp, spr;
};

std::map<std::string, AppColumns>& apps() {
  static std::map<std::string, AppColumns> a;
  return a;
}

void register_all() {
  register_run("table1.mm", [] {
    AppColumns c;
    kernels::MatMulParams p;
    p.n = 64;
    p.tile = 16;
    {
      kernels::MatMulWorkload w(p);
      c.serial = profile_workload(w, CpuId::kCpu0, "table1.mm.serial");
    }
    p.mode = kernels::MmMode::kTlpCoarse;
    {
      kernels::MatMulWorkload w(p);
      c.tlp = profile_workload(w, CpuId::kCpu0, "table1.mm.tlp");
    }
    p.mode = kernels::MmMode::kTlpPfetch;
    p.halt_barriers = true;
    {
      kernels::MatMulWorkload w(p);
      c.spr = profile_workload(w, CpuId::kCpu1, "table1.mm.spr");
    }
    apps()["MM"] = c;
  });

  register_run("table1.lu", [] {
    AppColumns c;
    kernels::LuParams p;
    p.n = 64;
    p.tile = 16;
    {
      kernels::LuWorkload w(p);
      c.serial = profile_workload(w, CpuId::kCpu0, "table1.lu.serial");
    }
    p.mode = kernels::LuMode::kTlpCoarse;
    {
      kernels::LuWorkload w(p);
      c.tlp = profile_workload(w, CpuId::kCpu0, "table1.lu.tlp");
    }
    p.mode = kernels::LuMode::kTlpPfetch;
    {
      kernels::LuWorkload w(p);
      c.spr = profile_workload(w, CpuId::kCpu1, "table1.lu.spr");
    }
    apps()["LU"] = c;
  });

  register_run("table1.cg", [] {
    AppColumns c;
    kernels::CgParams p;
    p.n = 4096;
    p.nz_per_row = 8;
    p.iters = 4;
    {
      kernels::CgWorkload w(p);
      c.serial = profile_workload(w, CpuId::kCpu0, "table1.cg.serial");
    }
    p.mode = kernels::CgMode::kTlpCoarse;
    {
      kernels::CgWorkload w(p);
      c.tlp = profile_workload(w, CpuId::kCpu0, "table1.cg.tlp");
    }
    p.mode = kernels::CgMode::kTlpPfetch;
    {
      kernels::CgWorkload w(p);
      c.spr = profile_workload(w, CpuId::kCpu1, "table1.cg.spr");
    }
    apps()["CG"] = c;
  });

  register_run("table1.bt", [] {
    AppColumns c;
    kernels::BtParams p;
    p.lines = 32;
    p.cells = 16;
    {
      kernels::BtWorkload w(p);
      c.serial = profile_workload(w, CpuId::kCpu0, "table1.bt.serial");
    }
    p.mode = kernels::BtMode::kTlpCoarse;
    {
      kernels::BtWorkload w(p);
      c.tlp = profile_workload(w, CpuId::kCpu0, "table1.bt.tlp");
    }
    p.mode = kernels::BtMode::kTlpPfetch;
    {
      kernels::BtWorkload w(p);
      c.spr = profile_workload(w, CpuId::kCpu1, "table1.bt.spr");
    }
    apps()["BT"] = c;
  });
}

void print_all() {
  constexpr Subunit kRows[] = {Subunit::kAlus,   Subunit::kFpAdd,
                               Subunit::kFpMul,  Subunit::kFpDiv,
                               Subunit::kFpMove, Subunit::kLoad,
                               Subunit::kStore};
  TextTable t({"app", "EX. UNIT", "serial", "tlp", "spr"});
  for (const char* app : {"MM", "LU", "CG", "BT"}) {
    const AppColumns& c = apps().at(app);
    for (Subunit s : kRows) {
      const int i = static_cast<int>(s);
      if (c.serial.pct[i] < 0.005 && c.tlp.pct[i] < 0.005 &&
          c.spr.pct[i] < 0.005) {
        continue;
      }
      t.add_row({app, profile::name(s), fmt(c.serial.pct[i], 2) + "%",
                 fmt(c.tlp.pct[i], 2) + "%", fmt(c.spr.pct[i], 2) + "%"});
    }
    t.add_row({app, "Total instr.", fmt_eng(c.serial.total, 2),
               fmt_eng(c.tlp.total, 2), fmt_eng(c.spr.total, 2)});
  }
  print_table("Table 1: processor subunit utilization per thread", t);
  std::printf(
      "\nPaper shape check: MM ~25%% logical (ALU0-only) ops and ~39%% loads;\n"
      "LU the highest ALU share, and an SPR thread with a comparable total\n"
      "instruction count to the worker; CG load-heavy; BT the lowest ALU\n"
      "share and fp-dense. SPR threads execute no FP_ADD/FP_MUL at all.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
