// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every bench binary registers its experiment runs as google-benchmark
// benchmarks (one iteration each — the simulator is deterministic, so
// repetition adds nothing), records the measurements in a shared registry,
// and prints the corresponding paper table/figure as aligned text after
// the google-benchmark run completes.
//
// Environment knobs:
//   SMT_BENCH_FULL=1          also run the largest (paper-scale-ratio) sizes
//   SMT_BENCH_CSV=1           additionally dump each table as CSV
//   SMT_BENCH_REPORT_DIR=dir  write a RunReport JSON artifact per recorded
//                             run into `dir` (see core/run_report.h)
//   SMT_BENCH_TRACE_DIR=dir   enable time-resolved telemetry on every run:
//                             reports gain a `timeseries` section (schema
//                             smt-run-report/2) and a Chrome trace-event
//                             file *.trace.json — loadable in Perfetto —
//                             lands in `dir` per recorded run
//   SMT_BENCH_PROFILE=1       enable the per-PC attribution profiler on
//                             every run: reports gain a `profile` section
//                             (hotspots + port occupancy, schema
//                             smt-run-report/3; see tools/smt_annotate)
//   SMT_BENCH_INTERFERENCE=1  enable the SMT interference profiler on
//                             every run: reports gain an `interference`
//                             section (self- vs sibling-blamed stall
//                             cycles per resource, schema
//                             smt-run-report/4; see tools/smt_explain)
//   SMT_BENCH_PIPEVIEW=1      enable per-uop pipeline lifetime traces: a
//                             Kanata file *.kanata — loadable in the
//                             Konata viewer — lands beside each report
//   SMT_BENCH_PIPEVIEW_WINDOW=B:E  (or just E) bound the pipeview capture
//                             to cycles [B, E] (default 0:100000)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/table.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "perfmon/counters.h"
#include "trace/pipeview.h"
#include "trace/telemetry.h"

namespace smt::bench {

inline bool full_mode() {
  const char* v = std::getenv("SMT_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline bool csv_mode() {
  const char* v = std::getenv("SMT_BENCH_CSV");
  return v != nullptr && v[0] == '1';
}

inline bool profile_mode() {
  const char* v = std::getenv("SMT_BENCH_PROFILE");
  return v != nullptr && v[0] == '1';
}

inline bool interference_mode() {
  const char* v = std::getenv("SMT_BENCH_INTERFERENCE");
  return v != nullptr && v[0] == '1';
}

inline bool pipeview_mode() {
  const char* v = std::getenv("SMT_BENCH_PIPEVIEW");
  return v != nullptr && v[0] == '1';
}

/// Parses SMT_BENCH_PIPEVIEW_WINDOW ("begin:end" or just "end") into the
/// capture bounds; leaves the defaults untouched when unset or malformed.
inline void pipeview_window(Cycle* begin, Cycle* end) {
  const char* v = std::getenv("SMT_BENCH_PIPEVIEW_WINDOW");
  if (v == nullptr || v[0] == '\0') return;
  char* rest = nullptr;
  const unsigned long long a = std::strtoull(v, &rest, 10);
  if (rest == v) return;
  if (*rest == ':') {
    const char* second = rest + 1;
    const unsigned long long b = std::strtoull(second, &rest, 10);
    if (rest == second || b <= a) return;
    *begin = static_cast<Cycle>(a);
    *end = static_cast<Cycle>(b);
  } else if (*rest == '\0') {
    *end = static_cast<Cycle>(a);
  }
}

/// Directory for RunReport JSON artifacts, or "" when reporting is off.
inline const std::string& report_dir() {
  static const std::string dir = [] {
    const char* v = std::getenv("SMT_BENCH_REPORT_DIR");
    return std::string(v != nullptr ? v : "");
  }();
  return dir;
}

/// Directory for Chrome trace-event artifacts, or "" when tracing is off.
/// A nonempty value also enables process-global telemetry (see bench_main),
/// which upgrades the RunReport artifacts to schema smt-run-report/2.
inline const std::string& trace_dir() {
  static const std::string dir = [] {
    const char* v = std::getenv("SMT_BENCH_TRACE_DIR");
    return std::string(v != nullptr ? v : "");
  }();
  return dir;
}

/// Per-binary filename prefix for report artifacts (the basename of
/// argv[0], set by bench_main).
inline std::string& report_prefix() {
  static std::string prefix = "bench";
  return prefix;
}

/// Turns a registry key into a safe filename fragment. Collision-free:
/// distinct keys yield distinct fragments (keys with replaced characters
/// get a short hash of the raw key appended — see common/io.h — so e.g.
/// "a/b" and "a_b" no longer overwrite each other's artifacts).
inline std::string sanitize_key(const std::string& key) {
  return sanitize_artifact_key(key);
}

/// Builds RunStats directly from a machine a bench drove by hand (the
/// run_workload path fills these automatically).
inline core::RunStats stats_from(const core::Machine& m, std::string name,
                                 bool verified) {
  core::RunStats s;
  s.workload = std::move(name);
  s.cycles = m.cycles();
  s.events = m.counters().snapshot();
  s.verified = verified;
  s.config = m.config();
  s.telemetry = m.telemetry();
  if (s.telemetry != nullptr) s.telemetry->finalize(m.cycles());
  s.pc_profile = m.pc_profiler();
  m.finalize_interference();
  s.interference = m.interference();
  s.pipeview = m.pipeview();
  return s;
}

/// Registry of named measurements filled during the benchmark run and
/// consumed by the table printers afterwards.
///
/// Thread-safety contract: every accessor takes the registry mutex, so
/// runs may record results from multiple host threads (the sweep job
/// pool) concurrently. Keys are write-once — nothing is ever erased and
/// re-putting a key while another thread holds a reference from get() is
/// outside the contract — so the std::map node stability makes the
/// references returned by get() safe to hold after the lock is released.
class Results {
 public:
  static Results& instance() {
    static Results r;
    return r;
  }

  void put(const std::string& key, core::RunStats stats) {
    if (!report_dir().empty()) {
      const std::string path = report_dir() + "/" + report_prefix() + "." +
                               sanitize_key(key) + ".json";
      if (!core::RunReport::from(stats).write_json_file(path)) {
        std::fprintf(stderr, "warning: could not write report %s\n",
                     path.c_str());
      }
    }
    if (!trace_dir().empty() && stats.telemetry != nullptr) {
      const std::string path = trace_dir() + "/" + report_prefix() + "." +
                               sanitize_key(key) + ".trace.json";
      if (!trace::write_chrome_trace_file(*stats.telemetry, path)) {
        std::fprintf(stderr, "warning: could not write trace %s\n",
                     path.c_str());
      }
    }
    // Kanata pipeline traces land beside the reports (or the traces when
    // only tracing is on).
    const std::string& kanata_dir =
        !report_dir().empty() ? report_dir() : trace_dir();
    if (!kanata_dir.empty() && stats.pipeview != nullptr) {
      const std::string path = kanata_dir + "/" + report_prefix() + "." +
                               sanitize_key(key) + ".kanata";
      if (!trace::write_kanata_file(*stats.pipeview, path)) {
        std::fprintf(stderr, "warning: could not write pipeview %s\n",
                     path.c_str());
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    stats_[key] = std::move(stats);
  }

  const core::RunStats& get(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = stats_.find(key);
    SMT_CHECK_MSG(it != stats_.end(), key.c_str());
    return it->second;
  }

  bool has(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_.count(key) > 0;
  }

  void put_value(const std::string& key, double v) {
    const std::lock_guard<std::mutex> lock(mu_);
    values_[key] = v;
  }
  double value(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(key);
    SMT_CHECK_MSG(it != values_.end(), key.c_str());
    return it->second;
  }
  bool has_value(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return values_.count(key) > 0;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, core::RunStats> stats_;
  std::map<std::string, double> values_;
};

/// Registers a single-iteration benchmark that executes `fn` and reports
/// simulated cycles as the benchmark's "items".
inline void register_run(const std::string& name, std::function<void()> fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn = std::move(fn)](benchmark::State& state) {
                                 for (auto _ : state) fn();
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Prints a table (and optionally CSV) under a titled banner.
inline void print_table(const std::string& title, const TextTable& t) {
  std::printf("\n=== %s ===\n%s", title.c_str(), t.to_string().c_str());
  if (csv_mode()) std::printf("\n[csv]\n%s", t.to_csv().c_str());
  std::fflush(stdout);
}

/// Standard main body: initialize, run registered benchmarks, then call
/// the binary's printer.
inline int bench_main(int argc, char** argv, std::function<void()> register_all,
                      std::function<void()> print_all) {
  if (argc > 0 && argv[0] != nullptr) {
    std::string base = argv[0];
    const size_t slash = base.find_last_of('/');
    if (slash != std::string::npos) base = base.substr(slash + 1);
    if (!base.empty()) report_prefix() = base;
  }
  if (!trace_dir().empty() || profile_mode() || interference_mode() ||
      pipeview_mode()) {
    trace::TelemetryConfig cfg;
    cfg.enabled = !trace_dir().empty();
    cfg.pc_profile = profile_mode();
    cfg.interference = interference_mode();
    cfg.pipeview = pipeview_mode();
    pipeview_window(&cfg.pipeview_begin, &cfg.pipeview_end);
    trace::set_global_telemetry(cfg);
  }
  benchmark::Initialize(&argc, argv);
  register_all();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_all();
  return 0;
}

}  // namespace smt::bench
