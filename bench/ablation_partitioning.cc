// Ablation: static vs. (idealized) dynamic partitioning of the buffering
// structures.
//
// The paper's related-work section cites Tuck & Tullsen's observation that
// the Pentium 4's *static* partitioning of the uop queue / ROB / load
// queue / store buffer limits identical-thread codes while protecting
// dissimilar mixes. This ablation re-runs the TLP kernels on the default
// (statically partitioned) machine and on a counterfactual machine whose
// structures are shared dynamically, quantifying how much of the paper's
// "no TLP speedup" verdict is due to the partitioning itself.
#include "bench/bench_util.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "kernels/lu.h"
#include "kernels/matmul.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

core::MachineConfig machine(bool static_part) {
  core::MachineConfig cfg;
  cfg.core.static_partitioning = static_part;
  return cfg;
}

std::string key(const std::string& app, const std::string& variant) {
  return app + "." + variant;
}

template <typename Workload, typename Params>
void register_app(const std::string& app, Params serial_params,
                  Params tlp_params) {
  register_run(key(app, "serial"), [app, serial_params] {
    Workload w(serial_params);
    Results::instance().put(key(app, "serial"),
                            core::run_workload(machine(true), w));
  });
  register_run(key(app, "tlp.static"), [app, tlp_params] {
    Workload w(tlp_params);
    Results::instance().put(key(app, "tlp.static"),
                            core::run_workload(machine(true), w));
  });
  register_run(key(app, "tlp.dynamic"), [app, tlp_params] {
    Workload w(tlp_params);
    Results::instance().put(key(app, "tlp.dynamic"),
                            core::run_workload(machine(false), w));
  });
}

void register_all() {
  {
    kernels::MatMulParams s;
    s.n = 128;
    s.tile = 16;
    kernels::MatMulParams t = s;
    t.mode = kernels::MmMode::kTlpCoarse;
    register_app<kernels::MatMulWorkload>("mm", s, t);
  }
  {
    kernels::LuParams s;
    s.n = 128;
    s.tile = 16;
    kernels::LuParams t = s;
    t.mode = kernels::LuMode::kTlpCoarse;
    register_app<kernels::LuWorkload>("lu", s, t);
  }
  {
    kernels::CgParams s;
    s.n = 8192;
    s.nz_per_row = 8;
    s.iters = 4;
    kernels::CgParams t = s;
    t.mode = kernels::CgMode::kTlpCoarse;
    register_app<kernels::CgWorkload>("cg", s, t);
  }
  {
    kernels::BtParams s;
    s.lines = 48;
    s.cells = 24;
    kernels::BtParams t = s;
    t.mode = kernels::BtMode::kTlpCoarse;
    register_app<kernels::BtWorkload>("bt", s, t);
  }
}

void print_all() {
  auto& res = Results::instance();
  TextTable t({"app", "serial cycles", "tlp static (norm)",
               "tlp dynamic (norm)", "partitioning cost"});
  for (const char* app : {"mm", "lu", "cg", "bt"}) {
    const auto& s = res.get(key(app, "serial"));
    const auto& st = res.get(key(app, "tlp.static"));
    const auto& dy = res.get(key(app, "tlp.dynamic"));
    t.add_row({app, fmt_count(s.cycles),
               fmt(static_cast<double>(st.cycles) / s.cycles, 3),
               fmt(static_cast<double>(dy.cycles) / s.cycles, 3),
               fmt(100.0 * (static_cast<double>(st.cycles) / dy.cycles - 1.0),
                   1) +
                   "%"});
  }
  print_table(
      "Ablation: static vs dynamic partitioning (TLP-coarse kernels)", t);
  std::printf(
      "\nThe 'partitioning cost' column is how much slower the statically\n"
      "partitioned machine runs the same two-thread kernel than an\n"
      "idealized dynamically-shared one — the structural share of the\n"
      "paper's 'no TLP speedup' result (the rest is port/cache/bus\n"
      "contention, which both machines have).\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
