// Figure 2: slowdown factors from the co-execution of instruction-stream
// pairs, one per logical CPU, at matched ILP levels.
//
//   panel (a) floating-point x floating-point pairs
//   panel (b) integer x integer pairs
//   panel (c) floating-point x integer arithmetic pairs
//
// The slowdown factor follows the paper: the ratio of the victim stream's
// CPI when co-running to its single-threaded CPI, expressed as the
// percentage increase (0% = unaffected, 100% = doubled CPI ~ serialized).
#include "bench/bench_util.h"
#include "streams/stream_gen.h"
#include "streams/stream_runner.h"

namespace smt::bench {
namespace {

using streams::IlpLevel;
using streams::StreamKind;
using streams::StreamSpec;

constexpr StreamKind kFpSet[] = {StreamKind::kFAdd,  StreamKind::kFSub,
                                 StreamKind::kFMul,  StreamKind::kFDiv,
                                 StreamKind::kFLoad, StreamKind::kFStore};
constexpr StreamKind kIntSet[] = {StreamKind::kIAdd,  StreamKind::kISub,
                                  StreamKind::kIMul,  StreamKind::kIDiv,
                                  StreamKind::kILoad, StreamKind::kIStore};
constexpr StreamKind kFpArith[] = {StreamKind::kFAdd, StreamKind::kFMul,
                                   StreamKind::kFDiv};
constexpr StreamKind kIntArith[] = {StreamKind::kIAdd, StreamKind::kIMul,
                                    StreamKind::kIDiv};

constexpr IlpLevel kIlp[] = {IlpLevel::kMin, IlpLevel::kMed, IlpLevel::kMax};

/// Long-latency streams get fewer operations so the whole figure stays
/// quick; the CPI measurement is rate-based and insensitive to length.
uint64_t ops_for(StreamKind k) {
  switch (k) {
    case StreamKind::kFDiv: return 6'000;
    case StreamKind::kIDiv: return 4'000;
    case StreamKind::kIMul: return 40'000;
    default: return 120'000;
  }
}

StreamSpec make(StreamKind k, IlpLevel l, uint64_t scale = 1) {
  StreamSpec s;
  s.kind = k;
  s.ilp = l;
  s.ops = ops_for(k) * scale;
  return s;
}

std::string skey(StreamKind v, IlpLevel l) {
  return std::string("single.") + streams::name(v) + "." + streams::name(l);
}
std::string pkey(StreamKind v, StreamKind a, IlpLevel l) {
  return std::string(streams::name(v)) + "+" + streams::name(a) + "." +
         streams::name(l);
}

template <size_t NV, size_t NA>
void register_panel(const StreamKind (&victims)[NV],
                    const StreamKind (&aggressors)[NA]) {
  auto& res = Results::instance();
  for (StreamKind v : victims) {
    for (IlpLevel l : kIlp) {
      if (!res.has_value(skey(v, l))) {
        res.put_value(skey(v, l), -1.0);  // reserve; filled by the run
        register_run(skey(v, l), [v, l] {
          const auto m = streams::run_single(make(v, l));
          Results::instance().put_value(skey(v, l), m.cpi[0]);
          Results::instance().put(skey(v, l), m.stats);
        });
      }
      for (StreamKind a : aggressors) {
        const std::string k = pkey(v, a, l);
        if (res.has_value(k)) continue;
        res.put_value(k, -1.0);
        register_run(k, [v, a, l, k] {
          // The aggressor runs 4x longer so the victim's whole execution is
          // overlapped (mirrors the paper's continuous co-execution).
          const auto m = streams::run_pair(make(v, l), make(a, l, 4));
          Results::instance().put_value(k, m.cpi[0]);
          Results::instance().put(k, m.stats);
        });
      }
    }
  }
}

template <size_t NV, size_t NA>
void print_panel(const char* title, const StreamKind (&victims)[NV],
                 const StreamKind (&aggressors)[NA]) {
  auto& res = Results::instance();
  std::vector<std::string> header{"victim \\ with"};
  for (StreamKind a : aggressors) {
    header.push_back(streams::name(a));
  }
  TextTable t(header);
  for (StreamKind v : victims) {
    for (IlpLevel l : kIlp) {
      std::vector<std::string> row{std::string(streams::name(v)) + "." +
                                   streams::name(l)};
      const double base = res.value(skey(v, l));
      for (StreamKind a : aggressors) {
        const double pair = res.value(pkey(v, a, l));
        row.push_back(fmt(100.0 * (pair / base - 1.0), 0) + "%");
      }
      t.add_row(std::move(row));
    }
  }
  print_table(title, t);
}

void register_all() {
  register_panel(kFpSet, kFpSet);
  register_panel(kIntSet, kIntSet);
  register_panel(kFpArith, kIntArith);
  register_panel(kIntArith, kFpArith);
}

void print_all() {
  print_panel("Figure 2(a): slowdown of fp streams co-executing with fp streams",
              kFpSet, kFpSet);
  print_panel("Figure 2(b): slowdown of int streams co-executing with int streams",
              kIntSet, kIntSet);
  print_panel("Figure 2(c): slowdown of fp arithmetic co-executing with int arithmetic",
              kFpArith, kIntArith);
  print_panel("Figure 2(c'): slowdown of int arithmetic co-executing with fp arithmetic",
              kIntArith, kFpArith);
  std::printf(
      "\nPaper shape check: fdiv-fdiv 120-140%%; fadd/fsub up to ~100%% vs fp\n"
      "streams; min-ILP fadd/fmul/fdiv pairs coexist near 0%% (except\n"
      "fdiv-fdiv); iadd-iadd ~100%% (serialized); imul/idiv nearly\n"
      "unaffected.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
