// Figure 4: the LU decomposition kernel — execution time, L2 misses,
// resource (store-buffer) stall cycles and retired uops for the serial,
// tlp-coarse and tlp-pfetch versions across three matrix sizes.
#include "bench/bench_util.h"
#include "kernels/lu.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

using core::RunStats;
using kernels::LuMode;
using kernels::LuParams;
using kernels::LuWorkload;
using perfmon::Event;

constexpr LuMode kModes[] = {LuMode::kSerial, LuMode::kTlpCoarse,
                             LuMode::kTlpPfetch};

std::vector<size_t> sizes() {
  std::vector<size_t> s{64, 128};
  if (full_mode()) s.push_back(256);
  return s;
}

std::string key(LuMode m, size_t n) {
  return std::string("lu.") + kernels::name(m) + ".n" + std::to_string(n);
}

void register_all() {
  for (size_t n : sizes()) {
    for (LuMode mode : kModes) {
      register_run(key(mode, n), [mode, n] {
        LuParams p;
        p.n = n;
        p.tile = 16;
        p.mode = mode;
        LuWorkload w(p);
        Results::instance().put(key(mode, n),
                                core::run_workload(core::MachineConfig{}, w));
      });
    }
  }
}

void print_all() {
  auto& res = Results::instance();
  TextTable t({"version", "n", "cycles", "norm.time", "L2 misses",
               "SB stall cyc", "uops retired", "verified"});
  for (size_t n : sizes()) {
    const uint64_t serial = res.get(key(LuMode::kSerial, n)).cycles;
    for (LuMode mode : kModes) {
      const RunStats& st = res.get(key(mode, n));
      const uint64_t l2 = mode == LuMode::kTlpPfetch
                              ? st.cpu(CpuId::kCpu0, Event::kL2ReadMisses)
                              : st.total(Event::kL2ReadMisses);
      t.add_row({kernels::name(mode), std::to_string(n),
                 fmt_count(st.cycles),
                 fmt(static_cast<double>(st.cycles) / serial, 3),
                 fmt_count(l2),
                 fmt_count(st.total(Event::kStoreBufferStallCycles)),
                 fmt_count(st.total(Event::kUopsRetired)),
                 st.verified ? "yes" : "NO"});
    }
  }
  print_table("Figure 4: LU decomposition kernel", t);
  std::printf(
      "\nPaper shape check: tlp-coarse is the fastest, with a slight speedup\n"
      "(0.5-8.9%%) but 1-2 orders of magnitude more stall cycles; tlp-pfetch\n"
      "cuts the worker's L2 misses ~98%% yet runs 1.61-1.96x slower because\n"
      "the prefetcher retires about as many uops as the worker.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
