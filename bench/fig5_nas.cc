// Figure 5: the CG and BT NAS kernels — normalized execution time, L2
// misses, resource (store-buffer) stall cycles and retired uops for the
// serial, tlp-coarse and tlp-pfetch versions (CG additionally has the
// tlp-pfetch+work hybrid).
#include "bench/bench_util.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

using core::RunStats;
using kernels::BtMode;
using kernels::BtParams;
using kernels::BtWorkload;
using kernels::CgMode;
using kernels::CgParams;
using kernels::CgWorkload;
using perfmon::Event;

constexpr CgMode kCgModes[] = {CgMode::kSerial, CgMode::kTlpCoarse,
                               CgMode::kTlpPfetch, CgMode::kTlpPfetchWork};
constexpr BtMode kBtModes[] = {BtMode::kSerial, BtMode::kTlpCoarse,
                               BtMode::kTlpPfetch};

CgParams cg_params(CgMode m) {
  CgParams p;
  // Working set ~5 MB >> L2, like Class A's relation to the Xeon caches.
  p.n = full_mode() ? 16384 : 8192;
  p.nz_per_row = 8;
  p.iters = full_mode() ? 8 : 6;
  p.mode = m;
  return p;
}

BtParams bt_params(BtMode m) {
  BtParams p;
  p.lines = full_mode() ? 96 : 64;
  p.cells = 32;
  p.mode = m;
  return p;
}

std::string cg_key(CgMode m) { return std::string("cg.") + kernels::name(m); }
std::string bt_key(BtMode m) { return std::string("bt.") + kernels::name(m); }

void register_all() {
  for (CgMode m : kCgModes) {
    register_run(cg_key(m), [m] {
      CgWorkload w(cg_params(m));
      Results::instance().put(cg_key(m),
                              core::run_workload(core::MachineConfig{}, w));
    });
  }
  for (BtMode m : kBtModes) {
    register_run(bt_key(m), [m] {
      BtWorkload w(bt_params(m));
      Results::instance().put(bt_key(m),
                              core::run_workload(core::MachineConfig{}, w));
    });
  }
}

void add_row(TextTable& t, const char* app, const char* mode,
             const RunStats& st, uint64_t serial_cycles, bool worker_only) {
  const uint64_t l2 = worker_only
                          ? st.cpu(CpuId::kCpu0, Event::kL2ReadMisses)
                          : st.total(Event::kL2ReadMisses);
  t.add_row({app, mode, fmt_count(st.cycles),
             fmt(static_cast<double>(st.cycles) / serial_cycles, 3),
             fmt_count(l2),
             fmt_count(st.total(Event::kStoreBufferStallCycles)),
             fmt_count(st.total(Event::kUopsRetired)),
             st.verified ? "yes" : "NO"});
}

void print_all() {
  auto& res = Results::instance();
  TextTable t({"app", "version", "cycles", "norm.time", "L2 misses",
               "SB stall cyc", "uops retired", "verified"});
  const uint64_t cg_serial = res.get(cg_key(CgMode::kSerial)).cycles;
  for (CgMode m : kCgModes) {
    add_row(t, "CG", kernels::name(m), res.get(cg_key(m)), cg_serial,
            m == CgMode::kTlpPfetch || m == CgMode::kTlpPfetchWork);
  }
  const uint64_t bt_serial = res.get(bt_key(BtMode::kSerial)).cycles;
  for (BtMode m : kBtModes) {
    add_row(t, "BT", kernels::name(m), res.get(bt_key(m)), bt_serial,
            m == BtMode::kTlpPfetch);
  }
  print_table("Figure 5: CG and BT NAS kernels", t);
  std::printf(
      "\nPaper shape check: CG's serial version beats all dual-threaded ones\n"
      "(coarse 1.03x, pfetch 1.82x, hybrid 1.91x slower; the prefetch loss\n"
      "comes with a large uop increase, not stall cycles). BT is the one\n"
      "TLP success: coarse ~6%% faster; pfetch ~1%% slower despite a large\n"
      "worker L2-miss reduction.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
