// Ablation for paper §3.1: what an idle sibling thread costs the working
// thread, per spin-wait flavour.
//
// One context executes a fixed floating-point workload; the other waits at
// a barrier for the whole time, either spinning tightly, spinning with
// pause, or sleeping via halt until the worker's IPI. The paper's claims:
// tight spinning consumes shared resources aggressively and machine-clears
// on exit; pause de-pipelines the loop; halting releases even the
// statically partitioned structures (letting the worker run
// single-threaded-fast) at a transition cost of thousands of cycles.
#include "bench/bench_util.h"
#include "isa/asm_builder.h"
#include "perfmon/events.h"
#include "sync/primitives.h"

namespace smt::bench {
namespace {

using isa::AsmBuilder;
using isa::FReg;
using isa::IReg;
using perfmon::Event;

enum class WaitKind { kNone, kTight, kPause, kHalt };

const char* name(WaitKind k) {
  switch (k) {
    case WaitKind::kNone: return "no sibling";
    case WaitKind::kTight: return "tight spin";
    case WaitKind::kPause: return "pause spin";
    case WaitKind::kHalt: return "halt+IPI";
  }
  return "?";
}

constexpr int kWork = 240'000;  // int ALU operations on six chains

struct Outcome {
  Cycle worker_cycles = 0;
  uint64_t waiter_uops = 0;
  uint64_t clears = 0;
  Cycle waiter_halted = 0;
};

Outcome run_experiment(WaitKind kind) {
  core::Machine m{core::MachineConfig{}};
  mem::MemoryLayout lay(0x8000);
  sync::TwoThreadBarrier bar(lay, "ab");

  // Worker: a dispatch-hungry high-IPC integer workload (the regime of the
  // paper's optimized kernels, where an active sibling costs real slots),
  // then barrier arrival (waking the sibling when it sleeps).
  AsmBuilder w("worker");
  bar.emit_init(w, IReg::R15);
  for (int c = 0; c < 6; ++c) w.imovi(isa::ireg_n(c), 0);
  w.imovi(IReg::R8, 1);
  w.imovi(IReg::R0, 0);
  isa::Label loop = w.here();
  for (int i = 0; i < 24; ++i) {
    const IReg t = isa::ireg_n(i % 6);
    w.iadd(t, t, IReg::R8);
  }
  w.iaddi(IReg::R0, IReg::R0, 24);
  w.bri(isa::BrCond::kLt, IReg::R0, kWork, loop);
  if (kind == WaitKind::kHalt) {
    bar.emit_wait_waker(w, 0, IReg::R15, IReg::R14, sync::SpinKind::kPause);
  } else if (kind != WaitKind::kNone) {
    bar.emit_wait(w, 0, IReg::R15, IReg::R14, sync::SpinKind::kPause);
  }
  w.exit();
  m.load_program(CpuId::kCpu0, w.take());

  if (kind != WaitKind::kNone) {
    AsmBuilder s("waiter");
    bar.emit_init(s, IReg::R15);
    switch (kind) {
      case WaitKind::kTight:
        bar.emit_wait(s, 1, IReg::R15, IReg::R14, sync::SpinKind::kTight);
        break;
      case WaitKind::kPause:
        bar.emit_wait(s, 1, IReg::R15, IReg::R14, sync::SpinKind::kPause);
        break;
      default:
        bar.emit_wait_sleeper(s, 1, IReg::R15, IReg::R14);
        break;
    }
    s.exit();
    m.load_program(CpuId::kCpu1, s.take());
  }

  m.run();
  Results::instance().put(std::string("sync.") + name(kind),
                          stats_from(m, std::string("sync.") + name(kind),
                                     /*verified=*/true));
  Outcome o;
  o.worker_cycles = m.counters().get(CpuId::kCpu0, Event::kCyclesActive);
  o.waiter_uops = m.counters().get(CpuId::kCpu1, Event::kUopsRetired);
  o.clears = m.counters().total(Event::kMachineClears);
  o.waiter_halted = m.counters().get(CpuId::kCpu1, Event::kCyclesHalted);
  return o;
}

std::map<WaitKind, Outcome>& results() {
  static std::map<WaitKind, Outcome> r;
  return r;
}

void register_all() {
  for (WaitKind k : {WaitKind::kNone, WaitKind::kTight, WaitKind::kPause,
                     WaitKind::kHalt}) {
    register_run(std::string("sync.") + name(k),
                 [k] { results()[k] = run_experiment(k); });
  }
}

void print_all() {
  const Outcome base = results().at(WaitKind::kNone);
  TextTable t({"sibling wait", "worker cycles", "slowdown vs alone",
               "waiter uops", "machine clears", "waiter halted cyc"});
  for (WaitKind k : {WaitKind::kNone, WaitKind::kTight, WaitKind::kPause,
                     WaitKind::kHalt}) {
    const Outcome& o = results().at(k);
    t.add_row({name(k), fmt_count(o.worker_cycles),
               fmt(static_cast<double>(o.worker_cycles) / base.worker_cycles,
                   3),
               fmt_count(o.waiter_uops), fmt_count(o.clears),
               fmt_count(o.waiter_halted)});
  }
  print_table("Ablation (paper 3.1): cost of an idle sibling per wait flavour",
              t);
  std::printf(
      "\nPaper shape check: tight spinning hurts the worker most and incurs\n"
      "machine clears on exit; pause reduces the waiter's uop consumption\n"
      "drastically; halting releases the partitioned resources so the\n"
      "worker runs at (nearly) stand-alone speed, paying the transition\n"
      "cost in its own wait at the end.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
