// Extension study: multiprogrammed kernel pairs.
//
// The paper notes (§4.2) that mixed integer/fp streams "are more frequent
// in multiprogrammed workloads, rather than multithreaded scientific
// codes". This bench runs that scenario at application granularity: two
// *serial kernels*, one per logical CPU with disjoint address-space
// windows, measuring each one's slowdown relative to running alone.
// Kernels with complementary resource profiles (fp-dense BT beside the
// load-heavy CG) should co-exist better than two instances of the same
// kernel fighting over identical units — the application-level analogue of
// Figure 2.
#include <memory>

#include "bench/bench_util.h"
#include "core/machine.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "kernels/lu.h"
#include "kernels/matmul.h"
#include "perfmon/events.h"

namespace smt::bench {
namespace {

using perfmon::Event;

constexpr Addr kWindowBytes = 64ull << 20;  // address-space window per app

/// Builds one serial kernel instance living in window `slot` of the
/// machine's address space; returns its program and keeps the workload
/// alive for verification.
struct App {
  std::unique_ptr<core::Workload> workload;
  isa::Program program;
};

App make_app(const std::string& name, core::Machine& m, int slot) {
  const Addr base = 0x10000 + slot * kWindowBytes;
  const Addr sync = 0x8000 + slot * kWindowBytes;
  std::unique_ptr<core::Workload> w;
  if (name == "mm") {
    kernels::MatMulParams p;
    p.n = 64;
    p.tile = 16;
    p.mem_base = base;
    p.sync_base = sync;
    w = std::make_unique<kernels::MatMulWorkload>(p);
  } else if (name == "lu") {
    kernels::LuParams p;
    p.n = 128;
    p.tile = 16;
    p.mem_base = base;
    p.sync_base = sync;
    w = std::make_unique<kernels::LuWorkload>(p);
  } else if (name == "cg") {
    kernels::CgParams p;
    p.n = 4096;
    p.nz_per_row = 8;
    p.iters = 3;
    p.mem_base = base;
    p.sync_base = sync;
    w = std::make_unique<kernels::CgWorkload>(p);
  } else {
    SMT_CHECK(name == "bt");
    kernels::BtParams p;
    p.lines = 24;
    p.cells = 24;
    p.mem_base = base;
    p.sync_base = sync;
    w = std::make_unique<kernels::BtWorkload>(p);
  }
  w->setup(m);
  App app;
  app.program = w->programs().at(0);
  app.workload = std::move(w);
  return app;
}

const char* kApps[] = {"mm", "lu", "cg", "bt"};

std::string solo_key(const std::string& a) { return "solo." + a; }
std::string pair_key(const std::string& a, const std::string& b) {
  return a + "+" + b;
}

void register_all() {
  auto& res = Results::instance();
  for (const char* a : kApps) {
    register_run(solo_key(a), [a] {
      core::Machine m{core::MachineConfig{}};
      App app = make_app(a, m, 0);
      m.load_program(CpuId::kCpu0, app.program);
      m.run();
      const bool ok = app.workload->verify(m);
      SMT_CHECK(ok);
      Results::instance().put(solo_key(a), stats_from(m, solo_key(a), ok));
      Results::instance().put_value(
          solo_key(a),
          static_cast<double>(
              m.counters().get(CpuId::kCpu0, Event::kCyclesActive)) /
              m.counters().get(CpuId::kCpu0, Event::kInstrRetired));
    });
  }
  for (const char* a : kApps) {
    for (const char* b : kApps) {
      const std::string k = pair_key(a, b);
      if (res.has_value(k)) continue;
      res.put_value(k, -1.0);
      register_run(k, [a, b, k] {
        core::Machine m{core::MachineConfig{}};
        App app_a = make_app(a, m, 0);
        App app_b = make_app(b, m, 1);
        m.load_program(CpuId::kCpu0, app_a.program);
        m.load_program(CpuId::kCpu1, app_b.program);
        // Measure over the fully-overlapped window (first finisher), like
        // the stream pair experiments; CPI of app A is the victim metric.
        m.run_until_any_done();
        Results::instance().put(k, stats_from(m, k, /*verified=*/true));
        Results::instance().put_value(
            k, static_cast<double>(
                   m.counters().get(CpuId::kCpu0, Event::kCyclesActive)) /
                   m.counters().get(CpuId::kCpu0, Event::kInstrRetired));
      });
    }
  }
}

void print_all() {
  auto& res = Results::instance();
  std::vector<std::string> header{"app \\ beside"};
  for (const char* b : kApps) header.push_back(b);
  header.push_back("solo CPI");
  TextTable t(header);
  for (const char* a : kApps) {
    std::vector<std::string> row{a};
    const double solo = res.value(solo_key(a));
    for (const char* b : kApps) {
      const double cpi = res.value(pair_key(a, b));
      row.push_back(fmt(100.0 * (cpi / solo - 1.0), 0) + "%");
    }
    row.push_back(fmt(solo, 2));
    t.add_row(std::move(row));
  }
  print_table("Extension: multiprogrammed kernel pairs (CPI slowdown of the row app)",
              t);
  std::printf(
      "\nReading: each cell is how much slower the row application runs\n"
      "when the column application occupies the sibling hardware context\n"
      "(both serial, disjoint address windows). Complementary mixes (fp-\n"
      "dense beside load-heavy) interfere less than identical pairs — the\n"
      "application-level analogue of Figure 2.\n");
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  return smt::bench::bench_main(argc, argv, smt::bench::register_all,
                                smt::bench::print_all);
}
