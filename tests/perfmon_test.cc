// Tests for the perfmon counter layer: Snapshot interval semantics,
// derived-metric guards, and the human-readable dump.
#include <gtest/gtest.h>

#include <string>

#include "perfmon/counters.h"
#include "perfmon/events.h"

namespace smt {
namespace {

using perfmon::Event;
using perfmon::PerfCounters;
using perfmon::Snapshot;

constexpr CpuId kC0 = CpuId::kCpu0;
constexpr CpuId kC1 = CpuId::kCpu1;

// ---------------------------------------------------------------------------
// Snapshot subtraction = events in an interval
// ---------------------------------------------------------------------------

TEST(Snapshot, SubtractionYieldsIntervalDeltas) {
  PerfCounters ctr;
  ctr.add(kC0, Event::kInstrRetired, 100);
  ctr.add(kC1, Event::kL2ReadMisses, 7);
  const Snapshot before = ctr.snapshot();

  ctr.add(kC0, Event::kInstrRetired, 25);
  ctr.add(kC0, Event::kCyclesActive, 60);
  ctr.add(kC1, Event::kL2ReadMisses, 3);
  const Snapshot after = ctr.snapshot();

  const Snapshot delta = after - before;
  EXPECT_EQ(delta.get(kC0, Event::kInstrRetired), 25u);
  EXPECT_EQ(delta.get(kC0, Event::kCyclesActive), 60u);
  EXPECT_EQ(delta.get(kC1, Event::kL2ReadMisses), 3u);
  // Events untouched in the interval read zero even though their running
  // totals are nonzero.
  EXPECT_EQ(delta.get(kC1, Event::kInstrRetired), 0u);
  EXPECT_EQ(delta.total(Event::kInstrRetired), 25u);
}

TEST(Snapshot, EmptyIntervalIsAllZero) {
  PerfCounters ctr;
  ctr.add(kC0, Event::kUopsRetired, 12);
  ctr.add(kC1, Event::kCyclesHalted, 99);
  const Snapshot s = ctr.snapshot();

  const Snapshot delta = s - s;
  for (int e = 0; e < perfmon::kNumEventValues; ++e) {
    const Event ev = static_cast<Event>(e);
    EXPECT_EQ(delta.get(kC0, ev), 0u) << perfmon::name(ev);
    EXPECT_EQ(delta.get(kC1, ev), 0u) << perfmon::name(ev);
  }
}

TEST(Snapshot, DefaultConstructedIsZeroAndSubtractable) {
  PerfCounters ctr;
  ctr.add(kC0, Event::kLoadsRetired, 4);
  const Snapshot delta = ctr.snapshot() - Snapshot{};
  EXPECT_EQ(delta.get(kC0, Event::kLoadsRetired), 4u);
  EXPECT_EQ(delta.total(Event::kStoresRetired), 0u);
}

TEST(SnapshotDeathTest, SwappedOperandsFailLoudly) {
  // Counters are monotone, so earlier - later is always a caller bug
  // (begin/end swapped in interval math). The subtraction must abort
  // rather than silently wrap to a huge unsigned delta.
  PerfCounters ctr;
  const Snapshot before = ctr.snapshot();
  ctr.add(kC0, Event::kInstrRetired, 1);
  const Snapshot after = ctr.snapshot();
  EXPECT_DEATH(before - after, "underflow");
}

// ---------------------------------------------------------------------------
// cpi() never divides by zero
// ---------------------------------------------------------------------------

TEST(PerfCounters, CpiIsZeroWithoutRetiredInstructions) {
  PerfCounters ctr;
  EXPECT_EQ(ctr.cpi(kC0), 0.0);
  // Active cycles but nothing retired (a context spinning in pauses).
  ctr.add(kC0, Event::kCyclesActive, 1000);
  EXPECT_EQ(ctr.cpi(kC0), 0.0);
}

TEST(PerfCounters, CpiIsZeroWithoutActiveCycles) {
  PerfCounters ctr;
  ctr.add(kC0, Event::kInstrRetired, 10);
  EXPECT_EQ(ctr.cpi(kC0), 0.0);
}

TEST(PerfCounters, CpiIsActiveOverRetired) {
  PerfCounters ctr;
  ctr.add(kC1, Event::kCyclesActive, 300);
  ctr.add(kC1, Event::kInstrRetired, 100);
  EXPECT_DOUBLE_EQ(ctr.cpi(kC1), 3.0);
  EXPECT_EQ(ctr.cpi(kC0), 0.0);
}

// ---------------------------------------------------------------------------
// to_string dumps only nonzero rows
// ---------------------------------------------------------------------------

TEST(PerfCounters, ToStringSkipsAllZeroRows) {
  PerfCounters ctr;
  EXPECT_EQ(ctr.to_string(), "");

  ctr.add(kC0, Event::kInstrRetired, 42);
  ctr.add(kC1, Event::kL2Misses, 5);
  const std::string dump = ctr.to_string();
  EXPECT_NE(dump.find("instr_retired"), std::string::npos);
  EXPECT_NE(dump.find("l2_misses"), std::string::npos);
  EXPECT_NE(dump.find("42"), std::string::npos);
  // Rows that are zero on both contexts do not appear.
  EXPECT_EQ(dump.find("machine_clears"), std::string::npos);
  EXPECT_EQ(dump.find("ipis_sent"), std::string::npos);
}

TEST(PerfCounters, ToStringShowsRowWhenEitherCpuIsNonzero) {
  PerfCounters ctr;
  ctr.add(kC1, Event::kHaltTransitions, 1);
  const std::string dump = ctr.to_string();
  EXPECT_NE(dump.find("halt_transitions"), std::string::npos);
  EXPECT_NE(dump.find("cpu0=0"), std::string::npos);
}

}  // namespace
}  // namespace smt
