// Tests for the SMT interference attribution profiler and its hard
// guarantees: attaching it never perturbs any perf counter, per stall
// reason the self- plus sibling-blamed cycles reproduce the existing
// stall counters bit-exactly, the port-conflict decomposition is
// internally consistent and cap-bounded, and every attribution is
// bit-identical between event-skip fast-forward and single-cycle
// stepping.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/json.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "cpu/core.h"
#include "kernels/matmul.h"
#include "perfmon/counters.h"
#include "perfmon/events.h"
#include "profile/interference.h"

namespace smt::profile {
namespace {

using core::Machine;
using core::MachineConfig;
using cpu::BlockReason;
using cpu::IssuePort;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;
using perfmon::Event;

struct SimRun {
  std::unique_ptr<Machine> m;
  std::unique_ptr<MatMulWorkload> w;
  std::shared_ptr<InterferenceProfiler> prof;  // null for plain runs
};

/// The paper's SPR matmul (worker + prefetcher): two co-resident
/// contexts competing for every shared structure — the richest
/// interference source in the suite.
SimRun run_spr_matmul(bool attributed, bool event_skip) {
  SimRun r;
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  r.w = std::make_unique<MatMulWorkload>(p);
  MachineConfig cfg;
  cfg.core.event_skip = event_skip;
  r.m = std::make_unique<Machine>(cfg);
  if (attributed) r.m->enable_interference();
  r.w->setup(*r.m);
  const std::vector<isa::Program> progs = r.w->programs();
  for (size_t i = 0; i < progs.size(); ++i) {
    r.m->load_program(static_cast<CpuId>(i), progs[i]);
  }
  r.m->run();
  EXPECT_TRUE(r.w->verify(*r.m));
  r.m->finalize_interference();
  r.prof = r.m->interference();
  return r;
}

void expect_same_counters(const Machine& a, const Machine& b) {
  EXPECT_EQ(a.cycles(), b.cycles());
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const Event ev = static_cast<Event>(e);
      EXPECT_EQ(a.counters().get(cpu, ev), b.counters().get(cpu, ev))
          << "cpu" << c << " " << perfmon::name(ev);
    }
  }
}

// ---------------------------------------------------------------------------
// Guarantee 1: attaching the profiler never changes a measurement.
// ---------------------------------------------------------------------------

TEST(Interference, AttributionDoesNotPerturbAnyCounter) {
  for (const bool event_skip : {false, true}) {
    const SimRun plain = run_spr_matmul(/*attributed=*/false, event_skip);
    const SimRun attributed = run_spr_matmul(/*attributed=*/true, event_skip);
    ASSERT_EQ(plain.prof, nullptr);
    ASSERT_NE(attributed.prof, nullptr);
    expect_same_counters(*plain.m, *attributed.m);
  }
}

// ---------------------------------------------------------------------------
// Guarantee 2: attributions are exact under event-skip fast-forward.
// ---------------------------------------------------------------------------

TEST(Interference, AttributionsBitIdenticalAcrossEventSkip) {
  const SimRun fast = run_spr_matmul(/*attributed=*/true, /*event_skip=*/true);
  const SimRun slow = run_spr_matmul(/*attributed=*/true,
                                     /*event_skip=*/false);
  expect_same_counters(*fast.m, *slow.m);
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    const CpuInterference& a = fast.prof->stats(cpu);
    const CpuInterference& b = slow.prof->stats(cpu);
    EXPECT_EQ(a.self, b.self) << "cpu" << c;
    EXPECT_EQ(a.sibling, b.sibling) << "cpu" << c;
    EXPECT_EQ(a.port_self, b.port_self) << "cpu" << c;
    EXPECT_EQ(a.port_sibling, b.port_sibling) << "cpu" << c;
    EXPECT_EQ(a.l2_sibling_evictions, b.l2_sibling_evictions) << "cpu" << c;
  }
}

// ---------------------------------------------------------------------------
// Guarantee 3: self + sibling reproduce the stall counters bit-exactly,
// and the port decomposition is consistent and cap-bounded.
// ---------------------------------------------------------------------------

TEST(Interference, SelfPlusSiblingSumsMatchStallCounters) {
  const SimRun r = run_spr_matmul(/*attributed=*/true, /*event_skip=*/true);
  const struct {
    BlockReason reason;
    Event counter;
  } backed[] = {
      {BlockReason::kRob, Event::kRobStallCycles},
      {BlockReason::kLoadQueue, Event::kLoadQueueStallCycles},
      {BlockReason::kStoreBuffer, Event::kStoreBufferStallCycles},
      {BlockReason::kUopQueueFull, Event::kUopQueueFullCycles},
  };
  uint64_t any_sibling = 0;
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    const CpuInterference& s = r.prof->stats(cpu);
    for (const auto& [reason, counter] : backed) {
      EXPECT_EQ(s.total(reason), r.m->counters().get(cpu, counter))
          << "cpu" << c << " " << cpu::name(reason);
    }
    // The per-port decomposition partitions the kPortConflict cycles.
    uint64_t port_self = 0, port_sibling = 0;
    for (const uint64_t v : s.port_self) port_self += v;
    for (const uint64_t v : s.port_sibling) port_sibling += v;
    EXPECT_EQ(port_self, s.self[static_cast<int>(BlockReason::kPortConflict)])
        << "cpu" << c;
    EXPECT_EQ(port_sibling,
              s.sibling[static_cast<int>(BlockReason::kPortConflict)])
        << "cpu" << c;
    // No port can be blamed for more cycles than it could possibly be
    // contended: its per-cycle cap times the run length.
    const auto& core_cfg = r.m->config().core;
    const uint64_t cycles = r.m->cycles();
    const auto cap = [&core_cfg](int port) -> uint64_t {
      if (port == static_cast<int>(IssuePort::kAlu0)) {
        return core_cfg.alu0_per_cycle;
      }
      if (port == static_cast<int>(IssuePort::kAlu1)) {
        return core_cfg.alu1_per_cycle;
      }
      return 1;
    };
    for (int p = 0; p < cpu::kNumIssuePorts; ++p) {
      EXPECT_LE(s.port_self[p] + s.port_sibling[p], cap(p) * cycles)
          << "cpu" << c << " " << cpu::name(static_cast<IssuePort>(p));
    }
    any_sibling += s.sibling_total();
  }
  // Two co-resident contexts hammering shared structures must actually
  // interfere — an all-zero sibling ledger would mean dead hooks.
  EXPECT_GT(any_sibling, 0u);
}

// ---------------------------------------------------------------------------
// Report surface: attributed runs serialize as schema /4.
// ---------------------------------------------------------------------------

TEST(Interference, AttributedReportCarriesSchema4Interference) {
  const SimRun r = run_spr_matmul(/*attributed=*/true, /*event_skip=*/true);
  const std::string json =
      core::report_from_machine(*r.m, "spr_matmul", true).to_json();
  const auto v = parse_json(json);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("schema")->string, "smt-run-report/4");
  const JsonValue* inter = v->find("interference");
  ASSERT_NE(inter, nullptr);
  ASSERT_TRUE(inter->is_array());
  ASSERT_EQ(inter->array.size(), static_cast<size_t>(kNumLogicalCpus));
  for (const JsonValue& e : inter->array) {
    for (const char* key :
         {"self", "sibling", "port_conflict", "l2_sibling_evictions"}) {
      EXPECT_NE(e.find(key), nullptr) << key;
    }
    // Every block reason appears in both blame maps.
    for (int b = 0; b < cpu::kNumBlockReasons; ++b) {
      const char* rname = cpu::name(static_cast<BlockReason>(b));
      EXPECT_NE(e.find("self")->find(rname), nullptr) << rname;
      EXPECT_NE(e.find("sibling")->find(rname), nullptr) << rname;
    }
  }

  // A plain machine still reports schema /1 with no interference key.
  const SimRun plain = run_spr_matmul(/*attributed=*/false,
                                      /*event_skip=*/true);
  const std::string plain_json =
      core::report_from_machine(*plain.m, "spr_matmul", true).to_json();
  EXPECT_NE(plain_json.find("smt-run-report/1"), std::string::npos);
  EXPECT_EQ(plain_json.find("\"interference\""), std::string::npos);
}

}  // namespace
}  // namespace smt::profile
