// Tests for the per-PC attribution profiler and its hard guarantees:
// attaching it never perturbs any perf counter, every counter-backed
// attribution sums exactly to its counter, and all attributions are
// bit-identical between event-skip fast-forward and single-cycle stepping
// (the skipped-window replay must be exact, not approximate).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/json.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "cpu/core.h"
#include "isa/opcode.h"
#include "kernels/matmul.h"
#include "perfmon/counters.h"
#include "perfmon/events.h"
#include "profile/pc_profiler.h"

namespace smt::profile {
namespace {

using core::Machine;
using core::MachineConfig;
using cpu::BlockReason;
using cpu::IssuePort;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;
using perfmon::Event;

struct SimRun {
  std::unique_ptr<Machine> m;
  std::unique_ptr<MatMulWorkload> w;
  std::shared_ptr<PcProfiler> prof;  // null for unprofiled runs
  std::vector<isa::Program> progs;
};

/// The paper's SPR matmul (worker + prefetcher): two contexts, all stall
/// flavors, and a long halt/spin tail — the richest attribution source.
SimRun run_spr_matmul(bool profiled, bool event_skip, bool halt_barriers) {
  SimRun r;
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  p.halt_barriers = halt_barriers;
  r.w = std::make_unique<MatMulWorkload>(p);
  MachineConfig cfg;
  cfg.core.event_skip = event_skip;
  r.m = std::make_unique<Machine>(cfg);
  if (profiled) r.m->enable_pc_profiler();
  r.w->setup(*r.m);
  r.progs = r.w->programs();
  for (size_t i = 0; i < r.progs.size(); ++i) {
    r.m->load_program(static_cast<CpuId>(i), r.progs[i]);
  }
  r.m->run();
  EXPECT_TRUE(r.w->verify(*r.m));
  r.prof = r.m->pc_profiler();
  return r;
}

void expect_same_counters(const Machine& a, const Machine& b) {
  EXPECT_EQ(a.cycles(), b.cycles());
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const Event ev = static_cast<Event>(e);
      EXPECT_EQ(a.counters().get(cpu, ev), b.counters().get(cpu, ev))
          << "cpu" << c << " " << perfmon::name(ev);
    }
  }
}

void expect_same_attributions(const PcProfiler& a, const PcProfiler& b) {
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    EXPECT_EQ(a.port_totals(cpu), b.port_totals(cpu)) << "cpu" << c;
    const auto& pa = a.pcs(cpu);
    const auto& pb = b.pcs(cpu);
    ASSERT_EQ(pa.size(), pb.size()) << "cpu" << c;
    auto ib = pb.begin();
    for (const auto& [pc, sa] : pa) {
      ASSERT_EQ(pc, ib->first) << "cpu" << c;
      const PcStats& sb = ib->second;
      EXPECT_EQ(sa.retired_instrs, sb.retired_instrs) << "pc " << pc;
      EXPECT_EQ(sa.retired_uops, sb.retired_uops) << "pc " << pc;
      EXPECT_EQ(sa.l1_misses, sb.l1_misses) << "pc " << pc;
      EXPECT_EQ(sa.l2_misses, sb.l2_misses) << "pc " << pc;
      EXPECT_EQ(sa.stalls, sb.stalls) << "pc " << pc;
      EXPECT_EQ(sa.port_uops, sb.port_uops) << "pc " << pc;
      ++ib;
    }
  }
}

// ---------------------------------------------------------------------------
// Guarantee 1: attaching the profiler never changes a measurement.
// ---------------------------------------------------------------------------

TEST(PcProfiler, ProfilingDoesNotPerturbAnyCounter) {
  for (const bool event_skip : {false, true}) {
    const SimRun plain = run_spr_matmul(/*profiled=*/false, event_skip,
                                     /*halt_barriers=*/true);
    const SimRun profiled = run_spr_matmul(/*profiled=*/true, event_skip,
                                        /*halt_barriers=*/true);
    ASSERT_EQ(plain.prof, nullptr);
    ASSERT_NE(profiled.prof, nullptr);
    expect_same_counters(*plain.m, *profiled.m);
  }
}

// ---------------------------------------------------------------------------
// Guarantee 2: attributions are exact under event-skip fast-forward.
// ---------------------------------------------------------------------------

TEST(PcProfiler, AttributionsBitIdenticalAcrossEventSkip) {
  for (const bool halt_barriers : {false, true}) {
    const SimRun fast = run_spr_matmul(/*profiled=*/true, /*event_skip=*/true,
                                    halt_barriers);
    const SimRun slow = run_spr_matmul(/*profiled=*/true, /*event_skip=*/false,
                                    halt_barriers);
    expect_same_counters(*fast.m, *slow.m);
    expect_same_attributions(*fast.prof, *slow.prof);
  }
}

// ---------------------------------------------------------------------------
// Guarantee 3: counter-backed attributions sum exactly to the counters.
// ---------------------------------------------------------------------------

TEST(PcProfiler, PerPcSumsMatchCounters) {
  const SimRun r = run_spr_matmul(/*profiled=*/true, /*event_skip=*/true,
                               /*halt_barriers=*/true);
  uint64_t port_all[cpu::kNumIssuePorts] = {};
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    uint64_t instrs = 0, uops = 0, l1 = 0, l2 = 0;
    uint64_t stalls[cpu::kNumBlockReasons] = {};
    uint64_t ports[cpu::kNumIssuePorts] = {};
    for (const auto& [pc, s] : r.prof->pcs(cpu)) {
      instrs += s.retired_instrs;
      uops += s.retired_uops;
      l1 += s.l1_misses;
      l2 += s.l2_misses;
      for (int i = 0; i < cpu::kNumBlockReasons; ++i) stalls[i] += s.stalls[i];
      for (int i = 0; i < cpu::kNumIssuePorts; ++i) ports[i] += s.port_uops[i];
    }
    const auto get = [&](Event e) { return r.m->counters().get(cpu, e); };
    EXPECT_EQ(instrs, get(Event::kInstrRetired));
    EXPECT_EQ(uops, get(Event::kUopsRetired));
    EXPECT_EQ(l1, get(Event::kL1Misses));
    EXPECT_EQ(l2, get(Event::kL2Misses));
    EXPECT_EQ(stalls[static_cast<int>(BlockReason::kRob)],
              get(Event::kRobStallCycles));
    EXPECT_EQ(stalls[static_cast<int>(BlockReason::kLoadQueue)],
              get(Event::kLoadQueueStallCycles));
    EXPECT_EQ(stalls[static_cast<int>(BlockReason::kStoreBuffer)],
              get(Event::kStoreBufferStallCycles));
    EXPECT_EQ(stalls[static_cast<int>(BlockReason::kUopQueueFull)],
              get(Event::kUopQueueFullCycles));
    // The per-PC port attributions must reproduce the per-context totals,
    // and issued kNone uops are the only uops without a port.
    uint64_t context_total = 0;
    for (int i = 0; i < cpu::kNumIssuePorts; ++i) {
      EXPECT_EQ(ports[i], r.prof->port_totals(cpu)[i]);
      context_total += ports[i];
      port_all[i] += ports[i];
    }
    EXPECT_LE(context_total, get(Event::kIssuedUops));
  }
  // Shared-port caps bound the combined occupancy over the whole run
  // (double-speed ALUs fire twice per cycle, the rest once).
  const auto& core_cfg = r.m->config().core;
  const uint64_t cycles = r.m->cycles();
  EXPECT_LE(port_all[static_cast<int>(IssuePort::kAlu0)],
            static_cast<uint64_t>(core_cfg.alu0_per_cycle) * cycles);
  EXPECT_LE(port_all[static_cast<int>(IssuePort::kAlu1)],
            static_cast<uint64_t>(core_cfg.alu1_per_cycle) * cycles);
  for (const IssuePort p : {IssuePort::kFp, IssuePort::kFpMove,
                            IssuePort::kLoad, IssuePort::kStore}) {
    EXPECT_LE(port_all[static_cast<int>(p)], cycles);
  }
}

// ---------------------------------------------------------------------------
// The paper's signature: ALU0 serialization of the mask-heavy MM.
// ---------------------------------------------------------------------------

TEST(PcProfiler, Alu0TrafficConcentratesOnMaskInstructions) {
  // The blocked-array-layout MM recomputes dilated indices with
  // logical/shift (ALU0-only) instructions; their PCs must dominate the
  // ALU0 port traffic over branches and spilled-over simple-ALU uops.
  MatMulParams p;
  p.n = 32;
  p.tile = 8;
  p.mode = MmMode::kSerial;
  MatMulWorkload w(p);
  Machine m{};
  m.enable_pc_profiler();
  w.setup(m);
  const isa::Program prog = w.programs()[0];
  m.load_program(CpuId::kCpu0, prog);
  m.run();
  EXPECT_TRUE(w.verify(m));
  const auto prof = m.pc_profiler();
  const int kAlu0Port = static_cast<int>(IssuePort::kAlu0);
  uint64_t total_alu0 = 0, mask_alu0 = 0, best = 0;
  isa::UnitClass best_unit = isa::UnitClass::kNone;
  for (const auto& [pc, s] : prof->pcs(CpuId::kCpu0)) {
    const uint64_t n = s.port_uops[kAlu0Port];
    total_alu0 += n;
    ASSERT_LT(pc, prog.size());
    const isa::UnitClass u = isa::unit_class(prog.at(pc).op);
    if (u == isa::UnitClass::kAlu0) mask_alu0 += n;
    if (n > best) {
      best = n;
      best_unit = u;
    }
  }
  ASSERT_GT(total_alu0, 0u);
  // The single busiest ALU0 PC is a logical/shift (mask) instruction, and
  // mask instructions carry the majority of the port's traffic.
  EXPECT_EQ(best_unit, isa::UnitClass::kAlu0);
  EXPECT_GT(static_cast<double>(mask_alu0),
            0.5 * static_cast<double>(total_alu0));
}

// ---------------------------------------------------------------------------
// Report surface: profiled runs serialize as schema /3.
// ---------------------------------------------------------------------------

TEST(PcProfiler, ProfiledReportCarriesSchema3Profile) {
  const SimRun r = run_spr_matmul(/*profiled=*/true, /*event_skip=*/true,
                               /*halt_barriers=*/false);
  const core::RunReport rep =
      core::report_from_machine(*r.m, "spr_matmul", true);
  const std::string json = rep.to_json();
  const auto v = parse_json(json);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("schema")->string, "smt-run-report/3");
  const JsonValue* prof = v->find("profile");
  ASSERT_NE(prof, nullptr);
  for (const char* key : {"hotspots", "port_occupancy",
                          "port_caps_per_cycle"}) {
    EXPECT_NE(prof->find(key), nullptr) << key;
  }
  const JsonValue* hotspots = prof->find("hotspots");
  ASSERT_TRUE(hotspots->is_array());
  ASSERT_EQ(hotspots->array.size(), static_cast<size_t>(kNumLogicalCpus));
  const JsonValue* pcs = hotspots->array[0].find("pcs");
  ASSERT_NE(pcs, nullptr);
  ASSERT_FALSE(pcs->array.empty());
  // Entries are self-contained: they carry the disassembly.
  const JsonValue* disasm = pcs->array[0].find("disasm");
  ASSERT_NE(disasm, nullptr);
  EXPECT_FALSE(disasm->string.empty());

  // An unprofiled machine still reports schema /1.
  const SimRun plain = run_spr_matmul(/*profiled=*/false, /*event_skip=*/true,
                                   /*halt_barriers=*/false);
  const std::string plain_json =
      core::report_from_machine(*plain.m, "spr_matmul", true).to_json();
  EXPECT_NE(plain_json.find("smt-run-report/1"), std::string::npos);
  EXPECT_EQ(plain_json.find("\"profile\""), std::string::npos);
}

}  // namespace
}  // namespace smt::profile
