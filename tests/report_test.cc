// Tests for the structured run-report layer: the minimal JSON
// writer/parser, the top-down cycle-accounting derivation, and the
// RunReport JSON artifact every bench binary emits.
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "isa/asm_builder.h"
#include "perfmon/cycle_accounting.h"
#include "perfmon/events.h"

namespace smt {
namespace {

using core::Machine;
using isa::AsmBuilder;
using isa::FReg;
using perfmon::Event;

// ---------------------------------------------------------------------------
// JSON writer + parser round trips
// ---------------------------------------------------------------------------

TEST(Json, WriterProducesCanonicalScalars) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "hi");
  w.kv("i", 42);
  w.kv("u", static_cast<uint64_t>(1) << 40);
  w.kv("d", 1.5);
  w.kv("b", true);
  w.key("n");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"hi\",\"i\":42,\"u\":1099511627776,\"d\":1.5,"
            "\"b\":true,\"n\":[1,2]}");
}

TEST(Json, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "x\t\"y\"");
  w.kv("count", static_cast<uint64_t>(123456789));
  w.key("list");
  w.begin_array();
  w.value(-1);
  w.value(2.25);
  w.value(false);
  w.end_array();
  w.end_object();

  const auto v = parse_json(w.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("name")->string, "x\t\"y\"");
  EXPECT_EQ(v->find("count")->number, 123456789.0);
  const JsonValue* list = v->find("list");
  ASSERT_TRUE(list != nullptr && list->is_array());
  ASSERT_EQ(list->array.size(), 3u);
  EXPECT_EQ(list->array[0].number, -1.0);
  EXPECT_EQ(list->array[1].number, 2.25);
  EXPECT_EQ(list->array[2].type, JsonValue::Type::kBool);
}

TEST(Json, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse_json("[1 2]").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_TRUE(parse_json("{\"a\": [1, {\"b\": null}]}").has_value());
}

// ---------------------------------------------------------------------------
// Cycle-accounting derivation
// ---------------------------------------------------------------------------

TEST(CycleAccounting, DerivesTheDocumentedIdentities) {
  perfmon::Snapshot s;
  const int c0 = 0;
  s.v[c0][static_cast<int>(Event::kCyclesActive)] = 800;
  s.v[c0][static_cast<int>(Event::kCyclesHalted)] = 150;
  s.v[c0][static_cast<int>(Event::kFetchStallCycles)] = 100;
  s.v[c0][static_cast<int>(Event::kResourceStallCycles)] = 300;
  s.v[c0][static_cast<int>(Event::kRobStallCycles)] = 120;
  s.v[c0][static_cast<int>(Event::kLoadQueueStallCycles)] = 80;
  s.v[c0][static_cast<int>(Event::kStoreBufferStallCycles)] = 100;
  s.v[c0][static_cast<int>(Event::kInstrRetired)] = 400;
  s.v[c0][static_cast<int>(Event::kUopsRetired)] = 500;

  const auto acc = perfmon::account_cycles(s, /*total_cycles=*/1000);
  const auto& b = acc.cpu[0];
  EXPECT_EQ(b.total, 1000u);
  EXPECT_EQ(b.active, 800u);
  EXPECT_EQ(b.halted, 150u);
  EXPECT_EQ(b.idle, 50u);  // total - active - halted
  EXPECT_EQ(b.memory_bound, 180u);  // lq + sb stalls
  EXPECT_EQ(b.issue_bound, 120u);   // rob stalls
  EXPECT_EQ(b.flowing, 400u);       // active - (fetch + resource)
  EXPECT_DOUBLE_EQ(b.cpi, 2.0);
  EXPECT_DOUBLE_EQ(b.ipc, 0.5);
  EXPECT_DOUBLE_EQ(b.uops_per_cycle, 0.625);

  // The idle thread derives all zeros without dividing by zero.
  EXPECT_EQ(acc.cpu[1].active, 0u);
  EXPECT_EQ(acc.cpu[1].cpi, 0.0);
}

TEST(CycleAccounting, ClampsWhenCategoriesOverlap) {
  perfmon::Snapshot s;
  s.v[0][static_cast<int>(Event::kCyclesActive)] = 100;
  s.v[0][static_cast<int>(Event::kFetchStallCycles)] = 90;
  s.v[0][static_cast<int>(Event::kResourceStallCycles)] = 90;
  const auto acc = perfmon::account_cycles(s, 100);
  EXPECT_EQ(acc.cpu[0].flowing, 0u);  // clamped, not underflowed
  EXPECT_EQ(acc.cpu[0].idle, 0u);
}

// ---------------------------------------------------------------------------
// RunReport artifact
// ---------------------------------------------------------------------------

core::RunReport sample_report() {
  AsmBuilder a("sample");
  a.fmovi(FReg::F0, 0.0);
  a.fmovi(FReg::F1, 1.0);
  for (int i = 0; i < 500; ++i) a.fadd(FReg::F0, FReg::F0, FReg::F1);
  a.exit();
  Machine m;
  m.load_program(CpuId::kCpu0, a.take());
  m.run();
  return core::report_from_machine(m, "sample.fadd", /*verified=*/true);
}

TEST(RunReport, JsonArtifactParsesAndCarriesTheBreakdown) {
  const core::RunReport r = sample_report();
  const auto v = parse_json(r.to_json());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());

  EXPECT_EQ(v->find("schema")->string, "smt-run-report/1");
  EXPECT_EQ(v->find("workload")->string, "sample.fadd");
  EXPECT_TRUE(v->find("verified")->boolean);
  EXPECT_EQ(v->find("cycles")->number,
            static_cast<double>(r.stats.cycles));

  // Config is embedded with both halves.
  const JsonValue* cfg = v->find("config");
  ASSERT_TRUE(cfg != nullptr && cfg->is_object());
  EXPECT_EQ(cfg->find("core")->find("rob_size")->number, 126.0);
  EXPECT_EQ(cfg->find("mem")->find("l1")->find("size_bytes")->number,
            8.0 * 1024);

  // One entry per logical CPU, each with every named counter and the
  // derived breakdown.
  const JsonValue* cpus = v->find("cpus");
  ASSERT_TRUE(cpus != nullptr && cpus->is_array());
  ASSERT_EQ(cpus->array.size(), static_cast<size_t>(kNumLogicalCpus));
  const JsonValue& cpu0 = cpus->array[0];
  const JsonValue* events = cpu0.find("events");
  ASSERT_TRUE(events != nullptr);
  for (int e = 0; e < perfmon::kNumEventValues; ++e) {
    const auto ev = static_cast<Event>(e);
    const JsonValue* entry = events->find(perfmon::name(ev));
    ASSERT_TRUE(entry != nullptr) << perfmon::name(ev);
    EXPECT_EQ(entry->number,
              static_cast<double>(r.stats.cpu(CpuId::kCpu0, ev)))
        << perfmon::name(ev);
  }
  const JsonValue* bd = cpu0.find("breakdown");
  ASSERT_TRUE(bd != nullptr);
  EXPECT_EQ(bd->find("active")->number,
            static_cast<double>(r.accounting.cpu[0].active));
  EXPECT_EQ(bd->find("flowing")->number,
            static_cast<double>(r.accounting.cpu[0].flowing));
  EXPECT_NEAR(bd->find("cpi")->number, r.accounting.cpu[0].cpi, 1e-9);

  const JsonValue* totals = v->find("totals");
  ASSERT_TRUE(totals != nullptr);
  EXPECT_EQ(totals->find("instr_retired")->number,
            static_cast<double>(r.stats.total(Event::kInstrRetired)));
}

TEST(RunReport, TableRendersEveryAccountingRow) {
  const std::string t = sample_report().to_table();
  for (const char* needle :
       {"run report: sample.fadd", "active", "halted", "fetch stalled",
        ".. rob", ".. load queue", ".. store buffer", "memory bound",
        "issue bound", "flowing", "cpi"}) {
    EXPECT_NE(t.find(needle), std::string::npos) << needle;
  }
}

TEST(RunReport, WriteJsonFileRoundTrips) {
  const core::RunReport r = sample_report();
  const std::string path = testing::TempDir() + "/report_test.json";
  ASSERT_TRUE(r.write_json_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_TRUE(f != nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const auto v = parse_json(text);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("workload")->string, "sample.fadd");
}

TEST(RunReport, WriteJsonFileCreatesMissingParentDirs) {
  const core::RunReport r = sample_report();
  const std::string path =
      testing::TempDir() + "/report_test_nested/a/b/report.json";
  ASSERT_TRUE(r.write_json_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_TRUE(f != nullptr);
  std::fclose(f);
}

TEST(RunReport, WriteJsonFileFailsCleanlyOnUnwritablePath) {
  const core::RunReport r = sample_report();
  // The parent "directory" is an existing regular file.
  const std::string blocker = testing::TempDir() + "/report_test_blocker";
  std::FILE* f = std::fopen(blocker.c_str(), "w");
  ASSERT_TRUE(f != nullptr);
  std::fclose(f);
  EXPECT_FALSE(r.write_json_file(blocker + "/report.json"));
}

}  // namespace
}  // namespace smt
