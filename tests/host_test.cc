// Tests for the host-parallel job pool and the sweep experiment registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/run_report.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "host/job_pool.h"
#include "host/result_store.h"

namespace smt::host {
namespace {

Job make_job(std::string name,
             std::function<JobStatus(const CancelToken&, int, std::string*)>
                 fn) {
  Job j;
  j.name = std::move(name);
  j.fn = std::move(fn);
  return j;
}

TEST(JobPool, ResultsComeBackInJobOrder) {
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    std::string jname = "j";
    jname += std::to_string(i);
    jobs.push_back(make_job(
        jname, [i](const CancelToken&, int, std::string* message) {
          *message = "ran ";
          *message += std::to_string(i);
          return JobStatus::kOk;
        }));
  }
  JobPoolConfig cfg;
  cfg.workers = 4;
  const std::vector<JobResult> results = run_jobs(cfg, jobs);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i].status, JobStatus::kOk);
    std::string expect = "ran ";
    expect += std::to_string(i);
    EXPECT_EQ(results[i].message, expect);
    EXPECT_EQ(results[i].attempts, 1);
  }
}

TEST(JobPool, EmptyJobListIsFine) {
  JobPoolConfig cfg;
  cfg.workers = 4;
  EXPECT_TRUE(run_jobs(cfg, {}).empty());
}

TEST(JobPool, OneFailureDoesNotStopTheOthers) {
  std::atomic<int> executed{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    std::string jname = "j";
    jname += std::to_string(i);
    jobs.push_back(make_job(
        jname,
        [i, &executed](const CancelToken&, int, std::string* message) {
          executed.fetch_add(1);
          if (i == 2) {
            *message = "synthetic failure";
            return JobStatus::kFailed;
          }
          return JobStatus::kOk;
        }));
  }
  JobPoolConfig cfg;
  cfg.workers = 2;
  const std::vector<JobResult> results = run_jobs(cfg, jobs);
  EXPECT_EQ(executed.load(), 6);
  EXPECT_EQ(results[2].status, JobStatus::kFailed);
  EXPECT_EQ(results[2].message, "synthetic failure");
  for (int i = 0; i < 6; ++i) {
    if (i != 2) {
      EXPECT_EQ(results[i].status, JobStatus::kOk);
    }
  }
}

TEST(JobPool, JobsRunConcurrentlyAcrossWorkers) {
  // Two jobs that each wait (bounded) for the other to start can only both
  // finish ok if the pool really runs them on different threads at once.
  std::atomic<int> started{0};
  auto meet = [&started](const CancelToken&, int, std::string* message) {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() >= deadline) {
        *message = "peer never started";
        return JobStatus::kFailed;
      }
      std::this_thread::yield();
    }
    return JobStatus::kOk;
  };
  JobPoolConfig cfg;
  cfg.workers = 2;
  const std::vector<JobResult> results =
      run_jobs(cfg, {make_job("a", meet), make_job("b", meet)});
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].status, JobStatus::kOk);
}

TEST(JobPool, WatchdogExpiryRetriesOnceThenReportsTimeout) {
  std::atomic<int> attempts_seen{0};
  Job job = make_job(
      "stuck", [&attempts_seen](const CancelToken& token, int attempt,
                                std::string* message) {
        attempts_seen.fetch_add(1);
        EXPECT_EQ(attempt, attempts_seen.load() - 1);
        while (!token.expired()) std::this_thread::yield();
        *message = "token expired";
        return JobStatus::kTimeout;
      });
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(20);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kTimeout);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(attempts_seen.load(), 2);
  EXPECT_GT(results[0].wall_ms, 0.0);
}

TEST(JobPool, TimeoutFollowedBySuccessEndsOk) {
  Job job = make_job(
      "flaky", [](const CancelToken&, int attempt, std::string* message) {
        if (attempt == 0) {
          *message = "first attempt timed out";
          return JobStatus::kTimeout;
        }
        return JobStatus::kOk;
      });
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(1000);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
}

TEST(JobPool, StructuredFailureIsNotRetried) {
  std::atomic<int> attempts_seen{0};
  Job job = make_job(
      "bad", [&attempts_seen](const CancelToken&, int, std::string*) {
        attempts_seen.fetch_add(1);
        return JobStatus::kFailed;
      });
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(1000);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_EQ(attempts_seen.load(), 1);
}

TEST(JobPool, PoolLevelCancelSkipsUnclaimedJobs) {
  // One worker, four jobs; the second job fires the pool-level cancel.
  // The jobs behind it must come back kSkipped with zero attempts, and
  // nothing after the cancel point may execute.
  CancelToken cancel;
  std::atomic<int> executed{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_job(
        "j" + std::to_string(i),
        [i, &cancel, &executed](const CancelToken&, int, std::string*) {
          executed.fetch_add(1);
          if (i == 1) cancel.cancel();
          return JobStatus::kOk;
        }));
  }
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.cancel = &cancel;
  const std::vector<JobResult> results = run_jobs(cfg, jobs);
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].status, JobStatus::kOk);
  for (int i = 2; i < 4; ++i) {
    EXPECT_EQ(results[i].status, JobStatus::kSkipped) << i;
    EXPECT_EQ(results[i].attempts, 0) << i;
  }
}

TEST(JobPool, PreCancelledPoolRunsNothing) {
  CancelToken cancel;
  cancel.cancel();
  std::atomic<int> executed{0};
  JobPoolConfig cfg;
  cfg.workers = 2;
  cfg.cancel = &cancel;
  const std::vector<JobResult> results = run_jobs(
      cfg, {make_job("a", [&executed](const CancelToken&, int,
                                      std::string*) {
              executed.fetch_add(1);
              return JobStatus::kOk;
            })});
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(results[0].status, JobStatus::kSkipped);
  EXPECT_EQ(results[0].attempts, 0);
}

TEST(JobPool, RetryScrubsDeclaredArtifacts) {
  // A watchdog-style retry must never inherit the first attempt's
  // half-written files: the pool deletes every declared artifact path
  // before re-running the job.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "jobpool_scrub_test";
  fs::create_directories(dir);
  const std::string artifact = (dir / "report.json").string();

  std::string seen_on_retry = "unset";
  Job job = make_job("scrubbed", [&](const CancelToken&, int attempt,
                                     std::string* message) {
    if (attempt == 0) {
      std::ofstream(artifact) << "{\"partial\":";
      *message = "injected timeout";
      return JobStatus::kTimeout;
    }
    seen_on_retry = fs::exists(artifact) ? "stale file survived" : "clean";
    std::ofstream(artifact) << "{\"ok\":true}";
    return JobStatus::kOk;
  });
  job.artifacts = {artifact};
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(1000);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(seen_on_retry, "clean");
  std::ifstream in(artifact);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, "{\"ok\":true}");
  fs::remove_all(dir);
}

TEST(CancelToken, ExpiresOnCancelAndOnDeadline) {
  CancelToken fresh;
  EXPECT_FALSE(fresh.expired());
  fresh.cancel();
  EXPECT_TRUE(fresh.expired());

  CancelToken timed;
  timed.arm_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(timed.expired());
}

// ---------------------------------------------------------------------------
// Content-addressed result store
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

ResultKey sample_key(const std::string& experiment) {
  ResultKey k;
  k.experiment = experiment;
  k.program_digests = {"0123456789abcdef", "fedcba9876543210"};
  k.config_hash = "00ff00ff00ff00ff";
  k.cycle_budget = 1'000'000;
  k.race_detect = false;
  k.flight_recorder = true;
  return k;
}

CachedResult sample_result() {
  CachedResult r;
  r.outcome = "deadlock";
  r.message = "all contexts halted";
  r.cycles = 4242;
  r.verified = false;
  r.report_json = "{\"schema\":\"smt-run-report/4\",\"cycles\":4242}";
  r.dump_json = "{\"schema\":\"smt-core-dump/1\"}";
  return r;
}

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("result_store_test_" +
             std::to_string(
                 std::chrono::steady_clock::now().time_since_epoch().count()));
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ResultStoreTest, StoreThenLoadRoundTripsEveryField) {
  ResultStore store(root_.string());
  const ResultKey key = sample_key("rt");
  EXPECT_FALSE(store.load(key).has_value());  // cold store: miss

  ASSERT_TRUE(store.store(key, sample_result()));
  const auto hit = store.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome, "deadlock");
  EXPECT_EQ(hit->message, "all contexts halted");
  EXPECT_EQ(hit->cycles, 4242u);
  EXPECT_FALSE(hit->verified);
  EXPECT_EQ(hit->report_json, sample_result().report_json);
  EXPECT_EQ(hit->dump_json, sample_result().dump_json);
}

TEST_F(ResultStoreTest, DumplessResultRoundTripsEmptyDump) {
  ResultStore store(root_.string());
  CachedResult r = sample_result();
  r.outcome = "ok";
  r.dump_json.clear();
  ASSERT_TRUE(store.store(sample_key("ok"), r));
  const auto hit = store.load(sample_key("ok"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome, "ok");
  EXPECT_TRUE(hit->dump_json.empty());
}

TEST_F(ResultStoreTest, DifferentKeysNeverAlias) {
  ResultStore store(root_.string());
  ASSERT_TRUE(store.store(sample_key("a"), sample_result()));
  // Every key field participates in the address.
  EXPECT_FALSE(store.load(sample_key("b")).has_value());
  ResultKey budget = sample_key("a");
  budget.cycle_budget += 1;
  EXPECT_FALSE(store.load(budget).has_value());
  ResultKey race = sample_key("a");
  race.race_detect = true;
  EXPECT_FALSE(store.load(race).has_value());
  ResultKey programs = sample_key("a");
  programs.program_digests.pop_back();
  EXPECT_FALSE(store.load(programs).has_value());
  ResultKey epoch = sample_key("a");
  epoch.report_epoch = "smt-run-report/3";
  EXPECT_FALSE(store.load(epoch).has_value());
}

TEST_F(ResultStoreTest, NonCacheableOutcomesAreRefused) {
  ResultStore store(root_.string());
  for (const char* outcome : {"timeout", "cancelled", "", "bogus"}) {
    CachedResult r = sample_result();
    r.outcome = outcome;
    EXPECT_FALSE(store.store(sample_key("x"), r)) << outcome;
  }
  EXPECT_FALSE(store.load(sample_key("x")).has_value());
}

TEST_F(ResultStoreTest, CorruptObjectDegradesToMiss) {
  ResultStore store(root_.string());
  const ResultKey key = sample_key("corrupt");
  ASSERT_TRUE(store.store(key, sample_result()));
  const fs::path obj = root_ / "objects" / key.hash();
  ASSERT_TRUE(fs::is_directory(obj));

  // Truncated meta.json: parse failure, not wrong bytes.
  std::ofstream(obj / "meta.json") << "{\"schema\":";
  EXPECT_FALSE(store.load(key).has_value());

  // Meta for a *different* key squatting in this key's slot (simulated
  // hash collision): field verification must reject it.
  ASSERT_TRUE(fs::remove_all(obj) > 0);
  ASSERT_TRUE(store.store(sample_key("other"), sample_result()));
  const fs::path other = root_ / "objects" / sample_key("other").hash();
  fs::create_directories(obj);
  for (const char* f : {"meta.json", "report.json", "dump.json"}) {
    fs::copy_file(other / f, obj / f);
  }
  EXPECT_FALSE(store.load(key).has_value());
}

TEST_F(ResultStoreTest, FirstWriterWins) {
  ResultStore store(root_.string());
  const ResultKey key = sample_key("first");
  ASSERT_TRUE(store.store(key, sample_result()));
  CachedResult second = sample_result();
  second.message = "late writer";
  EXPECT_TRUE(store.store(key, second));  // tolerated, not an error
  const auto hit = store.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->message, "all contexts halted");
}

TEST(ResultKey, CacheableOutcomeTruthTable) {
  for (const char* yes : {"ok", "deadlock", "cycle_budget_exceeded",
                          "verify_failed", "race_detected"}) {
    EXPECT_TRUE(cacheable_outcome(yes)) << yes;
  }
  for (const char* no :
       {"timeout", "cancelled", "cache_verify_failed", "report_write_failed",
        "", "OK"}) {
    EXPECT_FALSE(cacheable_outcome(no)) << no;
  }
}

TEST(ResultKey, RegistryKeyIsStableAndSensitive) {
  const ExperimentDef* serial = find_experiment("mm.serial.n64");
  const ExperimentDef* fine = find_experiment("mm.tlp-fine.n64");
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(fine, nullptr);
  core::RunOptions ro;
  ro.flight_recorder = true;

  const ResultKey k1 =
      result_key(*serial, core::MachineConfig{}, serial->cycle_budget, ro);
  const ResultKey k2 =
      result_key(*serial, core::MachineConfig{}, serial->cycle_budget, ro);
  EXPECT_EQ(k1.canonical(), k2.canonical());
  EXPECT_EQ(k1.hash(), k2.hash());
  EXPECT_FALSE(k1.program_digests.empty());
  EXPECT_EQ(k1.config_hash.size(), 16u);

  // A different variant of the same kernel keys apart (its programs
  // differ), as does the same experiment under different run options or
  // budget.
  const ResultKey kf =
      result_key(*fine, core::MachineConfig{}, fine->cycle_budget, ro);
  EXPECT_NE(k1.hash(), kf.hash());
  const ResultKey kb =
      result_key(*serial, core::MachineConfig{}, serial->cycle_budget + 1, ro);
  EXPECT_NE(k1.hash(), kb.hash());
  core::RunOptions race = ro;
  race.race_detect = true;
  const ResultKey kr =
      result_key(*serial, core::MachineConfig{}, serial->cycle_budget, race);
  EXPECT_NE(k1.hash(), kr.hash());
}

// ---------------------------------------------------------------------------
// Experiment registry
// ---------------------------------------------------------------------------

TEST(Experiments, RegistryNamesAreUniqueAndLookupsWork) {
  std::set<std::string> names;
  for (const ExperimentDef& d : experiments()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate: " << d.name;
    EXPECT_EQ(find_experiment(d.name), &d);
  }
  EXPECT_EQ(find_experiment("no.such.experiment"), nullptr);
}

TEST(Experiments, RegistryInvariantCheckAcceptsTheRealRegistry) {
  detail::check_registry_invariants(experiments());
}

TEST(Experiments, RegistryInvariantCheckRejectsBadRegistries) {
  const auto def = [](const std::string& name) {
    ExperimentDef d;
    d.name = name;
    return d;
  };
  EXPECT_DEATH(detail::check_registry_invariants({def("a"), def("a")}),
               "duplicate");
  EXPECT_DEATH(detail::check_registry_invariants({def("")}), "empty");
  // Distinct names whose sanitized artifact keys would collide on disk.
  // sanitize_artifact_key appends a disambiguating hash whenever it has
  // to substitute characters, so colliding keys can only come from names
  // that are byte-identical after substitution AND hash — i.e. the same
  // name; this arm therefore only documents the check, via names that
  // differ (and must pass).
  detail::check_registry_invariants({def("a/b"), def("a_b")});
}

TEST(Experiments, DefaultManifestExcludesSelfTests) {
  const std::vector<std::string> manifest = default_manifest();
  EXPECT_FALSE(manifest.empty());
  for (const std::string& name : manifest) {
    EXPECT_EQ(name.find("selftest."), std::string::npos) << name;
  }
  // The figure suites are all present.
  const std::set<std::string> set(manifest.begin(), manifest.end());
  EXPECT_TRUE(set.count("mm.serial.n64"));
  EXPECT_TRUE(set.count("lu.tlp-pfetch.n128"));
  EXPECT_TRUE(set.count("cg.tlp-pfetch+work"));
  EXPECT_TRUE(set.count("bt.tlp-coarse"));
}

TEST(Experiments, SelfTestsFailTheWayTheyPromise) {
  const ExperimentDef* deadlock = find_experiment("selftest.deadlock");
  ASSERT_NE(deadlock, nullptr);
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, *deadlock->make(), deadlock->cycle_budget);
  EXPECT_EQ(o.status, core::RunStatus::kDeadlock);

  const ExperimentDef* budget = find_experiment("selftest.budget");
  ASSERT_NE(budget, nullptr);
  const core::RunOutcome b = core::try_run_workload(
      core::MachineConfig{}, *budget->make(), budget->cycle_budget);
  EXPECT_EQ(b.status, core::RunStatus::kCycleBudgetExceeded);

  const ExperimentDef* verify = find_experiment("selftest.verify-fail");
  ASSERT_NE(verify, nullptr);
  const core::RunOutcome v = core::try_run_workload(
      core::MachineConfig{}, *verify->make(), verify->cycle_budget);
  EXPECT_EQ(v.status, core::RunStatus::kVerifyFailed);
}

TEST(Experiments, ExperimentRunsAreDeterministic) {
  // The sweep's byte-identical-reports guarantee rests on this: two fresh
  // instances of the same definition produce identical report JSON.
  const ExperimentDef* def = find_experiment("mm.serial.n64");
  ASSERT_NE(def, nullptr);
  std::string json[2];
  for (std::string& j : json) {
    const core::RunOutcome o = core::try_run_workload(
        core::MachineConfig{}, *def->make(), def->cycle_budget);
    ASSERT_EQ(o.status, core::RunStatus::kOk);
    j = core::RunReport::from(o.stats).to_json();
  }
  EXPECT_EQ(json[0], json[1]);
}

}  // namespace
}  // namespace smt::host
