// Tests for the host-parallel job pool and the sweep experiment registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/run_report.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "host/job_pool.h"

namespace smt::host {
namespace {

TEST(JobPool, ResultsComeBackInJobOrder) {
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    std::string jname = "j";
    jname += std::to_string(i);
    jobs.push_back({jname, [i](const CancelToken&, int, std::string* message) {
                      *message = "ran ";
                      *message += std::to_string(i);
                      return JobStatus::kOk;
                    }});
  }
  JobPoolConfig cfg;
  cfg.workers = 4;
  const std::vector<JobResult> results = run_jobs(cfg, jobs);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i].status, JobStatus::kOk);
    std::string expect = "ran ";
    expect += std::to_string(i);
    EXPECT_EQ(results[i].message, expect);
    EXPECT_EQ(results[i].attempts, 1);
  }
}

TEST(JobPool, EmptyJobListIsFine) {
  JobPoolConfig cfg;
  cfg.workers = 4;
  EXPECT_TRUE(run_jobs(cfg, {}).empty());
}

TEST(JobPool, OneFailureDoesNotStopTheOthers) {
  std::atomic<int> executed{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    std::string jname = "j";
    jname += std::to_string(i);
    jobs.push_back({jname, [i, &executed](const CancelToken&, int,
                                          std::string* message) {
                      executed.fetch_add(1);
                      if (i == 2) {
                        *message = "synthetic failure";
                        return JobStatus::kFailed;
                      }
                      return JobStatus::kOk;
                    }});
  }
  JobPoolConfig cfg;
  cfg.workers = 2;
  const std::vector<JobResult> results = run_jobs(cfg, jobs);
  EXPECT_EQ(executed.load(), 6);
  EXPECT_EQ(results[2].status, JobStatus::kFailed);
  EXPECT_EQ(results[2].message, "synthetic failure");
  for (int i = 0; i < 6; ++i) {
    if (i != 2) {
      EXPECT_EQ(results[i].status, JobStatus::kOk);
    }
  }
}

TEST(JobPool, JobsRunConcurrentlyAcrossWorkers) {
  // Two jobs that each wait (bounded) for the other to start can only both
  // finish ok if the pool really runs them on different threads at once.
  std::atomic<int> started{0};
  auto meet = [&started](const CancelToken&, int, std::string* message) {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() >= deadline) {
        *message = "peer never started";
        return JobStatus::kFailed;
      }
      std::this_thread::yield();
    }
    return JobStatus::kOk;
  };
  JobPoolConfig cfg;
  cfg.workers = 2;
  const std::vector<JobResult> results =
      run_jobs(cfg, {{"a", meet}, {"b", meet}});
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].status, JobStatus::kOk);
}

TEST(JobPool, WatchdogExpiryRetriesOnceThenReportsTimeout) {
  std::atomic<int> attempts_seen{0};
  Job job{"stuck", [&attempts_seen](const CancelToken& token, int attempt,
                                    std::string* message) {
            attempts_seen.fetch_add(1);
            EXPECT_EQ(attempt, attempts_seen.load() - 1);
            while (!token.expired()) std::this_thread::yield();
            *message = "token expired";
            return JobStatus::kTimeout;
          }};
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(20);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kTimeout);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(attempts_seen.load(), 2);
  EXPECT_GT(results[0].wall_ms, 0.0);
}

TEST(JobPool, TimeoutFollowedBySuccessEndsOk) {
  Job job{"flaky", [](const CancelToken&, int attempt, std::string* message) {
            if (attempt == 0) {
              *message = "first attempt timed out";
              return JobStatus::kTimeout;
            }
            return JobStatus::kOk;
          }};
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(1000);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
}

TEST(JobPool, StructuredFailureIsNotRetried) {
  std::atomic<int> attempts_seen{0};
  Job job{"bad", [&attempts_seen](const CancelToken&, int, std::string*) {
            attempts_seen.fetch_add(1);
            return JobStatus::kFailed;
          }};
  JobPoolConfig cfg;
  cfg.workers = 1;
  cfg.job_timeout = std::chrono::milliseconds(1000);
  const std::vector<JobResult> results = run_jobs(cfg, {job});
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_EQ(attempts_seen.load(), 1);
}

TEST(CancelToken, ExpiresOnCancelAndOnDeadline) {
  CancelToken fresh;
  EXPECT_FALSE(fresh.expired());
  fresh.cancel();
  EXPECT_TRUE(fresh.expired());

  CancelToken timed;
  timed.arm_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(timed.expired());
}

// ---------------------------------------------------------------------------
// Experiment registry
// ---------------------------------------------------------------------------

TEST(Experiments, RegistryNamesAreUniqueAndLookupsWork) {
  std::set<std::string> names;
  for (const ExperimentDef& d : experiments()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate: " << d.name;
    EXPECT_EQ(find_experiment(d.name), &d);
  }
  EXPECT_EQ(find_experiment("no.such.experiment"), nullptr);
}

TEST(Experiments, RegistryInvariantCheckAcceptsTheRealRegistry) {
  detail::check_registry_invariants(experiments());
}

TEST(Experiments, RegistryInvariantCheckRejectsBadRegistries) {
  const auto def = [](const std::string& name) {
    ExperimentDef d;
    d.name = name;
    return d;
  };
  EXPECT_DEATH(detail::check_registry_invariants({def("a"), def("a")}),
               "duplicate");
  EXPECT_DEATH(detail::check_registry_invariants({def("")}), "empty");
  // Distinct names whose sanitized artifact keys would collide on disk.
  // sanitize_artifact_key appends a disambiguating hash whenever it has
  // to substitute characters, so colliding keys can only come from names
  // that are byte-identical after substitution AND hash — i.e. the same
  // name; this arm therefore only documents the check, via names that
  // differ (and must pass).
  detail::check_registry_invariants({def("a/b"), def("a_b")});
}

TEST(Experiments, DefaultManifestExcludesSelfTests) {
  const std::vector<std::string> manifest = default_manifest();
  EXPECT_FALSE(manifest.empty());
  for (const std::string& name : manifest) {
    EXPECT_EQ(name.find("selftest."), std::string::npos) << name;
  }
  // The figure suites are all present.
  const std::set<std::string> set(manifest.begin(), manifest.end());
  EXPECT_TRUE(set.count("mm.serial.n64"));
  EXPECT_TRUE(set.count("lu.tlp-pfetch.n128"));
  EXPECT_TRUE(set.count("cg.tlp-pfetch+work"));
  EXPECT_TRUE(set.count("bt.tlp-coarse"));
}

TEST(Experiments, SelfTestsFailTheWayTheyPromise) {
  const ExperimentDef* deadlock = find_experiment("selftest.deadlock");
  ASSERT_NE(deadlock, nullptr);
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, *deadlock->make(), deadlock->cycle_budget);
  EXPECT_EQ(o.status, core::RunStatus::kDeadlock);

  const ExperimentDef* budget = find_experiment("selftest.budget");
  ASSERT_NE(budget, nullptr);
  const core::RunOutcome b = core::try_run_workload(
      core::MachineConfig{}, *budget->make(), budget->cycle_budget);
  EXPECT_EQ(b.status, core::RunStatus::kCycleBudgetExceeded);

  const ExperimentDef* verify = find_experiment("selftest.verify-fail");
  ASSERT_NE(verify, nullptr);
  const core::RunOutcome v = core::try_run_workload(
      core::MachineConfig{}, *verify->make(), verify->cycle_budget);
  EXPECT_EQ(v.status, core::RunStatus::kVerifyFailed);
}

TEST(Experiments, ExperimentRunsAreDeterministic) {
  // The sweep's byte-identical-reports guarantee rests on this: two fresh
  // instances of the same definition produce identical report JSON.
  const ExperimentDef* def = find_experiment("mm.serial.n64");
  ASSERT_NE(def, nullptr);
  std::string json[2];
  for (std::string& j : json) {
    const core::RunOutcome o = core::try_run_workload(
        core::MachineConfig{}, *def->make(), def->cycle_budget);
    ASSERT_EQ(o.status, core::RunStatus::kOk);
    j = core::RunReport::from(o.stats).to_json();
  }
  EXPECT_EQ(json[0], json[1]);
}

}  // namespace
}  // namespace smt::host
