// Tests for the synthetic-stream generators and runners (paper §4): the
// ILP construction, single-stream CPI behaviour, and co-execution
// interactions that Figures 1 and 2 are built from.
#include <gtest/gtest.h>

#include "core/machine.h"
#include "streams/stream_gen.h"
#include "streams/stream_runner.h"

namespace smt::streams {
namespace {

StreamSpec spec(StreamKind k, IlpLevel ilp, uint64_t ops = 60'000) {
  StreamSpec s;
  s.kind = k;
  s.ilp = ilp;
  s.ops = ops;
  return s;
}

double fadd_lat() {
  return static_cast<double>(core::MachineConfig{}.core.lat_fadd);
}

TEST(StreamGen, ProgramsAreWellFormed) {
  mem::MemoryLayout lay;
  for (StreamKind k :
       {StreamKind::kFAdd, StreamKind::kFSub, StreamKind::kFMul,
        StreamKind::kFDiv, StreamKind::kFAddMul, StreamKind::kFLoad,
        StreamKind::kFStore, StreamKind::kIAdd, StreamKind::kISub,
        StreamKind::kIMul, StreamKind::kIDiv, StreamKind::kILoad,
        StreamKind::kIStore}) {
    for (IlpLevel l : {IlpLevel::kMin, IlpLevel::kMed, IlpLevel::kMax}) {
      isa::Program p = build_stream(spec(k, l, 1000), lay, 0);
      EXPECT_GT(p.size(), 10u) << p.name();
      EXPECT_EQ(p.at(p.size() - 1).op, isa::Opcode::kExit);
    }
  }
}

TEST(StreamGen, LabelsNameKindAndIlp) {
  EXPECT_EQ(spec(StreamKind::kFAdd, IlpLevel::kMin).label(), "fadd.minILP");
  EXPECT_EQ(spec(StreamKind::kIStore, IlpLevel::kMax).label(),
            "istore.maxILP");
  EXPECT_EQ(spec(StreamKind::kFAddMul, IlpLevel::kMed).label(),
            "fadd-mul.medILP");
}

TEST(StreamGen, Predicates) {
  EXPECT_TRUE(is_fp_stream(StreamKind::kFAddMul));
  EXPECT_TRUE(is_fp_stream(StreamKind::kFLoad));
  EXPECT_FALSE(is_fp_stream(StreamKind::kILoad));
  EXPECT_TRUE(is_memory_stream(StreamKind::kIStore));
  EXPECT_FALSE(is_memory_stream(StreamKind::kIAdd));
}

// --- Figure 1 shapes -------------------------------------------------------

TEST(SingleStream, FaddMinIlpRunsAtUnitLatency) {
  const StreamMeasurement r = run_single(spec(StreamKind::kFAdd, IlpLevel::kMin));
  EXPECT_NEAR(r.cpi[0], fadd_lat(), 0.8);
}

TEST(SingleStream, FaddMaxIlpSaturatesTheAdder) {
  const StreamMeasurement r = run_single(spec(StreamKind::kFAdd, IlpLevel::kMax));
  EXPECT_LT(r.cpi[0], 1.4);
}

TEST(SingleStream, FaddIlpOrderingIsMonotone) {
  const double cmin = run_single(spec(StreamKind::kFAdd, IlpLevel::kMin)).cpi[0];
  const double cmed = run_single(spec(StreamKind::kFAdd, IlpLevel::kMed)).cpi[0];
  const double cmax = run_single(spec(StreamKind::kFAdd, IlpLevel::kMax)).cpi[0];
  EXPECT_GT(cmin, cmed);
  EXPECT_GT(cmed, cmax);
}

TEST(SingleStream, FdivIsIlpInsensitive) {
  const double cmin = run_single(spec(StreamKind::kFDiv, IlpLevel::kMin, 6000)).cpi[0];
  const double cmax = run_single(spec(StreamKind::kFDiv, IlpLevel::kMax, 6000)).cpi[0];
  // The unpipelined divider serializes regardless of chain count.
  EXPECT_NEAR(cmin, cmax, 0.15 * cmin);
}

TEST(SingleStream, IaddThroughputIsFlatAcrossIlp) {
  const double cmin = run_single(spec(StreamKind::kIAdd, IlpLevel::kMin)).cpi[0];
  const double cmax = run_single(spec(StreamKind::kIAdd, IlpLevel::kMax)).cpi[0];
  // Paper Fig. 1: "the throughput remains the same in all cases".
  EXPECT_LT(cmin / cmax, 1.8);
  EXPECT_LT(cmax, 1.0);
}

TEST(PairedStreams, FaddMaxIlpGainsNothingFromTlp) {
  // 2thr-maxILP: both threads fight over the FP_ADD port; cumulative
  // throughput equals single-threaded (Fig. 1).
  const double alone = run_single(spec(StreamKind::kFAdd, IlpLevel::kMax)).cpi[0];
  const StreamMeasurement pair = run_pair(spec(StreamKind::kFAdd, IlpLevel::kMax),
                                          spec(StreamKind::kFAdd, IlpLevel::kMax));
  EXPECT_NEAR(pair.cpi[0], 2.0 * alone, 0.5 * alone);
}

TEST(PairedStreams, FaddMinIlpCoexistsFreely) {
  // 2thr-minILP: latency-bound chains interleave with no slowdown — the
  // pure-win case of Fig. 1.
  const double alone = run_single(spec(StreamKind::kFAdd, IlpLevel::kMin)).cpi[0];
  const StreamMeasurement pair = run_pair(spec(StreamKind::kFAdd, IlpLevel::kMin),
                                          spec(StreamKind::kFAdd, IlpLevel::kMin));
  EXPECT_NEAR(pair.cpi[0], alone, 0.35 * alone);
}

// --- Figure 2 shapes -------------------------------------------------------

TEST(Slowdown, FdivVersusFdivIsAboveOne) {
  const double s = slowdown_factor(spec(StreamKind::kFDiv, IlpLevel::kMed, 4000),
                                   spec(StreamKind::kFDiv, IlpLevel::kMed, 40000));
  // Paper: 120%-140% slowdown; the shared unpipelined divider roughly
  // serializes the two streams.
  EXPECT_GT(s, 0.7);
  EXPECT_LT(s, 1.6);
}

TEST(Slowdown, IaddVersusIaddSerializes) {
  const double s = slowdown_factor(spec(StreamKind::kIAdd, IlpLevel::kMax),
                                   spec(StreamKind::kIAdd, IlpLevel::kMax, 600000));
  // Paper: ~100% slowdown, "equivalent to serial execution".
  EXPECT_NEAR(s, 1.0, 0.45);
}

TEST(Slowdown, FaddAndFmulCoexistAtMinIlp) {
  const double s = slowdown_factor(spec(StreamKind::kFAdd, IlpLevel::kMin),
                                   spec(StreamKind::kFMul, IlpLevel::kMin, 600000));
  // Paper: "in lowest ILP mode, all different pairs of fadd, fmul and fdiv
  // streams can co-exist perfectly".
  EXPECT_LT(s, 0.25);
}

TEST(Slowdown, ImulIsBarelyAffectedByCompany) {
  const double s = slowdown_factor(spec(StreamKind::kIMul, IlpLevel::kMed, 20000),
                                   spec(StreamKind::kIAdd, IlpLevel::kMed, 2000000));
  EXPECT_LT(s, 0.35);  // paper: "imul and idiv almost unaffected"
}

TEST(Slowdown, VictimMeasurementUsesOverlappedWindowOnly) {
  // The aggressor is much longer than the victim, so the victim's whole
  // run is overlapped; the measurement must not depend on aggressor
  // length beyond that.
  const double s1 = slowdown_factor(spec(StreamKind::kFAdd, IlpLevel::kMax, 30000),
                                    spec(StreamKind::kFAdd, IlpLevel::kMax, 300000));
  const double s2 = slowdown_factor(spec(StreamKind::kFAdd, IlpLevel::kMax, 30000),
                                    spec(StreamKind::kFAdd, IlpLevel::kMax, 3000000));
  EXPECT_NEAR(s1, s2, 0.15);
}

// --- Memory streams --------------------------------------------------------

TEST(MemoryStreams, LoadStreamTouchesItsVector) {
  StreamSpec s = spec(StreamKind::kILoad, IlpLevel::kMax, 32 * 1024);
  s.vector_words = 8 * 1024;  // 64 KiB, L2-resident
  const StreamMeasurement r = run_single(s);
  EXPECT_GT(r.instrs[0], s.ops);
}

TEST(MemoryStreams, TlpPreservesLoadStreamThroughput) {
  // Paper Fig. 1 reports a slight cumulative TLP gain for iload. In this
  // model the limiting resource (load-queue residence behind in-order
  // retirement) is statically partitioned, so cumulative throughput is
  // preserved rather than improved — a documented deviation; the key
  // contrast with the serializing iadd/iadd pair still holds.
  StreamSpec s = spec(StreamKind::kILoad, IlpLevel::kMin, 48 * 1024);
  s.vector_words = 16 * 1024;
  const double alone = run_single(s).cpi[0];
  const StreamMeasurement pair = run_pair(s, s);
  const double cumulative_single = 1.0 / alone;
  const double cumulative_pair = 1.0 / pair.cpi[0] + 1.0 / pair.cpi[1];
  EXPECT_GT(cumulative_pair, 0.85 * cumulative_single);
}

TEST(MemoryStreams, StoreStreamsRetireStores) {
  StreamSpec s = spec(StreamKind::kFStore, IlpLevel::kMed, 16 * 1024);
  s.vector_words = 4 * 1024;
  const StreamMeasurement r = run_single(s);
  EXPECT_GT(r.instrs[0], s.ops);
  EXPECT_GT(r.cpi[0], 0.0);
}

}  // namespace
}  // namespace smt::streams
