// Tests for the abstract-interpretation layer: the interval lattice
// (join/meet/widen algebra and monotonicity), the per-opcode transfer
// functions, branch-edge refinement, effective-address evaluation, the
// converged whole-program analyses (intervals, loop structure), and the
// never-aborts property over malformed and pseudo-random programs.
#include <cstdint>
#include <vector>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "analysis/lint.h"
#include "gtest/gtest.h"
#include "isa/asm_builder.h"

namespace smt::analysis {
namespace {

using isa::AsmBuilder;
using isa::BrCond;
using isa::Instr;
using isa::IReg;
using isa::Label;
using isa::Mem;
using isa::Opcode;

/// True iff every value of `inner` lies in `outer`.
bool subsumes(const Interval& outer, const Interval& inner) {
  if (inner.is_bottom()) return true;
  if (outer.is_bottom()) return false;
  return outer.lo <= inner.lo && inner.hi <= outer.hi;
}

// ---------------------------------------------------------------------------
// Lattice algebra
// ---------------------------------------------------------------------------

TEST(Interval, DefaultIsBottomAndConstructorsWork) {
  EXPECT_TRUE(Interval{}.is_bottom());
  EXPECT_TRUE(Interval::bottom().is_bottom());
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_FALSE(Interval::top().is_bottom());
  const Interval c = Interval::constant(7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));
}

TEST(Interval, JoinIsLeastUpperBound) {
  const Interval a = Interval::range(0, 4);
  const Interval b = Interval::range(10, 12);
  const Interval j = join(a, b);
  EXPECT_TRUE(subsumes(j, a));
  EXPECT_TRUE(subsumes(j, b));
  EXPECT_EQ(j, Interval::range(0, 12));
  // Identity and commutativity.
  EXPECT_EQ(join(Interval::bottom(), a), a);
  EXPECT_EQ(join(a, Interval::bottom()), a);
  EXPECT_EQ(join(a, b), join(b, a));
  EXPECT_EQ(join(Interval::top(), a), Interval::top());
}

TEST(Interval, MeetIsGreatestLowerBound) {
  const Interval a = Interval::range(0, 10);
  const Interval b = Interval::range(5, 20);
  EXPECT_EQ(meet(a, b), Interval::range(5, 10));
  EXPECT_TRUE(meet(Interval::range(0, 4), Interval::range(6, 9)).is_bottom());
  EXPECT_EQ(meet(Interval::top(), a), a);
}

TEST(Interval, JoinIsMonotone) {
  // a ⊆ a'  ⇒  join(a, c) ⊆ join(a', c), over a sample grid.
  const Interval samples[] = {
      Interval::bottom(),      Interval::constant(0), Interval::range(-3, 5),
      Interval::range(2, 100), Interval::top(),
  };
  for (const Interval& a : samples) {
    for (const Interval& a2 : samples) {
      if (!subsumes(a2, a)) continue;  // need a ⊆ a'
      for (const Interval& c : samples) {
        EXPECT_TRUE(subsumes(join(a2, c), join(a, c)));
      }
    }
  }
}

TEST(Interval, WidenCoversJoinAndStabilizes) {
  const Interval prev = Interval::range(0, 4);
  const Interval grown = Interval::range(0, 8);
  const Interval w = widen(prev, grown);
  // Widening over-approximates the join and jumps the moving bound.
  EXPECT_TRUE(subsumes(w, join(prev, grown)));
  EXPECT_EQ(w.lo, 0);
  EXPECT_EQ(w.hi, Interval::top().hi);
  // A non-growing argument is a fixpoint: widen(p, p) == p.
  EXPECT_EQ(widen(prev, prev), prev);
  // Chains terminate: widening twice more reaches a fixpoint.
  const Interval w2 = widen(w, join(w, Interval::range(-1, 100)));
  const Interval w3 = widen(w2, join(w2, Interval::range(-50, 1000)));
  EXPECT_EQ(widen(w3, w3), w3);
  EXPECT_TRUE(subsumes(w3, Interval::range(-50, 1000)));
}

// ---------------------------------------------------------------------------
// Arithmetic transfer helpers: exactness on constants, soundness, and
// wrap-to-top on overflow
// ---------------------------------------------------------------------------

TEST(IntervalArith, ConstantFolding) {
  const Interval two = Interval::constant(2);
  const Interval three = Interval::constant(3);
  EXPECT_EQ(itv_add(two, three), Interval::constant(5));
  EXPECT_EQ(itv_sub(two, three), Interval::constant(-1));
  EXPECT_EQ(itv_mul(two, three), Interval::constant(6));
  EXPECT_EQ(itv_div(Interval::constant(7), two), Interval::constant(3));
  EXPECT_EQ(itv_shl(three, two), Interval::constant(12));
  EXPECT_EQ(itv_shr(Interval::constant(12), two), Interval::constant(3));
}

TEST(IntervalArith, RangePropagation) {
  const Interval a = Interval::range(2, 3);
  EXPECT_EQ(itv_add(a, Interval::range(10, 20)), Interval::range(12, 23));
  EXPECT_EQ(itv_sub(a, Interval::constant(1)), Interval::range(1, 2));
  EXPECT_EQ(itv_mul(a, Interval::constant(4)), Interval::range(8, 12));
  // Negative factors flip the bounds.
  EXPECT_EQ(itv_mul(a, Interval::constant(-1)), Interval::range(-3, -2));
}

TEST(IntervalArith, DivisorContainingZeroIncludesTheZeroQuotient) {
  // The guest ALU defines x/0 == 0.
  const Interval q =
      itv_div(Interval::range(8, 16), Interval::range(0, 2));
  EXPECT_TRUE(q.contains(0));   // the /0 lane
  EXPECT_TRUE(q.contains(4));   // 8/2
  EXPECT_TRUE(q.contains(16));  // 16/1
}

TEST(IntervalArith, OverflowWrapsToTop) {
  // INT64_MAX / INT64_MIN are the ±inf encodings, so probe overflow with
  // the largest representable *finite* bounds.
  const Interval big = Interval::constant(INT64_MAX - 1);
  const Interval small = Interval::constant(INT64_MIN + 1);
  EXPECT_TRUE(itv_add(big, Interval::constant(2)).is_top());
  EXPECT_TRUE(itv_mul(big, Interval::constant(2)).is_top());
  EXPECT_TRUE(itv_sub(small, Interval::constant(2)).is_top());
  // One step shy of the edge stays exact.
  EXPECT_EQ(itv_add(big, Interval::constant(1)),
            Interval::constant(INT64_MAX));
}

TEST(IntervalArith, SoundnessOverSampledConcreteValues) {
  // For every helper and every pair of sample points drawn from two
  // ranges, the concrete result must land inside the abstract one.
  const Interval a = Interval::range(-6, 7);
  const Interval b = Interval::range(1, 5);
  struct Case {
    Interval (*f)(const Interval&, const Interval&);
    int64_t (*g)(int64_t, int64_t);
  };
  const Case cases[] = {
      {itv_add, [](int64_t x, int64_t y) { return x + y; }},
      {itv_sub, [](int64_t x, int64_t y) { return x - y; }},
      {itv_mul, [](int64_t x, int64_t y) { return x * y; }},
      {itv_div, [](int64_t x, int64_t y) { return y == 0 ? 0 : x / y; }},
      {itv_and, [](int64_t x, int64_t y) { return x & y; }},
      {itv_or, [](int64_t x, int64_t y) { return x | y; }},
      {itv_xor, [](int64_t x, int64_t y) { return x ^ y; }},
      {itv_shl,
       [](int64_t x, int64_t y) {
         return static_cast<int64_t>(static_cast<uint64_t>(x) << (y & 63));
       }},
      {itv_shr,
       [](int64_t x, int64_t y) {
         return static_cast<int64_t>(static_cast<uint64_t>(x) >> (y & 63));
       }},
  };
  for (const Case& c : cases) {
    const Interval r = c.f(a, b);
    for (int64_t x = a.lo; x <= a.hi; ++x) {
      for (int64_t y = b.lo; y <= b.hi; ++y) {
        EXPECT_TRUE(r.contains(c.g(x, y)))
            << c.g(x, y) << " escapes [" << r.lo << "," << r.hi << "]";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Branch-edge refinement
// ---------------------------------------------------------------------------

bool concrete(BrCond c, int64_t a, int64_t b) {
  switch (c) {
    case BrCond::kEq: return a == b;
    case BrCond::kNe: return a != b;
    case BrCond::kLt: return a < b;
    case BrCond::kLe: return a <= b;
    case BrCond::kGt: return a > b;
    case BrCond::kGe: return a >= b;
  }
  return false;
}

TEST(Refine, RestrictsToTheSatisfyingSubset) {
  const Interval a = Interval::range(0, 10);
  const Interval c5 = Interval::constant(5);
  EXPECT_EQ(refine(a, BrCond::kLt, c5), Interval::range(0, 4));
  EXPECT_EQ(refine(a, BrCond::kLe, c5), Interval::range(0, 5));
  EXPECT_EQ(refine(a, BrCond::kGt, c5), Interval::range(6, 10));
  EXPECT_EQ(refine(a, BrCond::kGe, c5), Interval::range(5, 10));
  EXPECT_EQ(refine(a, BrCond::kEq, c5), c5);
  // An interval can't encode a hole, so kNe must keep both ends...
  const Interval ne = refine(a, BrCond::kNe, c5);
  EXPECT_TRUE(ne.contains(0));
  EXPECT_TRUE(ne.contains(10));
  // ...but a contradicted constant is infeasible.
  EXPECT_TRUE(refine(c5, BrCond::kNe, c5).is_bottom());
  EXPECT_TRUE(refine(Interval::range(6, 10), BrCond::kLt, c5).is_bottom());
}

TEST(Refine, IsSoundForEveryCondOverSamples) {
  const Interval a = Interval::range(-3, 9);
  for (const BrCond c : {BrCond::kEq, BrCond::kNe, BrCond::kLt, BrCond::kLe,
                         BrCond::kGt, BrCond::kGe}) {
    for (int64_t rhs = -4; rhs <= 10; ++rhs) {
      const Interval r = refine(a, c, Interval::constant(rhs));
      for (int64_t v = a.lo; v <= a.hi; ++v) {
        if (concrete(c, v, rhs)) {
          EXPECT_TRUE(r.contains(v))
              << "cond " << static_cast<int>(c) << " v=" << v
              << " rhs=" << rhs;
        }
      }
    }
  }
}

TEST(Refine, NegateAndSwapMatchConcreteSemantics) {
  for (const BrCond c : {BrCond::kEq, BrCond::kNe, BrCond::kLt, BrCond::kLe,
                         BrCond::kGt, BrCond::kGe}) {
    for (int64_t a = -2; a <= 2; ++a) {
      for (int64_t b = -2; b <= 2; ++b) {
        EXPECT_NE(concrete(c, a, b), concrete(negate(c), a, b));
        EXPECT_EQ(concrete(c, a, b), concrete(swap_operands(c), b, a));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-opcode transfer functions (every opcode reg_reads/reg_writes
// classifies must have sound interval semantics)
// ---------------------------------------------------------------------------

Instr alu(Opcode op, int rd, int rs1, int rs2) {
  Instr in;
  in.op = op;
  in.rd = static_cast<isa::RegId>(rd);
  in.rs1 = static_cast<isa::RegId>(rs1);
  in.rs2 = static_cast<isa::RegId>(rs2);
  return in;
}

TEST(Transfer, AluOpsComputeOnIntervals) {
  RegState s = RegState::entry_top();
  s.r[0] = Interval::range(2, 3);
  s.r[1] = Interval::constant(10);

  RegState t = s;
  interval_transfer(alu(Opcode::kIAdd, 2, 0, 1), &t);
  EXPECT_EQ(t.r[2], Interval::range(12, 13));

  t = s;
  interval_transfer(alu(Opcode::kISub, 2, 1, 0), &t);
  EXPECT_EQ(t.r[2], Interval::range(7, 8));

  t = s;
  interval_transfer(alu(Opcode::kIMul, 2, 0, 1), &t);
  EXPECT_EQ(t.r[2], Interval::range(20, 30));

  t = s;
  interval_transfer(alu(Opcode::kIDiv, 2, 1, 0), &t);
  EXPECT_TRUE(t.r[2].contains(5));  // 10/2
  EXPECT_TRUE(t.r[2].contains(3));  // 10/3

  t = s;
  interval_transfer(alu(Opcode::kIMov, 2, 0, 0), &t);
  EXPECT_EQ(t.r[2], s.r[0]);

  t = s;
  Instr movi = alu(Opcode::kIMovImm, 2, 0, 0);
  movi.imm = 42;
  interval_transfer(movi, &t);
  EXPECT_EQ(t.r[2], Interval::constant(42));

  t = s;
  Instr addi = alu(Opcode::kIAdd, 2, 0, 0);
  addi.use_imm = true;
  addi.imm = 100;
  interval_transfer(addi, &t);
  EXPECT_EQ(t.r[2], Interval::range(102, 103));
}

TEST(Transfer, LoadsAndXchgClobberTheDestinationToTop) {
  RegState s = RegState::entry_top();
  s.r[3] = Interval::constant(1);
  Instr ld = alu(Opcode::kLoad, 3, 0, 0);
  ld.mem.base = static_cast<isa::RegId>(0);
  interval_transfer(ld, &s);
  EXPECT_TRUE(s.r[3].is_top());

  s.r[4] = Interval::constant(2);
  Instr xc = alu(Opcode::kXchg, 4, 4, 0);
  xc.mem.base = static_cast<isa::RegId>(0);
  interval_transfer(xc, &s);
  EXPECT_TRUE(s.r[4].is_top());
}

TEST(Transfer, EveryOpcodeHasSoundNeverAbortingSemantics) {
  // Walk the whole opcode set: the transfer must neither abort nor
  // disturb integer registers an opcode does not write.
  for (int op = 0; op < static_cast<int>(Opcode::kNumOpcodes); ++op) {
    Instr in = alu(static_cast<Opcode>(op), 2, 0, 1);
    in.mem.base = static_cast<isa::RegId>(0);
    in.target = 0;
    RegState s = RegState::entry_top();
    for (int r = 0; r < isa::kNumIRegs; ++r) {
      s.r[r] = Interval::constant(r);
    }
    const RegState before = s;
    interval_transfer(in, &s);
    const uint32_t writes = reg_writes(in);
    for (int r = 0; r < isa::kNumIRegs; ++r) {
      if ((writes & (1u << r)) == 0) {
        EXPECT_EQ(s.r[r], before.r[r])
            << "opcode " << op << " clobbered untouched r" << r;
      }
    }
  }
}

TEST(Transfer, EvalAddrCombinesBaseIndexScaleDisp) {
  RegState s = RegState::entry_top();
  s.r[1] = Interval::range(0x100, 0x200);
  s.r[2] = Interval::range(0, 4);
  isa::MemRef m;
  m.base = static_cast<isa::RegId>(1);
  m.disp = 8;
  EXPECT_EQ(eval_addr(m, s), Interval::range(0x108, 0x208));
  m.index = static_cast<isa::RegId>(2);
  m.scale_log2 = 3;
  EXPECT_EQ(eval_addr(m, s), Interval::range(0x108, 0x228));
  // An absolute operand (no registers) is a constant.
  isa::MemRef abs;
  abs.disp = 0x9000;
  EXPECT_EQ(eval_addr(abs, s), Interval::constant(0x9000));
}

// ---------------------------------------------------------------------------
// Whole-program analyses
// ---------------------------------------------------------------------------

isa::Program counted_loop(int64_t n) {
  AsmBuilder a("counted");
  a.imovi(IReg::R0, 0);
  const Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, n, loop);
  a.exit();
  return a.take();
}

TEST(Analyze, IntervalsBoundACountedLoop) {
  const isa::Program p = counted_loop(8);
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  // At the loop head the counter is pinned below the bound; at the exit
  // block the fall-through refinement forces it to exactly the bound.
  const uint32_t body = g.block_of[1];
  const uint32_t exit_b = g.block_of[3];
  EXPECT_TRUE(subsumes(Interval::range(0, 7), ia.in[body].r[0]));
  EXPECT_EQ(ia.in[exit_b].r[0], Interval::constant(8));
}

TEST(Analyze, LoopInfoResolvesTripsAndFrequencies) {
  const isa::Program p = counted_loop(8);
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  const LoopInfo li = analyze_loops(p, g, ia);
  EXPECT_TRUE(li.reducible);
  EXPECT_TRUE(li.exact);
  ASSERT_EQ(li.loops.size(), 1u);
  EXPECT_TRUE(li.loops[0].trips_exact);
  EXPECT_EQ(li.loops[0].trips, 8u);
  const uint32_t body = g.block_of[1];
  EXPECT_EQ(li.freq[body], 8u);
  EXPECT_EQ(li.freq[g.block_of[0]], 1u);
  EXPECT_TRUE(li.dominates(g.block_of[0], body));
  EXPECT_FALSE(li.dominates(body, g.block_of[0]));
}

TEST(Analyze, NestedLoopsMultiplyFrequencies) {
  AsmBuilder a("nest");
  a.imovi(IReg::R0, 0);
  const Label outer = a.here();
  a.imovi(IReg::R1, 0);
  const Label inner = a.here();
  a.iaddi(IReg::R1, IReg::R1, 1);
  a.bri(BrCond::kLt, IReg::R1, 5, inner);
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 3, outer);
  a.exit();
  const isa::Program p = a.take();
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  const LoopInfo li = analyze_loops(p, g, ia);
  EXPECT_TRUE(li.exact);
  ASSERT_EQ(li.loops.size(), 2u);
  EXPECT_EQ(li.freq[g.block_of[2]], 15u);  // inner body: 3 * 5
  EXPECT_EQ(li.freq[g.block_of[4]], 3u);   // outer tail
}

// ---------------------------------------------------------------------------
// Robustness: the analyses never abort on malformed programs
// ---------------------------------------------------------------------------

void analyze_everything(const isa::Program& p) {
  const Cfg g = Cfg::build(p);
  const IntervalAnalysis ia = analyze_intervals(p, g);
  (void)analyze_loops(p, g, ia);
  (void)lint_program(p);  // runs every check on top of the same substrate
}

TEST(Robustness, MalformedSeedsDegradeGracefully) {
  // Empty program.
  analyze_everything(isa::Program("empty", {}));

  // Single-instruction self-loop.
  {
    std::vector<Instr> code(1);
    code[0].op = Opcode::kJmp;
    code[0].target = 0;
    analyze_everything(isa::Program("self", std::move(code)));
  }
  // Falls off the end.
  {
    std::vector<Instr> code(2);
    analyze_everything(isa::Program("fall", std::move(code)));
  }
  // Branch target out of range / unresolved.
  {
    std::vector<Instr> code(2);
    code[0].op = Opcode::kBr;
    code[0].rs1 = static_cast<isa::RegId>(0);
    code[0].use_imm = true;
    code[0].target = 99;
    code[1].op = Opcode::kExit;
    analyze_everything(isa::Program("wild-target", std::move(code)));
  }
  {
    std::vector<Instr> code(2);
    code[0].op = Opcode::kJmp;
    code[0].target = -1;
    code[1].op = Opcode::kExit;
    analyze_everything(isa::Program("unresolved", std::move(code)));
  }
}

TEST(Robustness, PseudoRandomProgramsNeverAbort) {
  // Deterministic LCG fuzz: structurally arbitrary (but decodable)
  // programs through the full analysis stack.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  const auto next = [&seed] {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = 1 + next() % 16;
    std::vector<Instr> code(len);
    for (Instr& in : code) {
      in.op = static_cast<Opcode>(next() %
                                  static_cast<uint64_t>(Opcode::kNumOpcodes));
      in.rd = static_cast<isa::RegId>(next() % isa::kNumRegs);
      in.rs1 = static_cast<isa::RegId>(next() % isa::kNumRegs);
      in.rs2 = static_cast<isa::RegId>(next() % isa::kNumRegs);
      in.use_imm = next() % 2 != 0;
      in.cond = static_cast<BrCond>(next() % 6);
      in.imm = static_cast<int64_t>(next()) - (1 << 30);
      in.mem.base = next() % 3 == 0
                        ? isa::kNoReg
                        : static_cast<isa::RegId>(next() % isa::kNumIRegs);
      in.mem.index = next() % 3 == 0
                         ? isa::kNoReg
                         : static_cast<isa::RegId>(next() % isa::kNumIRegs);
      in.mem.scale_log2 = static_cast<uint8_t>(next() % 4);
      in.mem.disp = static_cast<int64_t>(next() % 4096) - 2048;
      // Mostly in-range targets, sometimes wild ones.
      in.target = static_cast<int32_t>(next() % (len + 4)) - 2;
    }
    analyze_everything(
        isa::Program("fuzz" + std::to_string(trial), std::move(code)));
  }
}

}  // namespace
}  // namespace smt::analysis
