// Cross-module integration and property tests: determinism, counter
// consistency, stream-property sweeps and barrier stress.
#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.h"
#include "isa/asm_builder.h"
#include "kernels/bt.h"
#include "kernels/matmul.h"
#include "perfmon/events.h"
#include "profile/mix_profiler.h"
#include "streams/stream_gen.h"
#include "streams/stream_runner.h"
#include "sync/primitives.h"

namespace smt {
namespace {

using core::Machine;
using core::MachineConfig;
using isa::AsmBuilder;
using isa::BrCond;
using isa::IReg;
using perfmon::Event;
using streams::IlpLevel;
using streams::StreamKind;
using streams::StreamSpec;

// ---------------------------------------------------------------------------
// Determinism: the whole platform must be bit-reproducible.
// ---------------------------------------------------------------------------

TEST(Determinism, KernelRunsAreExactlyRepeatable) {
  auto run = [] {
    kernels::MatMulParams p;
    p.n = 16;
    p.tile = 4;
    p.mode = kernels::MmMode::kTlpPfetch;
    kernels::MatMulWorkload w(p);
    const core::RunStats st = core::run_workload(MachineConfig{}, w);
    return std::make_tuple(st.cycles, st.total(Event::kUopsRetired),
                           st.total(Event::kL2Misses),
                           st.total(Event::kMachineClears));
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, StreamPairsAreExactlyRepeatable) {
  StreamSpec s;
  s.kind = StreamKind::kFAdd;
  s.ilp = IlpLevel::kMed;
  s.ops = 20'000;
  const auto a = streams::run_pair(s, s);
  const auto b = streams::run_pair(s, s);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instrs[0], b.instrs[0]);
  EXPECT_EQ(a.instrs[1], b.instrs[1]);
}

// ---------------------------------------------------------------------------
// Counter consistency invariants.
// ---------------------------------------------------------------------------

TEST(CounterInvariants, DispatchIssueRetireBalance) {
  // No speculation in the model: every dispatched uop issues and retires.
  kernels::BtParams p;
  p.lines = 2;
  p.cells = 4;
  kernels::BtWorkload w(p);
  const core::RunStats st = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(st.verified);
  EXPECT_EQ(st.total(Event::kDispatchedUops), st.total(Event::kIssuedUops));
  EXPECT_EQ(st.total(Event::kDispatchedUops), st.total(Event::kInstrRetired));
}

TEST(CounterInvariants, ClassCountsPartitionRetired) {
  kernels::MatMulParams p;
  p.n = 16;
  p.tile = 4;
  kernels::MatMulWorkload w(p);
  Machine m{MachineConfig{}};
  profile::MixProfiler prof;
  m.core().set_retire_observer(&prof);
  w.setup(m);
  m.load_program(CpuId::kCpu0, w.programs()[0]);
  m.run();
  // The profiler's per-subunit counts sum exactly to the retired total.
  uint64_t sum = 0;
  for (int s = 0; s < static_cast<int>(profile::Subunit::kNumSubunits); ++s) {
    sum += prof.count(CpuId::kCpu0, static_cast<profile::Subunit>(s));
  }
  EXPECT_EQ(sum, m.counters().get(CpuId::kCpu0, Event::kInstrRetired));
}

TEST(CounterInvariants, L2MissesNeverExceedL2Accesses) {
  kernels::BtParams p;
  p.lines = 4;
  p.cells = 8;
  kernels::BtWorkload w(p);
  const core::RunStats st = core::run_workload(MachineConfig{}, w);
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId c = static_cast<CpuId>(i);
    EXPECT_LE(st.cpu(c, Event::kL2Misses), st.cpu(c, Event::kL2Accesses));
    EXPECT_LE(st.cpu(c, Event::kL2ReadMisses), st.cpu(c, Event::kL2Misses));
    EXPECT_LE(st.cpu(c, Event::kL2Accesses), st.cpu(c, Event::kL1Misses));
  }
}

TEST(CounterInvariants, EventSkipCountersMatchSingleCycleSteppingOnSpr) {
  // The strongest end-to-end check of the fast-forward attribution: the
  // SPR matmul with halt-throttled barriers exercises every skip source
  // (halt sleeps, pause fetch stalls, resource stalls, store drains,
  // outstanding misses) and every counter must come out bit-identical to
  // cycle-by-cycle stepping.
  kernels::MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = kernels::MmMode::kTlpPfetch;
  p.halt_barriers = true;
  core::RunStats st[2];
  for (int skip = 0; skip < 2; ++skip) {
    MachineConfig cfg;
    cfg.core.event_skip = skip == 1;
    kernels::MatMulWorkload w(p);
    st[skip] = core::run_workload(cfg, w);
    ASSERT_TRUE(st[skip].verified);
  }
  EXPECT_EQ(st[0].cycles, st[1].cycles);
  for (int i = 0; i < kNumLogicalCpus; ++i) {
    const CpuId c = static_cast<CpuId>(i);
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const auto ev = static_cast<Event>(e);
      EXPECT_EQ(st[0].cpu(c, ev), st[1].cpu(c, ev))
          << "cpu" << i << " " << perfmon::name(ev);
    }
  }
}

// ---------------------------------------------------------------------------
// Stream properties, swept over every kind x ILP level.
// ---------------------------------------------------------------------------

using StreamCase = std::tuple<StreamKind, IlpLevel>;

class StreamProperties : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamProperties, CoRunningNeverSpeedsAStreamUp) {
  const auto [kind, ilp] = GetParam();
  StreamSpec s;
  s.kind = kind;
  s.ilp = ilp;
  s.ops = kind == StreamKind::kFDiv || kind == StreamKind::kIDiv ? 3'000
                                                                 : 40'000;
  const double alone = streams::run_single(s).cpi[0];
  StreamSpec agg = s;
  agg.ops *= 3;
  const double with = streams::run_pair(s, agg).cpi[0];
  EXPECT_GE(with, 0.97 * alone) << s.label();
}

TEST_P(StreamProperties, IlpNeverHurtsSingleThreadedThroughput) {
  const auto [kind, ilp] = GetParam();
  if (ilp == IlpLevel::kMin) return;  // compare against min within the kind
  StreamSpec lo;
  lo.kind = kind;
  lo.ilp = IlpLevel::kMin;
  lo.ops = kind == StreamKind::kFDiv || kind == StreamKind::kIDiv ? 3'000
                                                                  : 40'000;
  StreamSpec hi = lo;
  hi.ilp = ilp;
  const double cpi_lo = streams::run_single(lo).cpi[0];
  const double cpi_hi = streams::run_single(hi).cpi[0];
  EXPECT_LE(cpi_hi, 1.05 * cpi_lo) << lo.label() << " vs " << hi.label();
}

TEST_P(StreamProperties, SymmetricPairsGetSymmetricService) {
  const auto [kind, ilp] = GetParam();
  StreamSpec s;
  s.kind = kind;
  s.ilp = ilp;
  s.ops = kind == StreamKind::kFDiv || kind == StreamKind::kIDiv ? 3'000
                                                                 : 40'000;
  const auto pair = streams::run_pair(s, s);
  EXPECT_NEAR(pair.cpi[0], pair.cpi[1], 0.12 * pair.cpi[0]) << s.label();
}

INSTANTIATE_TEST_SUITE_P(
    AllStreams, StreamProperties,
    ::testing::Combine(
        ::testing::Values(StreamKind::kFAdd, StreamKind::kFSub,
                          StreamKind::kFMul, StreamKind::kFDiv,
                          StreamKind::kFAddMul, StreamKind::kFLoad,
                          StreamKind::kFStore, StreamKind::kIAdd,
                          StreamKind::kISub, StreamKind::kIMul,
                          StreamKind::kIDiv, StreamKind::kILoad,
                          StreamKind::kIStore),
        ::testing::Values(IlpLevel::kMin, IlpLevel::kMed, IlpLevel::kMax)),
    [](const auto& info) {
      std::string s = std::string(streams::name(std::get<0>(info.param))) +
                      "_" + streams::name(std::get<1>(info.param));
      for (char& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

// ---------------------------------------------------------------------------
// Barrier stress: many episodes, both flavours, random-ish work imbalance.
// ---------------------------------------------------------------------------

class BarrierEpisodes : public ::testing::TestWithParam<int> {};

TEST_P(BarrierEpisodes, OrderedHandoffSurvivesManyEpisodes) {
  const int episodes = GetParam();
  mem::MemoryLayout lay(0x60000);
  sync::TwoThreadBarrier bar(lay, "stress");
  const Addr cell = lay.alloc("cell", 8);
  const Addr check = lay.alloc("check", 8);

  // Thread 0 writes e+1 before barrier e (even e), thread 1 (odd e), and
  // the other side reads and accumulates after it; unequal loop bodies
  // skew arrival order across episodes.
  AsmBuilder p0("t0");
  bar.emit_init(p0, IReg::R15);
  p0.imovi(IReg::R10, 0);
  for (int e = 0; e < episodes; ++e) {
    if (e % 2 == 0) {
      p0.imovi(IReg::R1, e + 1);
      p0.store(IReg::R1, isa::Mem::abs(cell));
    } else {
      // busy work to skew arrivals
      p0.imovi(IReg::R2, 0);
      isa::Label l = p0.here();
      p0.iaddi(IReg::R2, IReg::R2, 1);
      p0.bri(BrCond::kLt, IReg::R2, (e * 37) % 200, l);
    }
    bar.emit_wait(p0, 0, IReg::R15, IReg::R14,
                  e % 3 == 0 ? sync::SpinKind::kTight : sync::SpinKind::kPause);
    if (e % 2 == 1) {
      p0.load(IReg::R1, isa::Mem::abs(cell));
      p0.iadd(IReg::R10, IReg::R10, IReg::R1);
    }
    bar.emit_wait(p0, 0, IReg::R15, IReg::R14, sync::SpinKind::kPause);
  }
  p0.store(IReg::R10, isa::Mem::abs(check));
  p0.exit();

  AsmBuilder p1("t1");
  bar.emit_init(p1, IReg::R15);
  p1.imovi(IReg::R10, 0);
  for (int e = 0; e < episodes; ++e) {
    if (e % 2 == 1) {
      p1.imovi(IReg::R1, e + 1);
      p1.store(IReg::R1, isa::Mem::abs(cell));
    }
    bar.emit_wait(p1, 1, IReg::R15, IReg::R14, sync::SpinKind::kPause);
    if (e % 2 == 0) {
      p1.load(IReg::R1, isa::Mem::abs(cell));
      p1.iadd(IReg::R10, IReg::R10, IReg::R1);
    }
    bar.emit_wait(p1, 1, IReg::R15, IReg::R14, sync::SpinKind::kPause);
  }
  p1.store(IReg::R10, isa::Mem::abs(check + 64));
  p1.exit();

  Machine m;
  m.load_program(CpuId::kCpu0, p0.take());
  m.load_program(CpuId::kCpu1, p1.take());
  m.run();

  // Sum of episode ids each side observed: evens to t1, odds to t0.
  int64_t odd = 0, even = 0;
  for (int e = 0; e < episodes; ++e) {
    if (e % 2 == 0) {
      even += e + 1;
    } else {
      odd += e + 1;
    }
  }
  EXPECT_EQ(m.memory().read_i64(check), odd);
  EXPECT_EQ(m.memory().read_i64(check + 64), even);
}

INSTANTIATE_TEST_SUITE_P(EpisodeCounts, BarrierEpisodes,
                         ::testing::Values(1, 2, 3, 8, 16, 32));

}  // namespace
}  // namespace smt
