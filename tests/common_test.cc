// Tests for the common utilities: RNG determinism, statistics, and the
// table/number formatting the bench harness depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace smt {
namespace {

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForAGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
  }
  // Small bounds hit every residue (sanity against bias bugs).
  Rng r2(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r2.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoublesAreInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: SplitMix64(0) must produce the published sequence.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStats, EmptyIsDefined) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  // An empty accumulator has no extrema: 0.0 would masquerade as a seen
  // sample, so min/max report NaN instead.
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Helpers, SafeRatioAndRelErr) {
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_err(2.0, 2.0), 0.0);
  EXPECT_NEAR(rel_err(2.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(rel_err(0.0, 0.0), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// TextTable and formatting
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Every line has the same width (header, rule, rows).
  size_t first_len = s.find('\n');
  size_t pos = 0;
  for (int line = 0; pos < s.size(); ++line) {
    const size_t next = s.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, first_len) << "line " << line;
    pos = next + 1;
  }
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"k", "v"});
  t.add_row({"a,b", "1"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a;b,1"), std::string::npos);
}

TEST(TextTableDeath, ArityMismatchIsFatal) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(Format, FixedPoint) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(Format, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Format, EngineeringSuffixes) {
  EXPECT_EQ(fmt_eng(950, 0), "950");
  EXPECT_EQ(fmt_eng(1500, 1), "1.5K");
  EXPECT_EQ(fmt_eng(2.5e6, 1), "2.5M");
  EXPECT_EQ(fmt_eng(4.6e9, 2), "4.60G");
}

}  // namespace
}  // namespace smt
