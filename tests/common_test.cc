// Tests for the common utilities: RNG determinism, statistics, and the
// table/number formatting the bench harness depends on.
#include <gtest/gtest.h>

#include <cctype>
#include <cfloat>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace smt {
namespace {

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForAGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
  }
  // Small bounds hit every residue (sanity against bias bugs).
  Rng r2(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r2.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoublesAreInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: SplitMix64(0) must produce the published sequence.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStats, EmptyIsDefined) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  // An empty accumulator has no extrema: 0.0 would masquerade as a seen
  // sample, so min/max report NaN instead.
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Helpers, SafeRatioAndRelErr) {
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_err(2.0, 2.0), 0.0);
  EXPECT_NEAR(rel_err(2.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(rel_err(0.0, 0.0), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// TextTable and formatting
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Every line has the same width (header, rule, rows).
  size_t first_len = s.find('\n');
  size_t pos = 0;
  for (int line = 0; pos < s.size(); ++line) {
    const size_t next = s.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, first_len) << "line " << line;
    pos = next + 1;
  }
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"k", "v"});
  t.add_row({"a,b", "1"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a;b,1"), std::string::npos);
}

TEST(TextTableDeath, ArityMismatchIsFatal) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(Format, FixedPoint) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(Format, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Format, EngineeringSuffixes) {
  EXPECT_EQ(fmt_eng(950, 0), "950");
  EXPECT_EQ(fmt_eng(1500, 1), "1.5K");
  EXPECT_EQ(fmt_eng(2.5e6, 1), "2.5M");
  EXPECT_EQ(fmt_eng(4.6e9, 2), "4.60G");
}

// ---------------------------------------------------------------------------
// JSON double serialization
// ---------------------------------------------------------------------------

/// Serializes `v` through JsonWriter and re-parses the emitted literal.
double json_round_trip(double v) {
  JsonWriter w;
  w.value(v);
  const std::optional<JsonValue> parsed = parse_json(w.str());
  EXPECT_TRUE(parsed.has_value()) << w.str();
  EXPECT_TRUE(parsed->is_number()) << w.str();
  return parsed->number;
}

TEST(Json, DoublesRoundTripExactly) {
  // The old %.12g writer silently dropped significand bits; every awkward
  // double must now re-parse bit-for-bit equal.
  const std::vector<double> awkward = {
      0.0,
      1.0 / 3.0,
      0.1,
      2.0 / 3.0e10,
      1e-300,
      1.7976931348623157e308,          // DBL_MAX
      DBL_MIN,                         // smallest normal
      5e-324,                          // smallest denormal
      2.2250738585072011e-308,         // largest denormal neighborhood
      9007199254740992.0,              // 2^53
      9007199254740993.0,              // 2^53 + 1 (rounds to 2^53)
      9007199254740991.0,              // 2^53 - 1
      3.141592653589793,
      6.02214076e23,
      -1.2345678901234567e-89,
  };
  for (double v : awkward) {
    for (double signedv : {v, -v}) {
      const double back = json_round_trip(signedv);
      EXPECT_EQ(back, signedv) << "value " << signedv;
      EXPECT_EQ(std::signbit(back), std::signbit(signedv));
    }
  }
}

TEST(Json, DoublesRoundTripUnderRandomSweep) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    // Spread across magnitudes: mantissa in [0,1), exponent in [-80, 80].
    const double mantissa = rng.next_double();
    const int exp = static_cast<int>(rng.next_below(161)) - 80;
    const double v = std::ldexp(mantissa, exp);
    EXPECT_EQ(json_round_trip(v), v);
  }
}

TEST(Json, IntegralDoublesStayCompact) {
  JsonWriter w;
  w.value(2.0);
  EXPECT_EQ(w.str(), "2");  // shortest-form search must not bloat easy values
}

// ---------------------------------------------------------------------------
// Artifact-key sanitization
// ---------------------------------------------------------------------------

TEST(SanitizeArtifactKey, CleanKeysPassThroughVerbatim) {
  EXPECT_EQ(sanitize_artifact_key("mm.serial.n64"), "mm.serial.n64");
  EXPECT_EQ(sanitize_artifact_key("fig3_matmul.mm.tlp-fine.n128"),
            "fig3_matmul.mm.tlp-fine.n128");
}

TEST(SanitizeArtifactKey, DistinctDirtyKeysStayDistinct) {
  // "a/b" used to collapse onto the clean key "a_b" — both mapped to the
  // same report filename and the second write clobbered the first.
  const std::string slash = sanitize_artifact_key("a/b");
  EXPECT_NE(slash, "a_b");
  EXPECT_NE(slash, sanitize_artifact_key("a_b"));
  EXPECT_NE(sanitize_artifact_key("a/b"), sanitize_artifact_key("a:b"));
  EXPECT_NE(sanitize_artifact_key("cg.tlp-pfetch+work"),
            sanitize_artifact_key("cg.tlp-pfetch_work"));
}

TEST(SanitizeArtifactKey, ResultIsAlwaysFilenameSafe) {
  for (const std::string key :
       {"a/b", "a b", "cg.tlp-pfetch+work", "x:y|z*?", "plain"}) {
    const std::string s = sanitize_artifact_key(key);
    EXPECT_FALSE(s.empty());
    for (char c : s) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                  c == '_' || c == '-')
          << key << " -> " << s;
    }
    // Deterministic: same key, same fragment.
    EXPECT_EQ(s, sanitize_artifact_key(key));
  }
}

// ---------------------------------------------------------------------------
// Structured logger
// ---------------------------------------------------------------------------

TEST(Log, ParseLevelAndFormat) {
  log::Level lvl;
  EXPECT_TRUE(log::parse_level("debug", &lvl));
  EXPECT_EQ(lvl, log::Level::kDebug);
  EXPECT_TRUE(log::parse_level("WARN", &lvl));  // case-insensitive
  EXPECT_EQ(lvl, log::Level::kWarn);
  EXPECT_TRUE(log::parse_level("off", &lvl));
  EXPECT_EQ(lvl, log::Level::kOff);
  EXPECT_FALSE(log::parse_level("loud", &lvl));
  EXPECT_FALSE(log::parse_level("", &lvl));

  log::Format f;
  EXPECT_TRUE(log::parse_format("json", &f));
  EXPECT_EQ(f, log::Format::kJson);
  EXPECT_TRUE(log::parse_format("human", &f));
  EXPECT_EQ(f, log::Format::kHuman);
  EXPECT_FALSE(log::parse_format("xml", &f));
}

TEST(Log, HumanRenderingIsCompactKeyValue) {
  const std::string line =
      log::render(log::Format::kHuman, log::Level::kWarn, "watchdog expired",
                  {{"job", "mm.serial.n64"}, {"attempt", 1}}, 12345);
  EXPECT_EQ(line, "smt W watchdog expired  job=mm.serial.n64 attempt=1");
}

TEST(Log, HumanRenderingQuotesAwkwardValues) {
  const std::string line =
      log::render(log::Format::kHuman, log::Level::kError, "job failed",
                  {{"message", "verify failed: x=1"}}, 0);
  // Value holds spaces and '=': must come out quoted so the line stays
  // machine-splittable on unquoted whitespace.
  EXPECT_EQ(line, "smt E job failed  message=\"verify failed: x=1\"");
}

TEST(Log, JsonRenderingParsesAndCarriesTypedFields) {
  const std::string line = log::render(
      log::Format::kJson, log::Level::kInfo, "sweep starting",
      {{"jobs", 12}, {"ratio", 0.5}, {"ok", true}, {"out", "sw"}}, 777);
  const auto v = parse_json(line);
  ASSERT_TRUE(v.has_value() && v->is_object());
  EXPECT_EQ(v->find("ts_ms")->number, 777.0);
  EXPECT_EQ(v->find("level")->string, "info");
  EXPECT_EQ(v->find("msg")->string, "sweep starting");
  EXPECT_EQ(v->find("jobs")->number, 12.0);
  EXPECT_EQ(v->find("ratio")->number, 0.5);
  EXPECT_TRUE(v->find("ok")->boolean);
  EXPECT_EQ(v->find("out")->string, "sw");
}

TEST(Log, LevelThresholdGatesEnabled) {
  const log::Level before = log::level();
  log::set_level(log::Level::kWarn);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_FALSE(log::enabled(log::Level::kInfo));
  EXPECT_TRUE(log::enabled(log::Level::kWarn));
  EXPECT_TRUE(log::enabled(log::Level::kError));
  log::set_level(log::Level::kOff);
  EXPECT_FALSE(log::enabled(log::Level::kError));
  log::set_level(before);
}

// ---------------------------------------------------------------------------
// FNV-1a hashing / canonical JSON (smt_history's content addressing)
// ---------------------------------------------------------------------------

TEST(Hash, Fnv1a64KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64_hex("a"), "af63dc4c8601ec8c");
}

TEST(Json, CanonicalStringIsOrderAndWhitespaceInvariant) {
  const auto a = parse_json(R"({"b":2,"a":[1,2.5,"x"],"c":{"y":true}})");
  const auto b = parse_json(
      "{ \"c\" : { \"y\" : true },\n  \"a\" : [ 1, 2.5, \"x\" ],\n"
      "  \"b\" : 2 }");
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(to_canonical_string(*a), to_canonical_string(*b));
  EXPECT_EQ(to_canonical_string(*a),
            R"({"a":[1,2.5,"x"],"b":2,"c":{"y":true}})");
}

TEST(Json, CanonicalStringDistinguishesDifferentTrees) {
  const auto a = parse_json(R"({"x":1})");
  const auto b = parse_json(R"({"x":2})");
  EXPECT_NE(to_canonical_string(*a), to_canonical_string(*b));
}

}  // namespace
}  // namespace smt
