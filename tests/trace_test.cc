// Tests for the time-resolved telemetry subsystem: the windowed counter
// sampler, the cycle-stamped event recorder, and the two hard guarantees
// — tracing never perturbs a measurement, and window deltas are exact
// under event-skip fast-forward.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "kernels/matmul.h"
#include "perfmon/counters.h"
#include "perfmon/events.h"
#include "trace/recorder.h"
#include "trace/sampler.h"
#include "trace/telemetry.h"

namespace smt {
namespace {

using core::MachineConfig;
using core::RunStats;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;
using perfmon::Event;
using trace::CounterSampler;
using trace::TelemetryConfig;
using trace::TraceEvent;
using trace::TraceKind;
using trace::TraceRecorder;

constexpr CpuId kC0 = CpuId::kCpu0;
constexpr CpuId kC1 = CpuId::kCpu1;

/// Installs `cfg` as the process-global telemetry default for the scope
/// (Machine's constructor consults it) and restores "disabled" on exit.
struct ScopedGlobalTelemetry {
  explicit ScopedGlobalTelemetry(const TelemetryConfig& cfg) {
    trace::set_global_telemetry(cfg);
  }
  ~ScopedGlobalTelemetry() { trace::set_global_telemetry(TelemetryConfig{}); }
};

TelemetryConfig small_windows() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_window = 256;
  return cfg;
}

/// The paper's SPR matmul: worker + prefetcher with throttling barriers
/// (halt/IPI protocol when `halt_barriers`), the richest event source.
RunStats run_spr_matmul(bool traced, bool event_skip, bool halt_barriers) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  p.halt_barriers = halt_barriers;
  MatMulWorkload w(p);
  MachineConfig cfg;
  cfg.core.event_skip = event_skip;
  if (traced) {
    ScopedGlobalTelemetry g(small_windows());
    return core::run_workload(cfg, w);
  }
  return core::run_workload(cfg, w);
}

int count_kind(const std::vector<TraceEvent>& evs, TraceKind k) {
  int n = 0;
  for (const TraceEvent& e : evs) {
    if (e.kind == k) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// CounterSampler unit behavior
// ---------------------------------------------------------------------------

TEST(CounterSampler, BoundariesCutExactWindows) {
  perfmon::PerfCounters ctr;
  CounterSampler s(ctr, /*window=*/100);
  EXPECT_EQ(s.next_boundary(), 100u);

  ctr.add(kC0, Event::kInstrRetired, 7);
  s.on_boundary(100);
  ctr.add(kC0, Event::kInstrRetired, 5);
  ctr.add(kC1, Event::kL2ReadMisses, 2);
  s.on_boundary(200);

  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[0].begin, 0u);
  EXPECT_EQ(s.windows()[0].end, 100u);
  EXPECT_EQ(s.windows()[0].delta.get(kC0, Event::kInstrRetired), 7u);
  EXPECT_EQ(s.windows()[1].begin, 100u);
  EXPECT_EQ(s.windows()[1].end, 200u);
  EXPECT_EQ(s.windows()[1].delta.get(kC0, Event::kInstrRetired), 5u);
  EXPECT_EQ(s.windows()[1].delta.get(kC1, Event::kL2ReadMisses), 2u);
}

TEST(CounterSampler, FinalizeFlushesPartialTail) {
  perfmon::PerfCounters ctr;
  CounterSampler s(ctr, 100);
  s.on_boundary(100);
  ctr.add(kC0, Event::kUopsRetired, 3);
  s.finalize(150);
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[1].begin, 100u);
  EXPECT_EQ(s.windows()[1].end, 150u);
  EXPECT_EQ(s.windows()[1].delta.get(kC0, Event::kUopsRetired), 3u);
  // Finalizing again at the same cycle adds nothing.
  s.finalize(150);
  EXPECT_EQ(s.windows().size(), 2u);
}

TEST(CounterSampler, FinalizeCatchesUpMissedBoundaries) {
  // A hand-driven machine may never call on_boundary; finalize still
  // produces the dense window sequence.
  perfmon::PerfCounters ctr;
  CounterSampler s(ctr, 100);
  ctr.add(kC1, Event::kCyclesActive, 450);
  s.finalize(450);
  ASSERT_EQ(s.windows().size(), 5u);
  EXPECT_EQ(s.windows()[4].begin, 400u);
  EXPECT_EQ(s.windows()[4].end, 450u);
  uint64_t sum = 0;
  for (const auto& w : s.windows()) sum += w.delta.get(kC1, Event::kCyclesActive);
  EXPECT_EQ(sum, 450u);
}

// ---------------------------------------------------------------------------
// TraceRecorder unit behavior
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RingIsBoundedAndOldestFirst) {
  TraceRecorder rec(/*capacity=*/4, /*l2_burst_gap=*/0);
  for (int i = 0; i < 10; ++i) {
    rec.on_ipi_send(kC0, static_cast<Cycle>(i));
  }
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Oldest surviving event first.
  for (size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].ts, 6u + i);
    EXPECT_EQ(evs[i].kind, TraceKind::kIpiSend);
  }
}

TEST(TraceRecorder, PairsLockAcquireAndRelease) {
  TraceRecorder rec(64, 0);
  const Addr lock = 0x1000;
  const int ann = rec.annotate_lock(lock, "l");
  EXPECT_TRUE(rec.watches(lock));
  EXPECT_FALSE(rec.watches(lock + 8));

  rec.on_xchg(kC1, lock, /*loaded=*/1, 10);  // contended attempt: not held
  rec.on_xchg(kC1, lock, /*loaded=*/0, 20);  // acquire
  rec.on_store(kC1, lock, /*value=*/0, 50);  // release
  const auto evs = rec.events();
  ASSERT_EQ(count_kind(evs, TraceKind::kLockHeld), 1);
  for (const TraceEvent& e : evs) {
    if (e.kind != TraceKind::kLockHeld) continue;
    EXPECT_EQ(e.ts, 20u);
    EXPECT_EQ(e.ts2, 50u);
    EXPECT_EQ(e.cpu, 1);
    EXPECT_EQ(e.ann, ann);
  }
}

TEST(TraceRecorder, FinalizeClosesHeldLock) {
  TraceRecorder rec(64, 0);
  const Addr lock = 0x2000;
  rec.annotate_lock(lock, "l");
  rec.on_xchg(kC0, lock, 0, 5);
  rec.finalize(100);
  const auto evs = rec.events();
  ASSERT_EQ(count_kind(evs, TraceKind::kLockHeld), 1);
  EXPECT_EQ(evs[0].ts, 5u);
  EXPECT_EQ(evs[0].ts2, 100u);
}

TEST(TraceRecorder, PairsBarrierEpisodes) {
  TraceRecorder rec(64, 0);
  const Addr f0 = 0x100, f1 = 0x200;
  const int ann = rec.annotate_barrier(f0, f1, "b", /*spr=*/true);

  // Episode 1: cpu0 arrives first (stores episode counter 1), cpu1 later.
  rec.on_store(kC0, f0, 1, 10);
  rec.on_store(kC1, f1, 1, 40);
  const auto evs = rec.events();
  ASSERT_EQ(count_kind(evs, TraceKind::kBarrierEpisode), 1);
  ASSERT_EQ(count_kind(evs, TraceKind::kBarrierWait), 1);
  ASSERT_EQ(count_kind(evs, TraceKind::kSprHandoff), 1);
  for (const TraceEvent& e : evs) {
    if (e.kind == TraceKind::kBarrierEpisode) {
      EXPECT_EQ(e.ts, 10u);
      EXPECT_EQ(e.ts2, 40u);
      EXPECT_EQ(e.ann, ann);
      EXPECT_EQ(e.arg, 1u);
    } else if (e.kind == TraceKind::kBarrierWait) {
      // The early arriver (cpu0) waited 10 -> 40 on its own track.
      EXPECT_EQ(e.cpu, 0);
      EXPECT_EQ(e.ts, 10u);
      EXPECT_EQ(e.ts2, 40u);
    }
  }
}

TEST(TraceRecorder, GroupsL2MissBursts) {
  TraceRecorder rec(64, /*l2_burst_gap=*/50);
  rec.on_l2_miss(kC0, 100);
  rec.on_l2_miss(kC0, 120);
  rec.on_l2_miss(kC0, 140);
  rec.on_l2_miss(kC0, 500);  // beyond the gap: new burst
  rec.finalize(600);
  const auto evs = rec.events();
  ASSERT_EQ(count_kind(evs, TraceKind::kL2MissBurst), 2);
  EXPECT_EQ(evs[0].ts, 100u);
  EXPECT_EQ(evs[0].arg, 3u);
  EXPECT_EQ(evs[1].ts, 500u);
  EXPECT_EQ(evs[1].arg, 1u);
}

TEST(TraceRecorder, PairsHaltSpans) {
  TraceRecorder rec(64, 0);
  rec.on_halt_enter(kC1, 30);
  rec.on_halt_exit(kC1, 90);
  rec.on_halt_enter(kC1, 200);
  rec.finalize(250);  // still halted at the end of the run
  const auto evs = rec.events();
  ASSERT_EQ(count_kind(evs, TraceKind::kHaltSpan), 2);
  EXPECT_EQ(evs[0].ts, 30u);
  EXPECT_EQ(evs[0].ts2, 90u);
  EXPECT_EQ(evs[1].ts, 200u);
  EXPECT_EQ(evs[1].ts2, 250u);
}

// ---------------------------------------------------------------------------
// Hard guarantee 1: tracing never perturbs a measurement
// ---------------------------------------------------------------------------

TEST(Telemetry, FinalizeIsIdempotentAcrossCallSites) {
  // finalize() is reached from three sites (core::run_workload, bench
  // stats_from, report_from_machine) that may all touch one run's
  // telemetry. That used to work only by accident — the instruments
  // happened to tolerate re-finalizing at the *same* end cycle; the
  // explicit guard must make later calls no-ops even with a different
  // end, or the series would grow a bogus tail window / re-close spans.
  perfmon::PerfCounters ctr;
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_window = 100;
  trace::Telemetry t(cfg, ctr);
  ctr.add(kC0, Event::kInstrRetired, 7);
  t.recorder().on_halt_enter(kC1, 50);  // open span for finalize to close

  EXPECT_FALSE(t.finalized());
  t.finalize(150);
  EXPECT_TRUE(t.finalized());
  const size_t windows = t.sampler().windows().size();
  const size_t events = t.recorder().events().size();
  ASSERT_GT(windows, 0u);
  EXPECT_EQ(t.sampler().windows().back().end, 150u);

  t.finalize(150);
  t.finalize(400);  // later end: still a no-op
  EXPECT_EQ(t.sampler().windows().size(), windows);
  EXPECT_EQ(t.recorder().events().size(), events);
  EXPECT_EQ(t.sampler().windows().back().end, 150u);
}

TEST(Telemetry, TracingDoesNotPerturbAnyCounter) {
  for (const bool event_skip : {false, true}) {
    const RunStats off = run_spr_matmul(false, event_skip, true);
    const RunStats on = run_spr_matmul(true, event_skip, true);
    ASSERT_TRUE(off.verified);
    ASSERT_TRUE(on.verified);
    ASSERT_NE(on.telemetry, nullptr);
    EXPECT_EQ(off.telemetry, nullptr);
    EXPECT_EQ(on.cycles, off.cycles);
    for (int c = 0; c < kNumLogicalCpus; ++c) {
      for (int e = 0; e < perfmon::kNumEventValues; ++e) {
        const CpuId cpu = static_cast<CpuId>(c);
        const Event ev = static_cast<Event>(e);
        EXPECT_EQ(on.events.get(cpu, ev), off.events.get(cpu, ev))
            << "cpu" << c << " " << perfmon::name(ev)
            << " event_skip=" << event_skip;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hard guarantee 2: windows are exact under event-skip fast-forward
// ---------------------------------------------------------------------------

TEST(Telemetry, WindowsBitIdenticalAcrossEventSkip) {
  const RunStats skip = run_spr_matmul(true, true, true);
  const RunStats step = run_spr_matmul(true, false, true);
  ASSERT_NE(skip.telemetry, nullptr);
  ASSERT_NE(step.telemetry, nullptr);
  EXPECT_EQ(skip.cycles, step.cycles);

  const auto& ws = skip.telemetry->sampler().windows();
  const auto& wt = step.telemetry->sampler().windows();
  ASSERT_EQ(ws.size(), wt.size());
  ASSERT_GT(ws.size(), 1u);  // the run must actually span several windows
  for (size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].begin, wt[i].begin);
    EXPECT_EQ(ws[i].end, wt[i].end);
    for (int c = 0; c < kNumLogicalCpus; ++c) {
      for (int e = 0; e < perfmon::kNumEventValues; ++e) {
        const CpuId cpu = static_cast<CpuId>(c);
        const Event ev = static_cast<Event>(e);
        EXPECT_EQ(ws[i].delta.get(cpu, ev), wt[i].delta.get(cpu, ev))
            << "window " << i << " cpu" << c << " " << perfmon::name(ev);
      }
    }
  }
}

TEST(Telemetry, WindowDeltasSumToRunTotals) {
  for (const bool event_skip : {false, true}) {
    const RunStats stats = run_spr_matmul(true, event_skip, false);
    ASSERT_NE(stats.telemetry, nullptr);
    const auto& windows = stats.telemetry->sampler().windows();
    ASSERT_FALSE(windows.empty());
    // Windows tile [0, cycles) without gaps.
    EXPECT_EQ(windows.front().begin, 0u);
    EXPECT_EQ(windows.back().end, stats.cycles);
    for (size_t i = 1; i < windows.size(); ++i) {
      EXPECT_EQ(windows[i].begin, windows[i - 1].end);
    }
    for (int c = 0; c < kNumLogicalCpus; ++c) {
      for (int e = 0; e < perfmon::kNumEventValues; ++e) {
        const CpuId cpu = static_cast<CpuId>(c);
        const Event ev = static_cast<Event>(e);
        uint64_t sum = 0;
        for (const auto& w : windows) sum += w.delta.get(cpu, ev);
        EXPECT_EQ(sum, stats.events.get(cpu, ev))
            << "cpu" << c << " " << perfmon::name(ev)
            << " event_skip=" << event_skip;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end artifacts
// ---------------------------------------------------------------------------

TEST(Telemetry, SprRunRecordsTheExpectedEventKinds) {
  const RunStats stats = run_spr_matmul(true, true, true);
  ASSERT_NE(stats.telemetry, nullptr);
  const auto evs = stats.telemetry->recorder().events();
  EXPECT_EQ(stats.telemetry->recorder().dropped(), 0u);
  EXPECT_GT(count_kind(evs, TraceKind::kHaltSpan), 0);
  EXPECT_GT(count_kind(evs, TraceKind::kIpiSend), 0);
  EXPECT_GT(count_kind(evs, TraceKind::kIpiWake), 0);
  EXPECT_GT(count_kind(evs, TraceKind::kBarrierEpisode), 0);
  EXPECT_GT(count_kind(evs, TraceKind::kSprHandoff), 0);
  // Spans are well-formed and every event is within the run.
  for (const TraceEvent& e : evs) {
    EXPECT_LE(e.ts, e.ts2);
    EXPECT_LE(e.ts2, stats.cycles);
  }
}

TEST(Telemetry, ChromeTraceJsonIsWellFormed) {
  const RunStats stats = run_spr_matmul(true, true, true);
  ASSERT_NE(stats.telemetry, nullptr);
  const auto doc = parse_json(trace::chrome_trace_json(*stats.telemetry));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  bool saw_meta = false, saw_halt = false, saw_episode = false;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(name, nullptr);
    for (const char* key : {"pid", "tid", "ts"}) {
      if (ph->string == "M") break;  // metadata carries no ts
      const JsonValue* v = e.find(key);
      ASSERT_NE(v, nullptr) << key;
      ASSERT_TRUE(v->is_number()) << key;
    }
    if (ph->string == "X") {
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
    if (ph->string == "M") saw_meta = true;
    if (name->string == "halt") saw_halt = true;
    // Annotated events carry the annotation's name: "barrier_episode <bar>".
    if (name->string.rfind("barrier_episode", 0) == 0) saw_episode = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_halt);
  EXPECT_TRUE(saw_episode);
}

TEST(Telemetry, TracedReportUsesSchema2WithTimeseries) {
  const RunStats traced = run_spr_matmul(true, true, false);
  const auto doc =
      parse_json(core::RunReport::from(traced).to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string, "smt-run-report/2");
  const JsonValue* ts = doc->find("timeseries");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->find("window_cycles")->number, 256.0);
  EXPECT_FALSE(ts->find("windows")->array.empty());

  // Untraced runs keep the /1 schema with no timeseries section.
  const RunStats plain = run_spr_matmul(false, true, false);
  const auto doc1 = parse_json(core::RunReport::from(plain).to_json());
  ASSERT_TRUE(doc1.has_value());
  EXPECT_EQ(doc1->find("schema")->string, "smt-run-report/1");
  EXPECT_EQ(doc1->find("timeseries"), nullptr);
}

}  // namespace
}  // namespace smt
