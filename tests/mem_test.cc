// Unit tests for the memory system: backing store, caches, timed hierarchy.
#include <gtest/gtest.h>

#include "common/types.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"

namespace smt::mem {
namespace {

TEST(SimMemory, ReadWriteRoundTrip) {
  SimMemory m;
  m.write_u64(0x1000, 0xdeadbeefcafef00dull);
  EXPECT_EQ(m.read_u64(0x1000), 0xdeadbeefcafef00dull);
  m.write_f64(0x1008, 3.25);
  EXPECT_DOUBLE_EQ(m.read_f64(0x1008), 3.25);
  m.write_i64(0x1010, -17);
  EXPECT_EQ(m.read_i64(0x1010), -17);
}

TEST(SimMemory, UntouchedMemoryReadsZero) {
  SimMemory m;
  EXPECT_EQ(m.read_u64(0x123450008ull), 0u);
  EXPECT_DOUBLE_EQ(m.read_f64(0x9990000), 0.0);
}

TEST(SimMemory, PagesAllocatedLazily) {
  SimMemory m;
  EXPECT_EQ(m.num_pages(), 0u);
  m.write_u64(0, 1);
  m.write_u64(SimMemory::kPageBytes * 100, 2);
  EXPECT_EQ(m.num_pages(), 2u);
  (void)m.read_u64(SimMemory::kPageBytes * 555);  // reads do not allocate
  EXPECT_EQ(m.num_pages(), 2u);
}

TEST(SimMemory, ExchangeIsAtomicSwap) {
  SimMemory m;
  m.write_u64(64, 5);
  EXPECT_EQ(m.exchange_u64(64, 9), 5u);
  EXPECT_EQ(m.read_u64(64), 9u);
}

TEST(SimMemory, ArrayHelpers) {
  SimMemory m;
  const double v[3] = {1.0, 2.0, 3.0};
  m.store_f64_array(0x2000, v);
  double out[3] = {};
  m.load_f64_array(0x2000, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  m.fill_f64(0x3000, 4, 7.5);
  EXPECT_DOUBLE_EQ(m.read_f64(0x3000 + 24), 7.5);
}

TEST(MemoryLayout, RegionsAreLineSeparatedAndAligned) {
  MemoryLayout layout(0x10000, 64);
  const Addr a = layout.alloc("a", 8);
  const Addr b = layout.alloc("b", 8);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 64);  // no shared cache line
  EXPECT_EQ(layout.regions().size(), 2u);
  EXPECT_EQ(layout.regions()[0].name, "a");
}

TEST(MemoryLayout, AllocWords) {
  MemoryLayout layout;
  const Addr v = layout.alloc_words("vec", 1000);
  EXPECT_EQ(v % 64, 0u);
  EXPECT_EQ(layout.regions()[0].bytes, 8000u);
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64B = 512 B.
  return {"t", 512, 2, 64};
}

TEST(Cache, HitAfterFill) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x13f, false).hit);   // same line
  EXPECT_FALSE(c.access(0x140, false).hit);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());
  // Three lines mapping to set 0 (set stride = 4 lines = 256B).
  c.access(0x0000, false);
  c.access(0x0100, false);
  c.access(0x0000, false);           // touch line0: line at 0x100 is LRU
  const auto r = c.access(0x0200, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line, 0x100u);
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x0100));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(small_cache());
  c.access(0x0000, true);  // dirty
  c.access(0x0100, false);
  const auto r = c.access(0x0200, false);  // evicts 0x0000 (LRU, dirty)
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_line, 0x0u);
}

TEST(Cache, WriteHitSetsDirty) {
  Cache c(small_cache());
  c.access(0x0000, false);
  c.access(0x0000, true);   // now dirty
  c.access(0x0100, false);
  c.access(0x0100, false);  // line0 is LRU
  const auto r = c.access(0x0200, false);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, ProbeDoesNotDisturbLru) {
  Cache c(small_cache());
  c.access(0x0000, false);
  c.access(0x0100, false);  // LRU order: 0x0000 older
  EXPECT_TRUE(c.probe(0x0000));
  // probe must not refresh 0x0000: it is still the victim.
  const auto r = c.access(0x0200, false);
  EXPECT_EQ(r.evicted_line, 0x0u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(small_cache());
  c.access(0x40, true);
  EXPECT_TRUE(c.invalidate(0x40));  // was dirty
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_FALSE(c.invalidate(0x40));
}

TEST(Cache, FlushAllEmptiesEverySet) {
  Cache c(small_cache());
  for (Addr a = 0; a < 512; a += 64) c.access(a, false);
  c.flush_all();
  for (Addr a = 0; a < 512; a += 64) EXPECT_FALSE(c.probe(a));
}

// ---------------------------------------------------------------------------
// Hierarchy timing
// ---------------------------------------------------------------------------

HierConfig tiny_hier() {
  HierConfig h;
  h.l1 = {"L1", 1024, 2, 64};
  h.l2 = {"L2", 8192, 4, 64};
  h.l1_hit_lat = 3;
  h.l2_hit_lat = 18;
  h.mem_lat = 200;
  h.num_mshrs = 2;
  h.bus_cycles_per_line = 10;
  return h;
}

TEST(Hierarchy, LatencyLadder) {
  CacheHierarchy h(tiny_hier());
  // Cold: memory access.
  auto r0 = h.access(0x1000, false, CpuId::kCpu0, 0);
  EXPECT_EQ(r0.served_by, ServedBy::kMemory);
  EXPECT_TRUE(r0.l2_miss);
  EXPECT_EQ(r0.ready, 200u);  // bus grant at 0 + memory latency

  // Warm L1 (after fill completes).
  auto r1 = h.access(0x1000, false, CpuId::kCpu0, 300);
  EXPECT_EQ(r1.served_by, ServedBy::kL1);
  EXPECT_EQ(r1.ready, 303u);

  // L2 hit: evict from tiny L1 by touching other sets... use a line that
  // maps to the same L1 set (L1 set stride = 8 lines = 512B).
  h.access(0x1200, false, CpuId::kCpu0, 600);
  h.access(0x1400, false, CpuId::kCpu0, 900);
  auto r2 = h.access(0x1000, false, CpuId::kCpu0, 1500);
  EXPECT_EQ(r2.served_by, ServedBy::kL2);
  EXPECT_EQ(r2.ready, 1518u);
}

TEST(Hierarchy, InFlightMissesMerge) {
  CacheHierarchy h(tiny_hier());
  auto r0 = h.access(0x1000, false, CpuId::kCpu0, 0);
  auto r1 = h.access(0x1008, false, CpuId::kCpu1, 5);  // same line, in flight
  EXPECT_EQ(r1.served_by, ServedBy::kInFlight);
  EXPECT_EQ(r1.ready, r0.ready);
  // Only one bus-level miss counted.
  EXPECT_EQ(h.stats(CpuId::kCpu0).l2_misses, 1u);
  EXPECT_EQ(h.stats(CpuId::kCpu1).l2_misses, 0u);
  // But the second access was not an L1 hit.
  EXPECT_EQ(h.stats(CpuId::kCpu1).l1_misses, 1u);
}

TEST(Hierarchy, MshrsLimitMemoryParallelism) {
  CacheHierarchy h(tiny_hier());  // 2 MSHRs
  auto r0 = h.access(0x10000, false, CpuId::kCpu0, 0);
  auto r1 = h.access(0x20000, false, CpuId::kCpu0, 0);
  auto r2 = h.access(0x30000, false, CpuId::kCpu0, 0);
  EXPECT_GT(r1.ready, r0.ready);  // bus serialization already orders them
  // The third miss cannot even start until an MSHR frees.
  EXPECT_GE(r2.ready, r0.ready + 200);
}

TEST(Hierarchy, StoreMissCountsAsMissButNotReadMiss) {
  CacheHierarchy h(tiny_hier());
  h.access(0x5000, true, CpuId::kCpu0, 0);
  EXPECT_EQ(h.stats(CpuId::kCpu0).l2_misses, 1u);
  EXPECT_EQ(h.stats(CpuId::kCpu0).l2_read_misses, 0u);
}

TEST(Hierarchy, PrefetchFillsL2) {
  CacheHierarchy h(tiny_hier());
  const Cycle ready = h.prefetch(0x7000, false, CpuId::kCpu1, 0);
  EXPECT_GT(ready, 0u);
  EXPECT_EQ(h.stats(CpuId::kCpu1).prefetches, 1u);
  EXPECT_EQ(h.stats(CpuId::kCpu1).prefetch_fills, 1u);
  // After the fill, a demand access is an L2 hit (prefetch skipped L1).
  auto r = h.access(0x7000, false, CpuId::kCpu0, ready + 1);
  EXPECT_EQ(r.served_by, ServedBy::kL2);
  // The demand access after a prefetch is NOT a bus-level miss.
  EXPECT_EQ(h.stats(CpuId::kCpu0).l2_misses, 0u);
}

TEST(Hierarchy, PrefetchToL1) {
  CacheHierarchy h(tiny_hier());
  const Cycle ready = h.prefetch(0x7000, true, CpuId::kCpu1, 0);
  auto r = h.access(0x7000, false, CpuId::kCpu0, ready + 1);
  EXPECT_EQ(r.served_by, ServedBy::kL1);
}

TEST(Hierarchy, RedundantPrefetchDoesNotRefetch) {
  CacheHierarchy h(tiny_hier());
  h.prefetch(0x7000, false, CpuId::kCpu0, 0);
  h.prefetch(0x7000, false, CpuId::kCpu0, 500);
  EXPECT_EQ(h.stats(CpuId::kCpu0).prefetches, 2u);
  EXPECT_EQ(h.stats(CpuId::kCpu0).prefetch_fills, 1u);
}

TEST(Hierarchy, PerPcMissAttribution) {
  CacheHierarchy h(tiny_hier());
  h.set_track_pc_misses(true);
  h.access(0x10000, false, CpuId::kCpu0, 0, /*pc=*/7);
  h.access(0x20000, false, CpuId::kCpu0, 0, /*pc=*/7);
  h.access(0x30000, false, CpuId::kCpu0, 1000, /*pc=*/9);
  const auto& m = h.pc_l2_misses(CpuId::kCpu0);
  EXPECT_EQ(m.at(7), 2u);
  EXPECT_EQ(m.at(9), 1u);
}

TEST(Hierarchy, ResetStatsClearsCounters) {
  CacheHierarchy h(tiny_hier());
  h.access(0x1000, false, CpuId::kCpu0, 0);
  h.reset_stats();
  EXPECT_EQ(h.stats(CpuId::kCpu0).accesses, 0u);
  EXPECT_EQ(h.stats(CpuId::kCpu0).l2_misses, 0u);
}

}  // namespace
}  // namespace smt::mem
