// Tests for the host metrics registry: bucket-boundary placement,
// snapshot-vs-live consistency, JSON emission, and multi-threaded update
// safety (the last is what the CI tsan build of this binary exercises).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "host/metrics.h"

namespace smt::host {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndHighWatermark) {
  Gauge g;
  g.set(5);
  g.add(-3);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max(), 12);
  g.set(0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 12) << "watermark must survive the drop";
}

TEST(Histogram, BoundsAreInclusiveUpperEdges) {
  Histogram h({1.0, 10.0, 100.0});
  // One observation per interesting position: at each edge (inclusive),
  // just above each edge, and beyond the last bound (overflow).
  h.observe(0.5);    // bucket 0 (le 1)
  h.observe(1.0);    // bucket 0 — edge belongs to its bucket
  h.observe(1.001);  // bucket 1 (le 10)
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2 (le 100)
  h.observe(100.5);  // bucket 3 (overflow)
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 100.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.5);
}

TEST(Histogram, EmptyHistogramHasNaNExtremaAndZeroBuckets) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{0, 0, 0}));
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindClashesDie) {
  MetricsRegistry reg;
  reg.counter("c");
  reg.histogram("h", {1.0});
  EXPECT_DEATH(reg.gauge("c"), "c");
  EXPECT_DEATH(reg.counter("h"), "h");
  // Same name, different bucket layout: one histogram cannot be two
  // shapes at once.
  EXPECT_DEATH(reg.histogram("h", {1.0, 2.0}), "h");
}

TEST(MetricsRegistry, SnapshotMatchesLiveValues) {
  MetricsRegistry reg;
  reg.counter("jobs").inc(3);
  reg.gauge("depth").set(7);
  reg.gauge("depth").add(-7);
  Histogram& h = reg.histogram("wall", {10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(99.0);

  const MetricsRegistry::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("jobs"), 3u);
  EXPECT_EQ(s.gauges.at("depth").value, 0);
  EXPECT_EQ(s.gauges.at("depth").max, 7);
  const MetricsRegistry::HistogramSnapshot& hs = s.histograms.at("wall");
  EXPECT_EQ(hs.bounds, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(hs.counts, (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 119.0);
  EXPECT_DOUBLE_EQ(hs.min, 5.0);
  EXPECT_DOUBLE_EQ(hs.max, 99.0);

  // The snapshot is a copy: later updates must not retro-change it.
  reg.counter("jobs").inc();
  EXPECT_EQ(s.counters.at("jobs"), 3u);
}

TEST(MetricsRegistry, JsonSnapshotParsesAndRoundTrips) {
  MetricsRegistry reg;
  reg.counter("a.b").inc(2);
  reg.gauge("g").set(-4);
  reg.histogram("h", {1.0}).observe(3.0);
  smt::JsonWriter w;
  w.begin_object();
  append_metrics_json(w, reg.snapshot());
  w.end_object();

  const auto v = smt::parse_json(w.str());
  ASSERT_TRUE(v.has_value() && v->is_object());
  EXPECT_EQ(v->find("counters")->find("a.b")->number, 2.0);
  EXPECT_EQ(v->find("gauges")->find("g")->find("value")->number, -4.0);
  const smt::JsonValue* h = v->find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 1.0);
  ASSERT_EQ(h->find("buckets")->array.size(), 2u);
  EXPECT_EQ(h->find("buckets")->array[1].find("le")->string, "inf");
  EXPECT_EQ(h->find("buckets")->array[1].find("count")->number, 1.0);
}

TEST(MetricsRegistry, EmptyHistogramJsonOmitsMinMax) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0});
  smt::JsonWriter w;
  w.begin_object();
  append_metrics_json(w, reg.snapshot());
  w.end_object();
  const auto v = smt::parse_json(w.str());
  ASSERT_TRUE(v.has_value());  // NaN would have broken the writer/parser
  const smt::JsonValue* h = v->find("histograms")->find("h");
  EXPECT_EQ(h->find("min"), nullptr);
  EXPECT_EQ(h->find("max"), nullptr);
}

// The tsan CI preset builds and runs this binary; racy counter updates
// or a torn histogram snapshot would be flagged there even though the
// arithmetic below would still pass under a data race.
TEST(MetricsRegistry, ConcurrentUpdatesFromManyThreadsSumExactly) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", {0.25, 0.5, 0.75});

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1);
        g.add(-1);
        // Deterministic spread across all four buckets.
        h.observe(static_cast<double>((t + i) % 4) / 4.0);
      }
    });
  }
  // Concurrent snapshots must be internally consistent even mid-run.
  for (int i = 0; i < 100; ++i) {
    const MetricsRegistry::Snapshot s = reg.snapshot();
    const MetricsRegistry::HistogramSnapshot& hs = s.histograms.at("h");
    uint64_t bucket_sum = 0;
    for (const uint64_t n : hs.counts) bucket_sum += n;
    EXPECT_EQ(bucket_sum, hs.count);
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), 0);
  EXPECT_LE(g.max(), kThreads);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t total = 0;
  for (const uint64_t n : h.bucket_counts()) total += n;
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace smt::host
