// Tests for the SMT core: functional correctness of the interpreter,
// timing behaviour of the scoreboard/ports, SMT resource sharing, and the
// pause/halt/IPI machinery the paper's synchronization layer relies on.
#include <gtest/gtest.h>

#include "core/machine.h"
#include "isa/asm_builder.h"
#include "perfmon/events.h"
#include "sync/primitives.h"

namespace smt {
namespace {

using core::Machine;
using core::MachineConfig;
using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;
using perfmon::Event;

constexpr CpuId kC0 = CpuId::kCpu0;
constexpr CpuId kC1 = CpuId::kCpu1;

double cpi(const Machine& m, CpuId c) { return m.counters().cpi(c); }

// ---------------------------------------------------------------------------
// Functional correctness
// ---------------------------------------------------------------------------

TEST(Functional, IntegerArithmetic) {
  AsmBuilder a("int");
  a.imovi(IReg::R0, 20);
  a.imovi(IReg::R1, 3);
  a.iadd(IReg::R2, IReg::R0, IReg::R1);   // 23
  a.isub(IReg::R3, IReg::R0, IReg::R1);   // 17
  a.imul(IReg::R4, IReg::R0, IReg::R1);   // 60
  a.idiv(IReg::R5, IReg::R0, IReg::R1);   // 6
  a.iand(IReg::R6, IReg::R0, IReg::R1);   // 0
  a.ior(IReg::R7, IReg::R0, IReg::R1);    // 23
  a.ixori(IReg::R8, IReg::R0, 0xff);      // 235
  a.ishli(IReg::R9, IReg::R1, 4);         // 48
  a.ishri(IReg::R10, IReg::R0, 2);        // 5
  a.imov(IReg::R11, IReg::R2);            // 23
  a.exit();

  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  const auto& st = m.core().arch(kC0);
  EXPECT_EQ(st.ireg(IReg::R2), 23);
  EXPECT_EQ(st.ireg(IReg::R3), 17);
  EXPECT_EQ(st.ireg(IReg::R4), 60);
  EXPECT_EQ(st.ireg(IReg::R5), 6);
  EXPECT_EQ(st.ireg(IReg::R6), 0);
  EXPECT_EQ(st.ireg(IReg::R7), 23);
  EXPECT_EQ(st.ireg(IReg::R8), 235);
  EXPECT_EQ(st.ireg(IReg::R9), 48);
  EXPECT_EQ(st.ireg(IReg::R10), 5);
  EXPECT_EQ(st.ireg(IReg::R11), 23);
}

TEST(Functional, DivideByZeroIsDefined) {
  AsmBuilder a("div0");
  a.imovi(IReg::R0, 7);
  a.imovi(IReg::R1, 0);
  a.idiv(IReg::R2, IReg::R0, IReg::R1);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  EXPECT_EQ(m.core().arch(kC0).ireg(IReg::R2), 0);
}

TEST(Functional, FloatingPointArithmetic) {
  AsmBuilder a("fp");
  a.fmovi(FReg::F0, 6.0);
  a.fmovi(FReg::F1, 1.5);
  a.fadd(FReg::F2, FReg::F0, FReg::F1);
  a.fsub(FReg::F3, FReg::F0, FReg::F1);
  a.fmul(FReg::F4, FReg::F0, FReg::F1);
  a.fdiv(FReg::F5, FReg::F0, FReg::F1);
  a.fneg(FReg::F6, FReg::F1);
  a.fmov(FReg::F7, FReg::F2);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  const auto& st = m.core().arch(kC0);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F2), 7.5);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F3), 4.5);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F4), 9.0);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F5), 4.0);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F6), -1.5);
  EXPECT_DOUBLE_EQ(st.freg(FReg::F7), 7.5);
}

TEST(Functional, LoopSum) {
  // sum = 0; for (i = 1; i <= 100; i++) sum += i;
  AsmBuilder a("loop");
  a.imovi(IReg::R0, 0);
  a.imovi(IReg::R1, 1);
  Label loop = a.here();
  a.iadd(IReg::R0, IReg::R0, IReg::R1);
  a.iaddi(IReg::R1, IReg::R1, 1);
  a.bri(BrCond::kLe, IReg::R1, 100, loop);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  EXPECT_EQ(m.core().arch(kC0).ireg(IReg::R0), 5050);
}

TEST(Functional, LoadStoreAddressing) {
  Machine m;
  m.memory().write_f64(0x8000 + 5 * 8, 2.5);
  AsmBuilder a("mem");
  a.imovi(IReg::R0, 0x8000);
  a.imovi(IReg::R1, 5);
  a.fload(FReg::F0, Mem::bi(IReg::R0, IReg::R1, 3));
  a.fmul(FReg::F0, FReg::F0, FReg::F0);
  a.fstore(FReg::F0, Mem::bd(IReg::R0, 8 * 9));
  a.imovi(IReg::R2, 77);
  a.store(IReg::R2, Mem::abs(0x9000));
  a.load(IReg::R3, Mem::abs(0x9000));
  a.exit();
  m.load_program(kC0, a.take());
  m.run();
  EXPECT_DOUBLE_EQ(m.memory().read_f64(0x8000 + 9 * 8), 6.25);
  EXPECT_EQ(m.core().arch(kC0).ireg(IReg::R3), 77);
}

TEST(Functional, BranchConditions) {
  AsmBuilder a("br");
  a.imovi(IReg::R0, 0);     // result bitmask
  a.imovi(IReg::R1, 5);
  Label l1 = a.label(), l2 = a.label(), l3 = a.label();
  a.bri(BrCond::kEq, IReg::R1, 5, l1);
  a.exit();                 // must be skipped
  a.bind(l1);
  a.iori(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kGt, IReg::R1, 5, l2);  // not taken
  a.iori(IReg::R0, IReg::R0, 2);
  a.bind(l2);
  a.bri(BrCond::kNe, IReg::R1, 4, l3);
  a.exit();
  a.bind(l3);
  a.iori(IReg::R0, IReg::R0, 4);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  EXPECT_EQ(m.core().arch(kC0).ireg(IReg::R0), 7);
}

// ---------------------------------------------------------------------------
// Timing behaviour
// ---------------------------------------------------------------------------

isa::Program fadd_chain(int chains, int count) {
  AsmBuilder a("chain");
  for (int c = 0; c < chains; ++c) a.fmovi(isa::freg_n(c), 0.0);
  a.fmovi(FReg::F8, 1.0);
  for (int i = 0; i < count; ++i) {
    const FReg t = isa::freg_n(i % chains);
    a.fadd(t, t, FReg::F8);
  }
  a.exit();
  return a.take();
}

TEST(Timing, DependentFaddChainRunsAtUnitLatency) {
  Machine m;
  m.load_program(kC0, fadd_chain(1, 2000));
  m.run();
  const double c = cpi(m, kC0);
  const double lat = static_cast<double>(m.config().core.lat_fadd);
  EXPECT_NEAR(c, lat, 0.5);
  // And the chain's result is correct.
  EXPECT_DOUBLE_EQ(m.core().arch(kC0).freg(FReg::F0), 2000.0);
}

TEST(Timing, SixChainsSaturateTheFpAddUnit) {
  Machine m;
  m.load_program(kC0, fadd_chain(6, 3000));
  m.run();
  // One FP_ADD issue per cycle is the structural bound.
  EXPECT_NEAR(cpi(m, kC0), 1.0, 0.25);
}

TEST(Timing, ThreeChainsLandInBetween) {
  Machine m;
  m.load_program(kC0, fadd_chain(3, 3000));
  m.run();
  const double c = cpi(m, kC0);
  EXPECT_GT(c, 1.2);
  EXPECT_LT(c, 2.6);  // ~ lat/3
}

TEST(Timing, FdivIsUnpipelined) {
  AsmBuilder a("fdiv");
  for (int c = 0; c < 6; ++c) a.fmovi(isa::freg_n(c), 1.0);
  a.fmovi(FReg::F8, 1.0);
  for (int i = 0; i < 600; ++i) {
    const FReg t = isa::freg_n(i % 6);  // six independent chains
    a.fdiv(t, t, FReg::F8);
  }
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  // Even with max ILP, the single unpipelined divider serializes: CPI is
  // close to the divide latency, insensitive to ILP.
  EXPECT_NEAR(cpi(m, kC0), static_cast<double>(m.config().core.lat_fdiv),
              2.0);
}

TEST(Timing, CoRunningFaddStreamsShareTheUnit) {
  // Two max-ILP fadd threads fight over the single FP_ADD port: per-thread
  // CPI doubles, cumulative throughput gains nothing (paper Fig. 1).
  Machine m;
  m.load_program(kC0, fadd_chain(6, 3000));
  m.load_program(kC1, fadd_chain(6, 3000));
  m.run();
  EXPECT_NEAR(cpi(m, kC0), 2.0, 0.5);
  EXPECT_NEAR(cpi(m, kC1), 2.0, 0.5);
}

TEST(Timing, CoRunningMinIlpFaddStreamsOverlapFreely) {
  // At min ILP each thread only needs one FP_ADD slot every lat_fadd
  // cycles; SMT interleaves them with no slowdown (paper Fig. 1: the
  // min-ILP dual-threaded case is a pure win).
  Machine s;
  s.load_program(kC0, fadd_chain(1, 2000));
  s.run();
  const double alone = cpi(s, kC0);

  Machine m;
  m.load_program(kC0, fadd_chain(1, 2000));
  m.load_program(kC1, fadd_chain(1, 2000));
  m.run();
  EXPECT_NEAR(cpi(m, kC0), alone, 0.6);
  EXPECT_NEAR(cpi(m, kC1), alone, 0.6);
}

TEST(Timing, LoadsHitL1AfterWarmup) {
  AsmBuilder a("l1");
  a.imovi(IReg::R0, 0x10000);
  a.imovi(IReg::R1, 0);
  Label loop = a.here();
  a.load(IReg::R2, Mem::bd(IReg::R0, 0));  // same line every time
  a.iaddi(IReg::R1, IReg::R1, 1);
  a.bri(BrCond::kLt, IReg::R1, 1000, loop);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  // Exactly one bus-level miss; the independent loads that overlap with the
  // in-flight fill each count as (merged) L1 misses, so a handful of those
  // are expected before the line lands.
  EXPECT_EQ(m.counters().get(kC0, Event::kL2Misses), 1u);
  EXPECT_LT(m.counters().get(kC0, Event::kL1Misses), 100u);
  EXPECT_GT(m.counters().get(kC0, Event::kL1Misses), 0u);
}

TEST(Timing, StreamingLoadsMissPerLine) {
  const int kWords = 4096;  // 32 KiB > L1, < L2
  AsmBuilder a("stream");
  a.imovi(IReg::R0, 0x100000);
  a.imovi(IReg::R1, 0);
  Label loop = a.here();
  a.load(IReg::R2, Mem::bi(IReg::R0, IReg::R1, 3));
  a.iaddi(IReg::R1, IReg::R1, 1);
  a.bri(BrCond::kLt, IReg::R1, kWords, loop);
  a.exit();
  MachineConfig cfg;
  cfg.mem.hw_stream_prefetch = false;  // count raw compulsory misses
  Machine m(cfg);
  m.load_program(kC0, a.take());
  m.run();
  // One L2 (cold) miss per 64-byte line.
  EXPECT_EQ(m.counters().get(kC0, Event::kL2Misses),
            static_cast<uint64_t>(kWords / 8));
}

TEST(Timing, HardwareStreamPrefetcherCoversSequentialStreams) {
  // The same sequential sweep with the Netburst-style stream engine on:
  // most lines are fetched ahead of the demand accesses, so bus-level
  // demand misses collapse and the sweep completes faster.
  const int kWords = 4096;
  auto build = [&] {
    AsmBuilder a("stream");
    a.imovi(IReg::R0, 0x100000);
    a.imovi(IReg::R1, 0);
    Label loop = a.here();
    a.load(IReg::R2, Mem::bi(IReg::R0, IReg::R1, 3));
    a.iaddi(IReg::R1, IReg::R1, 1);
    a.bri(BrCond::kLt, IReg::R1, kWords, loop);
    a.exit();
    return a.take();
  };
  MachineConfig off;
  off.mem.hw_stream_prefetch = false;
  Machine moff(off);
  moff.load_program(kC0, build());
  moff.run();

  Machine mon;  // default: prefetcher on
  mon.load_program(kC0, build());
  mon.run();

  // Most demand misses disappear (the stream engine fetches ahead). The
  // sweep itself is bus-bandwidth-bound, so wall time does not regress but
  // need not improve.
  EXPECT_LT(mon.counters().get(kC0, Event::kL2Misses),
            moff.counters().get(kC0, Event::kL2Misses) / 4);
  EXPECT_LE(mon.cycles(), moff.cycles());
}

// ---------------------------------------------------------------------------
// SMT resource semantics
// ---------------------------------------------------------------------------

TEST(Smt, StoreBufferStallsAreCountedUnderPressure) {
  // A long stream of stores that miss L2 drains slowly and fills the
  // partitioned store buffer; the allocator must record stall cycles.
  AsmBuilder a("stores");
  a.imovi(IReg::R0, 0x200000);
  a.imovi(IReg::R1, 0);
  a.imovi(IReg::R2, 1);
  Label loop = a.here();
  a.store(IReg::R2, Mem::bi(IReg::R0, IReg::R1, 3));
  a.iaddi(IReg::R1, IReg::R1, 8);  // one store per line
  a.bri(BrCond::kLt, IReg::R1, 3000 * 8, loop);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  EXPECT_GT(m.counters().get(kC0, Event::kStoreBufferStallCycles), 100u);
  EXPECT_GE(m.counters().get(kC0, Event::kResourceStallCycles),
            m.counters().get(kC0, Event::kStoreBufferStallCycles));
}

TEST(Smt, InstructionAndUopCountsMatchProgram) {
  AsmBuilder a("count");
  a.imovi(IReg::R0, 0);
  Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 50, loop);
  a.exit();
  Machine m;
  m.load_program(kC0, a.take());
  m.run();
  // imovi + 50*(iaddi + bri); exit does not retire.
  EXPECT_EQ(m.counters().get(kC0, Event::kInstrRetired), 101u);
  EXPECT_EQ(m.counters().get(kC0, Event::kUopsRetired), 101u);
  EXPECT_EQ(m.counters().get(kC0, Event::kBranchesRetired), 50u);
}

TEST(Smt, DynamicPartitioningNeverSlowsCoRunningThreads) {
  // The counterfactual dynamically-shared machine must be at least as fast
  // as the statically partitioned one for identical co-running threads
  // (it strictly relaxes the per-thread limits).
  auto run = [](bool static_part) {
    MachineConfig cfg;
    cfg.core.static_partitioning = static_part;
    Machine m(cfg);
    m.load_program(kC0, fadd_chain(6, 4000));
    m.load_program(kC1, fadd_chain(6, 4000));
    m.run();
    return m.cycles();
  };
  EXPECT_LE(run(false), run(true));
}

TEST(Smt, PartitioningDoesNotAffectSingleThread) {
  auto run = [](bool static_part) {
    MachineConfig cfg;
    cfg.core.static_partitioning = static_part;
    Machine m(cfg);
    m.load_program(kC0, fadd_chain(6, 4000));
    m.run();
    return m.cycles();
  };
  // A lone context always owns the full structures either way.
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// pause / halt / IPI / spin-wait
// ---------------------------------------------------------------------------

isa::Program spin_then_read(Addr flag, Addr data, sync::SpinKind kind) {
  AsmBuilder a("spinner");
  sync::emit_spin_until_eq(a, flag, IReg::R0, 1, kind);
  a.load(IReg::R1, Mem::abs(data));
  a.exit();
  return a.take();
}

isa::Program work_then_signal(Addr flag, Addr data, int work) {
  AsmBuilder a("worker");
  a.imovi(IReg::R0, 0);
  Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, work, loop);
  a.imovi(IReg::R1, 42);
  a.store(IReg::R1, Mem::abs(data));
  sync::emit_flag_set(a, flag, IReg::R2, 1);
  a.exit();
  return a.take();
}

TEST(Sync, SpinWaitHandsOffData) {
  const Addr flag = 0x40000, data = 0x40040;
  Machine m;
  m.load_program(kC0, work_then_signal(flag, data, 500));
  m.load_program(kC1, spin_then_read(flag, data, sync::SpinKind::kPause));
  m.run();
  EXPECT_EQ(m.core().arch(kC1).ireg(IReg::R1), 42);
  EXPECT_GT(m.counters().get(kC1, Event::kPausesExecuted), 0u);
}

TEST(Sync, TightSpinTriggersMachineClearOnExit) {
  const Addr flag = 0x40000, data = 0x40040;
  Machine m;
  m.load_program(kC0, work_then_signal(flag, data, 500));
  m.load_program(kC1, spin_then_read(flag, data, sync::SpinKind::kTight));
  m.run();
  EXPECT_GE(m.counters().get(kC1, Event::kMachineClears), 1u);
}

TEST(Sync, PauseReducesSpinResourceConsumption) {
  const Addr flag = 0x40000, data = 0x40040;
  uint64_t uops[2];
  for (int k = 0; k < 2; ++k) {
    Machine m;
    const auto kind = k == 0 ? sync::SpinKind::kTight : sync::SpinKind::kPause;
    m.load_program(kC0, work_then_signal(flag, data, 2000));
    m.load_program(kC1, spin_then_read(flag, data, kind));
    m.run();
    uops[k] = m.counters().get(kC1, Event::kUopsRetired);
  }
  // The pause spinner executes far fewer uops while waiting.
  EXPECT_LT(uops[1] * 3, uops[0]);
}

TEST(Sync, HaltSleepsUntilIpi) {
  const Addr flag = 0x40000;
  // Thread 1: publish "sleeping", halt, then read the flag after waking.
  AsmBuilder s("sleeper");
  sync::emit_flag_set(s, flag + 64, IReg::R0, 1);
  s.halt();
  s.load(IReg::R1, Mem::abs(flag));
  s.exit();
  // Thread 0: do work, set flag, wait for sleeper to be asleep, wake it.
  AsmBuilder w("waker");
  sync::emit_flag_set(w, flag, IReg::R0, 7);
  sync::emit_spin_until_eq(w, flag + 64, IReg::R1, 1, sync::SpinKind::kPause);
  w.ipi();
  w.exit();
  Machine m;
  m.load_program(kC0, w.take());
  m.load_program(kC1, s.take());
  m.run();
  EXPECT_EQ(m.core().arch(kC1).ireg(IReg::R1), 7);
  EXPECT_GT(m.counters().get(kC1, Event::kCyclesHalted), 0u);
  EXPECT_EQ(m.counters().get(kC1, Event::kHaltTransitions), 1u);
  EXPECT_EQ(m.counters().get(kC0, Event::kIpisSent), 1u);
}

TEST(Sync, HaltTransitionsCostCycles) {
  const Addr flag = 0x40000;
  AsmBuilder s("sleeper");
  sync::emit_flag_set(s, flag, IReg::R0, 1);
  s.halt();
  s.exit();
  AsmBuilder w("waker");
  sync::emit_spin_until_eq(w, flag, IReg::R0, 1, sync::SpinKind::kPause);
  w.ipi();
  w.exit();
  Machine m;
  m.load_program(kC0, w.take());
  m.load_program(kC1, s.take());
  m.run();
  const auto& cc = m.config().core;
  EXPECT_GE(m.cycles(), cc.halt_enter_cost + cc.halt_wake_cost);
}

TEST(Sync, XchgLockProvidesMutualExclusion) {
  // Both threads do read-modify-write increments on a shared counter under
  // an xchg spin lock; without mutual exclusion updates would be lost.
  const Addr lock = 0x50000, counter = 0x50040;
  const int kIncs = 200;
  auto make = [&](const char* name) {
    AsmBuilder a(name);
    a.imovi(IReg::R3, 0);
    Label loop = a.here();
    sync::emit_lock_acquire(a, lock, IReg::R0, sync::SpinKind::kPause);
    a.load(IReg::R1, Mem::abs(counter));
    a.iaddi(IReg::R1, IReg::R1, 1);
    a.store(IReg::R1, Mem::abs(counter));
    sync::emit_lock_release(a, lock, IReg::R0);
    a.iaddi(IReg::R3, IReg::R3, 1);
    a.bri(BrCond::kLt, IReg::R3, kIncs, loop);
    a.exit();
    return a.take();
  };
  Machine m;
  m.load_program(kC0, make("inc0"));
  m.load_program(kC1, make("inc1"));
  m.run();
  EXPECT_EQ(m.memory().read_i64(counter), 2 * kIncs);
}

TEST(Sync, SenseReversingBarrierOrdersEpisodes) {
  mem::MemoryLayout layout(0x60000);
  sync::TwoThreadBarrier bar(layout, "b");
  const Addr a0 = layout.alloc("a0", 8);
  const Addr a1 = layout.alloc("a1", 8);

  // Thread 0 writes before each barrier; thread 1 reads after it; three
  // episodes verify sense reversal works repeatedly.
  AsmBuilder p0("prod");
  bar.emit_init(p0, IReg::R15);
  for (int e = 0; e < 3; ++e) {
    p0.imovi(IReg::R1, 10 + e);
    p0.store(IReg::R1, Mem::abs(a0));
    bar.emit_wait(p0, 0, IReg::R15, IReg::R0, sync::SpinKind::kPause);
    bar.emit_wait(p0, 0, IReg::R15, IReg::R0, sync::SpinKind::kPause);
  }
  p0.exit();

  AsmBuilder p1("cons");
  bar.emit_init(p1, IReg::R15);
  p1.imovi(IReg::R5, 0);
  for (int e = 0; e < 3; ++e) {
    bar.emit_wait(p1, 1, IReg::R15, IReg::R0, sync::SpinKind::kPause);
    p1.load(IReg::R1, Mem::abs(a0));
    p1.iadd(IReg::R5, IReg::R5, IReg::R1);  // accumulate 10+11+12 = 33
    p1.store(IReg::R5, Mem::abs(a1));
    bar.emit_wait(p1, 1, IReg::R15, IReg::R0, sync::SpinKind::kPause);
  }
  p1.exit();

  Machine m;
  m.load_program(kC0, p0.take());
  m.load_program(kC1, p1.take());
  m.run();
  EXPECT_EQ(m.memory().read_i64(a1), 33);
}

TEST(Sync, SleeperBarrierWakesAndSynchronizes) {
  mem::MemoryLayout layout(0x60000);
  sync::TwoThreadBarrier bar(layout, "hb");
  const Addr data = layout.alloc("data", 8);

  // Sleeper (thread 1) arrives first (no work) and halts; waker computes,
  // then wakes it; sleeper then reads the waker's data.
  AsmBuilder w("waker");
  bar.emit_init(w, IReg::R15);
  w.imovi(IReg::R0, 0);
  Label loop = w.here();
  w.iaddi(IReg::R0, IReg::R0, 1);
  w.bri(BrCond::kLt, IReg::R0, 3000, loop);
  w.imovi(IReg::R1, 123);
  w.store(IReg::R1, Mem::abs(data));
  bar.emit_wait_waker(w, 0, IReg::R15, IReg::R2, sync::SpinKind::kPause);
  w.exit();

  AsmBuilder s("sleeper");
  bar.emit_init(s, IReg::R15);
  bar.emit_wait_sleeper(s, 1, IReg::R15, IReg::R2);
  s.load(IReg::R3, Mem::abs(data));
  s.exit();

  Machine m;
  m.load_program(kC0, w.take());
  m.load_program(kC1, s.take());
  m.run();
  EXPECT_EQ(m.core().arch(kC1).ireg(IReg::R3), 123);
  EXPECT_EQ(m.counters().get(kC1, Event::kHaltTransitions), 1u);
  EXPECT_GT(m.counters().get(kC1, Event::kCyclesHalted), 0u);
}

TEST(SyncDeath, LostWakeupIsCaughtByTheRuntime) {
  // A halt with no IPI ever coming must abort (all contexts asleep), not
  // hang forever.
  AsmBuilder s("stuck");
  s.halt();
  s.exit();
  Machine m;
  m.load_program(kC0, s.take());
  EXPECT_DEATH(m.run(), "asleep");
}

// ---------------------------------------------------------------------------
// run_until_any_done
// ---------------------------------------------------------------------------

TEST(Runner, RunUntilAnyDoneReturnsTheFasterThread) {
  Machine m;
  m.load_program(kC0, fadd_chain(6, 200));
  m.load_program(kC1, fadd_chain(6, 20000));
  const CpuId first = m.run_until_any_done();
  EXPECT_EQ(first, kC0);
  EXPECT_TRUE(m.core().done(kC0));
  EXPECT_FALSE(m.core().done(kC1));
}

// ---------------------------------------------------------------------------
// Integer divide issue port (Netburst port 1, shared with the FP units)
// ---------------------------------------------------------------------------

isa::Program idiv_chain(int chains, int count) {
  AsmBuilder a("idiv");
  for (int c = 0; c < chains; ++c) a.imovi(isa::ireg_n(c), 1 << 20);
  a.imovi(IReg::R8, 1);
  for (int i = 0; i < count; ++i) {
    const IReg t = isa::ireg_n(i % chains);
    a.idiv(t, t, IReg::R8);  // t /= 1: value-preserving, dependence-carrying
  }
  a.exit();
  return a.take();
}

isa::Program fdiv_chain(int chains, int count) {
  AsmBuilder a("fdiv");
  for (int c = 0; c < chains; ++c) a.fmovi(isa::freg_n(c), 1.0);
  a.fmovi(FReg::F8, 1.0);
  for (int i = 0; i < count; ++i) {
    const FReg t = isa::freg_n(i % chains);
    a.fdiv(t, t, FReg::F8);
  }
  a.exit();
  return a.take();
}

// Fully independent divides (constant sources, rotating dead targets): with
// a pipelined divider, throughput is limited only by the issue port.
isa::Program idiv_independent(int count) {
  AsmBuilder a("idiv-ind");
  a.imovi(IReg::R8, 3);
  a.imovi(IReg::R9, 1 << 20);
  for (int i = 0; i < count; ++i) {
    a.idiv(isa::ireg_n(i % 6), IReg::R9, IReg::R8);
  }
  a.exit();
  return a.take();
}

isa::Program fdiv_independent(int count) {
  AsmBuilder a("fdiv-ind");
  a.fmovi(FReg::F8, 3.0);
  a.fmovi(FReg::F9, 1.0);
  for (int i = 0; i < count; ++i) {
    a.fdiv(isa::freg_n(i % 6), FReg::F9, FReg::F8);
  }
  a.exit();
  return a.take();
}

TEST(IdivPort, PipelinedIdivStreamIsIssuePortBound) {
  // With the (hypothetical) pipelined divider, six independent idiv chains
  // are limited by the single FP issue port: one divide per cycle, CPI ~1.
  // A divider that issued without consuming port capacity would run at the
  // 3-wide retire bound instead (CPI ~0.33) — the regression this guards.
  MachineConfig cfg;
  cfg.core.idiv_unpipelined = false;
  Machine m{cfg};
  m.load_program(kC0, idiv_independent(1200));
  m.run();
  EXPECT_GT(cpi(m, kC0), 0.85);
  EXPECT_LT(cpi(m, kC0), 1.3);
}

TEST(IdivPort, UnpipelinedIdivStreamSerializesAtDivideLatency) {
  Machine m;
  m.load_program(kC0, idiv_chain(6, 400));
  m.run();
  EXPECT_NEAR(cpi(m, kC0), static_cast<double>(m.config().core.lat_idiv),
              2.0);
}

TEST(IdivPort, CoScheduledPipelinedDivideStreamsShareTheFpPort) {
  // Pipelined idiv beside pipelined fdiv: both feed through the one FP
  // issue port, so each gets every other cycle (CPI ~2 apiece). Before the
  // port fix the idiv stream issued for free and both ran at CPI ~1.
  MachineConfig cfg;
  cfg.core.idiv_unpipelined = false;
  cfg.core.fdiv_unpipelined = false;
  Machine m{cfg};
  m.load_program(kC0, idiv_independent(1200));
  m.load_program(kC1, fdiv_independent(1200));
  m.run_until_any_done();
  EXPECT_GT(cpi(m, kC0), 1.6);
  EXPECT_GT(cpi(m, kC1), 1.6);
}

TEST(IdivPort, CoScheduledUnpipelinedDividersBarelyInterfere) {
  // Default (unpipelined) dividers: each stream is bound by its own divide
  // unit, and one divide every ~40-56 cycles leaves the shared port nearly
  // idle — co-execution stays near the stand-alone latencies (the paper's
  // Figure 2 shows idiv/fdiv pairs nearly unaffected).
  Machine m;
  m.load_program(kC0, idiv_chain(6, 200));
  m.load_program(kC1, fdiv_chain(6, 200));
  m.run_until_any_done();
  EXPECT_NEAR(cpi(m, kC0), static_cast<double>(m.config().core.lat_idiv),
              4.0);
  EXPECT_NEAR(cpi(m, kC1), static_cast<double>(m.config().core.lat_fdiv),
              4.0);
}

// ---------------------------------------------------------------------------
// IPI delivery windows (sticky wake-up protocol)
// ---------------------------------------------------------------------------

// The sleeper publishes "about to halt" and halts; the waker spins for the
// flag, then burns `delay` loop iterations before storing the payload and
// sending the IPI. Sweeping the delay lands the IPI in every sleeper phase:
// still running (IPI must latch and make the upcoming halt fall through),
// draining (kHalting), paying the transition cost (kEnterHalt), and fully
// asleep (kHalted). In every case the run must complete and the sleeper
// must observe the payload written before the IPI.
void run_ipi_window(int delay) {
  SCOPED_TRACE(testing::Message() << "waker delay " << delay);
  const Addr flag = 0x40000, data = 0x40040;
  AsmBuilder s("sleeper");
  sync::emit_flag_set(s, flag, IReg::R0, 1);
  s.halt();
  s.load(IReg::R1, Mem::abs(data));
  s.exit();

  AsmBuilder w("waker");
  sync::emit_spin_until_eq(w, flag, IReg::R0, 1, sync::SpinKind::kTight);
  if (delay > 0) {
    w.imovi(IReg::R2, 0);
    Label loop = w.here();
    w.iaddi(IReg::R2, IReg::R2, 1);
    w.bri(BrCond::kLt, IReg::R2, delay, loop);
  }
  w.imovi(IReg::R3, 99);
  w.store(IReg::R3, Mem::abs(data));
  w.ipi();
  w.exit();

  Machine m;
  m.load_program(kC0, w.take());
  m.load_program(kC1, s.take());
  m.run(40'000'000);
  EXPECT_EQ(m.core().arch(kC1).ireg(IReg::R1), 99);
  EXPECT_EQ(m.counters().get(kC0, Event::kIpisSent), 1u);
  EXPECT_EQ(m.counters().get(kC1, Event::kIpisReceived), 1u);
}

TEST(IpiWindows, NoDelayLandsWhileEnteringHalt) { run_ipi_window(0); }

TEST(IpiWindows, DelaySweepNeverStrandsTheSleeper) {
  // halt_enter_cost is 1500 cycles and the delay loop runs at roughly one
  // iteration per cycle, so this sweep brackets the kHalting / kEnterHalt /
  // kHalted boundaries from both sides.
  for (int delay : {50, 200, 700, 1300, 1500, 1700, 2500, 4000}) {
    run_ipi_window(delay);
  }
}

TEST(IpiWindows, IpiBeforeHaltMakesTheHaltFallThrough) {
  // The waker fires the IPI while the sleeper is still computing: the
  // pending-wakeup latch must turn the later halt into (at most) a paid
  // transition, never a lost wake-up.
  const Addr data = 0x40040;
  AsmBuilder s("sleeper");
  s.imovi(IReg::R2, 0);
  Label loop = s.here();
  s.iaddi(IReg::R2, IReg::R2, 1);
  s.bri(BrCond::kLt, IReg::R2, 8000, loop);
  s.halt();
  s.load(IReg::R1, Mem::abs(data));
  s.exit();

  AsmBuilder w("waker");
  w.imovi(IReg::R3, 55);
  w.store(IReg::R3, Mem::abs(data));
  w.ipi();
  w.exit();

  Machine m;
  m.load_program(kC0, w.take());
  m.load_program(kC1, s.take());
  m.run(40'000'000);
  EXPECT_EQ(m.core().arch(kC1).ireg(IReg::R1), 55);
  EXPECT_EQ(m.counters().get(kC1, Event::kIpisReceived), 1u);
}

// ---------------------------------------------------------------------------
// Event-skip fast-forward: counters must be bit-identical to single-cycle
// stepping (the attribution contract record_cycle_counters documents)
// ---------------------------------------------------------------------------

void expect_identical_counters(const Machine& skip, const Machine& step) {
  EXPECT_EQ(skip.cycles(), step.cycles());
  const perfmon::Snapshot a = skip.counters().snapshot();
  const perfmon::Snapshot b = step.counters().snapshot();
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const auto ev = static_cast<Event>(e);
      EXPECT_EQ(a.get(static_cast<CpuId>(c), ev),
                b.get(static_cast<CpuId>(c), ev))
          << "cpu" << c << " " << perfmon::name(ev);
    }
  }
}

// Runs the two given programs (second may be empty) under event_skip on and
// off and requires identical cycles and counters.
void check_skip_equivalence(const isa::Program& p0, const isa::Program* p1) {
  MachineConfig skip_cfg;
  skip_cfg.core.event_skip = true;
  Machine skip{skip_cfg};
  MachineConfig step_cfg;
  step_cfg.core.event_skip = false;
  Machine step{step_cfg};
  for (Machine* m : {&skip, &step}) {
    m->load_program(kC0, p0);
    if (p1 != nullptr) m->load_program(kC1, *p1);
    m->run(40'000'000);
  }
  expect_identical_counters(skip, step);
}

TEST(EventSkip, PauseSpinHandoffCountsIdentically) {
  // Pause spinning creates long fetch-stall windows — exactly what the
  // fast-forward path skips over and must attribute identically.
  const Addr flag = 0x40000, data = 0x40040;
  const isa::Program p0 = work_then_signal(flag, data, 2000);
  const isa::Program p1 = spin_then_read(flag, data, sync::SpinKind::kPause);
  check_skip_equivalence(p0, &p1);
}

TEST(EventSkip, HaltAndWakeCountsIdentically) {
  // Halt windows are thousands of cycles of kCyclesHalted accumulated in
  // one skip; the waker's pause spin overlaps them with fetch stalls.
  const Addr flag = 0x40000;
  AsmBuilder s("sleeper");
  sync::emit_flag_set(s, flag + 64, IReg::R0, 1);
  s.halt();
  s.load(IReg::R1, Mem::abs(flag));
  s.exit();
  AsmBuilder w("waker");
  sync::emit_flag_set(w, flag, IReg::R0, 7);
  sync::emit_spin_until_eq(w, flag + 64, IReg::R1, 1, sync::SpinKind::kPause);
  w.ipi();
  w.exit();
  const isa::Program p0 = w.take();
  const isa::Program p1 = s.take();
  check_skip_equivalence(p0, &p1);
}

TEST(EventSkip, UnpipelinedDivideStreamsCountIdentically) {
  // Divider-serialized streams stall dispatch on a full ROB while the
  // in-flight divide finishes — resource-stall windows under skip.
  const isa::Program p0 = idiv_chain(6, 150);
  const isa::Program p1 = fdiv_chain(6, 150);
  check_skip_equivalence(p0, &p1);
  check_skip_equivalence(p0, nullptr);
}

TEST(EventSkip, StorePressureCountsIdentically) {
  // Store bursts drain one per cycle after retirement; the store-buffer
  // stall cycles and drain events must replay exactly.
  AsmBuilder a("stores");
  a.imovi(IReg::R0, 0x70000);
  a.imovi(IReg::R1, 0);
  Label loop = a.here();
  for (int i = 0; i < 8; ++i) {
    a.store(IReg::R1, Mem::bi(IReg::R0, IReg::R1, 3));
  }
  a.iaddi(IReg::R1, IReg::R1, 1);
  a.bri(BrCond::kLt, IReg::R1, 400, loop);
  a.exit();
  const isa::Program p = a.take();
  check_skip_equivalence(p, nullptr);
}

}  // namespace
}  // namespace smt
