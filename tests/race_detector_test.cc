// Tests for the dynamic half of the guest-program verifier: the
// happens-before race detector. Covers the unit-level vector-clock edges
// (sync word release/acquire, IPI send -> wake), whole-workload detection
// through try_run_workload (structured kRaceDetected outcomes), the
// cleanliness of properly synchronized flag / lock / barrier programs —
// including the real TLP kernels — and the pure-observer contract:
// attaching the detector never changes a perf counter bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/race_detector.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "isa/asm_builder.h"
#include "kernels/matmul.h"
#include "mem/sim_memory.h"
#include "sync/primitives.h"

namespace smt {
namespace {

using analysis::RaceDetector;
using cpu::GuestAccess;
using isa::AsmBuilder;
using isa::BrCond;
using isa::IReg;
using isa::Label;
using isa::Mem;

constexpr Addr kData = 0x10000;
constexpr Addr kSync = 0x8000;

// ---------------------------------------------------------------------------
// Unit level: drive the observer callbacks directly
// ---------------------------------------------------------------------------

TEST(RaceDetectorUnit, UnorderedWriteReadPairIsARace) {
  RaceDetector det;
  det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 7);
  det.on_guest_access(CpuId::kCpu1, 2, kData, GuestAccess::kLoad, 7);
  EXPECT_FALSE(det.clean());
  ASSERT_EQ(det.races().size(), 1u);
  EXPECT_EQ(det.races()[0].addr, kData);
  EXPECT_EQ(det.races()[0].first_kind, GuestAccess::kStore);
  EXPECT_EQ(det.races()[0].second_kind, GuestAccess::kLoad);
  EXPECT_EQ(det.total_races(), 1u);
}

TEST(RaceDetectorUnit, ConcurrentReadsDoNotRace) {
  RaceDetector det;
  det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kLoad, 0);
  det.on_guest_access(CpuId::kCpu1, 2, kData, GuestAccess::kLoad, 0);
  EXPECT_TRUE(det.clean());
}

TEST(RaceDetectorUnit, SameContextAccessesNeverRace) {
  RaceDetector det;
  det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 1);
  det.on_guest_access(CpuId::kCpu0, 2, kData, GuestAccess::kStore, 2);
  det.on_guest_access(CpuId::kCpu0, 3, kData, GuestAccess::kLoad, 2);
  EXPECT_TRUE(det.clean());
}

TEST(RaceDetectorUnit, SyncWordReleaseAcquireOrdersTheHandoff) {
  RaceDetector det;
  det.add_sync_word(kSync);
  // cpu0: write payload, then release via the sync word.
  det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 42);
  det.on_guest_access(CpuId::kCpu0, 2, kSync, GuestAccess::kStore, 1);
  // cpu1: acquire via the sync word, then read the payload.
  det.on_guest_access(CpuId::kCpu1, 3, kSync, GuestAccess::kLoad, 1);
  det.on_guest_access(CpuId::kCpu1, 4, kData, GuestAccess::kLoad, 42);
  EXPECT_TRUE(det.clean());
}

TEST(RaceDetectorUnit, AccessesToTheSyncWordItselfNeverRace) {
  RaceDetector det;
  det.add_sync_word(kSync);
  det.on_guest_access(CpuId::kCpu0, 1, kSync, GuestAccess::kStore, 1);
  det.on_guest_access(CpuId::kCpu1, 2, kSync, GuestAccess::kXchg, 0);
  det.on_guest_access(CpuId::kCpu1, 3, kSync, GuestAccess::kLoad, 1);
  EXPECT_TRUE(det.clean());
}

TEST(RaceDetectorUnit, MissingAcquireStillRaces) {
  RaceDetector det;
  det.add_sync_word(kSync);
  det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 42);
  det.on_guest_access(CpuId::kCpu0, 2, kSync, GuestAccess::kStore, 1);
  // cpu1 reads the payload without ever touching the sync word.
  det.on_guest_access(CpuId::kCpu1, 3, kData, GuestAccess::kLoad, 42);
  EXPECT_FALSE(det.clean());
}

TEST(RaceDetectorUnit, IpiSendToWakeIsAHappensBeforeEdge) {
  {
    RaceDetector det;
    det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 5);
    det.on_ipi_send(CpuId::kCpu0);
    det.on_ipi_wake(CpuId::kCpu1);
    det.on_guest_access(CpuId::kCpu1, 2, kData, GuestAccess::kLoad, 5);
    EXPECT_TRUE(det.clean());
  }
  {
    // Without the wake-side join the same pair races.
    RaceDetector det;
    det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, 5);
    det.on_ipi_send(CpuId::kCpu0);
    det.on_guest_access(CpuId::kCpu1, 2, kData, GuestAccess::kLoad, 5);
    EXPECT_FALSE(det.clean());
  }
}

TEST(RaceDetectorUnit, DuplicatePairsDedupButStillCount) {
  RaceDetector det;
  for (int i = 0; i < 5; ++i) {
    det.on_guest_access(CpuId::kCpu0, 1, kData, GuestAccess::kStore, i);
    det.on_guest_access(CpuId::kCpu1, 2, kData, GuestAccess::kLoad, i);
  }
  // Two distinct pair shapes (store-then-load across iterations, plus
  // read-then-store at the loop seam) — repeats only bump the total.
  EXPECT_EQ(det.races().size(), 2u);
  EXPECT_GT(det.total_races(), 2u);
  EXPECT_NE(det.summary().find("further conflicting"), std::string::npos);
}

TEST(RaceDetectorUnit, ExtentCheckRequiresCompleteness) {
  {
    RaceDetector det;
    det.add_extent(kData, 64);
    det.on_guest_access(CpuId::kCpu0, 1, 0x9000, GuestAccess::kStore, 0);
    EXPECT_TRUE(det.clean());  // incomplete extents: check disabled
  }
  {
    RaceDetector det;
    det.add_extent(kData, 64);
    det.set_extents_complete(true);
    det.on_guest_access(CpuId::kCpu0, 1, kData + 56, GuestAccess::kStore, 0);
    EXPECT_TRUE(det.clean());  // last in-bounds word
    det.on_guest_access(CpuId::kCpu0, 2, 0x9000, GuestAccess::kStore, 0);
    EXPECT_FALSE(det.clean());
    ASSERT_EQ(det.extent_violations().size(), 1u);
    EXPECT_EQ(det.extent_violations()[0].addr, 0x9000u);
    EXPECT_NE(det.summary().find("outside registered extents"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Workload level: structured outcomes through try_run_workload
// ---------------------------------------------------------------------------

core::RunOutcome run_def(const host::ExperimentDef& def, bool race_detect) {
  const std::unique_ptr<core::Workload> w = def.make();
  return core::try_run_workload(core::MachineConfig{}, *w, def.cycle_budget,
                                nullptr, core::RunOptions{race_detect});
}

TEST(RaceDetection, RacySelfTestYieldsStructuredOutcome) {
  const host::ExperimentDef* def = host::find_experiment("selftest.race");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->race_detect);
  EXPECT_FALSE(def->in_default_manifest);

  const core::RunOutcome o = run_def(*def, /*race_detect=*/true);
  EXPECT_EQ(o.status, core::RunStatus::kRaceDetected);
  EXPECT_NE(o.message.find("data race on word"), std::string::npos);
  ASSERT_NE(o.stats.race_detector, nullptr);
  EXPECT_FALSE(o.stats.race_detector->clean());
  EXPECT_GT(o.stats.race_detector->total_races(), 0u);
  // The partial-run contract holds: stats still describe a full run.
  EXPECT_GT(o.stats.cycles, 0u);
}

TEST(RaceDetection, SameWorkloadPassesWithDetectionOff) {
  const host::ExperimentDef* def = host::find_experiment("selftest.race");
  ASSERT_NE(def, nullptr);
  const core::RunOutcome o = run_def(*def, /*race_detect=*/false);
  EXPECT_EQ(o.status, core::RunStatus::kOk);
  EXPECT_EQ(o.stats.race_detector, nullptr);
}

/// Release/acquire handoff through a flag word: writer publishes a payload
/// and sets the flag; reader spins on the flag, then consumes the payload.
class FlagHandoffWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }

  void setup(core::Machine& m) override {
    mem::MemoryLayout data(kData);
    payload_ = data.alloc_words("payload", 1);
    data_regions_ = data.regions();
    mem::MemoryLayout sync(kSync);
    flag_ = sync.alloc_words("flag", 1);
    sync_regions_ = sync.regions();
    m.memory().write_i64(payload_, 0);
    m.memory().write_i64(flag_, 0);
  }

  std::vector<isa::Program> programs() const override {
    AsmBuilder w("handoff.writer");
    w.imovi(IReg::R0, 42);
    w.store(IReg::R0, Mem::abs(payload_));
    sync::emit_flag_set(w, flag_, IReg::R1, 1);
    w.exit();

    AsmBuilder r("handoff.reader");
    sync::emit_spin_until_eq(r, flag_, IReg::R0, 1, sync::SpinKind::kPause);
    r.load(IReg::R1, Mem::abs(payload_));
    r.store(IReg::R1, Mem::abs(payload_));  // write after the handoff too
    r.exit();
    return {w.take(), r.take()};
  }

  bool verify(const core::Machine& m) const override {
    return m.memory().read_i64(payload_) == 42;
  }

  core::MemInfo mem_info() const override {
    return {data_regions_, sync_regions_, /*complete=*/true};
  }

 private:
  std::string name_ = "test.flag-handoff";
  Addr payload_ = 0;
  Addr flag_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<mem::MemoryLayout::Region> sync_regions_;
};

TEST(RaceDetection, FlagSynchronizedHandoffIsClean) {
  FlagHandoffWorkload w;
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, w, 1'000'000, nullptr, core::RunOptions{true});
  EXPECT_EQ(o.status, core::RunStatus::kOk) << o.message;
  ASSERT_NE(o.stats.race_detector, nullptr);
  EXPECT_TRUE(o.stats.race_detector->clean());
}

/// Both contexts increment a shared counter under a test-and-set lock.
/// The lock word becomes a sync word via the programs' own annotations —
/// this workload does not register any sync region.
class LockedCounterWorkload : public core::Workload {
 public:
  static constexpr int kItersPerThread = 8;

  const std::string& name() const override { return name_; }

  void setup(core::Machine& m) override {
    mem::MemoryLayout data(kData);
    counter_ = data.alloc_words("counter", 1);
    data_regions_ = data.regions();
    mem::MemoryLayout sync(kSync);
    lock_ = sync.alloc_words("lock", 1);
    sync_regions_ = sync.regions();
    m.memory().write_i64(counter_, 0);
    m.memory().write_i64(lock_, 0);
  }

  std::vector<isa::Program> programs() const override {
    std::vector<isa::Program> out;
    for (int tid = 0; tid < 2; ++tid) {
      AsmBuilder a(tid == 0 ? "locked.t0" : "locked.t1");
      a.imovi(IReg::R0, 0);
      const Label loop = a.here();
      sync::emit_lock_acquire(a, lock_, IReg::R3, sync::SpinKind::kPause);
      a.load(IReg::R1, Mem::abs(counter_));
      a.iaddi(IReg::R1, IReg::R1, 1);
      a.store(IReg::R1, Mem::abs(counter_));
      sync::emit_lock_release(a, lock_, IReg::R3);
      a.iaddi(IReg::R0, IReg::R0, 1);
      a.bri(BrCond::kLt, IReg::R0, kItersPerThread, loop);
      a.exit();
      out.push_back(a.take());
    }
    return out;
  }

  bool verify(const core::Machine& m) const override {
    return m.memory().read_i64(counter_) == 2 * kItersPerThread;
  }

  core::MemInfo mem_info() const override {
    return {data_regions_, sync_regions_, /*complete=*/true};
  }

 private:
  std::string name_ = "test.locked-counter";
  Addr counter_ = 0;
  Addr lock_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
  std::vector<mem::MemoryLayout::Region> sync_regions_;
};

TEST(RaceDetection, LockProtectedCounterIsClean) {
  LockedCounterWorkload w;
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, w, 1'000'000, nullptr, core::RunOptions{true});
  EXPECT_EQ(o.status, core::RunStatus::kOk) << o.message;
  ASSERT_NE(o.stats.race_detector, nullptr);
  EXPECT_TRUE(o.stats.race_detector->clean());
}

/// Like LockedCounterWorkload but thread 1 skips the lock entirely — the
/// increments race and the detector must say so through the runner.
class UnlockedCounterWorkload : public LockedCounterWorkload {
 public:
  std::vector<isa::Program> programs() const override {
    std::vector<isa::Program> out = LockedCounterWorkload::programs();
    AsmBuilder a("unlocked.t1");
    a.imovi(IReg::R0, 0);
    const Label loop = a.here();
    a.load(IReg::R1, Mem::abs(counter_addr()));
    a.iaddi(IReg::R1, IReg::R1, 1);
    a.store(IReg::R1, Mem::abs(counter_addr()));
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.bri(BrCond::kLt, IReg::R0, kItersPerThread, loop);
    a.exit();
    out[1] = a.take();
    return out;
  }

  bool verify(const core::Machine& m) const override {
    const int64_t v = m.memory().read_i64(counter_addr());
    return v > 0 && v <= 2 * kItersPerThread;
  }

 protected:
  Addr counter_addr() const { return mem_info().data.at(0).base; }
};

TEST(RaceDetection, SkippingTheLockIsCaught) {
  UnlockedCounterWorkload w;
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, w, 1'000'000, nullptr, core::RunOptions{true});
  EXPECT_EQ(o.status, core::RunStatus::kRaceDetected);
  EXPECT_NE(o.message.find("data race on word"), std::string::npos);
}

/// Stores through a computed address outside every registered extent: the
/// static lint cannot see it, the dynamic extent check must.
class WildStoreWorkload : public core::Workload {
 public:
  const std::string& name() const override { return name_; }

  void setup(core::Machine& m) override {
    mem::MemoryLayout data(kData);
    word_ = data.alloc_words("word", 1);
    data_regions_ = data.regions();
    m.memory().write_i64(word_, 0);
  }

  std::vector<isa::Program> programs() const override {
    AsmBuilder a("wild.store");
    a.imovi(IReg::R0, 0x9000);  // not a registered extent
    a.imovi(IReg::R1, 1);
    a.store(IReg::R1, Mem::bd(IReg::R0, 0));
    a.exit();
    return {a.take()};
  }

  bool verify(const core::Machine&) const override { return true; }

  core::MemInfo mem_info() const override {
    return {data_regions_, {}, /*complete=*/true};
  }

 private:
  std::string name_ = "test.wild-store";
  Addr word_ = 0;
  std::vector<mem::MemoryLayout::Region> data_regions_;
};

TEST(RaceDetection, OutOfExtentStoreIsCaughtDynamically) {
  WildStoreWorkload w;
  const core::RunOutcome o = core::try_run_workload(
      core::MachineConfig{}, w, 1'000'000, nullptr, core::RunOptions{true});
  EXPECT_EQ(o.status, core::RunStatus::kRaceDetected);
  EXPECT_NE(o.message.find("outside registered extents"), std::string::npos);
  ASSERT_NE(o.stats.race_detector, nullptr);
  ASSERT_EQ(o.stats.race_detector->extent_violations().size(), 1u);
  EXPECT_EQ(o.stats.race_detector->extent_violations()[0].addr, 0x9000u);
}

// ---------------------------------------------------------------------------
// Real kernels: barrier-synchronized TLP variants must be race-free
// ---------------------------------------------------------------------------

TEST(RaceDetection, BarrierSynchronizedKernelsAreClean) {
  // One spin-barrier kernel and one sleeper-barrier (halt/IPI) kernel —
  // both exercise the §3.2 synchronization the detector must understand.
  for (const char* exp_name : {"lu.tlp-coarse.n64", "mm.tlp-pfetch.n64"}) {
    const host::ExperimentDef* def = host::find_experiment(exp_name);
    ASSERT_NE(def, nullptr) << exp_name;
    const core::RunOutcome o = run_def(*def, /*race_detect=*/true);
    EXPECT_EQ(o.status, core::RunStatus::kOk) << exp_name << ": " << o.message;
    ASSERT_NE(o.stats.race_detector, nullptr);
    EXPECT_TRUE(o.stats.race_detector->clean()) << exp_name;
  }
}

// ---------------------------------------------------------------------------
// Pure-observer contract: no counter bit changes when attached
// ---------------------------------------------------------------------------

TEST(RaceDetection, AttachingTheDetectorChangesNoCounterBits) {
  kernels::MatMulParams p;
  p.n = 32;
  p.tile = 16;
  p.mode = kernels::MmMode::kTlpPfetch;
  p.halt_barriers = true;  // IPI edges in play

  std::string json[2];
  Cycle cycles[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    kernels::MatMulWorkload w(p);
    const core::RunOutcome o = core::try_run_workload(
        core::MachineConfig{}, w, 100'000'000, nullptr,
        core::RunOptions{pass == 1});
    ASSERT_EQ(o.status, core::RunStatus::kOk) << o.message;
    json[pass] = core::RunReport::from(o.stats).to_json();
    cycles[pass] = o.stats.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(json[0], json[1]);  // byte-identical report, detector attached
}

}  // namespace
}  // namespace smt
