// Unit tests for the micro-ISA: opcode traits, builder, labels, disasm,
// canonical serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "isa/asm_builder.h"
#include "isa/disasm.h"
#include "isa/opcode.h"
#include "isa/program.h"
#include "isa/registers.h"
#include "isa/serialize.h"

namespace smt::isa {
namespace {

TEST(Registers, FlatIdsPartitionIntAndFp) {
  EXPECT_EQ(id(IReg::R0), 0);
  EXPECT_EQ(id(IReg::R15), 15);
  EXPECT_EQ(id(FReg::F0), 16);
  EXPECT_EQ(id(FReg::F15), 31);
  EXPECT_TRUE(is_int_reg(id(IReg::R7)));
  EXPECT_TRUE(is_fp_reg(id(FReg::F7)));
  EXPECT_FALSE(is_fp_reg(kNoReg));
}

TEST(Registers, RoundTrip) {
  for (int i = 0; i < kNumIRegs; ++i) {
    EXPECT_EQ(ireg(id(ireg_n(i))), ireg_n(i));
  }
  for (int i = 0; i < kNumFRegs; ++i) {
    EXPECT_EQ(freg(id(freg_n(i))), freg_n(i));
  }
}

TEST(OpcodeTraits, UnitClasses) {
  EXPECT_EQ(unit_class(Opcode::kIAdd), UnitClass::kAlu);
  EXPECT_EQ(unit_class(Opcode::kIAnd), UnitClass::kAlu0);
  EXPECT_EQ(unit_class(Opcode::kIShl), UnitClass::kAlu0);
  EXPECT_EQ(unit_class(Opcode::kFAdd), UnitClass::kFpAdd);
  EXPECT_EQ(unit_class(Opcode::kFSub), UnitClass::kFpAdd);
  EXPECT_EQ(unit_class(Opcode::kFMul), UnitClass::kFpMul);
  EXPECT_EQ(unit_class(Opcode::kFDiv), UnitClass::kFpDiv);
  EXPECT_EQ(unit_class(Opcode::kLoad), UnitClass::kLoad);
  EXPECT_EQ(unit_class(Opcode::kFStore), UnitClass::kStore);
  EXPECT_EQ(unit_class(Opcode::kBr), UnitClass::kBranch);
  EXPECT_EQ(unit_class(Opcode::kPause), UnitClass::kNone);
}

TEST(OpcodeTraits, MemFlags) {
  EXPECT_TRUE(traits(Opcode::kLoad).is_load);
  EXPECT_FALSE(traits(Opcode::kLoad).is_store);
  EXPECT_TRUE(traits(Opcode::kStore).is_store);
  EXPECT_FALSE(traits(Opcode::kStore).writes_reg);
  EXPECT_TRUE(traits(Opcode::kXchg).is_load);
  EXPECT_TRUE(traits(Opcode::kXchg).is_store);
  EXPECT_TRUE(traits(Opcode::kXchg).writes_reg);
  EXPECT_TRUE(traits(Opcode::kPrefetch).is_mem);
  EXPECT_FALSE(traits(Opcode::kPrefetch).writes_reg);
}

TEST(OpcodeTraits, FpDestinations) {
  EXPECT_TRUE(traits(Opcode::kFAdd).fp_dst);
  EXPECT_TRUE(traits(Opcode::kFLoad).fp_dst);
  EXPECT_FALSE(traits(Opcode::kLoad).fp_dst);
}

TEST(AsmBuilder, EmitsAndFinalizes) {
  AsmBuilder a("t");
  a.imovi(IReg::R0, 42);
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.exit();
  Program p = a.take();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.at(0).op, Opcode::kIMovImm);
  EXPECT_EQ(p.at(0).imm, 42);
  EXPECT_EQ(p.at(1).op, Opcode::kIAdd);
  EXPECT_TRUE(p.at(1).use_imm);
  EXPECT_EQ(p.at(2).op, Opcode::kExit);
  EXPECT_EQ(p.name(), "t");
}

TEST(AsmBuilder, ForwardAndBackwardLabels) {
  AsmBuilder a("labels");
  Label skip = a.label();          // forward reference
  a.imovi(IReg::R0, 0);
  Label loop = a.here();           // backward reference
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 10, loop);
  a.jmp(skip);
  a.imovi(IReg::R1, 99);           // skipped
  a.bind(skip);
  a.exit();
  Program p = a.take();
  EXPECT_EQ(p.at(2).target, 1);    // bri -> loop
  EXPECT_EQ(p.at(3).target, 5);    // jmp -> skip (the exit)
}

TEST(AsmBuilder, MemOperandEncoding) {
  AsmBuilder a("mem");
  a.load(IReg::R1, Mem::bi(IReg::R2, IReg::R3, 3, 16));
  a.fstore(FReg::F4, Mem::abs(0x1000));
  a.exit();
  Program p = a.take();
  EXPECT_EQ(p.at(0).mem.base, id(IReg::R2));
  EXPECT_EQ(p.at(0).mem.index, id(IReg::R3));
  EXPECT_EQ(p.at(0).mem.scale_log2, 3);
  EXPECT_EQ(p.at(0).mem.disp, 16);
  EXPECT_EQ(p.at(1).mem.base, kNoReg);
  EXPECT_EQ(p.at(1).mem.disp, 0x1000);
  EXPECT_EQ(p.at(1).rs1, id(FReg::F4));
}

TEST(AsmBuilder, XchgReadsAndWritesSameRegister) {
  AsmBuilder a("x");
  a.xchg(IReg::R5, Mem::abs(0x2000));
  a.exit();
  Program p = a.take();
  EXPECT_EQ(p.at(0).rd, id(IReg::R5));
  EXPECT_EQ(p.at(0).rs1, id(IReg::R5));
}

TEST(AsmBuilderDeath, UnboundLabelIsFatal) {
  AsmBuilder a("bad");
  Label l = a.label();
  a.jmp(l);
  EXPECT_DEATH(a.take(), "never bound");
}

TEST(AsmBuilderDeath, FallingOffTheEndIsFatal) {
  AsmBuilder a("bad");
  a.imovi(IReg::R0, 1);
  EXPECT_DEATH(a.take(), "fall off");
}

TEST(AsmBuilderDeath, DoubleBindIsFatal) {
  AsmBuilder a("bad");
  Label l = a.here();
  EXPECT_DEATH(a.bind(l), "twice");
}

TEST(Disasm, FormatsCommonInstructions) {
  AsmBuilder a("d");
  a.fadd(FReg::F2, FReg::F2, FReg::F5);
  a.imovi(IReg::R3, -7);
  Label loop = a.here();
  a.load(IReg::R1, Mem::bi(IReg::R2, IReg::R3, 3, 8));
  a.bri(BrCond::kGe, IReg::R1, 0, loop);
  a.exit();
  Program p = a.take();
  EXPECT_NE(disasm(p.at(0)).find("fadd"), std::string::npos);
  EXPECT_NE(disasm(p.at(0)).find("f2"), std::string::npos);
  EXPECT_NE(disasm(p.at(2)).find("[r2+r3*8+8]"), std::string::npos);
  EXPECT_NE(disasm(p.at(3)).find("ge"), std::string::npos);
  const std::string full = disasm(p);
  EXPECT_NE(full.find("0:"), std::string::npos);
  EXPECT_NE(full.find("exit"), std::string::npos);
}

TEST(Disasm, EveryOpcodeHasAName) {
  for (int i = 0; i < kNumOpcodeValues; ++i) {
    EXPECT_NE(traits(static_cast<Opcode>(i)).name, nullptr);
    EXPECT_GT(std::string(traits(static_cast<Opcode>(i)).name).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Canonical serialization (the result cache's keying primitive)
// ---------------------------------------------------------------------------

Program sample_program(int64_t imm) {
  AsmBuilder a("sample");
  a.imovi(IReg::R0, imm);
  Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 10, loop);
  a.store(IReg::R0, Mem::abs(0x2000));
  a.exit();
  return a.take();
}

TEST(Serialize, CanonicalFormIsStableAndVersioned) {
  const std::string s1 = canonical_serialization(sample_program(3));
  const std::string s2 = canonical_serialization(sample_program(3));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.rfind("smt-isa-program/1\n", 0), 0u);
  EXPECT_NE(s1.find("sample"), std::string::npos);
  const std::string d = program_digest(sample_program(3));
  EXPECT_EQ(d, program_digest(sample_program(3)));
  EXPECT_EQ(d.size(), 16u);
  EXPECT_EQ(d.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Serialize, DigestSeesEveryProgramField) {
  const std::string base = program_digest(sample_program(3));
  // A different immediate.
  EXPECT_NE(base, program_digest(sample_program(4)));
  // A different name, same code.
  {
    AsmBuilder a("other-name");
    a.imovi(IReg::R0, 3);
    Label loop = a.here();
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.bri(BrCond::kLt, IReg::R0, 10, loop);
    a.store(IReg::R0, Mem::abs(0x2000));
    a.exit();
    EXPECT_NE(base, program_digest(a.take()));
  }
  // Sync-region metadata participates: the same code with a region
  // annotation keys differently (the lint and race detector see it).
  {
    AsmBuilder a("sample");
    a.imovi(IReg::R0, 3);
    a.begin_sync_region("loop", 1u << id(IReg::R0), false);
    Label loop = a.here();
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.bri(BrCond::kLt, IReg::R0, 10, loop);
    a.end_sync_region();
    a.store(IReg::R0, Mem::abs(0x2000));
    a.exit();
    EXPECT_NE(base, program_digest(a.take()));
  }
}

TEST(Serialize, FpImmediatesAreBitExact) {
  const auto digest_of = [](double v) {
    AsmBuilder a("fp");
    a.fmovi(FReg::F0, v);
    a.exit();
    return program_digest(a.take());
  };
  // 0.0 == -0.0 as doubles, but their bit patterns differ — a cache key
  // must see the bits, not the value.
  EXPECT_NE(digest_of(0.0), digest_of(-0.0));
  EXPECT_EQ(digest_of(0.25), digest_of(0.25));
  EXPECT_NE(digest_of(1.0), digest_of(std::nextafter(1.0, 2.0)));
}

}  // namespace
}  // namespace smt::isa
