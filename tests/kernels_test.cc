// Kernel tests: host references, layouts, and end-to-end simulated
// execution of every kernel variant at small sizes, verified against the
// host-side reference implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "common/stats.h"
#include "core/runner.h"
#include "kernels/bt.h"
#include "kernels/cg.h"
#include "kernels/layouts.h"
#include "kernels/lu.h"
#include "kernels/matmul.h"
#include "kernels/reference.h"
#include "perfmon/events.h"
#include "sync/primitives.h"

namespace smt::kernels {
namespace {

using core::MachineConfig;
using core::RunStats;
using perfmon::Event;

// ---------------------------------------------------------------------------
// Layouts
// ---------------------------------------------------------------------------

TEST(BlockedLayout, OffsetIsABijection) {
  BlockedLayout l(16, 4);
  std::vector<bool> seen(l.words(), false);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      const size_t off = l.offset(i, j);
      ASSERT_LT(off, l.words());
      EXPECT_FALSE(seen[off]) << "collision at " << i << "," << j;
      seen[off] = true;
    }
  }
}

TEST(BlockedLayout, TilesAreContiguous) {
  BlockedLayout l(16, 4);
  // Within tile (ti, tj) the 16 elements occupy [tile_offset, +16).
  for (size_t ti = 0; ti < 4; ++ti) {
    for (size_t tj = 0; tj < 4; ++tj) {
      const size_t base = l.tile_offset(ti, tj);
      for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 4; ++j) {
          const size_t off = l.offset(ti * 4 + i, tj * 4 + j);
          EXPECT_EQ(off, base + i * 4 + j);
        }
      }
    }
  }
}

TEST(BlockedLayout, RowMajorWhenTileEqualsMatrix) {
  BlockedLayout l(8, 8);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) EXPECT_EQ(l.offset(i, j), i * 8 + j);
  }
}

TEST(Log2Exact, PowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(64), 6);
  EXPECT_EQ(log2_exact(1 << 20), 20);
}

// ---------------------------------------------------------------------------
// Host references
// ---------------------------------------------------------------------------

TEST(Reference, MatmulIdentity) {
  const size_t n = 8;
  Rng rng(1);
  std::vector<double> a = random_matrix(n, rng);
  std::vector<double> eye(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  std::vector<double> c;
  ref_matmul(a, eye, c, n);
  for (size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(c[i], a[i]);
}

TEST(Reference, LuReconstructsMatrix) {
  const size_t n = 12;
  Rng rng(2);
  std::vector<double> a = random_diag_dominant_matrix(n, rng);
  std::vector<double> lu = a;
  ref_lu(lu, n);
  // Rebuild A = L*U and compare.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const size_t kmax = std::min(i, j + 1);
      for (size_t k = 0; k < kmax; ++k) s += lu[i * n + k] * lu[k * n + j];
      if (i <= j) s += lu[i * n + j];  // unit diagonal of L
      EXPECT_LT(rel_err(s, a[i * n + j]), 1e-9);
    }
  }
}

TEST(Reference, SparseSpdIsSymmetricWithDominantDiagonal) {
  Rng rng(3);
  SparseMatrix m = make_sparse_spd(64, 4, rng);
  EXPECT_EQ(m.rowptr.size(), 65u);
  // Build a dense mirror and check symmetry + diagonal dominance.
  std::vector<double> dense(64 * 64, 0.0);
  for (size_t i = 0; i < 64; ++i) {
    for (int64_t k = m.rowptr[i]; k < m.rowptr[i + 1]; ++k) {
      dense[i * 64 + m.colidx[k]] += m.values[k];
    }
  }
  for (size_t i = 0; i < 64; ++i) {
    double off = 0.0;
    for (size_t j = 0; j < 64; ++j) {
      EXPECT_NEAR(dense[i * 64 + j], dense[j * 64 + i], 1e-12);
      if (i != j) off += std::fabs(dense[i * 64 + j]);
    }
    EXPECT_GT(dense[i * 64 + i], off);  // strict dominance -> SPD
  }
}

TEST(Reference, CgConvergesOnSpdSystem) {
  Rng rng(4);
  SparseMatrix m = make_sparse_spd(128, 5, rng);
  std::vector<double> x(m.n, 1.0), z;
  const double rho0 = 128.0;  // |r|^2 at z=0 is |x|^2
  const double rho = ref_cg(m, x, z, 25);
  EXPECT_LT(rho, rho0 * 1e-10);
  // Check A z ~= x.
  std::vector<double> az;
  ref_spmv(m, z, az);
  for (size_t i = 0; i < m.n; ++i) EXPECT_LT(std::fabs(az[i] - x[i]), 1e-4);
}

TEST(Reference, BtLineSolveSatisfiesSystem) {
  Rng rng(5);
  const size_t cells = 8;
  BtLine line = make_bt_line(cells, rng);
  const BtLine orig = line;  // keep the original blocks/rhs
  ref_bt_solve_line(line);
  // Extract solution vectors and check A_i x_{i-1} + B_i x_i + C_i x_{i+1}
  // == rhs_i against the original data.
  constexpr size_t B = kBtBlock;
  for (size_t i = 0; i < cells; ++i) {
    const double* a = orig.cell(i);
    const double* b = a + B * B;
    const double* c = a + 2 * B * B;
    const double* rhs = a + 3 * B * B;
    double acc[B] = {};
    double tmp[B];
    if (i > 0) {
      ref_mat5_vec(a, line.cell(i - 1) + 3 * B * B, tmp);
      for (size_t k = 0; k < B; ++k) acc[k] += tmp[k];
    }
    ref_mat5_vec(b, line.cell(i) + 3 * B * B, tmp);
    for (size_t k = 0; k < B; ++k) acc[k] += tmp[k];
    if (i + 1 < cells) {
      ref_mat5_vec(c, line.cell(i + 1) + 3 * B * B, tmp);
      for (size_t k = 0; k < B; ++k) acc[k] += tmp[k];
    }
    for (size_t k = 0; k < B; ++k) EXPECT_LT(rel_err(acc[k], rhs[k]), 1e-8);
  }
}

// ---------------------------------------------------------------------------
// Simulated MM variants (small sizes; correctness end to end)
// ---------------------------------------------------------------------------

class MatMulModes : public ::testing::TestWithParam<MmMode> {};

TEST_P(MatMulModes, ComputesCorrectProduct) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = GetParam();
  MatMulWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified) << w.name();
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.total(Event::kInstrRetired), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, MatMulModes,
                         ::testing::Values(MmMode::kSerial, MmMode::kTlpFine,
                                           MmMode::kTlpCoarse,
                                           MmMode::kTlpPfetch,
                                           MmMode::kTlpPfetchWork),
                         [](const auto& info) {
                           std::string s = name(info.param);
                           for (char& c : s) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return s;
                         });

TEST(MatMul, SprWithHaltBarriersStillCorrect) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  p.halt_barriers = true;
  MatMulWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified);
  EXPECT_GT(stats.cpu(CpuId::kCpu1, Event::kHaltTransitions), 0u);
}

TEST(MatMul, TlpModesSplitTheWork) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpCoarse;
  MatMulWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  const uint64_t i0 = stats.cpu(CpuId::kCpu0, Event::kInstrRetired);
  const uint64_t i1 = stats.cpu(CpuId::kCpu1, Event::kInstrRetired);
  EXPECT_GT(i0, 0u);
  EXPECT_GT(i1, 0u);
  // Roughly equal halves.
  EXPECT_LT(static_cast<double>(i0 > i1 ? i0 - i1 : i1 - i0) /
                static_cast<double>(i0 + i1),
            0.2);
}

TEST(MatMul, PrefetcherIsLightweight) {
  MatMulParams p;
  p.n = 32;
  p.tile = 8;
  p.mode = MmMode::kTlpPfetch;
  MatMulWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(stats.verified);
  // The MM prefetcher retires far fewer instructions than the worker
  // (paper Table 1: 0.20e9 vs 4.60e9).
  EXPECT_LT(stats.cpu(CpuId::kCpu1, Event::kInstrRetired) * 2,
            stats.cpu(CpuId::kCpu0, Event::kInstrRetired));
  EXPECT_GT(stats.cpu(CpuId::kCpu1, Event::kPrefetchesRetired), 0u);
}

// ---------------------------------------------------------------------------
// Simulated LU variants
// ---------------------------------------------------------------------------

class LuModes : public ::testing::TestWithParam<LuMode> {};

TEST_P(LuModes, ComputesCorrectFactorization) {
  LuParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = GetParam();
  LuWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(AllModes, LuModes,
                         ::testing::Values(LuMode::kSerial, LuMode::kTlpCoarse,
                                           LuMode::kTlpPfetch),
                         [](const auto& info) {
                           std::string s = name(info.param);
                           for (char& c : s) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return s;
                         });

TEST(Lu, LargerSizeStillCorrect) {
  LuParams p;
  p.n = 32;
  p.tile = 8;
  p.mode = LuMode::kTlpCoarse;
  LuWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified);
}

// ---------------------------------------------------------------------------
// Simulated CG variants
// ---------------------------------------------------------------------------

CgParams small_cg(CgMode mode) {
  CgParams p;
  p.n = 256;
  p.nz_per_row = 4;
  p.iters = 8;
  p.span_rows = 32;
  p.mode = mode;
  return p;
}

class CgModes : public ::testing::TestWithParam<CgMode> {};

TEST_P(CgModes, SolvesTheSystem) {
  CgWorkload w(small_cg(GetParam()));
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(AllModes, CgModes,
                         ::testing::Values(CgMode::kSerial, CgMode::kTlpCoarse,
                                           CgMode::kTlpPfetch,
                                           CgMode::kTlpPfetchWork),
                         [](const auto& info) {
                           std::string s = name(info.param);
                           for (char& c : s) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return s;
                         });

TEST(Cg, PrefetchModeIssuesPrefetches) {
  CgWorkload w(small_cg(CgMode::kTlpPfetch));
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(stats.verified);
  EXPECT_GT(stats.cpu(CpuId::kCpu1, Event::kPrefetchesRetired), 100u);
  EXPECT_EQ(stats.cpu(CpuId::kCpu0, Event::kPrefetchesRetired), 0u);
}

TEST(Cg, CoarseSplitsWorkRoughlyEvenly) {
  CgWorkload w(small_cg(CgMode::kTlpCoarse));
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(stats.verified);
  const double i0 =
      static_cast<double>(stats.cpu(CpuId::kCpu0, Event::kInstrRetired));
  const double i1 =
      static_cast<double>(stats.cpu(CpuId::kCpu1, Event::kInstrRetired));
  EXPECT_LT(std::fabs(i0 - i1) / (i0 + i1), 0.25);
}

// ---------------------------------------------------------------------------
// Simulated BT variants
// ---------------------------------------------------------------------------

BtParams small_bt(BtMode mode) {
  BtParams p;
  p.lines = 4;
  p.cells = 6;
  p.mode = mode;
  return p;
}

class BtModes : public ::testing::TestWithParam<BtMode> {};

TEST_P(BtModes, SolvesEveryLine) {
  BtWorkload w(small_bt(GetParam()));
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(AllModes, BtModes,
                         ::testing::Values(BtMode::kSerial, BtMode::kTlpCoarse,
                                           BtMode::kTlpPfetch),
                         [](const auto& info) {
                           std::string s = name(info.param);
                           for (char& c : s) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return s;
                         });

TEST(Bt, CoarseNeedsNoSynchronization) {
  BtWorkload w(small_bt(BtMode::kTlpCoarse));
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(stats.verified);
  EXPECT_EQ(stats.total(Event::kPausesExecuted), 0u);
  EXPECT_EQ(stats.total(Event::kIpisSent), 0u);
}

TEST(Bt, HaltBarrierPrefetchIsCorrect) {
  BtParams p = small_bt(BtMode::kTlpPfetch);
  p.halt_barriers = true;
  BtWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(stats.verified);
  EXPECT_GT(stats.cpu(CpuId::kCpu1, Event::kHaltTransitions), 0u);
}

// ---------------------------------------------------------------------------
// Parameter sweeps: every kernel stays correct across sizes/tiles/spans.
// ---------------------------------------------------------------------------

using MmSweepCase = std::tuple<size_t, size_t, MmMode>;  // n, tile, mode

class MatMulSweep : public ::testing::TestWithParam<MmSweepCase> {};

TEST_P(MatMulSweep, CorrectAcrossSizesAndTiles) {
  const auto [n, tile, mode] = GetParam();
  MatMulParams p;
  p.n = n;
  p.tile = tile;
  p.mode = mode;
  MatMulWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatMulSweep,
    ::testing::Values(MmSweepCase{8, 4, MmMode::kSerial},
                      MmSweepCase{16, 8, MmMode::kSerial},
                      MmSweepCase{16, 16, MmMode::kSerial},  // one tile
                      MmSweepCase{32, 4, MmMode::kTlpFine},
                      MmSweepCase{32, 8, MmMode::kTlpCoarse},
                      MmSweepCase{32, 16, MmMode::kTlpPfetch},
                      MmSweepCase{16, 8, MmMode::kTlpPfetchWork}));

using LuSweepCase = std::tuple<size_t, size_t, LuMode>;

class LuSweep : public ::testing::TestWithParam<LuSweepCase> {};

TEST_P(LuSweep, CorrectAcrossSizesAndTiles) {
  const auto [n, tile, mode] = GetParam();
  LuParams p;
  p.n = n;
  p.tile = tile;
  p.mode = mode;
  LuWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSweep,
                         ::testing::Values(LuSweepCase{8, 4, LuMode::kSerial},
                                           LuSweepCase{16, 16, LuMode::kSerial},
                                           LuSweepCase{32, 4, LuMode::kTlpCoarse},
                                           LuSweepCase{16, 8, LuMode::kTlpPfetch},
                                           LuSweepCase{64, 32, LuMode::kSerial}));

class CgSpanSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CgSpanSweep, SprCorrectAcrossSpanSizes) {
  CgParams p;
  p.n = 256;
  p.nz_per_row = 4;
  p.iters = 5;
  p.span_rows = GetParam();
  p.mode = CgMode::kTlpPfetch;
  CgWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified)
      << "span=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Spans, CgSpanSweep,
                         ::testing::Values(8, 16, 64, 256));

TEST(CgSweep, HybridWithTinySpans) {
  CgParams p;
  p.n = 128;
  p.nz_per_row = 3;
  p.iters = 4;
  p.span_rows = 8;
  p.mode = CgMode::kTlpPfetchWork;
  CgWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified);
}

using BtSweepCase = std::tuple<size_t, size_t, BtMode>;

class BtSweep : public ::testing::TestWithParam<BtSweepCase> {};

TEST_P(BtSweep, CorrectAcrossGridShapes) {
  const auto [lines, cells, mode] = GetParam();
  BtParams p;
  p.lines = lines;
  p.cells = cells;
  p.mode = mode;
  BtWorkload w(p);
  EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified) << w.name();
}

INSTANTIATE_TEST_SUITE_P(Shapes, BtSweep,
                         ::testing::Values(BtSweepCase{2, 2, BtMode::kSerial},
                                           BtSweepCase{3, 7, BtMode::kTlpCoarse},
                                           BtSweepCase{2, 12, BtMode::kTlpPfetch},
                                           BtSweepCase{8, 4, BtMode::kTlpCoarse},
                                           BtSweepCase{5, 3, BtMode::kSerial}));

TEST(KernelConfigs, HaltBarriersAcrossSprKernels) {
  // Every SPR kernel must stay correct when its throttling barriers use
  // the halt/IPI sleeper protocol.
  {
    MatMulParams p;
    p.n = 16;
    p.tile = 4;
    p.mode = MmMode::kTlpPfetchWork;
    p.halt_barriers = true;
    MatMulWorkload w(p);
    EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified);
  }
  {
    LuParams p;
    p.n = 16;
    p.tile = 4;
    p.mode = LuMode::kTlpPfetch;
    p.halt_barriers = true;
    LuWorkload w(p);
    EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified);
  }
  {
    CgParams p;
    p.n = 128;
    p.nz_per_row = 3;
    p.iters = 3;
    p.span_rows = 16;
    p.mode = CgMode::kTlpPfetch;
    p.halt_barriers = true;
    CgWorkload w(p);
    EXPECT_TRUE(core::run_workload(MachineConfig{}, w).verified);
  }
}

TEST(KernelConfigs, TightSpinBarriersStillCorrect) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  p.spin = sync::SpinKind::kTight;
  MatMulWorkload w(p);
  const RunStats st = core::run_workload(MachineConfig{}, w);
  EXPECT_TRUE(st.verified);
  // Tight spinning across the sync variables must trigger machine clears.
  EXPECT_GT(st.total(perfmon::Event::kMachineClears), 0u);
}

TEST(KernelConfigs, KernelsRunOnCustomMachines) {
  // A machine with tiny caches and no hardware prefetcher still computes
  // correct results (timing changes, semantics do not).
  MachineConfig cfg;
  cfg.mem.l1 = {"L1", 2 * 1024, 2, 64};
  cfg.mem.l2 = {"L2", 32 * 1024, 4, 64};
  cfg.mem.hw_stream_prefetch = false;
  cfg.core.rob_size = 32;
  cfg.core.sched_window = 12;
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpCoarse;
  MatMulWorkload w(p);
  EXPECT_TRUE(core::run_workload(cfg, w).verified);
}

TEST(Lu, PrefetcherExecutesComparableInstructionCount) {
  LuParams p;
  p.n = 32;
  p.tile = 8;
  p.mode = LuMode::kTlpPfetch;
  LuWorkload w(p);
  const RunStats stats = core::run_workload(MachineConfig{}, w);
  ASSERT_TRUE(stats.verified);
  const double worker =
      static_cast<double>(stats.cpu(CpuId::kCpu0, Event::kInstrRetired));
  const double pfetch =
      static_cast<double>(stats.cpu(CpuId::kCpu1, Event::kInstrRetired));
  // Paper Table 1: LU's prefetcher retires about as many instructions as
  // the worker (3.26e9 vs 3.21e9). Accept a broad band around parity.
  EXPECT_GT(pfetch, 0.25 * worker);
  EXPECT_LT(pfetch, 2.5 * worker);
}

}  // namespace
}  // namespace smt::kernels
