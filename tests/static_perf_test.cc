// Tests for the static CPI lower-bound advisor: the constraint families
// on hand-built programs (port pressure, unpipelined dividers,
// loop-carried dependence chains, the retire-width floor), graceful
// degradation on malformed programs, determinism — and the soundness
// contract itself, cross-validated against the cycle-accurate core over
// the full bench registry: the static bound must never exceed the
// measured active-cycle CPI of any completed run.
#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/static_perf.h"
#include "core/machine.h"
#include "core/runner.h"
#include "gtest/gtest.h"
#include "host/experiments.h"
#include "isa/asm_builder.h"
#include "perfmon/cycle_accounting.h"

namespace smt::analysis {
namespace {

using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;

const cpu::CoreConfig kCfg;

/// Counted loop whose body is supplied by `body`, plus counter + branch.
template <typename Body>
isa::Program loop_program(const char* name, int64_t trips, Body body) {
  AsmBuilder a(name);
  a.fmovi(FReg::F0, 1.0);
  a.imovi(IReg::R0, 0);
  const Label top = a.here();
  body(a);
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, trips, top);
  a.exit();
  return a.take();
}

TEST(StaticPerf, EmptyProgramReportsZeroWithoutAborting) {
  const StaticPerf sp = static_cpi_bound(isa::Program("empty", {}), kCfg);
  EXPECT_FALSE(sp.exact);
  EXPECT_EQ(sp.cpi_lb, 0.0);
}

TEST(StaticPerf, StraightLineIsExactAndRespectsTheRetireFloor) {
  AsmBuilder a("straight");
  a.imovi(IReg::R0, 1);
  a.iaddi(IReg::R1, IReg::R0, 2);
  a.iaddi(IReg::R2, IReg::R0, 3);
  a.exit();
  const StaticPerf sp = static_cpi_bound(a.take(), kCfg);
  EXPECT_TRUE(sp.exact);
  EXPECT_EQ(sp.instrs, 4u);
  EXPECT_GE(sp.cpi_lb, 1.0 / kCfg.retire_width);
  EXPECT_GT(sp.cycles_lb, 0.0);
  EXPECT_FALSE(sp.binding.empty());
}

TEST(StaticPerf, SharedFpPortBindsAnFpHeavyLoop) {
  // Two independent fp adds per iteration against a single fp port: the
  // port needs 2 cycles for the 4-instruction body.
  const isa::Program p = loop_program("fp-heavy", 100, [](AsmBuilder& a) {
    a.fadd(FReg::F1, FReg::F0, FReg::F0);
    a.fadd(FReg::F2, FReg::F0, FReg::F0);
  });
  const StaticPerf sp = static_cpi_bound(p, kCfg);
  ASSERT_TRUE(sp.exact);
  EXPECT_EQ(sp.binding, "fp port");
  EXPECT_GE(sp.cpi_lb, 0.4);
  EXPECT_LE(sp.cpi_lb, 0.6);
  // The fp port column carries the two adds per iteration.
  EXPECT_GE(sp.port_uops[static_cast<int>(cpu::IssuePort::kFp)], 200.0);
}

TEST(StaticPerf, UnpipelinedDividerDominates) {
  const isa::Program p = loop_program("div-heavy", 100, [](AsmBuilder& a) {
    a.fdiv(FReg::F1, FReg::F0, FReg::F0);
  });
  const StaticPerf sp = static_cpi_bound(p, kCfg);
  ASSERT_TRUE(sp.exact);
  EXPECT_EQ(sp.binding, "fdiv unit");
  EXPECT_GT(sp.cpi_lb, 5.0);
}

TEST(StaticPerf, LoopCarriedChainBeatsPortPressure) {
  // f1 = f1 + f0 serializes on the fadd latency; the same loop with an
  // independent destination is only port-bound.
  const isa::Program chained =
      loop_program("chain", 100, [](AsmBuilder& a) {
        a.fadd(FReg::F1, FReg::F1, FReg::F0);
      });
  const isa::Program free =
      loop_program("free", 100, [](AsmBuilder& a) {
        a.fadd(FReg::F1, FReg::F0, FReg::F0);
      });
  const StaticPerf sc = static_cpi_bound(chained, kCfg);
  const StaticPerf sf = static_cpi_bound(free, kCfg);
  ASSERT_TRUE(sc.exact);
  EXPECT_EQ(sc.binding, "loop-carried fadd chain");
  EXPECT_GT(sc.cpi_lb, sf.cpi_lb);
}

TEST(StaticPerf, MalformedProgramFallsBackToTheDensityBound) {
  // Falls off the end: no exact loop structure, but the fallback still
  // guarantees the retire-width floor.
  std::vector<isa::Instr> code(3);
  const StaticPerf sp =
      static_cpi_bound(isa::Program("fall", std::move(code)), kCfg);
  EXPECT_FALSE(sp.exact);
  EXPECT_GE(sp.cpi_lb, 1.0 / kCfg.retire_width);
}

TEST(StaticPerf, BoundIsDeterministic) {
  const isa::Program p = loop_program("det", 64, [](AsmBuilder& a) {
    a.fadd(FReg::F1, FReg::F0, FReg::F0);
    a.iaddi(IReg::R1, IReg::R0, 1);
  });
  const StaticPerf a = static_cpi_bound(p, kCfg);
  const StaticPerf b = static_cpi_bound(p, kCfg);
  EXPECT_EQ(a.cpi_lb, b.cpi_lb);
  EXPECT_EQ(a.cycles_lb, b.cycles_lb);
  EXPECT_EQ(a.binding, b.binding);
  EXPECT_EQ(a.instrs, b.instrs);
}

// ---------------------------------------------------------------------------
// The soundness contract, against the cycle-accurate core
// ---------------------------------------------------------------------------

TEST(StaticPerfRegistry, BoundNeverExceedsMeasuredCpiOnAnyBenchKernel) {
  const std::vector<std::string> names = host::default_manifest();
  ASSERT_GT(names.size(), 20u);

  std::mutex mu;
  std::vector<std::string> failures;
  int validated = 0;
  int exact_bounds = 0;
  std::atomic<size_t> next{0};

  const auto worker = [&] {
    for (size_t i; (i = next.fetch_add(1)) < names.size();) {
      const host::ExperimentDef* def = host::find_experiment(names[i]);
      ASSERT_NE(def, nullptr) << names[i];

      // The static bounds, from the program text alone.
      const std::unique_ptr<core::Workload> probe = def->make();
      core::Machine layout_only;
      probe->setup(layout_only);
      const std::vector<isa::Program> programs = probe->programs();
      const core::MachineConfig mc;
      std::vector<StaticPerf> bounds;
      bounds.reserve(programs.size());
      for (const isa::Program& p : programs) {
        bounds.push_back(static_cpi_bound(p, mc.core));
      }

      // The measured run. The bound is only a contract for COMPLETED
      // runs, so anything else is skipped (and would fail other gates).
      const std::unique_ptr<core::Workload> w = def->make();
      const core::RunOutcome out =
          core::try_run_workload(mc, *w, def->cycle_budget);
      if (!out.ok()) continue;
      const perfmon::CycleAccounting acc =
          perfmon::account_cycles(out.stats.events, out.stats.cycles);

      std::lock_guard<std::mutex> lock(mu);
      for (size_t c = 0; c < bounds.size(); ++c) {
        const double measured = acc.cpu[c].cpi;
        if (acc.cpu[c].instr_retired == 0) continue;
        ++validated;
        if (bounds[c].exact) ++exact_bounds;
        if (bounds[c].cpi_lb > measured + 1e-9) {
          std::ostringstream os;
          os << names[i] << " cpu" << c << ": static bound "
             << bounds[c].cpi_lb << " (" << bounds[c].binding
             << (bounds[c].exact ? ", exact" : ", fallback")
             << ") exceeds measured cpi " << measured;
          failures.push_back(os.str());
        }
      }
    }
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t nthreads =
      std::min<size_t>(names.size(), hw == 0 ? 4 : hw);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  for (const std::string& f : failures) ADD_FAILURE() << f;
  // Every default-manifest kernel completes, so every program's bound
  // must have been exercised against a measurement.
  EXPECT_GT(validated, 30);
  // Only the serial kernels are eligible for exact bounds (every TLP
  // variant spins on xchg/pause, which excludes exact mode by design),
  // so the advisor must resolve at least a handful of them exactly
  // rather than always falling back to the density bound.
  EXPECT_GE(exact_bounds, 6);
}

}  // namespace
}  // namespace smt::analysis
