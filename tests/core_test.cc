// Tests for the public API layer: Machine, Workload, ExperimentRunner and
// the perfmon snapshot arithmetic they rely on.
#include <gtest/gtest.h>

#include "common/json.h"
#include "core/machine.h"
#include "core/run_report.h"
#include "core/runner.h"
#include "core/workload.h"
#include "isa/asm_builder.h"
#include "perfmon/counters.h"

namespace smt::core {
namespace {

using isa::AsmBuilder;
using isa::BrCond;
using isa::IReg;
using isa::Mem;
using perfmon::Event;

isa::Program count_to(int n, Addr out) {
  AsmBuilder a("count");
  a.imovi(IReg::R0, 0);
  isa::Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, n, loop);
  a.store(IReg::R0, Mem::abs(out));
  a.exit();
  return a.take();
}

TEST(Machine, DefaultConfigIsNetburstClass) {
  Machine m;
  EXPECT_EQ(m.config().core.fetch_width, 3);
  EXPECT_EQ(m.config().core.retire_width, 3);
  EXPECT_EQ(m.config().mem.l1.size_bytes, 8u * 1024);
  EXPECT_EQ(m.config().mem.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(m.config().mem.l2.assoc, 8);  // the paper's A = 8
}

TEST(Machine, CustomConfigPropagates) {
  MachineConfig cfg;
  cfg.core.lat_fadd = 9;
  cfg.mem.l1.size_bytes = 16 * 1024;
  Machine m(cfg);
  EXPECT_EQ(m.config().core.lat_fadd, 9u);
  EXPECT_EQ(m.hierarchy().config().l1.size_bytes, 16u * 1024);
}

TEST(Machine, RunsASingleProgram) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(100, 0x9000));
  m.run();
  EXPECT_EQ(m.memory().read_i64(0x9000), 100);
  EXPECT_GT(m.cycles(), 0u);
}

TEST(Machine, RunsTwoIndependentPrograms) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(100, 0x9000));
  m.load_program(CpuId::kCpu1, count_to(50, 0x9040));
  m.run();
  EXPECT_EQ(m.memory().read_i64(0x9000), 100);
  EXPECT_EQ(m.memory().read_i64(0x9040), 50);
}

TEST(MachineDeath, DoubleBindIsFatal) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(1, 0x9000));
  EXPECT_DEATH(m.load_program(CpuId::kCpu0, count_to(1, 0x9000)),
               "already has a program");
}

TEST(Machine, SingleThreadOwnsAllCycles) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(1000, 0x9000));
  m.run();
  // A lone context is active for the whole wall clock (modulo the final
  // exit-transition cycle); the idle context accumulates nothing.
  const uint64_t active = m.counters().get(CpuId::kCpu0, Event::kCyclesActive);
  EXPECT_LE(m.cycles() - active, 1u);
  EXPECT_EQ(m.counters().get(CpuId::kCpu1, Event::kCyclesActive), 0u);
  EXPECT_EQ(m.counters().get(CpuId::kCpu1, Event::kInstrRetired), 0u);
}

TEST(Machine, DeterministicAcrossInstances) {
  auto run_once = [] {
    Machine m;
    m.load_program(CpuId::kCpu0, count_to(500, 0x9000));
    m.load_program(CpuId::kCpu1, count_to(700, 0x9040));
    m.run();
    return m.cycles();
  };
  const Cycle a = run_once();
  const Cycle b = run_once();
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

TEST(Snapshot, DeltaBracketsAnInterval) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(100, 0x9000));
  const perfmon::Snapshot before = m.counters().snapshot();
  m.run();
  const perfmon::Snapshot after = m.counters().snapshot();
  const perfmon::Snapshot delta = after - before;
  EXPECT_EQ(delta.get(CpuId::kCpu0, Event::kInstrRetired),
            after.get(CpuId::kCpu0, Event::kInstrRetired));
  EXPECT_EQ(delta.total(Event::kInstrRetired),
            delta.get(CpuId::kCpu0, Event::kInstrRetired));
}

TEST(PerfCounters, CpiIsCyclesOverInstructions) {
  perfmon::PerfCounters c;
  c.add(CpuId::kCpu0, Event::kCyclesActive, 500);
  c.add(CpuId::kCpu0, Event::kInstrRetired, 250);
  EXPECT_DOUBLE_EQ(c.cpi(CpuId::kCpu0), 2.0);
  EXPECT_DOUBLE_EQ(c.cpi(CpuId::kCpu1), 0.0);  // no instructions: defined 0
}

TEST(PerfCounters, ResetClearsEverything) {
  perfmon::PerfCounters c;
  c.add(CpuId::kCpu1, Event::kL2Misses, 7);
  c.reset();
  EXPECT_EQ(c.total(Event::kL2Misses), 0u);
}

TEST(PerfCounters, ToStringListsNonzeroEvents) {
  perfmon::PerfCounters c;
  c.add(CpuId::kCpu0, Event::kMachineClears, 3);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("machine_clears"), std::string::npos);
  EXPECT_EQ(s.find("ipis_sent"), std::string::npos);
}

TEST(PerfCounters, EveryEventHasAName) {
  for (int e = 0; e < perfmon::kNumEventValues; ++e) {
    EXPECT_NE(perfmon::name(static_cast<Event>(e)), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

class TrivialWorkload : public Workload {
 public:
  explicit TrivialWorkload(bool pass) : pass_(pass) {}
  const std::string& name() const override { return name_; }
  void setup(Machine& m) override { m.memory().write_i64(0xa000, 5); }
  std::vector<isa::Program> programs() const override {
    AsmBuilder a("t");
    a.load(IReg::R0, Mem::abs(0xa000));
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.store(IReg::R0, Mem::abs(0xa000));
    a.exit();
    return {a.take()};
  }
  bool verify(const Machine& m) const override {
    return pass_ && m.memory().read_i64(0xa000) == 6;
  }

 private:
  std::string name_ = "trivial";
  bool pass_;
};

TEST(Runner, RunsAndVerifies) {
  TrivialWorkload w(true);
  const RunStats st = run_workload(MachineConfig{}, w);
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(st.workload, "trivial");
  EXPECT_GT(st.cycles, 0u);
  EXPECT_EQ(st.cpu(CpuId::kCpu0, Event::kStoresRetired), 1u);
}

TEST(Runner, ReportsFailedVerification) {
  TrivialWorkload w(false);
  const RunStats st = run_workload(MachineConfig{}, w);
  EXPECT_FALSE(st.verified);
}

// ---------------------------------------------------------------------------
// Structured run outcomes (try_run_workload)
// ---------------------------------------------------------------------------

/// Halts its only context: no sibling ever sends the wake-up IPI, so the
/// machine has no future event — the canonical lost-wake-up deadlock.
class HaltForeverWorkload : public Workload {
 public:
  const std::string& name() const override { return name_; }
  void setup(Machine&) override {}
  std::vector<isa::Program> programs() const override {
    AsmBuilder a("sleeper");
    a.halt();
    a.exit();
    return {a.take()};
  }
  bool verify(const Machine&) const override { return true; }

 private:
  std::string name_ = "halt-forever";
};

/// Counts to `n` — cheap to make arbitrarily longer than a cycle budget.
class CountWorkload : public Workload {
 public:
  explicit CountWorkload(int n) : n_(n) {}
  const std::string& name() const override { return name_; }
  void setup(Machine&) override {}
  std::vector<isa::Program> programs() const override {
    return {count_to(n_, 0x9000)};
  }
  bool verify(const Machine& m) const override {
    return m.memory().read_i64(0x9000) == n_;
  }

 private:
  std::string name_ = "count";
  int n_;
};

TEST(TryRunWorkload, DeadlockBecomesStructuredOutcome) {
  HaltForeverWorkload w;
  const RunOutcome o = try_run_workload(MachineConfig{}, w);
  EXPECT_EQ(o.status, RunStatus::kDeadlock);
  EXPECT_FALSE(o.ok());
  EXPECT_FALSE(o.message.empty());
  // The partial stats are still real data: identified, unverified, and
  // serializable as a schema-valid report.
  EXPECT_EQ(o.stats.workload, "halt-forever");
  EXPECT_FALSE(o.stats.verified);
  const std::string json = RunReport::from(o.stats).to_json();
  ASSERT_TRUE(parse_json(json).has_value());
}

TEST(TryRunWorkload, WatchdogDeadlockWithoutEventSkip) {
  // With event skipping off there is no "no future event" oracle; the
  // retirement watchdog catches the same hang.
  HaltForeverWorkload w;
  MachineConfig cfg;
  cfg.core.event_skip = false;
  cfg.core.watchdog_cycles = 10'000;
  const RunOutcome o = try_run_workload(cfg, w);
  EXPECT_EQ(o.status, RunStatus::kDeadlock);
}

TEST(TryRunWorkload, CycleBudgetBecomesStructuredOutcome) {
  CountWorkload w(1'000'000'000);
  const RunOutcome o = try_run_workload(MachineConfig{}, w, /*max_cycles=*/1000);
  EXPECT_EQ(o.status, RunStatus::kCycleBudgetExceeded);
  EXPECT_GT(o.stats.cycles, 0u);
  EXPECT_FALSE(o.stats.verified);
}

TEST(TryRunWorkload, VerifyFailureBecomesStructuredOutcome) {
  TrivialWorkload w(false);
  const RunOutcome o = try_run_workload(MachineConfig{}, w);
  EXPECT_EQ(o.status, RunStatus::kVerifyFailed);
  EXPECT_FALSE(o.stats.verified);
  EXPECT_GT(o.stats.cycles, 0u);
}

TEST(TryRunWorkload, OkRunMatchesLegacyPath) {
  TrivialWorkload w(true);
  const RunOutcome o = try_run_workload(MachineConfig{}, w);
  EXPECT_EQ(o.status, RunStatus::kOk);
  EXPECT_TRUE(o.ok());
  EXPECT_TRUE(o.message.empty());
  EXPECT_TRUE(o.stats.verified);
  EXPECT_EQ(o.stats.cpu(CpuId::kCpu0, Event::kStoresRetired), 1u);
}

TEST(TryRunWorkload, CancelHookWindsTheRunDown) {
  CountWorkload w(1'000'000'000);
  const RunOutcome o = try_run_workload(MachineConfig{}, w,
                                        /*max_cycles=*/4'000'000'000ull,
                                        [] { return true; });
  EXPECT_EQ(o.status, RunStatus::kCancelled);
  EXPECT_FALSE(o.message.empty());
}

TEST(TryRunWorkloadDeath, LegacyRunWorkloadStillAbortsOnDeadlock) {
  HaltForeverWorkload w;
  EXPECT_DEATH(run_workload(MachineConfig{}, w), "no future event");
}

TEST(TryRunWorkloadDeath, LegacyMachineRunStillAbortsOnBudget) {
  Machine m;
  m.load_program(CpuId::kCpu0, count_to(1'000'000'000, 0x9000));
  EXPECT_DEATH(m.run(/*max_cycles=*/1000), "max_cycles exceeded");
}

}  // namespace
}  // namespace smt::core
