// Tests for the post-mortem flight recorder: a failed run with the
// recorder attached must come back with a deterministic, parseable
// smt-core-dump/1 document that names the actual failure (the wait-for
// graph of a deadlock, the death cycle of a blown budget), healthy runs
// must produce no dump, and attaching the recorder must never perturb a
// measurement.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/json.h"
#include "core/machine.h"
#include "core/runner.h"
#include "host/experiments.h"
#include "perfmon/counters.h"
#include "perfmon/events.h"

namespace smt::core {
namespace {

using host::ExperimentDef;
using host::find_experiment;

/// Runs a registry experiment through the non-aborting path, optionally
/// with the flight recorder attached.
RunOutcome run_experiment(const std::string& name, bool flight_recorder) {
  const ExperimentDef* def = find_experiment(name);
  EXPECT_NE(def, nullptr) << name;
  const std::unique_ptr<Workload> w = def->make();
  RunOptions opt;
  opt.race_detect = def->race_detect;
  opt.flight_recorder = flight_recorder;
  return try_run_workload(MachineConfig{}, *w, def->cycle_budget, nullptr,
                          opt);
}

// ---------------------------------------------------------------------------
// A deadlock with the recorder attached yields a diagnosable dump.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, DeadlockProducesDiagnosableDump) {
  const RunOutcome o = run_experiment("selftest.deadlock", true);
  ASSERT_EQ(o.status, RunStatus::kDeadlock);
  ASSERT_FALSE(o.core_dump.empty());

  const auto v = parse_json(o.core_dump);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("schema")->string, "smt-core-dump/1");
  EXPECT_EQ(v->find("outcome")->string, "deadlock");
  EXPECT_EQ(v->find("workload")->string, "selftest.deadlock");

  // The dump names the actual death cycle.
  const JsonValue* cycle = v->find("cycle");
  ASSERT_NE(cycle, nullptr);
  EXPECT_EQ(static_cast<Cycle>(cycle->number), o.stats.cycles);

  // Both contexts' states are present and carry the full surface.
  const JsonValue* cpus = v->find("cpus");
  ASSERT_NE(cpus, nullptr);
  ASSERT_TRUE(cpus->is_array());
  ASSERT_EQ(cpus->array.size(), static_cast<size_t>(kNumLogicalCpus));
  for (const JsonValue& c : cpus->array) {
    for (const char* key : {"mode", "pc", "disasm", "rob", "uop_queue",
                            "load_queue", "store_buffer", "wait", "iregs",
                            "fregs", "recent_retired", "snapshots"}) {
      EXPECT_NE(c.find(key), nullptr) << key;
    }
  }

  // selftest.deadlock halts cpu0 and never sends the waking IPI: the
  // wait-for graph must carry exactly that edge.
  const JsonValue* wf = v->find("wait_for");
  ASSERT_NE(wf, nullptr);
  ASSERT_TRUE(wf->is_array());
  ASSERT_FALSE(wf->array.empty());
  bool found_ipi_wait = false;
  for (const JsonValue& e : wf->array) {
    if (e.find("why")->string == "awaiting IPI") found_ipi_wait = true;
  }
  EXPECT_TRUE(found_ipi_wait);
  const JsonValue* wait0 = cpus->array[0].find("wait");
  ASSERT_NE(wait0, nullptr);
  EXPECT_EQ(wait0->find("kind")->string, "halt");
}

// ---------------------------------------------------------------------------
// Dumps are deterministic: the same job dies the same death, byte for
// byte (the property smt_sweep's artifact identity rests on).
// ---------------------------------------------------------------------------

TEST(FlightRecorder, DumpIsDeterministic) {
  const RunOutcome a = run_experiment("selftest.deadlock", true);
  const RunOutcome b = run_experiment("selftest.deadlock", true);
  ASSERT_FALSE(a.core_dump.empty());
  EXPECT_EQ(a.core_dump, b.core_dump);
}

// ---------------------------------------------------------------------------
// A blown cycle budget is also dump-worthy; healthy runs are not.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, BudgetExhaustionProducesDumpHealthyRunDoesNot) {
  const RunOutcome budget = run_experiment("selftest.budget", true);
  ASSERT_EQ(budget.status, RunStatus::kCycleBudgetExceeded);
  ASSERT_FALSE(budget.core_dump.empty());
  const auto v = parse_json(budget.core_dump);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("outcome")->string, "cycle_budget_exceeded");

  const RunOutcome ok = run_experiment("mm.serial.n64", true);
  EXPECT_EQ(ok.status, RunStatus::kOk);
  EXPECT_TRUE(ok.core_dump.empty());

  // Without the recorder, even a failing run carries no dump.
  const RunOutcome plain = run_experiment("selftest.deadlock", false);
  EXPECT_EQ(plain.status, RunStatus::kDeadlock);
  EXPECT_TRUE(plain.core_dump.empty());
}

// ---------------------------------------------------------------------------
// Pure observer: attaching the recorder never changes a measurement.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RecorderDoesNotPerturbAnyCounter) {
  const RunOutcome with = run_experiment("mm.serial.n64", true);
  const RunOutcome without = run_experiment("mm.serial.n64", false);
  EXPECT_EQ(with.stats.cycles, without.stats.cycles);
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    for (int e = 0; e < perfmon::kNumEventValues; ++e) {
      const perfmon::Event ev = static_cast<perfmon::Event>(e);
      EXPECT_EQ(with.stats.cpu(cpu, ev), without.stats.cpu(cpu, ev))
          << "cpu" << c << " " << perfmon::name(ev);
    }
  }
}

}  // namespace
}  // namespace smt::core
