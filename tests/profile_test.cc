// Tests for the Pin-analog instruction-mix profiler and the
// Valgrind-analog delinquent-load profiler (paper §5.3 / §3.2).
#include <gtest/gtest.h>

#include "core/machine.h"
#include "kernels/cg.h"
#include "kernels/matmul.h"
#include "profile/delinquent.h"
#include "profile/mix_profiler.h"
#include "profile/pc_profiler.h"

namespace smt::profile {
namespace {

using kernels::CgMode;
using kernels::CgParams;
using kernels::CgWorkload;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;

TEST(SubunitMapping, CoversAllUnitClasses) {
  using isa::UnitClass;
  EXPECT_EQ(subunit_of(UnitClass::kAlu), Subunit::kAlus);
  EXPECT_EQ(subunit_of(UnitClass::kAlu0), Subunit::kAlus);
  EXPECT_EQ(subunit_of(UnitClass::kBranch), Subunit::kAlus);
  EXPECT_EQ(subunit_of(UnitClass::kFpAdd), Subunit::kFpAdd);
  EXPECT_EQ(subunit_of(UnitClass::kFpMul), Subunit::kFpMul);
  EXPECT_EQ(subunit_of(UnitClass::kFpDiv), Subunit::kFpDiv);
  EXPECT_EQ(subunit_of(UnitClass::kFpMove), Subunit::kFpMove);
  EXPECT_EQ(subunit_of(UnitClass::kLoad), Subunit::kLoad);
  EXPECT_EQ(subunit_of(UnitClass::kStore), Subunit::kStore);
  EXPECT_EQ(subunit_of(UnitClass::kNone), Subunit::kOther);
}

TEST(MixProfiler, CountsMatchPerfCounters) {
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kSerial;
  MatMulWorkload w(p);
  core::Machine m{};
  MixProfiler prof;
  m.core().set_retire_observer(&prof);
  w.setup(m);
  m.load_program(CpuId::kCpu0, w.programs()[0]);
  m.run();
  EXPECT_EQ(prof.total(CpuId::kCpu0),
            m.counters().get(CpuId::kCpu0, perfmon::Event::kInstrRetired));
  // Percentages sum to ~100.
  double sum = 0.0;
  for (int s = 0; s < static_cast<int>(Subunit::kNumSubunits); ++s) {
    sum += prof.pct(CpuId::kCpu0, static_cast<Subunit>(s));
  }
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(MixProfiler, MmHasTheMaskedLayoutSignature) {
  // Paper Table 1 / §5.3: the blocked-array-layout MM executes ~25%
  // logical (ALU0-only) instructions and is load-heavy.
  MatMulParams p;
  p.n = 32;
  p.tile = 8;
  p.mode = MmMode::kSerial;
  MatMulWorkload w(p);
  core::Machine m{};
  MixProfiler prof;
  m.core().set_retire_observer(&prof);
  w.setup(m);
  m.load_program(CpuId::kCpu0, w.programs()[0]);
  m.run();
  EXPECT_TRUE(w.verify(m));
  const double alus = prof.pct(CpuId::kCpu0, Subunit::kAlus);
  const double loads = prof.pct(CpuId::kCpu0, Subunit::kLoad);
  const double fpadd = prof.pct(CpuId::kCpu0, Subunit::kFpAdd);
  const double fpmul = prof.pct(CpuId::kCpu0, Subunit::kFpMul);
  const double stores = prof.pct(CpuId::kCpu0, Subunit::kStore);
  EXPECT_GT(alus, 20.0);
  EXPECT_LT(alus, 50.0);
  EXPECT_GT(loads, 25.0);  // paper: 38.8%
  EXPECT_NEAR(fpadd, fpmul, 1.0);  // one add per mul
  EXPECT_GT(stores, 5.0);
  const std::string col = prof.column(CpuId::kCpu0);
  EXPECT_NE(col.find("ALUs"), std::string::npos);
  EXPECT_NE(col.find("Total instr"), std::string::npos);
}

TEST(MixProfiler, SprPrefetcherHasNoFpArithmetic) {
  // Paper Table 1: the prefetcher threads execute no FP_ADD/FP_MUL at all.
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  MatMulWorkload w(p);
  core::Machine m{};
  MixProfiler prof;
  m.core().set_retire_observer(&prof);
  w.setup(m);
  auto progs = w.programs();
  m.load_program(CpuId::kCpu0, progs[0]);
  m.load_program(CpuId::kCpu1, progs[1]);
  m.run();
  EXPECT_TRUE(w.verify(m));
  EXPECT_EQ(prof.count(CpuId::kCpu1, Subunit::kFpAdd), 0u);
  EXPECT_EQ(prof.count(CpuId::kCpu1, Subunit::kFpMul), 0u);
  EXPECT_GT(prof.count(CpuId::kCpu1, Subunit::kLoad), 0u);  // prefetches
}

TEST(PcProfiler, PerPcCountsSumToMixProfilerAndCounters) {
  // The per-PC attribution must be a refinement of the Table-1 mix: on the
  // SPR matmul, grouping each context's per-PC retired-instruction counts
  // by the PC's execution subunit reproduces the MixProfiler totals
  // exactly, and the per-PC retired-uop counts sum to kUopsRetired. Both
  // observers ride the same run (separate observer slots).
  MatMulParams p;
  p.n = 16;
  p.tile = 4;
  p.mode = MmMode::kTlpPfetch;
  MatMulWorkload w(p);
  core::Machine m{};
  MixProfiler mix;
  PcProfiler pcs;
  m.core().set_retire_observer(&mix);
  m.core().set_pipeline_observer(&pcs);
  w.setup(m);
  auto progs = w.programs();
  m.load_program(CpuId::kCpu0, progs[0]);
  m.load_program(CpuId::kCpu1, progs[1]);
  m.run();
  EXPECT_TRUE(w.verify(m));
  for (int c = 0; c < kNumLogicalCpus; ++c) {
    const CpuId cpu = static_cast<CpuId>(c);
    const isa::Program& prog = progs[static_cast<size_t>(c)];
    uint64_t by_subunit[static_cast<int>(Subunit::kNumSubunits)] = {};
    uint64_t instrs = 0;
    uint64_t uops = 0;
    for (const auto& [pc, s] : pcs.pcs(cpu)) {
      ASSERT_LT(pc, prog.size());
      const Subunit su = subunit_of(isa::unit_class(prog.at(pc).op));
      by_subunit[static_cast<int>(su)] += s.retired_instrs;
      instrs += s.retired_instrs;
      uops += s.retired_uops;
    }
    for (int s = 0; s < static_cast<int>(Subunit::kNumSubunits); ++s) {
      EXPECT_EQ(by_subunit[s], mix.count(cpu, static_cast<Subunit>(s)))
          << "cpu" << c << " subunit " << name(static_cast<Subunit>(s));
    }
    EXPECT_EQ(instrs,
              m.counters().get(cpu, perfmon::Event::kInstrRetired));
    EXPECT_EQ(uops, m.counters().get(cpu, perfmon::Event::kUopsRetired));
  }
}

TEST(MixProfiler, ResetClearsState) {
  MixProfiler prof;
  cpu::DynUop u;
  u.unit = isa::UnitClass::kFpAdd;
  prof.on_retire(CpuId::kCpu0, u);
  EXPECT_EQ(prof.total(CpuId::kCpu0), 1u);
  prof.reset();
  EXPECT_EQ(prof.total(CpuId::kCpu0), 0u);
  EXPECT_EQ(prof.count(CpuId::kCpu0, Subunit::kFpAdd), 0u);
}

TEST(DelinquentLoads, CgGatherDominatesL2Misses) {
  // The paper used Valgrind to find the loads causing 92-96% of CG's L2
  // misses; here the gather p[colidx[k]] and the CSR streams must surface.
  CgParams p;
  p.n = 4096;  // big enough to spill L2
  p.nz_per_row = 6;
  p.iters = 2;
  p.mode = CgMode::kSerial;
  CgWorkload w(p);
  core::Machine m{};
  m.hierarchy().set_track_pc_misses(true);
  w.setup(m);
  const isa::Program prog = w.programs()[0];
  m.load_program(CpuId::kCpu0, prog);
  m.run();
  const auto loads =
      find_delinquent_loads(m.hierarchy(), CpuId::kCpu0, prog, 0.95);
  ASSERT_FALSE(loads.empty());
  // Ranked by misses, covering >= 95% together, each with a disassembly.
  double share = 0.0;
  for (size_t i = 0; i < loads.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(loads[i].l2_misses, loads[i - 1].l2_misses);
    }
    EXPECT_FALSE(loads[i].disasm.empty());
    share += loads[i].share;
  }
  EXPECT_GE(share, 0.94);
  const std::string rep = report(loads);
  EXPECT_NE(rep.find("pc="), std::string::npos);
}

TEST(DelinquentLoads, EmptyWhenNothingMisses) {
  core::Machine m{};
  isa::AsmBuilder a("tiny");
  a.imovi(isa::IReg::R0, 1);
  a.exit();
  const isa::Program prog = a.take();
  m.hierarchy().set_track_pc_misses(true);
  m.load_program(CpuId::kCpu0, prog);
  m.run();
  EXPECT_TRUE(
      find_delinquent_loads(m.hierarchy(), CpuId::kCpu0, prog).empty());
}

}  // namespace
}  // namespace smt::profile
