// Tests for the static half of the guest-program verifier: CFG
// construction (including the empty-program and self-loop edge cases),
// every lint rule (positive and negative), severity levels, diagnostic
// determinism, the cross-program concurrency checks, the classification
// guard over the full opcode set, the emitter scratch-alias checks, and
// the registry-wide lint-clean gate.
#include <cstdlib>
#include <set>
#include <tuple>

#include "analysis/cfg.h"
#include "analysis/lint.h"
#include "core/machine.h"
#include "gtest/gtest.h"
#include "host/experiments.h"
#include "isa/asm_builder.h"
#include "isa/disasm.h"
#include "sync/primitives.h"

namespace smt {
namespace {

using analysis::Cfg;
using analysis::Check;
using analysis::Diagnostic;
using analysis::LintOptions;
using analysis::Severity;
using analysis::lint_concurrency;
using analysis::lint_program;
using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Label;
using isa::Mem;
using isa::Opcode;
using isa::reg_bit;

bool has_check(const std::vector<Diagnostic>& ds, Check c) {
  for (const Diagnostic& d : ds) {
    if (d.check == c) return true;
  }
  return false;
}

const Diagnostic* find_check(const std::vector<Diagnostic>& ds, Check c) {
  for (const Diagnostic& d : ds) {
    if (d.check == c) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock) {
  AsmBuilder a("straight");
  a.imovi(IReg::R0, 1);
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.exit();
  const Cfg g = Cfg::build(a.take());
  ASSERT_EQ(g.blocks.size(), 1u);
  EXPECT_EQ(g.blocks[0].begin, 0u);
  EXPECT_EQ(g.blocks[0].end, 3u);
  EXPECT_TRUE(g.blocks[0].reachable);
  EXPECT_FALSE(g.blocks[0].falls_off_end);
  EXPECT_TRUE(g.blocks[0].succs.empty());
}

TEST(Cfg, EmptyProgramYieldsEmptyCfg) {
  const Cfg g = Cfg::build(isa::Program("empty", {}));
  EXPECT_TRUE(g.blocks.empty());
  EXPECT_TRUE(g.block_of.empty());
}

TEST(Cfg, SingleInstructionSelfLoopBlock) {
  // `0: jmp 0` — one block that is its own predecessor and successor.
  std::vector<isa::Instr> code(1);
  code[0].op = Opcode::kJmp;
  code[0].target = 0;
  const Cfg g = Cfg::build(isa::Program("self", std::move(code)));
  ASSERT_EQ(g.blocks.size(), 1u);
  EXPECT_EQ(g.blocks[0].begin, 0u);
  EXPECT_EQ(g.blocks[0].end, 1u);
  EXPECT_TRUE(g.blocks[0].reachable);
  EXPECT_FALSE(g.blocks[0].falls_off_end);
  EXPECT_EQ(g.blocks[0].succs, (std::vector<uint32_t>{0}));
  EXPECT_EQ(g.blocks[0].preds, (std::vector<uint32_t>{0}));
}

TEST(Cfg, LoopSplitsBlocksAndLinksBackEdge) {
  AsmBuilder a("loop");
  a.imovi(IReg::R0, 0);            // b0
  const Label loop = a.here();     // b1: loop body
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 8, loop);
  a.exit();                        // b2
  const Cfg g = Cfg::build(a.take());
  ASSERT_EQ(g.blocks.size(), 3u);
  // b0 -> b1; b1 -> {b1 (taken), b2 (fall)}; b2 terminal.
  EXPECT_EQ(g.blocks[0].succs, (std::vector<uint32_t>{1}));
  const std::set<uint32_t> s1(g.blocks[1].succs.begin(),
                              g.blocks[1].succs.end());
  EXPECT_EQ(s1, (std::set<uint32_t>{1, 2}));
  EXPECT_TRUE(g.blocks[2].succs.empty());
  for (const analysis::BasicBlock& b : g.blocks) EXPECT_TRUE(b.reachable);
  // block_of maps every pc into its containing block.
  EXPECT_EQ(g.block_of[0], 0u);
  EXPECT_EQ(g.block_of[1], 1u);
  EXPECT_EQ(g.block_of[2], 1u);
  EXPECT_EQ(g.block_of[3], 2u);
}

TEST(Cfg, EveryInstructionBelongsToExactlyOneBlock) {
  AsmBuilder a("cover");
  const Label skip = a.label();
  a.imovi(IReg::R0, 3);
  a.bri(BrCond::kEq, IReg::R0, 0, skip);
  a.iaddi(IReg::R0, IReg::R0, -1);
  a.bind(skip);
  a.exit();
  const isa::Program p = a.take();
  const Cfg g = Cfg::build(p);
  std::vector<int> owners(p.size(), 0);
  for (const analysis::BasicBlock& b : g.blocks) {
    for (uint32_t pc = b.begin; pc < b.end; ++pc) owners[pc]++;
  }
  for (size_t pc = 0; pc < p.size(); ++pc) EXPECT_EQ(owners[pc], 1);
}

// ---------------------------------------------------------------------------
// Lint rules, one positive and one negative case each
// ---------------------------------------------------------------------------

TEST(Lint, CleanProgramHasNoDiagnostics) {
  AsmBuilder a("clean");
  a.imovi(IReg::R0, 0);
  const Label loop = a.here();
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 4, loop);
  a.exit();
  EXPECT_TRUE(lint_program(a.take()).empty());
}

TEST(Lint, UninitReadCaught) {
  AsmBuilder a("uninit");
  a.iadd(IReg::R0, IReg::R1, IReg::R2);  // R1, R2 never written
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  ASSERT_TRUE(has_check(d, Check::kUninitRead));
  EXPECT_EQ(d[0].severity, Severity::kError);
  EXPECT_EQ(d[0].pc, 0u);
  EXPECT_EQ(d[0].block, 0u);
  EXPECT_NE(d[0].message.find("r1"), std::string::npos);
  EXPECT_NE(d[0].message.find("r2"), std::string::npos);
}

TEST(Lint, UninitReadOnOnePathOnlyIsStillCaught) {
  // Must-analysis: a register written on only one of two joining paths is
  // not definitely written at the join.
  AsmBuilder a("one-path");
  const Label join = a.label();
  a.imovi(IReg::R0, 0);
  a.bri(BrCond::kEq, IReg::R0, 0, join);
  a.imovi(IReg::R1, 5);  // only the fall-through path writes R1
  a.bind(join);
  a.iaddi(IReg::R2, IReg::R1, 1);
  a.exit();
  EXPECT_TRUE(has_check(lint_program(a.take()), Check::kUninitRead));
}

TEST(Lint, AssumedWrittenSuppressesUninitRead) {
  AsmBuilder a("assumed");
  a.iaddi(IReg::R0, IReg::R1, 1);
  a.exit();
  LintOptions opt;
  opt.assumed_written = reg_bit(IReg::R1);
  EXPECT_TRUE(lint_program(a.take(), opt).empty());
}

TEST(Lint, FpRegistersTrackedSeparatelyFromInt) {
  AsmBuilder a("fp");
  a.imovi(IReg::R0, 1);   // writes int r0 ...
  a.fadd(FReg::F1, FReg::F0, FReg::F0);  // ... which must not cover fp f0
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  ASSERT_TRUE(has_check(d, Check::kUninitRead));
  EXPECT_NE(d[0].message.find("f0"), std::string::npos);
}

TEST(Lint, SyncRegionDisciplineViolationCaught) {
  AsmBuilder a("discipline");
  a.begin_sync_region("flag_set", reg_bit(IReg::R0));
  a.imovi(IReg::R0, 1);   // declared
  a.imovi(IReg::R7, 2);   // stray
  a.store(IReg::R0, Mem::abs(0x8000));
  a.end_sync_region();
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  ASSERT_TRUE(has_check(d, Check::kSyncRegionWrite));
  EXPECT_FALSE(has_check(d, Check::kMissingPause));
}

TEST(Lint, EmitterAnnotatedSpinWithPauseIsClean) {
  AsmBuilder a("spin-ok");
  sync::emit_spin_until_eq(a, 0x8000, IReg::R0, 1, sync::SpinKind::kPause);
  a.exit();
  EXPECT_TRUE(lint_program(a.take()).empty());
}

TEST(Lint, MissingPauseIsAWarningAndTightSpinExempt) {
  // kPause requested but the loop body has no pause.
  AsmBuilder a("no-pause");
  a.begin_sync_region("spin", reg_bit(IReg::R0), /*is_spin=*/true,
                      /*wants_pause=*/true);
  const Label loop = a.here();
  a.load(IReg::R0, Mem::abs(0x8000));
  a.bri(BrCond::kNe, IReg::R0, 1, loop);
  a.end_sync_region();
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  const Diagnostic* mp = find_check(d, Check::kMissingPause);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->severity, Severity::kWarning);

  // An explicitly tight spin promises no pause — not a finding.
  AsmBuilder b("tight");
  sync::emit_spin_until_eq(b, 0x8000, IReg::R0, 1, sync::SpinKind::kTight);
  b.exit();
  EXPECT_TRUE(lint_program(b.take()).empty());
}

TEST(Lint, PairedLockIsCleanUnpairedCaught) {
  {
    AsmBuilder a("paired");
    sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
    a.imovi(IReg::R0, 7);  // critical section
    sync::emit_lock_release(a, 0x8040, IReg::R3);
    a.exit();
    EXPECT_TRUE(lint_program(a.take()).empty());
  }
  {
    AsmBuilder a("unpaired");
    sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
    a.exit();
    const std::vector<Diagnostic> d = lint_program(a.take());
    const Diagnostic* lp = find_check(d, Check::kLockPairing);
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->severity, Severity::kError);
    EXPECT_NE(lp->message.find("held at exit"), std::string::npos);
  }
}

TEST(Lint, DoubleAcquireAndFreeReleaseCaught) {
  {
    AsmBuilder a("double-acquire");
    sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
    sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
    sync::emit_lock_release(a, 0x8040, IReg::R3);
    a.exit();
    const std::vector<Diagnostic> d = lint_program(a.take());
    const Diagnostic* lp = find_check(d, Check::kLockPairing);
    ASSERT_NE(lp, nullptr);
    EXPECT_NE(lp->message.find("double acquire"), std::string::npos);
  }
  {
    AsmBuilder a("free-release");
    sync::emit_lock_release(a, 0x8040, IReg::R3);
    a.exit();
    const std::vector<Diagnostic> d = lint_program(a.take());
    const Diagnostic* lp = find_check(d, Check::kLockPairing);
    ASSERT_NE(lp, nullptr);
    EXPECT_NE(lp->message.find("not held"), std::string::npos);
  }
}

TEST(Lint, TwoIndependentLockWordsDoNotInterfere) {
  AsmBuilder a("two-locks");
  sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
  sync::emit_lock_acquire(a, 0x8080, IReg::R4, sync::SpinKind::kPause);
  sync::emit_lock_release(a, 0x8080, IReg::R4);
  sync::emit_lock_release(a, 0x8040, IReg::R3);
  a.exit();
  EXPECT_TRUE(lint_program(a.take()).empty());
}

TEST(Lint, OutOfExtentStoreCaughtOnlyWhenExtentsComplete) {
  AsmBuilder a("oob");
  a.imovi(IReg::R0, 1);
  a.store(IReg::R0, Mem::abs(0x9000));
  a.exit();
  const isa::Program p = a.take();

  LintOptions opt;
  opt.extents.push_back({0x10000, 4096, "A"});
  EXPECT_TRUE(lint_program(p, opt).empty());  // incomplete: check off

  opt.extents_complete = true;
  const std::vector<Diagnostic> d = lint_program(p, opt);
  const Diagnostic* oob = find_check(d, Check::kOutOfExtentStore);
  ASSERT_NE(oob, nullptr);
  EXPECT_EQ(oob->severity, Severity::kError);

  // In-extent store stays clean under the same complete extents.
  AsmBuilder b("in-bounds");
  b.imovi(IReg::R0, 1);
  b.store(IReg::R0, Mem::abs(0x10000));
  b.exit();
  EXPECT_TRUE(lint_program(b.take(), opt).empty());
}

TEST(Lint, IntervalAnalysisProvesLoopStoresInExtent) {
  // A register-indexed store sweeping exactly the extent: the interval
  // analysis must bound the address range and prove containment.
  AsmBuilder a("range-ok");
  a.imovi(IReg::R0, 1);
  a.imovi(IReg::R1, 0x10000);
  const Label top = a.here();
  a.store(IReg::R0, Mem::bd(IReg::R1, 0));
  a.iaddi(IReg::R1, IReg::R1, 8);
  a.bri(BrCond::kLe, IReg::R1, 0x10000 + 56, top);
  a.exit();
  LintOptions opt;
  opt.extents.push_back({0x10000, 64, "A"});
  opt.extents_complete = true;
  EXPECT_TRUE(lint_program(a.take(), opt).empty());
}

TEST(Lint, LoopOvershootIsARangeWarningNotAnError) {
  // Same sweep with an off-by-one bound: the last store lands one word
  // past the extent, so the range partially escapes — a warning, since
  // some executions of the instruction are fine.
  AsmBuilder a("range-over");
  a.imovi(IReg::R0, 1);
  a.imovi(IReg::R1, 0x10000);
  const Label top = a.here();
  a.store(IReg::R0, Mem::bd(IReg::R1, 0));
  a.iaddi(IReg::R1, IReg::R1, 8);
  a.bri(BrCond::kLe, IReg::R1, 0x10000 + 64, top);
  a.exit();
  LintOptions opt;
  opt.extents.push_back({0x10000, 64, "A"});
  opt.extents_complete = true;
  const std::vector<Diagnostic> d = lint_program(a.take(), opt);
  const Diagnostic* oob = find_check(d, Check::kOutOfExtentStore);
  ASSERT_NE(oob, nullptr);
  EXPECT_EQ(oob->severity, Severity::kWarning);
}

TEST(Lint, UnreachableCodeIsAWarning) {
  AsmBuilder a("skip");
  const Label end = a.label();
  a.jmp(end);
  a.nop();
  a.bind(end);
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  const Diagnostic* un = find_check(d, Check::kUnreachable);
  ASSERT_NE(un, nullptr);
  EXPECT_EQ(un->severity, Severity::kWarning);
}

TEST(Lint, FallOffEndCaughtOnHandBuiltProgram) {
  std::vector<isa::Instr> code(2);
  code[0].op = Opcode::kNop;
  code[1].op = Opcode::kNop;  // no terminator
  const isa::Program p("raw", std::move(code));
  EXPECT_TRUE(has_check(lint_program(p), Check::kFallOffEnd));
}

TEST(Lint, EmptyProgramIsADiagnostic) {
  const isa::Program p("empty", {});
  const std::vector<Diagnostic> d = lint_program(p);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].check, Check::kFallOffEnd);
  EXPECT_EQ(d[0].severity, Severity::kError);
}

TEST(Lint, DiagnosticsAreDeterministicAndDeduplicated) {
  // A program with several defects: two runs must agree exactly, the
  // list must be sorted by (pc, check, severity, message), and no entry
  // may repeat.
  AsmBuilder a("multi");
  a.iadd(IReg::R0, IReg::R1, IReg::R2);  // uninit read
  const Label end = a.label();
  a.jmp(end);
  a.nop();                               // unreachable
  a.bind(end);
  sync::emit_lock_acquire(a, 0x8040, IReg::R3, sync::SpinKind::kPause);
  a.exit();                              // lock held at exit
  const isa::Program p = a.take();
  const std::vector<Diagnostic> d1 = lint_program(p);
  const std::vector<Diagnostic> d2 = lint_program(p);
  ASSERT_GE(d1.size(), 3u);
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].check, d2[i].check);
    EXPECT_EQ(d1[i].pc, d2[i].pc);
    EXPECT_EQ(d1[i].message, d2[i].message);
    if (i > 0) {
      const auto key = [](const Diagnostic& d) {
        return std::make_tuple(d.pc, static_cast<int>(d.check),
                               static_cast<int>(d.severity), d.message);
      };
      EXPECT_LT(key(d1[i - 1]), key(d1[i]));  // strict: sorted + deduped
    }
  }
}

TEST(Lint, FormatCarriesProgramPcSeverityAndCheck) {
  AsmBuilder a("fmt");
  a.iaddi(IReg::R0, IReg::R1, 1);
  a.exit();
  const isa::Program p = a.take();
  const std::string s = analysis::format_diagnostics(p, lint_program(p));
  EXPECT_NE(s.find("fmt:0: error: uninit-read:"), std::string::npos);
}

TEST(Lint, CountSeveritySplitsErrorsFromWarnings) {
  AsmBuilder a("mixed");
  a.iaddi(IReg::R0, IReg::R1, 1);  // error: uninit read
  const Label end = a.label();
  a.jmp(end);
  a.nop();                         // warning: unreachable
  a.bind(end);
  a.exit();
  const std::vector<Diagnostic> d = lint_program(a.take());
  EXPECT_EQ(analysis::count_severity(d, Severity::kError), 1u);
  EXPECT_EQ(analysis::count_severity(d, Severity::kWarning), 1u);
}

// ---------------------------------------------------------------------------
// Cross-program concurrency checks
// ---------------------------------------------------------------------------

/// One barrier episode on the straight path to exit.
isa::Program barrier_program(const char* name) {
  AsmBuilder a(name);
  a.begin_sync_region("barrier_wait/test", reg_bit(IReg::R0));
  a.imovi(IReg::R0, 1);
  a.end_sync_region();
  a.exit();
  return a.take();
}

TEST(LintConcurrency, MatchedBarrierEpisodesAreClean) {
  const std::vector<isa::Program> ps = {barrier_program("a"),
                                        barrier_program("b")};
  for (const auto& d : lint_concurrency(ps)) EXPECT_TRUE(d.empty());
}

TEST(LintConcurrency, BarrierCountMismatchCaught) {
  AsmBuilder b("b");
  b.imovi(IReg::R0, 1);
  b.exit();
  const std::vector<isa::Program> ps = {barrier_program("a"), b.take()};
  const auto diags = lint_concurrency(ps);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(has_check(diags[0], Check::kBarrierMismatch));
  EXPECT_TRUE(has_check(diags[1], Check::kBarrierMismatch));
}

TEST(LintConcurrency, ConditionallySkippedBarrierCaught) {
  // The barrier sits on only one side of a branch: a sibling that always
  // reaches its barrier would wait forever on the skipping path.
  AsmBuilder a("a");
  a.imovi(IReg::R0, 0);
  const Label skip = a.label();
  a.bri(BrCond::kEq, IReg::R0, 0, skip);
  a.begin_sync_region("barrier_wait/test", reg_bit(IReg::R1));
  a.imovi(IReg::R1, 1);
  a.end_sync_region();
  a.bind(skip);
  a.exit();
  const std::vector<isa::Program> ps = {a.take(), barrier_program("b")};
  const auto diags = lint_concurrency(ps);
  EXPECT_TRUE(has_check(diags[0], Check::kBarrierMismatch));
}

TEST(LintConcurrency, LockOrderInversionCaughtSameOrderClean) {
  const auto two_locks = [](const char* name, Addr first, Addr second) {
    AsmBuilder a(name);
    sync::emit_lock_acquire(a, first, IReg::R3, sync::SpinKind::kPause);
    sync::emit_lock_acquire(a, second, IReg::R4, sync::SpinKind::kPause);
    sync::emit_lock_release(a, second, IReg::R4);
    sync::emit_lock_release(a, first, IReg::R3);
    a.exit();
    return a.take();
  };
  {
    const std::vector<isa::Program> ps = {
        two_locks("a", 0x8040, 0x8080), two_locks("b", 0x8080, 0x8040)};
    const auto diags = lint_concurrency(ps);
    ASSERT_EQ(diags.size(), 2u);
    const Diagnostic* lo = find_check(diags[0], Check::kLockOrder);
    ASSERT_NE(lo, nullptr);
    EXPECT_EQ(lo->severity, Severity::kError);
    EXPECT_TRUE(has_check(diags[1], Check::kLockOrder));
  }
  {
    const std::vector<isa::Program> ps = {
        two_locks("a", 0x8040, 0x8080), two_locks("b", 0x8040, 0x8080)};
    for (const auto& d : lint_concurrency(ps)) EXPECT_TRUE(d.empty());
  }
}

// ---------------------------------------------------------------------------
// Opcode-set completeness: the classification guard (satellite 3)
// ---------------------------------------------------------------------------

/// A program exercising every opcode once, lint-clean by construction.
isa::Program all_opcodes_program() {
  AsmBuilder a("all-opcodes");
  a.imovi(IReg::R0, 1);                      // kIMovImm
  a.fmovi(FReg::F0, 1.0);                    // kFMovImm
  a.iadd(IReg::R1, IReg::R0, IReg::R0);      // kIAdd
  a.isub(IReg::R1, IReg::R1, IReg::R0);      // kISub
  a.imov(IReg::R2, IReg::R1);                // kIMov
  a.iand(IReg::R2, IReg::R2, IReg::R0);      // kIAnd
  a.ior(IReg::R2, IReg::R2, IReg::R0);       // kIOr
  a.ixor(IReg::R2, IReg::R2, IReg::R0);      // kIXor
  a.ishli(IReg::R2, IReg::R2, 1);            // kIShl
  a.ishri(IReg::R2, IReg::R2, 1);            // kIShr
  a.imul(IReg::R2, IReg::R2, IReg::R0);      // kIMul
  a.idiv(IReg::R2, IReg::R2, IReg::R0);      // kIDiv
  a.fadd(FReg::F1, FReg::F0, FReg::F0);      // kFAdd
  a.fsub(FReg::F1, FReg::F1, FReg::F0);      // kFSub
  a.fmul(FReg::F1, FReg::F1, FReg::F0);      // kFMul
  a.fdiv(FReg::F1, FReg::F1, FReg::F0);      // kFDiv
  a.fmov(FReg::F2, FReg::F1);                // kFMov
  a.fneg(FReg::F2, FReg::F2);                // kFNeg
  a.store(IReg::R0, Mem::abs(0x10000));      // kStore
  a.load(IReg::R3, Mem::abs(0x10000));       // kLoad
  a.fstore(FReg::F0, Mem::abs(0x10008));     // kFStore
  a.fload(FReg::F3, Mem::abs(0x10008));      // kFLoad
  a.prefetch(Mem::abs(0x10010));             // kPrefetch
  a.xchg(IReg::R0, Mem::abs(0x10018));       // kXchg
  const Label over = a.label();
  a.bri(BrCond::kEq, IReg::R0, 99, over);    // kBr
  a.pause();                                 // kPause
  a.ipi();                                   // kIpi
  a.halt();                                  // kHalt
  a.nop();                                   // kNop
  a.bind(over);
  const Label end = a.label();
  a.jmp(end);                                // kJmp
  a.bind(end);
  a.exit();                                  // kExit
  return a.take();
}

TEST(OpcodeCompleteness, ProgramCoversTheFullOpcodeSet) {
  const isa::Program p = all_opcodes_program();
  std::set<Opcode> seen;
  for (size_t pc = 0; pc < p.size(); ++pc) seen.insert(p.at(pc).op);
  EXPECT_EQ(seen.size(), static_cast<size_t>(Opcode::kNumOpcodes));
}

TEST(OpcodeCompleteness, DisasmRoundTripsEveryOpcode) {
  const isa::Program p = all_opcodes_program();
  for (size_t pc = 0; pc < p.size(); ++pc) {
    const std::string text = isa::disasm(p.at(pc));
    EXPECT_FALSE(text.empty()) << "pc " << pc;
    EXPECT_EQ(text.find('?'), std::string::npos)
        << "pc " << pc << ": " << text;
  }
}

TEST(OpcodeCompleteness, LintClassifiesAndCfgDecodesEveryOpcode) {
  const isa::Program p = all_opcodes_program();
  // reg_reads / reg_writes abort on an unclassifiable opcode — walking
  // the whole program proves the tables cover the ISA.
  for (size_t pc = 0; pc < p.size(); ++pc) {
    (void)analysis::reg_reads(p.at(pc));
    (void)analysis::reg_writes(p.at(pc));
  }
  // The CFG must place every instruction in exactly one block.
  const Cfg g = Cfg::build(p);
  std::vector<int> owners(p.size(), 0);
  for (const analysis::BasicBlock& b : g.blocks) {
    for (uint32_t pc = b.begin; pc < b.end; ++pc) owners[pc]++;
  }
  for (size_t pc = 0; pc < p.size(); ++pc) {
    EXPECT_EQ(owners[pc], 1) << "pc " << pc;
  }
  // And the whole thing lints clean.
  EXPECT_TRUE(lint_program(p).empty());
}

// ---------------------------------------------------------------------------
// Emitter scratch-alias guards (satellite 2)
// ---------------------------------------------------------------------------

TEST(SyncEmitterDeath, SpinUntilEqRegScratchMustNotAliasValueReg) {
  AsmBuilder a("alias");
  EXPECT_DEATH(sync::emit_spin_until_eq_reg(a, 0x8000, IReg::R1, IReg::R1,
                                            sync::SpinKind::kPause),
               "alias");
}

TEST(SyncEmitterDeath, SpinUntilGeRegScratchMustNotAliasValueReg) {
  AsmBuilder a("alias");
  EXPECT_DEATH(sync::emit_spin_until_ge_reg(a, 0x8000, IReg::R2, IReg::R2,
                                            sync::SpinKind::kTight),
               "alias");
}

TEST(SyncEmitter, DistinctScratchAndValueRegsAreAccepted) {
  AsmBuilder a("ok");
  a.imovi(IReg::R1, 3);
  sync::emit_spin_until_eq_reg(a, 0x8000, IReg::R0, IReg::R1,
                               sync::SpinKind::kPause);
  sync::emit_spin_until_ge_reg(a, 0x8000, IReg::R0, IReg::R1,
                               sync::SpinKind::kPause);
  a.exit();
  EXPECT_TRUE(lint_program(a.take()).empty());
}

TEST(SyncEmitterDeath, OpenSyncRegionAbortsTake) {
  AsmBuilder a("open-region");
  a.begin_sync_region("spin", 0);
  a.exit();
  EXPECT_DEATH(a.take(), "region");
}

// ---------------------------------------------------------------------------
// Registry-wide gate: every experiment's programs verify clean
// ---------------------------------------------------------------------------

TEST(LintRegistry, EveryExperimentProgramIsLintClean) {
  // selftest.lint seeds a violation only under this env var; the gate
  // asserts the *clean* registry.
  unsetenv("SMT_SELFTEST_LINT_BREAK");
  int programs = 0;
  for (const host::ExperimentDef& def : host::experiments()) {
    const std::unique_ptr<core::Workload> w = def.make();
    core::Machine m;
    w->setup(m);
    LintOptions opt;
    const core::MemInfo mi = w->mem_info();
    for (const auto& r : mi.data) opt.extents.push_back({r.base, r.bytes, r.name});
    for (const auto& r : mi.sync) opt.extents.push_back({r.base, r.bytes, r.name});
    opt.extents_complete = mi.complete;
    const std::vector<isa::Program> ps = w->programs();
    const auto conc = lint_concurrency(ps);
    for (size_t i = 0; i < ps.size(); ++i) {
      ++programs;
      std::vector<Diagnostic> d = lint_program(ps[i], opt);
      d.insert(d.end(), conc[i].begin(), conc[i].end());
      // Zero errors *and* zero warnings: the figure suite is fully clean.
      EXPECT_TRUE(d.empty()) << def.name << ":\n"
                             << analysis::format_diagnostics(ps[i], d);
    }
  }
  EXPECT_GT(programs, 40);  // the registry is the full figure suite
}

}  // namespace
}  // namespace smt
