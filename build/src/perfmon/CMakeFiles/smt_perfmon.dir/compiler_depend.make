# Empty compiler generated dependencies file for smt_perfmon.
# This may be replaced when dependencies are built.
