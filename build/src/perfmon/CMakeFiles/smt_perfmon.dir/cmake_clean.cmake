file(REMOVE_RECURSE
  "CMakeFiles/smt_perfmon.dir/counters.cc.o"
  "CMakeFiles/smt_perfmon.dir/counters.cc.o.d"
  "libsmt_perfmon.a"
  "libsmt_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
