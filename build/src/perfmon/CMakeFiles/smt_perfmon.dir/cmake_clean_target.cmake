file(REMOVE_RECURSE
  "libsmt_perfmon.a"
)
