# Empty compiler generated dependencies file for smt_core.
# This may be replaced when dependencies are built.
