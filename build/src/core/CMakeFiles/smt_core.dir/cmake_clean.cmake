file(REMOVE_RECURSE
  "CMakeFiles/smt_core.dir/machine.cc.o"
  "CMakeFiles/smt_core.dir/machine.cc.o.d"
  "CMakeFiles/smt_core.dir/runner.cc.o"
  "CMakeFiles/smt_core.dir/runner.cc.o.d"
  "libsmt_core.a"
  "libsmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
