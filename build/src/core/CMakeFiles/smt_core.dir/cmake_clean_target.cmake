file(REMOVE_RECURSE
  "libsmt_core.a"
)
