file(REMOVE_RECURSE
  "CMakeFiles/smt_streams.dir/stream_gen.cc.o"
  "CMakeFiles/smt_streams.dir/stream_gen.cc.o.d"
  "CMakeFiles/smt_streams.dir/stream_runner.cc.o"
  "CMakeFiles/smt_streams.dir/stream_runner.cc.o.d"
  "libsmt_streams.a"
  "libsmt_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
