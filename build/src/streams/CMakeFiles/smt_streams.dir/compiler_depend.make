# Empty compiler generated dependencies file for smt_streams.
# This may be replaced when dependencies are built.
