file(REMOVE_RECURSE
  "libsmt_streams.a"
)
