file(REMOVE_RECURSE
  "libsmt_profile.a"
)
