# Empty dependencies file for smt_profile.
# This may be replaced when dependencies are built.
