file(REMOVE_RECURSE
  "CMakeFiles/smt_profile.dir/delinquent.cc.o"
  "CMakeFiles/smt_profile.dir/delinquent.cc.o.d"
  "CMakeFiles/smt_profile.dir/mix_profiler.cc.o"
  "CMakeFiles/smt_profile.dir/mix_profiler.cc.o.d"
  "libsmt_profile.a"
  "libsmt_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
