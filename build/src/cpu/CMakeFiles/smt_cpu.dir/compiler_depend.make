# Empty compiler generated dependencies file for smt_cpu.
# This may be replaced when dependencies are built.
