file(REMOVE_RECURSE
  "libsmt_cpu.a"
)
