file(REMOVE_RECURSE
  "CMakeFiles/smt_cpu.dir/core.cc.o"
  "CMakeFiles/smt_cpu.dir/core.cc.o.d"
  "CMakeFiles/smt_cpu.dir/interp.cc.o"
  "CMakeFiles/smt_cpu.dir/interp.cc.o.d"
  "libsmt_cpu.a"
  "libsmt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
