file(REMOVE_RECURSE
  "CMakeFiles/smt_isa.dir/asm_builder.cc.o"
  "CMakeFiles/smt_isa.dir/asm_builder.cc.o.d"
  "CMakeFiles/smt_isa.dir/disasm.cc.o"
  "CMakeFiles/smt_isa.dir/disasm.cc.o.d"
  "CMakeFiles/smt_isa.dir/opcode.cc.o"
  "CMakeFiles/smt_isa.dir/opcode.cc.o.d"
  "libsmt_isa.a"
  "libsmt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
