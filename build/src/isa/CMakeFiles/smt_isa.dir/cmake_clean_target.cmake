file(REMOVE_RECURSE
  "libsmt_isa.a"
)
