# Empty compiler generated dependencies file for smt_isa.
# This may be replaced when dependencies are built.
