# Empty dependencies file for smt_common.
# This may be replaced when dependencies are built.
