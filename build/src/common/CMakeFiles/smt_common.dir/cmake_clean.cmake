file(REMOVE_RECURSE
  "CMakeFiles/smt_common.dir/table.cc.o"
  "CMakeFiles/smt_common.dir/table.cc.o.d"
  "libsmt_common.a"
  "libsmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
