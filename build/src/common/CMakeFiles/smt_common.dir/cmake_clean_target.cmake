file(REMOVE_RECURSE
  "libsmt_common.a"
)
