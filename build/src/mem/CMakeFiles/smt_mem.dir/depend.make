# Empty dependencies file for smt_mem.
# This may be replaced when dependencies are built.
