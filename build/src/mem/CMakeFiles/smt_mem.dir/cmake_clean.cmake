file(REMOVE_RECURSE
  "CMakeFiles/smt_mem.dir/cache.cc.o"
  "CMakeFiles/smt_mem.dir/cache.cc.o.d"
  "CMakeFiles/smt_mem.dir/hierarchy.cc.o"
  "CMakeFiles/smt_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/smt_mem.dir/sim_memory.cc.o"
  "CMakeFiles/smt_mem.dir/sim_memory.cc.o.d"
  "libsmt_mem.a"
  "libsmt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
