file(REMOVE_RECURSE
  "libsmt_kernels.a"
)
