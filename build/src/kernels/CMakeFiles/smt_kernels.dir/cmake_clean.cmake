file(REMOVE_RECURSE
  "CMakeFiles/smt_kernels.dir/bt.cc.o"
  "CMakeFiles/smt_kernels.dir/bt.cc.o.d"
  "CMakeFiles/smt_kernels.dir/cg.cc.o"
  "CMakeFiles/smt_kernels.dir/cg.cc.o.d"
  "CMakeFiles/smt_kernels.dir/layouts.cc.o"
  "CMakeFiles/smt_kernels.dir/layouts.cc.o.d"
  "CMakeFiles/smt_kernels.dir/lu.cc.o"
  "CMakeFiles/smt_kernels.dir/lu.cc.o.d"
  "CMakeFiles/smt_kernels.dir/matmul.cc.o"
  "CMakeFiles/smt_kernels.dir/matmul.cc.o.d"
  "CMakeFiles/smt_kernels.dir/reference.cc.o"
  "CMakeFiles/smt_kernels.dir/reference.cc.o.d"
  "libsmt_kernels.a"
  "libsmt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
