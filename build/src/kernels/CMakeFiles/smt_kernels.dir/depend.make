# Empty dependencies file for smt_kernels.
# This may be replaced when dependencies are built.
