
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bt.cc" "src/kernels/CMakeFiles/smt_kernels.dir/bt.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/bt.cc.o.d"
  "/root/repo/src/kernels/cg.cc" "src/kernels/CMakeFiles/smt_kernels.dir/cg.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/cg.cc.o.d"
  "/root/repo/src/kernels/layouts.cc" "src/kernels/CMakeFiles/smt_kernels.dir/layouts.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/layouts.cc.o.d"
  "/root/repo/src/kernels/lu.cc" "src/kernels/CMakeFiles/smt_kernels.dir/lu.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/lu.cc.o.d"
  "/root/repo/src/kernels/matmul.cc" "src/kernels/CMakeFiles/smt_kernels.dir/matmul.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/matmul.cc.o.d"
  "/root/repo/src/kernels/reference.cc" "src/kernels/CMakeFiles/smt_kernels.dir/reference.cc.o" "gcc" "src/kernels/CMakeFiles/smt_kernels.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/smt_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/smt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/smt_perfmon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
