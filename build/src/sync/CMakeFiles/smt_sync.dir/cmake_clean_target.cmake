file(REMOVE_RECURSE
  "libsmt_sync.a"
)
