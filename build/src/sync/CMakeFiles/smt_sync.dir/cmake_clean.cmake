file(REMOVE_RECURSE
  "CMakeFiles/smt_sync.dir/primitives.cc.o"
  "CMakeFiles/smt_sync.dir/primitives.cc.o.d"
  "libsmt_sync.a"
  "libsmt_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
