
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/primitives.cc" "src/sync/CMakeFiles/smt_sync.dir/primitives.cc.o" "gcc" "src/sync/CMakeFiles/smt_sync.dir/primitives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/smt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
