# Empty dependencies file for smt_sync.
# This may be replaced when dependencies are built.
