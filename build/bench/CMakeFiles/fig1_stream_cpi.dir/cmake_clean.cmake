file(REMOVE_RECURSE
  "CMakeFiles/fig1_stream_cpi.dir/fig1_stream_cpi.cc.o"
  "CMakeFiles/fig1_stream_cpi.dir/fig1_stream_cpi.cc.o.d"
  "fig1_stream_cpi"
  "fig1_stream_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stream_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
