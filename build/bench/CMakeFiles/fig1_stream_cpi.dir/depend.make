# Empty dependencies file for fig1_stream_cpi.
# This may be replaced when dependencies are built.
