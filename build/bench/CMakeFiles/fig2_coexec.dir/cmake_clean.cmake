file(REMOVE_RECURSE
  "CMakeFiles/fig2_coexec.dir/fig2_coexec.cc.o"
  "CMakeFiles/fig2_coexec.dir/fig2_coexec.cc.o.d"
  "fig2_coexec"
  "fig2_coexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_coexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
