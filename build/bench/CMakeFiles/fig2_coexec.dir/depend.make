# Empty dependencies file for fig2_coexec.
# This may be replaced when dependencies are built.
