file(REMOVE_RECURSE
  "CMakeFiles/table1_mix.dir/table1_mix.cc.o"
  "CMakeFiles/table1_mix.dir/table1_mix.cc.o.d"
  "table1_mix"
  "table1_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
