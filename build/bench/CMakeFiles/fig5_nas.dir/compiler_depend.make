# Empty compiler generated dependencies file for fig5_nas.
# This may be replaced when dependencies are built.
