file(REMOVE_RECURSE
  "CMakeFiles/fig5_nas.dir/fig5_nas.cc.o"
  "CMakeFiles/fig5_nas.dir/fig5_nas.cc.o.d"
  "fig5_nas"
  "fig5_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
