file(REMOVE_RECURSE
  "CMakeFiles/multiprog_pairs.dir/multiprog_pairs.cc.o"
  "CMakeFiles/multiprog_pairs.dir/multiprog_pairs.cc.o.d"
  "multiprog_pairs"
  "multiprog_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprog_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
