# Empty compiler generated dependencies file for multiprog_pairs.
# This may be replaced when dependencies are built.
