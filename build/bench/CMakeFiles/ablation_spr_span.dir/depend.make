# Empty dependencies file for ablation_spr_span.
# This may be replaced when dependencies are built.
