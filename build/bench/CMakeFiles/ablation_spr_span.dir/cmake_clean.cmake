file(REMOVE_RECURSE
  "CMakeFiles/ablation_spr_span.dir/ablation_spr_span.cc.o"
  "CMakeFiles/ablation_spr_span.dir/ablation_spr_span.cc.o.d"
  "ablation_spr_span"
  "ablation_spr_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spr_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
