# Empty dependencies file for fig4_lu.
# This may be replaced when dependencies are built.
