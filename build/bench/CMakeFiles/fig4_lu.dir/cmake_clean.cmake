file(REMOVE_RECURSE
  "CMakeFiles/fig4_lu.dir/fig4_lu.cc.o"
  "CMakeFiles/fig4_lu.dir/fig4_lu.cc.o.d"
  "fig4_lu"
  "fig4_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
