file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_sync.dir/custom_kernel_sync.cpp.o"
  "CMakeFiles/custom_kernel_sync.dir/custom_kernel_sync.cpp.o.d"
  "custom_kernel_sync"
  "custom_kernel_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
