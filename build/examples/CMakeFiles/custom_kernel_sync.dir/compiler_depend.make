# Empty compiler generated dependencies file for custom_kernel_sync.
# This may be replaced when dependencies are built.
