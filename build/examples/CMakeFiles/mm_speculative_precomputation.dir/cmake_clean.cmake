file(REMOVE_RECURSE
  "CMakeFiles/mm_speculative_precomputation.dir/mm_speculative_precomputation.cpp.o"
  "CMakeFiles/mm_speculative_precomputation.dir/mm_speculative_precomputation.cpp.o.d"
  "mm_speculative_precomputation"
  "mm_speculative_precomputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_speculative_precomputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
