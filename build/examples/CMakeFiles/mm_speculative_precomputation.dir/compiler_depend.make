# Empty compiler generated dependencies file for mm_speculative_precomputation.
# This may be replaced when dependencies are built.
