
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/stream_interaction.cpp" "examples/CMakeFiles/stream_interaction.dir/stream_interaction.cpp.o" "gcc" "examples/CMakeFiles/stream_interaction.dir/stream_interaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/streams/CMakeFiles/smt_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/smt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/smt_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
