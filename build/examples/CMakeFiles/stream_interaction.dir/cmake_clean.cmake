file(REMOVE_RECURSE
  "CMakeFiles/stream_interaction.dir/stream_interaction.cpp.o"
  "CMakeFiles/stream_interaction.dir/stream_interaction.cpp.o.d"
  "stream_interaction"
  "stream_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
