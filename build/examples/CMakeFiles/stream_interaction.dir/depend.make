# Empty dependencies file for stream_interaction.
# This may be replaced when dependencies are built.
