// Explore how two instruction streams interact when co-executed on the two
// hardware contexts (the paper's §4 methodology, interactive):
//
//   $ ./stream_interaction fadd max fmul max
//   $ ./stream_interaction fdiv min fdiv min
//
// Prints the single-threaded CPI of each stream, the co-executed CPIs, and
// the resulting slowdown factors.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/run_report.h"
#include "streams/stream_gen.h"
#include "streams/stream_runner.h"

using namespace smt;
using streams::IlpLevel;
using streams::StreamKind;
using streams::StreamSpec;

namespace {

bool parse_kind(const char* s, StreamKind* out) {
  static const std::pair<const char*, StreamKind> kMap[] = {
      {"fadd", StreamKind::kFAdd},     {"fsub", StreamKind::kFSub},
      {"fmul", StreamKind::kFMul},     {"fdiv", StreamKind::kFDiv},
      {"fadd-mul", StreamKind::kFAddMul},
      {"fload", StreamKind::kFLoad},   {"fstore", StreamKind::kFStore},
      {"iadd", StreamKind::kIAdd},     {"isub", StreamKind::kISub},
      {"imul", StreamKind::kIMul},     {"idiv", StreamKind::kIDiv},
      {"iload", StreamKind::kILoad},   {"istore", StreamKind::kIStore},
  };
  for (const auto& [name, kind] : kMap) {
    if (std::strcmp(s, name) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_ilp(const char* s, IlpLevel* out) {
  if (std::strcmp(s, "min") == 0) *out = IlpLevel::kMin;
  else if (std::strcmp(s, "med") == 0) *out = IlpLevel::kMed;
  else if (std::strcmp(s, "max") == 0) *out = IlpLevel::kMax;
  else return false;
  return true;
}

uint64_t ops_for(StreamKind k) {
  switch (k) {
    case StreamKind::kFDiv:
    case StreamKind::kIDiv:
      return 8'000;
    default:
      return 150'000;
  }
}

}  // namespace

int main(int argc, char** argv) {
  StreamKind ka = StreamKind::kFAdd, kb = StreamKind::kFMul;
  IlpLevel la = IlpLevel::kMax, lb = IlpLevel::kMax;
  if (argc == 5) {
    if (!parse_kind(argv[1], &ka) || !parse_ilp(argv[2], &la) ||
        !parse_kind(argv[3], &kb) || !parse_ilp(argv[4], &lb)) {
      std::fprintf(stderr,
                   "usage: %s <stream> <min|med|max> <stream> <min|med|max>\n"
                   "streams: fadd fsub fmul fdiv fadd-mul fload fstore iadd "
                   "isub imul idiv iload istore\n",
                   argv[0]);
      return 1;
    }
  } else if (argc != 1) {
    std::fprintf(stderr, "expected 0 or 4 arguments\n");
    return 1;
  }

  StreamSpec a;
  a.kind = ka;
  a.ilp = la;
  a.ops = ops_for(ka);
  StreamSpec b;
  b.kind = kb;
  b.ilp = lb;
  b.ops = ops_for(kb);

  const auto sa = streams::run_single(a);
  const auto sb = streams::run_single(b);
  const auto pair = streams::run_pair(a, b);

  std::printf("stream A: %-16s alone CPI %.2f   co-run CPI %.2f   slowdown %+.0f%%\n",
              a.label().c_str(), sa.cpi[0], pair.cpi[0],
              100.0 * (pair.cpi[0] / sa.cpi[0] - 1.0));
  std::printf("stream B: %-16s alone CPI %.2f   co-run CPI %.2f   slowdown %+.0f%%\n",
              b.label().c_str(), sb.cpi[0], pair.cpi[1],
              100.0 * (pair.cpi[1] / sb.cpi[0] - 1.0));
  const double cum_alone = 1.0 / sa.cpi[0];  // best single-context rate
  const double cum_pair = 1.0 / pair.cpi[0] + 1.0 / pair.cpi[1];
  std::printf("cumulative throughput: %.2f instr/cycle co-run vs %.2f for A alone\n",
              cum_pair, cum_alone);

  // Where the co-run cycles went, per logical CPU (top-down accounting).
  std::printf("\n%s", core::RunReport::from(pair.stats).to_table().c_str());
  return 0;
}
