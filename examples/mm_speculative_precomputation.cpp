// Walkthrough of speculative precomputation (SPR) on the Matrix
// Multiplication kernel, following the paper's recipe end to end:
//
//   1. run the serial kernel and profile which static loads cause the L2
//      misses (the Valgrind step of paper 3.2);
//   2. run the SPR version: a worker plus a helper thread that prefetches
//      the next precomputation span's tiles, throttled by halt barriers;
//   3. compare time, worker L2 misses and uop counts — reproducing the
//      core tension of the paper: big miss reductions, little speedup.
//
//   $ ./mm_speculative_precomputation [n]
#include <cstdio>
#include <cstdlib>

#include "core/machine.h"
#include "core/run_report.h"
#include "kernels/matmul.h"
#include "perfmon/events.h"
#include "profile/delinquent.h"

using namespace smt;
using kernels::MatMulParams;
using kernels::MatMulWorkload;
using kernels::MmMode;
using perfmon::Event;

namespace {

struct Run {
  Cycle cycles;
  uint64_t worker_l2;
  uint64_t uops;
  core::RunReport report;
};

Run run_mode(const MatMulParams& p, bool profile_misses) {
  core::Machine m{core::MachineConfig{}};
  if (profile_misses) m.hierarchy().set_track_pc_misses(true);
  MatMulParams params = p;
  MatMulWorkload w(params);
  w.setup(m);
  auto progs = w.programs();
  const isa::Program worker_prog = progs[0];
  for (size_t i = 0; i < progs.size(); ++i) {
    m.load_program(static_cast<CpuId>(i), std::move(progs[i]));
  }
  m.run();
  if (!w.verify(m)) {
    std::fprintf(stderr, "verification failed!\n");
    std::exit(1);
  }
  if (profile_misses) {
    const auto loads = profile::find_delinquent_loads(
        m.hierarchy(), CpuId::kCpu0, worker_prog, 0.95);
    std::printf("Delinquent loads of the serial kernel (the profiling step\n"
                "the paper did with Valgrind):\n%s\n",
                profile::report(loads).c_str());
  }
  return {m.cycles(), m.counters().get(CpuId::kCpu0, Event::kL2ReadMisses),
          m.counters().total(Event::kUopsRetired),
          core::report_from_machine(m, w.name(), true)};
}

}  // namespace

int main(int argc, char** argv) {
  MatMulParams p;
  p.n = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 64;
  p.tile = 16;

  std::printf("== Matrix multiplication, n=%zu, blocked layout, tile %zu ==\n\n",
              p.n, p.tile);

  p.mode = MmMode::kSerial;
  const Run serial = run_mode(p, /*profile_misses=*/true);

  p.mode = MmMode::kTlpPfetch;
  p.halt_barriers = true;  // long-duration spans: prefetcher sleeps via halt
  const Run spr = run_mode(p, false);

  std::printf("%-22s %14s %14s\n", "", "serial", "tlp-pfetch");
  std::printf("%-22s %14llu %14llu\n", "cycles",
              (unsigned long long)serial.cycles, (unsigned long long)spr.cycles);
  std::printf("%-22s %14llu %14llu\n", "worker L2 read misses",
              (unsigned long long)serial.worker_l2,
              (unsigned long long)spr.worker_l2);
  std::printf("%-22s %14llu %14llu\n", "uops retired (total)",
              (unsigned long long)serial.uops, (unsigned long long)spr.uops);
  std::printf(
      "\nSPR speedup: %.3fx, worker L2 misses cut by %.0f%%\n"
      "(the paper: ~82%% fewer worker misses, yet no overall speedup)\n",
      (double)serial.cycles / spr.cycles,
      100.0 * (1.0 - (double)spr.worker_l2 /
                         (serial.worker_l2 ? serial.worker_l2 : 1)));
  std::printf("\nWhere the SPR run's cycles went (cpu0 = worker, cpu1 = "
              "prefetcher):\n%s",
              spr.report.to_table().c_str());
  return 0;
}
