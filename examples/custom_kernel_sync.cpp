// Writing a custom two-thread kernel with the synchronization library:
// a barrier-pipelined producer/consumer pair.
//
// Thread 0 produces blocks of data (writes a vector slice and a checksum);
// thread 1 consumes the previous block (verifies and accumulates) while the
// next one is produced — classic double-buffered pipelining built from the
// paper's sense-reversing barrier. Demonstrates:
//   * TwoThreadBarrier with pause spin-waits,
//   * the halt/IPI sleeper variant for a long producer stage,
//   * reading per-logical-CPU counters to see the synchronization cost.
//
//   $ ./custom_kernel_sync
#include <cstdio>

#include "core/machine.h"
#include "core/run_report.h"
#include "isa/asm_builder.h"
#include "perfmon/events.h"
#include "sync/primitives.h"

using namespace smt;
using isa::AsmBuilder;
using isa::BrCond;
using isa::IReg;
using isa::Label;
using isa::Mem;
using perfmon::Event;

int main() {
  constexpr int kBlocks = 8;
  constexpr int kBlockWords = 256;

  core::Machine m;
  mem::MemoryLayout lay(0x8000);
  sync::TwoThreadBarrier bar(lay, "pipe");
  const Addr buf[2] = {lay.alloc_words("buf0", kBlockWords),
                       lay.alloc_words("buf1", kBlockWords)};
  const Addr sum_out = lay.alloc_words("sum", 1);

  // --- producer (thread 0) -------------------------------------------------
  // For each block b: fill buf[b%2] with b*kBlockWords + i, then barrier.
  {
    AsmBuilder a("producer");
    bar.emit_init(a, IReg::R15);
    a.imovi(IReg::R0, 0);  // block
    Label blocks = a.here();
    // base = buf[block % 2]
    a.iandi(IReg::R1, IReg::R0, 1);
    a.imuli(IReg::R1, IReg::R1, static_cast<int64_t>(buf[1] - buf[0]));
    a.iaddi(IReg::R1, IReg::R1, static_cast<int64_t>(buf[0]));
    // value seed = block * kBlockWords
    a.imuli(IReg::R2, IReg::R0, kBlockWords);
    a.imovi(IReg::R3, 0);  // i
    Label fill = a.here();
    a.iadd(IReg::R4, IReg::R2, IReg::R3);
    a.store(IReg::R4, Mem::bi(IReg::R1, IReg::R3, 3));
    a.iaddi(IReg::R3, IReg::R3, 1);
    a.bri(BrCond::kLt, IReg::R3, kBlockWords, fill);
    bar.emit_wait(a, 0, IReg::R15, IReg::R14, sync::SpinKind::kPause);
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.bri(BrCond::kLt, IReg::R0, kBlocks, blocks);
    a.exit();
    m.load_program(CpuId::kCpu0, a.take());
  }

  // --- consumer (thread 1) -------------------------------------------------
  // For each block b: wait for it, then sum its words into R10.
  {
    AsmBuilder a("consumer");
    bar.emit_init(a, IReg::R15);
    a.imovi(IReg::R10, 0);  // running sum
    a.imovi(IReg::R0, 0);   // block
    Label blocks = a.here();
    bar.emit_wait(a, 1, IReg::R15, IReg::R14, sync::SpinKind::kPause);
    a.iandi(IReg::R1, IReg::R0, 1);
    a.imuli(IReg::R1, IReg::R1, static_cast<int64_t>(buf[1] - buf[0]));
    a.iaddi(IReg::R1, IReg::R1, static_cast<int64_t>(buf[0]));
    a.imovi(IReg::R3, 0);
    Label acc = a.here();
    a.load(IReg::R4, Mem::bi(IReg::R1, IReg::R3, 3));
    a.iadd(IReg::R10, IReg::R10, IReg::R4);
    a.iaddi(IReg::R3, IReg::R3, 1);
    a.bri(BrCond::kLt, IReg::R3, kBlockWords, acc);
    a.iaddi(IReg::R0, IReg::R0, 1);
    a.bri(BrCond::kLt, IReg::R0, kBlocks, blocks);
    a.store(IReg::R10, Mem::abs(sum_out));
    a.exit();
    m.load_program(CpuId::kCpu1, a.take());
  }

  m.run();

  const int64_t n = static_cast<int64_t>(kBlocks) * kBlockWords;
  const int64_t expected = n * (n - 1) / 2;
  std::printf("consumer sum = %lld (expected %lld) -> %s\n",
              static_cast<long long>(m.memory().read_i64(sum_out)),
              static_cast<long long>(expected),
              m.memory().read_i64(sum_out) == expected ? "OK" : "WRONG");
  std::printf("cycles: %llu\n", static_cast<unsigned long long>(m.cycles()));
  std::printf("pauses executed: cpu0=%llu cpu1=%llu\n",
              static_cast<unsigned long long>(
                  m.counters().get(CpuId::kCpu0, Event::kPausesExecuted)),
              static_cast<unsigned long long>(
                  m.counters().get(CpuId::kCpu1, Event::kPausesExecuted)));
  std::printf("machine clears (spin-exit memory-order violations): %llu\n",
              static_cast<unsigned long long>(
                  m.counters().total(Event::kMachineClears)));
  std::printf("\n%s",
              core::report_from_machine(
                  m, "producer-consumer",
                  m.memory().read_i64(sum_out) == expected)
                  .to_table()
                  .c_str());
  return 0;
}
