// Quickstart: build a tiny program with the assembler DSL, run it on the
// simulated Hyper-Threading processor, and read the performance counters —
// the smallest end-to-end tour of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/machine.h"
#include "core/run_report.h"
#include "isa/asm_builder.h"
#include "isa/disasm.h"
#include "perfmon/events.h"

using namespace smt;
using isa::AsmBuilder;
using isa::BrCond;
using isa::FReg;
using isa::IReg;
using isa::Mem;

int main() {
  // 1. A machine with the Netburst-class defaults: 2 logical CPUs, 3-wide
  //    pipeline, 8 KiB L1D + 512 KiB L2, statically partitioned queues.
  core::Machine m;

  // 2. Put some data into simulated memory: x[0..63].
  const Addr x = 0x10000;
  for (int i = 0; i < 64; ++i) m.memory().write_f64(x + 8 * i, 0.5 * i);

  // 3. Write a program: sum = Σ x[i], stored to memory at `out`.
  const Addr out = 0x20000;
  AsmBuilder a("sum");
  a.imovi(IReg::R0, 0);           // i = 0
  a.fmovi(FReg::F0, 0.0);         // sum = 0
  isa::Label loop = a.here();
  a.fload(FReg::F1, Mem::idx(IReg::R0, 3, x));
  a.fadd(FReg::F0, FReg::F0, FReg::F1);
  a.iaddi(IReg::R0, IReg::R0, 1);
  a.bri(BrCond::kLt, IReg::R0, 64, loop);
  a.fstore(FReg::F0, Mem::abs(out));
  a.exit();
  isa::Program prog = a.take();

  std::printf("Program (%zu instructions):\n%s\n", prog.size(),
              isa::disasm(prog).c_str());

  // 4. Bind it to logical CPU 0 (sched_setaffinity analog) and run.
  m.load_program(CpuId::kCpu0, std::move(prog));
  m.run();

  // 5. Results: architectural memory plus per-logical-CPU counters.
  using perfmon::Event;
  const auto& c = m.counters();
  std::printf("sum            = %.1f (expected %.1f)\n",
              m.memory().read_f64(out), 0.5 * 63 * 64 / 2);
  std::printf("cycles         = %llu\n",
              static_cast<unsigned long long>(m.cycles()));
  std::printf("instructions   = %llu\n",
              static_cast<unsigned long long>(
                  c.get(CpuId::kCpu0, Event::kInstrRetired)));
  std::printf("CPI            = %.2f\n", c.cpi(CpuId::kCpu0));
  std::printf("L2 read misses = %llu\n",
              static_cast<unsigned long long>(
                  c.get(CpuId::kCpu0, Event::kL2ReadMisses)));
  std::printf("\nAll counters:\n%s", c.to_string().c_str());

  // 6. A structured run report: top-down cycle accounting per logical CPU,
  //    plus a JSON artifact with every counter and the machine config —
  //    the same format all bench binaries emit under SMT_BENCH_REPORT_DIR.
  const core::RunReport report = core::report_from_machine(
      m, "quickstart.sum",
      /*verified=*/m.memory().read_f64(out) == 0.5 * 63 * 64 / 2);
  std::printf("\n%s", report.to_table().c_str());
  const char* json_path = "quickstart.report.json";
  if (report.write_json_file(json_path)) {
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
