#!/usr/bin/env bash
# Tier-1 CI: configure (warnings as errors), build, run the full test
# suite (which includes the bench-report and bench-trace smoke tests),
# then double-check that a bench binary emits parseable RunReport JSON
# artifacts — once plain, once with telemetry enabled so the reports carry
# the timeseries section and a Perfetto-loadable trace lands next to them.
#
# The sanitizer matrix rides behind the main job (skip with SMT_CI_FAST=1):
#   asan  ASan+UBSan build, full test suite;
#   tsan  TSan build, host-parallelism surfaces only (host_test,
#         metrics_test, and a metrics+trace sweep) — guest simulation is
#         single-threaded; the job pool and metrics registry are what
#         TSan is for.
#
# The tail gates the host observability artifacts: a --metrics/--trace
# sweep must validate against its index, and smt_history must both
# accept a fresh deterministic run (vs the committed bench/history
# baselines) and flag a perturbed one. It also proves the result
# cache's determinism contract on the full registry: two sweeps against
# one store must produce a 100%-hit warm run whose index is
# byte-identical modulo wall-clock fields, and a --cache-verify sample
# must re-simulate hits against the stored bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DSMT_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Static front end of the guest-program verifier over the full registry
# (also exercised by the lint_smoke ctest; run explicitly so a CI log
# always shows the error/warning counts), plus the structured JSON
# report validated by check_reports, the seeded-violation selftest, and
# clang-tidy when available.
./build/tools/smt_lint
lint_dir=$(mktemp -d)
./build/tools/smt_lint --format=json > "$lint_dir/lint.json"
grep -q '"schema":"smt-lint-report/1"' "$lint_dir/lint.json"
grep -q '"errors":0' "$lint_dir/lint.json"
./build/tools/check_reports --lint-report "$lint_dir/lint.json"
# Every seeded violation — one per lint rule — must be caught.
./build/tools/smt_lint --selftest > "$lint_dir/selftest.txt"
for rule in uninit-read missing-pause lock-pairing sync-region-write \
    out-of-extent range-out-of-extent unreachable fall-off-end \
    barrier-mismatch lock-order; do
  grep -q "caught $rule" "$lint_dir/selftest.txt"
done
# The sweep-side pre-run gate: a registry program broken under the
# selftest env knob must be indexed as lint_failed without ever running.
if SMT_SELFTEST_LINT_BREAK=1 ./build/tools/smt_sweep --quiet --lint \
    --out "$lint_dir/sweep" --metrics "$lint_dir/sweep/metrics.json" \
    selftest.lint mm.serial.n64 2> /dev/null; then
  echo "smt_sweep --lint ignored a seeded lint violation" >&2
  exit 1
fi
grep -q '"outcome":"lint_failed"' "$lint_dir/sweep/sweep_index.json"
./build/tools/check_reports "$lint_dir/sweep/reports" \
  --metrics "$lint_dir/sweep/metrics.json" \
  --index "$lint_dir/sweep/sweep_index.json"
rm -rf "$lint_dir"
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # shellcheck disable=SC2046
  clang-tidy -p build --quiet \
    $(find src/host src/analysis -name '*.cc') 2> /dev/null
  # The analysis layer additionally holds to the performance and
  # const-correctness profiles (warnings promoted to errors).
  # shellcheck disable=SC2046
  clang-tidy -p build --quiet \
    -checks='performance-*,misc-const-correctness' \
    -warnings-as-errors='performance-*,misc-const-correctness' \
    $(find src/analysis -name '*.cc') 2> /dev/null
else
  echo "ci: clang-tidy not installed, skipping tidy pass" >&2
fi

if [[ "${SMT_CI_FAST:-0}" != "1" ]]; then
  cmake -B build-asan -S . -DSMT_WERROR=ON -DSMT_SANITIZE=asan
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

  cmake -B build-tsan -S . -DSMT_WERROR=ON -DSMT_SANITIZE=tsan
  cmake --build build-tsan -j "$(nproc)" \
    --target host_test metrics_test smt_sweep check_reports
  ./build-tsan/tests/host_test
  ./build-tsan/tests/metrics_test
  tsan_sweep_dir=$(mktemp -d)
  trap 'rm -rf "$tsan_sweep_dir"' EXIT
  # Metrics + tracing on under TSan: the registry and the on_attempt
  # trace collection are exactly the cross-thread surfaces it checks.
  ./build-tsan/tools/smt_sweep --jobs 4 --out "$tsan_sweep_dir" \
    --metrics "$tsan_sweep_dir/metrics.json" \
    --trace "$tsan_sweep_dir/trace/sweep.trace.json" \
    mm.serial.n64 bt.serial cg.serial > /dev/null
  ./build-tsan/tools/check_reports "$tsan_sweep_dir/reports" \
    "$tsan_sweep_dir/trace" \
    --metrics "$tsan_sweep_dir/metrics.json" \
    --index "$tsan_sweep_dir/sweep_index.json"
fi

# Belt-and-braces: drive the cheapest bench with reporting on and validate.
report_dir=$(mktemp -d)
trace_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir"' EXIT
SMT_BENCH_REPORT_DIR="$report_dir" ./build/bench/ablation_sync > /dev/null
./build/tools/check_reports "$report_dir"

# Same bench with tracing on: schema /2 reports + Chrome trace-event files.
rm -rf "$report_dir" && mkdir -p "$report_dir"
SMT_BENCH_REPORT_DIR="$report_dir" SMT_BENCH_TRACE_DIR="$trace_dir" \
  ./build/bench/ablation_sync > /dev/null
./build/tools/check_reports "$report_dir" "$trace_dir"

# Profiled run of the fig3 matmul bench: schema /3 reports whose per-PC
# attributions must validate, annotate cleanly, and gate regressions.
profile_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir"' EXIT
SMT_BENCH_REPORT_DIR="$profile_dir" SMT_BENCH_PROFILE=1 \
  ./build/bench/fig3_matmul > /dev/null
./build/tools/check_reports "$profile_dir"

# The annotated disassembly must surface ALU0 traffic (the paper's
# mask-instruction serialization signature of the blocked-layout MM).
mm_report="$profile_dir/fig3_matmul.mm.serial.n64.json"
./build/tools/smt_annotate "$mm_report" --cpu 0 > "$profile_dir/annotated.txt"
grep -q "alu0" "$profile_dir/annotated.txt"

# report_diff is the regression gate: a report diffed against itself must
# pass, and a perturbed counter must trip a nonzero exit.
./build/tools/report_diff "$mm_report" "$mm_report"
sed -E 's/"uops_retired":[0-9]+/"uops_retired":1/' "$mm_report" \
  > "$profile_dir/perturbed.json"
if ./build/tools/report_diff "$mm_report" "$profile_dir/perturbed.json"; then
  echo "report_diff failed to flag a perturbed counter" >&2
  exit 1
fi

# Sweep orchestrator: a small manifest with an injected deadlock job must
# exit nonzero yet still deliver a complete index and valid reports for
# every job — failures are data, not process aborts.
sweep_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir"' EXIT
if ./build/tools/smt_sweep --jobs 2 --out "$sweep_dir" \
    mm.serial.n64 selftest.deadlock bt.serial 2> "$sweep_dir/stderr.txt"; then
  echo "smt_sweep ignored an injected deadlock job" >&2
  exit 1
fi
grep -q "selftest.deadlock" "$sweep_dir/stderr.txt"
grep -q '"schema":"smt-sweep-index/1"' "$sweep_dir/sweep_index.json"
grep -q '"outcome":"deadlock"' "$sweep_dir/sweep_index.json"
test "$(ls "$sweep_dir"/reports/*.json | wc -l)" -eq 3
./build/tools/check_reports "$sweep_dir/reports"

# Host observability: the same orchestrator with --metrics/--trace must
# write a smt-sweep-metrics/1 snapshot that cross-checks against the
# sweep index and a Perfetto-loadable Chrome trace of the workers.
obs_dir=$(mktemp -d)
hist_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir" \
  "$obs_dir" "$hist_dir"' EXIT
./build/tools/smt_sweep --jobs 2 --out "$obs_dir" \
  --metrics "$obs_dir/metrics.json" \
  --trace "$obs_dir/trace/sweep.trace.json" \
  mm.serial.n64 bt.serial cg.serial > /dev/null
grep -q '"schema":"smt-sweep-metrics/1"' "$obs_dir/metrics.json"
./build/tools/check_reports "$obs_dir/reports" "$obs_dir/trace" \
  --metrics "$obs_dir/metrics.json" --index "$obs_dir/sweep_index.json"

# Benchmark history: ingest + self-compare must pass through a fresh
# store, the committed bench/history baselines must accept the fresh
# deterministic run, and a perturbed report must trip the gate nonzero.
./build/tools/smt_history ingest --sweep "$obs_dir" --history "$hist_dir" \
  > /dev/null
./build/tools/smt_history check --sweep "$obs_dir" --history "$hist_dir"
./build/tools/smt_history check --sweep "$obs_dir" --history bench/history
cp -r "$obs_dir" "$hist_dir/perturbed"
sed -E -i 's/"cycles":[0-9]+/"cycles":1/' \
  "$hist_dir/perturbed/reports/mm.serial.n64.json"
if ./build/tools/smt_history check --sweep "$hist_dir/perturbed" \
    --history "$hist_dir" > /dev/null; then
  echo "smt_history failed to flag a perturbed run" >&2
  exit 1
fi

# Interference attribution: a /4 report whose self+sibling sums must
# reproduce the stall counters bit-exactly (validated by check_reports),
# and report_diff must accept a self-diff of the interference section.
inter_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir" \
  "$obs_dir" "$hist_dir" "$inter_dir"' EXIT
SMT_BENCH_REPORT_DIR="$inter_dir" SMT_BENCH_INTERFERENCE=1 \
  ./build/bench/ablation_sync > /dev/null
grep -q '"schema":"smt-run-report/4"' "$inter_dir"/*.json
./build/tools/check_reports "$inter_dir"
inter_report=$(ls "$inter_dir"/*.json | head -1)
./build/tools/report_diff "$inter_report" "$inter_report"

# Pipeline lifetime traces: a pipeview'd fig3 matmul run must drop a
# non-empty, window-bounded Kanata file beside each report (the C/C=
# cycle advances must sum to no more than the configured window).
pview_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir" \
  "$obs_dir" "$hist_dir" "$inter_dir" "$pview_dir"' EXIT
SMT_BENCH_REPORT_DIR="$pview_dir" SMT_BENCH_PIPEVIEW=1 \
  SMT_BENCH_PIPEVIEW_WINDOW=0:20000 \
  ./build/bench/fig3_matmul > /dev/null
mm_kanata="$pview_dir/fig3_matmul.mm.serial.n64.kanata"
head -1 "$mm_kanata" | grep -q "Kanata"
test "$(wc -l < "$mm_kanata")" -gt 10
awk -F'\t' '/^C=/{start=$2} /^C\t/{adv+=$2}
  END{exit (start+adv <= 20000) ? 0 : 1}' "$mm_kanata"

# Cache determinism gate: the full default registry swept twice against
# one content-addressed store. The warm run must hit on every job
# ("cached":false never appears), its index must be byte-identical to
# the cold run's modulo wall-clock fields, and a --cache-verify sample
# must re-simulate hits and confirm the stored bytes. This is the
# end-to-end proof of the determinism contract the cache rests on: a
# key collision, a nondeterministic kernel, or host state leaking into
# reports would all surface here.
cache_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir" \
  "$obs_dir" "$hist_dir" "$inter_dir" "$pview_dir" "$explain_dir" \
  "$cache_dir"' EXIT
./build/tools/smt_sweep --quiet --out "$cache_dir/cold" \
  --cache "$cache_dir/store" \
  --metrics "$cache_dir/cold/metrics.json" > /dev/null
./build/tools/smt_sweep --quiet --out "$cache_dir/warm" \
  --cache "$cache_dir/store" \
  --metrics "$cache_dir/warm/metrics.json" > /dev/null
if grep -q '"cached":false' "$cache_dir/warm/sweep_index.json"; then
  echo "warm registry sweep missed the cache" >&2
  exit 1
fi
strip_wallclock() {
  sed -E -e 's/"wall_ms":[0-9.e+-]+/"wall_ms":0/g' \
    -e 's/"cached":(true|false)/"cached":x/g' "$1"
}
if ! cmp -s <(strip_wallclock "$cache_dir/cold/sweep_index.json") \
    <(strip_wallclock "$cache_dir/warm/sweep_index.json"); then
  echo "warm sweep index differs from cold beyond wall-clock fields" >&2
  exit 1
fi
for run in cold warm; do
  ./build/tools/check_reports "$cache_dir/$run/reports" \
    --metrics "$cache_dir/$run/metrics.json" \
    --index "$cache_dir/$run/sweep_index.json"
done
./build/tools/smt_sweep --quiet --out "$cache_dir/audit" \
  --cache "$cache_dir/store" --cache-verify=3 \
  --metrics "$cache_dir/audit/metrics.json" > /dev/null
grep -q '"cache.verified":3' "$cache_dir/audit/metrics.json"
grep -q '"cache.verify_failed":0' "$cache_dir/audit/metrics.json"

# Post-mortem flight recorder: an injected deadlock must leave a core
# dump the smt_explain diagnoser renders into an explanation naming the
# actual death cycle and the lost wake-up.
explain_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir" "$profile_dir" "$sweep_dir" \
  "$obs_dir" "$hist_dir" "$inter_dir" "$pview_dir" "$explain_dir"' EXIT
./build/tools/smt_sweep --quiet --out "$explain_dir" selftest.deadlock \
  || true
dump="$explain_dir/dumps/selftest.deadlock.dump.json"
./build/tools/check_reports "$explain_dir/reports" --dumps "$explain_dir/dumps"
death_cycle=$(grep -o '"cycle":[0-9]*' "$dump" | head -1 | cut -d: -f2)
./build/tools/smt_explain "$dump" > "$explain_dir/diagnosis.txt"
grep -q "deadlock at cycle $death_cycle" "$explain_dir/diagnosis.txt"
grep -q "awaiting IPI" "$explain_dir/diagnosis.txt"
