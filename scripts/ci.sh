#!/usr/bin/env bash
# Tier-1 CI: configure (warnings as errors), build, run the full test
# suite (which includes the bench-report and bench-trace smoke tests),
# then double-check that a bench binary emits parseable RunReport JSON
# artifacts — once plain, once with telemetry enabled so the reports carry
# the timeseries section and a Perfetto-loadable trace lands next to them.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DSMT_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Belt-and-braces: drive the cheapest bench with reporting on and validate.
report_dir=$(mktemp -d)
trace_dir=$(mktemp -d)
trap 'rm -rf "$report_dir" "$trace_dir"' EXIT
SMT_BENCH_REPORT_DIR="$report_dir" ./build/bench/ablation_sync > /dev/null
./build/tools/check_reports "$report_dir"

# Same bench with tracing on: schema /2 reports + Chrome trace-event files.
rm -rf "$report_dir" && mkdir -p "$report_dir"
SMT_BENCH_REPORT_DIR="$report_dir" SMT_BENCH_TRACE_DIR="$trace_dir" \
  ./build/bench/ablation_sync > /dev/null
./build/tools/check_reports "$report_dir" "$trace_dir"
