#!/usr/bin/env bash
# Tier-1 CI: configure, build, run the full test suite (which includes the
# bench-report smoke test), then double-check that a bench binary emits
# parseable RunReport JSON artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Belt-and-braces: drive the cheapest bench with reporting on and validate.
report_dir=$(mktemp -d)
trap 'rm -rf "$report_dir"' EXIT
SMT_BENCH_REPORT_DIR="$report_dir" ./build/bench/ablation_sync > /dev/null
./build/tools/check_reports "$report_dir"
