// smt_explain: post-mortem diagnoser for failed simulator runs.
//
//   $ smt_explain <dump.json> [report.json]
//
// Renders an `smt-core-dump/1` document (written by the flight recorder —
// see RunOptions::flight_recorder and smt_sweep's <out>/dumps/) into a
// human diagnosis: what each logical CPU was doing at the moment of
// death, the values of every declared sync word, the wait-for graph
// between the two contexts, and a one-paragraph verdict (e.g. "both
// contexts are waiting on each other — a lost wake-up cycle").
//
// When a companion RunReport with an interference section (schema
// smt-run-report/4, enable via SMT_BENCH_INTERFERENCE=1) is also given,
// the diagnosis is extended with the top sibling-blamed stall resources
// per CPU and what machine parameter each one implicates.
//
// Exit status: 0 when a diagnosis was printed; 1 when an input is not a
// valid dump/report; 2 on usage errors; 3 when a file cannot be read.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/log.h"

namespace {

using smt::JsonValue;

constexpr int kExitBadInput = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

double number_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string string_or(const JsonValue& obj, const char* key,
                      const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

std::optional<JsonValue> load_json(const char* path, int* fail_rc) {
  std::ifstream in(path);
  if (!in) {
    smt::log::error("cannot open", {{"path", path}});
    *fail_rc = kExitIo;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    smt::log::error("not a JSON object", {{"path", path}});
    *fail_rc = kExitBadInput;
    return std::nullopt;
  }
  return v;
}

/// What a sibling-blamed stall resource implicates: the machine parameter
/// (or structural hazard) a user would tune to relieve it.
const char* implication(const std::string& reason) {
  if (reason == "rob") return "shared ROB capacity (MachineConfig rob_size)";
  if (reason == "load_queue") {
    return "shared load-queue capacity (load_queue_size)";
  }
  if (reason == "store_buffer") {
    return "shared store-buffer capacity (store_buffer_size)";
  }
  if (reason == "uop_queue_full") {
    return "shared uop-queue capacity (uop_queue_size)";
  }
  if (reason == "port_conflict") {
    return "issue ports / issue bandwidth held by the sibling";
  }
  if (reason == "divider_busy") {
    return "the non-pipelined divider, busy on a sibling divide";
  }
  return "an unrecognized resource";
}

/// One logical CPU's state at the moment of death, printed as two lines.
void print_cpu(const JsonValue& c) {
  const int id = static_cast<int>(number_or(c, "cpu", -1));
  std::printf("cpu%d: mode=%s pc=%" PRIu64 " `%s`\n", id,
              string_or(c, "mode", "?").c_str(),
              static_cast<uint64_t>(number_or(c, "pc", 0)),
              string_or(c, "disasm", "?").c_str());
  std::printf("      rob=%d uop_queue=%d load_queue=%d store_buffer=%d "
              "ipi_pending=%s\n",
              static_cast<int>(number_or(c, "rob", 0)),
              static_cast<int>(number_or(c, "uop_queue", 0)),
              static_cast<int>(number_or(c, "load_queue", 0)),
              static_cast<int>(number_or(c, "store_buffer", 0)),
              [&c] {
                const JsonValue* v = c.find("ipi_pending");
                return v != nullptr && v->type == JsonValue::Type::kBool &&
                               v->boolean
                           ? "yes"
                           : "no";
              }());
  const JsonValue* recent = c.find("recent_retired");
  if (recent != nullptr && recent->is_array() && !recent->array.empty()) {
    const JsonValue& last = recent->array.back();
    std::printf("      last retired: cycle %" PRIu64 " pc=%" PRIu64 " `%s` "
                "(%zu in ring)\n",
                static_cast<uint64_t>(number_or(last, "cycle", 0)),
                static_cast<uint64_t>(number_or(last, "pc", 0)),
                string_or(last, "disasm", "?").c_str(),
                recent->array.size());
  } else {
    std::printf("      last retired: <nothing retired>\n");
  }
}

/// Top sibling-blamed stall reasons for one CPU's interference entry,
/// descending; empty when nothing is sibling-blamed.
std::vector<std::pair<std::string, double>> sibling_blame(
    const JsonValue& entry) {
  std::vector<std::pair<std::string, double>> top;
  const JsonValue* sib = entry.find("sibling");
  if (sib == nullptr || !sib->is_object()) return top;
  for (const auto& [reason, v] : sib->object) {
    if (v.is_number() && v.number > 0) top.emplace_back(reason, v.number);
  }
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return top;
}

}  // namespace

int main(int argc, char** argv) {
  const char* dump_path = nullptr;
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: %s <dump.json> [report.json]\n", argv[0]);
      return kExitUsage;
    }
    (dump_path == nullptr ? dump_path : report_path) = argv[i];
  }
  if (dump_path == nullptr) {
    std::fprintf(stderr, "usage: %s <dump.json> [report.json]\n", argv[0]);
    return kExitUsage;
  }

  int fail_rc = 0;
  const auto dump = load_json(dump_path, &fail_rc);
  if (!dump.has_value()) return fail_rc;
  if (string_or(*dump, "schema", "") != "smt-core-dump/1") {
    smt::log::error("not an smt-core-dump/1 document",
                    {{"path", dump_path}});
    return kExitBadInput;
  }

  const std::string outcome = string_or(*dump, "outcome", "?");
  const uint64_t cycle =
      static_cast<uint64_t>(number_or(*dump, "cycle", 0));
  std::printf("workload: %s\n", string_or(*dump, "workload", "?").c_str());
  std::printf("outcome: %s at cycle %" PRIu64 " — %s\n", outcome.c_str(),
              cycle, string_or(*dump, "message", "").c_str());
  std::printf("\n");

  const JsonValue* cpus = dump->find("cpus");
  if (cpus == nullptr || !cpus->is_array()) {
    smt::log::error("dump has no cpus array", {{"path", dump_path}});
    return kExitBadInput;
  }
  for (const JsonValue& c : cpus->array) print_cpu(c);

  const JsonValue* sync = dump->find("sync_words");
  if (sync != nullptr && sync->is_array() && !sync->array.empty()) {
    std::printf("\nsync words at death:\n");
    for (const JsonValue& s : sync->array) {
      std::printf("  %s[0x%" PRIx64 "] = %" PRIu64 "\n",
                  string_or(s, "region", "?").c_str(),
                  static_cast<uint64_t>(number_or(s, "addr", 0)),
                  static_cast<uint64_t>(number_or(s, "value", 0)));
    }
  }

  // Wait-for graph: who is blocked on whom, and why.
  const JsonValue* wf = dump->find("wait_for");
  size_t waiting = 0;
  std::printf("\nwait-for graph:\n");
  if (wf != nullptr && wf->is_array() && !wf->array.empty()) {
    waiting = wf->array.size();
    for (const JsonValue& e : wf->array) {
      const int from = static_cast<int>(number_or(e, "from", -1));
      const int to = static_cast<int>(number_or(e, "to", -1));
      std::string mode = "?";
      for (const JsonValue& c : cpus->array) {
        if (static_cast<int>(number_or(c, "cpu", -1)) == from) {
          mode = string_or(c, "mode", "?");
        }
      }
      std::printf("  cpu%d (%s) -> cpu%d: %s\n", from, mode.c_str(), to,
                  string_or(e, "why", "?").c_str());
    }
  } else {
    std::printf("  (no context is waiting)\n");
  }

  // The verdict. Keep the cycle number in this line too: it is the one a
  // regression test greps for.
  std::printf("\ndiagnosis: ");
  if (outcome == "deadlock" && waiting >= cpus->array.size()) {
    std::printf(
        "both contexts are waiting on each other at cycle %" PRIu64
        " — the classic lost wake-up cycle. Neither sibling can run the "
        "code that would release the other; check the sync-word values "
        "above against what each spin/halt site expects.\n",
        cycle);
  } else if (outcome == "deadlock" && waiting > 0) {
    std::printf(
        "one context is waiting at cycle %" PRIu64
        " for a wake-up its sibling never delivers (the sibling is not "
        "itself blocked — it likely exited or branched past the "
        "release).\n",
        cycle);
  } else if (outcome == "deadlock") {
    std::printf(
        "no forward progress at cycle %" PRIu64
        " with no annotated wait — likely a guest spin outside any "
        "declared sync region; inspect the per-CPU pc/disasm above.\n",
        cycle);
  } else if (outcome == "cycle_budget_exceeded") {
    std::printf(
        "the run was cut off at cycle %" PRIu64
        " by its cycle budget. The recent-retired rings above show "
        "whether it was still making progress (raise the budget) or "
        "crawling (check the interference section of a /4 report).\n",
        cycle);
  } else if (outcome == "race_detected") {
    std::printf(
        "a data race was detected by cycle %" PRIu64
        " — see the message above for the conflicting accesses; the "
        "registers and sync words show the state the race left behind.\n",
        cycle);
  } else {
    std::printf("outcome '%s' at cycle %" PRIu64 ".\n", outcome.c_str(),
                cycle);
  }

  // Optional companion report: sibling-blamed interference ranking.
  if (report_path != nullptr) {
    const auto report = load_json(report_path, &fail_rc);
    if (!report.has_value()) return fail_rc;
    const JsonValue* inter = report->find("interference");
    if (inter == nullptr || !inter->is_array()) {
      std::printf(
          "\nnote: %s carries no interference section (need schema "
          "smt-run-report/4; run with SMT_BENCH_INTERFERENCE=1)\n",
          report_path);
    } else {
      std::printf("\nsibling-blamed stalls (from %s):\n", report_path);
      for (const JsonValue& entry : inter->array) {
        const int id = static_cast<int>(number_or(entry, "cpu", -1));
        const auto top = sibling_blame(entry);
        if (top.empty()) {
          std::printf("  cpu%d: none — every stall was self-inflicted\n", id);
          continue;
        }
        for (const auto& [reason, cycles] : top) {
          std::printf("  cpu%d: %-14s %12.0f cycles — implicates %s\n", id,
                      reason.c_str(), cycles, implication(reason));
        }
      }
    }
  }
  return 0;
}
