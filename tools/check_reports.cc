// Validates the RunReport JSON artifacts a bench binary wrote under
// SMT_BENCH_REPORT_DIR: every *.json in the directory must parse and carry
// the required schema fields (per-CPU events + cycle breakdown). Exits
// nonzero on any malformed file or if the directory holds no reports at
// all — the ctest smoke test (cmake/report_smoke.cmake) runs this after
// driving a bench binary.
//
//   $ check_reports <dir>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/types.h"
#include "perfmon/events.h"

namespace fs = std::filesystem;

namespace {

bool has_number(const smt::JsonValue& obj, const char* key) {
  const smt::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number();
}

bool check_report(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = smt::parse_json(ss.str());
  if (!v.has_value() || !v->is_object()) {
    std::fprintf(stderr, "%s: does not parse as a JSON object\n",
                 path.c_str());
    return false;
  }
  const smt::JsonValue* schema = v->find("schema");
  if (schema == nullptr || schema->string != "smt-run-report/1") {
    std::fprintf(stderr, "%s: missing/unknown schema\n", path.c_str());
    return false;
  }
  for (const char* key : {"workload", "cycles", "verified", "config",
                          "cpus", "totals"}) {
    if (v->find(key) == nullptr) {
      std::fprintf(stderr, "%s: missing \"%s\"\n", path.c_str(), key);
      return false;
    }
  }
  const smt::JsonValue* cpus = v->find("cpus");
  if (!cpus->is_array() ||
      cpus->array.size() != static_cast<size_t>(smt::kNumLogicalCpus)) {
    std::fprintf(stderr, "%s: \"cpus\" is not a %d-entry array\n",
                 path.c_str(), smt::kNumLogicalCpus);
    return false;
  }
  for (const smt::JsonValue& cpu : cpus->array) {
    const smt::JsonValue* events = cpu.find("events");
    const smt::JsonValue* bd = cpu.find("breakdown");
    if (events == nullptr || bd == nullptr) {
      std::fprintf(stderr, "%s: cpu entry missing events/breakdown\n",
                   path.c_str());
      return false;
    }
    for (int e = 0; e < smt::perfmon::kNumEventValues; ++e) {
      const char* name =
          smt::perfmon::name(static_cast<smt::perfmon::Event>(e));
      if (!has_number(*events, name)) {
        std::fprintf(stderr, "%s: events missing \"%s\"\n", path.c_str(),
                     name);
        return false;
      }
    }
    for (const char* key :
         {"total", "active", "halted", "fetch_stalled", "resource_stalled",
          "stall_rob", "stall_load_queue", "stall_store_buffer",
          "memory_bound", "issue_bound", "flowing", "cpi", "ipc"}) {
      if (!has_number(*bd, key)) {
        std::fprintf(stderr, "%s: breakdown missing \"%s\"\n", path.c_str(),
                     key);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <report-dir>\n", argv[0]);
    return 2;
  }
  const fs::path dir = argv[1];
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "%s: not a directory\n", dir.c_str());
    return 2;
  }
  int checked = 0, bad = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++checked;
    if (!check_report(entry.path())) ++bad;
  }
  if (checked == 0) {
    std::fprintf(stderr, "%s: no report artifacts found\n", dir.c_str());
    return 1;
  }
  std::printf("%d report(s) checked, %d bad\n", checked, bad);
  return bad == 0 ? 0 : 1;
}
